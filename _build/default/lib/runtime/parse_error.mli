(** Parse failures with farthest-failure diagnosis.

    Packrat parsers report the deepest input position any expression
    failed at, together with the set of things that were expected there —
    the standard PEG error heuristic (Ford), which Rats! also uses. *)

open Rats_support

type t = {
  position : int;  (** byte offset of the farthest failure *)
  expected : string list;  (** deduplicated descriptions, source order *)
  consumed : int;
      (** how far the start production matched when the failure is
          "expected end of input" — equals [position] otherwise *)
}

val v : position:int -> expected:string list -> ?consumed:int -> unit -> t

val message : t -> string
(** ["expected 'x', '[0-9]' or identifier"] — no location prefix. *)

val to_diagnostic : t -> Diagnostic.t
val pp : ?source:Source.t -> Format.formatter -> t -> unit
val to_string : ?source:Source.t -> t -> string
