lib/runtime/parse_error.mli: Diagnostic Format Rats_support Source
