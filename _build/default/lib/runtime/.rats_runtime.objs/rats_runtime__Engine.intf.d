lib/runtime/engine.mli: Config Diagnostic Grammar Parse_error Rats_peg Rats_support Stats Value
