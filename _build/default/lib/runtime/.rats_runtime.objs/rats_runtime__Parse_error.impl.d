lib/runtime/parse_error.ml: Diagnostic Format Hashtbl List Option Rats_support Source Span
