lib/runtime/stats.ml: Format
