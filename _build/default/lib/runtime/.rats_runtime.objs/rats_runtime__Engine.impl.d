lib/runtime/engine.ml: Analysis Array Attr Charset Config Diagnostic Expr Grammar Hashtbl List Map Option Parse_error Pretty Printf Production Rats_peg Rats_support Result Set Span Stats String Value
