lib/runtime/config.ml: Format List Printf String
