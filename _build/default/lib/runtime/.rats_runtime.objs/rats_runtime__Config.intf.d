lib/runtime/config.mli: Format
