(** Hand-written lexer for the module language.

    Skips [//] line comments, [/* ... */] block comments (non-nesting)
    and whitespace. Raises no exceptions: lexical errors are returned as
    diagnostics. *)

open Rats_support

val tokenize : Source.t -> (Token.t array, Diagnostic.t) result
(** The array always ends with an [Eof] token on success. *)
