open Rats_support
open Rats_peg

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_hex c =
  (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let hex_val c =
  if c >= '0' && c <= '9' then Char.code c - Char.code '0'
  else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
  else Char.code c - Char.code 'A' + 10

exception Lex_error of Diagnostic.t

let err span fmt =
  Format.kasprintf (fun m -> raise (Lex_error (Diagnostic.error ~span m))) fmt

let tokenize src =
  let text = Source.text src in
  let len = String.length text in
  let tokens = ref [] in
  let emit kind start_ stop =
    tokens := { Token.kind; span = Span.v ~start_ ~stop } :: !tokens
  in
  (* Returns (char, next position); handles backslash escapes. [extra]
     lists context-specific characters that may be escaped verbatim. *)
  let escape ~extra i =
    if i >= len then err (Span.point i) "unterminated escape sequence";
    match text.[i] with
    | 'n' -> ('\n', i + 1)
    | 't' -> ('\t', i + 1)
    | 'r' -> ('\r', i + 1)
    | '\\' -> ('\\', i + 1)
    | '\'' -> ('\'', i + 1)
    | '"' -> ('"', i + 1)
    | '0' -> ('\000', i + 1)
    | 'x' ->
        if i + 2 < len && is_hex text.[i + 1] && is_hex text.[i + 2] then
          (Char.chr ((hex_val text.[i + 1] * 16) + hex_val text.[i + 2]), i + 3)
        else err (Span.point i) "invalid \\x escape (expected two hex digits)"
    | c when List.mem c extra -> (c, i + 1)
    | c -> err (Span.point i) "unknown escape sequence '\\%c'" c
  in
  let rec skip i =
    if i >= len then i
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip (i + 1)
      | '/' when i + 1 < len && text.[i + 1] = '/' ->
          let rec eol j = if j >= len || text.[j] = '\n' then j else eol (j + 1) in
          skip (eol (i + 2))
      | '/' when i + 1 < len && text.[i + 1] = '*' ->
          let rec close j =
            if j + 1 >= len then
              err (Span.v ~start_:i ~stop:len) "unterminated block comment"
            else if text.[j] = '*' && text.[j + 1] = '/' then j + 2
            else close (j + 1)
          in
          skip (close (i + 2))
      | _ -> i
  in
  let lex_string i0 =
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= len then err (Span.v ~start_:i0 ~stop:len) "unterminated string"
      else
        match text.[i] with
        | '"' ->
            emit (Token.String_lit (Buffer.contents buf)) i0 (i + 1);
            i + 1
        | '\\' ->
            let c, j = escape ~extra:[] (i + 1) in
            Buffer.add_char buf c;
            go j
        | '\n' -> err (Span.v ~start_:i0 ~stop:i) "newline in string literal"
        | c ->
            Buffer.add_char buf c;
            go (i + 1)
    in
    go (i0 + 1)
  in
  let lex_char i0 =
    let c, i =
      if i0 + 1 >= len then err (Span.point i0) "unterminated character literal"
      else
        match text.[i0 + 1] with
        | '\\' -> escape ~extra:[] (i0 + 2)
        | '\n' -> err (Span.point i0) "newline in character literal"
        | c -> (c, i0 + 2)
    in
    if i >= len || text.[i] <> '\'' then
      err (Span.v ~start_:i0 ~stop:i) "unterminated character literal";
    emit (Token.Char_lit c) i0 (i + 1);
    i + 1
  in
  let lex_class i0 =
    let i, complement =
      if i0 + 1 < len && text.[i0 + 1] = '^' then (i0 + 2, true) else (i0 + 1, false)
    in
    let set = ref Charset.empty in
    let rec go i =
      if i >= len then
        err (Span.v ~start_:i0 ~stop:len) "unterminated character class"
      else
        match text.[i] with
        | ']' -> i + 1
        | c ->
            let c, i =
              if c = '\\' then escape ~extra:[ ']'; '-'; '^'; '[' ] (i + 1)
              else (c, i + 1)
            in
            (* Range when followed by '-' and a non-']' char. *)
            if i + 1 < len && text.[i] = '-' && text.[i + 1] <> ']' then (
              let hi, j =
                if text.[i + 1] = '\\' then
                  escape ~extra:[ ']'; '-'; '^'; '[' ] (i + 2)
                else (text.[i + 1], i + 2)
              in
              if hi < c then
                err (Span.v ~start_:i0 ~stop:j) "inverted range in class";
              set := Charset.union !set (Charset.range c hi);
              go j)
            else (
              set := Charset.add c !set;
              go i)
    in
    let stop = go i in
    let s = if complement then Charset.complement !set else !set in
    emit (Token.Class_lit s) i0 stop;
    stop
  in
  let lex_ident i0 =
    (* Dots glue qualified names only when immediately followed by an
       identifier start. *)
    let rec go i =
      if i < len && is_ident_char text.[i] then go (i + 1)
      else if
        i + 1 < len && text.[i] = '.' && is_ident_start text.[i + 1]
      then go (i + 2)
      else i
    in
    let stop = go i0 in
    emit (Token.Ident (String.sub text i0 (stop - i0))) i0 stop;
    stop
  in
  let rec loop i =
    let i = skip i in
    if i >= len then emit Token.Eof len len
    else
      let two tk = emit tk i (i + 2); loop (i + 2) in
      let one tk = emit tk i (i + 1); loop (i + 1) in
      match text.[i] with
      | '"' -> loop (lex_string i)
      | '\'' -> loop (lex_char i)
      | '[' -> loop (lex_class i)
      | '(' -> one Token.Lparen
      | ')' -> one Token.Rparen
      | '<' -> one Token.Langle
      | '>' -> one Token.Rangle
      | '/' -> one Token.Slash
      | ';' -> one Token.Semi
      | ',' -> one Token.Comma
      | '*' -> one Token.Star
      | '?' -> one Token.Question
      | '&' -> one Token.Amp
      | '!' -> one Token.Bang
      | '.' -> one Token.Dot
      | '@' -> one Token.At
      | '$' -> one Token.Dollar
      | '=' -> one Token.Eq
      | '+' when i + 1 < len && text.[i + 1] = '=' -> two Token.Plus_eq
      | '+' -> one Token.Plus
      | '-' when i + 1 < len && text.[i + 1] = '=' -> two Token.Minus_eq
      | ':' when i + 1 < len && text.[i + 1] = '=' -> two Token.Colon_eq
      | ':' -> one Token.Colon
      | '%' ->
          if i + 1 < len && is_ident_start text.[i + 1] then (
            let rec go j = if j < len && is_ident_char text.[j] then go (j + 1) else j in
            let stop = go (i + 1) in
            emit (Token.Percent (String.sub text (i + 1) (stop - i - 1))) i stop;
            loop stop)
          else err (Span.point i) "stray '%%'"
      | c when is_ident_start c -> loop (lex_ident i)
      | c -> err (Span.point i) "unexpected character %C" c
  in
  match loop 0 with
  | () -> Ok (Array.of_list (List.rev !tokens))
  | exception Lex_error d -> Error d
