(** Printing module ASTs back as module-language source.

    [Parser.parse_module (Source.of_string (to_string m))] yields an AST
    structurally equal to [m] — the round-trip property the tests check. *)

val pp_module : Format.formatter -> Rats_modules.Ast.t -> unit
val module_to_string : Rats_modules.Ast.t -> string
val pp_item : Format.formatter -> Rats_modules.Ast.item -> unit
val pp_dependency : Format.formatter -> Rats_modules.Ast.dependency -> unit
