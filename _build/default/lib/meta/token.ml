open Rats_support
open Rats_peg

type kind =
  | Ident of string
  | String_lit of string
  | Char_lit of char
  | Class_lit of Charset.t
  | Percent of string
  | Lparen
  | Rparen
  | Langle
  | Rangle
  | Slash
  | Semi
  | Colon
  | Comma
  | Star
  | Plus
  | Question
  | Amp
  | Bang
  | Dot
  | At
  | Dollar
  | Eq
  | Plus_eq
  | Minus_eq
  | Colon_eq
  | Eof

type t = { kind : kind; span : Span.t }

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | String_lit _ -> "string literal"
  | Char_lit _ -> "character literal"
  | Class_lit _ -> "character class"
  | Percent s -> "%" ^ s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Langle -> "'<'"
  | Rangle -> "'>'"
  | Slash -> "'/'"
  | Semi -> "';'"
  | Colon -> "':'"
  | Comma -> "','"
  | Star -> "'*'"
  | Plus -> "'+'"
  | Question -> "'?'"
  | Amp -> "'&'"
  | Bang -> "'!'"
  | Dot -> "'.'"
  | At -> "'@'"
  | Dollar -> "'$'"
  | Eq -> "'='"
  | Plus_eq -> "'+='"
  | Minus_eq -> "'-='"
  | Colon_eq -> "':='"
  | Eof -> "end of file"
