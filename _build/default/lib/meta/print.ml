open Rats_peg
module Ast = Rats_modules.Ast

let pp_args ppf = function
  | [] -> ()
  | args ->
      Format.fprintf ppf "(%s)" (String.concat ", " args)

let pp_dependency ppf (d : Ast.dependency) =
  let kw = match d.dep_kind with Ast.Import -> "import" | Ast.Modify -> "modify" in
  Format.fprintf ppf "%s %s%a" kw d.target pp_args d.args;
  (match d.alias with
  | Some a when a <> Ast.simple_name d.target -> Format.fprintf ppf " as %s" a
  | Some _ | None -> ());
  Format.fprintf ppf ";"

let pp_attrs ppf attrs =
  List.iter (fun w -> Format.fprintf ppf "%s " w) (Pretty.attr_words attrs)

let pp_alts ppf alts =
  Pretty.pp_expr ppf (Expr.mk (Expr.Alt alts))

let pp_placement ppf = function
  | Ast.Append -> ()
  | Ast.Prepend -> Format.fprintf ppf "first "
  | Ast.Before l -> Format.fprintf ppf "before <%s> " l
  | Ast.After l -> Format.fprintf ppf "after <%s> " l

let pp_item ppf (item : Ast.item) =
  match item with
  | Ast.Define { name; attrs; expr; _ } ->
      Format.fprintf ppf "@[<hv 2>%a%s =@ %a;@]" pp_attrs attrs name
        Pretty.pp_expr expr
  | Ast.Override { name; attrs; expr; _ } ->
      let pp_opt_attrs ppf = function
        | None -> ()
        | Some a -> pp_attrs ppf a
      in
      Format.fprintf ppf "@[<hv 2>%a%s :=@ %a;@]" pp_opt_attrs attrs name
        Pretty.pp_expr expr
  | Ast.Add { name; placement; alts; _ } ->
      Format.fprintf ppf "@[<hv 2>%s += %a%a;@]" name pp_placement placement
        pp_alts alts
  | Ast.Remove { name; labels; _ } ->
      Format.fprintf ppf "%s -= %s;" name
        (String.concat ", " (List.map (fun l -> "<" ^ l ^ ">") labels))

let pp_module ppf (m : Ast.t) =
  Format.fprintf ppf "@[<v>module %s%a;@," m.name pp_args m.params;
  if m.deps <> [] then (
    Format.fprintf ppf "@,";
    List.iter (fun d -> Format.fprintf ppf "%a@," pp_dependency d) m.deps);
  List.iter (fun item -> Format.fprintf ppf "@,%a@," pp_item item) m.items;
  Format.fprintf ppf "@]"

let module_to_string m = Format.asprintf "%a@." pp_module m
