lib/meta/parser.mli: Diagnostic Expr Rats_modules Rats_peg Rats_support Source
