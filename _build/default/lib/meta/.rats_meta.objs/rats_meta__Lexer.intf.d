lib/meta/lexer.mli: Diagnostic Rats_support Source Token
