lib/meta/token.ml: Charset Printf Rats_peg Rats_support Span
