lib/meta/lexer.ml: Array Buffer Char Charset Diagnostic Format List Rats_peg Rats_support Source Span String Token
