lib/meta/print.mli: Format Rats_modules
