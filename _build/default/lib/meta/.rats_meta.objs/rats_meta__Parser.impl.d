lib/meta/parser.ml: Array Attr Diagnostic Expr Format Lexer List Rats_modules Rats_peg Rats_support Source String Token
