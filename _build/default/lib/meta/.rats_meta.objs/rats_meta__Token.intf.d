lib/meta/token.mli: Charset Rats_peg Rats_support Span
