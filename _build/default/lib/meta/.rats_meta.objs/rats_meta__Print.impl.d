lib/meta/print.ml: Expr Format List Pretty Rats_modules Rats_peg String
