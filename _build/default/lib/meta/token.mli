(** Tokens of the grammar-module language. *)

open Rats_support
open Rats_peg

type kind =
  | Ident of string
      (** identifier, possibly dot-qualified when the dots are adjacent:
          [Foo.Bar] is one token, [Foo . Bar] is three *)
  | String_lit of string
  | Char_lit of char
  | Class_lit of Charset.t
  | Percent of string  (** [%record], [%member], [%absent], [%fail], [%splice] *)
  | Lparen
  | Rparen
  | Langle
  | Rangle
  | Slash
  | Semi
  | Colon
  | Comma
  | Star
  | Plus
  | Question
  | Amp
  | Bang
  | Dot
  | At
  | Dollar
  | Eq  (** [=] *)
  | Plus_eq  (** [+=] *)
  | Minus_eq  (** [-=] *)
  | Colon_eq  (** [:=] *)
  | Eof

type t = { kind : kind; span : Span.t }

val describe : kind -> string
(** Human name for error messages, e.g. ["identifier"], ["'('"]. *)
