(** Sets of bytes, the alphabet of our scannerless PEGs.

    Rats! parses at the character level — the lexicon is part of the
    grammar — so character classes are pervasive and must be cheap. A set
    is four 64-bit words; membership is two shifts and a mask. Sets are
    immutable. *)

type t

val empty : t
val full : t
(** [full] contains every byte 0..255. *)

val singleton : char -> t
val range : char -> char -> t
(** [range lo hi] is the inclusive range; empty when [hi < lo]. *)

val of_string : string -> t
(** [of_string s] contains exactly the bytes occurring in [s]. *)

val of_list : char list -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val add : char -> t -> t
val remove : char -> t -> t
val mem : char -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
(** [subset a b] is true when every byte of [a] is in [b]. *)

val disjoint : t -> t -> bool
val iter : (char -> unit) -> t -> unit
val fold : (char -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> char list
val choose : t -> char option
(** [choose s] is the smallest element, if any. *)

val hash : t -> int

val to_ranges : t -> (char * char) list
(** Maximal inclusive runs, ascending — the basis of printing and code
    generation. *)

val of_ranges : (char * char) list -> t

val pp : Format.formatter -> t -> unit
(** [pp] prints in grammar-class syntax, e.g. [[a-z0-9_]], escaping
    non-printable bytes and collapsing runs into ranges. *)

val to_string : t -> string
