(* A set of bytes as a 256-bit vector: four int64 words. *)

type t = { w0 : int64; w1 : int64; w2 : int64; w3 : int64 }

let empty = { w0 = 0L; w1 = 0L; w2 = 0L; w3 = 0L }
let full = { w0 = -1L; w1 = -1L; w2 = -1L; w3 = -1L }

let word s i =
  match i with 0 -> s.w0 | 1 -> s.w1 | 2 -> s.w2 | _ -> s.w3

let with_word s i w =
  match i with
  | 0 -> { s with w0 = w }
  | 1 -> { s with w1 = w }
  | 2 -> { s with w2 = w }
  | _ -> { s with w3 = w }

let mem c s =
  let b = Char.code c in
  let w = word s (b lsr 6) in
  Int64.logand (Int64.shift_right_logical w (b land 63)) 1L = 1L

let add c s =
  let b = Char.code c in
  let i = b lsr 6 in
  with_word s i (Int64.logor (word s i) (Int64.shift_left 1L (b land 63)))

let remove c s =
  let b = Char.code c in
  let i = b lsr 6 in
  with_word s i
    (Int64.logand (word s i) (Int64.lognot (Int64.shift_left 1L (b land 63))))

let singleton c = add c empty

let range lo hi =
  let rec go acc b =
    if b > Char.code hi then acc else go (add (Char.chr b) acc) (b + 1)
  in
  if hi < lo then empty else go empty (Char.code lo)

let of_string str = String.fold_left (fun acc c -> add c acc) empty str
let of_list cs = List.fold_left (fun acc c -> add c acc) empty cs

let map2 f a b =
  { w0 = f a.w0 b.w0; w1 = f a.w1 b.w1; w2 = f a.w2 b.w2; w3 = f a.w3 b.w3 }

let union = map2 Int64.logor
let inter = map2 Int64.logand
let diff a b = map2 (fun x y -> Int64.logand x (Int64.lognot y)) a b

let complement s =
  { w0 = Int64.lognot s.w0; w1 = Int64.lognot s.w1;
    w2 = Int64.lognot s.w2; w3 = Int64.lognot s.w3 }

let is_empty s = s.w0 = 0L && s.w1 = 0L && s.w2 = 0L && s.w3 = 0L

let popcount64 w =
  let rec go acc w = if w = 0L then acc
    else go (acc + 1) (Int64.logand w (Int64.sub w 1L))
  in
  go 0 w

let cardinal s =
  popcount64 s.w0 + popcount64 s.w1 + popcount64 s.w2 + popcount64 s.w3

let equal a b = a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2 && a.w3 = b.w3

let compare a b =
  let c = Int64.compare a.w0 b.w0 in
  if c <> 0 then c
  else
    let c = Int64.compare a.w1 b.w1 in
    if c <> 0 then c
    else
      let c = Int64.compare a.w2 b.w2 in
      if c <> 0 then c else Int64.compare a.w3 b.w3

let subset a b = equal (inter a b) a
let disjoint a b = is_empty (inter a b)

let iter f s =
  for b = 0 to 255 do
    let c = Char.chr b in
    if mem c s then f c
  done

let fold f s init =
  let acc = ref init in
  iter (fun c -> acc := f c !acc) s;
  !acc

let elements s = List.rev (fold (fun c acc -> c :: acc) s [])
let choose s = match elements s with [] -> None | c :: _ -> Some c

let hash s =
  let h w = Int64.to_int (Int64.logxor w (Int64.shift_right_logical w 32)) in
  (h s.w0 * 31 + h s.w1) * 31 + (h s.w2 * 31 + h s.w3)

(* Printing: collapse into ranges, escape the unprintable. *)
let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\\' -> "\\\\"
  | ']' -> "\\]"
  | '-' -> "\\-"
  | '^' -> "\\^"
  | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
  | c -> Printf.sprintf "\\x%02x" (Char.code c)

let ranges s =
  let rec go b acc cur =
    if b > 255 then
      match cur with None -> List.rev acc | Some r -> List.rev (r :: acc)
    else
      let present = mem (Char.chr b) s in
      match (cur, present) with
      | None, false -> go (b + 1) acc None
      | None, true -> go (b + 1) acc (Some (b, b))
      | Some (lo, _), true -> go (b + 1) acc (Some (lo, b))
      | Some r, false -> go (b + 1) (r :: acc) None
  in
  go 0 [] None

let to_ranges s =
  List.map (fun (lo, hi) -> (Char.chr lo, Char.chr hi)) (ranges s)

let of_ranges rs =
  List.fold_left (fun acc (lo, hi) -> union acc (range lo hi)) empty rs

let pp ppf s =
  Format.pp_print_string ppf "[";
  List.iter
    (fun (lo, hi) ->
      if lo = hi then Format.pp_print_string ppf (escape_char (Char.chr lo))
      else if hi = lo + 1 then
        Format.fprintf ppf "%s%s" (escape_char (Char.chr lo))
          (escape_char (Char.chr hi))
      else
        Format.fprintf ppf "%s-%s" (escape_char (Char.chr lo))
          (escape_char (Char.chr hi)))
    (ranges s);
  Format.pp_print_string ppf "]"

let to_string s = Format.asprintf "%a" pp s
