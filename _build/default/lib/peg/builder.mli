(** Combinator DSL for building grammars directly in OCaml.

    Intended to be opened locally:
    {[
      let open Rats_peg.Builder in
      prod "Sum" (e "Product" @: star (s "+" @: e "Product"))
    ]}
    The textual module language ({!Rats_meta}) is the primary authoring
    surface; this DSL serves tests, examples and programmatic grammar
    construction. *)

val e : string -> Expr.t
(** Nonterminal reference. *)

val s : string -> Expr.t
(** String literal (no value). *)

val c : char -> Expr.t
(** Character literal (no value). *)

val r : char -> char -> Expr.t
(** Inclusive character range (yields the byte). *)

val one_of : string -> Expr.t
(** Class containing the given characters. *)

val cls : Charset.t -> Expr.t
val any : Expr.t
val eps : Expr.t
val fail : string -> Expr.t
val seq : Expr.t list -> Expr.t
val alt : Expr.t list -> Expr.t

val ( @: ) : Expr.t -> Expr.t -> Expr.t
(** Sequence; associates to build one flat [Seq]. *)

val ( <|> ) : Expr.t -> Expr.t -> Expr.t
(** Ordered choice; associates to build one flat [Alt]. OCaml parses
    [<|>] looser than [@:], so [a @: b <|> c] groups as [(a b) / c],
    matching PEG convention. (A bare [/] would bind tighter than [@:]
    and silently flip the grouping, which is why it is not provided.) *)

val star : Expr.t -> Expr.t
val plus : Expr.t -> Expr.t
val opt : Expr.t -> Expr.t
val amp : Expr.t -> Expr.t
(** [&e] and-predicate. *)

val bang : Expr.t -> Expr.t
(** [!e] not-predicate. *)

val ( |: ) : string -> Expr.t -> Expr.t
(** [x |: e] binds [e]'s value to label [x]. *)

val label : string -> Expr.t -> Expr.t
(** Label an alternative (for modifications): wraps into a single-branch
    labeled [Alt] that the smart constructors keep mergeable. *)

val tok : Expr.t -> Expr.t
(** Capture matched text. *)

val node : string -> Expr.t -> Expr.t
val void : Expr.t -> Expr.t
(** Match, discard the value. *)

val record : string -> Expr.t -> Expr.t
val member : string -> Expr.t -> Expr.t
val absent : string -> Expr.t -> Expr.t

val prod :
  ?public:bool ->
  ?kind:Attr.kind ->
  ?memo:Attr.memo_hint ->
  ?inline:Attr.inline_hint ->
  ?with_location:bool ->
  string ->
  Expr.t ->
  Production.t

val grammar : ?start:string -> Production.t list -> Grammar.t
(** {!Grammar.make_exn} shorthand. *)
