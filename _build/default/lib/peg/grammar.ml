open Rats_support

type t = {
  start : string;
  prods : Production.t list;
  index : (string, Production.t) Hashtbl.t;
}

let build_index prods =
  let index = Hashtbl.create (List.length prods * 2) in
  List.iter (fun (p : Production.t) -> Hashtbl.replace index p.name p) prods;
  index

let make ?start prods =
  match prods with
  | [] -> Error (Diagnostic.error "grammar has no productions")
  | first :: _ -> (
      let dup =
        let seen = Hashtbl.create 16 in
        List.find_opt
          (fun (p : Production.t) ->
            if Hashtbl.mem seen p.name then true
            else (
              Hashtbl.add seen p.name ();
              false))
          prods
      in
      match dup with
      | Some p ->
          Error
            (Diagnostic.errorf ~span:p.loc "duplicate production %S" p.name)
      | None -> (
          let start =
            match start with
            | Some s -> s
            | None -> (
                match List.find_opt Production.is_public prods with
                | Some p -> p.name
                | None -> first.name)
          in
          let index = build_index prods in
          if not (Hashtbl.mem index start) then
            Error (Diagnostic.errorf "start symbol %S is not defined" start)
          else Ok { start; prods; index }))

let make_exn ?start prods =
  match make ?start prods with
  | Ok g -> g
  | Error d -> raise (Diagnostic.Fail d)

let start g = g.start

let with_start g start =
  if Hashtbl.mem g.index start then Ok { g with start }
  else Error (Diagnostic.errorf "start symbol %S is not defined" start)

let productions g = g.prods
let names g = List.map (fun (p : Production.t) -> p.name) g.prods
let find g name = Hashtbl.find_opt g.index name

let find_exn g name =
  match find g name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Grammar.find_exn: %S" name)

let mem g name = Hashtbl.mem g.index name
let length g = List.length g.prods
let size g = List.fold_left (fun acc p -> acc + Production.size p) 0 g.prods

let map f g =
  let prods =
    List.map
      (fun (p : Production.t) ->
        let q = f p in
        if not (String.equal q.Production.name p.name) then
          invalid_arg "Grammar.map: transformation renamed a production";
        q)
      g.prods
  in
  { g with prods; index = build_index prods }

let update g name f =
  if not (mem g name) then
    invalid_arg (Printf.sprintf "Grammar.update: %S not defined" name);
  map (fun p -> if String.equal p.Production.name name then f p else p) g

let add g p =
  if mem g p.Production.name then
    Error
      (Diagnostic.errorf ~span:p.Production.loc
         "duplicate production %S" p.Production.name)
  else
    let prods = g.prods @ [ p ] in
    Ok { g with prods; index = build_index prods }

let remove g name =
  let prods =
    List.filter (fun (p : Production.t) -> not (String.equal p.name name)) g.prods
  in
  { g with prods; index = build_index prods }

let check_closed g =
  List.filter_map
    (fun (p : Production.t) ->
      let missing =
        List.filter (fun r -> not (mem g r)) (Expr.refs p.expr)
      in
      match missing with
      | [] -> None
      | missing ->
          Some
            (Diagnostic.errorf ~span:p.loc
               ~notes:
                 (List.map (Printf.sprintf "undefined nonterminal %S") missing)
               "production %S references undefined nonterminals" p.name))
    g.prods

let restrict g ~keep =
  let prods =
    List.filter
      (fun (p : Production.t) -> String.equal p.name g.start || keep p.name)
      g.prods
  in
  { g with prods; index = build_index prods }
