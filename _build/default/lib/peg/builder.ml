let e name = Expr.ref_ name
let s text = Expr.str text
let c ch = Expr.chr ch
let r lo hi = Expr.range lo hi
let one_of chars = Expr.one_of chars
let cls set = Expr.cls set
let any = Expr.any ()
let eps = Expr.empty
let fail msg = Expr.fail msg
let seq es = Expr.seq es
let alt es = Expr.alt es
let ( @: ) a b = Expr.seq [ a; b ]
let ( <|> ) a b = Expr.alt [ a; b ]
let star x = Expr.star x
let plus x = Expr.plus x
let opt x = Expr.opt x
let amp x = Expr.and_ x
let bang x = Expr.not_ x
let ( |: ) name x = Expr.bind name x

let label l body =
  Expr.mk (Expr.Alt [ { Expr.label = Some l; body } ])

let tok x = Expr.token x
let node n x = Expr.node n x
let void x = Expr.drop x
let record table x = Expr.record table x
let member table x = Expr.member table true x
let absent table x = Expr.member table false x

let prod ?(public = false) ?(kind = Attr.Plain) ?(memo = Attr.Memo_auto)
    ?(inline = Attr.Inline_auto) ?(with_location = false) name expr =
  let attrs =
    Attr.v
      ~visibility:(if public then Attr.Public else Attr.Private)
      ~kind ~memo ~inline ~with_location ()
  in
  Production.v ~attrs name expr

let grammar ?start prods = Grammar.make_exn ?start prods
