(** Production attributes.

    Rats! annotates productions with attributes that drive both semantics
    (what value the production yields) and the optimizer (what may be
    inlined, folded or left unmemoized). We keep the ones that matter for
    those two roles. *)

type kind =
  | Plain  (** pass the body's value through unchanged *)
  | Generic  (** wrap the body's components in a node named after the
                 production — Rats!'s [generic] productions *)
  | Text  (** yield the matched text as a string — token productions *)
  | Void  (** yield no value — spacing, comments, punctuation *)

type visibility =
  | Public  (** part of the grammar's interface; kept by dead-code pruning
                and eligible as a start symbol *)
  | Private  (** internal; may be pruned, folded or inlined away *)

type memo_hint =
  | Memo_auto  (** optimizer decides *)
  | Memo_always  (** force memoization, Rats!'s [memoized] *)
  | Memo_never  (** never memoize, Rats!'s [transient] *)

type inline_hint =
  | Inline_auto  (** cost-based heuristic decides *)
  | Inline_always  (** Rats!'s [inline] *)
  | Inline_never  (** Rats!'s [noinline] *)

type t = {
  kind : kind;
  visibility : visibility;
  memo : memo_hint;
  inline : inline_hint;
  with_location : bool;
      (** Rats!'s [withLocation]; kept for grammar-source fidelity. The
          interpretive engine always records spans on the nodes it
          builds, so the attribute is informational here. *)
}

val default : t
(** [Plain], [Private], auto memo and inline, no location. *)

val v :
  ?kind:kind ->
  ?visibility:visibility ->
  ?memo:memo_hint ->
  ?inline:inline_hint ->
  ?with_location:bool ->
  unit ->
  t

val is_transient : t -> bool
(** [is_transient a] is true when [a.memo = Memo_never]. *)

val pp : Format.formatter -> t -> unit
(** Prints the non-default attributes as grammar-source keywords, e.g.
    ["public transient void"]. *)

val equal : t -> t -> bool
