(** Semantic values produced by parsing.

    Rats! productions run host-language actions; its companion xtc front
    ends mostly use {e generic} productions that build uniform syntax-tree
    nodes named after the matched production. The interpretive engine here
    adopts the generic discipline: a parse yields a [Value.t], a uniform
    tree whose shape is driven by production attributes (see {!Attr.kind})
    and by explicit [Node] / [Token] wrappers in the grammar.

    Conventions baked into the engine:
    - string/char {e literals} match but contribute no value (they are
      punctuation and keywords);
    - character {e classes} and [.] contribute the matched byte;
    - a sequence with several meaningful components packs them, labels
      included, into an anonymous tuple node named ["#seq"], which a
      surrounding [Node] wrapper or generic production absorbs as its
      children. *)

open Rats_support

type t =
  | Unit  (** no value: void productions, predicates, dropped literals *)
  | Chr of char  (** a single matched byte (from a class or [.]) *)
  | Str of string  (** matched text: token productions, [Token] captures *)
  | List of t list  (** repetitions *)
  | Node of node  (** a syntax-tree node *)

and node = {
  name : string;  (** constructor / production name; ["#seq"] for tuples *)
  children : (string option * t) list;
      (** components in match order; the label is the [Bind] name when the
          grammar gave one *)
  span : Span.t;  (** the input region this node covers *)
}

val node : ?span:Span.t -> string -> (string option * t) list -> t

val seq_name : string
(** The reserved name of anonymous tuple nodes, ["#seq"]. *)

val seq : ?span:Span.t -> (string option * t) list -> t
(** [seq parts] packs sequence components: drops unlabeled [Unit]s, then
    returns [Unit] for zero parts, the value itself for one unlabeled
    part, and a [seq_name] tuple node otherwise. *)

val is_unit : t -> bool

val components : t -> (string option * t) list
(** [components v] is the labeled child list a node wrapper absorbs:
    a ["#seq"] tuple yields its children, [Unit] yields [[]], anything
    else is a singleton. *)

val child : t -> string -> t option
(** [child v l] is the first child of node [v] labeled [l], if any. *)

val child_exn : t -> string -> t

val nth_child : t -> int -> t option
(** [nth_child v i] is the [i]-th (0-based) child value of node [v]. *)

val name : t -> string option
(** [name v] is the node name when [v] is a node. *)

val to_string : t -> string
(** Render as a compact s-expression, spans omitted — stable, used in
    golden tests. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality {e ignoring spans} — what tests usually want when
    comparing engines that agree on shape but not bookkeeping. *)

val count_nodes : t -> int
(** Number of [Node] constructors in the tree — a size proxy used by the
    heap-utilization experiment. *)
