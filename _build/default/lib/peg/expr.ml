open Rats_support

type t = { it : desc; loc : Span.t }

and desc =
  | Empty
  | Fail of string
  | Any
  | Chr of char
  | Str of string
  | Cls of Charset.t
  | Ref of string
  | Seq of t list
  | Alt of alt list
  | Star of t
  | Plus of t
  | Opt of t
  | And of t
  | Not of t
  | Bind of string * t
  | Token of t
  | Node of string * t
  | Drop of t
  | Splice of t
  | Record of string * t
  | Member of string * bool * t

and alt = { label : string option; body : t }

let mk ?(loc = Span.dummy) it = { it; loc }
let empty = mk Empty
let fail ?loc msg = mk ?loc (Fail msg)
let any ?loc () = mk ?loc Any
let chr ?loc c = mk ?loc (Chr c)

let str ?loc s =
  match String.length s with
  | 0 -> mk ?loc Empty
  | 1 -> mk ?loc (Chr s.[0])
  | _ -> mk ?loc (Str s)

let cls ?loc set =
  if Charset.is_empty set then mk ?loc (Fail "character class")
  else if Charset.equal set Charset.full then mk ?loc Any
  else mk ?loc (Cls set)

let range ?loc lo hi = cls ?loc (Charset.range lo hi)
let one_of ?loc s = cls ?loc (Charset.of_string s)
let ref_ ?loc name = mk ?loc (Ref name)

let seq ?loc es =
  let flatten e = match e.it with Seq es -> es | Empty -> [] | _ -> [ e ] in
  match List.concat_map flatten es with
  | [] -> mk ?loc Empty
  | [ e ] -> e
  | es -> mk ?loc (Seq es)

let alt_labeled ?loc alts =
  let flatten a =
    match (a.label, a.body.it) with
    | None, Alt inner -> inner
    | _ -> [ a ]
  in
  match List.concat_map flatten alts with
  | [] -> mk ?loc (Fail "empty choice")
  | [ { label = None; body } ] -> body
  | alts -> mk ?loc (Alt alts)

let alt ?loc es = alt_labeled ?loc (List.map (fun body -> { label = None; body }) es)
let star ?loc e = mk ?loc (Star e)
let plus ?loc e = mk ?loc (Plus e)
let opt ?loc e = mk ?loc (Opt e)
let and_ ?loc e = mk ?loc (And e)
let not_ ?loc e = mk ?loc (Not e)
let bind ?loc name e = mk ?loc (Bind (name, e))
let token ?loc e = mk ?loc (Token e)
let node ?loc name e = mk ?loc (Node (name, e))
let drop ?loc e = mk ?loc (Drop e)
let splice ?loc e = mk ?loc (Splice e)
let record ?loc table e = mk ?loc (Record (table, e))
let member ?loc table positive e = mk ?loc (Member (table, positive, e))

let map_children f e =
  let it =
    match e.it with
    | (Empty | Fail _ | Any | Chr _ | Str _ | Cls _ | Ref _) as leaf -> leaf
    | Seq es -> Seq (List.map f es)
    | Alt alts -> Alt (List.map (fun a -> { a with body = f a.body }) alts)
    | Star x -> Star (f x)
    | Plus x -> Plus (f x)
    | Opt x -> Opt (f x)
    | And x -> And (f x)
    | Not x -> Not (f x)
    | Bind (n, x) -> Bind (n, f x)
    | Token x -> Token (f x)
    | Node (n, x) -> Node (n, f x)
    | Drop x -> Drop (f x)
    | Splice x -> Splice (f x)
    | Record (t, x) -> Record (t, f x)
    | Member (t, p, x) -> Member (t, p, f x)
  in
  { e with it }

let iter_children f e =
  match e.it with
  | Empty | Fail _ | Any | Chr _ | Str _ | Cls _ | Ref _ -> ()
  | Seq es -> List.iter f es
  | Alt alts -> List.iter (fun a -> f a.body) alts
  | Star x | Plus x | Opt x | And x | Not x
  | Bind (_, x) | Token x | Node (_, x) | Drop x | Splice x
  | Record (_, x) | Member (_, _, x) ->
      f x

let rec fold f acc e =
  let acc = f acc e in
  let acc_ref = ref acc in
  iter_children (fun c -> acc_ref := fold f !acc_ref c) e;
  !acc_ref

let refs e =
  let seen = Hashtbl.create 16 in
  let out =
    fold
      (fun acc e ->
        match e.it with
        | Ref n when not (Hashtbl.mem seen n) ->
            Hashtbl.add seen n ();
            n :: acc
        | _ -> acc)
      [] e
  in
  List.rev out

let size e = fold (fun n _ -> n + 1) 0 e

let rec equal a b =
  match (a.it, b.it) with
  | Empty, Empty | Any, Any -> true
  | Fail a, Fail b -> String.equal a b
  | Chr a, Chr b -> Char.equal a b
  | Str a, Str b -> String.equal a b
  | Cls a, Cls b -> Charset.equal a b
  | Ref a, Ref b -> String.equal a b
  | Seq a, Seq b -> List.length a = List.length b && List.for_all2 equal a b
  | Alt a, Alt b ->
      List.length a = List.length b
      && List.for_all2
           (fun x y -> x.label = y.label && equal x.body y.body)
           a b
  | Star a, Star b | Plus a, Plus b | Opt a, Opt b
  | And a, And b | Not a, Not b
  | Token a, Token b | Drop a, Drop b | Splice a, Splice b ->
      equal a b
  | Bind (n, a), Bind (m, b) | Node (n, a), Node (m, b) ->
      String.equal n m && equal a b
  | Record (t, a), Record (u, b) -> String.equal t u && equal a b
  | Member (t, p, a), Member (u, q, b) ->
      String.equal t u && p = q && equal a b
  | ( ( Empty | Fail _ | Any | Chr _ | Str _ | Cls _ | Ref _ | Seq _ | Alt _
      | Star _ | Plus _ | Opt _ | And _ | Not _ | Bind _ | Token _ | Node _
      | Drop _ | Splice _ | Record _ | Member _ ),
      _ ) ->
      false

let is_stateful e =
  fold
    (fun acc e ->
      acc || match e.it with Record _ | Member _ -> true | _ -> false)
    false e

let rec rename_refs f e =
  match e.it with
  | Ref n -> { e with it = Ref (f n) }
  | _ -> map_children (rename_refs f) e
