let escape_in_string c =
  match c with
  | '"' -> "\\\""
  | '\\' -> "\\\\"
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | c when Char.code c < 32 || Char.code c > 126 ->
      Printf.sprintf "\\x%02x" (Char.code c)
  | c -> String.make 1 c

let escape_in_char c =
  match c with
  | '\'' -> "\\'"
  | '"' -> "\""
  | c -> escape_in_string c

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter (fun c -> Buffer.add_string buf (escape_in_string c)) s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let quote_char c = Printf.sprintf "'%s'" (escape_in_char c)

(* Precedence levels: 0 choice, 1 sequence, 2 prefix/bind, 3 suffix,
   4 primary. [pp_at lvl] parenthesizes when the construct's own level is
   below the context's. *)

let rec pp_at lvl ppf (e : Expr.t) =
  let open Expr in
  let paren own body =
    if own < lvl then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e.it with
  | Empty -> Format.pp_print_string ppf "()"
  | Fail msg -> Format.fprintf ppf "%%fail(%s)" (quote_string msg)
  | Any -> Format.pp_print_char ppf '.'
  | Chr c -> Format.pp_print_string ppf (quote_char c)
  | Str s -> Format.pp_print_string ppf (quote_string s)
  | Cls set -> Charset.pp ppf set
  | Ref n -> Format.pp_print_string ppf n
  | Seq es ->
      paren 1 (fun ppf ->
          Format.pp_open_box ppf 2;
          List.iteri
            (fun i x ->
              if i > 0 then Format.pp_print_space ppf ();
              pp_at 2 ppf x)
            es;
          Format.pp_close_box ppf ())
  | Alt alts ->
      paren 0 (fun ppf ->
          Format.pp_open_hvbox ppf 0;
          List.iteri
            (fun i (a : alt) ->
              if i > 0 then Format.fprintf ppf "@ / ";
              (match a.label with
              | Some l -> Format.fprintf ppf "<%s> " l
              | None -> ());
              pp_at 1 ppf a.body)
            alts;
          Format.pp_close_box ppf ())
  | Star x -> paren 3 (fun ppf -> Format.fprintf ppf "%a*" (pp_at 4) x)
  | Plus x -> paren 3 (fun ppf -> Format.fprintf ppf "%a+" (pp_at 4) x)
  | Opt x -> paren 3 (fun ppf -> Format.fprintf ppf "%a?" (pp_at 4) x)
  | And x -> paren 2 (fun ppf -> Format.fprintf ppf "&%a" (pp_at 3) x)
  | Not x -> paren 2 (fun ppf -> Format.fprintf ppf "!%a" (pp_at 3) x)
  | Bind (n, x) -> paren 2 (fun ppf -> Format.fprintf ppf "%s:%a" n (pp_at 3) x)
  | Drop x -> paren 2 (fun ppf -> Format.fprintf ppf "void:%a" (pp_at 3) x)
  | Token x -> Format.fprintf ppf "$(%a)" (pp_at 0) x
  | Splice x -> Format.fprintf ppf "%%splice(%a)" (pp_at 0) x
  | Node (n, x) -> Format.fprintf ppf "@@%s(%a)" n (pp_at 0) x
  | Record (t, x) -> Format.fprintf ppf "%%record(%s, %a)" t (pp_at 0) x
  | Member (t, true, x) -> Format.fprintf ppf "%%member(%s, %a)" t (pp_at 0) x
  | Member (t, false, x) -> Format.fprintf ppf "%%absent(%s, %a)" t (pp_at 0) x

let pp_expr ppf e = pp_at 0 ppf e
let expr_to_string e = Format.asprintf "@[%a@]" pp_expr e

let attr_words (a : Attr.t) =
  List.concat
    [
      (if a.visibility = Attr.Public then [ "public" ] else []);
      (match a.memo with
      | Attr.Memo_auto -> []
      | Attr.Memo_always -> [ "memoized" ]
      | Attr.Memo_never -> [ "transient" ]);
      (match a.inline with
      | Attr.Inline_auto -> []
      | Attr.Inline_always -> [ "inline" ]
      | Attr.Inline_never -> [ "noinline" ]);
      (if a.with_location then [ "withLocation" ] else []);
      (match a.kind with
      | Attr.Plain -> []
      | Attr.Generic -> [ "generic" ]
      | Attr.Text -> [ "String" ]
      | Attr.Void -> [ "void" ]);
    ]

let pp_production ppf (p : Production.t) =
  let words = attr_words p.attrs in
  Format.pp_open_hvbox ppf 2;
  List.iter (fun w -> Format.fprintf ppf "%s " w) words;
  Format.fprintf ppf "%s =@ %a;" p.name pp_expr p.expr;
  Format.pp_close_box ppf ()

let pp_grammar ppf g =
  Format.fprintf ppf "// start: %s@." (Grammar.start g);
  List.iter
    (fun p -> Format.fprintf ppf "@[%a@]@.@." pp_production p)
    (Grammar.productions g)

let grammar_to_string g = Format.asprintf "%a" pp_grammar g
