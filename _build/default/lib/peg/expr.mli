(** Parsing-expression IR.

    This is the single intermediate form shared by the whole pipeline:
    the module resolver lowers grammar modules into it, the optimizer
    rewrites it, the packrat engine interprets it and the code generator
    prints it as OCaml. Every node carries the span of the grammar source
    it came from ([Span.dummy] for synthesized nodes). *)

open Rats_support

type t = { it : desc; loc : Span.t }

and desc =
  | Empty  (** ε — always succeeds, consumes nothing *)
  | Fail of string  (** always fails; the string names what was expected *)
  | Any  (** [.] — any single byte *)
  | Chr of char  (** literal byte; yields no value *)
  | Str of string  (** literal text; yields no value *)
  | Cls of Charset.t  (** character class; yields the matched byte *)
  | Ref of string  (** nonterminal reference (resolved, flat name) *)
  | Seq of t list  (** sequence; at least two elements after smart cons *)
  | Alt of alt list  (** ordered choice; labels serve modifications *)
  | Star of t  (** zero or more; yields a list *)
  | Plus of t  (** one or more; yields a list *)
  | Opt of t  (** optional; yields the value or [Unit] *)
  | And of t  (** [&e] syntactic predicate; consumes nothing, no value *)
  | Not of t  (** [!e] syntactic predicate; consumes nothing, no value *)
  | Bind of string * t  (** [x:e] — labels e's value in the enclosing node *)
  | Token of t  (** yield the text matched by the body *)
  | Node of string * t  (** wrap the body's components in a named node *)
  | Drop of t  (** match the body, discard its value *)
  | Splice of t
      (** match the body and splice its components into the enclosing
          sequence's child list — synthesized by prefix factoring so the
          rewrite preserves semantic values *)
  | Record of string * t
      (** match the body, then add its text to the named parser-state
          table — our rendering of Rats!'s stateful parsing (C typedefs) *)
  | Member of string * bool * t
      (** match the body, then succeed iff its text is (when [true]) or is
          not (when [false]) in the named state table *)

and alt = { label : string option; body : t }

(** {1 Smart constructors}

    All take an optional [?loc] and normalize on the fly: nested
    sequences are flattened, singleton sequences/choices collapse,
    [Str] of length 1 becomes [Chr], empty [Str] becomes [Empty]. *)

val mk : ?loc:Span.t -> desc -> t
val empty : t
val fail : ?loc:Span.t -> string -> t
val any : ?loc:Span.t -> unit -> t
val chr : ?loc:Span.t -> char -> t
val str : ?loc:Span.t -> string -> t
val cls : ?loc:Span.t -> Charset.t -> t
val range : ?loc:Span.t -> char -> char -> t
val one_of : ?loc:Span.t -> string -> t
val ref_ : ?loc:Span.t -> string -> t
val seq : ?loc:Span.t -> t list -> t
val alt : ?loc:Span.t -> t list -> t
val alt_labeled : ?loc:Span.t -> alt list -> t
val star : ?loc:Span.t -> t -> t
val plus : ?loc:Span.t -> t -> t
val opt : ?loc:Span.t -> t -> t
val and_ : ?loc:Span.t -> t -> t
val not_ : ?loc:Span.t -> t -> t
val bind : ?loc:Span.t -> string -> t -> t
val token : ?loc:Span.t -> t -> t
val node : ?loc:Span.t -> string -> t -> t
val drop : ?loc:Span.t -> t -> t
val splice : ?loc:Span.t -> t -> t
val record : ?loc:Span.t -> string -> t -> t
val member : ?loc:Span.t -> string -> bool -> t -> t

(** {1 Traversal and queries} *)

val map_children : (t -> t) -> t -> t
(** [map_children f e] rebuilds [e] with [f] applied to each immediate
    subexpression (not recursively). *)

val iter_children : (t -> unit) -> t -> unit

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over [e] and all its descendants. *)

val refs : t -> string list
(** All nonterminal names referenced, in first-occurrence order, deduped. *)

val size : t -> int
(** Number of IR nodes — the optimizer's cost metric. *)

val equal : t -> t -> bool
(** Structural equality ignoring spans. *)

val is_stateful : t -> bool
(** True when the expression itself contains [Record]/[Member] (does not
    chase [Ref]s; see {!Analysis.stateful_set} for the transitive
    version). *)

val rename_refs : (string -> string) -> t -> t
(** Rewrite every [Ref] name — used when flattening module namespaces. *)
