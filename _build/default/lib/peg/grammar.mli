(** A flat, closed grammar: ordered productions plus a start symbol.

    This is what the module resolver produces and everything downstream
    consumes. The constructor validates that production names are unique;
    {!check_closed} additionally reports dangling references. Lookup is
    O(1) through an internal index. *)

open Rats_support

type t

val make : ?start:string -> Production.t list -> (t, Diagnostic.t) result
(** [make ~start prods] builds a grammar. [start] defaults to the first
    public production, or failing that the first production. Errors on an
    empty production list, duplicate names, or a start symbol that is not
    defined. *)

val make_exn : ?start:string -> Production.t list -> t
(** Like {!make} but raises {!Rats_support.Diagnostic.Fail}. *)

val start : t -> string
val with_start : t -> string -> (t, Diagnostic.t) result
val productions : t -> Production.t list
(** In definition order. *)

val names : t -> string list
val find : t -> string -> Production.t option
val find_exn : t -> string -> Production.t
val mem : t -> string -> bool
val length : t -> int

val size : t -> int
(** Total IR nodes across all production bodies. *)

val map : (Production.t -> Production.t) -> t -> t
(** [map f g] transforms every production. [f] must preserve names. *)

val update : t -> string -> (Production.t -> Production.t) -> t
(** [update g name f] replaces the named production; raises
    [Invalid_argument] when absent or renamed. *)

val add : t -> Production.t -> (t, Diagnostic.t) result
(** Appends a new production; errors on duplicate names. *)

val remove : t -> string -> t
(** Removes a production if present. Does not touch references; use
    {!check_closed} afterwards. *)

val check_closed : t -> Diagnostic.t list
(** Dangling-reference report: one error per production that mentions an
    undefined nonterminal. Empty means closed. *)

val restrict : t -> keep:(string -> bool) -> t
(** Keep only the named productions (callers ensure closure). *)
