lib/peg/builder.mli: Attr Charset Expr Grammar Production
