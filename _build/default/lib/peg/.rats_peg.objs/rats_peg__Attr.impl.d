lib/peg/attr.ml: Format String
