lib/peg/pretty.mli: Attr Expr Format Grammar Production
