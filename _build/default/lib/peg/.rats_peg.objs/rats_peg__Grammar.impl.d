lib/peg/grammar.ml: Diagnostic Expr Hashtbl List Printf Production Rats_support String
