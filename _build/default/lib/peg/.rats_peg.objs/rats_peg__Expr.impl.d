lib/peg/expr.ml: Char Charset Hashtbl List Rats_support Span String
