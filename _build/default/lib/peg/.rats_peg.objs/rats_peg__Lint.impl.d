lib/peg/lint.ml: Analysis Diagnostic Expr Format Grammar List Pretty Production Rats_support
