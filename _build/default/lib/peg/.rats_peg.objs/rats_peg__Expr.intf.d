lib/peg/expr.mli: Charset Rats_support Span
