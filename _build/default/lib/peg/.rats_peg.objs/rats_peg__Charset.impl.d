lib/peg/charset.ml: Char Format Int64 List Printf String
