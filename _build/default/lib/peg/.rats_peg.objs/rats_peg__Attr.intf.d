lib/peg/attr.mli: Format
