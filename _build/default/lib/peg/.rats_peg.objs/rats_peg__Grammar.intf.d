lib/peg/grammar.mli: Diagnostic Production Rats_support
