lib/peg/builder.ml: Attr Expr Grammar Production
