lib/peg/charset.mli: Format
