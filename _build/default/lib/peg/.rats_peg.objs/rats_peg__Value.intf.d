lib/peg/value.mli: Format Rats_support Span
