lib/peg/analysis.mli: Charset Diagnostic Expr Grammar Rats_support Set
