lib/peg/value.ml: Char Format List Printf Rats_support Span String
