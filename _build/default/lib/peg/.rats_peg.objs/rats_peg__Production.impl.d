lib/peg/production.ml: Attr Expr Rats_support Span String
