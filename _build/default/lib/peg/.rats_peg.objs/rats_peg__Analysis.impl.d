lib/peg/analysis.ml: Attr Charset Diagnostic Expr Grammar Hashtbl List Production Rats_support Set String
