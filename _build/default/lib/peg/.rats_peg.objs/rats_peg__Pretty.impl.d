lib/peg/pretty.ml: Attr Buffer Char Charset Expr Format Grammar List Printf Production String
