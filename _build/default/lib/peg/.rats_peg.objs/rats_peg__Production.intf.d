lib/peg/production.mli: Attr Expr Rats_support Span
