lib/peg/lint.mli: Diagnostic Grammar Rats_support
