open Rats_support

type t = {
  name : string;
  attrs : Attr.t;
  expr : Expr.t;
  loc : Span.t;
  origin : string;
}

let v ?(attrs = Attr.default) ?(loc = Span.dummy) ?(origin = "") name expr =
  { name; attrs; expr; loc; origin }

let with_expr p expr = { p with expr }
let with_attrs p attrs = { p with attrs }
let is_public p = p.attrs.Attr.visibility = Attr.Public
let size p = Expr.size p.expr

let equal a b =
  String.equal a.name b.name && Attr.equal a.attrs b.attrs
  && Expr.equal a.expr b.expr
