(** A single grammar production: attributes, name, parsing expression. *)

open Rats_support

type t = {
  name : string;  (** flat (post-composition) nonterminal name *)
  attrs : Attr.t;
  expr : Expr.t;
  loc : Span.t;  (** definition site in the grammar source *)
  origin : string;
      (** name of the grammar module that contributed this production;
          [""] for synthesized ones — feeds the E1 statistics *)
}

val v : ?attrs:Attr.t -> ?loc:Span.t -> ?origin:string -> string -> Expr.t -> t
val with_expr : t -> Expr.t -> t
val with_attrs : t -> Attr.t -> t
val is_public : t -> bool
val size : t -> int
(** IR size of the body. *)

val equal : t -> t -> bool
(** Ignores spans and origins: same name, attributes and body. *)
