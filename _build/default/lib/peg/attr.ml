type kind = Plain | Generic | Text | Void
type visibility = Public | Private
type memo_hint = Memo_auto | Memo_always | Memo_never
type inline_hint = Inline_auto | Inline_always | Inline_never

type t = {
  kind : kind;
  visibility : visibility;
  memo : memo_hint;
  inline : inline_hint;
  with_location : bool;
}

let default =
  {
    kind = Plain;
    visibility = Private;
    memo = Memo_auto;
    inline = Inline_auto;
    with_location = false;
  }

let v ?(kind = default.kind) ?(visibility = default.visibility)
    ?(memo = default.memo) ?(inline = default.inline)
    ?(with_location = default.with_location) () =
  { kind; visibility; memo; inline; with_location }

let is_transient a = a.memo = Memo_never

let pp ppf a =
  let words = ref [] in
  let add w = words := w :: !words in
  if a.with_location then add "withLocation";
  (match a.inline with
  | Inline_auto -> ()
  | Inline_always -> add "inline"
  | Inline_never -> add "noinline");
  (match a.memo with
  | Memo_auto -> ()
  | Memo_always -> add "memoized"
  | Memo_never -> add "transient");
  (match a.kind with
  | Plain -> ()
  | Generic -> add "generic"
  | Text -> add "text"
  | Void -> add "void");
  if a.visibility = Public then add "public";
  Format.pp_print_string ppf (String.concat " " !words)

let equal (a : t) (b : t) = a = b
