open Rats_support

type t =
  | Unit
  | Chr of char
  | Str of string
  | List of t list
  | Node of node

and node = {
  name : string;
  children : (string option * t) list;
  span : Span.t;
}

let node ?(span = Span.dummy) name children = Node { name; children; span }
let seq_name = "#seq"

let seq ?(span = Span.dummy) parts =
  let keep = function None, Unit -> false | _ -> true in
  match List.filter keep parts with
  | [] -> Unit
  | [ (None, v) ] -> v
  | parts -> Node { name = seq_name; children = parts; span }

let is_unit = function Unit -> true | _ -> false

let components = function
  | Unit -> []
  | Node n when n.name = seq_name -> n.children
  | v -> [ (None, v) ]

let child v l =
  match v with
  | Node n ->
      List.find_map
        (fun (lbl, c) -> if lbl = Some l then Some c else None)
        n.children
  | _ -> None

let child_exn v l =
  match child v l with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Value.child_exn: no child %S" l)

let nth_child v i =
  match v with
  | Node n -> ( match List.nth_opt n.children i with
    | Some (_, c) -> Some c
    | None -> None)
  | _ -> None

let name = function Node n -> Some n.name | _ -> None

let escape s = String.concat "" (List.map (fun c ->
    match c with
    | '"' -> "\\\""
    | '\\' -> "\\\\"
    | '\n' -> "\\n"
    | '\t' -> "\\t"
    | '\r' -> "\\r"
    | c when Char.code c < 32 || Char.code c > 126 ->
        Printf.sprintf "\\x%02x" (Char.code c)
    | c -> String.make 1 c)
    (List.init (String.length s) (String.get s)))

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Chr c -> Format.fprintf ppf "'%s'" (escape (String.make 1 c))
  | Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List vs ->
      Format.fprintf ppf "@[<hv 1>[%a]@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp)
        vs
  | Node n ->
      Format.fprintf ppf "@[<hv 2>(%s%a)@]" n.name pp_children n.children

and pp_children ppf children =
  List.iter
    (fun (lbl, v) ->
      match lbl with
      | None -> Format.fprintf ppf "@ %a" pp v
      | Some l -> Format.fprintf ppf "@ %s:%a" l pp v)
    children

let to_string v = Format.asprintf "%a" pp v

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Chr a, Chr b -> a = b
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Node a, Node b ->
      String.equal a.name b.name
      && List.length a.children = List.length b.children
      && List.for_all2
           (fun (la, va) (lb, vb) -> la = lb && equal va vb)
           a.children b.children
  | (Unit | Chr _ | Str _ | List _ | Node _), _ -> false

let rec count_nodes = function
  | Unit | Chr _ | Str _ -> 0
  | List vs -> List.fold_left (fun acc v -> acc + count_nodes v) 0 vs
  | Node n ->
      1 + List.fold_left (fun acc (_, v) -> acc + count_nodes v) 0 n.children
