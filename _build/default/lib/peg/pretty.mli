(** Printing PEG IR back as grammar source.

    The syntax is the module language of {!Rats_meta}: printing a grammar
    and re-parsing it yields a structurally equal grammar (a property the
    test suite checks). Used by [rml compose --print], golden tests and
    error messages. *)

val pp_expr : Format.formatter -> Expr.t -> unit
(** Prints at choice precedence; inserts parentheses as needed. *)

val expr_to_string : Expr.t -> string

val pp_production : Format.formatter -> Production.t -> unit
(** One production, [attrs kind Name = body ;] on as many lines as the
    body needs. *)

val pp_grammar : Format.formatter -> Grammar.t -> unit
(** All productions in definition order, start symbol first in a
    comment header. *)

val grammar_to_string : Grammar.t -> string

val quote_string : string -> string
(** ["text"] with grammar-source escaping — shared with the code
    generator. *)

val quote_char : char -> string
(** ['c'] with grammar-source escaping. *)

val attr_words : Attr.t -> string list
(** Non-default attributes as source keywords in canonical order, e.g.
    [["public"; "transient"; "void"]]. *)
