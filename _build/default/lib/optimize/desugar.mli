(** Repetition desugaring — the {e pessimization} that reconstructs the
    paper's true baseline.

    Early packrat generators (and the paper's baseline) express [e*],
    [e+] and [e?] through helper nonterminals so that every construct is
    memoized:

    {v  A = e A / ()        for e*  v}

    Rats!'s "repetitions" optimization replaces those helpers with direct
    iteration. Our engine iterates natively, so the optimized form is the
    identity; this pass builds the {e desugared} grammar used as the
    starting rung of the E3 optimization ladder.

    Recognition (language) is preserved exactly; semantic value shapes of
    the expanded constructs are not ([e*] yields nested pair nodes rather
    than a list), so equivalence tests on desugared grammars compare
    acceptance and consumed length, not values. *)

open Rats_peg

val expand_repetitions : Grammar.t -> Grammar.t
(** Replace every [Star]/[Plus] with references to synthesized helper
    productions (named [Prod$repN]) and every [Opt e] with [(e / ())].
    Helpers are private, [Plain], and memoizable ([Memo_auto]). *)

val expanded_helpers : Grammar.t -> string list
(** Names of helper productions present in a grammar (for tests and
    statistics). *)
