lib/optimize/pipeline.mli: Grammar Rats_peg Rats_runtime Rats_support
