lib/optimize/desugar.mli: Grammar Rats_peg
