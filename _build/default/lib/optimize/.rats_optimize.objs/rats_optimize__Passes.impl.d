lib/optimize/passes.ml: Analysis Attr Either Expr Grammar Hashtbl List Option Pretty Printf Production Rats_peg String
