lib/optimize/desugar.ml: Attr Expr Grammar List Printf Production Rats_peg String
