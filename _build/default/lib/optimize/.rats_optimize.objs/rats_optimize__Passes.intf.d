lib/optimize/passes.mli: Analysis Grammar Rats_peg
