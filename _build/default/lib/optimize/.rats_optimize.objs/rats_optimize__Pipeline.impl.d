lib/optimize/pipeline.ml: Desugar Grammar List Passes Rats_peg Rats_runtime
