open Rats_peg

let helper_marker = "$rep"
let placeholder = "%placeholder%"

let expand_repetitions g =
  let extra = ref [] in
  let transform (p : Production.t) =
    let counter = ref 0 in
    (* Helper bodies need to reference themselves; they are created with a
       placeholder reference that is patched to the helper's own name
       below. *)
    let add_helper body =
      incr counter;
      let name = Printf.sprintf "%s%s%d" p.name helper_marker !counter in
      extra :=
        Production.v
          ~attrs:(Attr.v ~kind:Attr.Plain ~visibility:Attr.Private ())
          ~origin:p.origin name body
        :: !extra;
      name
    in
    let star_helper x =
      add_helper
        (Expr.alt [ Expr.seq [ x; Expr.ref_ placeholder ]; Expr.empty ])
    in
    let rec go (e : Expr.t) =
      match e.it with
      | Expr.Star x ->
          let x = go x in
          Expr.ref_ ~loc:e.loc (star_helper x)
      | Expr.Plus x ->
          let x = go x in
          Expr.seq ~loc:e.loc [ x; Expr.ref_ (star_helper x) ]
      | Expr.Opt x ->
          let x = go x in
          Expr.alt ~loc:e.loc [ x; Expr.empty ]
      | _ -> Expr.map_children go e
    in
    Production.with_expr p (go p.expr)
  in
  let prods = List.map transform (Grammar.productions g) in
  let helpers =
    List.rev_map
      (fun (h : Production.t) ->
        Production.with_expr h
          (Expr.rename_refs
             (fun n -> if n = placeholder then h.name else n)
             h.expr))
      !extra
  in
  Grammar.make_exn ~start:(Grammar.start g) (prods @ helpers)

let is_helper_name name =
  let m = helper_marker in
  let lm = String.length m and ln = String.length name in
  let rec find i =
    if i + lm > ln then false
    else if String.sub name i lm = m then true
    else find (i + 1)
  in
  find 0

let expanded_helpers g =
  List.filter_map
    (fun (p : Production.t) ->
      if is_helper_name p.name then Some p.name else None)
    (Grammar.productions g)
