(** Half-open byte ranges into a source text.

    A span [{start_; stop}] covers offsets [start_ <= i < stop]. Spans are
    the unit of location information threaded through the module-language
    AST, the PEG IR and diagnostics. *)

type t = private { start_ : int; stop : int }

val v : start_:int -> stop:int -> t
(** [v ~start_ ~stop] is the span from [start_] (inclusive) to [stop]
    (exclusive). Raises [Invalid_argument] if [start_ < 0] or
    [stop < start_]. *)

val point : int -> t
(** [point i] is the empty span at offset [i]. *)

val dummy : t
(** [dummy] is the empty span at offset 0, for synthesized nodes. *)

val start : t -> int
val stop : t -> int

val length : t -> int
(** [length s] is the number of bytes covered by [s]. *)

val is_dummy : t -> bool

val union : t -> t -> t
(** [union a b] is the smallest span covering both [a] and [b]; dummy spans
    are absorbed. *)

val contains : t -> int -> bool
(** [contains s i] is true when offset [i] lies inside [s]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
