type severity = Error | Warning | Note

type t = {
  severity : severity;
  span : Span.t;
  message : string;
  notes : string list;
}

let make severity ?(span = Span.dummy) ?(notes = []) message =
  { severity; span; message; notes }

let error ?span ?notes message = make Error ?span ?notes message
let warning ?span ?notes message = make Warning ?span ?notes message
let note ?span ?notes message = make Note ?span ?notes message

let errorf ?span ?notes fmt =
  Format.kasprintf (fun message -> error ?span ?notes message) fmt

let is_error d = d.severity = Error

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp ?source ppf d =
  let label = severity_label d.severity in
  (match source with
  | Some src when not (Span.is_dummy d.span) ->
      Format.fprintf ppf "%a: %s: %s" (Source.pp_location src)
        (Span.start d.span) label d.message;
      Format.fprintf ppf "@,%a" (Source.pp_excerpt src) d.span
  | _ -> Format.fprintf ppf "%s: %s" label d.message);
  List.iter (fun n -> Format.fprintf ppf "@,  note: %s" n) d.notes

let to_string ?source d = Format.asprintf "@[<v>%a@]" (pp ?source) d

exception Fail of t

let fail ?span ?notes message = raise (Fail (error ?span ?notes message))

let failf ?span ?notes fmt =
  Format.kasprintf (fun message -> fail ?span ?notes message) fmt
