type t = { start_ : int; stop : int }

let v ~start_ ~stop =
  if start_ < 0 then invalid_arg "Span.v: negative start";
  if stop < start_ then invalid_arg "Span.v: stop before start";
  { start_; stop }

let point i = v ~start_:i ~stop:i
let dummy = { start_ = 0; stop = 0 }
let start s = s.start_
let stop s = s.stop
let length s = s.stop - s.start_
let is_dummy s = s.start_ = 0 && s.stop = 0

let union a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { start_ = min a.start_ b.start_; stop = max a.stop b.stop }

let contains s i = i >= s.start_ && i < s.stop
let equal a b = a.start_ = b.start_ && a.stop = b.stop

let compare a b =
  let c = Int.compare a.start_ b.start_ in
  if c <> 0 then c else Int.compare a.stop b.stop

let pp ppf s = Format.fprintf ppf "[%d,%d)" s.start_ s.stop
