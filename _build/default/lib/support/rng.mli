(** Small deterministic PRNG (splitmix64) for reproducible workloads.

    The benchmark corpora and property tests need randomness that is
    stable across runs and machines; OCaml's [Random] state semantics are
    version-dependent, so we carry our own. *)

type t

val create : int -> t
(** [create seed] is a fresh generator; equal seeds give equal streams. *)

val copy : t -> t

val next : t -> int64
(** [next t] is the next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)

val bool : t -> bool

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element. Raises on empty arrays. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** [pick_weighted t choices] draws proportionally to the integer weights.
    Raises [Invalid_argument] on an empty list or non-positive total. *)
