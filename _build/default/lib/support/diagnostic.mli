(** Structured diagnostics for grammar composition, analysis and parsing.

    Every user-facing failure in the pipeline — a module that imports a
    missing module, a left-recursive production, a parse error — is
    reported as a [Diagnostic.t] so that the CLI, the tests and the API
    all render errors the same way. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  span : Span.t;  (** where; {!Span.dummy} when there is no location *)
  message : string;  (** one-line summary *)
  notes : string list;  (** extra lines: hints, the cycle, the candidates *)
}

val error : ?span:Span.t -> ?notes:string list -> string -> t
val warning : ?span:Span.t -> ?notes:string list -> string -> t
val note : ?span:Span.t -> ?notes:string list -> string -> t

val errorf :
  ?span:Span.t -> ?notes:string list -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [errorf fmt ...] is [error (Format.asprintf fmt ...)]. *)

val is_error : t -> bool

val pp : ?source:Source.t -> Format.formatter -> t -> unit
(** [pp ~source ppf d] renders [d]; when [source] is given and the span is
    real, a [file:line:col] prefix and an excerpt with caret are shown. *)

val to_string : ?source:Source.t -> t -> string

exception Fail of t
(** Carrier used by pipeline stages that abort on the first error. *)

val fail : ?span:Span.t -> ?notes:string list -> string -> 'a
(** [fail msg] raises {!Fail} with an error diagnostic. *)

val failf :
  ?span:Span.t -> ?notes:string list -> ('a, Format.formatter, unit, 'b) format4 -> 'a
