type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: fast, decent quality, trivially seedable. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L
let in_range t lo hi = lo + int t (hi - lo + 1)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.pick_weighted: non-positive total";
  let n = int t total in
  let rec go n = function
    | [] -> invalid_arg "Rng.pick_weighted: empty"
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go n choices
