lib/support/diagnostic.mli: Format Source Span
