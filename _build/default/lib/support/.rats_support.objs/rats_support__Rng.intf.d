lib/support/rng.mli:
