lib/support/span.mli: Format
