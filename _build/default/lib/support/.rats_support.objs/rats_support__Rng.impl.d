lib/support/rng.ml: Array Int64 List
