lib/support/span.ml: Format Int
