lib/support/diagnostic.ml: Format List Source Span
