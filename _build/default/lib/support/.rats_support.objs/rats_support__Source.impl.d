lib/support/source.ml: Array Format In_channel List Span String
