lib/support/source.mli: Format Span
