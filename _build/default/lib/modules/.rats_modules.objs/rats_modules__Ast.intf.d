lib/modules/ast.mli: Attr Diagnostic Expr Rats_peg Rats_support Source Span
