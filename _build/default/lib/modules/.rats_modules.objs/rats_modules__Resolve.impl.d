lib/modules/resolve.ml: Analysis Ast Attr Diagnostic Expr Grammar Hashtbl List Map Option Printf Production Rats_peg Rats_support Span String
