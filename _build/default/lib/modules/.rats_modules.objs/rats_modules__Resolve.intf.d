lib/modules/resolve.mli: Ast Diagnostic Grammar Rats_peg Rats_support
