lib/modules/ast.ml: Attr Diagnostic Expr Format Hashtbl List Rats_peg Rats_support Source Span String
