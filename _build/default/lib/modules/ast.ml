open Rats_support
open Rats_peg

type dep_kind = Import | Modify

type dependency = {
  dep_kind : dep_kind;
  target : string;
  args : string list;
  alias : string option;
  dep_loc : Span.t;
}

type placement = Append | Prepend | Before of string | After of string

type item =
  | Define of {
      name : string;
      attrs : Attr.t;
      expr : Expr.t;
      item_loc : Span.t;
    }
  | Override of {
      name : string;
      attrs : Attr.t option;
      expr : Expr.t;
      item_loc : Span.t;
    }
  | Add of {
      name : string;
      placement : placement;
      alts : Expr.alt list;
      item_loc : Span.t;
    }
  | Remove of { name : string; labels : string list; item_loc : Span.t }

type t = {
  name : string;
  params : string list;
  deps : dependency list;
  items : item list;
  loc : Span.t;
  source : Source.t option;
}

let v ?(params = []) ?(deps = []) ?(loc = Span.dummy) ?source name items =
  { name; params; deps; items; loc; source }

let import ?alias ?(args = []) ?(loc = Span.dummy) target =
  { dep_kind = Import; target; args; alias; dep_loc = loc }

let modify ?alias ?(args = []) ?(loc = Span.dummy) target =
  { dep_kind = Modify; target; args; alias; dep_loc = loc }

let define ?(attrs = Attr.default) ?(loc = Span.dummy) name expr =
  Define { name; attrs; expr; item_loc = loc }

let override ?attrs ?(loc = Span.dummy) name expr =
  Override { name; attrs; expr; item_loc = loc }

let add ?(placement = Append) ?(loc = Span.dummy) name alts =
  Add { name; placement; alts; item_loc = loc }

let add_alt ?placement ?loc name ~label expr =
  add ?placement ?loc name [ { Expr.label = Some label; body = expr } ]

let remove ?(loc = Span.dummy) name labels = Remove { name; labels; item_loc = loc }

let simple_name name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let modify_dep m =
  List.find_opt (fun d -> d.dep_kind = Modify) m.deps

let item_name = function
  | Define { name; _ } | Override { name; _ } | Add { name; _ }
  | Remove { name; _ } ->
      name

let item_loc = function
  | Define { item_loc; _ } | Override { item_loc; _ } | Add { item_loc; _ }
  | Remove { item_loc; _ } ->
      item_loc

let dep_alias d =
  match d.alias with Some a -> a | None -> simple_name d.target

let validate m =
  let errs = ref [] in
  let err ?span fmt = Format.kasprintf (fun msg ->
      errs := Diagnostic.error ?span msg :: !errs) fmt
  in
  (* At most one modify dependency. *)
  (match List.filter (fun d -> d.dep_kind = Modify) m.deps with
  | [] | [ _ ] -> ()
  | _ :: second :: _ ->
      err ~span:second.dep_loc
        "module %S has more than one `modify' dependency" m.name);
  (* Modification items require a modify dependency. *)
  (if modify_dep m = None then
     List.iter
       (fun item ->
         match item with
         | Define _ -> ()
         | Override _ | Add _ | Remove _ ->
             err ~span:(item_loc item)
               "module %S modifies production %S but has no `modify' \
                dependency"
               m.name (item_name item))
       m.items);
  (* Duplicate aliases and parameters. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then
        err "module %S declares parameter %S twice" m.name p
      else Hashtbl.add seen p ())
    m.params;
  List.iter
    (fun d ->
      let a = dep_alias d in
      if Hashtbl.mem seen a then
        err ~span:d.dep_loc
          "module %S: alias %S collides with another alias or parameter"
          m.name a
      else Hashtbl.add seen a ())
    m.deps;
  (* Duplicate Define items within the module. *)
  let defined = Hashtbl.create 8 in
  List.iter
    (fun item ->
      match item with
      | Define { name; item_loc; _ } ->
          if Hashtbl.mem defined name then
            err ~span:item_loc "module %S defines production %S twice" m.name
              name
          else Hashtbl.add defined name ()
      | Override _ | Add _ | Remove _ -> ())
    m.items;
  (* References may have at most one qualifier segment, and the qualifier
     must be a known alias or parameter. *)
  let quals_ok = Hashtbl.copy seen in
  let check_expr expr =
    List.iter
      (fun r ->
        match String.index_opt r '.' with
        | None -> ()
        | Some i ->
            let qual = String.sub r 0 i in
            let rest = String.sub r (i + 1) (String.length r - i - 1) in
            if String.contains rest '.' then
              err "module %S: reference %S has a nested qualifier" m.name r
            else if not (Hashtbl.mem quals_ok qual) then
              err
                "module %S: reference %S uses unknown qualifier %S (not a \
                 parameter or dependency alias)"
                m.name r qual)
      (Expr.refs expr)
  in
  List.iter
    (fun item ->
      match item with
      | Define { expr; _ } | Override { expr; _ } -> check_expr expr
      | Add { alts; _ } ->
          List.iter (fun (a : Expr.alt) -> check_expr a.body) alts
      | Remove _ -> ())
    m.items;
  List.rev !errs
