(** Composing grammar modules into a flat grammar.

    Resolution instantiates modules (a module applied to actual module
    arguments is an {e instance}; instances are shared by canonical key),
    applies modifications, rebinds references and flattens everything
    into one {!Rats_peg.Grammar.t}.

    Reference binding follows Rats!'s virtual semantics: an unqualified
    reference inside a production binds to the {e final modified} version
    of that production — if module [Ext] modifies [Base], then recursion
    inside productions copied from [Base] reaches the extended
    definitions, which is what makes [modify] more powerful than textual
    inclusion. Qualified references ([Alias.Prod]) bind statically to the
    instance the alias names. *)

open Rats_support
open Rats_peg

type library
(** An immutable collection of module definitions, keyed by name. *)

val library : Ast.t list -> (library, Diagnostic.t list) result
(** Validates each module ({!Ast.validate}) and rejects duplicate module
    names. *)

val library_exn : Ast.t list -> library
val modules : library -> Ast.t list
val find_module : library -> string -> Ast.t option

val extend : library -> Ast.t list -> (library, Diagnostic.t list) result
(** Add modules to an existing library — how a user composes their own
    extension modules with a published base. *)

(** Per-instance composition statistics, feeding experiment E1. *)
type instance_stat = {
  instance : string;  (** canonical instance key, e.g. [Stmt(CExpr)] *)
  module_name : string;
  inherited : int;  (** productions copied from the [modify] target *)
  defined : int;  (** new productions this module contributes *)
  overridden : int;
  alternatives_added : int;
  alternatives_removed : int;
}

type stats = {
  instances : instance_stat list;  (** in instantiation order *)
  productions : int;  (** total productions in the flat grammar *)
}

val resolve :
  library ->
  root:string ->
  ?args:string list ->
  ?start:string ->
  unit ->
  (Grammar.t * stats, Diagnostic.t list) result
(** [resolve lib ~root ()] instantiates [root] (which must take no
    parameters unless [args] supplies concrete module names) and returns
    the flattened grammar. [start] picks the start production by its
    flat name; default is the root instance's first public production.

    Flat production names are prettified: the bare local name when
    globally unique, otherwise qualified by the instance label. *)

val resolve_exn :
  library -> root:string -> ?args:string list -> ?start:string -> unit -> Grammar.t
