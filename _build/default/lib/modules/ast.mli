(** Abstract syntax of the grammar-module language.

    A grammar module packages productions plus dependencies on other
    modules, mirroring Rats!:

    - [module lang.Expr(Space);] — modules are named (possibly dotted)
      and may take {e module parameters}; inside the body a parameter
      name qualifies production references ([Space.Spacing]).
    - [import lang.Ident(CSpace) as Id;] — instantiate another module and
      make its productions available under the alias.
    - [modify lang.Expr(Space);] — at most one per module: this module's
      items {e edit} the target's productions, producing a new module
      value (the original is untouched, so unrelated compositions can
      still import it).

    Items are either full production definitions or modifications of
    productions the [modify] target defines: override the body, add
    alternatives at a labeled position, or remove labeled alternatives.
    Alternatives are addressed by the labels of {!Rats_peg.Expr.alt}. *)

open Rats_support
open Rats_peg

type dep_kind = Import | Modify

type dependency = {
  dep_kind : dep_kind;
  target : string;  (** module name, or a parameter of this module *)
  args : string list;  (** actual module names / parameters *)
  alias : string option;
      (** qualifier for references; defaults to the target's last name
          segment *)
  dep_loc : Span.t;
}

(** Where [+=] splices new alternatives. *)
type placement =
  | Append  (** after all existing alternatives *)
  | Prepend  (** before all existing alternatives *)
  | Before of string  (** before the alternative labeled so *)
  | After of string  (** after the alternative labeled so *)

type item =
  | Define of {
      name : string;
      attrs : Attr.t;
      expr : Expr.t;
      item_loc : Span.t;
    }  (** [attrs Kind Name = body;] — a brand-new production *)
  | Override of {
      name : string;
      attrs : Attr.t option;  (** [None] keeps the target's attributes *)
      expr : Expr.t;
      item_loc : Span.t;
    }  (** [Name := body;] — replace an inherited production's body *)
  | Add of {
      name : string;
      placement : placement;
      alts : Expr.alt list;
      item_loc : Span.t;
    }  (** [Name += <L> alt / ... ;] with optional [before]/[after] *)
  | Remove of {
      name : string;
      labels : string list;
      item_loc : Span.t;
    }  (** [Name -= L1, L2;] *)

type t = {
  name : string;
  params : string list;
  deps : dependency list;
  items : item list;
  loc : Span.t;
  source : Source.t option;
      (** retained for diagnostics when parsed from text *)
}

val v :
  ?params:string list ->
  ?deps:dependency list ->
  ?loc:Span.t ->
  ?source:Source.t ->
  string ->
  item list ->
  t

val import : ?alias:string -> ?args:string list -> ?loc:Span.t -> string -> dependency
val modify : ?alias:string -> ?args:string list -> ?loc:Span.t -> string -> dependency

val define :
  ?attrs:Attr.t -> ?loc:Span.t -> string -> Expr.t -> item

val override : ?attrs:Attr.t -> ?loc:Span.t -> string -> Expr.t -> item
val add : ?placement:placement -> ?loc:Span.t -> string -> Expr.alt list -> item
val add_alt :
  ?placement:placement -> ?loc:Span.t -> string -> label:string -> Expr.t -> item
(** Convenience: add one labeled alternative. *)

val remove : ?loc:Span.t -> string -> string list -> item

val simple_name : string -> string
(** Last dot-separated segment of a module name: the default alias. *)

val dep_alias : dependency -> string
(** The dependency's explicit alias, or the target's simple name. *)

val modify_dep : t -> dependency option
(** The module's [modify] dependency, if any (validation ensures at most
    one). *)

val item_name : item -> string
val item_loc : item -> Span.t

val validate : t -> Diagnostic.t list
(** Structural checks that need no library context: several [modify]
    dependencies, modification items without a [modify] dependency,
    duplicate aliases, duplicate parameter names, parameters shadowing
    aliases, references with more than one qualifier segment. *)
