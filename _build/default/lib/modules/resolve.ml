open Rats_support
open Rats_peg
module SMap = Map.Make (String)

type library = { mods : Ast.t SMap.t; order : string list }

let library asts =
  let diags =
    List.concat_map Ast.validate asts
    @
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (m : Ast.t) ->
        if Hashtbl.mem seen m.Ast.name then
          Some
            (Diagnostic.errorf ~span:m.Ast.loc "duplicate module %S"
               m.Ast.name)
        else (
          Hashtbl.add seen m.Ast.name ();
          None))
      asts
  in
  if diags <> [] then Error diags
  else
    Ok
      {
        mods =
          List.fold_left
            (fun acc (m : Ast.t) -> SMap.add m.Ast.name m acc)
            SMap.empty asts;
        order = List.map (fun (m : Ast.t) -> m.Ast.name) asts;
      }

let library_exn asts =
  match library asts with
  | Ok l -> l
  | Error (d :: _) -> raise (Diagnostic.Fail d)
  | Error [] -> assert false

let modules lib =
  List.filter_map (fun n -> SMap.find_opt n lib.mods) lib.order

let find_module lib name = SMap.find_opt name lib.mods

let extend lib asts =
  match library asts with
  | Error ds -> Error ds
  | Ok _ ->
      let clashes =
        List.filter_map
          (fun (m : Ast.t) ->
            if SMap.mem m.Ast.name lib.mods then
              Some
                (Diagnostic.errorf ~span:m.Ast.loc
                   "module %S is already defined in the library" m.Ast.name)
            else None)
          asts
      in
      if clashes <> [] then Error clashes
      else
        Ok
          {
            mods =
              List.fold_left
                (fun acc (m : Ast.t) -> SMap.add m.Ast.name m acc)
                lib.mods asts;
            order = lib.order @ List.map (fun (m : Ast.t) -> m.Ast.name) asts;
          }

(* --- resolution -------------------------------------------------------- *)

type instance_stat = {
  instance : string;
  module_name : string;
  inherited : int;
  defined : int;
  overridden : int;
  alternatives_added : int;
  alternatives_removed : int;
}

type stats = { instances : instance_stat list; productions : int }

(* Within entry expressions a reference is either a bare local name (binds
   to the entry's current home instance — virtual) or "key::N" (binds to a
   fixed instance — static). "::" cannot occur in source names. *)
let static_ref key local = key ^ "::" ^ local

let split_static r =
  match String.index_opt r ':' with
  | Some i when i + 1 < String.length r && r.[i + 1] = ':' ->
      Some (String.sub r 0 i, String.sub r (i + 2) (String.length r - i - 2))
  | _ -> None

type entry = {
  local : string;
  attrs : Attr.t;
  expr : Expr.t;
  origin : string;
  e_loc : Span.t;
}

type instance = {
  key : string;
  label : string;
  module_name : string;
  mutable entries : entry list;
  mutable st : instance_stat;
}

type binding = Self | Inst of string

type ctx = {
  lib : library;
  instances : (string, instance) Hashtbl.t;
  mutable inst_order : instance list;  (* reverse creation order *)
  in_progress : (string, unit) Hashtbl.t;
  labels : (string, int) Hashtbl.t;  (* label -> use count, for dedup *)
}

let fail = Diagnostic.fail
let failf = Diagnostic.failf

let fresh_label ctx base =
  match Hashtbl.find_opt ctx.labels base with
  | None ->
      Hashtbl.add ctx.labels base 1;
      base
  | Some n ->
      Hashtbl.replace ctx.labels base (n + 1);
      Printf.sprintf "%s~%d" base (n + 1)

let instance_key mname arg_keys =
  match arg_keys with
  | [] -> mname
  | _ -> Printf.sprintf "%s(%s)" mname (String.concat "," arg_keys)

(* Rewrite the references of an expression written in module [m] against
   environment [env]: qualified references become static or local
   (modify-alias), bare names stay local. *)
let rewrite_refs ~mname env expr =
  Expr.rename_refs
    (fun r ->
      match String.index_opt r '.' with
      | None -> r
      | Some i -> (
          let qual = String.sub r 0 i in
          let name = String.sub r (i + 1) (String.length r - i - 1) in
          match SMap.find_opt qual env with
          | Some Self -> name
          | Some (Inst key) -> static_ref key name
          | None ->
              failf "module %S: reference %S uses unknown qualifier %S" mname
                r qual))
    expr

let find_entry inst name =
  List.find_opt (fun e -> String.equal e.local name) inst.entries

let replace_entry inst name f =
  inst.entries <-
    List.map
      (fun e -> if String.equal e.local name then f e else e)
      inst.entries

let alts_of_expr (e : Expr.t) =
  match e.it with
  | Expr.Alt alts -> alts
  | _ -> [ { Expr.label = None; body = e } ]

let alt_labels alts =
  List.filter_map (fun (a : Expr.alt) -> a.label) alts

let splice ~span ~mname ~pname placement existing fresh =
  (* Reject label collisions up front. *)
  let existing_labels = alt_labels existing in
  List.iter
    (fun l ->
      if List.mem l existing_labels then
        failf ~span
          "module %S: alternative label %S already exists in production %S"
          mname l pname)
    (alt_labels fresh);
  let position_of l =
    let rec go i = function
      | [] ->
          failf ~span "module %S: production %S has no alternative labeled %S"
            mname pname l
      | (a : Expr.alt) :: rest ->
          if a.label = Some l then i else go (i + 1) rest
    in
    go 0 existing
  in
  match placement with
  | Ast.Append -> existing @ fresh
  | Ast.Prepend -> fresh @ existing
  | Ast.Before l ->
      let i = position_of l in
      List.filteri (fun j _ -> j < i) existing
      @ fresh
      @ List.filteri (fun j _ -> j >= i) existing
  | Ast.After l ->
      let i = position_of l in
      List.filteri (fun j _ -> j <= i) existing
      @ fresh
      @ List.filteri (fun j _ -> j > i) existing

let rec instantiate ctx mname arg_keys span =
  let key = instance_key mname arg_keys in
  match Hashtbl.find_opt ctx.instances key with
  | Some inst -> inst
  | None ->
      if Hashtbl.mem ctx.in_progress key then
        fail ~span
          (Printf.sprintf "cyclic module instantiation involving %S" key);
      let ast =
        match find_module ctx.lib mname with
        | Some m -> m
        | None -> failf ~span "unknown module %S" mname
      in
      if List.length ast.Ast.params <> List.length arg_keys then
        failf ~span "module %S expects %d argument(s), got %d" mname
          (List.length ast.Ast.params)
          (List.length arg_keys);
      Hashtbl.add ctx.in_progress key ();
      let inst = build_instance ctx key ast arg_keys in
      Hashtbl.remove ctx.in_progress key;
      Hashtbl.replace ctx.instances key inst;
      ctx.inst_order <- inst :: ctx.inst_order;
      inst

and resolve_name ctx env name span =
  (* An actual-argument or dependency-target name: a parameter / alias in
     scope, or a module from the library (instantiated with no args). *)
  match SMap.find_opt name env with
  | Some (Inst key) -> key
  | Some Self ->
      failf ~span "the `modify' alias %S cannot be used as a module argument"
        name
  | None -> (instantiate ctx name [] span).key

and build_instance ctx key (ast : Ast.t) arg_keys =
  let mname = ast.Ast.name in
  (* Environment: parameters first, then dependencies in order. *)
  let env =
    List.fold_left2
      (fun env p k -> SMap.add p (Inst k) env)
      SMap.empty ast.Ast.params arg_keys
  in
  let base = ref None in
  let env =
    List.fold_left
      (fun env (d : Ast.dependency) ->
        let dep_args =
          List.map (fun a -> resolve_name ctx env a d.Ast.dep_loc) d.Ast.args
        in
        let target =
          match (SMap.find_opt d.Ast.target env, dep_args) with
          | Some (Inst k), [] -> Hashtbl.find ctx.instances k
          | Some (Inst _), _ :: _ ->
              failf ~span:d.Ast.dep_loc
                "module %S: parameter %S cannot take arguments" mname
                d.Ast.target
          | Some Self, _ ->
              failf ~span:d.Ast.dep_loc
                "module %S: %S does not name a module" mname d.Ast.target
          | None, _ -> instantiate ctx d.Ast.target dep_args d.Ast.dep_loc
        in
        match d.Ast.dep_kind with
        | Ast.Import -> SMap.add (Ast.dep_alias d) (Inst target.key) env
        | Ast.Modify ->
            base := Some target;
            SMap.add (Ast.dep_alias d) Self env)
      env ast.Ast.deps
  in
  let st =
    {
      instance = key;
      module_name = mname;
      inherited = 0;
      defined = 0;
      overridden = 0;
      alternatives_added = 0;
      alternatives_removed = 0;
    }
  in
  let inst =
    {
      key;
      label = fresh_label ctx (Ast.simple_name mname);
      module_name = mname;
      entries = [];
      st;
    }
  in
  (match !base with
  | None -> ()
  | Some b ->
      inst.entries <- b.entries;
      inst.st <- { inst.st with inherited = List.length b.entries });
  List.iter (apply_item ctx inst mname env) ast.Ast.items;
  inst

and apply_item ctx inst mname env item =
  ignore ctx;
  match item with
  | Ast.Define { name; attrs; expr; item_loc } ->
      (match find_entry inst name with
      | Some prev ->
          failf ~span:item_loc
            "module %S defines production %S, which module %S already \
             defines (use `:=' after a `modify' to override)"
            mname name prev.origin
      | None -> ());
      let expr = rewrite_refs ~mname env expr in
      inst.entries <-
        inst.entries @ [ { local = name; attrs; expr; origin = mname; e_loc = item_loc } ];
      inst.st <- { inst.st with defined = inst.st.defined + 1 }
  | Ast.Override { name; attrs; expr; item_loc } ->
      (match find_entry inst name with
      | None ->
          failf ~span:item_loc
            "module %S overrides production %S, which is not defined by its \
             `modify' target"
            mname name
      | Some _ -> ());
      let expr = rewrite_refs ~mname env expr in
      replace_entry inst name (fun e ->
          {
            e with
            expr;
            attrs = Option.value attrs ~default:e.attrs;
            origin = mname;
            e_loc = item_loc;
          });
      inst.st <- { inst.st with overridden = inst.st.overridden + 1 }
  | Ast.Add { name; placement; alts; item_loc } ->
      (match find_entry inst name with
      | None ->
          failf ~span:item_loc
            "module %S adds alternatives to production %S, which is not \
             defined by its `modify' target"
            mname name
      | Some entry ->
          let fresh =
            List.map
              (fun (a : Expr.alt) ->
                { a with body = rewrite_refs ~mname env a.body })
              alts
          in
          let merged =
            splice ~span:item_loc ~mname ~pname:name placement
              (alts_of_expr entry.expr) fresh
          in
          replace_entry inst name (fun e ->
              { e with expr = Expr.mk ~loc:item_loc (Expr.Alt merged) });
          inst.st <-
            {
              inst.st with
              alternatives_added =
                inst.st.alternatives_added + List.length fresh;
            })
  | Ast.Remove { name; labels; item_loc } -> (
      match find_entry inst name with
      | None ->
          failf ~span:item_loc
            "module %S removes alternatives from production %S, which is \
             not defined by its `modify' target"
            mname name
      | Some entry ->
          let existing = alts_of_expr entry.expr in
          let have = alt_labels existing in
          List.iter
            (fun l ->
              if not (List.mem l have) then
                failf ~span:item_loc
                  "module %S: production %S has no alternative labeled %S"
                  mname name l)
            labels;
          let remaining =
            List.filter
              (fun (a : Expr.alt) ->
                match a.label with
                | Some l -> not (List.mem l labels)
                | None -> true)
              existing
          in
          if remaining = [] then
            failf ~span:item_loc
              "module %S removes every alternative of production %S" mname
              name;
          replace_entry inst name (fun e ->
              { e with expr = Expr.mk ~loc:item_loc (Expr.Alt remaining) });
          inst.st <-
            {
              inst.st with
              alternatives_removed =
                inst.st.alternatives_removed + List.length labels;
            })

(* --- flattening --------------------------------------------------------- *)

let flatten ctx root_inst start =
  let instances = List.rev ctx.inst_order in
  (* Move the root to the front so the grammar reads top-down. *)
  let instances =
    root_inst :: List.filter (fun i -> i != root_inst) instances
  in
  let entry_exists key local =
    match Hashtbl.find_opt ctx.instances key with
    | None -> false
    | Some inst -> find_entry inst local <> None
  in
  let internal inst_key local = static_ref inst_key local in
  let prods =
    List.concat_map
      (fun inst ->
        List.map
          (fun e ->
            let expr =
              Expr.rename_refs
                (fun r ->
                  match split_static r with
                  | Some (key, local) ->
                      if entry_exists key local then r
                      else
                        failf ~span:e.e_loc
                          "production %S (module %s) references %S, which \
                           instance %S does not define"
                          e.local e.origin local key
                  | None ->
                      if find_entry inst r <> None then internal inst.key r
                      else
                        failf ~span:e.e_loc
                          "production %S (module %s) references undefined \
                           production %S"
                          e.local e.origin r)
                e.expr
            in
            let attrs =
              if inst == root_inst then e.attrs
              else { e.attrs with Attr.visibility = Attr.Private }
            in
            Production.v ~attrs ~loc:e.e_loc ~origin:e.origin
              (internal inst.key e.local)
              expr)
          inst.entries)
      instances
  in
  let g0 =
    match Grammar.make ?start prods with
    | Ok g -> g
    | Error d -> raise (Diagnostic.Fail d)
  in
  (* Prune instances' productions not reachable from the start symbol or
     the root module's public productions. *)
  let a = Analysis.analyze g0 in
  let roots =
    Grammar.start g0
    :: List.filter_map
         (fun (p : Production.t) ->
           if Production.is_public p then Some p.name else None)
         (Grammar.productions g0)
  in
  let keep = Analysis.reachable_from a roots in
  let g1 = Grammar.restrict g0 ~keep:(fun n -> Analysis.StringSet.mem n keep) in
  (* Prettify: bare local name when globally unique, else label-qualified,
     else the internal name. *)
  let locals = Hashtbl.create 64 in
  List.iter
    (fun (p : Production.t) ->
      match split_static p.name with
      | Some (_, local) ->
          Hashtbl.replace locals local
            (1 + Option.value ~default:0 (Hashtbl.find_opt locals local))
      | None -> ())
    (Grammar.productions g1);
  let rename = Hashtbl.create 64 in
  let taken = Hashtbl.create 64 in
  List.iter
    (fun (p : Production.t) ->
      match split_static p.name with
      | None -> ()
      | Some (key, local) ->
          let label =
            match Hashtbl.find_opt ctx.instances key with
            | Some inst -> inst.label
            | None -> key
          in
          let candidate =
            if Hashtbl.find_opt locals local = Some 1 then local
            else label ^ "." ^ local
          in
          let pretty =
            if Hashtbl.mem taken candidate then p.name else candidate
          in
          Hashtbl.add taken pretty ();
          Hashtbl.add rename p.name pretty)
    (Grammar.productions g1);
  let apply_rename n = Option.value ~default:n (Hashtbl.find_opt rename n) in
  let prods =
    List.map
      (fun (p : Production.t) ->
        Production.v ~attrs:p.attrs ~loc:p.loc ~origin:p.origin
          (apply_rename p.name)
          (Expr.rename_refs apply_rename p.expr))
      (Grammar.productions g1)
  in
  match Grammar.make ~start:(apply_rename (Grammar.start g1)) prods with
  | Ok g -> g
  | Error d -> raise (Diagnostic.Fail d)

let resolve lib ~root ?(args = []) ?start () =
  let ctx =
    {
      lib;
      instances = Hashtbl.create 16;
      inst_order = [];
      in_progress = Hashtbl.create 16;
      labels = Hashtbl.create 16;
    }
  in
  try
    let arg_keys =
      List.map (fun a -> (instantiate ctx a [] Span.dummy).key) args
    in
    let root_inst = instantiate ctx root arg_keys Span.dummy in
    (* Choose the start symbol among the root's productions. *)
    let internal_start =
      match start with
      | Some s -> (
          match find_entry root_inst s with
          | Some _ -> Some (static_ref root_inst.key s)
          | None ->
              failf "start symbol %S is not a production of module %S" s
                root_inst.module_name)
      | None -> (
          let pick p = Some (static_ref root_inst.key p.local) in
          match
            List.find_opt
              (fun e -> e.attrs.Attr.visibility = Attr.Public)
              root_inst.entries
          with
          | Some e -> pick e
          | None -> (
              match root_inst.entries with
              | e :: _ -> pick e
              | [] -> failf "module %S has no productions" root))
    in
    let g = flatten ctx root_inst internal_start in
    let stats =
      {
        instances = List.rev_map (fun i -> i.st) ctx.inst_order;
        productions = Grammar.length g;
      }
    in
    Ok (g, stats)
  with Diagnostic.Fail d -> Error [ d ]

let resolve_exn lib ~root ?args ?start () =
  match resolve lib ~root ?args ?start () with
  | Ok (g, _) -> g
  | Error (d :: _) -> raise (Diagnostic.Fail d)
  | Error [] -> assert false
