(** MiniC: the C-subset language assembled from eight grammar modules,
    its three extension modules, and a hand-written recursive-descent
    comparator.

    MiniC keeps the parts of C that stress a parser's design: the
    operator-precedence cascade, statement/declaration ambiguity resolved
    through a {e typedef table} (context-sensitive, handled with the
    stateful-parsing machinery), comments inside the spacing production,
    and keyword/identifier separation done grammatically. *)

open Rats_peg

val texts : string list
(** Base-language module sources. *)

val extension_texts : string list
(** The E6 extension modules ([**], [until], [query]) and the extended
    root [cx.Program]. *)

val grammar : unit -> Grammar.t
(** Base language, rooted at [c.Program]. *)

val extended_grammar : unit -> Grammar.t
(** Extended language, rooted at [cx.Program]. *)

val load : unit -> Grammar.t * Rats_modules.Resolve.stats
val load_extended : unit -> Grammar.t * Rats_modules.Resolve.stats

val parse_hand : string -> (Value.t, string) result
(** Hand-written recursive-descent parser for the {e base} language —
    the role the paper's hand-tuned comparator plays in E2. Accepts the
    same programs as the grammar (validated on the corpus); tree shapes
    are similar but not guaranteed identical. *)
