open Rats_peg

let texts = [ Texts.calc ]
let grammar () = Loader.grammar ~root:"calc.Main" texts
let core_grammar () = Loader.grammar ~args:[ "calc.Space" ] ~root:"calc.Core" texts

(* --- evaluation ---------------------------------------------------------- *)

let bad v = invalid_arg ("Calc.eval: unexpected value " ^ Value.to_string v)

let rec eval (v : Value.t) =
  match v with
  | Value.Node { name = "Sum"; children = [ (_, first); (_, List tails) ]; _ }
    ->
      List.fold_left (apply_tail ( +. ) ( -. ) "+") (eval first) tails
  | Value.Node { name = "Term"; children = [ (_, first); (_, List tails) ]; _ }
    ->
      List.fold_left (apply_tail ( *. ) ( /. ) "*") (eval first) tails
  | Value.Node { name = "Pow"; children = [ (_, base); (_, exp) ]; _ } ->
      Float.pow (eval base) (eval exp)
  | Value.Node { name = "Num"; children = [ (_, Value.Str s) ]; _ } ->
      float_of_string s
  | v -> bad v

and apply_tail plus minus plus_op acc (tail : Value.t) =
  match tail with
  | Value.Node { children = [ (Some "op", Value.Str op); (_, operand) ]; _ } ->
      if String.equal op plus_op then plus acc (eval operand)
      else minus acc (eval operand)
  | v -> bad v

(* --- hand-written comparator ---------------------------------------------- *)

exception Hand_fail of string

let parse_hand input =
  let len = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let fail expected =
    raise
      (Hand_fail
         (Printf.sprintf "parse error at offset %d: expected %s" !pos expected))
  in
  let spacing () =
    while
      !pos < len
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let number () =
    let start = !pos in
    while !pos < len && input.[!pos] >= '0' && input.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail "[0-9]";
    (if
       !pos + 1 < len
       && input.[!pos] = '.'
       && input.[!pos + 1] >= '0'
       && input.[!pos + 1] <= '9'
     then (
       incr pos;
       while !pos < len && input.[!pos] >= '0' && input.[!pos] <= '9' do
         incr pos
       done));
    let text = String.sub input start (!pos - start) in
    spacing ();
    Value.node "Num" [ (None, Value.Str text) ]
  in
  (* Mirrors the composed grammar: Factor tries Pow (Atom ** Factor)
     before the base alternatives, and an Atom without ** is exactly a
     base Factor. *)
  let rec sum () =
    let first = term () in
    let tails = ref [] in
    let rec more () =
      match peek () with
      | Some (('+' | '-') as op) ->
          incr pos;
          spacing ();
          let operand = term () in
          tails :=
            Value.node "SumTail"
              [ (Some "op", Value.Str (String.make 1 op)); (None, operand) ]
            :: !tails;
          more ()
      | _ -> ()
    in
    more ();
    Value.node "Sum" [ (None, first); (None, Value.List (List.rev !tails)) ]
  and term () =
    let first = factor () in
    let tails = ref [] in
    let rec more () =
      match peek () with
      | Some (('*' | '/') as op)
        when not (op = '*' && !pos + 1 < len && input.[!pos + 1] = '*') ->
          incr pos;
          spacing ();
          let operand = factor () in
          tails :=
            Value.node "TermTail"
              [ (Some "op", Value.Str (String.make 1 op)); (None, operand) ]
            :: !tails;
          more ()
      | _ -> ()
    in
    more ();
    Value.node "Term" [ (None, first); (None, Value.List (List.rev !tails)) ]
  and atom () =
    match peek () with
    | Some '(' ->
        incr pos;
        spacing ();
        let v = sum () in
        (match peek () with
        | Some ')' ->
            incr pos;
            spacing ()
        | _ -> fail "\")\"");
        v
    | _ -> number ()
  and factor () =
    let a = atom () in
    if !pos + 1 < len && input.[!pos] = '*' && input.[!pos + 1] = '*' then (
      pos := !pos + 2;
      spacing ();
      let f = factor () in
      Value.node "Pow" [ (None, a); (None, f) ])
    else a
  in
  match
    spacing ();
    let v = sum () in
    if !pos < len then fail "end of input";
    v
  with
  | v -> Ok v
  | exception Hand_fail msg -> Error msg
