let texts = [ Texts.minic_space; Texts.rats_syntax ]
let grammar () = Loader.grammar ~root:"rats.Syntax" texts
