let texts = Texts.minijava_modules
let load () = Loader.load ~root:"j.Program" texts
let grammar () = fst (load ())

(* --- hand-written parser ---------------------------------------------------- *)

open Rats_peg

exception Fail of int * string

type hp = { input : string; len : int; mutable pos : int }

let fail hp expected = raise (Fail (hp.pos, expected))

let keywords =
  [
    "boolean"; "class"; "double"; "else"; "extends"; "false"; "for"; "if";
    "int"; "char"; "long"; "new"; "null"; "return"; "static"; "this"; "true";
    "void"; "while";
  ]

let prim_words = [ "boolean"; "double"; "int"; "char"; "long"; "void" ]
let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let spacing hp =
  let rec go () =
    if hp.pos < hp.len then
      match hp.input.[hp.pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          hp.pos <- hp.pos + 1;
          go ()
      | '/' when hp.pos + 1 < hp.len && hp.input.[hp.pos + 1] = '/' ->
          while hp.pos < hp.len && hp.input.[hp.pos] <> '\n' do
            hp.pos <- hp.pos + 1
          done;
          go ()
      | '/' when hp.pos + 1 < hp.len && hp.input.[hp.pos + 1] = '*' ->
          hp.pos <- hp.pos + 2;
          let rec close () =
            if hp.pos + 1 >= hp.len then fail hp "\"*/\""
            else if hp.input.[hp.pos] = '*' && hp.input.[hp.pos + 1] = '/' then
              hp.pos <- hp.pos + 2
            else (
              hp.pos <- hp.pos + 1;
              close ())
          in
          close ();
          go ()
      | _ -> ()
  in
  go ()

let peek hp = if hp.pos < hp.len then Some hp.input.[hp.pos] else None

let peek_word hp =
  if hp.pos < hp.len && is_id_start hp.input.[hp.pos] then (
    let stop = ref (hp.pos + 1) in
    while !stop < hp.len && is_id_char hp.input.[!stop] do
      incr stop
    done;
    Some (String.sub hp.input hp.pos (!stop - hp.pos)))
  else None

let eat_kw hp kw =
  match peek_word hp with
  | Some w when String.equal w kw ->
      hp.pos <- hp.pos + String.length kw;
      spacing hp;
      true
  | _ -> false

let expect_char hp c =
  if hp.pos < hp.len && hp.input.[hp.pos] = c then (
    hp.pos <- hp.pos + 1;
    spacing hp)
  else fail hp (Printf.sprintf "%C" c)

let eat_char hp c =
  if hp.pos < hp.len && hp.input.[hp.pos] = c then (
    hp.pos <- hp.pos + 1;
    spacing hp;
    true)
  else false

let eat_op hp c not_followed =
  if
    hp.pos < hp.len
    && hp.input.[hp.pos] = c
    && not (hp.pos + 1 < hp.len && String.contains not_followed hp.input.[hp.pos + 1])
  then (
    hp.pos <- hp.pos + 1;
    spacing hp;
    true)
  else false

let eat_str hp s =
  let n = String.length s in
  if hp.pos + n <= hp.len && String.sub hp.input hp.pos n = s then (
    hp.pos <- hp.pos + n;
    spacing hp;
    true)
  else false

let identifier hp =
  match peek_word hp with
  | Some w when not (List.mem w keywords) ->
      hp.pos <- hp.pos + String.length w;
      spacing hp;
      w
  | _ -> fail hp "identifier"

let leaf name children = Value.node name (List.map (fun v -> (None, v)) children)

(* type = (primitive | Identifier) "[]"* *)
let is_type_start hp =
  match peek_word hp with
  | Some w -> List.mem w prim_words || not (List.mem w keywords)
  | None -> false

let jtype hp =
  let base =
    match peek_word hp with
    | Some w when List.mem w prim_words ->
        hp.pos <- hp.pos + String.length w;
        spacing hp;
        leaf "Primitive" [ Value.Str w ]
    | _ -> leaf "ClassType" [ Value.Str (identifier hp) ]
  in
  let dims = ref 0 in
  while
    hp.pos + 1 < hp.len && hp.input.[hp.pos] = '[' && hp.input.[hp.pos + 1] = ']'
  do
    hp.pos <- hp.pos + 2;
    incr dims
  done;
  spacing hp;
  leaf "Type" [ base; Value.Str (String.concat "" (List.init !dims (fun _ -> "[]"))) ]

let rec expression hp = assignment hp

and assignment hp =
  (* Mirror the PEG: Postfix AssignOp Assignment / LogicalOr *)
  let saved = hp.pos in
  match
    let lhs = postfix hp in
    let op =
      if eat_op hp '=' "=" then "="
      else if eat_str hp "+=" then "+="
      else if eat_str hp "-=" then "-="
      else if eat_str hp "*=" then "*="
      else if eat_str hp "/=" then "/="
      else if eat_str hp "%=" then "%="
      else fail hp "assignment operator"
    in
    (lhs, op)
  with
  | lhs, op -> leaf "Assign" [ lhs; Value.Str op; assignment hp ]
  | exception Fail _ ->
      hp.pos <- saved;
      binary hp 0

and binary hp level =
  let try_op =
    match level with
    | 0 -> fun hp -> if eat_str hp "||" then Some "||" else None
    | 1 -> fun hp -> if eat_str hp "&&" then Some "&&" else None
    | 2 ->
        fun hp ->
          if eat_str hp "==" then Some "=="
          else if eat_str hp "!=" then Some "!="
          else None
    | 3 ->
        fun hp ->
          if eat_str hp "<=" then Some "<="
          else if eat_str hp ">=" then Some ">="
          else if eat_op hp '<' "<=" then Some "<"
          else if eat_op hp '>' ">=" then Some ">"
          else None
    | 4 ->
        fun hp ->
          if eat_op hp '+' "+=" then Some "+"
          else if eat_op hp '-' "-=>" then Some "-"
          else None
    | _ ->
        fun hp ->
          if eat_op hp '*' "=" then Some "*"
          else if eat_op hp '/' "/*=" then Some "/"
          else if eat_op hp '%' "=" then Some "%"
          else None
  in
  let next hp = if level >= 5 then unary hp else binary hp (level + 1) in
  let first = next hp in
  let tails = ref [] in
  let rec go () =
    match try_op hp with
    | Some op ->
        tails := leaf "Tail" [ Value.Str op; next hp ] :: !tails;
        go ()
    | None -> ()
  in
  go ();
  match !tails with
  | [] -> first
  | ts -> leaf "Binary" [ first; Value.List (List.rev ts) ]

and unary hp =
  if eat_op hp '!' "=" then leaf "Not" [ unary hp ]
  else if eat_op hp '-' "-=>" then leaf "Neg" [ unary hp ]
  else postfix hp

and postfix hp =
  let e = ref (primary hp) in
  let rec go () =
    if
      hp.pos < hp.len
      && hp.input.[hp.pos] = '.'
      && hp.pos + 1 < hp.len
      && is_id_start hp.input.[hp.pos + 1]
    then (
      hp.pos <- hp.pos + 1;
      spacing hp;
      let f = identifier hp in
      if eat_char hp '(' then (
        let args = arg_list hp in
        e := leaf "Call" [ !e; Value.Str f; Value.List args ])
      else e := leaf "Field" [ !e; Value.Str f ];
      go ())
    else if eat_char hp '[' then (
      let i = expression hp in
      expect_char hp ']';
      e := leaf "Index" [ !e; i ];
      go ())
    else if eat_str hp "++" then (
      e := leaf "Inc" [ !e ];
      go ())
    else if eat_str hp "--" then (
      e := leaf "Dec" [ !e ];
      go ())
  in
  go ();
  !e

and arg_list hp =
  if eat_char hp ')' then []
  else
    let args = ref [ expression hp ] in
    while eat_char hp ',' do
      args := expression hp :: !args
    done;
    expect_char hp ')';
    List.rev !args

and primary hp =
  match peek hp with
  | Some '(' ->
      ignore (eat_char hp '(');
      let e = expression hp in
      expect_char hp ')';
      e
  | Some c when is_digit c ->
      let start = hp.pos in
      while hp.pos < hp.len && is_digit hp.input.[hp.pos] do
        hp.pos <- hp.pos + 1
      done;
      let is_float =
        hp.pos + 1 < hp.len
        && hp.input.[hp.pos] = '.'
        && is_digit hp.input.[hp.pos + 1]
      in
      if is_float then (
        hp.pos <- hp.pos + 1;
        while hp.pos < hp.len && is_digit hp.input.[hp.pos] do
          hp.pos <- hp.pos + 1
        done)
      else if hp.pos < hp.len && hp.input.[hp.pos] = '.' then
        fail hp "float digits";
      let text = String.sub hp.input start (hp.pos - start) in
      spacing hp;
      leaf (if is_float then "FloatLit" else "IntLit") [ Value.Str text ]
  | Some '\'' ->
      hp.pos <- hp.pos + 1;
      if hp.pos >= hp.len then fail hp "character";
      (if hp.input.[hp.pos] = '\\' then hp.pos <- hp.pos + 2
       else hp.pos <- hp.pos + 1);
      if hp.pos >= hp.len || hp.input.[hp.pos] <> '\'' then fail hp "'";
      hp.pos <- hp.pos + 1;
      spacing hp;
      leaf "CharLit" []
  | Some '"' ->
      hp.pos <- hp.pos + 1;
      let rec go () =
        if hp.pos >= hp.len then fail hp "'\"'"
        else
          match hp.input.[hp.pos] with
          | '"' -> hp.pos <- hp.pos + 1
          | '\\' ->
              hp.pos <- hp.pos + 2;
              go ()
          | _ ->
              hp.pos <- hp.pos + 1;
              go ()
      in
      go ();
      spacing hp;
      leaf "StrLit" []
  | _ -> (
      match peek_word hp with
      | Some "new" ->
          ignore (eat_kw hp "new");
          (* NewArray: new Type [ e ]   |   New: new Ident ( args ) *)
          let saved = hp.pos in
          (match
             let t = jtype hp in
             expect_char hp '[';
             let e = expression hp in
             expect_char hp ']';
             leaf "NewArray" [ t; e ]
           with
          | v -> v
          | exception Fail _ ->
              hp.pos <- saved;
              let name = identifier hp in
              expect_char hp '(';
              let args = arg_list hp in
              leaf "New" [ Value.Str name; Value.List args ])
      | Some "this" ->
          ignore (eat_kw hp "this");
          leaf "This" []
      | Some "true" ->
          ignore (eat_kw hp "true");
          leaf "True" []
      | Some "false" ->
          ignore (eat_kw hp "false");
          leaf "False" []
      | Some "null" ->
          ignore (eat_kw hp "null");
          leaf "Null" []
      | Some w when not (List.mem w keywords) ->
          let name = identifier hp in
          if eat_char hp '(' then
            leaf "LocalCall" [ Value.Str name; Value.List (arg_list hp) ]
          else leaf "Var" [ Value.Str name ]
      | _ -> fail hp "expression")

let rec statement hp =
  match peek hp with
  | Some '{' -> block hp
  | Some ';' ->
      ignore (eat_char hp ';');
      leaf "Empty" []
  | _ -> (
      match peek_word hp with
      | Some "if" ->
          ignore (eat_kw hp "if");
          expect_char hp '(';
          let c = expression hp in
          expect_char hp ')';
          let t = statement hp in
          if eat_kw hp "else" then leaf "If" [ c; t; statement hp ]
          else leaf "If" [ c; t ]
      | Some "while" ->
          ignore (eat_kw hp "while");
          expect_char hp '(';
          let c = expression hp in
          expect_char hp ')';
          leaf "While" [ c; statement hp ]
      | Some "for" ->
          ignore (eat_kw hp "for");
          expect_char hp '(';
          let init =
            if peek hp = Some ';' then Value.Unit
            else
              (* ForInit: Type Ident = e  |  expression *)
              let saved = hp.pos in
              match
                let t = jtype hp in
                let n = identifier hp in
                if not (eat_op hp '=' "=") then fail hp "'='";
                (t, n)
              with
              | t, n -> leaf "ForDecl" [ t; Value.Str n; expression hp ]
              | exception Fail _ ->
                  hp.pos <- saved;
                  expression hp
          in
          expect_char hp ';';
          let cond = if peek hp = Some ';' then Value.Unit else expression hp in
          expect_char hp ';';
          let step = if peek hp = Some ')' then Value.Unit else expression hp in
          expect_char hp ')';
          leaf "For" [ init; cond; step; statement hp ]
      | Some "return" ->
          ignore (eat_kw hp "return");
          if eat_char hp ';' then leaf "Return" []
          else
            let e = expression hp in
            expect_char hp ';';
            leaf "Return" [ e ]
      | _ -> (
          (* LocalDecl: Type Ident ('=' e)? ';'  — mirrored as a
             backtracking attempt, like the PEG alternative. *)
          let saved = hp.pos in
          match
            if not (is_type_start hp) then fail hp "type";
            let t = jtype hp in
            let n = identifier hp in
            let init = if eat_op hp '=' "=" then Some (expression hp) else None in
            expect_char hp ';';
            (t, n, init)
          with
          | t, n, init ->
              leaf "LocalDecl"
                [ t; Value.Str n;
                  (match init with Some e -> e | None -> Value.Unit) ]
          | exception Fail _ ->
              hp.pos <- saved;
              let e = expression hp in
              expect_char hp ';';
              leaf "ExprStmt" [ e ]))

and block hp =
  expect_char hp '{';
  let stmts = ref [] in
  while not (eat_char hp '}') do
    stmts := statement hp :: !stmts
  done;
  leaf "Block" [ Value.List (List.rev !stmts) ]

let class_decl hp =
  if not (eat_kw hp "class") then fail hp "\"class\"";
  let name = identifier hp in
  let parent = if eat_kw hp "extends" then Some (identifier hp) else None in
  expect_char hp '{';
  let members = ref [] in
  while not (eat_char hp '}') do
    let static = eat_kw hp "static" in
    let t = jtype hp in
    let n = identifier hp in
    if eat_char hp '(' then (
      (* method *)
      let params = ref [] in
      (if not (eat_char hp ')') then (
         let param () =
           let pt = jtype hp in
           let pn = identifier hp in
           leaf "Param" [ pt; Value.Str pn ]
         in
         params := [ param () ];
         while eat_char hp ',' do
           params := param () :: !params
         done;
         expect_char hp ')'));
      let body = block hp in
      members :=
        leaf "Method"
          [ Value.Str (if static then "static" else ""); t; Value.Str n;
            Value.List (List.rev !params); body ]
        :: !members)
    else (
      let init = if eat_op hp '=' "=" then Some (expression hp) else None in
      expect_char hp ';';
      members :=
        leaf "Field"
          [ Value.Str (if static then "static" else ""); t; Value.Str n;
            (match init with Some e -> e | None -> Value.Unit) ]
        :: !members)
  done;
  leaf "ClassDecl"
    [ Value.Str name;
      Value.Str (Option.value parent ~default:"");
      Value.List (List.rev !members) ]

let parse_hand input =
  let hp = { input; len = String.length input; pos = 0 } in
  match
    spacing hp;
    let classes = ref [] in
    while hp.pos < hp.len do
      classes := class_decl hp :: !classes
    done;
    leaf "CompilationUnit" [ Value.List (List.rev !classes) ]
  with
  | v -> Ok v
  | exception Fail (pos, expected) ->
      Error (Printf.sprintf "parse error at offset %d: expected %s" pos expected)
