lib/grammars/calc.mli: Grammar Rats_peg Value
