lib/grammars/metagrammar.mli: Rats_peg
