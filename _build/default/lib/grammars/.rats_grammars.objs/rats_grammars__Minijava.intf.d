lib/grammars/minijava.mli: Grammar Rats_modules Rats_peg
