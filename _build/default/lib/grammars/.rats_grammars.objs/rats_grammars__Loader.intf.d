lib/grammars/loader.mli: Grammar Rats_modules Rats_peg
