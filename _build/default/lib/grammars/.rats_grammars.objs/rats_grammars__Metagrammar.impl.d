lib/grammars/metagrammar.ml: Loader Texts
