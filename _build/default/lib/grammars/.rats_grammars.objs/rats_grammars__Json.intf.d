lib/grammars/json.mli: Grammar Rats_peg Value
