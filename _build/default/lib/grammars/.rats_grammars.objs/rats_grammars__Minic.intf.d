lib/grammars/minic.mli: Grammar Rats_modules Rats_peg Value
