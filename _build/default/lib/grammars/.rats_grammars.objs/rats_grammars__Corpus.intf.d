lib/grammars/corpus.mli: Rats_support Rng
