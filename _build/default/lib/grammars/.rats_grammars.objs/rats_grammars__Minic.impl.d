lib/grammars/minic.ml: Hashtbl List Loader Option Printf Rats_peg String Texts Value
