lib/grammars/corpus.ml: Array Buffer Char List Printf Rats_support Rng String
