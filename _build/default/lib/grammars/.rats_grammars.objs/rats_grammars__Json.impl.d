lib/grammars/json.ml: List Loader Printf Rats_peg String Texts Value
