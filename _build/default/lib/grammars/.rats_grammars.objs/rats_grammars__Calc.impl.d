lib/grammars/calc.ml: Float List Loader Printf Rats_peg String Texts Value
