lib/grammars/path.ml: Loader Texts
