lib/grammars/path.mli: Rats_peg
