lib/grammars/minijava.ml: List Loader Option Printf Rats_peg String Texts Value
