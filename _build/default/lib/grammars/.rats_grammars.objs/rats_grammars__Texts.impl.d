lib/grammars/texts.ml:
