lib/grammars/loader.ml: Diagnostic List Rats_meta Rats_modules Rats_support
