(** The module language, self-hosted: a PEG grammar for `.rats` sources
    written in the module language itself, the way Rats! bootstraps its
    own syntax. The test suite checks acceptance agreement with the
    hand-written front end in [Rats_meta] over every shipped grammar.

    (One deliberate divergence: the PEG is slightly more permissive
    around a malformed [+=] placement, where the hand parser commits to
    the [before]/[after] keyword; see the tests.) *)

val texts : string list
(** Includes [c.Space], which the meta language shares with MiniC. *)

val grammar : unit -> Rats_peg.Grammar.t
(** Rooted at [rats.Syntax]. *)
