open Rats_peg

let texts = [ Texts.json ]
let grammar () = Loader.grammar ~root:"json.Main" texts

exception Hand_fail of string

let parse_hand input =
  let len = String.length input in
  let pos = ref 0 in
  let fail expected =
    raise
      (Hand_fail
         (Printf.sprintf "parse error at offset %d: expected %s" !pos expected))
  in
  let spacing () =
    while
      !pos < len
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let lit kw =
    let n = String.length kw in
    if !pos + n <= len && String.sub input !pos n = kw then (
      pos := !pos + n;
      spacing ())
    else fail (Printf.sprintf "%S" kw)
  in
  let string_lit () =
    if !pos >= len || input.[!pos] <> '"' then fail "'\"'";
    incr pos;
    let start = !pos in
    let rec go () =
      if !pos >= len then fail "'\"'"
      else
        match input.[!pos] with
        | '"' -> ()
        | '\\' ->
            pos := !pos + 2;
            go ()
        | _ ->
            incr pos;
            go ()
    in
    go ();
    let raw = String.sub input start (!pos - start) in
    incr pos;
    spacing ();
    raw
  in
  let number () =
    let start = !pos in
    if !pos < len && input.[!pos] = '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < len && input.[!pos] >= '0' && input.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "[0-9]"
    in
    (* Int = '0' / [1-9] [0-9]* *)
    if !pos < len && input.[!pos] = '0' then incr pos
    else digits ();
    if !pos + 1 < len && input.[!pos] = '.' then (
      incr pos;
      digits ());
    (if !pos < len && (input.[!pos] = 'e' || input.[!pos] = 'E') then (
       incr pos;
       if !pos < len && (input.[!pos] = '+' || input.[!pos] = '-') then
         incr pos;
       digits ()));
    let raw = String.sub input start (!pos - start) in
    if String.length raw = 0 || raw = "-" then fail "number";
    spacing ();
    raw
  in
  let rec value () =
    if !pos >= len then fail "a JSON value"
    else
      match input.[!pos] with
      | '{' ->
          incr pos;
          spacing ();
          let members = ref [] in
          if !pos < len && input.[!pos] = '}' then (
            incr pos;
            spacing ();
            Value.node "Object" [])
          else (
            members := [ member () ];
            while !pos < len && input.[!pos] = ',' do
              incr pos;
              spacing ();
              members := member () :: !members
            done;
            lit "}";
            match List.rev !members with
            | first :: rest ->
                Value.node "Object"
                  [ (None, first); (None, Value.List rest) ]
            | [] -> assert false)
      | '[' ->
          incr pos;
          spacing ();
          if !pos < len && input.[!pos] = ']' then (
            incr pos;
            spacing ();
            Value.node "Array" [])
          else
            let items = ref [ value () ] in
            let () =
              while !pos < len && input.[!pos] = ',' do
                incr pos;
                spacing ();
                items := value () :: !items
              done
            in
            let () = lit "]" in
            (match List.rev !items with
            | first :: rest ->
                Value.node "Array" [ (None, first); (None, Value.List rest) ]
            | [] -> assert false)
      | '"' -> Value.node "Str" [ (None, Value.Str (string_lit ())) ]
      | 't' ->
          lit "true";
          Value.node "True" []
      | 'f' ->
          lit "false";
          Value.node "False" []
      | 'n' ->
          lit "null";
          Value.node "Null" []
      | '-' | '0' .. '9' -> Value.node "Num" [ (None, Value.Str (number ())) ]
      | _ -> fail "a JSON value"
  and member () =
    let key = string_lit () in
    lit ":";
    let v = value () in
    Value.node "Member" [ (None, Value.Str key); (None, v) ]
  in
  match
    spacing ();
    let v = value () in
    if !pos < len then fail "end of input";
    v
  with
  | v -> Ok v
  | exception Hand_fail msg -> Error msg
