(* Grammar-module sources, in the textual module language. Kept as string
   constants so the library is self-contained (no data files to locate at
   run time); the CLI can also load the same grammars from .rats files. *)

(* --- calculator ---------------------------------------------------------- *)

let calc =
  {|// A four-operator calculator, split into modules the way the paper
// advocates: spacing, literals and the expression core are separate,
// and the exponentiation extension modifies the core without touching it.

module calc.Space;

public transient void Spacing = [ \t\n\r]*;

module calc.Number(S);

public Number = $( [0-9]+ ('.' [0-9]+)? ) S.Spacing;

module calc.Core(S);

import calc.Number(S) as N;

public generic Sum = Term SumTail*;
generic SumTail = op:$( [+\-] ) S.Spacing Term;

generic Term = Factor TermTail*;
generic TermTail = op:$( [*/] ) S.Spacing Factor;

Factor =
  <Paren> void:'(' S.Spacing Sum void:')' S.Spacing
  / <Number> @Num(N.Number);

module calc.Pow(S);

modify calc.Core(S) as Base;
import calc.Number(S) as N;

Factor += before <Paren> <Pow> @Pow(Atom void:"**" S.Spacing Factor);

Atom =
  <Paren> void:'(' S.Spacing Sum void:')' S.Spacing
  / <Number> @Num(N.Number);

module calc.Main;

import calc.Space as S;
import calc.Pow(calc.Space) as P;

public Calculation = S.Spacing P.Sum !.;
|}

(* --- JSON ---------------------------------------------------------------- *)

let json =
  {|// JSON (RFC 8259 shape, scannerless).

module json.Space;

public transient void Spacing = [ \t\n\r]*;

module json.Lex(S);

public JString = void:'"' $( Char* ) void:'"' S.Spacing;
transient Char = '\\' . / [^"\\];
public JNumber = $( '-'? Int Frac? Exp? ) S.Spacing;
transient void Int = '0' / [1-9] [0-9]*;
transient void Frac = '.' [0-9]+;
transient void Exp = [eE] [+\-]? [0-9]+;

module json.Value(S);

import json.Lex(S) as L;

public JValue =
  <Object> Object
  / <Array> Array
  / <String> @Str(L.JString)
  / <Number> @Num(L.JNumber)
  / <True> @True(void:"true" S.Spacing)
  / <False> @False(void:"false" S.Spacing)
  / <Null> @Null(void:"null" S.Spacing);

generic Object =
  void:'{' S.Spacing (Member (void:',' S.Spacing Member)*)? void:'}' S.Spacing;

generic Member = L.JString void:':' S.Spacing JValue;

generic Array =
  void:'[' S.Spacing (JValue (void:',' S.Spacing JValue)*)? void:']' S.Spacing;

module json.Main;

import json.Space as S;
import json.Value(json.Space) as V;

public Document = S.Spacing V.JValue !.;
|}

(* --- MiniC --------------------------------------------------------------- *)

let minic_space =
  {|module c.Space;

public transient void Spacing = (Blank / LineComment / BlockComment)*;
transient void Blank = [ \t\n\r];
transient void LineComment = "//" [^\n]*;
transient void BlockComment = "/*" (!"*/" .)* "*/";
|}

let minic_lex =
  {|module c.Lex(S);

// Word is the raw identifier text (no trailing spacing) so that the
// typedef tables record and test exactly the name.
public Word = $( !Keyword IdStart IdChar* );
public Identifier = Word S.Spacing;

transient void IdStart = [a-zA-Z_];
transient void IdChar = [a-zA-Z0-9_];

transient void Keyword =
  ("break" / "case" / "char" / "continue" / "default" / "do" / "double"
   / "else" / "float" / "for" / "goto" / "if" / "int" / "long" / "return"
   / "short" / "signed" / "sizeof" / "struct" / "switch" / "typedef"
   / "unsigned" / "void" / "while")
  !IdChar;

public FloatLit = $( [0-9]+ '.' [0-9]+ ) S.Spacing;
public IntegerLit = $( [0-9]+ ) !'.' S.Spacing;
public CharLit = $( '\'' ('\\' . / [^'\\]) '\'' ) S.Spacing;
public StringLit = $( '"' ('\\' . / [^"\\])* '"' ) S.Spacing;
|}

let minic_op =
  {|module c.Op(S);

// Operator tokens yield their text; the not-predicates keep a shorter
// operator from eating the prefix of a longer one.
public AssignOp = $( '=' !'=' / "+=" / "-=" / "*=" / "/=" / "%=" ) S.Spacing;
public OrOp = $( "||" ) S.Spacing;
public AndOp = $( "&&" ) S.Spacing;
public BitOrOp = $( '|' ![|=] ) S.Spacing;
public BitXorOp = $( '^' !'=' ) S.Spacing;
public BitAndOp = $( '&' ![&=] ) S.Spacing;
public EqOp = $( "==" / "!=" ) S.Spacing;
public RelOp = $( "<=" / ">=" / '<' ![<=] / '>' ![>=] ) S.Spacing;
public ShiftOp = $( "<<" !'=' / ">>" !'=' ) S.Spacing;
public AddOp = $( '+' ![+=] / '-' ![\-=>] ) S.Spacing;
public MulOp = $( '*' !'=' / '/' ![/*=] / '%' !'=' ) S.Spacing;
public UnaryOp = $( '!' !'=' / '~' / '-' ![\-=>] / '+' ![+=] / '*' !'=' / '&' ![&=] ) S.Spacing;
public IncDecOp = $( "++" / "--" ) S.Spacing;
|}

let minic_type =
  {|module c.Type(S, L);

public generic TypeSpecifier =
  <Builtin> BuiltinType
  / <Struct> StructRef
  / <Typedef> @TypedefName(%member(Typedefs, L.Word) S.Spacing);

BuiltinType = BuiltinWord+;
BuiltinWord =
  $( ("unsigned" / "signed" / "long" / "short" / "int" / "char" / "float"
      / "double" / "void")
     ![a-zA-Z0-9_] )
  S.Spacing;

generic StructRef = void:"struct" ![a-zA-Z0-9_] S.Spacing L.Identifier;

public Pointer = $( '*' !'=' ) S.Spacing;
|}

let minic_expr =
  {|module c.Expr(S, L, T);

import c.Op(S) as O;

public Expression = Assignment;

public generic Assignment =
  <Assign> Unary O.AssignOp Assignment
  / <Cond> Conditional;

generic Conditional =
  <Ternary> LogicalOr void:'?' S.Spacing Expression void:':' S.Spacing Conditional
  / <Or> LogicalOr;

generic LogicalOr = LogicalAnd (O.OrOp LogicalAnd)*;
generic LogicalAnd = BitOr (O.AndOp BitOr)*;
generic BitOr = BitXor (O.BitOrOp BitXor)*;
generic BitXor = BitAnd (O.BitXorOp BitAnd)*;
generic BitAnd = Equality (O.BitAndOp Equality)*;
generic Equality = Relational (O.EqOp Relational)*;
generic Relational = Shift (O.RelOp Shift)*;
generic Shift = Additive (O.ShiftOp Additive)*;
generic Additive = Multiplicative (O.AddOp Multiplicative)*;
generic Multiplicative = Unary (O.MulOp Unary)*;

public generic Unary =
  <SizeofType> void:"sizeof" ![a-zA-Z0-9_] S.Spacing void:'(' S.Spacing T.TypeSpecifier T.Pointer* void:')' S.Spacing
  / <Sizeof> void:"sizeof" ![a-zA-Z0-9_] S.Spacing Unary
  / <Cast> @Cast(void:'(' S.Spacing T.TypeSpecifier T.Pointer* void:')' S.Spacing Unary)
  / <PreIncDec> O.IncDecOp Unary
  / <Prefix> O.UnaryOp Unary
  / <Postfix> Postfix;

generic Postfix = Primary PostfixTail*;

generic PostfixTail =
  <Call> void:'(' S.Spacing (Expression (void:',' S.Spacing Expression)*)? void:')' S.Spacing
  / <Index> void:'[' S.Spacing Expression void:']' S.Spacing
  / <Member> void:'.' S.Spacing L.Identifier
  / <Arrow> void:"->" S.Spacing L.Identifier
  / <PostIncDec> O.IncDecOp;

public Primary =
  <Paren> void:'(' S.Spacing Expression void:')' S.Spacing
  / <Float> @FloatLit(L.FloatLit)
  / <Int> @IntLit(L.IntegerLit)
  / <Char> @CharLit(L.CharLit)
  / <Str> @StrLit(L.StringLit)
  / <Var> @Var(L.Identifier);
|}

let minic_decl =
  {|module c.Decl(S, L, T, E);

public generic Declaration =
  <Typedef> void:"typedef" ![a-zA-Z0-9_] S.Spacing T.TypeSpecifier T.Pointer*
            @NewType(%record(Typedefs, L.Word)) S.Spacing void:';' S.Spacing
  / <Struct> StructDef void:';' S.Spacing
  / <Var> T.TypeSpecifier InitDeclarator (void:',' S.Spacing InitDeclarator)* void:';' S.Spacing;

generic InitDeclarator =
  Declarator (void:'=' !'=' S.Spacing E.Assignment)?;

generic Declarator =
  T.Pointer* L.Identifier (void:'[' S.Spacing @Size(E.Expression)? void:']' S.Spacing)*;

public generic StructDef =
  void:"struct" ![a-zA-Z0-9_] S.Spacing L.Identifier
  void:'{' S.Spacing (@Field(T.TypeSpecifier Declarator void:';' S.Spacing))* void:'}' S.Spacing;
|}

let minic_stmt =
  {|module c.Stmt(S, L, T, E, D);

public generic Statement =
  <Compound> Compound
  / <If> If
  / <While> While
  / <DoWhile> DoWhile
  / <For> For
  / <Switch> Switch
  / <Return> Return
  / <Break> @Break(void:"break" ![a-zA-Z0-9_] S.Spacing void:';' S.Spacing)
  / <Continue> @Continue(void:"continue" ![a-zA-Z0-9_] S.Spacing void:';' S.Spacing)
  / <Goto> @Goto(void:"goto" ![a-zA-Z0-9_] S.Spacing L.Identifier void:';' S.Spacing)
  / <Label> @Label(L.Identifier void:':' S.Spacing Statement)
  / <Decl> D.Declaration
  / <Expr> ExprStatement
  / <Empty> @Empty(void:';' S.Spacing);

generic Switch =
  void:"switch" ![a-zA-Z0-9_] S.Spacing void:'(' S.Spacing E.Expression void:')' S.Spacing
  void:'{' S.Spacing SwitchItem* void:'}' S.Spacing;

generic SwitchItem =
  <Case> @Case(void:"case" ![a-zA-Z0-9_] S.Spacing E.Expression void:':' S.Spacing Statement*)
  / <Default> @Default(void:"default" ![a-zA-Z0-9_] S.Spacing void:':' S.Spacing Statement*);

public generic Compound = void:'{' S.Spacing Statement* void:'}' S.Spacing;

generic If =
  void:"if" ![a-zA-Z0-9_] S.Spacing void:'(' S.Spacing E.Expression void:')' S.Spacing
  Statement (void:"else" ![a-zA-Z0-9_] S.Spacing Statement)?;

generic While =
  void:"while" ![a-zA-Z0-9_] S.Spacing void:'(' S.Spacing E.Expression void:')' S.Spacing Statement;

generic DoWhile =
  void:"do" ![a-zA-Z0-9_] S.Spacing Statement
  void:"while" ![a-zA-Z0-9_] S.Spacing void:'(' S.Spacing E.Expression void:')' S.Spacing void:';' S.Spacing;

generic For =
  void:"for" ![a-zA-Z0-9_] S.Spacing void:'(' S.Spacing
  @Init(ForInit?) void:';' S.Spacing @Cond(E.Expression?) void:';' S.Spacing @Step(E.Expression?)
  void:')' S.Spacing Statement;

ForInit = E.Expression;

generic Return =
  void:"return" ![a-zA-Z0-9_] S.Spacing E.Expression? void:';' S.Spacing;

generic ExprStatement = E.Expression void:';' S.Spacing;
|}

let minic_program =
  {|module c.Program;

import c.Space as S;
import c.Lex(c.Space) as L;
import c.Type(c.Space, L) as T;
import c.Expr(c.Space, L, T) as E;
import c.Decl(c.Space, L, T, E) as D;
import c.Stmt(c.Space, L, T, E, D) as St;

public generic Program = S.Spacing TopLevel* !.;

TopLevel =
  <Function> FunctionDef
  / <Declaration> D.Declaration;

generic FunctionDef =
  T.TypeSpecifier T.Pointer* L.Identifier
  void:'(' S.Spacing @Params(ParamList?) void:')' S.Spacing St.Compound;

ParamList = Param (void:',' S.Spacing Param)*;

generic Param = T.TypeSpecifier T.Pointer* L.Identifier?;
|}

(* --- MiniC extensions (experiment E6) ------------------------------------ *)

let ext_pow =
  {|// Adds a right-associative '**' operator between unary and
// multiplicative, touching nothing in the base modules.
module c.ext.Pow(E, S);

modify E as Base;

Multiplicative := Power (MulOp Power)*;

generic Power =
  <Pow> Unary void:"**" S.Spacing Power
  / <One> Unary;

MulOp = $( '*' ![*=] / '/' ![/*=] / '%' !'=' ) S.Spacing;
|}

let ext_until =
  {|// Adds an 'until (e) stmt' statement: loop until the condition holds.
module c.ext.Until(St, S, E);

modify St as Base;

Statement += after <DoWhile>
  <Until> @Until(void:"until" ![a-zA-Z0-9_] S.Spacing
                 void:'(' S.Spacing E.Expression void:')' S.Spacing Statement);
|}

let ext_query =
  {|// Embeds a query sublanguage in expressions:
//   query { select a, b from t where a < 10 }
// The 'where' clause is a full host-language expression - the
// composition the paper (and Katahdin after it) motivates.
module c.ext.Query(E, S, L);

modify E as Base;

Primary += before <Paren>
  <Query> @Query(void:"query" ![a-zA-Z0-9_] S.Spacing
                 void:'{' S.Spacing Select void:'}' S.Spacing);

generic Select =
  void:"select" ![a-zA-Z0-9_] S.Spacing @Cols(L.Identifier (void:',' S.Spacing L.Identifier)*)
  void:"from" ![a-zA-Z0-9_] S.Spacing @Table(L.Identifier)
  @Where(void:"where" ![a-zA-Z0-9_] S.Spacing Expression)?;
|}

let minic_extended =
  {|// The extended-language root: the same wiring as c.Program, with the
// three extension modules spliced into the instance graph. Note that
// declarations and statements pick up the extended expression module
// automatically - that is the point of parameterized modules.
module cx.Program;

import c.Space as S;
import c.Lex(c.Space) as L;
import c.Type(c.Space, L) as T;
import c.Expr(c.Space, L, T) as E0;
import c.ext.Pow(E0, c.Space) as E1;
import c.ext.Query(E1, c.Space, L) as E;
import c.Decl(c.Space, L, T, E) as D;
import c.Stmt(c.Space, L, T, E, D) as St0;
import c.ext.Until(St0, c.Space, E) as St;

public generic Program = S.Spacing TopLevel* !.;

TopLevel =
  <Function> FunctionDef
  / <Declaration> D.Declaration;

generic FunctionDef =
  T.TypeSpecifier T.Pointer* L.Identifier
  void:'(' S.Spacing @Params(ParamList?) void:')' S.Spacing St.Compound;

ParamList = Param (void:',' S.Spacing Param)*;

generic Param = T.TypeSpecifier T.Pointer* L.Identifier?;
|}

let minic_modules =
  [ minic_space; minic_lex; minic_op; minic_type; minic_expr; minic_decl;
    minic_stmt; minic_program ]

let minic_extension_modules = [ ext_pow; ext_until; ext_query; minic_extended ]

(* --- pathological backtracking (experiment E4) ---------------------------- *)

let pathological =
  {|// Classic exponential case for memoless backtracking: the two
// alternatives of Expr both begin with Term, so an unmemoized parser
// re-parses the whole parenthesized prefix at every level.
module path.Main;

public Expr = Term '+' Expr / Term;
Term = '(' Expr ')' / [0-9];
|}

(* --- MiniJava -------------------------------------------------------------- *)
(* The paper's second language. The point of these modules is REUSE:
   MiniJava imports c.Space and c.Op unchanged — the same spacing and
   operator modules serve two languages, as Rats!'s C and Java grammars
   shared their foundations. *)

let minijava_lex =
  {|module j.Lex(S);

public Word = $( !Keyword IdStart IdChar* );
public Identifier = Word S.Spacing;

transient void IdStart = [a-zA-Z_$];
transient void IdChar = [a-zA-Z0-9_$];

transient void Keyword =
  ("boolean" / "class" / "double" / "else" / "extends" / "false" / "for"
   / "if" / "int" / "char" / "long" / "new" / "null" / "return" / "static"
   / "this" / "true" / "void" / "while")
  !IdChar;

public FloatLit = $( [0-9]+ '.' [0-9]+ ) S.Spacing;
public IntegerLit = $( [0-9]+ ) !'.' S.Spacing;
public CharLit = $( '\'' ('\\' . / [^'\\]) '\'' ) S.Spacing;
public StringLit = $( '"' ('\\' . / [^"\\])* '"' ) S.Spacing;
|}

let minijava_type =
  {|module j.Type(S, L);

public generic Type = @BaseType(Base) @Dims($( "[]" )* S.Spacing);

Base =
  <Primitive> @Primitive(PrimWord)
  / <Class> @ClassType(L.Identifier);

PrimWord =
  $( ("boolean" / "double" / "int" / "char" / "long" / "void") ![a-zA-Z0-9_$] )
  S.Spacing;
|}

let minijava_expr =
  {|module j.Expr(S, L, T);

// Reuses the C operator module verbatim - modular syntax at work.
import c.Op(S) as O;

public Expression = Assignment;

public generic Assignment =
  <Assign> Postfix O.AssignOp Assignment
  / <Cond> LogicalOr;

generic LogicalOr = LogicalAnd (O.OrOp LogicalAnd)*;
generic LogicalAnd = Equality (O.AndOp Equality)*;
generic Equality = Relational (O.EqOp Relational)*;
generic Relational = Additive (O.RelOp Additive)*;
generic Additive = Multiplicative (O.AddOp Multiplicative)*;
generic Multiplicative = Unary (O.MulOp Unary)*;

public generic Unary =
  <Not> void:'!' !'=' S.Spacing Unary
  / <Neg> void:'-' ![\-=>] S.Spacing Unary
  / <Postfix> Postfix;

generic Postfix = Primary PostfixTail*;

generic PostfixTail =
  <Call> void:'.' S.Spacing L.Identifier void:'(' S.Spacing @Args(ArgList?) void:')' S.Spacing
  / <Field> void:'.' S.Spacing L.Identifier
  / <Index> void:'[' S.Spacing Expression void:']' S.Spacing
  / <IncDec> O.IncDecOp;

ArgList = Expression (void:',' S.Spacing Expression)*;

public Primary =
  <Paren> void:'(' S.Spacing Expression void:')' S.Spacing
  / <NewArray> @NewArray(void:"new" ![a-zA-Z0-9_$] S.Spacing T.Type void:'[' S.Spacing Expression void:']' S.Spacing)
  / <New> @New(void:"new" ![a-zA-Z0-9_$] S.Spacing L.Identifier void:'(' S.Spacing @Args(ArgList?) void:')' S.Spacing)
  / <This> @This(void:"this" ![a-zA-Z0-9_$] S.Spacing)
  / <True> @True(void:"true" ![a-zA-Z0-9_$] S.Spacing)
  / <False> @False(void:"false" ![a-zA-Z0-9_$] S.Spacing)
  / <Null> @Null(void:"null" ![a-zA-Z0-9_$] S.Spacing)
  / <Float> @FloatLit(L.FloatLit)
  / <Int> @IntLit(L.IntegerLit)
  / <Char> @CharLit(L.CharLit)
  / <Str> @StrLit(L.StringLit)
  / <LocalCall> @LocalCall(L.Identifier void:'(' S.Spacing @Args(ArgList?) void:')' S.Spacing)
  / <Var> @Var(L.Identifier);
|}

let minijava_stmt =
  {|module j.Stmt(S, L, T, E);

public generic Statement =
  <Block> Block
  / <If> If
  / <While> While
  / <For> For
  / <Return> Return
  / <Decl> LocalDecl
  / <Expr> ExprStatement
  / <Empty> @Empty(void:';' S.Spacing);

public generic Block = void:'{' S.Spacing Statement* void:'}' S.Spacing;

generic If =
  void:"if" ![a-zA-Z0-9_$] S.Spacing void:'(' S.Spacing E.Expression void:')' S.Spacing
  Statement (void:"else" ![a-zA-Z0-9_$] S.Spacing Statement)?;

generic While =
  void:"while" ![a-zA-Z0-9_$] S.Spacing void:'(' S.Spacing E.Expression void:')' S.Spacing Statement;

generic For =
  void:"for" ![a-zA-Z0-9_$] S.Spacing void:'(' S.Spacing
  @Init(ForInit?) void:';' S.Spacing @Cond(E.Expression?) void:';' S.Spacing @Step(E.Expression?)
  void:')' S.Spacing Statement;

ForInit = <Decl> T.Type L.Identifier void:'=' !'=' S.Spacing E.Expression
        / <Expr> E.Expression;

generic Return =
  void:"return" ![a-zA-Z0-9_$] S.Spacing E.Expression? void:';' S.Spacing;

generic LocalDecl =
  T.Type L.Identifier (void:'=' !'=' S.Spacing E.Expression)? void:';' S.Spacing;

generic ExprStatement = E.Expression void:';' S.Spacing;
|}

let minijava_class =
  {|module j.Class(S, L, T, E, St);

public generic ClassDecl =
  void:"class" ![a-zA-Z0-9_$] S.Spacing L.Identifier
  @Extends(void:"extends" ![a-zA-Z0-9_$] S.Spacing L.Identifier)?
  void:'{' S.Spacing Member* void:'}' S.Spacing;

generic Member =
  <Method> Method
  / <Field> Field;

generic Field =
  Static? T.Type L.Identifier (void:'=' !'=' S.Spacing E.Expression)? void:';' S.Spacing;

generic Method =
  Static? T.Type L.Identifier
  void:'(' S.Spacing @Params(ParamList?) void:')' S.Spacing St.Block;

ParamList = Param (void:',' S.Spacing Param)*;
generic Param = T.Type L.Identifier;
Static = @Static(void:"static" ![a-zA-Z0-9_$] S.Spacing);
|}

let minijava_program =
  {|module j.Program;

// c.Space is shared with the MiniC grammar, unchanged.
import c.Space as S;
import j.Lex(c.Space) as L;
import j.Type(c.Space, L) as T;
import j.Expr(c.Space, L, T) as E;
import j.Stmt(c.Space, L, T, E) as St;
import j.Class(c.Space, L, T, E, St) as C;

public generic CompilationUnit = S.Spacing C.ClassDecl* !.;
|}

let minijava_modules =
  [ minic_space; minic_op; minijava_lex; minijava_type; minijava_expr;
    minijava_stmt; minijava_class; minijava_program ]

(* --- the module language, self-hosted --------------------------------------- *)
(* The grammar of the .rats module language, written in the module
   language itself — Rats! bootstraps its own syntax the same way. The
   test suite checks acceptance agreement with the hand-written meta
   parser (lib/meta) over every shipped grammar text. Reuses c.Space:
   the meta language shares C's comment/whitespace conventions. *)

let rats_syntax =
  {|module rats.Lex(S);

public Word = $( [a-zA-Z_] [a-zA-Z0-9_]* );
public Name = Word S.Spacing;

// Dotted names glue only when the dot is immediately followed by a
// word, mirroring the hand lexer's adjacency rule.
public QName = $( Word ('.' Word)* ) S.Spacing;

transient void IdEnd = ![a-zA-Z0-9_];

public Reserved =
  ("module" / "import" / "modify" / "instantiate" / "as" / "public"
   / "private" / "transient" / "memoized" / "inline" / "noinline"
   / "withLocation" / "void" / "String" / "generic" / "Value" / "before"
   / "after" / "first")
  IdEnd;

public DefName = !Reserved Name;

public CharLit = void:'\'' (Escape / [^'\\\n]) void:'\'' S.Spacing;
public StringLit = void:'"' StrChar* void:'"' S.Spacing;
transient StrChar = Escape / [^"\\\n];
transient void Escape = '\\' ([ntr0'"\\] / 'x' Hex Hex);
transient void Hex = [0-9a-fA-F];

public ClassLit =
  void:'[' ('^')? ClsItem* void:']' S.Spacing;
transient ClsItem = ClsChar ('-' !']' ClsChar)?;
transient ClsChar = '\\' ([ntr0'"\\^\][-] / 'x' Hex Hex) / [^\]\\];

module rats.Expr(S, L);

public Choice = Alternative (void:'/' S.Spacing Alternative)*;

generic Alternative = Label? Sequence;
Label = void:'<' S.Spacing L.Name void:'>' S.Spacing;
generic Sequence = Item*;

Item =
  <And> @And(void:'&' S.Spacing Suffix)
  / <Not> @NotP(void:'!' !'=' S.Spacing Suffix)
  / <Bind> @Bind(L.Word void:':' !'=' S.Spacing Suffix)
  / <Plain> Suffix;

generic Suffix = Primary @Ops($( [*+?] )* ) S.Spacing;

Primary =
  <Empty> @Eps(void:'(' S.Spacing void:')' S.Spacing)
  / <Group> void:'(' S.Spacing Choice void:')' S.Spacing
  / <Token> @Tok(void:'$' S.Spacing void:'(' S.Spacing Choice void:')' S.Spacing)
  / <Node> @NodeC(void:'@' S.Spacing L.Name void:'(' S.Spacing Choice void:')' S.Spacing)
  / <Fail> @FailC(void:'%' void:"fail" S.Spacing void:'(' S.Spacing L.StringLit void:')' S.Spacing)
  / <Splice> @SpliceC(void:'%' void:"splice" S.Spacing void:'(' S.Spacing Choice void:')' S.Spacing)
  / <State> @StateC(void:'%' $( "record" / "member" / "absent" ) S.Spacing
                    void:'(' S.Spacing L.Name void:',' S.Spacing Choice void:')' S.Spacing)
  / <Str> @StrC(L.StringLit)
  / <Chr> @ChrC(L.CharLit)
  / <Cls> @ClsC(L.ClassLit)
  / <Any> @AnyC(void:'.' S.Spacing)
  / <Ref> @Ref(L.QName);

module rats.Module(S, L, E);

public generic ModuleDecl =
  void:"module" KwEnd S.Spacing name:L.QName @Params(ParamList?) void:';' S.Spacing
  @Deps(Dependency*) @Items(Item*);

transient void KwEnd = ![a-zA-Z0-9_];

ParamList =
  void:'(' S.Spacing L.Word S.Spacing (void:',' S.Spacing L.Word S.Spacing)* void:')' S.Spacing;

generic Dependency =
  kind:$( "import" / "instantiate" / "modify" ) KwEnd S.Spacing
  target:L.QName @Args(ArgList?)
  @Alias(void:"as" KwEnd S.Spacing L.Name)? void:';' S.Spacing;

ArgList =
  void:'(' S.Spacing L.QName (void:',' S.Spacing L.QName)* void:')' S.Spacing;

Item =
  <Define> @Define(@Attrs(Attr*) L.DefName
      op:$( ":=" / '=' !'=' ) S.Spacing E.Choice void:';' S.Spacing)
  / <Add> @Add(L.DefName void:"+=" S.Spacing @Where(Placement?) E.Choice void:';' S.Spacing)
  / <Remove> @Remove(L.DefName void:"-=" S.Spacing LabelRef
      (void:',' S.Spacing LabelRef)* void:';' S.Spacing);

Attr =
  $( ("public" / "private" / "transient" / "memoized" / "inline"
      / "noinline" / "withLocation" / "void" / "String" / "generic"
      / "Value")
     KwEnd )
  S.Spacing !DefOp;

transient void DefOp = "+=" / "-=" / ":=" / '=' !'=';

Placement =
  <Before> @Before(void:"before" KwEnd S.Spacing LabelRef)
  / <After> @After(void:"after" KwEnd S.Spacing LabelRef)
  / <First> @First(void:"first" KwEnd S.Spacing);

LabelRef = void:'<' S.Spacing L.Name void:'>' S.Spacing;

module rats.Syntax;

import c.Space as S;
import rats.Lex(c.Space) as L;
import rats.Expr(c.Space, L) as E;
import rats.Module(c.Space, L, E) as M;

public generic File = S.Spacing M.ModuleDecl+ !.;
|}
