(** Convenience wrappers: grammar-module text → composed grammar. *)

open Rats_peg

val library_of_texts : string list -> Rats_modules.Resolve.library
(** Parse each text (which may hold several modules) and build one
    library. Raises {!Rats_support.Diagnostic.Fail} on any error — these
    are the library's own grammars, so failure is a bug. *)

val load :
  ?start:string ->
  ?args:string list ->
  root:string ->
  string list ->
  Grammar.t * Rats_modules.Resolve.stats
(** [load ~root texts] composes the modules in [texts] rooted at module
    [root] (instantiated with [args] when it is parameterized). Raises
    {!Rats_support.Diagnostic.Fail} on error. *)

val grammar :
  ?start:string -> ?args:string list -> root:string -> string list -> Grammar.t
