open Rats_support

let library_of_texts texts =
  let mods =
    List.concat_map
      (fun text ->
        match Rats_meta.Parser.parse_modules_string text with
        | Ok ms -> ms
        | Error d -> raise (Diagnostic.Fail d))
      texts
  in
  match Rats_modules.Resolve.library mods with
  | Ok lib -> lib
  | Error (d :: _) -> raise (Diagnostic.Fail d)
  | Error [] -> assert false

let load ?start ?args ~root texts =
  let lib = library_of_texts texts in
  match Rats_modules.Resolve.resolve lib ~root ?args ?start () with
  | Ok (g, stats) -> (g, stats)
  | Error (d :: _) -> raise (Diagnostic.Fail d)
  | Error [] -> assert false

let grammar ?start ?args ~root texts = fst (load ?start ?args ~root texts)
