open Rats_peg

let texts = Texts.minic_modules
let extension_texts = Texts.minic_extension_modules
let load () = Loader.load ~root:"c.Program" texts
let load_extended () = Loader.load ~root:"cx.Program" (texts @ extension_texts)
let grammar () = fst (load ())
let extended_grammar () = fst (load_extended ())

(* --- hand-written parser --------------------------------------------------- *)

exception Fail of int * string

type hp = {
  input : string;
  len : int;
  mutable pos : int;
  typedefs : (string, unit) Hashtbl.t;
}

let fail hp expected = raise (Fail (hp.pos, expected))

let keywords =
  [
    "break"; "case"; "char"; "continue"; "default"; "do"; "double"; "else";
    "float"; "for"; "goto"; "if"; "int"; "long"; "return"; "short"; "signed";
    "sizeof"; "struct"; "switch"; "typedef"; "unsigned"; "void"; "while";
  ]

let builtin_words =
  [ "unsigned"; "signed"; "long"; "short"; "int"; "char"; "float"; "double";
    "void" ]

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let spacing hp =
  let rec go () =
    if hp.pos < hp.len then
      match hp.input.[hp.pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          hp.pos <- hp.pos + 1;
          go ()
      | '/' when hp.pos + 1 < hp.len && hp.input.[hp.pos + 1] = '/' ->
          while hp.pos < hp.len && hp.input.[hp.pos] <> '\n' do
            hp.pos <- hp.pos + 1
          done;
          go ()
      | '/' when hp.pos + 1 < hp.len && hp.input.[hp.pos + 1] = '*' ->
          hp.pos <- hp.pos + 2;
          let rec close () =
            if hp.pos + 1 >= hp.len then fail hp "\"*/\""
            else if hp.input.[hp.pos] = '*' && hp.input.[hp.pos + 1] = '/' then
              hp.pos <- hp.pos + 2
            else (
              hp.pos <- hp.pos + 1;
              close ())
          in
          close ();
          go ()
      | _ -> ()
  in
  go ()

let peek hp = if hp.pos < hp.len then Some hp.input.[hp.pos] else None

(* Raw word at the cursor, without consuming. *)
let peek_word hp =
  if hp.pos < hp.len && is_id_start hp.input.[hp.pos] then (
    let stop = ref (hp.pos + 1) in
    while !stop < hp.len && is_id_char hp.input.[!stop] do
      incr stop
    done;
    Some (String.sub hp.input hp.pos (!stop - hp.pos)))
  else None

let eat_kw hp kw =
  match peek_word hp with
  | Some w when String.equal w kw ->
      hp.pos <- hp.pos + String.length kw;
      spacing hp;
      true
  | _ -> false

let expect_char hp c =
  if hp.pos < hp.len && hp.input.[hp.pos] = c then (
    hp.pos <- hp.pos + 1;
    spacing hp)
  else fail hp (Printf.sprintf "%C" c)

let eat_char hp c =
  if hp.pos < hp.len && hp.input.[hp.pos] = c then (
    hp.pos <- hp.pos + 1;
    spacing hp;
    true)
  else false

(* Single-character operator that must not be the prefix of a longer
   one: [eat_op hp c not_followed] *)
let eat_op hp c not_followed =
  if
    hp.pos < hp.len
    && hp.input.[hp.pos] = c
    && not
         (hp.pos + 1 < hp.len && String.contains not_followed hp.input.[hp.pos + 1])
  then (
    hp.pos <- hp.pos + 1;
    spacing hp;
    true)
  else false

let eat_str hp s =
  let n = String.length s in
  if hp.pos + n <= hp.len && String.sub hp.input hp.pos n = s then (
    hp.pos <- hp.pos + n;
    spacing hp;
    true)
  else false

let word hp =
  match peek_word hp with
  | Some w when not (List.mem w keywords) ->
      hp.pos <- hp.pos + String.length w;
      w
  | _ -> fail hp "identifier"

let identifier hp =
  let w = word hp in
  spacing hp;
  w

let node = Value.node
let leaf name children = node name (List.map (fun v -> (None, v)) children)

(* --- types ------------------------------------------------------------------ *)

let is_type_start hp =
  match peek_word hp with
  | Some w ->
      List.mem w builtin_words || String.equal w "struct"
      || Hashtbl.mem hp.typedefs w
  | None -> false

let type_specifier hp =
  match peek_word hp with
  | Some w when List.mem w builtin_words ->
      let words = ref [] in
      let rec go () =
        match peek_word hp with
        | Some w when List.mem w builtin_words ->
            hp.pos <- hp.pos + String.length w;
            spacing hp;
            words := Value.Str w :: !words;
            go ()
        | _ -> ()
      in
      go ();
      leaf "Builtin" [ Value.List (List.rev !words) ]
  | Some "struct" ->
      ignore (eat_kw hp "struct");
      let name = identifier hp in
      leaf "StructRef" [ Value.Str name ]
  | Some w when Hashtbl.mem hp.typedefs w ->
      hp.pos <- hp.pos + String.length w;
      spacing hp;
      leaf "TypedefName" [ Value.Str w ]
  | _ -> fail hp "type specifier"

let pointers hp =
  let n = ref 0 in
  while eat_op hp '*' "=" do
    incr n
  done;
  !n

(* --- expressions -------------------------------------------------------------- *)

let rec expression hp = assignment hp

and assignment hp =
  (* Mirror the PEG: try Unary AssignOp Assignment, else Conditional. *)
  let saved = hp.pos in
  match
    let lhs = unary hp in
    let op =
      if eat_op hp '=' "=" then "="
      else if eat_str hp "+=" then "+="
      else if eat_str hp "-=" then "-="
      else if eat_str hp "*=" then "*="
      else if eat_str hp "/=" then "/="
      else if eat_str hp "%=" then "%="
      else fail hp "assignment operator"
    in
    (lhs, op)
  with
  | lhs, op ->
      let rhs = assignment hp in
      leaf "Assign" [ lhs; Value.Str op; rhs ]
  | exception Fail _ ->
      hp.pos <- saved;
      conditional hp

and conditional hp =
  let c = binary hp 0 in
  if eat_op hp '?' "" then (
    let t = expression hp in
    expect_char hp ':';
    let f = conditional hp in
    leaf "Ternary" [ c; t; f ])
  else c

(* Binary levels, loosest first, mirroring the grammar's cascade. *)
and binary hp level =
  let try_op =
    match level with
    | 0 -> fun hp -> if eat_str hp "||" then Some "||" else None
    | 1 -> fun hp -> if eat_str hp "&&" then Some "&&" else None
    | 2 -> fun hp -> if eat_op2 hp '|' "|=" then Some "|" else None
    | 3 -> fun hp -> if eat_op2 hp '^' "=" then Some "^" else None
    | 4 -> fun hp -> if eat_op2 hp '&' "&=" then Some "&" else None
    | 5 ->
        fun hp ->
          if eat_str hp "==" then Some "=="
          else if eat_str hp "!=" then Some "!="
          else None
    | 6 ->
        fun hp ->
          if eat_str hp "<=" then Some "<="
          else if eat_str hp ">=" then Some ">="
          else if eat_op2 hp '<' "<=" then Some "<"
          else if eat_op2 hp '>' ">=" then Some ">"
          else None
    | 7 ->
        fun hp ->
          if hp.pos + 2 < hp.len && String.sub hp.input hp.pos 2 = "<<"
             && hp.input.[hp.pos + 2] <> '=' |> not
          then None
          else if eat_shift hp "<<" then Some "<<"
          else if eat_shift hp ">>" then Some ">>"
          else None
    | 8 ->
        fun hp ->
          if eat_op2 hp '+' "+=" then Some "+"
          else if eat_op2 hp '-' "-=>" then Some "-"
          else None
    | _ ->
        fun hp ->
          if eat_op2 hp '*' "=" then Some "*"
          else if eat_op2 hp '/' "/*=" then Some "/"
          else if eat_op2 hp '%' "=" then Some "%"
          else None
  in
  let next hp = if level >= 9 then unary hp else binary hp (level + 1) in
  let first = next hp in
  let tails = ref [] in
  let rec go () =
    match try_op hp with
    | Some op ->
        let operand = next hp in
        tails := leaf "Tail" [ Value.Str op; operand ] :: !tails;
        go ()
    | None -> ()
  in
  go ();
  match !tails with
  | [] -> first
  | ts -> leaf "Binary" [ first; Value.List (List.rev ts) ]

and eat_op2 hp c not_followed = eat_op hp c not_followed

and eat_shift hp s =
  if
    hp.pos + 1 < hp.len
    && String.sub hp.input hp.pos 2 = s
    && not (hp.pos + 2 < hp.len && hp.input.[hp.pos + 2] = '=')
  then (
    hp.pos <- hp.pos + 2;
    spacing hp;
    true)
  else false

and unary hp =
  (* Mirrors the grammar's alternative order: sizeof, cast, ++/--,
     prefix operators, postfix. The cast attempt backtracks fully, like
     the PEG alternative it mirrors. *)
  if try_cast_follows hp then
    let saved = hp.pos in
    match
      ignore (eat_char hp '(');
      let t = type_specifier hp in
      let _ = pointers hp in
      expect_char hp ')';
      let operand = unary hp in
      leaf "Cast" [ t; operand ]
    with
    | v -> v
    | exception Fail _ ->
        hp.pos <- saved;
        unary_nocast hp
  else unary_nocast hp

and try_cast_follows hp =
  hp.pos < hp.len
  && hp.input.[hp.pos] = '('
  &&
  let saved = hp.pos in
  hp.pos <- hp.pos + 1;
  spacing hp;
  let ok = is_type_start hp in
  hp.pos <- saved;
  ok

and unary_nocast hp =
  if eat_kw hp "sizeof" then
    if
      (* sizeof(type) only when a type really follows the paren *)
      hp.pos < hp.len && hp.input.[hp.pos] = '('
      &&
      let saved = hp.pos in
      hp.pos <- hp.pos + 1;
      spacing hp;
      let ok = is_type_start hp in
      hp.pos <- saved;
      ok
    then (
      expect_char hp '(';
      let t = type_specifier hp in
      let _ = pointers hp in
      expect_char hp ')';
      leaf "SizeofType" [ t ])
    else leaf "Sizeof" [ unary hp ]
  else if eat_str hp "++" then leaf "PreInc" [ unary hp ]
  else if eat_str hp "--" then leaf "PreDec" [ unary hp ]
  else if eat_op hp '!' "=" then leaf "Prefix" [ Value.Str "!"; unary hp ]
  else if eat_op hp '~' "" then leaf "Prefix" [ Value.Str "~"; unary hp ]
  else if eat_op hp '-' "-=>" then leaf "Prefix" [ Value.Str "-"; unary hp ]
  else if eat_op hp '+' "+=" then leaf "Prefix" [ Value.Str "+"; unary hp ]
  else if eat_op hp '*' "=" then leaf "Prefix" [ Value.Str "*"; unary hp ]
  else if eat_op hp '&' "&=" then leaf "Prefix" [ Value.Str "&"; unary hp ]
  else postfix hp

and postfix hp =
  let e = ref (primary hp) in
  let rec go () =
    if eat_char hp '(' then (
      let args = ref [] in
      (if not (eat_char hp ')') then (
         args := [ expression hp ];
         while eat_char hp ',' do
           args := expression hp :: !args
         done;
         expect_char hp ')'));
      e := leaf "Call" [ !e; Value.List (List.rev !args) ];
      go ())
    else if eat_char hp '[' then (
      let i = expression hp in
      expect_char hp ']';
      e := leaf "Index" [ !e; i ];
      go ())
    else if eat_str hp "->" then (
      let f = identifier hp in
      e := leaf "Arrow" [ !e; Value.Str f ];
      go ())
    else if
      hp.pos < hp.len
      && hp.input.[hp.pos] = '.'
      && hp.pos + 1 < hp.len
      && is_id_start hp.input.[hp.pos + 1]
    then (
      hp.pos <- hp.pos + 1;
      spacing hp;
      let f = identifier hp in
      e := leaf "Member" [ !e; Value.Str f ];
      go ())
    else if eat_str hp "++" then (
      e := leaf "PostInc" [ !e ];
      go ())
    else if eat_str hp "--" then (
      e := leaf "PostDec" [ !e ];
      go ())
  in
  go ();
  !e

and primary hp =
  match peek hp with
  | Some '(' ->
      ignore (eat_char hp '(');
      let e = expression hp in
      expect_char hp ')';
      e
  | Some c when is_digit c ->
      let start = hp.pos in
      while hp.pos < hp.len && is_digit hp.input.[hp.pos] do
        hp.pos <- hp.pos + 1
      done;
      let is_float =
        hp.pos + 1 < hp.len
        && hp.input.[hp.pos] = '.'
        && is_digit hp.input.[hp.pos + 1]
      in
      if is_float then (
        hp.pos <- hp.pos + 1;
        while hp.pos < hp.len && is_digit hp.input.[hp.pos] do
          hp.pos <- hp.pos + 1
        done)
      else if hp.pos < hp.len && hp.input.[hp.pos] = '.' then
        fail hp "float digits";
      let text = String.sub hp.input start (hp.pos - start) in
      spacing hp;
      leaf (if is_float then "FloatLit" else "IntLit") [ Value.Str text ]
  | Some '\'' ->
      let start = hp.pos in
      hp.pos <- hp.pos + 1;
      if hp.pos >= hp.len then fail hp "character";
      (if hp.input.[hp.pos] = '\\' then hp.pos <- hp.pos + 2
       else hp.pos <- hp.pos + 1);
      if hp.pos >= hp.len || hp.input.[hp.pos] <> '\'' then fail hp "'";
      hp.pos <- hp.pos + 1;
      let text = String.sub hp.input start (hp.pos - start) in
      spacing hp;
      leaf "CharLit" [ Value.Str text ]
  | Some '"' ->
      let start = hp.pos in
      hp.pos <- hp.pos + 1;
      let rec go () =
        if hp.pos >= hp.len then fail hp "'\"'"
        else
          match hp.input.[hp.pos] with
          | '"' -> hp.pos <- hp.pos + 1
          | '\\' ->
              hp.pos <- hp.pos + 2;
              go ()
          | _ ->
              hp.pos <- hp.pos + 1;
              go ()
      in
      go ();
      let text = String.sub hp.input start (hp.pos - start) in
      spacing hp;
      leaf "StrLit" [ Value.Str text ]
  | _ ->
      let name = identifier hp in
      leaf "Var" [ Value.Str name ]

(* --- declarations and statements ---------------------------------------------- *)

let rec declaration hp =
  if eat_kw hp "typedef" then (
    let t = type_specifier hp in
    let _ = pointers hp in
    let name = word hp in
    spacing hp;
    expect_char hp ';';
    Hashtbl.replace hp.typedefs name ();
    leaf "Typedef" [ t; Value.Str name ])
  else if
    (match peek_word hp with Some "struct" -> true | _ -> false)
    && struct_def_follows hp
  then (
    let s = struct_def hp in
    expect_char hp ';';
    s)
  else
    let t = type_specifier hp in
    let ds = ref [ init_declarator hp ] in
    while eat_char hp ',' do
      ds := init_declarator hp :: !ds
    done;
    expect_char hp ';';
    leaf "VarDecl" [ t; Value.List (List.rev !ds) ]

and struct_def_follows hp =
  (* struct W '{' starts a definition; struct W anything-else is a type. *)
  let saved = hp.pos in
  let result =
    eat_kw hp "struct"
    &&
    match
      let _ = identifier hp in
      peek hp
    with
    | Some '{' -> true
    | _ -> false
    | exception Fail _ -> false
  in
  hp.pos <- saved;
  result

and struct_def hp =
  ignore (eat_kw hp "struct");
  let name = identifier hp in
  expect_char hp '{';
  let fields = ref [] in
  while not (eat_char hp '}') do
    let t = type_specifier hp in
    let d = declarator hp in
    expect_char hp ';';
    fields := leaf "Field" [ t; d ] :: !fields
  done;
  leaf "StructDef" [ Value.Str name; Value.List (List.rev !fields) ]

and declarator hp =
  let stars = pointers hp in
  let name = identifier hp in
  let dims = ref [] in
  while eat_char hp '[' do
    (if not (eat_char hp ']') then (
       let e = expression hp in
       dims := e :: !dims;
       expect_char hp ']'))
  done;
  leaf "Declarator"
    [ Value.Str (String.make stars '*'); Value.Str name;
      Value.List (List.rev !dims) ]

and init_declarator hp =
  let d = declarator hp in
  if eat_op hp '=' "=" then
    let init = assignment hp in
    leaf "InitDeclarator" [ d; init ]
  else leaf "InitDeclarator" [ d ]

let rec statement hp =
  match peek hp with
  | Some '{' -> compound hp
  | Some ';' ->
      ignore (eat_char hp ';');
      leaf "Empty" []
  | _ -> (
      match peek_word hp with
      | Some "if" ->
          ignore (eat_kw hp "if");
          expect_char hp '(';
          let c = expression hp in
          expect_char hp ')';
          let t = statement hp in
          if eat_kw hp "else" then leaf "If" [ c; t; statement hp ]
          else leaf "If" [ c; t ]
      | Some "while" ->
          ignore (eat_kw hp "while");
          expect_char hp '(';
          let c = expression hp in
          expect_char hp ')';
          leaf "While" [ c; statement hp ]
      | Some "do" ->
          ignore (eat_kw hp "do");
          let b = statement hp in
          if not (eat_kw hp "while") then fail hp "\"while\"";
          expect_char hp '(';
          let c = expression hp in
          expect_char hp ')';
          expect_char hp ';';
          leaf "DoWhile" [ b; c ]
      | Some "for" ->
          ignore (eat_kw hp "for");
          expect_char hp '(';
          let init =
            if peek hp = Some ';' then Value.Unit else expression hp
          in
          expect_char hp ';';
          let cond =
            if peek hp = Some ';' then Value.Unit else expression hp
          in
          expect_char hp ';';
          let step =
            if peek hp = Some ')' then Value.Unit else expression hp
          in
          expect_char hp ')';
          leaf "For" [ init; cond; step; statement hp ]
      | Some "return" ->
          ignore (eat_kw hp "return");
          if eat_char hp ';' then leaf "Return" []
          else
            let e = expression hp in
            expect_char hp ';';
            leaf "Return" [ e ]
      | Some "break" ->
          ignore (eat_kw hp "break");
          expect_char hp ';';
          leaf "Break" []
      | Some "continue" ->
          ignore (eat_kw hp "continue");
          expect_char hp ';';
          leaf "Continue" []
      | Some "switch" ->
          ignore (eat_kw hp "switch");
          expect_char hp '(';
          let scrut = expression hp in
          expect_char hp ')';
          expect_char hp '{';
          let items = ref [] in
          let rec stmts_until_case acc =
            match peek_word hp with
            | Some ("case" | "default") -> List.rev acc
            | _ ->
                if peek hp = Some '}' then List.rev acc
                else stmts_until_case (statement hp :: acc)
          in
          while not (eat_char hp '}') do
            if eat_kw hp "case" then (
              let guard = expression hp in
              expect_char hp ':';
              items := leaf "Case" [ guard; Value.List (stmts_until_case []) ] :: !items)
            else if eat_kw hp "default" then (
              expect_char hp ':';
              items := leaf "Default" [ Value.List (stmts_until_case []) ] :: !items)
            else fail hp "\"case\" or \"default\""
          done;
          leaf "Switch" [ scrut; Value.List (List.rev !items) ]
      | Some "goto" ->
          ignore (eat_kw hp "goto");
          let l = identifier hp in
          expect_char hp ';';
          leaf "Goto" [ Value.Str l ]
      | Some w
        when (not (List.mem w keywords)) && label_follows hp ->
          let l = identifier hp in
          ignore (eat_char hp ':');
          leaf "Label" [ Value.Str l; statement hp ]
      | Some "typedef" -> declaration hp
      | Some w
        when List.mem w builtin_words
             || String.equal w "struct"
             || Hashtbl.mem hp.typedefs w ->
          declaration hp
      | _ ->
          let e = expression hp in
          expect_char hp ';';
          leaf "ExprStmt" [ e ])

and label_follows hp =
  let saved = hp.pos in
  let ok =
    match
      let _ = identifier hp in
      peek hp
    with
    | Some ':' -> true
    | _ -> false
    | exception Fail _ -> false
  in
  hp.pos <- saved;
  ok

and compound hp =
  expect_char hp '{';
  let stmts = ref [] in
  while not (eat_char hp '}') do
    stmts := statement hp :: !stmts
  done;
  leaf "Compound" [ Value.List (List.rev !stmts) ]

let parse_hand input =
  let hp = { input; len = String.length input; pos = 0; typedefs = Hashtbl.create 16 } in
  match
    spacing hp;
    let items = ref [] in
    while hp.pos < hp.len do
      let item =
        match peek_word hp with
        | Some "typedef" -> declaration hp
        | Some "struct" when struct_def_follows hp ->
            let s = struct_def hp in
            expect_char hp ';';
            s
        | _ ->
            (* Shared prefix: type, pointers, name; then '(' decides. *)
            let t = type_specifier hp in
            let stars = pointers hp in
            let name = identifier hp in
            if peek hp = Some '(' then (
              ignore (eat_char hp '(');
              let params = ref [] in
              (if not (eat_char hp ')') then (
                 let param () =
                   let pt = type_specifier hp in
                   let ps = pointers hp in
                   let pn =
                     match peek_word hp with
                     | Some w when not (List.mem w keywords) ->
                         Some (identifier hp)
                     | _ -> None
                   in
                   leaf "Param"
                     [ pt; Value.Str (String.make ps '*');
                       Value.Str (Option.value pn ~default:"") ]
                 in
                 params := [ param () ];
                 while eat_char hp ',' do
                   params := param () :: !params
                 done;
                 expect_char hp ')'));
              let body = compound hp in
              leaf "FunctionDef"
                [ t; Value.Str name; Value.List (List.rev !params); body ])
            else
              (* Continue as a declaration whose first declarator's
                 pointer/name we already consumed. *)
              let dims = ref [] in
              let () =
                while eat_char hp '[' do
                  if not (eat_char hp ']') then (
                    let e = expression hp in
                    dims := e :: !dims;
                    expect_char hp ']')
                done
              in
              let first_decl =
                let d =
                  leaf "Declarator"
                    [ Value.Str (String.make stars '*'); Value.Str name;
                      Value.List (List.rev !dims) ]
                in
                if eat_op hp '=' "=" then
                  leaf "InitDeclarator" [ d; assignment hp ]
                else leaf "InitDeclarator" [ d ]
              in
              let ds = ref [ first_decl ] in
              while eat_char hp ',' do
                ds := init_declarator hp :: !ds
              done;
              expect_char hp ';';
              leaf "VarDecl" [ t; Value.List (List.rev !ds) ]
      in
      items := item :: !items
    done;
    leaf "Program" [ Value.List (List.rev !items) ]
  with
  | v -> Ok v
  | exception Fail (pos, expected) ->
      Error (Printf.sprintf "parse error at offset %d: expected %s" pos expected)
