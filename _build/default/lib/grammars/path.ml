(* The pathological grammar of experiment E4: naive backtracking is
   exponential in the nesting depth, packrat is linear. *)

let texts = [ Texts.pathological ]
let grammar () = Loader.grammar ~root:"path.Main" texts
