(** MiniJava: the second language of the evaluation.

    Its point is {e module reuse}: the grammar imports [c.Space] and
    [c.Op] — the MiniC spacing and operator modules — unchanged, just as
    Rats!'s C and Java grammars shared their foundations. Unlike MiniC
    it is entirely stateless (Java has no typedef problem), so every
    production is memoizable. *)

open Rats_peg

val texts : string list
val grammar : unit -> Grammar.t
(** Rooted at [j.Program]. *)

val load : unit -> Grammar.t * Rats_modules.Resolve.stats

val parse_hand : string -> (Rats_peg.Value.t, string) result
(** Hand-written recursive-descent parser for the same language — the
    E2 comparator. Accepts the same programs as the grammar (validated
    on the corpus); tree shapes are similar but not guaranteed
    identical. *)
