(** JSON: modular grammar plus a hand-written comparator building
    structurally equal trees. *)

open Rats_peg

val texts : string list
val grammar : unit -> Grammar.t
(** Composed from [json.Main]. *)

val parse_hand : string -> (Value.t, string) result
(** Hand-written recursive-descent JSON parser producing the same tree
    shapes as the grammar (string contents are kept raw, not unescaped,
    exactly as the grammar's token capture does). *)
