(** The calculator language: modular grammar, evaluator, and a
    hand-written recursive-descent comparator that builds bit-identical
    trees (the E2 baseline in miniature). *)

open Rats_peg

val texts : string list
(** The grammar-module sources (one multi-module text). *)

val grammar : unit -> Grammar.t
(** Composed from [calc.Main]: spacing, numbers, core, and the [**]
    extension. Fresh value on each call. *)

val core_grammar : unit -> Grammar.t
(** Composed without the [**] extension (root [calc.Core] wired to
    [calc.Space]) — used to demonstrate extension by composition. *)

val eval : Value.t -> float
(** Evaluate a tree produced by any of the calculator parsers. Raises
    [Invalid_argument] on foreign trees. *)

val parse_hand : string -> (Value.t, string) result
(** Hand-written recursive-descent parser for the same language,
    producing structurally equal values. *)
