(** Pathological-backtracking grammar for experiment E4. *)

val texts : string list
val grammar : unit -> Rats_peg.Grammar.t
