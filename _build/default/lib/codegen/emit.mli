(** Parser generation: a composed grammar becomes OCaml source.

    This is the Rats! moment proper — where Rats! emits a Java class per
    grammar, we emit an OCaml module exposing

    {[
      val parse : ?require_eof:bool -> string ->
        (Rats_peg.Value.t, string) result
      val parse_from : string -> ?require_eof:bool -> string ->
        (Rats_peg.Value.t, string) result
    ]}

    The generated module depends only on [rats_peg] (for [Value], [Span]
    and [Charset]), playing the role of Rats!'s small runtime library.
    Memoization is specialized at generation time from the configuration:
    chunked/hashtable/none, with transient productions receiving no slot,
    and optional FIRST-set choice dispatch compiled into OCaml [match]
    patterns over the next byte. The [lean_values] switch is an
    interpreter micro-optimization and is ignored here.

    The grammar must pass {!Rats_peg.Analysis.check}. *)

open Rats_support
open Rats_peg

val grammar_module :
  ?config:Rats_runtime.Config.t ->
  ?header:string ->
  Grammar.t ->
  (string, Diagnostic.t list) result
(** [grammar_module g] is the OCaml source text. [header] is prepended as
    a comment line. Default configuration is
    {!Rats_runtime.Config.optimized}. *)

val interface : unit -> string
(** The [.mli] text matching any generated parser module. *)

val function_name : int -> string -> string
(** [function_name i name] — the mangled OCaml identifier used for
    production [name] with index [i] (exposed for golden tests). *)
