lib/codegen/emit.ml: Analysis Array Attr Buffer Charset Expr Grammar Hashtbl List Pretty Printf Production Rats_peg Rats_runtime Rats_support String
