lib/codegen/emit.mli: Diagnostic Grammar Rats_peg Rats_runtime Rats_support
