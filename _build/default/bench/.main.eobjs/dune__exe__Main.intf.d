bench/main.mli:
