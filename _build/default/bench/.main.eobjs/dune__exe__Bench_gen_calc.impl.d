bench/bench_gen_calc.ml: Array Hashtbl List Map Printf Rats_peg Rats_support Set Span String Value
