(* Emits the generated parsers benchmarked in E2. Run by a dune rule. *)

let emit path g =
  match
    Rats.Emit.grammar_module ~header:"bench parser" (Rats.Pipeline.optimize g)
  with
  | Ok code -> Out_channel.with_open_bin path (fun oc -> output_string oc code)
  | Error (d :: _) ->
      prerr_endline (Rats.Diagnostic.to_string d);
      exit 1
  | Error [] -> assert false

let () =
  emit "bench_gen_calc.ml" (Rats.Grammars.Calc.grammar ());
  emit "bench_gen_json.ml" (Rats.Grammars.Json.grammar ());
  emit "bench_gen_java.ml" (Rats.Grammars.Minijava.grammar ())
