(* Tests for the parser generator. Structural checks on the emitted
   source live here; the generated-code *execution* tests are in
   test/gen, where a dune rule compiles a generated parser and runs it
   against the interpreter. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let gen ?config g =
  match Emit.grammar_module ?config g with
  | Ok code -> code
  | Error (d :: _) -> Alcotest.failf "codegen: %s" (Diagnostic.to_string d)
  | Error [] -> assert false

let calc () = Pipeline.optimize (Grammars.Calc.grammar ())

let structure_tests =
  let open Builder in
  [
    test "module exposes parse entry points" (fun () ->
        let code = gen (calc ()) in
        check Alcotest.bool "parse" true (contains code "let parse ");
        check Alcotest.bool "parse_from" true (contains code "let parse_from ");
        check Alcotest.bool "start recorded" true
          (contains code "let start_production = \"Calculation\""));
    test "every production becomes a function" (fun () ->
        let g = calc () in
        let code = gen g in
        List.iter
          (fun (p : Production.t) ->
            check Alcotest.bool p.name true
              (contains code (Printf.sprintf "(%S, " p.name)))
          (Grammar.productions g));
    test "function names are mangled to valid idents" (fun () ->
        check Alcotest.string "mangled" "p_3_Pow_Atom"
          (Emit.function_name 3 "Pow.Atom");
        check Alcotest.string "dollar" "p_0_S_rep1"
          (Emit.function_name 0 "S$rep1"));
    test "chunked config emits chunks, hashtable emits table" (fun () ->
        let g = Grammar.make_exn [ prod "S" (c 'a') ] in
        let chunked = gen ~config:Config.optimized g in
        check Alcotest.bool "chunks" true (contains chunked "st.chunks.(pos)");
        let hashed = gen ~config:Config.packrat g in
        check Alcotest.bool "table" true (contains hashed "st.table_memo"));
    test "no_memo config emits no memo machinery in wrappers" (fun () ->
        let g = Grammar.make_exn [ prod "S" (c 'a') ] in
        let code = gen ~config:Config.naive g in
        check Alcotest.bool "no lookup" false (contains code "chunk.res"));
    test "dispatch compiles FIRST sets into match patterns" (fun () ->
        let g =
          Grammar.make_exn [ prod "S" (s "ax" <|> s "bx") ]
        in
        let with_dispatch = gen ~config:(Config.v ~dispatch:true ()) g in
        check Alcotest.bool "pattern guard" true
          (contains with_dispatch "-> true | _ -> false"));
    test "class ranges become OCaml char patterns" (fun () ->
        let g = Grammar.make_exn [ prod "S" (r 'a' 'z') ] in
        check Alcotest.bool "range pattern" true
          (contains (gen g) "'a' .. 'z'"));
    test "stateful productions get version guards" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (record "T" (c 'a') @: member "T" (c 'a')) ]
        in
        let code = gen ~config:Config.packrat g in
        check Alcotest.bool "guard" true (contains code "= st.version"));
    test "left-recursive grammar rejected" (fun () ->
        let g = Grammar.make_exn [ prod "E" (e "E" @: c '+' <|> c 'n') ] in
        match Emit.grammar_module g with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    test "header comment included" (fun () ->
        let g = Grammar.make_exn [ prod "S" (c 'a') ] in
        let code = gen ~config:Config.naive g in
        ignore code;
        match Emit.grammar_module ~header:"hello world" g with
        | Ok code -> check Alcotest.bool "header" true (contains code "hello world")
        | Error _ -> Alcotest.fail "codegen failed");
    test "minic extended grammar generates" (fun () ->
        let g = Pipeline.optimize (Grammars.Minic.extended_grammar ()) in
        let code = gen g in
        check Alcotest.bool "non-trivial" true (String.length code > 10_000));
  ]

let () = Alcotest.run "codegen" [ ("structure", structure_tests) ]
