(* Unit tests for the PEG core: character sets, semantic values, the
   expression IR and its smart constructors, grammars, static analyses
   and the pretty-printer. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let expr_eq = Alcotest.testable (fun ppf e -> Pretty.pp_expr ppf e) Expr.equal
let value_eq = Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal
let b_grammar prods = Grammar.make_exn prods

(* --- Charset ------------------------------------------------------------- *)

let charset_tests =
  [
    test "membership of range" (fun () ->
        let s = Charset.range 'a' 'f' in
        check Alcotest.bool "a" true (Charset.mem 'a' s);
        check Alcotest.bool "f" true (Charset.mem 'f' s);
        check Alcotest.bool "g" false (Charset.mem 'g' s);
        check Alcotest.int "cardinal" 6 (Charset.cardinal s));
    test "empty range when hi < lo" (fun () ->
        check Alcotest.bool "empty" true
          (Charset.is_empty (Charset.range 'z' 'a')));
    test "of_string dedups" (fun () ->
        check Alcotest.int "card" 3 (Charset.cardinal (Charset.of_string "aab-")));
    test "union and inter" (fun () ->
        let a = Charset.range 'a' 'm' and b = Charset.range 'h' 'z' in
        check Alcotest.int "union" 26 (Charset.cardinal (Charset.union a b));
        check Alcotest.int "inter" 6 (Charset.cardinal (Charset.inter a b)));
    test "diff and complement" (fun () ->
        let a = Charset.range 'a' 'd' in
        check Alcotest.int "diff" 3
          (Charset.cardinal (Charset.diff a (Charset.singleton 'b')));
        check Alcotest.int "complement" 252
          (Charset.cardinal (Charset.complement a));
        check Alcotest.bool "full" true
          (Charset.equal Charset.full (Charset.union a (Charset.complement a))));
    test "add and remove" (fun () ->
        let s = Charset.add 'x' Charset.empty in
        check Alcotest.bool "added" true (Charset.mem 'x' s);
        check Alcotest.bool "removed" false (Charset.mem 'x' (Charset.remove 'x' s)));
    test "subset and disjoint" (fun () ->
        let a = Charset.range 'a' 'c' and b = Charset.range 'a' 'z' in
        check Alcotest.bool "subset" true (Charset.subset a b);
        check Alcotest.bool "not subset" false (Charset.subset b a);
        check Alcotest.bool "disjoint" true
          (Charset.disjoint a (Charset.range '0' '9')));
    test "high bytes work" (fun () ->
        let s = Charset.singleton '\xff' in
        check Alcotest.bool "mem" true (Charset.mem '\xff' s);
        check Alcotest.bool "not" false (Charset.mem '\xfe' s));
    test "to_ranges collapses runs" (fun () ->
        let s = Charset.union (Charset.range 'a' 'c') (Charset.singleton 'x') in
        check Alcotest.int "ranges" 2 (List.length (Charset.to_ranges s)));
    test "of_ranges round-trips" (fun () ->
        let s = Charset.of_string "azAZ09_-" in
        check Alcotest.bool "eq" true
          (Charset.equal s (Charset.of_ranges (Charset.to_ranges s))));
    test "elements sorted" (fun () ->
        check
          (Alcotest.list Alcotest.char)
          "elems" [ 'a'; 'b'; 'z' ]
          (Charset.elements (Charset.of_string "zba")));
    test "choose smallest" (fun () ->
        check (Alcotest.option Alcotest.char) "min" (Some 'b')
          (Charset.choose (Charset.of_string "cbz"));
        check (Alcotest.option Alcotest.char) "none" None
          (Charset.choose Charset.empty));
    test "pp prints range syntax" (fun () ->
        check Alcotest.string "range" "[a-e]"
          (Charset.to_string (Charset.range 'a' 'e')));
  ]

(* --- Value ------------------------------------------------------------------ *)

let value_tests =
  [
    test "seq drops unlabeled units" (fun () ->
        check value_eq "unit" Value.Unit
          (Value.seq [ (None, Value.Unit); (None, Value.Unit) ]));
    test "seq collapses singleton" (fun () ->
        check value_eq "single" (Value.Str "x")
          (Value.seq [ (None, Value.Unit); (None, Value.Str "x") ]));
    test "seq keeps labeled unit" (fun () ->
        match Value.seq [ (Some "a", Value.Unit) ] with
        | Value.Node { name; children = [ (Some "a", Value.Unit) ]; _ } ->
            check Alcotest.string "tuple" Value.seq_name name
        | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
    test "seq builds tuple for several" (fun () ->
        match Value.seq [ (None, Value.Chr 'a'); (None, Value.Chr 'b') ] with
        | Value.Node { children; _ } ->
            check Alcotest.int "arity" 2 (List.length children)
        | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
    test "components of tuple" (fun () ->
        let v = Value.seq [ (None, Value.Chr 'a'); (Some "x", Value.Chr 'b') ] in
        check Alcotest.int "n" 2 (List.length (Value.components v)));
    test "components of scalar" (fun () ->
        check Alcotest.int "one" 1 (List.length (Value.components (Value.Str "s")));
        check Alcotest.int "zero" 0 (List.length (Value.components Value.Unit)));
    test "child lookup" (fun () ->
        let v = Value.node "N" [ (Some "k", Value.Str "v"); (None, Value.Unit) ] in
        check (Alcotest.option value_eq) "found" (Some (Value.Str "v"))
          (Value.child v "k");
        check (Alcotest.option value_eq) "missing" None (Value.child v "nope"));
    test "nth_child" (fun () ->
        let v = Value.node "N" [ (None, Value.Chr 'a'); (None, Value.Chr 'b') ] in
        check (Alcotest.option value_eq) "1" (Some (Value.Chr 'b'))
          (Value.nth_child v 1));
    test "equal ignores spans" (fun () ->
        let a = Value.node ~span:(Span.v ~start_:0 ~stop:5) "N" [] in
        let b = Value.node ~span:(Span.v ~start_:3 ~stop:9) "N" [] in
        check Alcotest.bool "eq" true (Value.equal a b));
    test "equal distinguishes names and labels" (fun () ->
        check Alcotest.bool "name" false
          (Value.equal (Value.node "A" []) (Value.node "B" []));
        check Alcotest.bool "label" false
          (Value.equal
             (Value.node "N" [ (Some "x", Value.Unit) ])
             (Value.node "N" [ (None, Value.Unit) ])));
    test "to_string stable rendering" (fun () ->
        let v =
          Value.node "Add"
            [ (Some "l", Value.Str "1"); (None, Value.List [ Value.Chr 'x' ]) ]
        in
        check Alcotest.string "golden" "(Add l:\"1\" ['x'])" (Value.to_string v));
    test "to_string escapes" (fun () ->
        check Alcotest.string "esc" "\"a\\nb\""
          (Value.to_string (Value.Str "a\nb")));
    test "count_nodes" (fun () ->
        let v =
          Value.node "A"
            [ (None, Value.List [ Value.node "B" []; Value.Str "s" ]) ]
        in
        check Alcotest.int "n" 2 (Value.count_nodes v));
  ]

(* --- Expr smart constructors -------------------------------------------------- *)

let expr_tests =
  [
    test "str of empty is Empty" (fun () ->
        check expr_eq "empty" Expr.empty (Expr.str ""));
    test "str of one char is Chr" (fun () ->
        check expr_eq "chr" (Expr.chr 'a') (Expr.str "a"));
    test "empty class is Fail" (fun () ->
        match (Expr.cls Charset.empty).Expr.it with
        | Expr.Fail _ -> ()
        | _ -> Alcotest.fail "expected Fail");
    test "full class is Any" (fun () ->
        check expr_eq "any" (Expr.any ()) (Expr.cls Charset.full));
    test "seq flattens nested" (fun () ->
        let e =
          Expr.seq [ Expr.chr 'a'; Expr.seq [ Expr.chr 'b'; Expr.chr 'c' ] ]
        in
        match e.Expr.it with
        | Expr.Seq es -> check Alcotest.int "flat" 3 (List.length es)
        | _ -> Alcotest.fail "expected Seq");
    test "seq drops Empty and collapses singleton" (fun () ->
        check expr_eq "collapse" (Expr.chr 'a')
          (Expr.seq [ Expr.empty; Expr.chr 'a'; Expr.empty ]));
    test "alt flattens unlabeled nested" (fun () ->
        let e =
          Expr.alt [ Expr.chr 'a'; Expr.alt [ Expr.chr 'b'; Expr.chr 'c' ] ]
        in
        match e.Expr.it with
        | Expr.Alt alts -> check Alcotest.int "flat" 3 (List.length alts)
        | _ -> Alcotest.fail "expected Alt");
    test "alt keeps labeled branches" (fun () ->
        let open Builder in
        let e = label "A" (c 'a') <|> label "B" (c 'b') in
        match e.Expr.it with
        | Expr.Alt [ { label = Some "A"; _ }; { label = Some "B"; _ } ] -> ()
        | _ -> Alcotest.fail "labels lost");
    test "alt of nothing fails" (fun () ->
        match (Expr.alt []).Expr.it with
        | Expr.Fail _ -> ()
        | _ -> Alcotest.fail "expected Fail");
    test "refs dedups in order" (fun () ->
        let open Builder in
        let x = e "A" @: e "B" @: e "A" @: star (e "C") in
        check (Alcotest.list Alcotest.string) "refs" [ "A"; "B"; "C" ]
          (Expr.refs x));
    test "size counts nodes" (fun () ->
        let open Builder in
        check Alcotest.int "size" 4 (Expr.size (star (c 'a' @: c 'b'))));
    test "equal ignores locations" (fun () ->
        let a = Expr.chr ~loc:(Span.v ~start_:0 ~stop:1) 'x' in
        let b = Expr.chr ~loc:(Span.v ~start_:5 ~stop:6) 'x' in
        check Alcotest.bool "eq" true (Expr.equal a b));
    test "rename_refs rewrites deeply" (fun () ->
        let open Builder in
        let x = star (e "A" <|> tok (e "B")) in
        let x' = Expr.rename_refs (fun n -> n ^ "!") x in
        check (Alcotest.list Alcotest.string) "renamed" [ "A!"; "B!" ]
          (Expr.refs x'));
    test "is_stateful detects nested state ops" (fun () ->
        let open Builder in
        check Alcotest.bool "record" true
          (Expr.is_stateful (star (record "T" (c 'a'))));
        check Alcotest.bool "plain" false (Expr.is_stateful (star (c 'a'))));
    test "map_children is shallow" (fun () ->
        let open Builder in
        let x = star (e "A") in
        let x' = Expr.map_children (fun _ -> c 'x') x in
        check expr_eq "shallow" (star (c 'x')) x');
    test "fold is pre-order" (fun () ->
        let open Builder in
        let x = c 'a' @: star (c 'b') in
        let names =
          Expr.fold
            (fun acc (n : Expr.t) ->
              (match n.it with
              | Expr.Seq _ -> "seq"
              | Expr.Star _ -> "star"
              | Expr.Chr c -> String.make 1 c
              | _ -> "?")
              :: acc)
            [] x
        in
        check (Alcotest.list Alcotest.string) "order" [ "seq"; "a"; "star"; "b" ]
          (List.rev names));
  ]

(* --- Grammar ---------------------------------------------------------------- *)

let grammar_tests =
  let open Builder in
  [
    test "duplicate names rejected" (fun () ->
        match Grammar.make [ prod "A" (c 'a'); prod "A" (c 'b') ] with
        | Error d -> check Alcotest.bool "msg" true (Diagnostic.is_error d)
        | Ok _ -> Alcotest.fail "expected error");
    test "empty grammar rejected" (fun () ->
        match Grammar.make [] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "start defaults to first public" (fun () ->
        let g = b_grammar [ prod "A" (c 'a'); prod ~public:true "B" (c 'b') ] in
        check Alcotest.string "start" "B" (Grammar.start g));
    test "start defaults to first without public" (fun () ->
        let g = b_grammar [ prod "A" (c 'a'); prod "B" (c 'b') ] in
        check Alcotest.string "start" "A" (Grammar.start g));
    test "undefined start rejected" (fun () ->
        match Grammar.make ~start:"Z" [ prod "A" (c 'a') ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "find and mem" (fun () ->
        let g = b_grammar [ prod "A" (c 'a') ] in
        check Alcotest.bool "mem" true (Grammar.mem g "A");
        check Alcotest.bool "not" false (Grammar.mem g "B"));
    test "check_closed reports dangling refs" (fun () ->
        let g = b_grammar [ prod "A" (e "Missing") ] in
        check Alcotest.int "one error" 1 (List.length (Grammar.check_closed g)));
    test "closed grammar passes" (fun () ->
        let g = b_grammar [ prod "A" (e "B"); prod "B" (c 'b') ] in
        check Alcotest.int "no errors" 0 (List.length (Grammar.check_closed g)));
    test "update replaces body" (fun () ->
        let g = b_grammar [ prod "A" (c 'a') ] in
        let g = Grammar.update g "A" (fun p -> Production.with_expr p (c 'z')) in
        check expr_eq "updated" (c 'z') (Grammar.find_exn g "A").Production.expr);
    test "map cannot rename" (fun () ->
        let g = b_grammar [ prod "A" (c 'a') ] in
        match Grammar.map (fun p -> { p with Production.name = "B" }) g with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "add rejects duplicates" (fun () ->
        let g = b_grammar [ prod "A" (c 'a') ] in
        (match Grammar.add g (prod "A" (c 'b')) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
        match Grammar.add g (prod "B" (c 'b')) with
        | Ok g' -> check Alcotest.int "len" 2 (Grammar.length g')
        | Error _ -> Alcotest.fail "expected ok");
    test "restrict keeps start" (fun () ->
        let g = b_grammar [ prod "A" (e "B"); prod "B" (c 'b') ] in
        let g' = Grammar.restrict g ~keep:(fun _ -> false) in
        check Alcotest.bool "start kept" true (Grammar.mem g' "A"));
  ]

(* --- Analysis ---------------------------------------------------------------- *)

let analysis_tests =
  let open Builder in
  [
    test "nullable: star, opt, predicates" (fun () ->
        let g =
          b_grammar
            [
              prod "S" (star (c 'a'));
              prod "O" (opt (c 'a'));
              prod "P" (bang (c 'a'));
              prod "C" (c 'a');
              prod "Q" (e "S" @: e "O");
              prod "R" (e "C" @: e "S");
            ]
        in
        let a = Analysis.analyze g in
        check Alcotest.bool "S" true (Analysis.nullable a "S");
        check Alcotest.bool "O" true (Analysis.nullable a "O");
        check Alcotest.bool "P" true (Analysis.nullable a "P");
        check Alcotest.bool "C" false (Analysis.nullable a "C");
        check Alcotest.bool "Q" true (Analysis.nullable a "Q");
        check Alcotest.bool "R" false (Analysis.nullable a "R"));
    test "first: sequence skips nullable prefix" (fun () ->
        let g =
          b_grammar
            [ prod "S" (opt (c 'a') @: c 'b'); prod "T" (c 'a' @: c 'b') ]
        in
        let a = Analysis.analyze g in
        check Alcotest.bool "S has b" true (Charset.mem 'b' (Analysis.first a "S"));
        check Alcotest.bool "S has a" true (Charset.mem 'a' (Analysis.first a "S"));
        check Alcotest.bool "T no b" false (Charset.mem 'b' (Analysis.first a "T")));
    test "first: recursive production reaches fixpoint" (fun () ->
        let g =
          b_grammar [ prod "E" (c '(' @: e "E" @: c ')' <|> r '0' '9') ]
        in
        let a = Analysis.analyze g in
        check Alcotest.bool "paren" true (Charset.mem '(' (Analysis.first a "E"));
        check Alcotest.bool "digit" true (Charset.mem '5' (Analysis.first a "E")));
    test "direct left recursion detected" (fun () ->
        let g = b_grammar [ prod "E" (e "E" @: c '+' <|> c 'n') ] in
        match Analysis.left_recursion (Analysis.analyze g) with
        | Some cycle -> check Alcotest.bool "E in cycle" true (List.mem "E" cycle)
        | None -> Alcotest.fail "missed left recursion");
    test "indirect left recursion detected" (fun () ->
        let g =
          b_grammar
            [ prod "A" (e "B" @: c 'x'); prod "B" (e "C"); prod "C" (e "A") ]
        in
        match Analysis.left_recursion (Analysis.analyze g) with
        | Some cycle -> check Alcotest.bool "len" true (List.length cycle >= 3)
        | None -> Alcotest.fail "missed indirect left recursion");
    test "left recursion through nullable prefix" (fun () ->
        let g = b_grammar [ prod "A" (star (c 'x') @: e "A") ] in
        check Alcotest.bool "found" true
          (Analysis.left_recursion (Analysis.analyze g) <> None));
    test "right recursion is fine" (fun () ->
        let g = b_grammar [ prod "A" (c 'x' @: opt (e "A")) ] in
        check Alcotest.bool "none" true
          (Analysis.left_recursion (Analysis.analyze g) = None));
    test "recursion behind predicate counts" (fun () ->
        let g = b_grammar [ prod "A" (amp (e "A") @: c 'x') ] in
        check Alcotest.bool "found" true
          (Analysis.left_recursion (Analysis.analyze g) <> None));
    test "check rejects vacuous repetition" (fun () ->
        let g = b_grammar [ prod "A" (star (opt (c 'x'))) ] in
        check Alcotest.bool "errors" true
          (Analysis.check (Analysis.analyze g) <> []));
    test "check accepts a sane grammar" (fun () ->
        let g = b_grammar [ prod "A" (plus (c 'x') @: bang any) ] in
        check Alcotest.int "clean" 0
          (List.length (Analysis.check (Analysis.analyze g))));
    test "stateful is transitive" (fun () ->
        let g =
          b_grammar
            [
              prod "A" (e "B");
              prod "B" (record "T" (c 'x'));
              prod "C" (c 'y');
            ]
        in
        let a = Analysis.analyze g in
        check Alcotest.bool "A" true (Analysis.stateful a "A");
        check Alcotest.bool "B" true (Analysis.stateful a "B");
        check Alcotest.bool "C" false (Analysis.stateful a "C"));
    test "reachable from start and public" (fun () ->
        let g =
          Grammar.make_exn ~start:"A"
            [
              prod "A" (e "B");
              prod "B" (c 'b');
              prod ~public:true "P" (c 'p');
              prod "Dead" (c 'd');
            ]
        in
        let r = Analysis.reachable (Analysis.analyze g) in
        check Alcotest.bool "B" true (Analysis.StringSet.mem "B" r);
        check Alcotest.bool "P" true (Analysis.StringSet.mem "P" r);
        check Alcotest.bool "Dead" false (Analysis.StringSet.mem "Dead" r));
    test "ref_count counts sites plus start" (fun () ->
        let g =
          Grammar.make_exn ~start:"A"
            [ prod "A" (e "B" @: e "B"); prod "B" (c 'b') ]
        in
        let a = Analysis.analyze g in
        check Alcotest.int "B" 2 (Analysis.ref_count a "B");
        check Alcotest.int "A(start)" 1 (Analysis.ref_count a "A"));
  ]

(* --- Pretty -------------------------------------------------------------------- *)

let pretty_tests =
  let open Builder in
  let golden name expected x =
    test name (fun () ->
        check Alcotest.string "printed" expected (Pretty.expr_to_string x))
  in
  [
    golden "choice / sequence precedence" "'a' 'b' / 'c'"
      (c 'a' @: c 'b' <|> c 'c');
    golden "group choice inside sequence" "'a' ('b' / 'c')"
      (c 'a' @: (c 'b' <|> c 'c'));
    golden "suffix binds tighter than prefix" "!'a'*" (bang (star (c 'a')));
    golden "star of group" "('a' 'b')*" (star (c 'a' @: c 'b'));
    golden "bind and drop" "x:A void:'b'" (("x" |: e "A") @: void (c 'b'));
    golden "token and node" "$(A) @N('x')" (tok (e "A") @: node "N" (c 'x'));
    golden "predicates" "&'a' !'b'" (amp (c 'a') @: bang (c 'b'));
    golden "state operators" "%record(T, 'a') / %absent(T, 'b')"
      (record "T" (c 'a') <|> absent "T" (c 'b'));
    golden "labels" "<A> 'a' / <B> 'b'"
      (label "A" (c 'a') <|> label "B" (c 'b'));
    golden "string escaping" "\"a\\\"b\\n\"" (s "a\"b\n");
    golden "empty" "()" eps;
    test "attr words canonical order" (fun () ->
        let a =
          Attr.v ~visibility:Attr.Public ~memo:Attr.Memo_never ~kind:Attr.Void ()
        in
        check (Alcotest.list Alcotest.string) "words"
          [ "public"; "transient"; "void" ] (Pretty.attr_words a));
    test "production rendering mentions name and body" (fun () ->
        let p = prod ~public:true ~kind:Attr.Generic "Sum" (e "A" <|> e "B") in
        let s = Format.asprintf "%a" Pretty.pp_production p in
        check Alcotest.bool "nonempty" true (String.length s > 10));
  ]

(* --- Lint -------------------------------------------------------------------- *)

let lint_tests =
  let open Builder in
  let warnings prods = Lint.check (Grammar.make_exn prods) in
  let has sub ws =
    List.exists
      (fun (d : Diagnostic.t) ->
        let m = d.message and n = String.length sub in
        let rec go i =
          i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
        in
        go 0)
      ws
  in
  [
    test "duplicate alternatives flagged" (fun () ->
        check Alcotest.bool "dup" true
          (has "duplicate" (warnings [ prod "S" (c 'a' <|> c 'b' <|> c 'a') ])));
    test "dead alternatives after nullable flagged" (fun () ->
        check Alcotest.bool "dead" true
          (has "unreachable"
             (warnings [ prod "S" (star (c 'a') <|> c 'b') ])));
    test "nullable last alternative is fine" (fun () ->
        check Alcotest.bool "ok" false
          (has "unreachable" (warnings [ prod "S" (c 'b' <|> star (c 'a')) ])));
    test "prefix-shadowed alternatives flagged" (fun () ->
        check Alcotest.bool "shadowed" true
          (has "shadowed"
             (warnings [ prod "S" (c 'a' <|> c 'a' @: c 'b') ]));
        (* the reverse order is the correct idiom and stays clean *)
        check Alcotest.bool "longest-first ok" false
          (has "shadowed"
             (warnings [ prod "S" (c 'a' @: c 'b' <|> c 'a') ])));
    test "nested token capture flagged" (fun () ->
        check Alcotest.bool "token" true
          (has "$()" (warnings [ prod "S" (tok (tok (c 'a'))) ])));
    test "nested drop flagged" (fun () ->
        check Alcotest.bool "void" true
          (has "void:" (warnings [ prod "S" (void (void (c 'a'))) ])));
    test "always-failing production flagged" (fun () ->
        check Alcotest.bool "fails" true
          (has "never succeed"
             (warnings [ prod "S" (fail "nope" @: c 'a') ])));
    test "unreachable production flagged" (fun () ->
        check Alcotest.bool "unreachable" true
          (has "unreachable from the start"
             (warnings
                [ prod ~public:true "S" (c 's'); prod "Dead" (c 'd') ])));
    test "shipped grammars are lint-clean" (fun () ->
        List.iter
          (fun g ->
            let ws = Lint.check g in
            if ws <> [] then
              Alcotest.failf "unexpected warnings: %s"
                (String.concat "; "
                   (List.map (fun (d : Diagnostic.t) -> d.message) ws)))
          [
            Grammars.Calc.grammar (); Grammars.Json.grammar ();
            Grammars.Minic.grammar (); Grammars.Minijava.grammar ();
          ]);
  ]

let () =
  Alcotest.run "peg"
    [
      ("charset", charset_tests);
      ("value", value_tests);
      ("expr", expr_tests);
      ("grammar", grammar_tests);
      ("analysis", analysis_tests);
      ("pretty", pretty_tests);
      ("lint", lint_tests);
    ]
