test/gen/test_generated.ml: Alcotest Config Engine Generated_calc Generated_java Generated_json Generated_minic Grammars List Parse_error Pipeline Rats Result Rng String Value
