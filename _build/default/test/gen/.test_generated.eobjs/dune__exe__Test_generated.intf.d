test/gen/test_generated.mli:
