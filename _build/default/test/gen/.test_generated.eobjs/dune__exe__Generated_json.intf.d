test/gen/generated_json.mli: Rats_peg
