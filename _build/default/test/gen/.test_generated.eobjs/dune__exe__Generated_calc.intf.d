test/gen/generated_calc.mli: Rats_peg
