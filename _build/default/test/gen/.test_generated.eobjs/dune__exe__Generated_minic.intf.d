test/gen/generated_minic.mli: Rats_peg
