test/gen/generated_java.mli: Rats_peg
