test/gen/generated_java.ml: Array Hashtbl List Map Printf Rats_peg Rats_support Set Span String Value
