(* The generated-code contract: a parser emitted by the code generator
   accepts exactly the same inputs as the interpretive engine and builds
   structurally equal trees. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let engine_for g = Engine.prepare_exn ~config:Config.optimized (Pipeline.optimize g)

let agree name eng generated inputs =
  List.iteri
    (fun i input ->
      match (Engine.parse eng input, generated input) with
      | Ok a, Ok b ->
          if not (Value.equal a b) then
            Alcotest.failf "%s #%d %S: trees differ\n%s\nvs\n%s" name i input
              (Value.to_string a) (Value.to_string b)
      | Error _, Error _ -> ()
      | Ok _, Error e ->
          Alcotest.failf "%s #%d %S: generated rejects (%s)" name i input e
      | Error e, Ok _ ->
          Alcotest.failf "%s #%d %S: generated accepts (engine: %s)" name i
            input (Parse_error.message e))
    inputs

let calc_tests =
  [
    test "hand-picked calculator inputs" (fun () ->
        let eng = engine_for (Grammars.Calc.grammar ()) in
        agree "calc" eng Generated_calc.parse
          [
            "1+2*3"; "2**3**2"; "(1+2)*3"; "8/4/2"; " 1 + 2 "; "1+"; "";
            "((7))"; "3.25*4"; "1..2"; ")(";
          ]);
    test "random calculator corpus" (fun () ->
        let eng = engine_for (Grammars.Calc.grammar ()) in
        let rng = Rng.create 1234 in
        let inputs =
          List.init 100 (fun _ -> Grammars.Corpus.arith rng ~size:15)
        in
        agree "calc-corpus" eng Generated_calc.parse inputs);
    test "parse_from picks other start productions" (fun () ->
        (* Spacing is inlined away by the optimizer; Sum survives. *)
        match Generated_calc.parse_from "Sum" "1+1" with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "sum: %s" e);
    test "unknown start reports an error" (fun () ->
        match Generated_calc.parse_from "Nope" "x" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "eval agrees through the generated parser" (fun () ->
        match Generated_calc.parse "2**3 + 1" with
        | Ok v ->
            check (Alcotest.float 1e-9) "value" 9.0 (Grammars.Calc.eval v)
        | Error e -> Alcotest.failf "parse: %s" e);
  ]

let json_tests =
  [
    test "hand-picked JSON inputs" (fun () ->
        let eng = engine_for (Grammars.Json.grammar ()) in
        agree "json" eng Generated_json.parse
          [
            "{}"; "[]"; "null"; "true"; "-12.5e3"; {|{"a": [1, {"b": null}]}|};
            {|"esc\"aped"|}; "[1,]"; "{"; "01"; {| [true, false] |};
          ]);
    test "random JSON corpus" (fun () ->
        let eng = engine_for (Grammars.Json.grammar ()) in
        let rng = Rng.create 77 in
        let inputs =
          List.init 60 (fun _ -> Grammars.Corpus.json rng ~size:20)
        in
        agree "json-corpus" eng Generated_json.parse inputs);
  ]

let minic_tests =
  [
    test "stateful generated parser handles typedefs" (fun () ->
        (* The generated code carries the state tables and the versioned
           memo guards; this is the execution test for both. *)
        let ok s = Result.is_ok (Generated_minic.parse s) in
        Alcotest.(check bool) "with typedef" true
          (ok "typedef int t; void f() { t x; }");
        Alcotest.(check bool) "without typedef" false
          (ok "void f() { t x; }");
        Alcotest.(check bool) "rollback" true
          (ok "typedef int t; void f(int a, int b) { a * b; }"));
    test "generated MiniC parser agrees with the engine on the corpus"
      (fun () ->
        let eng = engine_for (Grammars.Minic.grammar ()) in
        let inputs =
          List.init 10 (fun seed ->
              Grammars.Corpus.minic (Rng.create (100 + seed)) ~functions:2)
        in
        agree "minic-corpus" eng Generated_minic.parse inputs);
    test "generated MiniC parser rejects extension syntax" (fun () ->
        Alcotest.(check bool) "until" true
          (Result.is_error
             (Generated_minic.parse "void f(int a) { until (a) a++; }")));
  ]

let java_tests =
  [
    test "generated MiniJava parser agrees with the engine on the corpus"
      (fun () ->
        let eng = engine_for (Grammars.Minijava.grammar ()) in
        let inputs =
          List.init 10 (fun seed ->
              Grammars.Corpus.minijava (Rng.create (200 + seed)) ~classes:2)
        in
        agree "java-corpus" eng Generated_java.parse inputs);
    test "generated MiniJava parser error positions are deep" (fun () ->
        match Generated_java.parse "class A { int f() { return 1 + ; } }" with
        | Error msg ->
            Alcotest.(check bool) "offset in message" true
              (String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected error");
  ]

let () =
  Alcotest.run "generated"
    [
      ("calc", calc_tests); ("json", json_tests); ("minic", minic_tests);
      ("java", java_tests);
    ]
