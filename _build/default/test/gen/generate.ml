(* Emits the parsers that test_generated exercises. Run by a dune rule. *)

let emit path g =
  match
    Rats.Emit.grammar_module ~header:"test parser" (Rats.Pipeline.optimize g)
  with
  | Ok code ->
      Out_channel.with_open_bin path (fun oc -> output_string oc code);
      (* The fixed interface must typecheck against every generated
         module; dune compiles the pair. *)
      Out_channel.with_open_bin (path ^ "i") (fun oc ->
          output_string oc (Rats.Emit.interface ()))
  | Error (d :: _) ->
      prerr_endline (Rats.Diagnostic.to_string d);
      exit 1
  | Error [] -> assert false

let () =
  emit "generated_calc.ml" (Rats.Grammars.Calc.grammar ());
  emit "generated_json.ml" (Rats.Grammars.Json.grammar ());
  emit "generated_minic.ml" (Rats.Grammars.Minic.grammar ());
  emit "generated_java.ml" (Rats.Grammars.Minijava.grammar ())
