(* End-to-end flows through the public facade: the paths a downstream
   user actually takes, including the paper's headline scenario — extend
   a published language with your own module without touching it. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ok = function
  | Ok v -> v
  | Error (d :: _) -> Alcotest.failf "unexpected error: %s" (Diagnostic.to_string d)
  | Error [] -> Alcotest.fail "unexpected empty error"

let facade_tests =
  [
    test "string to parse in four calls" (fun () ->
        let modules =
          ok
            (modules_of_string
               "module Greeting; public Hello = \"hello\" ' '* \"world\" !.;")
        in
        let grammar = ok (compose ~root:"Greeting" modules) in
        let parser = ok (parser_of grammar) in
        check Alcotest.bool "accepts" true
          (Result.is_ok (parse parser "hello   world"));
        check Alcotest.bool "rejects" true
          (Result.is_error (parse parser "hello worlds")));
    test "modules_of_file round trip" (fun () ->
        let path = Filename.temp_file "rats" ".rats" in
        Out_channel.with_open_bin path (fun oc ->
            output_string oc "module FromDisk; public X = 'x';");
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let modules = ok (modules_of_file path) in
            check Alcotest.int "one module" 1 (List.length modules)));
    test "missing file is a diagnostic, not an exception" (fun () ->
        match modules_of_file "/no/such/file.rats" with
        | Error (_ :: _) -> ()
        | _ -> Alcotest.fail "expected diagnostics");
    test "generate produces compilable-looking source" (fun () ->
        let g = Grammars.Calc.grammar () in
        let code = ok (generate g) in
        check Alcotest.bool "has entry" true (contains code "let parse");
        check Alcotest.bool "warns disabled" true (contains code "[@@@warning"));
    test "composition errors carry spans into the source text" (fun () ->
        let text = "module M; public X = Ghost;" in
        let modules = ok (modules_of_string text) in
        match compose ~root:"M" modules with
        | Error (d :: _) ->
            check Alcotest.bool "mentions Ghost" true
              (contains d.Diagnostic.message "Ghost")
        | _ -> Alcotest.fail "expected failure");
  ]

(* The user story behind experiment E6 and the paper's introduction. *)
let extension_story_tests =
  [
    test "a user module extends the shipped calculator" (fun () ->
        (* The user writes ONE module; calc.* ships with the library. *)
        let user_module =
          {|
module user.Percent(S);
modify calc.Pow(S) as Base;
import calc.Number(S) as N;

// a postfix percent operator: 50% == 0.5
Factor += first <Percent> @Percent(@Num(N.Number) void:'%' S.Spacing);
|}
        in
        let lib =
          Resolve.library_exn
            (ok (modules_of_string (List.hd Grammars.Calc.texts)))
        in
        let lib =
          match Resolve.extend lib (ok (modules_of_string user_module)) with
          | Ok l -> l
          | Error _ -> Alcotest.fail "extend failed"
        in
        match
          Resolve.resolve lib ~root:"user.Percent" ~args:[ "calc.Space" ] ()
        with
        | Error (d :: _) -> Alcotest.failf "%s" (Diagnostic.to_string d)
        | Error [] -> assert false
        | Ok (g, _) ->
            let eng = Engine.prepare_exn g in
            check Alcotest.bool "new syntax" true
              (Engine.accepts eng ~start:"Sum" "50% * 2");
            check Alcotest.bool "old syntax" true
              (Engine.accepts eng ~start:"Sum" "2**3 + 1"));
    test "base modules remain untouched by the extension" (fun () ->
        (* Composing the original calc.Main after the extension exists
           still yields a grammar without Percent. *)
        let g = Grammars.Calc.grammar () in
        check Alcotest.bool "no percent" false (Grammar.mem g "Percent"));
    test "minic extension module line counts are small" (fun () ->
        (* The E6 claim: each extension is a handful of lines, the base
           is untouched. *)
        List.iter
          (fun text ->
            let lines =
              List.length
                (List.filter
                   (fun l ->
                     String.trim l <> ""
                     && not (String.length (String.trim l) > 1
                             && String.sub (String.trim l) 0 2 = "//"))
                   (String.split_on_char '\n' text))
            in
            check Alcotest.bool "under 20 lines" true (lines <= 20))
          [ List.nth Grammars.Minic.extension_texts 0;
            List.nth Grammars.Minic.extension_texts 1;
            List.nth Grammars.Minic.extension_texts 2 ]);
  ]

let error_report_tests =
  [
    test "parse errors render with caret excerpts" (fun () ->
        let g = Grammars.Minic.grammar () in
        let eng = Engine.prepare_exn g in
        let input = "int f() {\n  return 1 +;\n}\n" in
        match Engine.parse eng input with
        | Error e ->
            let src = Source.of_string ~name:"bad.c" input in
            let rendered = Parse_error.to_string ~source:src e in
            check Alcotest.bool "file:line:col" true (contains rendered "bad.c:2");
            check Alcotest.bool "caret" true (String.contains rendered '^')
        | Ok _ -> Alcotest.fail "expected parse error");
    test "error location is the farthest point, not the start" (fun () ->
        let g = Grammars.Json.grammar () in
        let eng = Engine.prepare_exn g in
        match Engine.parse eng {|{"a": [1, 2, }|} with
        | Error e ->
            check Alcotest.bool "deep" true (e.Parse_error.position >= 13)
        | Ok _ -> Alcotest.fail "expected parse error");
    test "composition diagnostics point at grammar source" (fun () ->
        let text =
          "module Base; public X = <A> 'a';\n\
           module Ext; modify Base;\n\
           X += before <Missing> <B> 'b';"
        in
        let lib = Resolve.library_exn (ok (modules_of_string text)) in
        match Resolve.resolve lib ~root:"Ext" () with
        | Error (d :: _) ->
            check Alcotest.bool "span" true (not (Span.is_dummy d.Diagnostic.span))
        | _ -> Alcotest.fail "expected failure");
  ]

(* Cross-checks between independently implemented pipelines. *)
let consistency_tests =
  [
    test "interpreter and generated-source stats agree on slot budget" (fun () ->
        let g = Pipeline.optimize (Grammars.Minic.grammar ()) in
        let eng = Engine.prepare_exn ~config:Config.optimized g in
        let code =
          match Emit.grammar_module ~config:Config.optimized g with
          | Ok c -> c
          | Error _ -> Alcotest.fail "codegen"
        in
        (* The generated chunk width must equal the engine's slot count. *)
        check Alcotest.bool "width" true
          (contains code
             (Printf.sprintf "Array.make %d 0" (Engine.memo_slots eng))));
    test "CLI builtins cover every shipped grammar" (fun () ->
        List.iter
          (fun texts ->
            ignore (Resolve.library_exn (List.concat_map (fun t -> ok (modules_of_string t)) texts)))
          [
            Grammars.Calc.texts; Grammars.Json.texts; Grammars.Minic.texts;
            Grammars.Minic.texts @ Grammars.Minic.extension_texts;
            Grammars.Path.texts;
          ]);
    test "version string is well-formed" (fun () ->
        check Alcotest.bool "dotted" true (String.contains version '.'));
  ]

let slow name f = Alcotest.test_case name `Slow f

let roundtrip_tests =
  [
    test "composed grammar survives print -> reparse -> compose" (fun () ->
        (* Serialize the flattened MiniC grammar as one module and check
           the re-composed parser accepts the same corpus. *)
        let g = Grammars.Minic.grammar () in
        let text = "module Flat;\n" ^ Pretty.grammar_to_string g in
        let modules = ok (modules_of_string text) in
        let g' = ok (compose ~root:"Flat" modules) in
        (match Resolve.library modules with Ok _ -> () | Error _ -> ());
        let g' =
          match Grammar.with_start g' (Grammar.start g) with
          | Ok g -> g
          | Error _ -> Alcotest.fail "start lost in round trip"
        in
        let e1 = Engine.prepare_exn g and e2 = Engine.prepare_exn g' in
        for seed = 1 to 5 do
          let src = Grammars.Corpus.minic (Rng.create seed) ~functions:2 in
          check Alcotest.bool "same acceptance" (Engine.accepts e1 src)
            (Engine.accepts e2 src)
        done);
    slow "soak: a quarter-megabyte program parses" (fun () ->
        let g = Pipeline.optimize (Grammars.Minic.grammar ()) in
        let eng = Engine.prepare_exn g in
        let src = Grammars.Corpus.minic (Rng.create 99) ~functions:800 in
        check Alcotest.bool "big" true (String.length src > 250_000);
        match Engine.parse eng src with
        | Ok v ->
            check Alcotest.bool "lots of nodes" true (Value.count_nodes v > 100_000)
        | Error e -> Alcotest.failf "soak: %s" (Parse_error.message e));
  ]

let parallel_tests =
  [
    test "one engine parses concurrently from four domains" (fun () ->
        (* Prepared engines are immutable; all mutable parse state lives
           in the per-run record, so the same engine can serve parallel
           domains (OCaml 5). *)
        let g = Pipeline.optimize (Grammars.Json.grammar ()) in
        let eng = Engine.prepare_exn g in
        let domains =
          List.init 4 (fun i ->
              Domain.spawn (fun () ->
                  let rng = Rng.create (1000 + i) in
                  let ok = ref true in
                  for _ = 1 to 50 do
                    let doc = Grammars.Corpus.json rng ~size:30 in
                    if not (Engine.accepts eng doc) then ok := false
                  done;
                  !ok))
        in
        List.iter
          (fun d -> check Alcotest.bool "domain ok" true (Domain.join d))
          domains);
  ]

let () =
  Alcotest.run "integration"
    [
      ("facade", facade_tests);
      ("extension-story", extension_story_tests);
      ("errors", error_report_tests);
      ("consistency", consistency_tests);
      ("roundtrip", roundtrip_tests);
      ("parallel", parallel_tests);
    ]
