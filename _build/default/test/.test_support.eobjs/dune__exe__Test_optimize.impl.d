test/test_optimize.ml: Alcotest Analysis Attr Builder Config Desugar Engine Expr Grammar Grammars List Parse_error Passes Pipeline Printf Production Rats Rng Stats Value
