test/test_meta.mli:
