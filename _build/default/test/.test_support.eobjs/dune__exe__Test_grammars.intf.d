test/test_grammars.mli:
