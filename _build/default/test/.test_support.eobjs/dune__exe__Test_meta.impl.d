test/test_meta.ml: Alcotest Attr Builder Charset Diagnostic Expr Grammar Grammars List Meta_parser Meta_print Module_ast Pretty Rats Source Span String
