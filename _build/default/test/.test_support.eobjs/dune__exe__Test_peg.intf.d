test/test_peg.mli:
