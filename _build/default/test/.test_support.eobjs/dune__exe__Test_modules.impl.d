test/test_modules.ml: Alcotest Diagnostic Engine Grammar List Meta_parser Module_ast Printf Production Rats Resolve Result String Value
