test/test_props.mli:
