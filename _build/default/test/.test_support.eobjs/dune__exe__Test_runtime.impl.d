test/test_runtime.ml: Alcotest Attr Builder Config Diagnostic Engine Grammar Grammars List Parse_error Printf Rats Result Span Stats String Value
