test/test_support.ml: Alcotest Diagnostic Format List Rats Rng Source Span String
