test/test_peg.ml: Alcotest Analysis Attr Builder Charset Diagnostic Expr Format Grammar Grammars Lint List Pretty Production Rats Span String Value
