test/test_codegen.ml: Alcotest Builder Config Diagnostic Emit Grammar Grammars List Pipeline Printf Production Rats String
