test/test_modules.mli:
