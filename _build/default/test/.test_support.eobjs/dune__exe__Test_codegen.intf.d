test/test_codegen.mli:
