/* A realistic MiniC program: a singly linked list with insertion sort,
   written the way a human writes C — mixed formatting, comments,
   typedefs used before and after, casts, switch dispatch. */

typedef unsigned long size_t;
typedef int value_t;

struct node {
    value_t value;
    struct node *next;
};

typedef struct node *list_t;

int g_allocs = 0;

list_t cons(value_t v, list_t tail) {
    list_t cell = (list_t) alloc(sizeof(struct node));
    g_allocs++;
    cell->value = v;
    cell->next = tail;
    return cell;
}

size_t length(list_t xs) {
    size_t n = 0;
    while (xs) { n++; xs = xs->next; }
    return n;
}

/* classic insertion into a sorted list */
list_t insert_sorted(list_t xs, value_t v) {
    if (!xs || v <= xs->value)
        return cons(v, xs);
    xs->next = insert_sorted(xs->next, v);
    return xs;
}

list_t sort(list_t xs) {
    list_t out = 0;
    for (; xs; xs = xs->next)
        out = insert_sorted(out, xs->value);
    return out;
}

int classify(value_t v) {
    switch (v % 3) {
        case 0: return 'z';
        case 1:
        case 2: return 'p';
        default: break;
    }
    /* unreachable, but the parser does not know that */
    retry:
    if (v < 0) { v = -v; goto retry; }
    return (int) v;
}

int main() {
    list_t xs = 0;
    int i;
    for (i = 0; i < 100; i++)
        xs = cons((value_t)(i * 37 % 100), xs);
    xs = sort(xs);
    do {
        g_allocs--;
    } while (g_allocs > 0);
    return length(xs) == 100 && classify(42) == 'z' ? 0 : 1;
}
