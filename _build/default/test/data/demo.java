/* A realistic MiniJava program: the same list, object style. */

class Node {
    int value;
    Node next;

    int size() {
        Node cur = this;
        int n = 0;
        while (cur != null) { n = n + 1; cur = cur.next; }
        return n;
    }
}

class SortedList extends Node {
    static int allocs = 0;
    Node head;

    Node cons(int v, Node tail) {
        Node cell = new Node();
        allocs++;
        cell.value = v;
        cell.next = tail;
        return cell;
    }

    Node insert(Node xs, int v) {
        if (xs == null || v <= xs.value) return cons(v, xs);
        xs.next = insert(xs.next, v);
        return xs;
    }

    void addAll(int[] values, int n) {
        for (int i = 0; i < n; i++)
            this.head = insert(this.head, values[i]);
    }

    boolean check() {
        Node cur = this.head;
        while (cur != null && cur.next != null) {
            if (cur.value > cur.next.value) return false;
            cur = cur.next;
        }
        return true;
    }
}
