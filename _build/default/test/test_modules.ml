(* Tests for the grammar-module system: validation, instantiation,
   modification operators and the binding semantics of composition.

   Modules are built through the textual syntax (the meta parser is the
   natural authoring surface and is itself covered by test_meta); what is
   under test here is the resolver. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let modules_of text =
  match Meta_parser.parse_modules_string text with
  | Ok ms -> ms
  | Error d -> Alcotest.failf "meta parse: %s" (Diagnostic.to_string d)

let compose_ok ?start ?args ~root text =
  let lib = Resolve.library_exn (modules_of text) in
  match Resolve.resolve lib ~root ?args ?start () with
  | Ok (g, stats) -> (g, stats)
  | Error (d :: _) -> Alcotest.failf "resolve: %s" (Diagnostic.to_string d)
  | Error [] -> assert false

let compose_err ?args ~root text =
  match Resolve.library (modules_of text) with
  | Error (d :: _) -> d.Diagnostic.message
  | Error [] -> assert false
  | Ok lib -> (
      match Resolve.resolve lib ~root ?args () with
      | Error (d :: _) -> d.Diagnostic.message
      | Error [] -> assert false
      | Ok _ -> Alcotest.fail "expected composition to fail")

let accepts g input =
  Engine.accepts (Engine.prepare_exn g) input

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- structural validation ---------------------------------------------------- *)

let validate_tests =
  [
    test "two modify deps rejected" (fun () ->
        let ms =
          modules_of
            "module A; X = 'x'; module B; Y = 'y'; module C; modify A; \
             modify B as BB; Z = 'z';"
        in
        let errs = List.concat_map Module_ast.validate ms in
        check Alcotest.bool "error" true
          (List.exists
             (fun (d : Diagnostic.t) ->
               contains d.message "more than one `modify'")
             errs));
    test "modification item without modify rejected" (fun () ->
        let ms = modules_of "module A; X += 'x';" in
        check Alcotest.bool "error" true
          (List.concat_map Module_ast.validate ms <> []));
    test "alias colliding with parameter rejected" (fun () ->
        let ms = modules_of "module A(P); import B as P; X = 'x';" in
        check Alcotest.bool "error" true
          (List.concat_map Module_ast.validate ms <> []));
    test "duplicate parameters rejected" (fun () ->
        let ms = modules_of "module A(P, P); X = 'x';" in
        check Alcotest.bool "error" true
          (List.concat_map Module_ast.validate ms <> []));
    test "unknown qualifier rejected" (fun () ->
        let ms = modules_of "module A; X = Nowhere.Y;" in
        check Alcotest.bool "error" true
          (List.concat_map Module_ast.validate ms <> []));
    test "duplicate define in one module rejected" (fun () ->
        let ms = modules_of "module A; X = 'x'; X = 'y';" in
        check Alcotest.bool "error" true
          (List.concat_map Module_ast.validate ms <> []));
    test "duplicate module names rejected by library" (fun () ->
        match Resolve.library (modules_of "module A; X = 'x'; module A; Y = 'y';") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
  ]

(* --- basic composition ----------------------------------------------------------- *)

let basic_tests =
  [
    test "single module composes" (fun () ->
        let g, _ = compose_ok ~root:"A" "module A; public X = 'x';" in
        check Alcotest.string "start" "X" (Grammar.start g);
        check Alcotest.bool "accepts" true (accepts g "x"));
    test "import with alias" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module Lib; public D = [0-9]; module M; import Lib as L; public \
             N = L.D L.D;"
        in
        check Alcotest.bool "accepts" true (accepts g "42");
        check Alcotest.bool "rejects" false (accepts g "4"));
    test "default alias is the simple name" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module util.Lib; public D = [0-9]; module M; import util.Lib; \
             public N = Lib.D;"
        in
        check Alcotest.bool "accepts" true (accepts g "7"));
    test "instantiate keyword works like import" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module Lib; public D = [0-9]; module M; instantiate Lib as L; \
             public N = L.D;"
        in
        check Alcotest.bool "accepts" true (accepts g "7"));
    test "parameterized instances are shared" (fun () ->
        (* Two imports of Id(Sp) must create one instance, not two. *)
        let _, stats =
          compose_ok ~root:"M"
            "module Sp; public void W = ' '*;\n\
             module Id(S); public I = [a-z]+ S.W;\n\
             module A(S); import Id(S) as I; public PA = I.I;\n\
             module B(S); import Id(S) as I; public PB = I.I;\n\
             module M; import A(Sp) as A; import B(Sp) as B; public P = A.PA \
             B.PB;"
        in
        let ids =
          List.filter
            (fun (s : Resolve.instance_stat) -> s.module_name = "Id")
            stats.instances
        in
        check Alcotest.int "one instance" 1 (List.length ids));
    test "distinct arguments give distinct instances" (fun () ->
        let _, stats =
          compose_ok ~root:"M"
            "module Sp1; public void W = ' '*;\n\
             module Sp2; public void W = '\\t'*;\n\
             module Id(S); public I = [a-z]+ S.W;\n\
             module M; import Id(Sp1) as I1; import Id(Sp2) as I2; public P \
             = I1.I I2.I;"
        in
        let ids =
          List.filter
            (fun (s : Resolve.instance_stat) -> s.module_name = "Id")
            stats.instances
        in
        check Alcotest.int "two instances" 2 (List.length ids));
    test "start picks first public of root" (fun () ->
        let g, _ =
          compose_ok ~root:"A" "module A; Helper = 'h'; public Main = Helper;"
        in
        check Alcotest.string "start" "Main" (Grammar.start g));
    test "start can be chosen" (fun () ->
        let g, _ =
          compose_ok ~root:"A" ~start:"Other"
            "module A; public Main = 'm'; public Other = 'o';"
        in
        check Alcotest.bool "accepts o" true (accepts g "o"));
    test "unreachable helper instances are pruned" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module Unused; public U = 'u'; module M; public X = 'x';"
        in
        check Alcotest.bool "no U" false (Grammar.mem g "U"));
    test "root args instantiate parameterized roots" (fun () ->
        let g, _ =
          compose_ok ~root:"P" ~args:[ "Sp" ]
            "module Sp; public void W = ' '*; module P(S); public X = 'x' S.W;"
        in
        check Alcotest.bool "accepts" true (accepts g "x  "));
  ]

(* --- modification operators ------------------------------------------------------- *)

let base_and ext =
  Printf.sprintf
    "module Base; public X = <A> 'a' / <B> 'b';\nmodule Ext; modify Base;\n%s"
    ext

let modification_tests =
  [
    test "append alternative" (fun () ->
        let g, _ = compose_ok ~root:"Ext" (base_and "X += <C> 'c';") in
        check Alcotest.bool "old" true (accepts g "a");
        check Alcotest.bool "new" true (accepts g "c"));
    test "prepend takes priority" (fun () ->
        (* 'first' puts the new alternative in front: for PEGs that is
           observable through prefix behaviour. *)
        let g, _ =
          compose_ok ~root:"Ext"
            "module Base; public X = <A> 'a'; module Ext; modify Base; X += \
             first <AA> 'a' 'a';"
        in
        check Alcotest.bool "aa wins" true (accepts g "aa"));
    test "before a label" (fun () ->
        let g, _ =
          compose_ok ~root:"Ext"
            "module Base; public X = <A> \"ab\"; module Ext; modify Base; X += \
             before <A> <AA> 'a';"
        in
        (* 'a' now shadows the longer "ab": PEG ordered choice. *)
        check Alcotest.bool "a" true (accepts g "a");
        check Alcotest.bool "ab dead" false (accepts g "ab"));
    test "after a label" (fun () ->
        let g, _ =
          compose_ok ~root:"Ext"
            "module Base; public X = <A> \"ab\" / <Z> 'z'; module Ext; modify \
             Base; X += after <A> <AA> 'a';"
        in
        check Alcotest.bool "ab first" true (accepts g "ab");
        check Alcotest.bool "a added" true (accepts g "a");
        check Alcotest.bool "z kept" true (accepts g "z"));
    test "remove an alternative" (fun () ->
        let g, _ = compose_ok ~root:"Ext" (base_and "X -= <A>;") in
        check Alcotest.bool "gone" false (accepts g "a");
        check Alcotest.bool "kept" true (accepts g "b"));
    test "override a body" (fun () ->
        let g, _ = compose_ok ~root:"Ext" (base_and "X := 'z';") in
        check Alcotest.bool "new" true (accepts g "z");
        check Alcotest.bool "old gone" false (accepts g "a"));
    test "override can change attributes" (fun () ->
        let g, _ =
          compose_ok ~root:"Ext"
            "module Base; public X = 'a' 'b'; module Ext; modify Base; \
             String X := 'a' 'b';"
        in
        let eng = Engine.prepare_exn g in
        match Engine.parse eng "ab" with
        | Ok (Value.Str "ab") -> ()
        | Ok v -> Alcotest.failf "got %s" (Value.to_string v)
        | Error _ -> Alcotest.fail "parse failed");
    test "adding a new production" (fun () ->
        let g, _ =
          compose_ok ~root:"Ext" (base_and "public Y = X X; X += <C> 'c';")
        in
        check Alcotest.bool "Y" true (Grammar.mem g "Y");
        let eng = Engine.prepare_exn g in
        check Alcotest.bool "cc via Y" true
          (Result.is_ok (Engine.parse eng ~start:"Y" "cc")));
    test "unknown label reported" (fun () ->
        let msg = compose_err ~root:"Ext" (base_and "X += before <Nope> 'c';") in
        check Alcotest.bool "mentions label" true (contains msg "Nope"));
    test "colliding label reported" (fun () ->
        let msg = compose_err ~root:"Ext" (base_and "X += <A> 'c';") in
        check Alcotest.bool "mentions label" true (contains msg "\"A\""));
    test "removing every alternative rejected" (fun () ->
        let msg = compose_err ~root:"Ext" (base_and "X -= <A>, <B>;") in
        check Alcotest.bool "mentions every" true (contains msg "every"));
    test "redefining without override rejected" (fun () ->
        let msg = compose_err ~root:"Ext" (base_and "X = 'z';") in
        check Alcotest.bool "suggests :=" true (contains msg ":="));
    test "modifying an unknown production rejected" (fun () ->
        let msg = compose_err ~root:"Ext" (base_and "Nope += <C> 'c';") in
        check Alcotest.bool "mentions name" true (contains msg "Nope"));
    test "stats count modifications" (fun () ->
        let _, stats =
          compose_ok ~root:"Ext"
            (base_and "X += <C> 'c' / <D> 'd'; X -= <A>; public Y = 'y';")
        in
        let ext =
          List.find
            (fun (s : Resolve.instance_stat) -> s.module_name = "Ext")
            stats.instances
        in
        check Alcotest.int "added" 2 ext.alternatives_added;
        check Alcotest.int "removed" 1 ext.alternatives_removed;
        check Alcotest.int "defined" 1 ext.defined;
        check Alcotest.int "inherited" 1 ext.inherited);
  ]

(* --- binding semantics -------------------------------------------------------------- *)

let binding_tests =
  [
    test "virtual rebinding: base recursion sees the extension" (fun () ->
        (* Base: parenthesized 'x'. Ext adds digits as atoms. If the
           recursion inside the inherited Paren alternative were bound
           statically to the old instance, "(5)" would not parse. *)
        let g, _ =
          compose_ok ~root:"Ext"
            "module Base; public E = <Paren> '(' E ')' / <X> 'x';\n\
             module Ext; modify Base; E += <Digit> [0-9];"
        in
        check Alcotest.bool "new at top" true (accepts g "5");
        check Alcotest.bool "new inside old" true (accepts g "(5)");
        check Alcotest.bool "old inside old" true (accepts g "(x)"));
    test "static binding: import refers to the unmodified module" (fun () ->
        (* M imports Base directly while Ext modifies it; M's view must be
           the original. *)
        let g, _ =
          compose_ok ~root:"M"
            "module Base; public E = 'x';\n\
             module Ext; modify Base; E := 'y';\n\
             module M; import Base as B; import Ext as X; public P = <Old> \
             B.E / <New> X.E;"
        in
        let eng = Engine.prepare_exn g in
        check Alcotest.bool "x (original)" true (Engine.accepts eng "x");
        check Alcotest.bool "y (modified)" true (Engine.accepts eng "y"));
    test "modify chain composes" (fun () ->
        let g, _ =
          compose_ok ~root:"E2"
            "module Base; public X = <A> 'a';\n\
             module E1; modify Base; X += <B> 'b';\n\
             module E2; modify E1; X += <C> 'c';"
        in
        List.iter
          (fun input ->
            check Alcotest.bool input true (accepts g input))
          [ "a"; "b"; "c" ]);
    test "parameterized modification (modify a parameter)" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module Base; public X = <A> 'a';\n\
             module AddB(T); modify T as Base; X += <B> 'b';\n\
             module M; import Base as B0; import AddB(Base) as B1; public P \
             = B1.X;"
        in
        check Alcotest.bool "extended" true (accepts g "b"));
    test "extension graph rewires dependents (the E6 shape)" (fun () ->
        (* Stmt is parameterized by the expression module; wiring the
           extended expressions through makes statements accept the new
           operator with no change to Stmt. *)
        let g, _ =
          compose_ok ~root:"M"
            "module Expr; public E = [0-9];\n\
             module AddPlus(X); modify X as Base; E += first <Plus> [0-9] '+' E;\n\
             module Stmt(E); public S = E.E ';';\n\
             module M; import Expr as E0; import AddPlus(Expr) as E1; import \
             Stmt(E1) as St; public P = St.S;"
        in
        check Alcotest.bool "base stmt" true (accepts g "1;");
        check Alcotest.bool "extended stmt" true (accepts g "1+2;"));
    test "cycle detection" (fun () ->
        let msg =
          compose_err ~root:"A"
            "module A; import B; public X = B.Y; module B; import A; public \
             Y = A.X;"
        in
        check Alcotest.bool "cyclic" true (contains msg "cyclic"));
    test "arity mismatch" (fun () ->
        let msg =
          compose_err ~root:"M" "module P(A); X = 'x'; module M; import P; Y = 'y';"
        in
        check Alcotest.bool "arity" true (contains msg "argument"));
    test "unknown module" (fun () ->
        let msg = compose_err ~root:"M" "module M; import Ghost; X = 'x';" in
        check Alcotest.bool "unknown" true (contains msg "Ghost"));
    test "module argument that itself needs arguments is rejected" (fun () ->
        let msg =
          compose_err ~root:"M"
            "module P(A); X = 'x'; module Q(R); Y = 'y'; module M; import \
             Q(P) as Q1; Z = 'z';"
        in
        check Alcotest.bool "needs args" true (contains msg "expects"));
    test "undefined unqualified reference reported" (fun () ->
        let msg = compose_err ~root:"M" "module M; public X = Ghost;" in
        check Alcotest.bool "undefined" true (contains msg "Ghost"));
    test "qualified reference to missing production reported" (fun () ->
        let msg =
          compose_err ~root:"M"
            "module Lib; public A = 'a'; module M; import Lib as L; public X \
             = L.Ghost;"
        in
        check Alcotest.bool "missing" true (contains msg "Ghost"));
    test "name prettification: unique locals stay bare" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module Lib; public Digit = [0-9]; module M; import Lib as L; \
             public Num = L.Digit;"
        in
        check Alcotest.bool "bare" true (Grammar.mem g "Digit"));
    test "name prettification: collisions get qualified" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module A; public X = 'a'; module B; public X = 'b'; module M; \
             import A; import B; public P = A.X B.X;"
        in
        check Alcotest.bool "qualified A" true (Grammar.mem g "A.X");
        check Alcotest.bool "qualified B" true (Grammar.mem g "B.X"));
    test "non-root public productions are demoted" (fun () ->
        let g, _ =
          compose_ok ~root:"M"
            "module Lib; public Digit = [0-9]; module M; import Lib as L; \
             public Num = L.Digit;"
        in
        let p = Grammar.find_exn g "Digit" in
        check Alcotest.bool "private" false (Production.is_public p));
    test "extend adds user modules to a library" (fun () ->
        let lib = Resolve.library_exn (modules_of "module Base; public X = <A> 'a';") in
        match Resolve.extend lib (modules_of "module Mine; modify Base; X += <B> 'b';") with
        | Error _ -> Alcotest.fail "extend failed"
        | Ok lib -> (
            match Resolve.resolve lib ~root:"Mine" () with
            | Ok (g, _) -> check Alcotest.bool "works" true (accepts g "b")
            | Error _ -> Alcotest.fail "resolve failed"));
    test "extend rejects clashes" (fun () ->
        let lib = Resolve.library_exn (modules_of "module Base; public X = 'a';") in
        match Resolve.extend lib (modules_of "module Base; public X = 'b';") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected clash");
  ]

let () =
  Alcotest.run "modules"
    [
      ("validate", validate_tests);
      ("basic", basic_tests);
      ("modification", modification_tests);
      ("binding", binding_tests);
    ]
