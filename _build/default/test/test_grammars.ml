(* Tests for the concrete grammar collection: calculator, JSON, MiniC
   and its extensions, the hand-written comparators and the corpus
   generators. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f
let value_eq = Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal

let engine g = Engine.prepare_exn ~config:Config.optimized g

(* --- calculator -------------------------------------------------------------- *)

let calc_eng = lazy (engine (Grammars.Calc.grammar ()))

let eval_ok input =
  match Engine.parse (Lazy.force calc_eng) input with
  | Ok v -> Grammars.Calc.eval v
  | Error e -> Alcotest.failf "%S: %s" input (Parse_error.message e)

let calc_tests =
  [
    test "grammar composes with expected productions" (fun () ->
        let g = Grammars.Calc.grammar () in
        List.iter
          (fun n -> check Alcotest.bool n true (Grammar.mem g n))
          [ "Calculation"; "Sum"; "Term"; "Factor"; "Atom"; "Number" ]);
    test "precedence: product binds tighter" (fun () ->
        check (Alcotest.float 1e-9) "1+2*3" 7.0 (eval_ok "1+2*3"));
    test "left associativity of minus and divide" (fun () ->
        check (Alcotest.float 1e-9) "8-3-2" 3.0 (eval_ok "8-3-2");
        check (Alcotest.float 1e-9) "8/4/2" 1.0 (eval_ok "8/4/2"));
    test "exponent is right associative and binds tightest" (fun () ->
        check (Alcotest.float 1e-9) "2**3**2" 512.0 (eval_ok "2**3**2");
        check (Alcotest.float 1e-9) "2*3**2" 18.0 (eval_ok "2*3**2"));
    test "parentheses override" (fun () ->
        check (Alcotest.float 1e-9) "(1+2)*3" 9.0 (eval_ok "(1+2)*3"));
    test "decimals" (fun () ->
        check (Alcotest.float 1e-9) "1.5*4" 6.0 (eval_ok "1.5*4"));
    test "spacing everywhere" (fun () ->
        check (Alcotest.float 1e-9) "spaced" 7.0 (eval_ok "  1 +  2\t* 3\n"));
    test "rejects garbage" (fun () ->
        List.iter
          (fun input ->
            check Alcotest.bool input false
              (Engine.accepts (Lazy.force calc_eng) input))
          [ "1+"; "**2"; "()"; "1..2"; "a+b"; "" ]);
    test "core grammar lacks the extension" (fun () ->
        let core = engine (Grammars.Calc.core_grammar ()) in
        check Alcotest.bool "base" true (Engine.accepts core ~start:"Sum" "1+2");
        check Alcotest.bool "no pow" false
          (Engine.accepts core ~start:"Sum" "2**3"));
    test "hand-written parser builds identical trees" (fun () ->
        List.iter
          (fun input ->
            match
              ( Engine.parse (Lazy.force calc_eng) input,
                Grammars.Calc.parse_hand input )
            with
            | Ok a, Ok b -> check value_eq input a b
            | Error _, Error _ -> ()
            | Ok _, Error e -> Alcotest.failf "%S: hand rejects (%s)" input e
            | Error _, Ok _ -> Alcotest.failf "%S: hand accepts" input)
          [
            "1+2*3"; "2**3**2"; "(1+2)*3"; "8/4/2"; " 7 "; "1+"; "(";
            "3.14*2"; "2**"; "10-4+1";
          ]);
    slow "hand-written parser agrees on 300 random expressions" (fun () ->
        let rng = Rng.create 99 in
        for _ = 1 to 300 do
          let input = Grammars.Corpus.arith rng ~size:Stdlib.(1 + Rng.int rng 25) in
          match
            ( Engine.parse (Lazy.force calc_eng) input,
              Grammars.Calc.parse_hand input )
          with
          | Ok a, Ok b ->
              if not (Value.equal a b) then
                Alcotest.failf "%S: trees differ" input
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "%S: acceptance differs" input
        done);
  ]

(* --- JSON ---------------------------------------------------------------------- *)

let json_eng = lazy (engine (Grammars.Json.grammar ()))

let json_tests =
  [
    test "scalars" (fun () ->
        List.iter
          (fun (input, name) ->
            match Engine.parse (Lazy.force json_eng) input with
            | Ok (Value.Node n) -> check Alcotest.string input name n.Value.name
            | Ok v -> Alcotest.failf "%S: %s" input (Value.to_string v)
            | Error e -> Alcotest.failf "%S: %s" input (Parse_error.message e))
          [
            ("null", "Null"); ("true", "True"); ("false", "False");
            ("42", "Num"); ("-1.5e-3", "Num"); ({|"hi"|}, "Str");
          ]);
    test "structures" (fun () ->
        List.iter
          (fun input ->
            check Alcotest.bool input true
              (Engine.accepts (Lazy.force json_eng) input))
          [
            "{}"; "[]"; {|{"a":1}|}; {|[1, [2, [3]]]|};
            {|{"a": {"b": {"c": null}}}|}; {| [ true , false ] |};
          ]);
    test "rejections" (fun () ->
        List.iter
          (fun input ->
            check Alcotest.bool input false
              (Engine.accepts (Lazy.force json_eng) input))
          [
            "{"; "[1,]"; {|{"a" 1}|}; "01"; "+1"; {|"unterminated|};
            "tru"; ""; "[1 2]";
          ]);
    test "string contents kept raw" (fun () ->
        match Engine.parse (Lazy.force json_eng) {|"a\nb"|} with
        | Ok (Value.Node { children = [ (_, Value.Str s) ]; _ }) ->
            check Alcotest.string "raw" {|a\nb|} s
        | _ -> Alcotest.fail "unexpected shape");
    test "hand-written parser builds identical trees" (fun () ->
        List.iter
          (fun input ->
            match
              (Engine.parse (Lazy.force json_eng) input, Grammars.Json.parse_hand input)
            with
            | Ok a, Ok b -> check value_eq input a b
            | Error _, Error _ -> ()
            | Ok _, Error e -> Alcotest.failf "%S: hand rejects (%s)" input e
            | Error _, Ok _ -> Alcotest.failf "%S: hand accepts" input)
          [
            "{}"; "[]"; "null"; {|{"k": [1, 2.5, "s", true]}|}; "[[[]]]";
            "[1,]"; "{"; {|{"a":1, "b":2}|}; "-0.5"; "1e9";
          ]);
    slow "hand-written parser agrees on 200 random documents" (fun () ->
        let rng = Rng.create 1001 in
        for _ = 1 to 200 do
          let input = Grammars.Corpus.json rng ~size:Stdlib.(1 + Rng.int rng 40) in
          match
            (Engine.parse (Lazy.force json_eng) input, Grammars.Json.parse_hand input)
          with
          | Ok a, Ok b ->
              if not (Value.equal a b) then Alcotest.failf "%S: trees differ" input
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "%S: acceptance differs" input
        done);
  ]

(* --- MiniC ---------------------------------------------------------------------- *)

let minic_eng = lazy (engine (Grammars.Minic.grammar ()))
let minic_ext_eng = lazy (engine (Grammars.Minic.extended_grammar ()))

let accepts_minic input = Engine.accepts (Lazy.force minic_eng) input
let accepts_ext input = Engine.accepts (Lazy.force minic_ext_eng) input

let minic_tests =
  [
    test "composition statistics look like the paper's table" (fun () ->
        let _, stats = Grammars.Minic.load () in
        check Alcotest.int "eight instances" 8
          (List.length stats.Resolve.instances);
        check Alcotest.bool "dozens of productions" true
          (stats.Resolve.productions > 50));
    test "smallest program" (fun () ->
        check Alcotest.bool "void main" true
          (accepts_minic "void main() { return; }"));
    test "declarations, expressions, control flow" (fun () ->
        check Alcotest.bool "program" true
          (accepts_minic
             "int fact(int n) {\n\
             \  int acc = 1;\n\
             \  while (n > 1) { acc = acc * n; n = n - 1; }\n\
             \  return acc;\n\
              }\n"));
    test "comments and spacing" (fun () ->
        check Alcotest.bool "comments" true
          (accepts_minic "// c1\nint x = 1; /* c2\n c2 */ int y = 2;"));
    test "typedef gates the declaration syntax" (fun () ->
        (* Without the typedef, `myint x;` cannot be a declaration. *)
        check Alcotest.bool "without" false (accepts_minic "void f() { myint x; }");
        check Alcotest.bool "with" true
          (accepts_minic "typedef int myint; void f() { myint x; }"));
    test "typedef'd pointers parse as declarations" (fun () ->
        check Alcotest.bool "ptr decl" true
          (accepts_minic "typedef int t; void f() { t * x; }");
        (* Without the typedef the same tokens are a multiplication. *)
        check Alcotest.bool "expr stmt" true
          (accepts_minic "void f(int t, int x) { t * x; }"));
    test "typedef'd name parses as a type node" (fun () ->
        match
          Engine.parse (Lazy.force minic_eng)
            "typedef int myint; myint g = 4;"
        with
        | Ok v ->
            let rec find_node name (v : Value.t) =
              match v with
              | Value.Node n ->
                  String.equal n.Value.name name
                  || List.exists (fun (_, c) -> find_node name c) n.Value.children
              | Value.List vs -> List.exists (find_node name) vs
              | _ -> false
            in
            check Alcotest.bool "TypedefName node" true (find_node "TypedefName" v)
        | Error e -> Alcotest.failf "parse: %s" (Parse_error.message e));
    test "structs" (fun () ->
        check Alcotest.bool "struct" true
          (accepts_minic
             "struct point { int x; int y; };\n\
              int dist(struct point p) { return p.x * p.x + p.y * p.y; }"));
    test "operator precedence cascade parses" (fun () ->
        check Alcotest.bool "expr" true
          (accepts_minic
             "int f(int a, int b) { return a << 2 | b & 3 ^ ~a % 5; }"));
    test "sizeof both forms" (fun () ->
        check Alcotest.bool "sizeof expr" true
          (accepts_minic "int f(int x) { return sizeof x + sizeof(int); }");
        check Alcotest.bool "sizeof typedef" true
          (accepts_minic "typedef int t; int f() { return sizeof(t*); }"));
    test "casts are typedef-gated like declarations" (fun () ->
        (* (t)x is a cast only when t names a type; otherwise it is a
           parenthesized expression — the second context-sensitivity the
           typedef table drives. *)
        let cast_node src =
          match Engine.parse (Lazy.force minic_eng) src with
          | Ok v ->
              let rec has (v : Value.t) =
                match v with
                | Value.Node n ->
                    String.equal n.Value.name "Cast"
                    || List.exists (fun (_, c) -> has c) n.Value.children
                | Value.List vs -> List.exists has vs
                | _ -> false
              in
              has v
          | Error e -> Alcotest.failf "%S: %s" src (Parse_error.message e)
        in
        check Alcotest.bool "builtin cast" true
          (cast_node "int f(int x) { return (int)x; }");
        check Alcotest.bool "typedef cast" true
          (cast_node "typedef int t; int f(int x) { return (t)x; }");
        check Alcotest.bool "no typedef, no cast" false
          (cast_node "int f(int t, int x) { return (t)+x; }"));
    test "switch statements" (fun () ->
        check Alcotest.bool "switch" true
          (accepts_minic
             "int f(int x) { switch (x) { case 1: return 1; case 2: x++; \
              break; default: return 0; } return x; }");
        check Alcotest.bool "empty switch" true
          (accepts_minic "void f(int x) { switch (x) { } }");
        check Alcotest.bool "stray case rejected" false
          (accepts_minic "void f() { case 1: ; }"));
    test "goto and labels" (fun () ->
        check Alcotest.bool "goto" true
          (accepts_minic "void f() { start: g_counter++; goto start; }");
        check Alcotest.bool "label needs statement" false
          (accepts_minic "void f() { orphan: }"));
    test "rejections" (fun () ->
        List.iter
          (fun input ->
            check Alcotest.bool input false (accepts_minic input))
          [
            "int f() { return }"; "int 3x;"; "void f() { if x { } }";
            "int f( { }"; "struct { int x; };";
          ]);
    test "keywords cannot be identifiers" (fun () ->
        check Alcotest.bool "while var" false (accepts_minic "int while = 1;");
        check Alcotest.bool "prefix ok" true (accepts_minic "int whilex = 1;"));
  ]

let extension_tests =
  [
    test "base grammar rejects extension syntax" (fun () ->
        (* `a ** 2` is NOT rejected by base C: it parses as multiplication
           by a dereference - the extension changes the tree, which the
           next test checks. *)
        check Alcotest.bool "until" false
          (accepts_minic "void f(int a) { until (a > 3) a++; }");
        check Alcotest.bool "query" false
          (accepts_minic "int f() { return query { select a from t }; }"));
    test "pow extension changes the tree, not just the language" (fun () ->
        let src = "int f(int a) { return a ** 2; }" in
        let has_node name v =
          let rec go (v : Value.t) =
            match v with
            | Value.Node n ->
                String.equal n.Value.name name
                || List.exists (fun (_, c) -> go c) n.Value.children
            | Value.List vs -> List.exists go vs
            | _ -> false
          in
          go v
        in
        (match Engine.parse (Lazy.force minic_eng) src with
        | Ok v -> check Alcotest.bool "base: no Power node" false (has_node "Power" v)
        | Error e -> Alcotest.failf "base: %s" (Parse_error.message e));
        match Engine.parse (Lazy.force minic_ext_eng) src with
        | Ok v -> check Alcotest.bool "ext: Power node" true (has_node "Power" v)
        | Error e -> Alcotest.failf "ext: %s" (Parse_error.message e));
    test "extended grammar accepts ** with right associativity" (fun () ->
        check Alcotest.bool "pow" true
          (accepts_ext "int f(int a) { return a ** 2 ** 3 * 4; }"));
    test "extended grammar accepts until statements" (fun () ->
        check Alcotest.bool "until" true
          (accepts_ext "void f(int a) { until (a > 3) a++; }"));
    test "extended grammar accepts query expressions" (fun () ->
        check Alcotest.bool "query" true
          (accepts_ext
             "int f(int lim) { return query { select a, b from t where a < \
              lim ** 2 }; }"));
    test "extensions compose with typedefs" (fun () ->
        check Alcotest.bool "both" true
          (accepts_ext
             "typedef int t; void f() { t x = 2 ** 3; until (x) x = x - 1; }"));
    test "extended grammar still parses plain programs" (fun () ->
        check Alcotest.bool "plain" true
          (accepts_ext "int main() { return 0; }"));
    slow "hand-written parser agrees with the grammar on the corpus" (fun () ->
        let eng = Lazy.force minic_eng in
        for seed = 1 to 25 do
          let src = Grammars.Corpus.minic (Rng.create seed) ~functions:3 in
          let a = Engine.accepts eng src in
          let b = Result.is_ok (Grammars.Minic.parse_hand src) in
          if a <> b then
            Alcotest.failf "seed %d: engine=%b hand=%b\n%s" seed a b src
        done);
    slow "extended corpus parses" (fun () ->
        let eng = Lazy.force minic_ext_eng in
        for seed = 30 to 40 do
          let src = Grammars.Corpus.minic_extended (Rng.create seed) ~functions:3 in
          if not (Engine.accepts eng src) then
            Alcotest.failf "seed %d rejected:\n%s" seed src
        done);
  ]

(* --- MiniJava ------------------------------------------------------------------------ *)

let java_eng = lazy (engine (Grammars.Minijava.grammar ()))
let accepts_java input = Engine.accepts (Lazy.force java_eng) input

let minijava_tests =
  [
    test "reuses the MiniC spacing and operator modules" (fun () ->
        let _, stats = Grammars.Minijava.load () in
        let names =
          List.map
            (fun (s : Resolve.instance_stat) -> s.module_name)
            stats.Resolve.instances
        in
        check Alcotest.bool "c.Space" true (List.mem "c.Space" names);
        check Alcotest.bool "c.Op" true (List.mem "c.Op" names));
    test "entirely stateless (unlike MiniC)" (fun () ->
        let g = Grammars.Minijava.grammar () in
        let a = Analysis.analyze g in
        check Alcotest.bool "no stateful prods" true
          (List.for_all
             (fun (p : Production.t) -> not (Analysis.stateful a p.name))
             (Grammar.productions g)));
    test "smallest class" (fun () ->
        check Alcotest.bool "empty class" true (accepts_java "class A { }"));
    test "fields, methods, statements" (fun () ->
        check Alcotest.bool "program" true
          (accepts_java
             "class Counter extends Base {\n\
             \  int n = 0;\n\
             \  static int total;\n\
             \  int bump(int by, double w) {\n\
             \    for (int i = 0; i < by; i++) this.n = this.n + 1;\n\
             \    if (w > 0.5) return n; else return 0;\n\
             \  }\n\
              }"));
    test "object expressions" (fun () ->
        check Alcotest.bool "new and calls" true
          (accepts_java
             "class A { int f() { return new Point(1).size(2) + new \
              int[10][3]; } }"));
    test "rejections" (fun () ->
        List.iter
          (fun input -> check Alcotest.bool input false (accepts_java input))
          [
            "class { }"; "class A { int; }"; "class A extends { }";
            "int x = 1;"; "class A { int f() { return } }";
          ]);
    test "java keywords are not identifiers, C-only keywords are" (fun () ->
        check Alcotest.bool "class kw" false
          (accepts_java "class A { int class; }");
        (* 'typedef' is not a Java keyword, so it is a fine field name. *)
        check Alcotest.bool "typedef ok" true
          (accepts_java "class A { int typedef; }"));
    slow "hand-written parser agrees with the grammar on the corpus" (fun () ->
        let eng = Lazy.force java_eng in
        for seed = 50 to 75 do
          let src = Grammars.Corpus.minijava (Rng.create seed) ~classes:3 in
          let a = Engine.accepts eng src in
          let b = Result.is_ok (Grammars.Minijava.parse_hand src) in
          if a <> b then
            Alcotest.failf "seed %d: engine=%b hand=%b\n%s" seed a b src
        done);
    test "hand-written parser on hand-picked programs" (fun () ->
        List.iter
          (fun src ->
            check Alcotest.bool src
              (Engine.accepts (Lazy.force java_eng) src)
              (Result.is_ok (Grammars.Minijava.parse_hand src)))
          [
            "class A { }"; "class A extends B { int x = 1; }";
            "class A { int f(int a, double b) { return a; } }";
            "class A { int f() { return new Point(1).size(2); } }";
            "class A { void f() { for (int i = 0; i < 3; i++) x++; } }";
            "class A { int f() { return (1 + 2) * 3; } }";
            "class A { int f() { x = y = 1; return x; } }";
            "class A { }" ^ " class B { }";
            "class A { int f() { return } }"; "class A { int; }"; "class";
          ]);
    slow "corpus parses under every configuration" (fun () ->
        let g = Grammars.Minijava.grammar () in
        let src = Grammars.Corpus.minijava (Rng.create 8) ~classes:5 in
        List.iter
          (fun cfg ->
            let eng = Engine.prepare_exn ~config:cfg g in
            check Alcotest.bool "accepts" true (Engine.accepts eng src))
          [ Config.naive; Config.packrat; Config.optimized ]);
    slow "optimizer preserves values on the corpus" (fun () ->
        let g = Grammars.Minijava.grammar () in
        let src = Grammars.Corpus.minijava (Rng.create 21) ~classes:4 in
        let e1 = Engine.prepare_exn ~config:Config.naive g in
        let e2 =
          Engine.prepare_exn ~config:Config.optimized (Pipeline.optimize g)
        in
        match (Engine.parse e1 src, Engine.parse e2 src) with
        | Ok a, Ok b -> check Alcotest.bool "equal" true (Value.equal a b)
        | _ -> Alcotest.fail "parse failed");
  ]

(* --- realistic, human-written sources --------------------------------------------------- *)

let read_data path = In_channel.with_open_bin path In_channel.input_all

let realistic_tests =
  [
    test "a human-written C program parses (and the hand parser agrees)"
      (fun () ->
        let src = read_data "data/demo.c" in
        (match Engine.parse (Lazy.force minic_eng) src with
        | Ok v ->
            check Alcotest.bool "substantial tree" true
              (Value.count_nodes v > 200)
        | Error e ->
            Alcotest.failf "%s"
              (Parse_error.to_string ~source:(Source.of_string ~name:"demo.c" src) e));
        check Alcotest.bool "hand agrees" true
          (Result.is_ok (Grammars.Minic.parse_hand src)));
    test "a human-written Java program parses (and the hand parser agrees)"
      (fun () ->
        let src = read_data "data/demo.java" in
        (match Engine.parse (Lazy.force java_eng) src with
        | Ok v ->
            check Alcotest.bool "substantial tree" true
              (Value.count_nodes v > 150)
        | Error e ->
            Alcotest.failf "%s"
              (Parse_error.to_string
                 ~source:(Source.of_string ~name:"demo.java" src)
                 e));
        check Alcotest.bool "hand agrees" true
          (Result.is_ok (Grammars.Minijava.parse_hand src)));
    test "the generated and interpreted parsers agree on demo.c values"
      (fun () ->
        let src = read_data "data/demo.c" in
        let e1 = Lazy.force minic_eng in
        let e2 =
          Engine.prepare_exn ~config:Config.naive (Grammars.Minic.grammar ())
        in
        match (Engine.parse e1 src, Engine.parse e2 src) with
        | Ok a, Ok b -> check Alcotest.bool "equal trees" true (Value.equal a b)
        | _ -> Alcotest.fail "parse failed");
  ]

(* --- the self-hosted meta grammar ----------------------------------------------------- *)

let meta_eng = lazy (engine (Grammars.Metagrammar.grammar ()))

let selfhost_tests =
  [
    test "composes and reuses c.Space" (fun () ->
        let g = Grammars.Metagrammar.grammar () in
        check Alcotest.bool "has File" true (Grammar.mem g "File");
        check Alcotest.bool "spacing shared" true (Grammar.mem g "Spacing"));
    test "accepts every shipped grammar text" (fun () ->
        let texts =
          Grammars.Calc.texts @ Grammars.Json.texts @ Grammars.Minic.texts
          @ Grammars.Minic.extension_texts @ Grammars.Minijava.texts
          @ Grammars.Path.texts @ Grammars.Metagrammar.texts
        in
        List.iteri
          (fun i text ->
            match Engine.parse (Lazy.force meta_eng) text with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "text %d rejected: %s" i (Parse_error.message e))
          texts);
    test "rejects malformed module sources" (fun () ->
        List.iter
          (fun bad ->
            check Alcotest.bool bad false
              (Engine.accepts (Lazy.force meta_eng) bad))
          [
            ""; "module"; "module M"; "module M; X 'a';";
            "notmodule M; X = 'a';"; "module M; X = 'a'";
            "module M; import = 'x';"; "module M; void X += 'x';";
            "module M; X = [a;"; "module M; modify; X = 'a';";
          ]);
    test "tree shape carries modules, deps and items" (fun () ->
        match
          Engine.parse (Lazy.force meta_eng)
            "module A(P); import B as C; X = 'x'; Y += <L> 'y';"
        with
        | Ok (Value.Node { name = "File"; children = [ (_, Value.List [ m ]) ]; _ })
          ->
            check (Alcotest.option Alcotest.string) "module node"
              (Some "ModuleDecl") (Value.name m)
        | Ok v -> Alcotest.failf "unexpected %s" (Value.to_string v)
        | Error e -> Alcotest.failf "parse: %s" (Parse_error.message e));
    slow "acceptance agrees with the hand-written parser on mangled texts"
      (fun () ->
        (* One known, documented divergence: the hand lexer rejects
           inverted class ranges ([z-a]) at lexing time, which a PEG
           cannot express; such samples are skipped. *)
        let eng = Lazy.force meta_eng in
        let base = List.hd Grammars.Calc.texts ^ List.hd Grammars.Json.texts in
        let rng = Rng.create 7 in
        let checked = ref 0 in
        while !checked < 400 do
          let pos = Rng.int rng (String.length base) in
          let c = Char.chr (Rng.int rng 127) in
          let mangled =
            String.mapi (fun i ch -> if i = pos then c else ch) base
          in
          let hand = Meta_parser.parse_modules_string mangled in
          let skip =
            match hand with
            | Error d ->
                let m = d.Diagnostic.message in
                let sub = "inverted range" in
                let n = String.length sub in
                let rec go i =
                  i + n <= String.length m
                  && (String.sub m i n = sub || go (i + 1))
                in
                go 0
            | Ok _ -> false
          in
          if not skip then (
            incr checked;
            let h = Result.is_ok hand in
            let p = Engine.accepts eng mangled in
            if h <> p then
              Alcotest.failf "disagreement (hand=%b peg=%b) at %d/%C" h p pos c)
        done);
  ]

(* --- corpus -------------------------------------------------------------------------- *)

let corpus_tests =
  [
    test "generators are deterministic" (fun () ->
        let a = Grammars.Corpus.minic (Rng.create 42) ~functions:3 in
        let b = Grammars.Corpus.minic (Rng.create 42) ~functions:3 in
        check Alcotest.string "same" a b;
        let c = Grammars.Corpus.minic (Rng.create 43) ~functions:3 in
        check Alcotest.bool "different seed differs" true (a <> c));
    test "sizes scale" (fun () ->
        let small = Grammars.Corpus.json (Rng.create 1) ~size:5 in
        let large = Grammars.Corpus.json (Rng.create 1) ~size:500 in
        check Alcotest.bool "larger" true
          (String.length large > String.length small));
    test "pathological input shape" (fun () ->
        check Alcotest.string "depth 2" "((1))"
          (Grammars.Corpus.pathological ~depth:2));
    test "all corpus kinds parse with their grammars" (fun () ->
        let rng = Rng.create 7 in
        check Alcotest.bool "arith" true
          (Engine.accepts (Lazy.force calc_eng) (Grammars.Corpus.arith rng ~size:20));
        check Alcotest.bool "json" true
          (Engine.accepts (Lazy.force json_eng) (Grammars.Corpus.json rng ~size:30));
        check Alcotest.bool "minic" true
          (accepts_minic (Grammars.Corpus.minic rng ~functions:2));
        check Alcotest.bool "minic-ext" true
          (accepts_ext (Grammars.Corpus.minic_extended rng ~functions:2)));
  ]

let () =
  Alcotest.run "grammars"
    [
      ("calc", calc_tests);
      ("json", json_tests);
      ("minic", minic_tests);
      ("minijava", minijava_tests);
      ("extensions", extension_tests);
      ("self-hosted", selfhost_tests);
      ("realistic", realistic_tests);
      ("corpus", corpus_tests);
    ]
