(* The calculator, extended the modular way.

   The library ships calc.* as grammar modules. This example adds a
   postfix percentage operator (50% == 0.5) in ONE user module, without
   touching the shipped sources — the paper's extensibility story.

   Run with:  dune exec examples/calculator.exe -- "25% * 8 + 2**3"  *)

let percent_module =
  {|
module demo.Percent(S);
modify calc.Pow(S) as Base;
import calc.Number(S) as N;

Factor += first <Percent> @Percent(@Num(N.Number) void:'%' S.Spacing);
|}

(* Extend the shipped evaluator for the new node. *)
let rec eval (v : Rats.Value.t) =
  match v with
  | Rats.Value.Node { name = "Percent"; children = [ (_, n) ]; _ } ->
      eval n /. 100.0
  | Rats.Value.Node { name = "Pow"; children = [ (_, b); (_, e) ]; _ } ->
      Float.pow (eval b) (eval e)
  | Rats.Value.Node { name = "Sum"; _ } | Rats.Value.Node { name = "Term"; _ }
    -> (
      (* Reuse the shipped evaluator for everything it knows, patching
         our node in by rebuilding the subtrees bottom-up would be
         overkill here: the shipped eval only fails on Percent, so we
         intercept the two recursive shapes. *)
      match v with
      | Rats.Value.Node { name; children = [ (_, first); (_, List tails) ]; _ }
        ->
          let plus, minus, plus_op =
            if name = "Sum" then (( +. ), ( -. ), "+") else (( *. ), ( /. ), "*")
          in
          List.fold_left
            (fun acc tail ->
              match tail with
              | Rats.Value.Node
                  { children = [ (_, Rats.Value.Str op); (_, operand) ]; _ } ->
                  if op = plus_op then plus acc (eval operand)
                  else minus acc (eval operand)
              | _ -> invalid_arg "eval")
            (eval first) tails
      | _ -> invalid_arg "eval")
  | Rats.Value.Node { name = "Num"; children = [ (_, Rats.Value.Str s) ]; _ }
    ->
      float_of_string s
  | v -> invalid_arg ("eval: " ^ Rats.Value.to_string v)

let () =
  let base =
    Rats.Resolve.library_exn
      (Result.get_ok (Rats.modules_of_string (List.hd Rats.Grammars.Calc.texts)))
  in
  let lib =
    match
      Rats.Resolve.extend base
        (Result.get_ok (Rats.modules_of_string percent_module))
    with
    | Ok lib -> lib
    | Error ds ->
        List.iter (fun d -> prerr_endline (Rats.Diagnostic.to_string d)) ds;
        exit 1
  in
  let grammar =
    match
      Rats.Resolve.resolve lib ~root:"demo.Percent" ~args:[ "calc.Space" ] ()
    with
    | Ok (g, _) -> g
    | Error ds ->
        List.iter (fun d -> prerr_endline (Rats.Diagnostic.to_string d)) ds;
        exit 1
  in
  let parser = Result.get_ok (Rats.parser_of grammar) in
  let inputs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> [ "1 + 2 * 3"; "2**3**2"; "25% * 8 + 2**3"; "(1+2)*3 - 50%" ]
  in
  List.iter
    (fun input ->
      match Rats.Engine.parse parser ~start:"Sum" input with
      | Ok tree -> Printf.printf "%-20s = %g\n" input (eval tree)
      | Error e ->
          Printf.printf "%-20s ! %s\n" input (Rats.Parse_error.message e))
    inputs
