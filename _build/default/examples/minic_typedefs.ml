(* MiniC: context-sensitive parsing with state tables, and language
   composition with the extension modules.

   The interesting line is `acc * scale;` — whether it parses as a
   declaration (pointer to typedef'd type) or an expression statement
   (multiplication) depends on whether `acc` names a typedef, which the
   grammar tracks through its state tables during the parse.

   Run with:  dune exec examples/minic_typedefs.exe  *)

open Rats

let program_expr =
  {|
int f(int acc, int scale) {
  acc * scale;          // multiplication: acc is a variable here
  return 0;
}
|}

let program_decl =
  {|
typedef unsigned int acc;
int f(int scale) {
  acc * scale;          // declaration: pointer-to-acc named scale
  return 0;
}
|}

let extended_program =
  {|
typedef int money;

money budget(int months, int rate) {
  money total = 0;
  until (total > 1000) {
    total = total + rate ** 2;
  }
  return total + query { select amount from ledger where amount < total };
}
|}

let rec find_nodes name (v : Value.t) =
  match v with
  | Value.Node n ->
      (if String.equal n.Value.name name then [ v ] else [])
      @ List.concat_map (fun (_, c) -> find_nodes name c) n.Value.children
  | Value.List vs -> List.concat_map (find_nodes name) vs
  | _ -> []

let () =
  let base = Result.get_ok (Rats.parser_of (Grammars.Minic.grammar ())) in
  let describe label src =
    match Engine.parse base src with
    | Ok tree ->
        let decls = List.length (find_nodes "Declaration" tree) in
        let exprs = List.length (find_nodes "ExprStatement" tree) in
        Printf.printf "%-28s declarations=%d expression-statements=%d\n" label
          decls exprs
    | Error e ->
        Printf.printf "%-28s error: %s\n" label (Parse_error.message e)
  in
  print_endline "the typedef problem (identical statement, different parse):";
  describe "without typedef:" program_expr;
  describe "with typedef:" program_decl;

  print_endline "\nthe composed extended language (**, until, query):";
  let ext = Result.get_ok (Rats.parser_of (Grammars.Minic.extended_grammar ())) in
  (match Engine.parse ext extended_program with
  | Ok tree ->
      Printf.printf "parsed: %d nodes, %d until-loops, %d queries, %d powers\n"
        (Value.count_nodes tree)
        (List.length (find_nodes "Until" tree))
        (List.length (find_nodes "Query" tree))
        (List.length (find_nodes "Power" tree))
  | Error e ->
      print_endline
        (Parse_error.to_string
           ~source:(Source.of_string ~name:"extended.c" extended_program)
           e));

  (* The base language must reject the extension constructs. *)
  match Engine.parse base extended_program with
  | Ok _ -> print_endline "BUG: base language accepted extended syntax"
  | Error e ->
      Printf.printf "base language rejects it, as it should: %s\n"
        (Parse_error.message e)
