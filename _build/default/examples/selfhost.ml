(* Self-hosting: parse a .rats grammar file with the PEG grammar of the
   module language — which is itself written in the module language
   (lib/grammars/texts.ml, rats.Syntax), the way Rats! bootstraps.

   Run with:  dune exec examples/selfhost.exe -- grammars/tutorial.rats
              dune exec examples/selfhost.exe          (parses the calc grammar)  *)

open Rats

let () =
  let text, name =
    match Sys.argv with
    | [| _; path |] ->
        (In_channel.with_open_bin path In_channel.input_all, path)
    | _ -> (List.hd Grammars.Calc.texts, "<built-in calc grammar>")
  in
  let g = Grammars.Metagrammar.grammar () in
  Printf.printf
    "the module language, described in itself: %d productions\n"
    (Grammar.length g);
  let parser = Result.get_ok (Rats.parser_of g) in
  match Engine.parse parser text with
  | Error e ->
      print_endline (Parse_error.to_string ~source:(Source.of_string ~name text) e)
  | Ok tree ->
      (* Count the module declarations and their items in the tree the
         self-hosted grammar produced. *)
      let rec count name (v : Value.t) =
        match v with
        | Value.Node n ->
            (if String.equal n.Value.name name then 1 else 0)
            + List.fold_left (fun acc (_, c) -> acc + count name c) 0 n.Value.children
        | Value.List vs -> List.fold_left (fun acc v -> acc + count name v) 0 vs
        | _ -> 0
      in
      Printf.printf "%s:\n  %d modules, %d dependencies, %d items, %d nodes\n"
        name (count "ModuleDecl" tree) (count "Dependency" tree)
        (count "Define" tree + count "Add" tree + count "Remove" tree)
        (Value.count_nodes tree);
      (* Cross-check against the hand-written front end. *)
      match Meta_parser.parse_modules_string text with
      | Ok ms ->
          Printf.printf "  hand-written front end agrees: %d modules\n"
            (List.length ms)
      | Error _ -> print_endline "  hand-written front end disagrees!?"
