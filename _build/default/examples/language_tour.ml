(* A tour of the shipped languages, with the numbers that make the
   paper's point: grammars are assembled from small shared modules, and
   a second language costs only the modules it does not share.

   Run with:  dune exec examples/language_tour.exe  *)

open Rats

let report name (g, (stats : Resolve.stats)) sample =
  Printf.printf "%-10s %2d instances, %3d productions\n" name
    (List.length stats.instances)
    (Grammar.length g);
  List.iter
    (fun (s : Resolve.instance_stat) ->
      Printf.printf "    - %s\n" s.instance)
    stats.instances;
  let parser = Result.get_ok (Rats.parser_of g) in
  match Engine.parse parser sample with
  | Ok v -> Printf.printf "  sample parses into %d nodes\n\n" (Value.count_nodes v)
  | Error e -> Printf.printf "  sample FAILED: %s\n\n" (Parse_error.message e)

let () =
  print_endline "-- MiniC ------------------------------------------------";
  report "minic" (Grammars.Minic.load ())
    "typedef int len_t; len_t total(int *xs, int n) {\n\
     \  len_t acc = 0;\n\
     \  for (n = n - 1; n >= 0; n = n - 1) acc += (len_t)xs[n];\n\
     \  return acc;\n\
     }";
  print_endline "-- MiniJava ----------------------------------------------";
  report "minijava" (Grammars.Minijava.load ())
    "class Accumulator extends Point {\n\
     \  int total;\n\
     \  int add(int v, double w) {\n\
     \    if (v > 0) this.total = this.total + v;\n\
     \    return this.total;\n\
     \  }\n\
     }";
  (* The reuse claim, checked mechanically: which module names appear in
     both instance graphs? *)
  let names (_, (stats : Resolve.stats)) =
    List.map (fun (s : Resolve.instance_stat) -> s.module_name) stats.instances
  in
  let c = names (Grammars.Minic.load ()) in
  let j = names (Grammars.Minijava.load ()) in
  let shared = List.filter (fun n -> List.mem n j) c in
  Printf.printf "modules shared between MiniC and MiniJava: %s\n"
    (String.concat ", " shared);
  Printf.printf
    "(the same spacing and operator-token modules serve both languages)\n"
