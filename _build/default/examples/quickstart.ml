(* Quickstart: write a grammar as text, compose it, parse something.

   Run with:  dune exec examples/quickstart.exe  *)

let grammar_text =
  {|
// A grammar for key=value configuration lines.
module demo.Config;

public generic File = Spacing Line* !.;
generic Line = key:Ident void:'=' Spacing value:$( [^\n]* ) void:'\n'? Spacing;
Ident = $( [a-zA-Z_] [a-zA-Z0-9_]* ) Blank*;
transient void Spacing = ([ \t\n] / Comment)*;
transient void Blank = [ \t];
transient void Comment = '#' [^\n]*;
|}

let input = {|# database settings
host = localhost
port = 5432

# tuning
threads = 8
|}

let () =
  let modules =
    match Rats.modules_of_string grammar_text with
    | Ok ms -> ms
    | Error ds ->
        List.iter (fun d -> prerr_endline (Rats.Diagnostic.to_string d)) ds;
        exit 1
  in
  let grammar =
    match Rats.compose ~root:"demo.Config" modules with
    | Ok g -> g
    | Error ds ->
        List.iter (fun d -> prerr_endline (Rats.Diagnostic.to_string d)) ds;
        exit 1
  in
  let parser =
    match Rats.parser_of grammar with
    | Ok p -> p
    | Error _ -> failwith "grammar failed well-formedness checks"
  in
  (match Rats.parse parser input with
  | Ok tree ->
      print_endline "parsed configuration:";
      print_endline (Rats.Value.to_string tree);
      (* Walk the generic tree: File > [Line...] *)
      (match tree with
      | Rats.Value.Node { children = [ (_, Rats.Value.List lines) ]; _ } ->
          List.iter
            (fun line ->
              match
                ( Rats.Value.child line "key",
                  Rats.Value.child line "value" )
              with
              | Some (Rats.Value.Str k), Some (Rats.Value.Str v) ->
                  Printf.printf "  %-10s -> %S\n" k (String.trim v)
              | _ -> ())
            lines
      | _ -> ());
  | Error e -> print_endline (Rats.Parse_error.to_string e));
  (* Show the error machinery on a broken input. *)
  let bad = "host llocalhost\n" in
  match Rats.parse parser bad with
  | Ok _ -> ()
  | Error e ->
      print_endline "\nerror reporting on a broken input:";
      print_endline
        (Rats.Parse_error.to_string
           ~source:(Rats.Source.of_string ~name:"demo.conf" bad)
           e)
