(* Parse JSON with the modular grammar and re-print it formatted —
   consuming generic syntax trees the way a downstream tool would.

   Run with:  dune exec examples/json_pretty.exe            (demo input)
              dune exec examples/json_pretty.exe -- file.json  *)

open Rats

let demo =
  {|{"name":"rats-ml","versions":[1,2,3],"stable":true,
    "meta":{"license":null,"keywords":["peg","packrat","modular"]}}|}

let rec pp ?(indent = 0) ppf (v : Value.t) =
  let pad = String.make indent ' ' in
  match v with
  | Value.Node { name = "Null"; _ } -> Fmt.string ppf "null"
  | Value.Node { name = "True"; _ } -> Fmt.string ppf "true"
  | Value.Node { name = "False"; _ } -> Fmt.string ppf "false"
  | Value.Node { name = "Num"; children = [ (_, Value.Str s) ]; _ } ->
      Fmt.string ppf s
  | Value.Node { name = "Str"; children = [ (_, Value.Str s) ]; _ } ->
      Fmt.pf ppf "\"%s\"" s
  | Value.Node { name = "Object"; children = []; _ } -> Fmt.string ppf "{}"
  | Value.Node
      { name = "Object"; children = [ (_, first); (_, Value.List rest) ]; _ }
    ->
      Fmt.pf ppf "{";
      List.iteri
        (fun i m ->
          if i > 0 then Fmt.pf ppf ",";
          Fmt.pf ppf "\n%s  " pad;
          member ~indent:(indent + 2) ppf m)
        (first :: rest);
      Fmt.pf ppf "\n%s}" pad
  | Value.Node { name = "Array"; children = []; _ } -> Fmt.string ppf "[]"
  | Value.Node
      { name = "Array"; children = [ (_, first); (_, Value.List rest) ]; _ } ->
      Fmt.pf ppf "[";
      List.iteri
        (fun i item ->
          if i > 0 then Fmt.pf ppf ",";
          Fmt.pf ppf "\n%s  " pad;
          pp ~indent:(indent + 2) ppf item)
        (first :: rest);
      Fmt.pf ppf "\n%s]" pad
  | v -> Fmt.failwith "unexpected node: %s" (Value.to_string v)

and member ~indent ppf m =
  match m with
  | Value.Node { name = "Member"; children = [ (_, Value.Str k); (_, v) ]; _ }
    ->
      Fmt.pf ppf "\"%s\": %a" k (pp ~indent) v
  | v -> Fmt.failwith "unexpected member: %s" (Value.to_string v)

let () =
  let text =
    match Sys.argv with
    | [| _; path |] -> In_channel.with_open_bin path In_channel.input_all
    | _ -> demo
  in
  let parser =
    Result.get_ok (Rats.parser_of (Grammars.Json.grammar ()))
  in
  match Engine.parse parser text with
  | Ok tree -> Fmt.pr "%a@." (pp ~indent:0) tree
  | Error e ->
      Fmt.epr "%s@."
        (Parse_error.to_string ~source:(Source.of_string ~name:"input" text) e);
      exit 1
