examples/quickstart.ml: List Printf Rats String
