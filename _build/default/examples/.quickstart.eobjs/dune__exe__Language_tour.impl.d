examples/language_tour.ml: Engine Grammar Grammars List Parse_error Printf Rats Resolve Result String Value
