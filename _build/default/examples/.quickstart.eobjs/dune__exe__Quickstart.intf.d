examples/quickstart.mli:
