examples/selfhost.mli:
