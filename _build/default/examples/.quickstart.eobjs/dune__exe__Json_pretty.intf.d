examples/json_pretty.mli:
