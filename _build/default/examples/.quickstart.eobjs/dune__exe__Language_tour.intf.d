examples/language_tour.mli:
