examples/selfhost.ml: Engine Grammar Grammars In_channel List Meta_parser Parse_error Printf Rats Result Source String Sys Value
