examples/calculator.mli:
