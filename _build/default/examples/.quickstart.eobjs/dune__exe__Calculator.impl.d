examples/calculator.ml: Array Float List Printf Rats Result Sys
