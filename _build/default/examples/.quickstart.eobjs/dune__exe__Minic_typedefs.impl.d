examples/minic_typedefs.ml: Engine Grammars List Parse_error Printf Rats Result Source String Value
