examples/minic_typedefs.mli:
