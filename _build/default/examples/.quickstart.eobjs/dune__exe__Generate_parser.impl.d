examples/generate_parser.ml: List Out_channel Printf Rats String Sys
