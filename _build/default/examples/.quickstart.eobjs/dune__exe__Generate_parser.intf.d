examples/generate_parser.mli:
