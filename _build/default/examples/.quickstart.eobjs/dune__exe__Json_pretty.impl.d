examples/json_pretty.ml: Engine Fmt Grammars In_channel List Parse_error Rats Result Source String Sys Value
