(* Tests for the module-language front end: lexer, parser and the
   print/parse round-trip. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let expr_eq = Alcotest.testable (fun ppf e -> Pretty.pp_expr ppf e) Expr.equal

let parse_expr_ok text =
  match Meta_parser.parse_expr text with
  | Ok e -> e
  | Error d -> Alcotest.failf "parse_expr %S: %s" text (Diagnostic.to_string d)

let parse_expr_err text =
  match Meta_parser.parse_expr text with
  | Ok _ -> Alcotest.failf "expected %S to fail" text
  | Error d -> d.Diagnostic.message

let parse_module_ok text =
  match Meta_parser.parse_module (Source.of_string text) with
  | Ok m -> m
  | Error d -> Alcotest.failf "parse_module: %s" (Diagnostic.to_string d)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- expressions ------------------------------------------------------------ *)

let expr_tests =
  let open Builder in
  let roundtrips name text expected =
    test name (fun () -> check expr_eq "parsed" expected (parse_expr_ok text))
  in
  [
    roundtrips "literal char" "'a'" (c 'a');
    roundtrips "literal string" "\"abc\"" (s "abc");
    roundtrips "escapes in strings" {|"a\n\t\\\"b"|} (s "a\n\t\\\"b");
    roundtrips "hex escape" {|'\x41'|} (c 'A');
    roundtrips "class with ranges" "[a-cz]" (cls (Charset.of_string "abcz"));
    roundtrips "negated class" "[^a]" (cls (Charset.complement (Charset.singleton 'a')));
    roundtrips "class with escaped bracket" {|[\]\-]|} (cls (Charset.of_string "]-"));
    roundtrips "any" "." any;
    roundtrips "empty parens" "()" eps;
    roundtrips "sequence" "'a' 'b'" (c 'a' @: c 'b');
    roundtrips "choice groups sequences" "'a' 'b' / 'c'"
      (c 'a' @: c 'b' <|> c 'c');
    roundtrips "parens override" "'a' ('b' / 'c')" (c 'a' @: (c 'b' <|> c 'c'));
    roundtrips "suffixes" "'a'* 'b'+ 'c'?" (star (c 'a') @: plus (c 'b') @: opt (c 'c'));
    roundtrips "double suffix" "'a'*?" (opt (star (c 'a')));
    roundtrips "predicates" "&'a' !'b'" (amp (c 'a') @: bang (c 'b'));
    roundtrips "bind" "x:'a'" ("x" |: c 'a');
    roundtrips "void drop" "void:'a'" (void (c 'a'));
    roundtrips "token capture" "$('a' 'b')" (tok (c 'a' @: c 'b'));
    roundtrips "node constructor" "@N('a')" (node "N" (c 'a'));
    roundtrips "splice" "%splice('a')" (Expr.splice (c 'a'));
    roundtrips "fail" {|%fail("nope")|} (fail "nope");
    roundtrips "record" "%record(T, 'a')" (record "T" (c 'a'));
    roundtrips "member and absent" "%member(T, 'a') / %absent(T, 'b')"
      (member "T" (c 'a') <|> absent "T" (c 'b'));
    roundtrips "labeled alternatives" "<A> 'a' / <B> 'b'"
      (label "A" (c 'a') <|> label "B" (c 'b'));
    roundtrips "qualified reference" "Mod.Prod" (e "Mod.Prod");
    roundtrips "adjacent dot is qualification" "A.B" (e "A.B");
    roundtrips "spaced dot is any" "A . B" (e "A" @: any @: e "B");
    test "trailing garbage rejected" (fun () ->
        ignore (parse_expr_err "'a' )"));
    test "unterminated string rejected" (fun () ->
        check Alcotest.bool "msg" true
          (contains (parse_expr_err "\"abc") "unterminated"));
    test "unterminated class rejected" (fun () ->
        check Alcotest.bool "msg" true
          (contains (parse_expr_err "[abc") "unterminated"));
    test "bad escape rejected" (fun () ->
        check Alcotest.bool "msg" true
          (contains (parse_expr_err {|"\q"|}) "escape"));
    test "stray percent rejected" (fun () ->
        ignore (parse_expr_err "% 'a'"));
    test "unknown percent operator rejected" (fun () ->
        check Alcotest.bool "msg" true
          (contains (parse_expr_err "%bogus('a')") "bogus"));
    test "deep nesting parses below the cap" (fun () ->
        let text = String.make 100 '(' ^ "'a'" ^ String.make 100 ')' in
        ignore (parse_expr_ok text));
    test "pathological nesting is a diagnostic, not a crash" (fun () ->
        (* 100k opens would blow the OCaml stack without the guard. *)
        let text = String.make 100_000 '(' ^ "'a'" in
        check Alcotest.bool "msg" true
          (contains (parse_expr_err text) "nesting"));
    test "pathological module nesting is a diagnostic too" (fun () ->
        let text =
          "module m.M; P = " ^ String.make 50_000 '(' ^ "'a'" in
        match Meta_parser.parse_modules_string text with
        | Error d ->
            check Alcotest.bool "msg" true
              (contains (Diagnostic.to_string d) "nesting")
        | Ok _ -> Alcotest.fail "expected a diagnostic");
  ]

(* --- modules ------------------------------------------------------------------ *)

let module_tests =
  [
    test "module header with params" (fun () ->
        let m = parse_module_ok "module a.b.C(X, Y); P = 'p';" in
        check Alcotest.string "name" "a.b.C" m.Module_ast.name;
        check (Alcotest.list Alcotest.string) "params" [ "X"; "Y" ]
          m.Module_ast.params);
    test "dependencies parsed in order" (fun () ->
        let m =
          parse_module_ok
            "module M; import A; modify B(X) as BB; instantiate C as CC; P = 'p';"
        in
        match m.Module_ast.deps with
        | [ d1; d2; d3 ] ->
            check Alcotest.bool "import" true (d1.Module_ast.dep_kind = Module_ast.Import);
            check Alcotest.bool "modify" true (d2.Module_ast.dep_kind = Module_ast.Modify);
            check Alcotest.string "args" "X" (List.hd d2.Module_ast.args);
            check Alcotest.string "alias" "BB" (Module_ast.dep_alias d2);
            check Alcotest.string "instantiate alias" "CC" (Module_ast.dep_alias d3)
        | ds -> Alcotest.failf "expected 3 deps, got %d" (List.length ds));
    test "attributes parsed in any order" (fun () ->
        let m =
          parse_module_ok "module M; transient public void Sp = ' '*;"
        in
        match m.Module_ast.items with
        | [ Module_ast.Define { attrs; _ } ] ->
            check Alcotest.bool "public" true (attrs.Attr.visibility = Attr.Public);
            check Alcotest.bool "transient" true (attrs.Attr.memo = Attr.Memo_never);
            check Alcotest.bool "void" true (attrs.Attr.kind = Attr.Void)
        | _ -> Alcotest.fail "expected one Define");
    test "String and generic kinds" (fun () ->
        let m = parse_module_ok "module M; String A = 'a'; generic B = 'b';" in
        match m.Module_ast.items with
        | [ Module_ast.Define { attrs = a; _ }; Module_ast.Define { attrs = b; _ } ] ->
            check Alcotest.bool "text" true (a.Attr.kind = Attr.Text);
            check Alcotest.bool "generic" true (b.Attr.kind = Attr.Generic)
        | _ -> Alcotest.fail "expected two Defines");
    test "override item with and without attrs" (fun () ->
        let m = parse_module_ok "module M; modify B; X := 'x'; void Y := 'y';" in
        match m.Module_ast.items with
        | [ Module_ast.Override { attrs = None; _ };
            Module_ast.Override { attrs = Some a; _ } ] ->
            check Alcotest.bool "void" true (a.Attr.kind = Attr.Void)
        | _ -> Alcotest.fail "expected two overrides");
    test "add item with placements" (fun () ->
        let m =
          parse_module_ok
            "module M; modify B; X += <N> 'n'; X += first <F> 'f'; X += \
             before <A> <P> 'p'; X += after <A> <Q> 'q';"
        in
        let placements =
          List.filter_map
            (function
              | Module_ast.Add { placement; _ } -> Some placement
              | _ -> None)
            m.Module_ast.items
        in
        check Alcotest.int "four" 4 (List.length placements);
        check Alcotest.bool "shapes" true
          (placements
          = [
              Module_ast.Append; Module_ast.Prepend; Module_ast.Before "A";
              Module_ast.After "A";
            ]));
    test "remove item with several labels" (fun () ->
        let m = parse_module_ok "module M; modify B; X -= <A>, <B>;" in
        match m.Module_ast.items with
        | [ Module_ast.Remove { labels; _ } ] ->
            check (Alcotest.list Alcotest.string) "labels" [ "A"; "B" ] labels
        | _ -> Alcotest.fail "expected Remove");
    test "attributes on += rejected" (fun () ->
        match
          Meta_parser.parse_module
            (Source.of_string "module M; modify B; void X += 'x';")
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "reserved word as production name rejected" (fun () ->
        match
          Meta_parser.parse_module (Source.of_string "module M; import = 'x';")
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "comments are skipped" (fun () ->
        let m =
          parse_module_ok
            "// leading\nmodule M; /* block\n comment */ P = 'p'; // trailing"
        in
        check Alcotest.int "items" 1 (List.length m.Module_ast.items));
    test "multiple modules per source" (fun () ->
        match Meta_parser.parse_modules_string "module A; X = 'x'; module B; Y = 'y';" with
        | Ok ms -> check Alcotest.int "two" 2 (List.length ms)
        | Error _ -> Alcotest.fail "parse failed");
    test "empty source rejected" (fun () ->
        match Meta_parser.parse_modules_string "  // nothing\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "missing semicolon diagnosed with location" (fun () ->
        match Meta_parser.parse_modules_string "module M; P = 'p'" with
        | Error d -> check Alcotest.bool "span" true (not (Span.is_dummy d.Diagnostic.span))
        | Ok _ -> Alcotest.fail "expected error");
  ]

(* --- round trips --------------------------------------------------------------- *)

let roundtrip_module_text text =
  (* print (parse text) = print (parse (print (parse text))) *)
  match Meta_parser.parse_modules_string text with
  | Error d -> Alcotest.failf "initial parse: %s" (Diagnostic.to_string d)
  | Ok ms ->
      let printed = String.concat "\n" (List.map Meta_print.module_to_string ms) in
      (match Meta_parser.parse_modules_string printed with
      | Error d ->
          Alcotest.failf "reparse failed: %s\n--- printed ---\n%s"
            (Diagnostic.to_string d) printed
      | Ok ms' ->
          let printed' =
            String.concat "\n" (List.map Meta_print.module_to_string ms')
          in
          check Alcotest.string "stable" printed printed')

let roundtrip_tests =
  [
    test "calc grammar round-trips" (fun () ->
        List.iter roundtrip_module_text Grammars.Calc.texts);
    test "json grammar round-trips" (fun () ->
        List.iter roundtrip_module_text Grammars.Json.texts);
    test "minic grammar round-trips" (fun () ->
        List.iter roundtrip_module_text Grammars.Minic.texts);
    test "minic extensions round-trip" (fun () ->
        List.iter roundtrip_module_text Grammars.Minic.extension_texts);
    test "pathological grammar round-trips" (fun () ->
        List.iter roundtrip_module_text Grammars.Path.texts);
    test "composed grammar pretty output reparses" (fun () ->
        (* Pretty.pp_grammar output is itself a single anonymous module
           body; wrap it and reparse. *)
        let g = Grammars.Calc.grammar () in
        let text = "module Flat;\n" ^ Pretty.grammar_to_string g in
        match Meta_parser.parse_modules_string text with
        | Ok [ m ] ->
            check Alcotest.int "same production count" (Grammar.length g)
              (List.length m.Module_ast.items)
        | Ok _ -> Alcotest.fail "expected one module"
        | Error d -> Alcotest.failf "reparse: %s" (Diagnostic.to_string d));
  ]

let () =
  Alcotest.run "meta"
    [
      ("expr", expr_tests);
      ("module", module_tests);
      ("roundtrip", roundtrip_tests);
    ]
