(* The PR 10 telemetry substrate: bucket geometry, quantile error
   bounds, merge semantics, the export formats, and the batch wiring.

   The unit layer pins the histogram's bucket scheme (identity below
   16, eighth-octave above, ≤12.5% width) and the registry contracts
   (idempotent registration, kind clashes, counter monotonicity,
   merge = sum/sum/max). The integration layer drives the batch runner
   over a seeded 200-document corpus under a seeded variable-step
   synthetic clock and cross-checks the histogram's p50/p99 against
   the batch summary's exact rank-based percentiles — the two views
   must agree within one log-bucket's relative error. Finally the
   zero-cost-off contract: a metrics-carrying run emits byte-identical
   JSONL to a bare run under the same synthetic clock, because
   recording derives everything from the finished record and never
   reads the clock. *)

open Rats
module M = Metrics

(* --- bucket geometry --------------------------------------------------------- *)

let geometry_tests =
  let identity () =
    for v = 0 to 15 do
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) v (M.bucket_of v);
      Alcotest.(check (pair int int))
        (Printf.sprintf "bounds %d" v)
        (v, v + 1) (M.bucket_bounds v)
    done
  in
  let total_and_monotone () =
    Alcotest.(check int) "negative clamps" 0 (M.bucket_of (-5));
    Alcotest.(check int) "min_int clamps" 0 (M.bucket_of min_int);
    let last = ref (-1) in
    (* sweep the whole range multiplicatively, with offsets *)
    let v = ref 1 in
    while !v > 0 && !v < max_int / 3 do
      List.iter
        (fun d ->
          let x = !v + d in
          if x >= 0 then begin
            let b = M.bucket_of x in
            Alcotest.(check bool) "in range" true (b >= 0 && b < M.nbuckets);
            let lo, hi = M.bucket_bounds b in
            Alcotest.(check bool)
              (Printf.sprintf "%d within its bucket [%d,%d)" x lo hi)
              true
              (lo <= x && (x < hi || hi <= lo));
            Alcotest.(check bool)
              (Printf.sprintf "width at %d" x)
              true
              (hi <= lo || hi - lo <= max 1 (lo / 8))
          end)
        [ 0; 1; -1 ];
      let b = M.bucket_of !v in
      Alcotest.(check bool) "monotone" true (b >= !last);
      last := b;
      v := !v * 3 / 2 + 1
    done;
    Alcotest.(check bool) "max_int lands" true (M.bucket_of max_int < M.nbuckets)
  in
  let tiling () =
    (* buckets tile: each bucket's lo maps back to it, hi opens the next *)
    let top = M.bucket_of (1 lsl 40) in
    for b = 0 to top do
      let lo, hi = M.bucket_bounds b in
      Alcotest.(check int) (Printf.sprintf "lo of %d" b) b (M.bucket_of lo);
      if hi > lo then begin
        Alcotest.(check int)
          (Printf.sprintf "hi-1 of %d" b)
          b
          (M.bucket_of (hi - 1));
        Alcotest.(check int) (Printf.sprintf "hi of %d" b) (b + 1) (M.bucket_of hi)
      end
    done
  in
  [
    Alcotest.test_case "values 0..15 get exact identity buckets" `Quick identity;
    Alcotest.test_case "bucket_of is total, monotone, width-bounded" `Quick
      total_and_monotone;
    Alcotest.test_case "buckets tile the range" `Quick tiling;
  ]

(* --- registry contracts ------------------------------------------------------ *)

let registry_tests =
  let counters () =
    let reg = M.create () in
    let c = M.counter reg "reqs_total" in
    M.inc c;
    M.add c 4;
    Alcotest.(check int) "value" 5 (M.counter_value c);
    Alcotest.check_raises "negative add"
      (Invalid_argument "Metrics.add: counters are monotone") (fun () ->
        M.add c (-1));
    (* re-registration is idempotent: same cell *)
    let c' = M.counter reg "reqs_total" in
    M.inc c';
    Alcotest.(check int) "shared cell" 6 (M.counter_value c)
  in
  let gauges_and_hists () =
    let reg = M.create () in
    let g = M.gauge reg "depth" in
    M.set g 7;
    M.set g 3;
    Alcotest.(check int) "gauge is last-write" 3 (M.gauge_value g);
    let h = M.histogram reg "lat" in
    M.observe h 10;
    M.observe h (-4);
    Alcotest.(check int) "count" 2 (M.hist_count h);
    Alcotest.(check int) "negative clamps to 0 in sum" 10 (M.hist_sum h)
  in
  let kind_clash () =
    let reg = M.create () in
    ignore (M.counter reg "x");
    Alcotest.(check bool) "clash raises" true
      (try
         ignore (M.gauge reg "x");
         false
       with Invalid_argument _ -> true)
  in
  let labels_distinguish () =
    let reg = M.create () in
    let a = M.counter reg ~labels:[ ("k", "a") ] "t" in
    let b = M.counter reg ~labels:[ ("k", "b") ] "t" in
    M.inc a;
    Alcotest.(check int) "series are distinct" 0 (M.counter_value b)
  in
  [
    Alcotest.test_case "counters: inc/add, monotone, idempotent" `Quick counters;
    Alcotest.test_case "gauges and histograms record" `Quick gauges_and_hists;
    Alcotest.test_case "one name, two kinds: rejected" `Quick kind_clash;
    Alcotest.test_case "labels distinguish series" `Quick labels_distinguish;
  ]

(* --- quantiles --------------------------------------------------------------- *)

let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 25214903917) + 11) land max_int;
    !s mod bound

let quantile_tests =
  let exact_identity () =
    let reg = M.create () in
    let h = M.histogram reg "h" in
    for v = 1 to 10 do
      M.observe h v
    done;
    Alcotest.(check (float 0.0)) "p50" 5.0 (M.quantile h 0.5);
    Alcotest.(check (float 0.0)) "p100" 10.0 (M.quantile h 1.0);
    Alcotest.(check (float 0.0)) "p10" 1.0 (M.quantile h 0.1);
    Alcotest.(check (float 0.0)) "empty" 0.0
      (M.quantile (M.histogram reg "h2") 0.5)
  in
  let bounded_error () =
    (* seeded samples across four decades; the estimate must sit within
       one bucket's relative width of the true rank-based sample *)
    let rand = lcg 0xfeed in
    let n = 500 in
    let samples = Array.init n (fun _ -> 16 + rand 1_000_000_000) in
    let reg = M.create () in
    let h = M.histogram reg "h" in
    Array.iter (M.observe h) samples;
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    List.iter
      (fun q ->
        let truth =
          float_of_int
            sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
        in
        let est = M.quantile h q in
        Alcotest.(check bool)
          (Printf.sprintf "q=%.2f est %.0f vs %.0f" q est truth)
          true
          (abs_float (est -. truth) <= (0.0625 *. truth) +. 1.0))
      [ 0.5; 0.9; 0.99; 1.0 ]
  in
  [
    Alcotest.test_case "identity range: quantiles are exact" `Quick
      exact_identity;
    Alcotest.test_case "log range: error within one bucket (±6.25%)" `Quick
      bounded_error;
  ]

(* --- merge ------------------------------------------------------------------- *)

let merge_tests =
  let semantics () =
    let a = M.create () and b = M.create () in
    let ca = M.counter a "c" and cb = M.counter b "c" in
    M.add ca 3;
    M.add cb 4;
    let ga = M.gauge a "g" and gb = M.gauge b "g" in
    M.set ga 9;
    M.set gb 5;
    let ha = M.histogram a "h" and hb = M.histogram b "h" in
    M.observe ha 100;
    M.observe hb 200;
    (* only in [b]: must appear in [a] after the merge *)
    M.add (M.counter b "only_b") 7;
    M.merge ~into:a b;
    Alcotest.(check int) "counters sum" 7 (M.counter_value ca);
    Alcotest.(check int) "gauges max" 9 (M.gauge_value ga);
    Alcotest.(check int) "hist counts sum" 2 (M.hist_count ha);
    Alcotest.(check int) "hist sums sum" 300 (M.hist_sum ha);
    Alcotest.(check int) "absent instruments land" 7
      (M.counter_value (M.counter a "only_b"));
    (* src is untouched *)
    Alcotest.(check int) "src counter" 4 (M.counter_value cb)
  in
  let clash () =
    let a = M.create () and b = M.create () in
    ignore (M.counter a "x");
    ignore (M.gauge b "x");
    Alcotest.(check bool) "kind clash raises" true
      (try
         M.merge ~into:a b;
         false
       with Invalid_argument _ -> true)
  in
  [
    Alcotest.test_case "merge: counters sum, gauges max, buckets sum" `Quick
      semantics;
    Alcotest.test_case "merge rejects kind clashes" `Quick clash;
  ]

(* --- export formats ---------------------------------------------------------- *)

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let export_tests =
  let fixture () =
    let reg = M.create () in
    let ok = M.counter reg ~labels:[ ("status", "ok") ] ~help:"Docs." "docs_total" in
    let fail = M.counter reg ~labels:[ ("status", "fail") ] "docs_total" in
    let h = M.histogram reg ~help:"Latency." "lat_us" in
    M.add ok 3;
    M.add fail 1;
    List.iter (M.observe h) [ 3; 3; 40; 2000 ];
    reg
  in
  let prometheus () =
    let out = M.to_prometheus (fixture ()) in
    Alcotest.(check bool) "help" true (contains out "# HELP docs_total Docs.");
    Alcotest.(check bool) "type" true (contains out "# TYPE docs_total counter");
    Alcotest.(check bool) "ok series" true
      (contains out "docs_total{status=\"ok\"} 3");
    Alcotest.(check bool) "fail series" true
      (contains out "docs_total{status=\"fail\"} 1");
    Alcotest.(check bool) "hist type" true
      (contains out "# TYPE lat_us histogram");
    Alcotest.(check bool) "+Inf closes" true
      (contains out "lat_us_bucket{le=\"+Inf\"} 4");
    Alcotest.(check bool) "sum" true (contains out "lat_us_sum 2046");
    Alcotest.(check bool) "count" true (contains out "lat_us_count 4");
    (* one header per family, cumulative bucket counts never decrease *)
    let ls = lines out in
    Alcotest.(check int) "one HELP for docs_total" 1
      (List.length (List.filter (fun l -> contains l "HELP docs_total") ls));
    let buckets =
      List.filter_map
        (fun l ->
          if contains l "lat_us_bucket" then
            match String.rindex_opt l ' ' with
            | Some i ->
                Some
                  (int_of_string
                     (String.sub l (i + 1) (String.length l - i - 1)))
            | None -> None
          else None)
        ls
    in
    let rec monotone = function
      | a :: (b :: _ as t) -> a <= b && monotone t
      | _ -> true
    in
    Alcotest.(check bool) "cumulative buckets monotone" true (monotone buckets)
  in
  let json () =
    let out = M.to_json (fixture ()) in
    Alcotest.(check bool) "array" true
      (String.length out > 2 && out.[0] = '[' && out.[String.length out - 1] = ']');
    Alcotest.(check bool) "counter object" true
      (contains out "\"name\":\"docs_total\"");
    Alcotest.(check bool) "labels" true (contains out "\"status\":\"ok\"");
    Alcotest.(check bool) "hist fields" true
      (contains out "\"p50\"" && contains out "\"p99\""
      && contains out "\"buckets\"");
    Alcotest.(check bool) "hist count" true (contains out "\"count\":4")
  in
  [
    Alcotest.test_case "Prometheus text exposition 0.0.4" `Quick prometheus;
    Alcotest.test_case "JSON export" `Quick json;
  ]

(* --- batch integration ------------------------------------------------------- *)

(* A seeded variable-step clock: each reading advances 100µs..2ms, so
   per-document latencies are spread across several histogram octaves
   and the whole run is a pure function of the seed. *)
let varied_clock seed =
  let rand = lcg seed in
  let t = ref 0 in
  fun () ->
    t := !t + 100_000 + rand 1_900_001;
    !t

let plus_a = Grammar.make_exn [ Production.v "S" (Expr.plus (Expr.chr 'a')) ]

(* 200 docs, deterministic: most parse, every 7th is malformed. *)
let corpus =
  List.init 200 (fun i ->
      ( Printf.sprintf "doc%03d" i,
        if i mod 7 = 3 then "aab" else String.make (1 + (i mod 50)) 'a' ))

let run_corpus ?metrics ?spans ?on_record seed =
  match
    Batch.run ?metrics ?spans ?on_record ~now_ns:(varied_clock seed) plus_a
      (Batch.Docs corpus)
  with
  | Ok rep -> rep
  | Error _ -> Alcotest.fail "corpus grammar failed to compile"

let batch_tests =
  (* the histogram and the summary are two views of the same run: the
     bucketed p50/p99 must agree with the exact rank-based percentiles
     within one log-bucket's relative error (plus 1µs of truncation) *)
  let crosscheck () =
    let reg = M.create () in
    let rep = run_corpus ~metrics:reg 42 in
    let s = rep.Batch.summary in
    Alcotest.(check int) "docs" 200 s.Batch.s_docs;
    let c l = M.counter_value (M.counter reg ~labels:l "rml_batch_docs_total") in
    Alcotest.(check int) "ok counter" s.Batch.s_ok (c [ ("status", "ok") ]);
    Alcotest.(check int) "fail counter" s.Batch.s_failed
      (c [ ("status", "fail") ]);
    Alcotest.(check int) "counters cover every record" s.Batch.s_docs
      (c [ ("status", "ok") ] + c [ ("status", "fail") ]);
    Alcotest.(check int) "syntax counter" s.Batch.s_syntax
      (M.counter_value
         (M.counter reg ~labels:[ ("class", "syntax") ] "rml_batch_fail_total"));
    let h = M.histogram reg "rml_batch_doc_latency_us" in
    Alcotest.(check int) "latency count" 200 (M.hist_count h);
    List.iter
      (fun (q, p_ms) ->
        let est = M.quantile h q in
        let truth = p_ms *. 1000. in
        Alcotest.(check bool)
          (Printf.sprintf "q=%.2f est %.0fus vs exact %.0fus" q est truth)
          true
          (abs_float (est -. truth) <= (0.0625 *. truth) +. 2.0))
      [ (0.5, s.Batch.s_p50_ms); (0.99, s.Batch.s_p99_ms) ]
  in
  (* zero-cost-off, observed end to end: recording never reads the
     clock, so a metrics-carrying run's JSONL is byte-identical *)
  let byte_identity () =
    let jsonl ?metrics seed =
      let buf = Buffer.create 4096 in
      let rep =
        run_corpus ?metrics
          ~on_record:(fun r ->
            Buffer.add_string buf (Batch.jsonl_of_record r);
            Buffer.add_char buf '\n')
          seed
      in
      Buffer.add_string buf (Batch.jsonl_of_summary rep.Batch.summary);
      Buffer.contents buf
    in
    Alcotest.(check string) "metrics on = metrics off, byte for byte"
      (jsonl 7) (jsonl ~metrics:(M.create ()) 7)
  in
  (* spans take their own clock readings, which shifts wall times under
     a synthetic clock — but nothing else may move *)
  let spans_trace () =
    let strip rep =
      List.map
        (fun r ->
          ( r.Batch.r_index, r.Batch.r_name, r.Batch.r_ok, r.Batch.r_bytes,
            r.Batch.r_position, r.Batch.r_retried ))
        rep.Batch.records
    in
    let base = run_corpus 11 in
    let sp = Profile.Spans.create () in
    let traced = run_corpus ~spans:sp 11 in
    Alcotest.(check bool) "verdicts unmoved" true (strip base = strip traced);
    (* one compile span + one attempt + one doc span per document *)
    Alcotest.(check bool) "span volume" true
      (Profile.Spans.count sp >= (2 * List.length corpus) + 1);
    let chrome = Profile.Spans.to_chrome sp in
    Alcotest.(check bool) "chrome trace" true
      (String.length chrome > 2
      && chrome.[0] = '['
      && contains chrome "\"name\":\"compile\""
      && contains chrome "\"name\":\"doc003\""
      && contains chrome "\"ph\":\"X\"")
  in
  [
    Alcotest.test_case "histogram p50/p99 agree with exact percentiles" `Quick
      crosscheck;
    Alcotest.test_case "metrics-on JSONL is byte-identical" `Quick byte_identity;
    Alcotest.test_case "spans shift only wall times; trace is coherent" `Quick
      spans_trace;
  ]

let () =
  Alcotest.run "metrics"
    [
      ("geometry", geometry_tests);
      ("registry", registry_tests);
      ("quantiles", quantile_tests);
      ("merge", merge_tests);
      ("export", export_tests);
      ("batch", batch_tests);
    ]
