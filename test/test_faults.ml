(* The PR 8 robustness harness: fault plans, guarded reads, and the
   fault-isolated batch runner.

   Three layers. Unit tests pin the fault-plan algebra (spec strings,
   seeded document selection) and the guarded read path's event order.
   Directed tests drive the batch runner — isolation, the degradation
   ladder, deadlines, exit codes — under a synthetic counter clock so
   every record, including wall times, is a pure function of the run.
   Finally a qcheck chaos property pushes random grammars × documents ×
   fault plans through both back ends and asserts the contract the
   module exists for: no fault ever escapes as an exception, the
   aggregate accounting is coherent, and the closure engine and the VM
   agree on every per-document verdict. *)

open Rats
module Gen = QCheck.Gen

(* Each reading advances one fake millisecond; deadlines and [r_ms]
   become deterministic. A fresh clock per run keeps runs comparable. *)
let counter_clock () =
  let t = ref 0 in
  fun () ->
    t := !t + 1_000_000;
    !t

let run_docs ?config ?limits ?deadline_ns ?faults ?on_record g docs =
  match
    Batch.run ?config ?limits ?deadline_ns ?faults ?on_record
      ~now_ns:(counter_clock ()) g (Batch.Docs docs)
  with
  | Ok rep -> rep
  | Error _ -> Alcotest.fail "grammar unexpectedly failed to compile"

let backends = [ ("closure", Config.optimized); ("vm", Config.vm) ]

let class_name = function
  | None -> "ok"
  | Some Batch.Syntax -> "syntax"
  | Some (Batch.Resource w) -> "resource:" ^ w
  | Some Batch.Io -> "io"
  | Some Batch.Internal -> "internal"

(* --- fixture grammars -------------------------------------------------------- *)

let plus_a = Grammar.make_exn [ Production.v "S" (Expr.plus (Expr.chr 'a')) ]

(* The ladder fixture: a memoized chain [Ci = C(i+1) 'b' / C(i+1)] is
   exponential without memoization and linear with it, so the fuel a
   parse needs is a direct function of how much of the memo budget
   sticks. The constants in the ladder tests below were measured: on a
   200-byte document the full rung needs ~3k fuel when the memo budget
   holds and ~24k once value-carrying chunks blow a 55 kB budget, while
   the recognizer rung's value-free chunks fit and finish under ~3k. *)
let chain_memo d =
  let attrs = Attr.v ~kind:Attr.Generic ~memo:Attr.Memo_always () in
  let name i = Printf.sprintf "C%d" i in
  let prods =
    List.init d (fun i ->
        let body =
          if i = d - 1 then Expr.chr 'a'
          else
            Expr.alt
              [
                Expr.seq [ Expr.ref_ (name (i + 1)); Expr.chr 'b' ];
                Expr.ref_ (name (i + 1));
              ]
        in
        Production.v ~attrs (name i) body)
  in
  let s =
    Production.v
      ~attrs:(Attr.v ~kind:Attr.Generic ())
      "S"
      (Expr.plus (Expr.ref_ "C0"))
  in
  Grammar.make_exn ~start:"S" (s :: prods)

(* The same chain with memoization forbidden: parsing a single ['a']
   costs 2^d - 1 invocations, enough to outrun any one fuel slice —
   the deadline tests need a parse that trips slices repeatedly. *)
let chain_unmemo d =
  let attrs = Attr.v ~memo:Attr.Memo_never () in
  let name i = Printf.sprintf "C%d" i in
  let prods =
    List.init d (fun i ->
        let body =
          if i = d - 1 then Expr.chr 'a'
          else
            Expr.alt
              [
                Expr.seq [ Expr.ref_ (name (i + 1)); Expr.chr 'b' ];
                Expr.ref_ (name (i + 1));
              ]
        in
        Production.v ~attrs (name i) body)
  in
  Grammar.make_exn ~start:"C0" prods

(* --- fault plans: spec strings and seeded selection -------------------------- *)

let gen_fault st =
  match Gen.int_bound 4 st with
  | 0 -> Faults.Truncate (Gen.int_bound 40 st)
  | 1 -> Faults.Io_error (Gen.int_bound 40 st)
  | 2 -> Faults.Fuel_cap (1 + Gen.int_bound 3000 st)
  | 3 -> Faults.Memo_cap (Gen.int_bound 8192 st)
  | _ -> Faults.Clock_skew (Gen.int_bound 10 st * 1_000_000)

let arb_plan =
  QCheck.make ~print:Faults.to_spec (fun st ->
      let rate = Gen.oneofl [ 0.0; 0.25; 0.5; 0.75; 1.0 ] st in
      let n = Gen.int_bound 4 st in
      Faults.v ~seed:(Gen.int_bound 99_999 st) ~rate
        (List.init n (fun _ -> gen_fault st)))

let spec_tests =
  let parses () =
    match Faults.of_spec "seed=42,rate=0.25,trunc@512,fuel@10000" with
    | Error m -> Alcotest.failf "spec rejected: %s" m
    | Ok p ->
        Alcotest.(check int) "seed" 42 p.Faults.seed;
        Alcotest.(check int) "rate_ppm" 250_000 p.Faults.rate_ppm;
        Alcotest.(check bool) "faults" true
          (p.Faults.faults = [ Faults.Truncate 512; Faults.Fuel_cap 10000 ])
  in
  let empty_is_none () =
    match Faults.of_spec "" with
    | Ok p -> Alcotest.(check bool) "is_none" true (Faults.is_none p)
    | Error m -> Alcotest.failf "empty spec rejected: %s" m
  in
  let rejects () =
    List.iter
      (fun bad ->
        match Faults.of_spec bad with
        | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
        | Error m ->
            Alcotest.(check bool)
              (Printf.sprintf "%S error is prefixed" bad)
              true
              (String.length m >= 15 && String.sub m 0 15 = "bad fault spec:"))
      [ "wat"; "trunc@"; "trunc@-1"; "rate=2"; "rate=x"; "seed=x"; "zoom@3" ]
  in
  let selection () =
    let fs = [ Faults.Truncate 3; Faults.Clock_skew 5 ] in
    let always = Faults.v ~seed:7 ~rate:1.0 fs in
    let never = Faults.v ~seed:7 ~rate:0.0 fs in
    let half = Faults.v ~seed:7 ~rate:0.5 fs in
    for i = 0 to 99 do
      Alcotest.(check bool) "rate 1 selects" true (Faults.active_for always i = fs);
      Alcotest.(check bool) "rate 0 skips" true (Faults.active_for never i = []);
      Alcotest.(check bool) "deterministic" true
        (Faults.active_for half i = Faults.active_for half i)
    done;
    let hits = ref 0 in
    for i = 0 to 1999 do
      if Faults.active_for half i <> [] then incr hits
    done;
    Alcotest.(check bool)
      (Printf.sprintf "rate 0.5 selects about half (%d/2000)" !hits)
      true
      (!hits > 600 && !hits < 1400)
  in
  let accessors () =
    let fs =
      [ Faults.Clock_skew 3; Faults.Truncate 9; Faults.Clock_skew 4;
        Faults.Fuel_cap 17 ]
    in
    Alcotest.(check bool) "truncate_at" true (Faults.truncate_at fs = Some 9);
    Alcotest.(check bool) "io_error_at" true (Faults.io_error_at fs = None);
    Alcotest.(check bool) "fuel_cap" true (Faults.fuel_cap fs = Some 17);
    Alcotest.(check int) "skew sums" 7 (Faults.clock_skew_ns fs)
  in
  [
    Alcotest.test_case "spec parses" `Quick parses;
    Alcotest.test_case "empty spec is the none plan" `Quick empty_is_none;
    Alcotest.test_case "bad specs are rejected with a message" `Quick rejects;
    Alcotest.test_case "seeded selection is pure and rate-shaped" `Quick selection;
    Alcotest.test_case "plan accessors" `Quick accessors;
  ]

let spec_props =
  [
    QCheck.Test.make ~name:"to_spec round-trips through of_spec" ~count:300
      arb_plan (fun p ->
        match Faults.of_spec (Faults.to_spec p) with
        | Ok p' -> p = p'
        | Error _ -> false);
  ]

(* --- guarded reads ----------------------------------------------------------- *)

let with_doc_file doc f =
  let path = Filename.temp_file "rats_faults" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc doc);
      In_channel.with_open_bin path f)

let read_unit_tests =
  let str = Alcotest.(check bool) in
  let order () =
    (* cap trips strictly above the cap *)
    str "under cap" true (Faults.apply_to_string ~cap:4 "aaaa" = Ok "aaaa");
    str "over cap" true
      (Faults.apply_to_string ~cap:3 "aaaa" = Error (Faults.Too_large 3));
    (* truncation delivers the prefix and dodges the cap *)
    str "trunc prefix" true
      (Faults.apply_to_string ~cap:3 ~faults:[ Faults.Truncate 3 ] "aaaa"
      = Ok "aaa");
    (* the io fault wins ties at a given byte count *)
    (match
       Faults.apply_to_string ~faults:[ Faults.Truncate 2; Faults.Io_error 2 ]
         "aaaa"
     with
    | Error (Faults.Io_fault _) -> ()
    | _ -> Alcotest.fail "io fault should win the tie at byte 2");
    (* a truncated prefix is still a document: over the cap, it is
       rejected like any other — on both readers (regression: the
       channel path once delivered it) *)
    str "trunc over cap" true
      (Faults.apply_to_string ~cap:1 ~faults:[ Faults.Truncate 2 ] "aaaa"
      = Error (Faults.Too_large 1));
    with_doc_file "aaaa" (fun ic ->
        str "trunc over cap (channel)" true
          (Faults.read_channel ~cap:1 ~faults:[ Faults.Truncate 2 ] ic
          = Error (Faults.Too_large 1)));
    (* an eof probe counts: a k-byte document still trips io@k *)
    match Faults.apply_to_string ~faults:[ Faults.Io_error 4 ] "aaaa" with
    | Error (Faults.Io_fault _) -> ()
    | _ -> Alcotest.fail "io@4 should trip on a 4-byte document"
  in
  [ Alcotest.test_case "event order: io, then cap, then trunc" `Quick order ]

let arb_read_case =
  let print (doc, cap, faults) =
    Printf.sprintf "doc=%S cap=%s faults=%s" doc
      (match cap with None -> "none" | Some c -> string_of_int c)
      (Faults.to_spec (Faults.v faults))
  in
  QCheck.make ~print (fun st ->
      let doc = Gen.string_size ~gen:Gen.char (Gen.int_bound 120) st in
      let cap = if Gen.bool st then Some (Gen.int_bound 130 st) else None in
      let faults =
        List.concat
          [
            (if Gen.bool st then [ Faults.Truncate (Gen.int_bound 130 st) ]
             else []);
            (if Gen.bool st then [ Faults.Io_error (Gen.int_bound 130 st) ]
             else []);
          ]
      in
      (doc, cap, faults))

let read_props =
  [
    QCheck.Test.make
      ~name:"read_channel agrees with apply_to_string on every triple"
      ~count:300 arb_read_case (fun (doc, cap, faults) ->
        let path = Filename.temp_file "rats_faults" ".bin" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc doc);
            let from_channel =
              In_channel.with_open_bin path (fun ic ->
                  Faults.read_channel ?cap ~faults ic)
            in
            from_channel = Faults.apply_to_string ?cap ~faults doc));
  ]

(* --- batch isolation: directed corpora --------------------------------------- *)

let batch_unit_tests =
  (* one well-formed, one malformed, one over the input cap: every
     failure is a record, the worst class picks the exit code *)
  let mixed_corpus () =
    List.iter
      (fun (tag, config) ->
        let rep =
          run_docs ~config
            ~limits:(Limits.v ~max_input_bytes:4 ())
            plus_a
            [ ("good", "aaa"); ("bad", "aab"); ("big", "aaaaaaaa") ]
        in
        let r i = List.nth rep.Batch.records i in
        Alcotest.(check int) (tag ^ ": records") 3 (List.length rep.Batch.records);
        Alcotest.(check bool) (tag ^ ": good ok") true (r 0).Batch.r_ok;
        Alcotest.(check int) (tag ^ ": good bytes") 3 (r 0).Batch.r_bytes;
        Alcotest.(check string) (tag ^ ": bad class") "syntax"
          (class_name (r 1).Batch.r_fail);
        Alcotest.(check int) (tag ^ ": bad position") 2 (r 1).Batch.r_position;
        Alcotest.(check string) (tag ^ ": big class") "resource:input"
          (class_name (r 2).Batch.r_fail);
        Alcotest.(check bool) (tag ^ ": big which") true
          ((r 2).Batch.r_which = Some "input");
        let s = rep.Batch.summary in
        Alcotest.(check int) (tag ^ ": ok") 1 s.Batch.s_ok;
        Alcotest.(check int) (tag ^ ": syntax") 1 s.Batch.s_syntax;
        Alcotest.(check int) (tag ^ ": resource") 1 s.Batch.s_resource;
        Alcotest.(check int) (tag ^ ": exit") 4 (Batch.exit_code rep))
      backends
  in
  (* an injected read failure is an io record, not a crash *)
  let io_fault () =
    let rep =
      run_docs
        ~faults:(Faults.v [ Faults.Io_error 1 ])
        plus_a
        [ ("x", "aaa"); ("y", "aa") ]
    in
    List.iter
      (fun r ->
        Alcotest.(check string) "io class" "io" (class_name r.Batch.r_fail);
        Alcotest.(check int) "unread bytes" (-1) r.Batch.r_bytes)
      rep.Batch.records;
    Alcotest.(check int) "exit" 3 (Batch.exit_code rep)
  in
  (* truncation changes the document the parser sees: a doc whose tail
     is malformed parses once the tail is cut off *)
  let truncation_heals () =
    let rep =
      run_docs
        ~faults:(Faults.v [ Faults.Truncate 3 ])
        plus_a
        [ ("d", "aaab") ]
    in
    let r = List.hd rep.Batch.records in
    Alcotest.(check bool) "ok after truncation" true r.Batch.r_ok;
    Alcotest.(check int) "delivered bytes" 3 r.Batch.r_bytes;
    Alcotest.(check int) "exit" 0 (Batch.exit_code rep)
  in
  (* the empty fault plan is byte-for-byte absent: same JSONL as no
     plan at all, whatever the plan's rate or unused fault list *)
  let faultless_baseline () =
    let jsonl ?faults () =
      let buf = Buffer.create 512 in
      let rep =
        run_docs ?faults
          ~limits:(Limits.v ~max_input_bytes:4 ())
          plus_a
          ~on_record:(fun r ->
            Buffer.add_string buf (Batch.jsonl_of_record r);
            Buffer.add_char buf '\n')
          [ ("good", "aaa"); ("bad", "aab"); ("big", "aaaaaaaa") ]
      in
      Buffer.add_string buf (Batch.jsonl_of_summary rep.Batch.summary);
      Buffer.contents buf
    in
    let base = jsonl () in
    Alcotest.(check string) "empty plan" base
      (jsonl ~faults:(Faults.v ~seed:123 ~rate:1.0 []) ());
    Alcotest.(check string) "rate-zero plan" base
      (jsonl
         ~faults:
           (Faults.v ~seed:7 ~rate:0.0
              [
                Faults.Truncate 1; Faults.Io_error 2; Faults.Fuel_cap 5;
                Faults.Memo_cap 100; Faults.Clock_skew 999;
              ])
         ())
  in
  [
    Alcotest.test_case "mixed corpus: records, classes, exit code" `Quick
      mixed_corpus;
    Alcotest.test_case "injected io failure is contained" `Quick io_fault;
    Alcotest.test_case "truncation changes the parsed document" `Quick
      truncation_heals;
    Alcotest.test_case "faultless plans are byte-identical to none" `Quick
      faultless_baseline;
  ]

(* --- the degradation ladder and deadlines ------------------------------------ *)

let ladder_tests =
  (* the rescue: a memo budget too small for value-carrying chunks but
     big enough for the recognizer rung's value-free ones — the full
     rung trips its fuel re-running degraded calls, the retry answers *)
  let recognizer_rescue () =
    let g = chain_memo 8 in
    let doc = String.make 200 'a' in
    let reps =
      List.map
        (fun (tag, config) ->
          let rep =
            run_docs ~config
              ~limits:(Limits.v ~max_memo_bytes:55_000 ~fuel:6_000 ())
              g
              [ ("d", doc) ]
          in
          let r = List.hd rep.Batch.records in
          Alcotest.(check bool) (tag ^ ": rescued") true r.Batch.r_ok;
          Alcotest.(check string) (tag ^ ": rung") "recognizer"
            (Batch.rung_name r.Batch.r_rung);
          Alcotest.(check bool) (tag ^ ": retried") true r.Batch.r_retried;
          Alcotest.(check bool) (tag ^ ": degradation seen") true
            (r.Batch.r_memo_degraded > 0);
          Alcotest.(check int) (tag ^ ": summary degraded") 1
            rep.Batch.summary.Batch.s_degraded;
          Alcotest.(check int) (tag ^ ": recognizer rung count") 1
            rep.Batch.summary.Batch.s_rung_recognizer;
          Alcotest.(check int) (tag ^ ": exit") 0 (Batch.exit_code rep);
          (r.Batch.r_memo_degraded, r.Batch.r_fuel_used))
        backends
    in
    (* governed runs evolve their memo tables identically on both back
       ends, so even the degradation and fuel accounting must agree *)
    match reps with
    | [ a; b ] -> Alcotest.(check bool) "backends in lockstep" true (a = b)
    | _ -> assert false
  in
  (* the bottom of the ladder: a budget even the recognizer rung cannot
     fit hard-fails, attributed to the rung that answered last *)
  let ladder_bottom () =
    let g = chain_memo 8 in
    let doc = String.make 200 'a' in
    List.iter
      (fun (tag, config) ->
        let rep =
          run_docs ~config
            ~limits:(Limits.v ~max_memo_bytes:16_384 ~fuel:20_000 ())
            g
            [ ("d", doc) ]
        in
        let r = List.hd rep.Batch.records in
        Alcotest.(check bool) (tag ^ ": failed") false r.Batch.r_ok;
        Alcotest.(check string) (tag ^ ": class") "resource:fuel"
          (class_name r.Batch.r_fail);
        Alcotest.(check string) (tag ^ ": rung") "recognizer"
          (Batch.rung_name r.Batch.r_rung);
        Alcotest.(check bool) (tag ^ ": retried") true r.Batch.r_retried;
        Alcotest.(check int) (tag ^ ": exit") 4 (Batch.exit_code rep))
      backends
  in
  (* a fuel-cap fault rides the same ladder: both rungs capped, both
     trip, the record says the recognizer answered *)
  let fuel_cap_fault () =
    let g = chain_memo 8 in
    let rep =
      run_docs
        ~faults:(Faults.v [ Faults.Fuel_cap 200 ])
        g
        [ ("d", String.make 30 'a') ]
    in
    let r = List.hd rep.Batch.records in
    Alcotest.(check string) "class" "resource:fuel" (class_name r.Batch.r_fail);
    Alcotest.(check string) "rung" "recognizer" (Batch.rung_name r.Batch.r_rung);
    Alcotest.(check bool) "retried" true r.Batch.r_retried;
    Alcotest.(check int) "exit" 4 (Batch.exit_code rep)
  in
  (* deadlines under the synthetic clock: an exponential parse trips
     fuel slices until the clock runs out — or finishes if it doesn't *)
  let deadline_expires () =
    List.iter
      (fun (tag, config) ->
        let rep =
          run_docs ~config
            ~limits:(Limits.v ~fuel:1_000_000 ())
            ~deadline_ns:1_000_000 (chain_unmemo 18)
            [ ("d", "a") ]
        in
        let r = List.hd rep.Batch.records in
        Alcotest.(check string) (tag ^ ": class") "resource:deadline"
          (class_name r.Batch.r_fail);
        Alcotest.(check bool) (tag ^ ": which") true
          (r.Batch.r_which = Some "deadline");
        Alcotest.(check int) (tag ^ ": exit") 4 (Batch.exit_code rep))
      backends
  in
  let deadline_roomy () =
    let rep =
      run_docs
        ~limits:(Limits.v ~fuel:1_000_000 ())
        ~deadline_ns:3_600_000_000_000 (chain_unmemo 18)
        [ ("d", "a") ]
    in
    let r = List.hd rep.Batch.records in
    Alcotest.(check bool) "slice doubling reaches the answer" true r.Batch.r_ok
  in
  (* clock skew: the deadline is armed unskewed, every later reading
     sees the step — the same parse that fits an hour now expires *)
  let clock_skew () =
    let rep =
      run_docs
        ~limits:(Limits.v ~fuel:1_000_000 ())
        ~deadline_ns:3_600_000_000_000
        ~faults:(Faults.v [ Faults.Clock_skew 7_200_000_000_000 ])
        (chain_unmemo 18)
        [ ("d", "a") ]
    in
    let r = List.hd rep.Batch.records in
    Alcotest.(check string) "class" "resource:deadline"
      (class_name r.Batch.r_fail);
    Alcotest.(check int) "exit" 4 (Batch.exit_code rep)
  in
  [
    Alcotest.test_case "recognizer rung rescues a memo-starved parse" `Quick
      recognizer_rescue;
    Alcotest.test_case "ladder bottom hard-fails on the last rung" `Quick
      ladder_bottom;
    Alcotest.test_case "fuel-cap fault descends the ladder" `Quick
      fuel_cap_fault;
    Alcotest.test_case "deadline expiry under the synthetic clock" `Quick
      deadline_expires;
    Alcotest.test_case "roomy deadline lets slice doubling finish" `Quick
      deadline_roomy;
    Alcotest.test_case "clock skew expires an armed deadline" `Quick clock_skew;
  ]

(* --- chaos: random grammars × documents × fault plans ------------------------ *)

(* Generators in the test_props mold: stratified (never recursive)
   grammars over a 4-letter alphabet, directed-walk inputs with one
   mutation, retried until the analysis accepts. *)

let alphabet = [ 'a'; 'b'; 'c'; 'd' ]
let gen_char = Gen.oneofl alphabet

let gen_charset st =
  let s = ref Charset.empty in
  List.iter (fun c -> if Gen.bool st then s := Charset.add c !s) alphabet;
  if Charset.is_empty !s then Charset.singleton 'a' else !s

let gen_short_string st =
  let n = 1 + Gen.int_bound 2 st in
  String.init n (fun _ -> gen_char st)

let rec gen_expr ~refs ~depth st : Expr.t =
  if depth <= 0 then gen_leaf ~refs st
  else
    match Gen.int_bound 11 st with
    | 0 | 1 ->
        Expr.seq
          (List.init (2 + Gen.int_bound 1 st) (fun _ ->
               gen_expr ~refs ~depth:(depth - 1) st))
    | 2 | 3 ->
        Expr.alt
          (List.init (2 + Gen.int_bound 1 st) (fun _ ->
               gen_expr ~refs ~depth:(depth - 1) st))
    | 4 -> Expr.star (gen_consuming ~refs ~depth:(depth - 1) st)
    | 5 -> Expr.plus (gen_consuming ~refs ~depth:(depth - 1) st)
    | 6 -> Expr.opt (gen_expr ~refs ~depth:(depth - 1) st)
    | 7 -> Expr.and_ (gen_expr ~refs ~depth:(depth - 1) st)
    | 8 -> Expr.not_ (gen_expr ~refs ~depth:(depth - 1) st)
    | 9 -> Expr.token (gen_expr ~refs ~depth:(depth - 1) st)
    | 10 -> Expr.node "N" (gen_expr ~refs ~depth:(depth - 1) st)
    | _ -> Expr.drop (gen_expr ~refs ~depth:(depth - 1) st)

and gen_leaf ~refs st =
  match Gen.int_bound 5 st with
  | 0 -> Expr.chr (gen_char st)
  | 1 -> Expr.str (gen_short_string st)
  | 2 -> Expr.cls (gen_charset st)
  | 3 -> Expr.empty
  | 4 -> (
      match refs with
      | [] -> Expr.chr (gen_char st)
      | _ -> Expr.ref_ (List.nth refs (Gen.int_bound (List.length refs - 1) st)))
  | _ -> Expr.any ()

and gen_consuming ~refs ~depth st =
  let leaf =
    match Gen.int_bound 2 st with
    | 0 -> Expr.chr (gen_char st)
    | 1 -> Expr.cls (gen_charset st)
    | _ -> Expr.str (gen_short_string st)
  in
  if depth > 0 && Gen.bool st then
    Expr.seq [ leaf; gen_expr ~refs ~depth:(depth - 1) st ]
  else leaf

let gen_grammar st : Grammar.t =
  let n = 2 + Gen.int_bound 2 st in
  let name i = Printf.sprintf "P%d" i in
  let prods =
    List.init n (fun i ->
        let refs = List.init (n - i - 1) (fun j -> name (i + j + 1)) in
        let kind =
          match Gen.int_bound 6 st with
          | 0 -> Attr.Generic
          | 1 -> Attr.Text
          | 2 -> Attr.Void
          | _ -> Attr.Plain
        in
        Production.v
          ~attrs:(Attr.v ~kind ~visibility:Attr.Private ())
          (name i)
          (gen_expr ~refs ~depth:3 st))
  in
  Grammar.make_exn ~start:"P0" prods

let gen_input g st =
  let buf = Buffer.create 32 in
  let rec walk budget (e : Expr.t) =
    if !budget <= 0 then ()
    else
      match e.Expr.it with
      | Expr.Empty | Expr.Fail _ -> ()
      | Expr.Any -> Buffer.add_char buf (gen_char st)
      | Expr.Chr c -> Buffer.add_char buf c
      | Expr.Str s -> Buffer.add_string buf s
      | Expr.Cls set -> (
          match Charset.choose set with
          | Some c -> Buffer.add_char buf c
          | None -> ())
      | Expr.Ref n -> (
          decr budget;
          match Grammar.find g n with
          | Some p -> walk budget p.Production.expr
          | None -> ())
      | Expr.Seq es -> List.iter (walk budget) es
      | Expr.Alt alts ->
          let i = Gen.int_bound (List.length alts - 1) st in
          walk budget (List.nth alts i).Expr.body
      | Expr.Star x ->
          for _ = 1 to Gen.int_bound 2 st do
            walk budget x
          done
      | Expr.Plus x ->
          for _ = 1 to 1 + Gen.int_bound 1 st do
            walk budget x
          done
      | Expr.Opt x -> if Gen.bool st then walk budget x
      | Expr.And _ | Expr.Not _ -> ()
      | Expr.Bind (_, x) | Expr.Token x | Expr.Node (_, x) | Expr.Drop x
      | Expr.Splice x | Expr.Record (_, x) | Expr.Member (_, _, x) ->
          walk budget x
  in
  (match Grammar.find g (Grammar.start g) with
  | Some p -> walk (ref 40) p.Production.expr
  | None -> ());
  let s = Buffer.contents buf in
  if Gen.bool st || String.length s = 0 then s
  else
    let i = Gen.int_bound (String.length s - 1) st in
    String.mapi (fun j c -> if j = i then gen_char st else c) s

type chaos_case = {
  cg : Grammar.t;
  cdocs : (string * string) list;
  climits : Limits.t option;
  cdeadline : int option;
  cplan : Faults.t;
}

let gen_chaos st =
  let rec retry k =
    let g = gen_grammar st in
    if Analysis.check (Analysis.analyze g) = [] then g
    else if k > 50 then Grammar.make_exn [ Production.v "P0" (Expr.chr 'a') ]
    else retry (k + 1)
  in
  let g = retry 0 in
  let docs =
    List.init 3 (fun i -> (Printf.sprintf "doc%d" i, gen_input g st))
  in
  let limits =
    match Gen.int_bound 4 st with
    | 0 -> None
    | 1 -> Some (Limits.v ~fuel:(1 + Gen.int_bound 2000 st) ())
    | 2 ->
        Some
          (Limits.v
             ~fuel:(1 + Gen.int_bound 5000 st)
             ~max_memo_bytes:(Gen.int_bound 4096 st)
             ())
    | 3 -> Some (Limits.v ~max_depth:(1 + Gen.int_bound 48 st) ())
    | _ -> Some (Limits.v ~max_input_bytes:(1 + Gen.int_bound 24 st) ())
  in
  let deadline = Gen.oneofl [ None; Some 2_000_000; Some 20_000_000 ] st in
  let plan =
    let rate = Gen.oneofl [ 0.0; 0.5; 1.0 ] st in
    Faults.v ~seed:(Gen.int_bound 10_000 st) ~rate
      (List.init (Gen.int_bound 3 st) (fun _ -> gen_fault st))
  in
  { cg = g; cdocs = docs; climits = limits; cdeadline = deadline; cplan = plan }

let print_chaos c =
  Printf.sprintf "grammar:\n%s\ndocs: %s\nlimits: %s\ndeadline: %s\nplan: %s"
    (Pretty.grammar_to_string c.cg)
    (String.concat ", "
       (List.map (fun (_, d) -> Printf.sprintf "%S" d) c.cdocs))
    (match c.climits with None -> "default" | Some l -> Limits.describe l)
    (match c.cdeadline with None -> "none" | Some d -> string_of_int d)
    (Faults.to_spec c.cplan)

let arb_chaos = QCheck.make ~print:print_chaos gen_chaos

(* The per-document verdict both back ends must agree on. Wall times
   and raw counter values are excluded: ungoverned runs are allowed to
   count invocations differently (the VM elides govern brackets for
   inlined productions when no budget is finite). *)
let verdict r =
  ( r.Batch.r_index,
    r.Batch.r_ok,
    class_name r.Batch.r_fail,
    r.Batch.r_which,
    r.Batch.r_position,
    Batch.rung_name r.Batch.r_rung,
    r.Batch.r_retried,
    r.Batch.r_bytes )

let show_verdicts vs =
  String.concat "; "
    (List.map
       (fun (i, ok, cls, which, pos, rung, retried, bytes) ->
         Printf.sprintf "#%d %s %s which=%s pos=%d rung=%s retried=%b bytes=%d"
           i
           (if ok then "ok" else "fail")
           cls
           (Option.value which ~default:"-")
           pos rung retried bytes)
       vs)

let coherent (rep : Batch.report) =
  let s = rep.Batch.summary in
  let rs = rep.Batch.records in
  s.Batch.s_docs = List.length rs
  && s.Batch.s_ok + s.Batch.s_failed = s.Batch.s_docs
  && s.Batch.s_ok = List.length (List.filter (fun r -> r.Batch.r_ok) rs)
  && s.Batch.s_syntax + s.Batch.s_resource + s.Batch.s_io + s.Batch.s_internal
     = s.Batch.s_failed
  && s.Batch.s_rung_full + s.Batch.s_rung_recognizer = s.Batch.s_docs
  && s.Batch.s_degraded
     = List.length (List.filter (fun r -> r.Batch.r_retried) rs)
  && s.Batch.s_memo_degraded
     = List.fold_left (fun a r -> a + r.Batch.r_memo_degraded) 0 rs
  && s.Batch.s_internal = 0
  && List.for_all (fun r -> r.Batch.r_ok = (r.Batch.r_fail = None)) rs
  && List.mem (Batch.exit_code rep) [ 0; 3; 4 ]
  && (Batch.exit_code rep = 0) = (s.Batch.s_failed = 0)

let chaos_props =
  [
    QCheck.Test.make
      ~name:
        "chaos: no fault escapes, accounting coherent, backends agree \
         (500 cases per backend)"
      ~count:500 arb_chaos (fun c ->
        let run config =
          try
            match
              Batch.run ~config ?limits:c.climits ?deadline_ns:c.cdeadline
                ~faults:c.cplan
                ~now_ns:(counter_clock ())
                c.cg (Batch.Docs c.cdocs)
            with
            | Ok rep -> Ok rep
            | Error _ -> Error `Compile
          with e -> Error (`Raised (Printexc.to_string e))
        in
        match (run Config.optimized, run Config.vm) with
        | Error `Compile, Error `Compile -> true
        | Error (`Raised m), _ ->
            QCheck.Test.fail_reportf "exception escaped the closure run: %s" m
        | _, Error (`Raised m) ->
            QCheck.Test.fail_reportf "exception escaped the vm run: %s" m
        | Ok a, Ok b ->
            if not (coherent a) then
              QCheck.Test.fail_reportf "closure accounting incoherent:\n%s"
                (show_verdicts (List.map verdict a.Batch.records))
            else if not (coherent b) then
              QCheck.Test.fail_reportf "vm accounting incoherent:\n%s"
                (show_verdicts (List.map verdict b.Batch.records))
            else
              let va = List.map verdict a.Batch.records in
              let vb = List.map verdict b.Batch.records in
              if va <> vb then
                QCheck.Test.fail_reportf
                  "backends disagree:\n closure: %s\n vm:      %s"
                  (show_verdicts va) (show_verdicts vb)
              else true
        | Ok _, Error `Compile ->
            QCheck.Test.fail_reportf "vm rejected a grammar the closure took"
        | Error `Compile, Ok _ ->
            QCheck.Test.fail_reportf "closure rejected a grammar the vm took");
  ]

let () =
  let to_alco = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ("fault-plans", spec_tests @ to_alco spec_props);
      ("guarded-reads", read_unit_tests @ to_alco read_props);
      ("batch-isolation", batch_unit_tests);
      ("batch-ladder", ladder_tests);
      ("chaos", to_alco chaos_props);
    ]
