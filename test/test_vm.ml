(* Unit tests for the bytecode back end: charset bitmaps, backtrack
   unwinding through state-table transactions, stats counters, and
   value equality against the closure engine on the builtin corpora.
   The broad randomized cross-check lives in test_props.ml. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let grammar_of prods = Grammar.make_exn prods

let vm_config cfg = Config.with_backend Config.Bytecode cfg

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let prepare_vm ?(config = Config.optimized) g =
  Vm.prepare_exn ~config:(vm_config config) g

(* --- charset bitmaps ------------------------------------------------------ *)

(* A class compiles to a 256-byte bitmap; every byte must be accepted
   exactly when the source charset contains it. *)
let bitmap_tests =
  let sets =
    [
      ("range", Charset.range 'a' 'f');
      ("union", Charset.union (Charset.range '0' '9') (Charset.singleton '_'));
      ( "complement",
        Charset.complement (Charset.union (Charset.singleton '\n')
             (Charset.range 'x' 'z')) );
      ("edges", Charset.union (Charset.singleton '\000') (Charset.singleton '\255'));
      ("full", Charset.full);
    ]
  in
  List.map
    (fun (name, set) ->
      test (Printf.sprintf "bitmap agrees with Charset.mem (%s)" name)
        (fun () ->
          let g = grammar_of [ Production.v "P0" (Expr.cls set) ] in
          let vm = prepare_vm g in
          for b = 0 to 255 do
            let c = Char.chr b in
            check Alcotest.bool
              (Printf.sprintf "byte %d" b)
              (Charset.mem c set)
              (Vm.accepts vm (String.make 1 c))
          done))
    sets

(* --- backtrack unwinding through state transactions ----------------------- *)

(* An alternative records a name into a state table and then fails; the
   backtrack must roll the table back so the later alternative does not
   see the phantom entry. The closure engine pins the expected result. *)
let unwind_tests =
  let name_ = Expr.plus (Expr.cls (Charset.range 'a' 'z')) in
  let g =
    grammar_of
      [
        Production.v "P0"
          (Expr.alt
             [
               (* record the name, then hit a dead end *)
               Expr.seq [ Expr.record "T" (Expr.token name_); Expr.fail "no" ];
               (* the name must NOT be in the table anymore *)
               Expr.seq
                 [
                   Expr.member "T" false (Expr.token name_);
                   Expr.str "!";
                 ];
             ]);
      ]
  in
  let deep =
    (* several nested choice points between the record and the failure,
       so unwinding has to pop through intermediate frames *)
    grammar_of
      [
        Production.v "P0"
          (Expr.alt
             [
               Expr.seq
                 [
                   Expr.record "T" (Expr.token name_);
                   Expr.alt [ Expr.str "--"; Expr.str "++" ];
                   Expr.star (Expr.chr '.');
                   Expr.fail "no";
                 ];
               Expr.seq [ Expr.member "T" false (Expr.token name_); Expr.any () ];
             ]);
      ]
  in
  let agree name g input =
    test name (fun () ->
        let closure = Engine.prepare_exn ~config:Config.optimized g in
        let vm = prepare_vm g in
        let a = Engine.parse closure input and b = Vm.parse vm input in
        (match (a, b) with
        | Ok va, Ok vb ->
            check Alcotest.bool "values equal" true (Value.equal va vb)
        | Error ea, Error eb ->
            check Alcotest.int "failure position" ea.Parse_error.position
              eb.Parse_error.position;
            check
              Alcotest.(list string)
              "expected sets" ea.Parse_error.expected eb.Parse_error.expected
        | _ -> Alcotest.failf "engines disagree on acceptance of %S" input))
  in
  [
    agree "record rolled back across a failed alternative" g "abc!";
    agree "rollback agrees on rejection too" g "abc";
    agree "unwinding pops through nested choices and loops" deep "abc--...x";
    agree "nested unwinding agrees on rejection" deep "abc--";
  ]

(* --- corpora value equality ----------------------------------------------- *)

let corpus_tests =
  let cases =
    [
      ( "calc",
        Grammars.Calc.grammar (),
        Grammars.Corpus.arith (Rng.create 7) ~size:400 );
      ( "json",
        Grammars.Json.grammar (),
        Grammars.Corpus.json (Rng.create 7) ~size:400 );
      ( "minic",
        Grammars.Minic.grammar (),
        Grammars.Corpus.minic (Rng.create 7) ~functions:4 );
    ]
  in
  List.concat_map
    (fun (name, g, corpus) ->
      let opt = Rats_optimize.Pipeline.optimize g in
      List.map
        (fun (cfg_name, cfg) ->
          test (Printf.sprintf "%s corpus values equal (%s)" name cfg_name)
            (fun () ->
              let closure = Engine.prepare_exn ~config:cfg opt in
              let vm = prepare_vm ~config:cfg opt in
              match (Engine.parse closure corpus, Vm.parse vm corpus) with
              | Ok va, Ok vb ->
                  check Alcotest.bool "equal trees" true (Value.equal va vb)
              | _ -> Alcotest.failf "%s corpus rejected" name))
        [
          ("optimized", Config.optimized);
          ("packrat", Config.packrat);
          ("no memo", Config.naive);
        ])
    cases

(* --- stats and disassembly ------------------------------------------------ *)

let stats_tests =
  [
    test "vm_instructions and vm_stack_peak are reported" (fun () ->
        let g = Grammars.Calc.grammar () in
        let vm = prepare_vm (Rats_optimize.Pipeline.optimize g) in
        let o = Vm.run vm "1+2*(3-4)" in
        check Alcotest.bool "parses" true (Result.is_ok o.Vm.result);
        check Alcotest.bool "instructions counted" true
          (o.Vm.stats.Stats.vm_instructions > 0);
        check Alcotest.bool "stack peak recorded" true
          (o.Vm.stats.Stats.vm_stack_peak > 0);
        check Alcotest.int "consumed everything" 9 o.Vm.consumed);
    test "disassembly lists every production" (fun () ->
        let g =
          grammar_of
            [
              Production.v "P0" (Expr.seq [ Expr.ref_ "P1"; Expr.chr '!' ]);
              Production.v "P1" (Expr.star (Expr.cls (Charset.range 'a' 'z')));
            ]
        in
        let vm = prepare_vm g in
        let listing = Vm.disassemble vm in
        check Alcotest.bool "nonempty" true (String.length listing > 0);
        List.iter
          (fun p ->
            check Alcotest.bool (p ^ " labeled") true (contains listing p))
          [ "P0"; "P1" ];
        check Alcotest.bool "program is measured" true
          (Vm.instruction_count vm > 0));
    test "expected sets are deduplicated" (fun () ->
        let g =
          grammar_of
            [
              Production.v "P0"
                (Expr.alt
                   [
                     Expr.chr 'a';
                     Expr.seq [ Expr.chr 'a'; Expr.chr 'b' ];
                     Expr.chr 'z';
                   ]);
            ]
        in
        (* force the non-dispatch path so both 'a' alternatives really
           run and report at the same position *)
        let cfg = Config.v ~memo:Config.No_memo () in
        let vm = Vm.prepare_exn ~config:(vm_config cfg) g in
        match Vm.parse vm "q" with
        | Ok _ -> Alcotest.fail "should not parse"
        | Error e ->
            let sorted = List.sort_uniq compare e.Parse_error.expected in
            check Alcotest.int "no duplicate entries"
              (List.length sorted)
              (List.length e.Parse_error.expected));
  ]

let () =
  Alcotest.run "vm"
    [
      ("bitmaps", bitmap_tests);
      ("unwinding", unwind_tests);
      ("corpora", corpus_tests);
      ("stats", stats_tests);
    ]
