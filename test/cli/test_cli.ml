(* Black-box CLI tests: run the built rml binary the way a user would.
   Paths are relative to the build sandbox, where dune materializes the
   declared dependencies. *)

let rml = "../../bin/rml.exe"
let tutorial = "../../grammars/tutorial.rats"

let run_cmd cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> 255 in
  (code, Buffer.contents buf)

let run args = run_cmd (Printf.sprintf "%s %s 2>&1" rml args)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let write_temp contents =
  let path = Filename.temp_file "rml_cli" ".txt" in
  Out_channel.with_open_bin path (fun oc -> output_string oc contents);
  path

(* Feed [contents] to the command on standard input (via a temp file so
   the shell does the piping). *)
let run_with_stdin contents args =
  let f = write_temp contents in
  let r = run_cmd (Printf.sprintf "%s %s < %s 2>&1" rml args f) in
  Sys.remove f;
  r

let tests =
  [
    test "analyze a grammar file" (fun () ->
        let code, out = run (Printf.sprintf "analyze %s -r tutorial.Ini" tutorial) in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "well-formed" true (contains out "well-formed:      yes"));
    test "parse an input file" (fun () ->
        let ini = write_temp "[a]\nx = 1\n" in
        let code, out =
          run (Printf.sprintf "parse %s -r tutorial.Ini -i %s" tutorial ini)
        in
        Sys.remove ini;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "tree" true (contains out "(Pair key:\"x\""));
    test "parse errors exit nonzero with a located message" (fun () ->
        let ini = write_temp "[a\n" in
        let code, out =
          run (Printf.sprintf "parse %s -r tutorial.Ini -i %s" tutorial ini)
        in
        Sys.remove ini;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "compose prints a reparsable grammar" (fun () ->
        let code, out =
          run (Printf.sprintf "compose %s -r tutorial.Ini" tutorial)
        in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "start" true (contains out "// start: Ini"));
    test "generate emits OCaml" (fun () ->
        let code, out =
          run (Printf.sprintf "generate %s -r tutorial.Ini -O" tutorial)
        in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "entry" true (contains out "let parse "));
    test "builtin grammars work end to end" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s --stats" expr) in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "stats" true (contains out "invocations="));
    test "parse --engine vm matches the closure tree" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s" expr) in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s --engine vm --stats" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.int "exit vm" 0 code';
        check Alcotest.bool "vm stats" true (contains out' "vm-instructions=");
        check Alcotest.bool "same tree" true
          (contains out' (String.trim out)));
    test "bytecode prints a disassembly" (fun () ->
        let code, out = run "bytecode -b calc" in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "header" true (contains out "instructions");
        check Alcotest.bool "calls" true (contains out "call Sum"));
    test "fmt round-trips the tutorial" (fun () ->
        let code, out = run (Printf.sprintf "fmt %s" tutorial) in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "modules" true (contains out "module tutorial.Ini"));
    test "modules --dot emits graphviz" (fun () ->
        let code, out = run "modules -b minic-ext --dot" in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "digraph" true (contains out "digraph modules");
        check Alcotest.bool "modify edge" true (contains out "modify"));
    test "parse --trace prints nested events" (fun () ->
        let expr = write_temp "1+2" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s -q --trace -c packrat" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "enter" true (contains out "> Sum @0");
        check Alcotest.bool "exit event" true (contains out "< Sum @0"));
    test "unknown builtin is a clean error" (fun () ->
        let code, out = run "analyze -b nonsense" in
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "message" true (contains out "unknown built-in"));
    test "usage errors exit 2" (fun () ->
        let code, _ = run "parse -b calc --no-such-flag" in
        check Alcotest.int "exit" 2 code;
        let code, _ = run "parse -b calc" in
        (* --input is required *)
        check Alcotest.int "missing input" 2 code);
    test "missing input file exits 3, not a crash" (fun () ->
        let code, out = run "parse -b calc -i /no/such/file" in
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "message" true (contains out "/no/such/file"));
    test "--fuel exhaustion exits 4 on both engines" (fun () ->
        let expr = write_temp "1+1+1+1+1+1+1+1" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --fuel 10" expr)
        in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s --fuel 10 -e vm" expr)
        in
        Sys.remove expr;
        check Alcotest.int "closure exit" 4 code;
        check Alcotest.int "vm exit" 4 code';
        check Alcotest.bool "message" true (contains out "fuel");
        check Alcotest.bool "same offset" true
          (String.trim out = String.trim out'));
    test "--max-depth exhaustion exits 4" (fun () ->
        let expr =
          write_temp (String.make 100 '(' ^ "1" ^ String.make 100 ')')
        in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --max-depth 16" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 4 code;
        check Alcotest.bool "message" true (contains out "depth"));
    test "--max-memo degrades but still succeeds" (fun () ->
        let expr = write_temp "1+2*3" in
        let code, out =
          run
            (Printf.sprintf
               "parse -b calc -i %s -q -c packrat --max-memo 1 --stats" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "degraded counted" true
          (contains out "memo-degraded="));
    test "--timeout exits 4 when exceeded, 0 when roomy" (fun () ->
        let expr = write_temp ("1" ^ String.concat "" (List.init 20_000 (fun _ -> "+1"))) in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s -q --timeout 0.000001" expr)
        in
        let code', _ =
          run (Printf.sprintf "parse -b calc -i %s -q --timeout 60" expr)
        in
        Sys.remove expr;
        check Alcotest.int "tiny timeout" 4 code;
        check Alcotest.bool "message" true (contains out "timeout");
        check Alcotest.int "roomy timeout" 0 code');
    test "--fuel with --timeout honors the smaller budget" (fun () ->
        (* A small explicit fuel budget must trip — and be reported as a
           fuel trip, exit 4 — even under a generous timeout: the
           timeout's fuel-slice polling never exceeds --fuel. *)
        let expr = write_temp "1+1+1+1+1+1+1+1" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --fuel 10 --timeout 60" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 4 code;
        check Alcotest.bool "fuel trip" true (contains out "fuel");
        check Alcotest.bool "not a timeout" false (contains out "timeout"));
    test "--edits replays a script incrementally" (fun () ->
        let expr = write_temp "1 + 2 * (3 - 4)" in
        let script =
          write_temp "# touch the 2, then collapse the group\n4 1 42\n9 7 7\n"
        in
        let code, out =
          run
            (Printf.sprintf "parse -b calc -i %s --edits %s --stats" expr
               script)
        in
        let code', out' =
          run
            (Printf.sprintf "parse -b calc -i %s --edits %s -e vm -q" expr
               script)
        in
        Sys.remove expr;
        Sys.remove script;
        check Alcotest.int "exit" 0 code;
        check Alcotest.int "vm exit" 0 code';
        check Alcotest.bool "initial parse" true (contains out "initial: ok");
        check Alcotest.bool "per-edit status" true (contains out "edit 2: ok");
        check Alcotest.bool "reuse reported" true (contains out "reused=");
        check Alcotest.bool "reuse in stats" true (contains out "memo-reused=");
        check Alcotest.bool "final tree" true (contains out "(Num \"42\")");
        (* Both backends replay through the same session machinery. *)
        check Alcotest.bool "vm agrees" true (contains out' "edit 2: ok"));
    test "--edits reaching an invalid buffer exits 3 with a located error"
      (fun () ->
        let expr = write_temp "1+2" in
        let script = write_temp "1 2 +\n" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --edits %s -q" expr script)
        in
        Sys.remove expr;
        Sys.remove script;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "edit reported failing" true
          (contains out "edit 1: expected");
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "--edits rejects malformed scripts with exit 2" (fun () ->
        let expr = write_temp "1+2" in
        let script = write_temp "nonsense line\n" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --edits %s -q" expr script)
        in
        let script' = write_temp "0 99 x\n" in
        let code', _ =
          run (Printf.sprintf "parse -b calc -i %s --edits %s -q" expr script')
        in
        Sys.remove expr;
        Sys.remove script;
        Sys.remove script';
        check Alcotest.int "unparsable line" 2 code;
        check Alcotest.bool "message" true (contains out "bad edit");
        check Alcotest.int "out-of-bounds edit" 2 code');
    test "profile prints a table and writes a speedscope flamegraph"
      (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let flame = Filename.temp_file "rml_cli" ".json" in
        let code, out =
          run
            (Printf.sprintf "profile -b calc -i %s --top 5 --flame %s" expr
               flame)
        in
        let json = In_channel.with_open_bin flame In_channel.input_all in
        Sys.remove expr;
        Sys.remove flame;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "header" true (contains out "production");
        check Alcotest.bool "rows" true (contains out "Number");
        check Alcotest.bool "wrote" true (contains out "rml: wrote");
        check Alcotest.bool "speedscope schema" true
          (contains json "speedscope.app/file-format-schema.json");
        check Alcotest.bool "frames" true (contains json "\"frames\""));
    test "profile on a failing parse still reports, exit 3" (fun () ->
        let expr = write_temp "1+" in
        let code, out = run (Printf.sprintf "profile -b calc -i %s" expr) in
        Sys.remove expr;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "error located" true (String.contains out '^');
        check Alcotest.bool "table anyway" true (contains out "production"));
    test "trace renders ring events with positions" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out =
          run (Printf.sprintf "trace -b calc -i %s --last 6" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "bounded" true (contains out "earlier events");
        check Alcotest.bool "exit-ok" true (contains out "exit-ok");
        check Alcotest.bool "line:col" true (contains out "(1:1)"));
    test "coverage reports unexercised alternatives, --strict exits 1"
      (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "coverage -b calc -i %s" expr) in
        let code', _ =
          run (Printf.sprintf "coverage -b calc -i %s --strict" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "summary" true
          (contains out "productions exercised: 9/9");
        check Alcotest.bool "dead arm flagged" true
          (contains out "unexercised alternative");
        check Alcotest.bool "defining module" true
          (contains out "[module calc.");
        check Alcotest.int "strict" 1 code');
    test "--stdin and '-i -' parse standard input" (fun () ->
        let code, out = run_with_stdin "1 + 2 * 3" "parse -b calc --stdin" in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "tree" true (contains out "(Num \"1\")");
        let code', out' = run_with_stdin "1 + 2 * 3" "parse -b calc -i -" in
        check Alcotest.int "dash exit" 0 code';
        check Alcotest.bool "same tree" true
          (String.trim out = String.trim out'));
    test "--stdin failures are located in <stdin>" (fun () ->
        let code, out = run_with_stdin "1+" "parse -b calc --stdin" in
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "named" true (contains out "<stdin>");
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "--mmap output is byte-identical to the copying path" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s --stats" expr) in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s --mmap --stats" expr)
        in
        let codev, outv =
          run (Printf.sprintf "parse -b calc -i %s --mmap -e vm" expr)
        in
        Sys.remove expr;
        check Alcotest.int "copy exit" 0 code;
        check Alcotest.int "mmap exit" 0 code';
        check Alcotest.bool "identical output incl. stats" true (out = out');
        check Alcotest.int "vm mmap exit" 0 codev;
        check Alcotest.bool "vm tree" true (contains outv "(Num \"3\")"));
    test "--mmap failures carry a caret into the mapped file" (fun () ->
        let bad = write_temp "1 + 2 *" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s --mmap" bad) in
        Sys.remove bad;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "--mmap with --stdin is a usage error" (fun () ->
        let code, _ = run "parse -b calc --stdin --mmap" in
        check Alcotest.int "exit" 2 code;
        let code', _ = run_with_stdin "1" "parse -b calc -i - --mmap" in
        check Alcotest.int "dash exit" 2 code');
    test "--mmap --edits copies on write and keeps memo reuse" (fun () ->
        let expr = write_temp "1 + 2 * (3 - 4)" in
        let script = write_temp "4 1 42\n9 7 7\n" in
        let code, out =
          run
            (Printf.sprintf "parse -b calc -i %s --mmap --edits %s --stats"
               expr script)
        in
        Sys.remove expr;
        Sys.remove script;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "edits replay" true (contains out "edit 2: ok");
        check Alcotest.bool "reuse survives the copy" true
          (contains out "reused=");
        check Alcotest.bool "final tree" true (contains out "(Num \"42\")"));
    test "parse --profile and --trace-ring ride along" (fun () ->
        let expr = write_temp "1+2" in
        let bad = write_temp "1+" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s -q --profile" expr)
        in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s -q --trace-ring 8" bad)
        in
        Sys.remove expr;
        Sys.remove bad;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "table" true (contains out "production");
        check Alcotest.int "failing exit" 3 code';
        check Alcotest.bool "ring dumped on failure" true
          (contains out' "exit-fail"));
  ]

let () = Alcotest.run "cli" [ ("rml", tests) ]
