(* Black-box CLI tests: run the built rml binary the way a user would.
   Paths are relative to the build sandbox, where dune materializes the
   declared dependencies. *)

let rml = "../../bin/rml.exe"
let tutorial = "../../grammars/tutorial.rats"

let run_cmd cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> 255 in
  (code, Buffer.contents buf)

let run args = run_cmd (Printf.sprintf "%s %s 2>&1" rml args)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let write_temp contents =
  let path = Filename.temp_file "rml_cli" ".txt" in
  Out_channel.with_open_bin path (fun oc -> output_string oc contents);
  path

(* Feed [contents] to the command on standard input (via a temp file so
   the shell does the piping). *)
let run_with_stdin contents args =
  let f = write_temp contents in
  let r = run_cmd (Printf.sprintf "%s %s < %s 2>&1" rml args f) in
  Sys.remove f;
  r

let tests =
  [
    test "analyze a grammar file" (fun () ->
        let code, out = run (Printf.sprintf "analyze %s -r tutorial.Ini" tutorial) in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "well-formed" true (contains out "well-formed:      yes"));
    test "parse an input file" (fun () ->
        let ini = write_temp "[a]\nx = 1\n" in
        let code, out =
          run (Printf.sprintf "parse %s -r tutorial.Ini -i %s" tutorial ini)
        in
        Sys.remove ini;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "tree" true (contains out "(Pair key:\"x\""));
    test "parse errors exit nonzero with a located message" (fun () ->
        let ini = write_temp "[a\n" in
        let code, out =
          run (Printf.sprintf "parse %s -r tutorial.Ini -i %s" tutorial ini)
        in
        Sys.remove ini;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "compose prints a reparsable grammar" (fun () ->
        let code, out =
          run (Printf.sprintf "compose %s -r tutorial.Ini" tutorial)
        in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "start" true (contains out "// start: Ini"));
    test "generate emits OCaml" (fun () ->
        let code, out =
          run (Printf.sprintf "generate %s -r tutorial.Ini -O" tutorial)
        in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "entry" true (contains out "let parse "));
    test "builtin grammars work end to end" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s --stats" expr) in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "stats" true (contains out "invocations="));
    test "parse --engine vm matches the closure tree" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s" expr) in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s --engine vm --stats" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.int "exit vm" 0 code';
        check Alcotest.bool "vm stats" true (contains out' "vm-instructions=");
        check Alcotest.bool "same tree" true
          (contains out' (String.trim out)));
    test "bytecode prints a disassembly" (fun () ->
        let code, out = run "bytecode -b calc" in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "header" true (contains out "instructions");
        check Alcotest.bool "calls" true (contains out "call Sum"));
    test "fmt round-trips the tutorial" (fun () ->
        let code, out = run (Printf.sprintf "fmt %s" tutorial) in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "modules" true (contains out "module tutorial.Ini"));
    test "modules --dot emits graphviz" (fun () ->
        let code, out = run "modules -b minic-ext --dot" in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "digraph" true (contains out "digraph modules");
        check Alcotest.bool "modify edge" true (contains out "modify"));
    test "parse --trace prints nested events" (fun () ->
        let expr = write_temp "1+2" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s -q --trace -c packrat" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "enter" true (contains out "> Sum @0");
        check Alcotest.bool "exit event" true (contains out "< Sum @0"));
    test "unknown builtin is a clean error" (fun () ->
        let code, out = run "analyze -b nonsense" in
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "message" true (contains out "unknown built-in"));
    test "usage errors exit 2" (fun () ->
        let code, _ = run "parse -b calc --no-such-flag" in
        check Alcotest.int "exit" 2 code;
        let code, _ = run "parse -b calc" in
        (* --input is required *)
        check Alcotest.int "missing input" 2 code);
    test "missing input file exits 3, not a crash" (fun () ->
        let code, out = run "parse -b calc -i /no/such/file" in
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "message" true (contains out "/no/such/file"));
    test "--fuel exhaustion exits 4 on both engines" (fun () ->
        let expr = write_temp "1+1+1+1+1+1+1+1" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --fuel 10" expr)
        in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s --fuel 10 -e vm" expr)
        in
        Sys.remove expr;
        check Alcotest.int "closure exit" 4 code;
        check Alcotest.int "vm exit" 4 code';
        check Alcotest.bool "message" true (contains out "fuel");
        check Alcotest.bool "same offset" true
          (String.trim out = String.trim out'));
    test "--max-depth exhaustion exits 4" (fun () ->
        let expr =
          write_temp (String.make 100 '(' ^ "1" ^ String.make 100 ')')
        in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --max-depth 16" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 4 code;
        check Alcotest.bool "message" true (contains out "depth"));
    test "--max-memo degrades but still succeeds" (fun () ->
        let expr = write_temp "1+2*3" in
        let code, out =
          run
            (Printf.sprintf
               "parse -b calc -i %s -q -c packrat --max-memo 1 --stats" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "degraded counted" true
          (contains out "memo-degraded="));
    test "--timeout exits 4 when exceeded, 0 when roomy" (fun () ->
        let expr = write_temp ("1" ^ String.concat "" (List.init 20_000 (fun _ -> "+1"))) in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s -q --timeout 0.000001" expr)
        in
        let code', _ =
          run (Printf.sprintf "parse -b calc -i %s -q --timeout 60" expr)
        in
        Sys.remove expr;
        check Alcotest.int "tiny timeout" 4 code;
        check Alcotest.bool "message" true (contains out "timeout");
        check Alcotest.int "roomy timeout" 0 code');
    test "--fuel with --timeout honors the smaller budget" (fun () ->
        (* A small explicit fuel budget must trip — and be reported as a
           fuel trip, exit 4 — even under a generous timeout: the
           timeout's fuel-slice polling never exceeds --fuel. *)
        let expr = write_temp "1+1+1+1+1+1+1+1" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --fuel 10 --timeout 60" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 4 code;
        check Alcotest.bool "fuel trip" true (contains out "fuel");
        check Alcotest.bool "not a timeout" false (contains out "timeout"));
    test "--edits replays a script incrementally" (fun () ->
        let expr = write_temp "1 + 2 * (3 - 4)" in
        let script =
          write_temp "# touch the 2, then collapse the group\n4 1 42\n9 7 7\n"
        in
        let code, out =
          run
            (Printf.sprintf "parse -b calc -i %s --edits %s --stats" expr
               script)
        in
        let code', out' =
          run
            (Printf.sprintf "parse -b calc -i %s --edits %s -e vm -q" expr
               script)
        in
        Sys.remove expr;
        Sys.remove script;
        check Alcotest.int "exit" 0 code;
        check Alcotest.int "vm exit" 0 code';
        check Alcotest.bool "initial parse" true (contains out "initial: ok");
        check Alcotest.bool "per-edit status" true (contains out "edit 2: ok");
        check Alcotest.bool "reuse reported" true (contains out "reused=");
        check Alcotest.bool "reuse in stats" true (contains out "memo-reused=");
        check Alcotest.bool "final tree" true (contains out "(Num \"42\")");
        (* Both backends replay through the same session machinery. *)
        check Alcotest.bool "vm agrees" true (contains out' "edit 2: ok"));
    test "--edits reaching an invalid buffer exits 3 with a located error"
      (fun () ->
        let expr = write_temp "1+2" in
        let script = write_temp "1 2 +\n" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --edits %s -q" expr script)
        in
        Sys.remove expr;
        Sys.remove script;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "edit reported failing" true
          (contains out "edit 1: expected");
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "--edits rejects malformed scripts with exit 2" (fun () ->
        let expr = write_temp "1+2" in
        let script = write_temp "nonsense line\n" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s --edits %s -q" expr script)
        in
        let script' = write_temp "0 99 x\n" in
        let code', _ =
          run (Printf.sprintf "parse -b calc -i %s --edits %s -q" expr script')
        in
        Sys.remove expr;
        Sys.remove script;
        Sys.remove script';
        check Alcotest.int "unparsable line" 2 code;
        check Alcotest.bool "message" true (contains out "bad edit");
        check Alcotest.int "out-of-bounds edit" 2 code');
    test "profile prints a table and writes a speedscope flamegraph"
      (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let flame = Filename.temp_file "rml_cli" ".json" in
        let code, out =
          run
            (Printf.sprintf "profile -b calc -i %s --top 5 --flame %s" expr
               flame)
        in
        let json = In_channel.with_open_bin flame In_channel.input_all in
        Sys.remove expr;
        Sys.remove flame;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "header" true (contains out "production");
        check Alcotest.bool "rows" true (contains out "Number");
        check Alcotest.bool "wrote" true (contains out "rml: wrote");
        check Alcotest.bool "speedscope schema" true
          (contains json "speedscope.app/file-format-schema.json");
        check Alcotest.bool "frames" true (contains json "\"frames\""));
    test "profile on a failing parse still reports, exit 3" (fun () ->
        let expr = write_temp "1+" in
        let code, out = run (Printf.sprintf "profile -b calc -i %s" expr) in
        Sys.remove expr;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "error located" true (String.contains out '^');
        check Alcotest.bool "table anyway" true (contains out "production"));
    test "trace renders ring events with positions" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out =
          run (Printf.sprintf "trace -b calc -i %s --last 6" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "bounded" true (contains out "earlier events");
        check Alcotest.bool "exit-ok" true (contains out "exit-ok");
        check Alcotest.bool "line:col" true (contains out "(1:1)"));
    test "coverage reports unexercised alternatives, --strict exits 1"
      (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "coverage -b calc -i %s" expr) in
        let code', _ =
          run (Printf.sprintf "coverage -b calc -i %s --strict" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "summary" true
          (contains out "productions exercised: 9/9");
        check Alcotest.bool "dead arm flagged" true
          (contains out "unexercised alternative");
        check Alcotest.bool "defining module" true
          (contains out "[module calc.");
        check Alcotest.int "strict" 1 code');
    test "--stdin and '-i -' parse standard input" (fun () ->
        let code, out = run_with_stdin "1 + 2 * 3" "parse -b calc --stdin" in
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "tree" true (contains out "(Num \"1\")");
        let code', out' = run_with_stdin "1 + 2 * 3" "parse -b calc -i -" in
        check Alcotest.int "dash exit" 0 code';
        check Alcotest.bool "same tree" true
          (String.trim out = String.trim out'));
    test "--stdin failures are located in <stdin>" (fun () ->
        let code, out = run_with_stdin "1+" "parse -b calc --stdin" in
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "named" true (contains out "<stdin>");
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "--mmap output is byte-identical to the copying path" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s --stats" expr) in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s --mmap --stats" expr)
        in
        let codev, outv =
          run (Printf.sprintf "parse -b calc -i %s --mmap -e vm" expr)
        in
        Sys.remove expr;
        check Alcotest.int "copy exit" 0 code;
        check Alcotest.int "mmap exit" 0 code';
        check Alcotest.bool "identical output incl. stats" true (out = out');
        check Alcotest.int "vm mmap exit" 0 codev;
        check Alcotest.bool "vm tree" true (contains outv "(Num \"3\")"));
    test "--mmap failures carry a caret into the mapped file" (fun () ->
        let bad = write_temp "1 + 2 *" in
        let code, out = run (Printf.sprintf "parse -b calc -i %s --mmap" bad) in
        Sys.remove bad;
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "caret" true (String.contains out '^'));
    test "--mmap with --stdin is a usage error" (fun () ->
        let code, _ = run "parse -b calc --stdin --mmap" in
        check Alcotest.int "exit" 2 code;
        let code', _ = run_with_stdin "1" "parse -b calc -i - --mmap" in
        check Alcotest.int "dash exit" 2 code');
    test "--mmap --edits copies on write and keeps memo reuse" (fun () ->
        let expr = write_temp "1 + 2 * (3 - 4)" in
        let script = write_temp "4 1 42\n9 7 7\n" in
        let code, out =
          run
            (Printf.sprintf "parse -b calc -i %s --mmap --edits %s --stats"
               expr script)
        in
        Sys.remove expr;
        Sys.remove script;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "edits replay" true (contains out "edit 2: ok");
        check Alcotest.bool "reuse survives the copy" true
          (contains out "reused=");
        check Alcotest.bool "final tree" true (contains out "(Num \"42\")"));
    test "parse --profile and --trace-ring ride along" (fun () ->
        let expr = write_temp "1+2" in
        let bad = write_temp "1+" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s -q --profile" expr)
        in
        let code', out' =
          run (Printf.sprintf "parse -b calc -i %s -q --trace-ring 8" bad)
        in
        Sys.remove expr;
        Sys.remove bad;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "table" true (contains out "production");
        check Alcotest.int "failing exit" 3 code';
        check Alcotest.bool "ring dumped on failure" true
          (contains out' "exit-fail"));
  ]

(* --- the exit-code contract, table-driven ------------------------------------

   One row per subcommand × failure class: 0 success, 1 coverage
   --strict's verdict, 2 usage, 3 syntax/io, 4 resource. Exit 5 (the
   internal backstop) has no CLI trigger short of an engine bug — the
   chaos suite in test_faults asserts it never fires, and the batch
   runner reserves it by construction. *)

let exit_matrix_tests =
  let with_fixtures f =
    let good = write_temp "1 + 2 * 3" in
    let bad = write_temp "1+" in
    Fun.protect
      ~finally:(fun () ->
        Sys.remove good;
        Sys.remove bad)
      (fun () -> f ~good ~bad)
  in
  let matrix ~good ~bad =
    [
      (* subcommand, args, stdin payload, expected exit *)
      ("analyze ok", "analyze -b calc", None, 0);
      ("analyze usage", "analyze -b calc --no-such-flag", None, 2);
      ("analyze unknown builtin", "analyze -b nonsense", None, 3);
      ("parse ok", Printf.sprintf "parse -b calc -i %s" good, None, 0);
      ("parse usage: no input", "parse -b calc", None, 2);
      ("parse usage: bad flag", "parse -b calc --no-such-flag", None, 2);
      ("parse syntax", Printf.sprintf "parse -b calc -i %s" bad, None, 3);
      ("parse io", "parse -b calc -i /no/such/file", None, 3);
      ( "parse resource: fuel",
        Printf.sprintf "parse -b calc -i %s --fuel 3" good,
        None,
        4 );
      ( "parse resource: depth",
        Printf.sprintf "parse -b calc -i %s --max-depth 2" good,
        None,
        4 );
      ( "parse resource: input cap",
        "parse -b calc --stdin --max-input 4",
        Some "1+2*3+4",
        4 );
      ("compose ok", "compose -b calc", None, 0);
      ("compose usage", "compose -b calc --no-such-flag", None, 2);
      ("compose unknown builtin", "compose -b nonsense", None, 3);
      ("generate ok", "generate -b calc", None, 0);
      ("generate usage", "generate -b calc --no-such-flag", None, 2);
      ("generate unknown builtin", "generate -b nonsense", None, 3);
      ("fmt ok", Printf.sprintf "fmt %s" tutorial, None, 0);
      ("fmt usage", "fmt --no-such-flag", None, 2);
      (* cmdliner validates positional file args itself, before the
         command runs: a missing grammar file is a usage error *)
      ("fmt missing file", "fmt /no/such/file.rats", None, 2);
      ("modules ok", "modules -b minic-ext", None, 0);
      ("modules usage", "modules -b calc --no-such-flag", None, 2);
      ("modules unknown builtin", "modules -b nonsense", None, 3);
      ("bytecode ok", "bytecode -b calc", None, 0);
      ("bytecode usage", "bytecode -b calc --no-such-flag", None, 2);
      ("bytecode unknown builtin", "bytecode -b nonsense", None, 3);
      ("profile ok", Printf.sprintf "profile -b calc -i %s" good, None, 0);
      ("profile usage", "profile -b calc --no-such-flag", None, 2);
      ("profile syntax", Printf.sprintf "profile -b calc -i %s" bad, None, 3);
      ("trace ok", Printf.sprintf "trace -b calc -i %s" good, None, 0);
      ("trace usage", "trace -b calc --no-such-flag", None, 2);
      ("trace syntax", Printf.sprintf "trace -b calc -i %s" bad, None, 3);
      ("coverage ok", Printf.sprintf "coverage -b calc -i %s" good, None, 0);
      ( "coverage strict",
        Printf.sprintf "coverage -b calc -i %s --strict" good,
        None,
        1 );
      ("coverage usage", "coverage -b calc --no-such-flag", None, 2);
      (* a failing input is a corpus member, not an error: coverage
         reports it and exits 0 unless --strict asks for a verdict *)
      ("coverage syntax", Printf.sprintf "coverage -b calc -i %s" bad, None, 0);
      ( "coverage strict syntax",
        Printf.sprintf "coverage -b calc -i %s --strict" bad,
        None,
        1 );
      (* batch usage errors resolve before any parsing *)
      ( "batch usage: --stdin conflict",
        "parse -b calc --batch - --stdin",
        Some "",
        2 );
      ( "batch usage: --faults without --batch",
        Printf.sprintf "parse -b calc -i %s --faults seed=1" good,
        None,
        2 );
      ( "batch usage: bad --faults spec",
        "parse -b calc --batch - --faults zoom@3",
        Some "",
        2 );
      ( "batch usage: --doc-timeout without --batch",
        Printf.sprintf "parse -b calc -i %s --doc-timeout 1" good,
        None,
        2 );
    ]
  in
  [
    test "every subcommand honors the exit-code contract" (fun () ->
        with_fixtures (fun ~good ~bad ->
            List.iter
              (fun (name, args, stdin_payload, expected) ->
                let code, _ =
                  match stdin_payload with
                  | None -> run args
                  | Some payload -> run_with_stdin payload args
                in
                check Alcotest.int name expected code)
              (matrix ~good ~bad)));
  ]

(* --- the batch pipeline through the CLI -------------------------------------- *)

let count_json_lines out =
  List.length
    (List.filter
       (fun l -> String.length l > 0 && l.[0] = '{')
       (String.split_on_char '\n' out))

let batch_tests =
  [
    test "--batch manifest: one JSONL record per doc plus a summary" (fun () ->
        let good = write_temp "1+2*3" in
        let bad = write_temp "1+" in
        let manifest =
          write_temp
            (Printf.sprintf "# corpus\n%s\n%s\n/no/such/doc.txt\n" good bad)
        in
        let code, out = run (Printf.sprintf "parse -b calc --batch %s" manifest) in
        Sys.remove good;
        Sys.remove bad;
        Sys.remove manifest;
        check Alcotest.int "worst class is io/syntax: exit 3" 3 code;
        check Alcotest.int "3 records + summary" 4 (count_json_lines out);
        check Alcotest.bool "summary line" true (contains out "\"summary\":true");
        check Alcotest.bool "io record" true (contains out "\"kind\":\"io\"");
        check Alcotest.bool "syntax record" true
          (contains out "\"kind\":\"syntax\"");
        check Alcotest.bool "human summary on stderr" true
          (contains out "batch: 3 docs"));
    test "--batch - streams NUL-separated docs from stdin" (fun () ->
        let code, out =
          run_cmd
            (Printf.sprintf
               "printf '1+2\\0001+\\000' | %s parse -b calc --batch - 2>&1" rml)
        in
        check Alcotest.int "exit" 3 code;
        check Alcotest.int "2 records + summary" 3 (count_json_lines out));
    test "--batch - --batch-sep line streams newline-separated docs" (fun () ->
        let code, out =
          run_with_stdin "1+2\n1+\n2*3\n"
            "parse -b calc --batch - --batch-sep line"
        in
        check Alcotest.int "exit" 3 code;
        check Alcotest.int "3 records + summary" 4 (count_json_lines out);
        check Alcotest.bool "ok docs recorded" true
          (contains out "\"status\":\"ok\""));
    test "--batch all-good corpus exits 0" (fun () ->
        let code, out =
          run_with_stdin "1+2\n2*3\n" "parse -b calc --batch - --batch-sep line"
        in
        check Alcotest.int "exit" 0 code;
        check Alcotest.int "records" 3 (count_json_lines out));
    test "--batch enforces --max-input per document, exit 4" (fun () ->
        let code, out =
          run_with_stdin "1+2\n1+1+1+1+1+1+1+1\n"
            "parse -b calc --batch - --batch-sep line --max-input 8"
        in
        check Alcotest.int "exit" 4 code;
        check Alcotest.bool "input-cap record" true
          (contains out "\"which\":\"input\""));
    test "--batch --faults injects the plan deterministically" (fun () ->
        let code, out =
          run_with_stdin "1+2\n2*3\n"
            "parse -b calc --batch - --batch-sep line --faults io@0"
        in
        check Alcotest.int "exit" 3 code;
        check Alcotest.bool "injected io" true
          (contains out "injected I/O fault");
        (* the same plan at rate 0 injects nothing *)
        let code', out' =
          run_with_stdin "1+2\n2*3\n"
            "parse -b calc --batch - --batch-sep line --faults seed=1,rate=0.0,io@0"
        in
        check Alcotest.int "rate-0 exit" 0 code';
        check Alcotest.bool "no injection" false
          (contains out' "injected I/O fault"));
    test "--doc-timeout turns a stuck doc into a deadline record" (fun () ->
        let huge =
          "1" ^ String.concat "" (List.init 20_000 (fun _ -> "+1"))
        in
        let code, out =
          run_with_stdin
            (huge ^ "\n1+2\n")
            "parse -b calc --batch - --batch-sep line --doc-timeout 0.000001"
        in
        check Alcotest.int "exit" 4 code;
        check Alcotest.bool "deadline record" true
          (contains out "\"which\":\"deadline\"");
        check Alcotest.bool "later docs still run" true
          (contains out "\"status\":\"ok\""));
    test "--stdin caps an unbounded stream at --max-input, exit 4" (fun () ->
        let code, out =
          run_with_stdin
            ("1" ^ String.concat "" (List.init 100 (fun _ -> "+1")))
            "parse -b calc --stdin --max-input 16"
        in
        check Alcotest.int "exit" 4 code;
        check Alcotest.bool "cap named" true (contains out "16"));
  ]

(* --- telemetry: --metrics / --trace-out / --progress / --stats-json ----------

   The schema tests are the stability contract: the JSONL record,
   summary and --stats-json key sequences are pinned by name and order,
   so any field rename or reorder fails here before it breaks a
   downstream consumer. *)

(* Top-level keys of one JSON object, in order. Quoted values are
   skipped wholesale so a ':' inside an error message cannot fake a
   key. *)
let keys_of_json line =
  let n = String.length line in
  let rec scan_string i =
    (* [i] just past an opening quote; returns the index past the
       closing quote *)
    if i >= n then i
    else if line.[i] = '\\' then scan_string (i + 2)
    else if line.[i] = '"' then i + 1
    else scan_string (i + 1)
  in
  let rec go acc i =
    if i >= n then List.rev acc
    else if line.[i] = '"' then begin
      let j = scan_string (i + 1) in
      if j < n && line.[j] = ':' then
        let key = String.sub line (i + 1) (j - i - 2) in
        (* skip a quoted value so its innards are never scanned *)
        if j + 1 < n && line.[j + 1] = '"' then
          go (key :: acc) (scan_string (j + 2))
        else go (key :: acc) (j + 1)
      else go acc j
    end
    else go acc (i + 1)
  in
  go [] 0

(* Strip every wall-time value: the only fields that change from run to
   run under the real clock. What remains must be byte-identical. *)
let strip_times line =
  let n = String.length line in
  let b = Buffer.create n in
  let is_time_key k =
    k = "ms" || k = "p50_ms" || k = "p99_ms" || k = "total_ms"
  in
  let rec go i =
    if i >= n then ()
    else if line.[i] = '"' then begin
      let j = ref (i + 1) in
      while !j < n && line.[!j] <> '"' do
        if line.[!j] = '\\' then incr j;
        incr j
      done;
      let key = String.sub line (i + 1) (!j - i - 1) in
      Buffer.add_string b (String.sub line i (!j - i + 1));
      if !j + 1 < n && line.[!j + 1] = ':' && is_time_key key then begin
        Buffer.add_string b ":_";
        let k = ref (!j + 2) in
        while
          !k < n && (line.[!k] = '.' || (line.[!k] >= '0' && line.[!k] <= '9'))
        do
          incr k
        done;
        go !k
      end
      else go (!j + 1)
    end
    else begin
      Buffer.add_char b line.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

let json_lines out =
  List.filter
    (fun l -> String.length l > 0 && l.[0] = '{')
    (String.split_on_char '\n' out)

let check_keys name expected line =
  check (Alcotest.list Alcotest.string) name expected (keys_of_json line)

let with_corpus f =
  let good = write_temp "1+2*3" in
  let bad = write_temp "1+" in
  let manifest = write_temp (Printf.sprintf "%s\n%s\n" good bad) in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove good;
      Sys.remove bad;
      Sys.remove manifest)
    (fun () -> f manifest)

let telemetry_tests =
  [
    test "--stats-json emits the pinned 14-field schema" (fun () ->
        let expr = write_temp "1 + 2 * 3" in
        let code, out =
          run (Printf.sprintf "parse -b calc -i %s -q --stats-json" expr)
        in
        let codev, outv =
          run (Printf.sprintf "parse -b calc -i %s -q -e vm --stats-json" expr)
        in
        Sys.remove expr;
        check Alcotest.int "exit" 0 code;
        check Alcotest.int "vm exit" 0 codev;
        let schema =
          [
            "invocations"; "hits"; "misses"; "stores"; "chunks"; "slots";
            "backtracks"; "snapshots"; "vm-instructions"; "vm-stack-peak";
            "fuel-used"; "memo-degraded"; "memo-reused"; "memo-relocated";
          ]
        in
        (match json_lines out with
        | [ line ] -> check_keys "closure schema" schema line
        | ls -> Alcotest.failf "expected 1 JSON line, got %d" (List.length ls));
        match json_lines outv with
        | [ line ] ->
            check_keys "vm schema" schema line;
            check Alcotest.bool "vm counts instructions" true
              (contains line "\"vm-instructions\":")
        | ls -> Alcotest.failf "expected 1 JSON line, got %d" (List.length ls));
    test "--stats-json rides --edits: the final reparse's counters" (fun () ->
        let expr = write_temp "1 + 2 * (3 - 4)" in
        let script = write_temp "4 1 42\n" in
        let code, out =
          run
            (Printf.sprintf "parse -b calc -i %s --edits %s -q --stats-json"
               expr script)
        in
        Sys.remove expr;
        Sys.remove script;
        check Alcotest.int "exit" 0 code;
        match json_lines out with
        | [ line ] ->
            check Alcotest.bool "memo reuse surfaced" true
              (contains line "\"memo-reused\":9");
            check Alcotest.bool "relocations surfaced" true
              (contains line "\"memo-relocated\":7")
        | ls -> Alcotest.failf "expected 1 JSON line, got %d" (List.length ls));
    test "batch JSONL schemas are pinned, field for field" (fun () ->
        with_corpus (fun manifest ->
            let code, out =
              run (Printf.sprintf "parse -b calc --batch %s" manifest)
            in
            check Alcotest.int "exit" 3 code;
            match json_lines out with
            | [ ok_rec; fail_rec; summary ] ->
                check_keys "ok record"
                  [
                    "doc"; "name"; "bytes"; "status"; "rung"; "retried"; "ms";
                    "memo_degraded"; "fuel_used";
                  ]
                  ok_rec;
                check_keys "syntax record"
                  [
                    "doc"; "name"; "bytes"; "status"; "rung"; "retried";
                    "kind"; "position"; "message"; "ms"; "memo_degraded";
                    "fuel_used";
                  ]
                  fail_rec;
                check_keys "summary"
                  [
                    "summary"; "docs"; "ok"; "failed"; "degraded"; "rung_full";
                    "rung_recognizer"; "syntax"; "resource"; "io"; "internal";
                    "p50_ms"; "p99_ms"; "total_ms"; "memo_degraded";
                    "cold_fallbacks";
                  ]
                  summary
            | ls -> Alcotest.failf "expected 3 JSON lines, got %d" (List.length ls)));
    test "--metrics .prom: valid exposition reconciling with the run" (fun () ->
        with_corpus (fun manifest ->
            let prom = Filename.temp_file "rml_cli" ".prom" in
            let code, out =
              run
                (Printf.sprintf "parse -b calc --batch %s --metrics %s" manifest
                   prom)
            in
            let text = In_channel.with_open_bin prom In_channel.input_all in
            Sys.remove prom;
            check Alcotest.int "exit" 3 code;
            check Alcotest.bool "HELP first" true
              (String.length text > 6 && String.sub text 0 6 = "# HELP");
            check Alcotest.bool "docs ok series" true
              (contains text "rml_batch_docs_total{status=\"ok\"} 1");
            check Alcotest.bool "docs fail series" true
              (contains text "rml_batch_docs_total{status=\"fail\"} 1");
            check Alcotest.bool "latency count covers every record" true
              (contains text "rml_batch_doc_latency_us_count 2");
            check Alcotest.bool "+Inf closes the histogram" true
              (contains text "rml_batch_doc_latency_us_bucket{le=\"+Inf\"} 2");
            (* counters reconcile with the JSONL summary on stdout *)
            check Alcotest.bool "summary agrees" true
              (contains out "\"docs\":2,\"ok\":1,\"failed\":1")));
    test "--metrics .json: a JSON instrument dump" (fun () ->
        with_corpus (fun manifest ->
            let mjson = Filename.temp_file "rml_cli" ".json" in
            let code, _ =
              run
                (Printf.sprintf "parse -b calc --batch %s --metrics %s" manifest
                   mjson)
            in
            let text = In_channel.with_open_bin mjson In_channel.input_all in
            Sys.remove mjson;
            check Alcotest.int "exit" 3 code;
            check Alcotest.bool "array" true
              (String.length text > 2 && text.[0] = '[');
            check Alcotest.bool "instruments" true
              (contains text "\"name\":\"rml_batch_docs_total\"");
            check Alcotest.bool "quantiles" true (contains text "\"p99\":")));
    test "--metrics leaves the JSONL stream byte-identical" (fun () ->
        with_corpus (fun manifest ->
            let prom = Filename.temp_file "rml_cli" ".prom" in
            let code, out =
              run (Printf.sprintf "parse -b calc --batch %s" manifest)
            in
            let code', out' =
              run
                (Printf.sprintf "parse -b calc --batch %s --metrics %s" manifest
                   prom)
            in
            Sys.remove prom;
            check Alcotest.int "bare exit" 3 code;
            check Alcotest.int "metrics exit" 3 code';
            (* wall times are the only run-to-run noise; everything else
               must match byte for byte *)
            check
              (Alcotest.list Alcotest.string)
              "records identical modulo wall times"
              (List.map strip_times (json_lines out))
              (List.map strip_times (json_lines out'))));
    test "--trace-out writes a chrome trace of the batch" (fun () ->
        with_corpus (fun manifest ->
            let trace = Filename.temp_file "rml_cli" ".json" in
            let code, _ =
              run
                (Printf.sprintf "parse -b calc --batch %s --trace-out %s"
                   manifest trace)
            in
            let text = In_channel.with_open_bin trace In_channel.input_all in
            Sys.remove trace;
            check Alcotest.int "exit" 3 code;
            check Alcotest.bool "event array" true
              (String.length text > 2 && text.[0] = '[');
            check Alcotest.bool "compile span" true
              (contains text "\"name\":\"compile\"");
            check Alcotest.bool "attempt span" true
              (contains text "\"cat\":\"attempt\"");
            check Alcotest.bool "complete events" true
              (contains text "\"ph\":\"X\"")));
    test "--progress heartbeats on stderr" (fun () ->
        with_corpus (fun manifest ->
            let code, out =
              run (Printf.sprintf "parse -b calc --batch %s --progress" manifest)
            in
            check Alcotest.int "exit" 3 code;
            check Alcotest.bool "progress line" true (contains out "progress:");
            check Alcotest.bool "counts docs" true (contains out "2/2 docs");
            check Alcotest.bool "quantiles so far" true (contains out "p99");
            check Alcotest.bool "worst class" true (contains out "worst syntax")));
    test "telemetry flags are usage-checked" (fun () ->
        let expr = write_temp "1+2" in
        let checks =
          [
            ("--metrics without --batch",
             Printf.sprintf "parse -b calc -i %s --metrics /tmp/x.prom" expr);
            ("--trace-out without --batch",
             Printf.sprintf "parse -b calc -i %s --trace-out /tmp/x.json" expr);
            ("--progress without --batch",
             Printf.sprintf "parse -b calc -i %s --progress" expr);
            ("--stats-json with --batch",
             "parse -b calc --batch - --stats-json");
            ("--metrics with an unknown extension",
             "parse -b calc --batch - --metrics /tmp/x.txt");
          ]
        in
        List.iter
          (fun (name, args) ->
            let code, _ =
              match args with
              | a when contains a "--batch -" -> run_with_stdin "1+2\n" a
              | a -> run a
            in
            check Alcotest.int name 2 code)
          checks;
        Sys.remove expr);
  ]

let () =
  Alcotest.run "cli"
    [
      ("rml", tests);
      ("exit-codes", exit_matrix_tests);
      ("batch", batch_tests);
      ("telemetry", telemetry_tests);
    ]
