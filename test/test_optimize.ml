(* Tests for the optimizer: each pass preserves the language (and, for
   the value-safe passes, the semantic values), and does what its name
   says to the grammar structure. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let value_eq = Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal

(* Reference engine: naive interpretation of the untouched grammar. *)
let reference g = Engine.prepare_exn ~config:Config.naive g

let same_values ?(inputs = []) g g' =
  let e1 = reference g in
  let e2 = Engine.prepare_exn ~config:Config.optimized g' in
  List.iter
    (fun input ->
      match (Engine.parse e1 input, Engine.parse e2 input) with
      | Ok a, Ok b ->
          check value_eq (Printf.sprintf "values for %S" input) a b
      | Error _, Error _ -> ()
      | Ok _, Error e ->
          Alcotest.failf "%S: optimized rejects (%s)" input (Parse_error.message e)
      | Error _, Ok _ -> Alcotest.failf "%S: optimized accepts" input)
    inputs

let same_acceptance ?(inputs = []) g g' =
  let e1 = reference g in
  let e2 = Engine.prepare_exn ~config:Config.optimized g' in
  List.iter
    (fun input ->
      check Alcotest.bool
        (Printf.sprintf "acceptance for %S" input)
        (Engine.accepts e1 input) (Engine.accepts e2 input))
    inputs

(* --- pruning ---------------------------------------------------------------- *)

let prune_tests =
  let open Builder in
  [
    test "unreachable productions dropped" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (e "A"); prod "A" (c 'a'); prod "Dead" (c 'd') ]
        in
        let g' = Passes.prune g in
        check Alcotest.int "two left" 2 (Grammar.length g');
        check Alcotest.bool "dead gone" false (Grammar.mem g' "Dead"));
    test "public productions survive pruning" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (c 's'); prod ~public:true "Api" (c 'a') ]
        in
        check Alcotest.bool "api kept" true (Grammar.mem (Passes.prune g) "Api"));
  ]

(* --- transient marking --------------------------------------------------------- *)

let transient_tests =
  let open Builder in
  [
    test "single-reference productions marked" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "Once" @: e "Twice" @: e "Twice");
              prod "Once" (c 'o');
              prod "Twice" (c 't');
            ]
        in
        let g' = Passes.mark_transients g in
        check Alcotest.bool "once transient" true
          (Attr.is_transient (Grammar.find_exn g' "Once").Production.attrs);
        check Alcotest.bool "twice kept" false
          (Attr.is_transient (Grammar.find_exn g' "Twice").Production.attrs));
    test "explicit memoized wins" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (e "A"); prod ~memo:Attr.Memo_always "A" (c 'a') ]
        in
        let g' = Passes.mark_transients g in
        check Alcotest.bool "kept" false
          (Attr.is_transient (Grammar.find_exn g' "A").Production.attrs));
  ]

(* --- terminal detection ----------------------------------------------------------- *)

let terminal_tests =
  let open Builder in
  [
    test "character-level productions detected transitively" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "Ident" @: e "Node");
              prod "Ident" (plus (e "Letter"));
              prod "Letter" (r 'a' 'z');
              prod ~kind:Attr.Generic "Node" (c '!');
            ]
        in
        let ts = Passes.terminal_set g in
        check Alcotest.bool "Ident" true (Analysis.StringSet.mem "Ident" ts);
        check Alcotest.bool "Letter" true (Analysis.StringSet.mem "Letter" ts);
        check Alcotest.bool "Node excluded" false
          (Analysis.StringSet.mem "Node" ts);
        check Alcotest.bool "S excluded" false (Analysis.StringSet.mem "S" ts));
    test "node constructor disqualifies" (fun () ->
        let g =
          Grammar.make_exn ~start:"S" [ prod "S" (node "N" (c 'a')) ]
        in
        check Alcotest.bool "excluded" false
          (Analysis.StringSet.mem "S" (Passes.terminal_set g)));
    test "state operators disqualify" (fun () ->
        let g =
          Grammar.make_exn ~start:"S" [ prod "S" (record "T" (c 'a')) ]
        in
        check Alcotest.bool "excluded" false
          (Analysis.StringSet.mem "S" (Passes.terminal_set g)));
    test "minic lexical level is terminal" (fun () ->
        let g = Grammars.Minic.grammar () in
        let ts = Passes.terminal_set g in
        check Alcotest.bool "Word" true (Analysis.StringSet.mem "Word" ts);
        check Alcotest.bool "Spacing" true (Analysis.StringSet.mem "Spacing" ts);
        check Alcotest.bool "Statement excluded" false
          (Analysis.StringSet.mem "Statement" ts));
  ]

(* --- inlining ------------------------------------------------------------------------ *)

let inline_tests =
  let open Builder in
  [
    test "small private productions inlined away" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (e "Tiny" @: e "Tiny"); prod "Tiny" (c 't') ]
        in
        let g' = Passes.inline_pass g in
        check Alcotest.int "one prod" 1 (Grammar.length g');
        same_values ~inputs:[ "tt"; "t"; "" ] g g');
    test "recursive productions not inlined" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (e "R"); prod "R" (c '(' @: opt (e "R") @: c ')') ]
        in
        let g' = Passes.inline_pass g in
        check Alcotest.bool "R kept" true (Grammar.mem g' "R"));
    test "inline_never respected, inline_always forced" (fun () ->
        let big = Expr.seq (List.init 20 (fun _ -> Expr.chr 'x')) in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "Never" @: e "Always");
              prod ~inline:Attr.Inline_never "Never" (c 'n');
              prod ~inline:Attr.Inline_always "Always" big;
            ]
        in
        let g' = Passes.inline_pass g in
        check Alcotest.bool "never kept" true (Grammar.mem g' "Never");
        check Alcotest.bool "always gone" false (Grammar.mem g' "Always"));
    test "kinds preserved through inlining" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "G" @: e "T" @: e "V");
              prod ~kind:Attr.Generic "G" (r 'a' 'z');
              prod ~kind:Attr.Text "T" (plus (r '0' '9'));
              prod ~kind:Attr.Void "V" (r 'a' 'z');
            ]
        in
        let g' = Passes.inline_pass g in
        check Alcotest.int "all inlined" 1 (Grammar.length g');
        same_values ~inputs:[ "x42z"; "x4"; "" ] g g');
    test "top-level bind blocks inlining" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (e "B" @: c '!'); prod "B" ("x" |: c 'b') ]
        in
        let g' = Passes.inline_pass g in
        check Alcotest.bool "kept" true (Grammar.mem g' "B");
        same_values ~inputs:[ "b!" ] g g');
    test "calc grammar value-identical after inlining" (fun () ->
        let g = Grammars.Calc.grammar () in
        same_values
          ~inputs:[ "1+2*3"; "2**3**2"; "(1+2)*3"; "8/4/2" ]
          g (Passes.inline_pass g));
  ]

(* --- folding ------------------------------------------------------------------------- *)

let fold_tests =
  let open Builder in
  [
    test "structurally equal privates merged" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "A" @: e "B");
              prod ~inline:Attr.Inline_never "A" (plus (r '0' '9'));
              prod ~inline:Attr.Inline_never "B" (plus (r '0' '9'));
            ]
        in
        let g' = Passes.fold_duplicates g in
        check Alcotest.int "merged" 2 (Grammar.length g');
        same_values ~inputs:[ "12"; "1"; "" ] g g');
    test "different kinds not merged" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "A" @: e "B");
              prod ~kind:Attr.Text "A" (plus (r '0' '9'));
              prod "B" (plus (r '0' '9'));
            ]
        in
        check Alcotest.int "kept" 3 (Grammar.length (Passes.fold_duplicates g)));
    test "generic productions never merged" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "A" @: e "B");
              prod ~kind:Attr.Generic "A" (c 'x');
              prod ~kind:Attr.Generic "B" (c 'x');
            ]
        in
        check Alcotest.int "kept" 3 (Grammar.length (Passes.fold_duplicates g)));
    test "folding cascades to a fixed point" (fun () ->
        (* A1/A2 equal only after their references B1/B2 are merged. *)
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "A1" @: e "A2");
              prod ~inline:Attr.Inline_never "A1" (e "B1" @: c '!');
              prod ~inline:Attr.Inline_never "A2" (e "B2" @: c '!');
              prod ~inline:Attr.Inline_never "B1" (c 'b');
              prod ~inline:Attr.Inline_never "B2" (c 'b');
            ]
        in
        let g' = Passes.fold_duplicates g in
        check Alcotest.int "S+A+B" 3 (Grammar.length g');
        same_values ~inputs:[ "b!b!" ] g g');
  ]

(* --- prefix factoring ------------------------------------------------------------------ *)

let factor_tests =
  let open Builder in
  [
    test "adjacent alternatives factored" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (s "ab" @: c 'x' <|> s "ab" @: c 'y' <|> c 'z') ]
        in
        let g' = Passes.factor_prefixes g in
        (* The factored grammar must contain a splice. *)
        let has_splice =
          Expr.fold
            (fun acc (x : Expr.t) ->
              acc || match x.it with Expr.Splice _ -> true | _ -> false)
            false (Grammar.find_exn g' "S").Production.expr
        in
        check Alcotest.bool "splice introduced" true has_splice;
        same_values ~inputs:[ "abx"; "aby"; "z"; "ab"; "abz" ] g g');
    test "values preserved with binds and nodes" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod ~kind:Attr.Generic "S"
                (("l" |: tok (s "ab")) @: ("r" |: any) @: c '!'
                <|> ("l" |: tok (s "ab")) @: c '?'
                <|> ("q" |: any));
            ]
        in
        let g' = Passes.factor_prefixes g in
        same_values ~inputs:[ "abc!"; "ab?"; "x"; "ab!"; "" ] g g');
    test "single-element tails keep their shape" (fun () ->
        (* The tail is a reference to a production whose own value is a
           tuple: splicing must not flatten it. *)
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (c 'k' @: e "Pair" <|> c 'k' @: c '!');
              prod ~inline:Attr.Inline_never "Pair" (any @: any);
            ]
        in
        same_values ~inputs:[ "kab"; "k!"; "k" ] g (Passes.factor_prefixes g));
    test "nested factoring" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S"
                (c 'a' @: c 'b' @: c '1'
                <|> c 'a' @: c 'b' @: c '2'
                <|> c 'a' @: c 'c');
            ]
        in
        same_values ~inputs:[ "ab1"; "ab2"; "ac"; "abc" ] g
          (Passes.factor_prefixes g));
    test "stateful heads are skipped" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S"
                (record "T" (c 'a') @: c 'x' <|> record "T" (c 'a') @: c 'y');
            ]
        in
        let g' = Passes.factor_prefixes g in
        let has_splice =
          Expr.fold
            (fun acc (x : Expr.t) ->
              acc || match x.it with Expr.Splice _ -> true | _ -> false)
            false (Grammar.find_exn g' "S").Production.expr
        in
        check Alcotest.bool "left alone" false has_splice);
    test "idempotent" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (s "ab" @: c 'x' <|> s "ab" @: c 'y') ]
        in
        let once = Passes.factor_prefixes g in
        let twice = Passes.factor_prefixes once in
        check Alcotest.bool "stable" true
          (Expr.equal
             (Grammar.find_exn once "S").Production.expr
             (Grammar.find_exn twice "S").Production.expr));
  ]

(* --- repetition desugaring ---------------------------------------------------------------- *)

let desugar_tests =
  let open Builder in
  [
    test "helpers are introduced" (fun () ->
        let g = Grammar.make_exn ~start:"S" [ prod "S" (star (c 'a')) ] in
        let g' = Desugar.expand_repetitions g in
        check Alcotest.bool "helpers" true (Desugar.expanded_helpers g' <> []));
    test "acceptance preserved for star, plus, opt" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (star (c 'a') @: plus (c 'b') @: opt (c 'c')) ]
        in
        same_acceptance
          ~inputs:[ "b"; "ab"; "aabbc"; "c"; ""; "aac" ]
          g (Desugar.expand_repetitions g));
    test "nested repetitions expand" (fun () ->
        let g =
          Grammar.make_exn ~start:"S" [ prod "S" (star (c 'x' @: plus (c 'y'))) ]
        in
        same_acceptance
          ~inputs:[ ""; "xy"; "xyy"; "xyxy"; "x" ]
          g (Desugar.expand_repetitions g));
    test "opt expansion is value-preserving" (fun () ->
        let g =
          Grammar.make_exn ~start:"S" [ prod "S" (opt (tok (c 'a')) @: c '!') ]
        in
        (* Only Star/Plus change value shapes; Opt must not. *)
        let g' = Desugar.expand_repetitions g in
        same_values ~inputs:[ "a!"; "!" ] g g');
    test "desugared grammar passes well-formedness" (fun () ->
        let g = Grammars.Calc.grammar () in
        let g' = Desugar.expand_repetitions g in
        check Alcotest.int "clean" 0
          (List.length (Analysis.check (Analysis.analyze g'))));
  ]

(* --- left-recursion elimination ---------------------------------------------------------- *)

let leftrec_tests =
  let open Builder in
  [
    test "direct left recursion becomes iteration" (fun () ->
        let g =
          Grammar.make_exn ~start:"E"
            [
              prod "E"
                (e "E" @: tok (c '-') @: e "N" <|> e "N");
              prod "N" (tok (plus (r '0' '9')));
            ]
        in
        (* The raw grammar is rejected... *)
        (match Engine.prepare g with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
        (* ...and the transformed one parses left-associatively. *)
        let g' = Passes.eliminate_left_recursion g in
        let eng = Engine.prepare_exn g' in
        match Engine.parse eng "8-3-2" with
        | Ok v ->
            (* value = #seq(base, [tail; tail]) *)
            check Alcotest.int "two tails" 2
              (match Value.nth_child v 1 with
              | Some (Value.List ts) -> List.length ts
              | _ -> -1)
        | Error e -> Alcotest.failf "parse: %s" (Parse_error.message e));
    test "base and recursive alternatives in any order" (fun () ->
        let g =
          Grammar.make_exn ~start:"E"
            [ prod "E" (c 'n' <|> e "E" @: c '+' @: c 'n' <|> e "E" @: c '-' @: c 'n') ]
        in
        let eng = Engine.prepare_exn (Passes.eliminate_left_recursion g) in
        check Alcotest.bool "mixed" true (Engine.accepts eng "n+n-n"));
    test "vacuous self-alternative is dropped" (fun () ->
        let g =
          Grammar.make_exn ~start:"E" [ prod "E" (e "E" <|> c 'a') ]
        in
        let eng = Engine.prepare_exn (Passes.eliminate_left_recursion g) in
        check Alcotest.bool "a" true (Engine.accepts eng "a"));
    test "indirect left recursion is left for the checker" (fun () ->
        let g =
          Grammar.make_exn ~start:"A"
            [ prod "A" (e "B" <|> c 'a'); prod "B" (e "A" @: c 'b') ]
        in
        let g' = Passes.eliminate_left_recursion g in
        match Engine.prepare g' with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    test "non-recursive grammars are untouched" (fun () ->
        let g = Grammars.Calc.grammar () in
        let g' = Passes.eliminate_left_recursion g in
        List.iter2
          (fun (p : Production.t) (q : Production.t) ->
            check Alcotest.bool p.name true (Expr.equal p.expr q.expr))
          (Grammar.productions g) (Grammar.productions g'));
  ]

(* --- the analysis cache ---------------------------------------------------------------------- *)

let ctx_tests =
  let open Builder in
  let two_prods () =
    Grammar.make_exn ~start:"S"
      [ prod "S" (e "A" @: e "A"); prod "A" (r 'a' 'z') ]
  in
  [
    test "queries share one analysis run" (fun () ->
        let ctx = Analysis_ctx.create (two_prods ()) in
        ignore (Analysis_ctx.first ctx "S");
        ignore (Analysis_ctx.nullable ctx "A");
        ignore (Analysis_ctx.reachable ctx);
        check Alcotest.int "one run" 1 (Analysis_ctx.computations ctx));
    test "attribute-only advance keeps the cache" (fun () ->
        let g = two_prods () in
        let ctx = Analysis_ctx.create g in
        ignore (Analysis_ctx.first ctx "S");
        let g' = Passes.mark_transients ~ctx g in
        Analysis_ctx.advance ctx ~invalidates:Analysis_ctx.Nothing g';
        ignore (Analysis_ctx.first ctx "S");
        check Alcotest.int "still one run" 1 (Analysis_ctx.computations ctx));
    test "structural advance recomputes" (fun () ->
        let g = two_prods () in
        let ctx = Analysis_ctx.create g in
        ignore (Analysis_ctx.first ctx "S");
        Analysis_ctx.advance ctx ~invalidates:Analysis_ctx.Analyses
          (Passes.inline_pass g);
        ignore (Analysis_ctx.reachable ctx);
        check Alcotest.int "two runs" 2 (Analysis_ctx.computations ctx));
    test "ref counts match Analysis.ref_count" (fun () ->
        let g = Grammars.Minic.grammar () in
        let ctx = Analysis_ctx.create g in
        let a = Analysis.analyze g in
        List.iter
          (fun (p : Production.t) ->
            check Alcotest.int p.name (Analysis.ref_count a p.name)
              (Analysis_ctx.ref_count ctx p.name))
          (Grammar.productions g));
    test "stale grammar falls back instead of lying" (fun () ->
        (* Passing a context for a different snapshot must not corrupt
           the pass: ctx_for detects the mismatch and analyzes fresh. *)
        let g = two_prods () in
        let stale = Analysis_ctx.create (Grammars.Calc.grammar ()) in
        let g' = Passes.mark_transients ~ctx:stale g in
        check Alcotest.bool "A not transient" false
          (Attr.is_transient (Grammar.find_exn g' "A").Production.attrs));
  ]

(* --- the driver ------------------------------------------------------------------------------- *)

let driver_tests =
  let open Builder in
  let left_recursive () =
    Grammar.make_exn ~start:"E"
      [
        prod "E" (e "E" @: c '-' @: e "N" <|> e "N");
        prod "N" (plus (r '0' '9'));
      ]
  in
  [
    test "rows come back one per pass, in order" (fun () ->
        let g = Grammars.Minic.grammar () in
        let passes = Pipeline.passes () in
        let o = Driver.run_exn passes g in
        check
          Alcotest.(list string)
          "names"
          (List.map (fun (p : Pass.t) -> p.Pass.name) passes)
          (List.map (fun (r : Stats.pass_row) -> r.Stats.pass_name)
             o.Driver.rows));
    test "deltas are consistent across rows" (fun () ->
        let g = Grammars.Minic.grammar () in
        let o = Driver.run_exn (Pipeline.passes ()) g in
        let rec chain before = function
          | [] -> ()
          | (r : Stats.pass_row) :: rest ->
              check Alcotest.int
                (r.Stats.pass_name ^ " before")
                before r.Stats.prods_before;
              chain r.Stats.prods_after rest
        in
        chain (Grammar.length g) o.Driver.rows;
        check Alcotest.int "final"
          (Grammar.length o.Driver.grammar)
          (List.nth o.Driver.rows (List.length o.Driver.rows - 1))
            .Stats.prods_after);
    test "gate rejects left recursion before any optimization" (fun () ->
        match Driver.run (Pipeline.passes ()) (left_recursive ()) with
        | Error ds ->
            check Alcotest.bool "an error" true
              (List.exists Diagnostic.is_error ds)
        | Ok _ -> Alcotest.fail "expected rejection");
    test "a repair pass runs before the gate" (fun () ->
        match
          Driver.run (Pass.leftrec :: Pipeline.passes ()) (left_recursive ())
        with
        | Error _ -> Alcotest.fail "leftrec should have repaired it"
        | Ok o ->
            let eng = Engine.prepare_exn o.Driver.grammar in
            check Alcotest.bool "parses" true (Engine.accepts eng "8-3-2"));
    test "lint warnings land in the outcome" (fun () ->
        let g =
          Grammar.make_exn ~start:"S" [ prod "S" (c 'a' <|> c 'a') ]
        in
        let o = Driver.run_exn (Pipeline.passes ()) g in
        check Alcotest.bool "warned" true (o.Driver.warnings <> []);
        check Alcotest.bool "no hard error" true
          (not (List.exists Diagnostic.is_error o.Driver.warnings)));
    test "dump_after sees every intermediate grammar" (fun () ->
        let seen = ref [] in
        let dump_after (p : Pass.t) (g' : Grammar.t) =
          seen := (p.Pass.name, Grammar.length g') :: !seen
        in
        let o =
          Driver.run_exn ~dump_after (Pipeline.passes ())
            (Grammars.Minic.grammar ())
        in
        check Alcotest.int "one per pass"
          (List.length o.Driver.rows)
          (List.length !seen);
        check Alcotest.int "last matches outcome"
          (Grammar.length o.Driver.grammar)
          (snd (List.hd !seen)));
    test "on_pass streams rows as they are measured" (fun () ->
        let streamed = ref [] in
        let on_pass (r : Stats.pass_row) =
          streamed := r.Stats.pass_name :: !streamed
        in
        let o =
          Driver.run_exn ~on_pass (Pipeline.passes ())
            (Grammars.Minic.grammar ())
        in
        check
          Alcotest.(list string)
          "same rows"
          (List.map (fun (r : Stats.pass_row) -> r.Stats.pass_name)
             o.Driver.rows)
          (List.rev !streamed));
    test "verify accepts the full pipeline on minic" (fun () ->
        match
          Driver.run ~verify:true (Pipeline.passes ())
            (Grammars.Minic.grammar ())
        with
        | Ok _ -> ()
        | Error ds ->
            Alcotest.failf "verify rejected: %s"
              (String.concat "; " (List.map Diagnostic.to_string ds)));
    test "verify catches a pass that breaks the grammar" (fun () ->
        let vandal =
          Pass.v ~name:"vandal" ~doc:"drop every production but the start"
            (fun _ g ->
              Grammar.make_exn ~start:(Grammar.start g)
                [ prod (Grammar.start g) (e "Gone") ])
        in
        match Driver.run ~verify:true [ vandal ] (Grammars.Calc.grammar ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected verification failure");
    test "parser_of routes through the gated driver" (fun () ->
        (match Rats.parser_of (left_recursive ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
        match
          Rats.parser_of ~passes:(Pass.leftrec :: Pipeline.passes ())
            (left_recursive ())
        with
        | Ok eng -> check Alcotest.bool "parses" true (Engine.accepts eng "1-2")
        | Error _ -> Alcotest.fail "repair via ?passes failed");
    test "find_pass knows every registered name" (fun () ->
        List.iter
          (fun (p : Pass.t) ->
            match Pipeline.find_pass p.Pass.name with
            | Some q -> check Alcotest.string p.Pass.name p.Pass.name q.Pass.name
            | None -> Alcotest.failf "%s not found" p.Pass.name)
          (Pipeline.all_passes ());
        check Alcotest.bool "unknown is None" true
          (Pipeline.find_pass "nosuch" = None));
  ]

(* --- the ladder and the full pipeline ------------------------------------------------------- *)

let pipeline_tests =
  [
    test "ladder rungs mirror the registry" (fun () ->
        let rungs = Pipeline.ladder (Grammars.Calc.grammar ()) in
        check
          Alcotest.(list string)
          "labels"
          (List.map (fun (s : Pipeline.step) -> s.Pipeline.label)
             (Pipeline.registry ()))
          (List.map (fun (r : Pipeline.rung) -> r.Pipeline.name) rungs));
    test "pipeline passes are the registry steps flattened" (fun () ->
        check
          Alcotest.(list string)
          "names"
          (List.concat_map
             (fun (s : Pipeline.step) ->
               List.map (fun (p : Pass.t) -> p.Pass.name) s.Pipeline.passes)
             (Pipeline.registry ()))
          (List.map (fun (p : Pass.t) -> p.Pass.name) (Pipeline.passes ())));
    test "ladder has eleven rungs in order" (fun () ->
        let rungs = Pipeline.ladder (Grammars.Calc.grammar ()) in
        check Alcotest.int "count" 11 (List.length rungs);
        check Alcotest.string "first" "baseline" (List.hd rungs).Pipeline.name;
        check Alcotest.string "tenth" "+lean-values"
          (List.nth rungs 9).Pipeline.name;
        check Alcotest.string "last" "+bytecode"
          (List.nth rungs 10).Pipeline.name);
    test "every rung parses the calc corpus identically" (fun () ->
        let g = Grammars.Calc.grammar () in
        let rng = Rng.create 11 in
        let inputs =
          List.init 10 (fun _ -> Grammars.Corpus.arith rng ~size:12)
        in
        let reference = Engine.prepare_exn ~config:Config.naive g in
        List.iter
          (fun (rung : Pipeline.rung) ->
            let eng = Engine.prepare_exn ~config:rung.config rung.grammar in
            List.iter
              (fun input ->
                check Alcotest.bool
                  (Printf.sprintf "%s on %S" rung.name input)
                  (Engine.accepts reference input)
                  (Engine.accepts eng input))
              inputs)
          (Pipeline.ladder g));
    test "memo entries shrink along the ladder" (fun () ->
        let g = Grammars.Minic.grammar () in
        let src = Grammars.Corpus.minic (Rng.create 3) ~functions:4 in
        let entries (rung : Pipeline.rung) =
          let eng = Engine.prepare_exn ~config:rung.config rung.grammar in
          Stats.memo_entries (Engine.run eng src).Engine.stats
        in
        let rungs = Pipeline.ladder g in
        let baseline = entries (List.hd rungs) in
        let final = entries (List.nth rungs 9) in
        check Alcotest.bool "reduced" true (final < baseline));
    test "optimize shrinks the minic grammar" (fun () ->
        let g = Grammars.Minic.grammar () in
        let g' = Pipeline.optimize g in
        check Alcotest.bool "fewer productions" true
          (Grammar.length g' < Grammar.length g));
    test "optimize preserves minic values" (fun () ->
        let g = Grammars.Minic.grammar () in
        let g' = Pipeline.optimize g in
        let src = Grammars.Corpus.minic (Rng.create 5) ~functions:3 in
        let e1 = Engine.prepare_exn ~config:Config.naive g in
        let e2 = Engine.prepare_exn ~config:Config.optimized g' in
        match (Engine.parse e1 src, Engine.parse e2 src) with
        | Ok a, Ok b -> check Alcotest.bool "equal" true (Value.equal a b)
        | _ -> Alcotest.fail "parse failure");
    test "prepare_optimized end to end" (fun () ->
        match Pipeline.prepare_optimized (Grammars.Json.grammar ()) with
        | Ok eng ->
            check Alcotest.bool "parses" true
              (Engine.accepts eng {|{"a": [1, 2, null]}|})
        | Error _ -> Alcotest.fail "prepare failed");
  ]

let () =
  Alcotest.run "optimize"
    [
      ("prune", prune_tests);
      ("transient", transient_tests);
      ("terminal", terminal_tests);
      ("inline", inline_tests);
      ("fold", fold_tests);
      ("factor", factor_tests);
      ("leftrec", leftrec_tests);
      ("desugar", desugar_tests);
      ("analysis-ctx", ctx_tests);
      ("driver", driver_tests);
      ("pipeline", pipeline_tests);
    ]
