(* Property tests for incremental parse sessions.

   The headline invariant: for any grammar, initial input and edit
   script, [Session.reparse] is observationally identical to a cold
   parse of the final buffer — same value under [Value.equal], same
   farthest-failure position, same expected set, byte-identical
   rendered error message. Checked after every reparse, under both
   back ends and both memo strategies, with single edits and composed
   multi-edit batches.

   Grammar and input generation mirrors test_props: stratified
   non-recursive grammars over a 4-letter alphabet, inputs from a
   directed walk with a mutation chance so rejecting buffers (and thus
   the cold-fallback error path) stay in the mix. *)

open Rats
module Gen = QCheck.Gen

let alphabet = [ 'a'; 'b'; 'c'; 'd' ]
let gen_char = Gen.oneofl alphabet

let gen_charset st =
  let s = ref Charset.empty in
  List.iter (fun c -> if Gen.bool st then s := Charset.add c !s) alphabet;
  if Charset.is_empty !s then Charset.singleton 'a' else !s

let gen_short_string st =
  let n = 1 + Gen.int_bound 2 st in
  String.init n (fun _ -> gen_char st)

let rec gen_expr ~refs ~depth st : Expr.t =
  if depth <= 0 then gen_leaf ~refs st
  else
    match Gen.int_bound 13 st with
    | 0 | 1 ->
        Expr.seq
          (List.init (2 + Gen.int_bound 1 st) (fun _ ->
               gen_expr ~refs ~depth:(depth - 1) st))
    | 2 | 3 ->
        Expr.alt
          (List.init (2 + Gen.int_bound 1 st) (fun _ ->
               gen_expr ~refs ~depth:(depth - 1) st))
    | 4 -> Expr.star (gen_consuming ~refs ~depth:(depth - 1) st)
    | 5 -> Expr.plus (gen_consuming ~refs ~depth:(depth - 1) st)
    | 6 -> Expr.opt (gen_expr ~refs ~depth:(depth - 1) st)
    | 7 -> Expr.and_ (gen_expr ~refs ~depth:(depth - 1) st)
    | 8 -> Expr.not_ (gen_expr ~refs ~depth:(depth - 1) st)
    | 9 -> Expr.bind "x" (gen_expr ~refs ~depth:(depth - 1) st)
    | 10 -> Expr.token (gen_expr ~refs ~depth:(depth - 1) st)
    | 11 -> Expr.node "N" (gen_expr ~refs ~depth:(depth - 1) st)
    | 12 -> Expr.drop (gen_expr ~refs ~depth:(depth - 1) st)
    | _ ->
        (* Stateful constructs: sessions must stay correct when entries
           depend on the state tables (version seeding, not extent
           tracking, is what protects these). *)
        if Gen.bool st then
          Expr.record "T" (gen_consuming ~refs ~depth:(depth - 1) st)
        else
          Expr.member "T" (Gen.bool st)
            (gen_consuming ~refs ~depth:(depth - 1) st)

and gen_leaf ~refs st =
  match Gen.int_bound 5 st with
  | 0 -> Expr.chr (gen_char st)
  | 1 -> Expr.str (gen_short_string st)
  | 2 -> Expr.cls (gen_charset st)
  | 3 -> Expr.empty
  | 4 -> (
      match refs with
      | [] -> Expr.chr (gen_char st)
      | _ -> Expr.ref_ (List.nth refs (Gen.int_bound (List.length refs - 1) st))
      )
  | _ -> Expr.any ()

and gen_consuming ~refs ~depth st =
  let leaf =
    match Gen.int_bound 2 st with
    | 0 -> Expr.chr (gen_char st)
    | 1 -> Expr.cls (gen_charset st)
    | _ -> Expr.str (gen_short_string st)
  in
  if depth > 0 && Gen.bool st then
    Expr.seq [ leaf; gen_expr ~refs ~depth:(depth - 1) st ]
  else leaf

let gen_grammar st : Grammar.t =
  let n = 2 + Gen.int_bound 2 st in
  let name i = Printf.sprintf "P%d" i in
  let prods =
    List.init n (fun i ->
        let refs = List.init (n - i - 1) (fun j -> name (i + j + 1)) in
        Production.v (name i) (gen_expr ~refs ~depth:3 st))
  in
  Grammar.make_exn ~start:"P0" prods

let gen_input g st =
  let buf = Buffer.create 32 in
  let rec walk budget (e : Expr.t) =
    if !budget <= 0 then ()
    else
      match e.Expr.it with
      | Expr.Empty | Expr.Fail _ -> ()
      | Expr.Any -> Buffer.add_char buf (gen_char st)
      | Expr.Chr c -> Buffer.add_char buf c
      | Expr.Str s -> Buffer.add_string buf s
      | Expr.Cls set -> (
          match Charset.choose set with
          | Some c -> Buffer.add_char buf c
          | None -> ())
      | Expr.Ref n -> (
          decr budget;
          match Grammar.find g n with
          | Some p -> walk budget p.Production.expr
          | None -> ())
      | Expr.Seq es -> List.iter (walk budget) es
      | Expr.Alt alts ->
          let i = Gen.int_bound (List.length alts - 1) st in
          walk budget (List.nth alts i).Expr.body
      | Expr.Star x ->
          for _ = 1 to Gen.int_bound 2 st do
            walk budget x
          done
      | Expr.Plus x ->
          for _ = 1 to 1 + Gen.int_bound 1 st do
            walk budget x
          done
      | Expr.Opt x -> if Gen.bool st then walk budget x
      | Expr.And _ | Expr.Not _ -> ()
      | Expr.Bind (_, x) | Expr.Token x | Expr.Node (_, x) | Expr.Drop x
      | Expr.Splice x | Expr.Record (_, x) | Expr.Member (_, _, x) ->
          walk budget x
  in
  (match Grammar.find g (Grammar.start g) with
  | Some p -> walk (ref 40) p.Production.expr
  | None -> ());
  let s = Buffer.contents buf in
  if Gen.bool st || String.length s = 0 then s
  else
    let i = Gen.int_bound (String.length s - 1) st in
    String.mapi (fun j c -> if j = i then gen_char st else c) s

(* An edit script: a list of batches; each batch is applied in full
   before one reparse (so relocation composes across edits). Offsets
   are generated against the evolving buffer length, tracked here so
   every edit is in bounds by construction. *)

type edit = { start : int; old_len : int; replacement : string }

let gen_replacement g st =
  match Gen.int_bound 3 st with
  | 0 -> ""
  | 1 -> String.init (1 + Gen.int_bound 3 st) (fun _ -> gen_char st)
  | 2 ->
      (* Grammar-directed snippets make structure-preserving edits more
         likely, which is where memo reuse actually fires. *)
      let s = gen_input g st in
      if String.length s > 6 then String.sub s 0 6 else s
  | _ -> gen_short_string st

let gen_script g input st =
  let len = ref (String.length input) in
  let batches = 1 + Gen.int_bound 3 st in
  List.init batches (fun _ ->
      let edits = 1 + Gen.int_bound 1 st in
      List.init edits (fun _ ->
          let start = Gen.int_bound (max 0 !len) st in
          let old_len = min (!len - start) (Gen.int_bound 3 st) in
          let replacement = gen_replacement g st in
          len := !len - old_len + String.length replacement;
          { start; old_len; replacement }))

let gen_case st =
  let rec retry k =
    let g = gen_grammar st in
    if Analysis.check (Analysis.analyze g) = [] then g
    else if k > 50 then Grammar.make_exn [ Production.v "P0" (Expr.chr 'a') ]
    else retry (k + 1)
  in
  let g = retry 0 in
  let input = gen_input g st in
  (g, input, gen_script g input st)

let print_case (g, input, script) =
  Printf.sprintf "grammar:\n%s\ninput: %S\nscript: %s"
    (Pretty.grammar_to_string g)
    input
    (String.concat "; "
       (List.map
          (fun batch ->
            "["
            ^ String.concat ", "
                (List.map
                   (fun e ->
                     Printf.sprintf "@%d -%d +%S" e.start e.old_len
                       e.replacement)
                   batch)
            ^ "]")
          script))

let arb_case = QCheck.make ~print:print_case gen_case

let splice text { start; old_len; replacement } =
  String.sub text 0 start
  ^ replacement
  ^ String.sub text (start + old_len) (String.length text - start - old_len)

(* Full observation, error message included: the session contract is
   byte-identical reports, not just equal positions. *)
type obs = Accept of Value.t | Reject of int * string list * string

let obs_of = function
  | Ok v -> Accept v
  | Error e ->
      Reject
        ( e.Parse_error.position,
          e.Parse_error.expected,
          Parse_error.to_string e )

let obs_equal a b =
  match (a, b) with
  | Accept va, Accept vb -> Value.equal va vb
  | Reject (pa, ea, ma), Reject (pb, eb, mb) ->
      pa = pb && ea = eb && String.equal ma mb
  | Accept _, Reject _ | Reject _, Accept _ -> false

let obs_print = function
  | Accept v -> "accept " ^ Value.to_string v
  | Reject (p, e, _) ->
      Printf.sprintf "reject@%d [%s]" p (String.concat "; " e)

let configs =
  [
    ("closure-chunked", Config.optimized);
    ("closure-hashtable", Config.packrat);
    ("vm", Config.vm);
    ( "vm-hashtable",
      Config.with_backend Config.Bytecode Config.packrat );
  ]

let session_equiv_prop (label, cfg) count =
  QCheck.Test.make
    ~name:(Printf.sprintf "reparse = cold parse of final buffer (%s)" label)
    ~count arb_case
    (fun (g, input, script) ->
      match Engine.prepare ~config:cfg g with
      | Error _ -> true
      | Ok eng ->
          let session = Session.create eng input in
          let check tag =
            let warm = obs_of (Session.reparse session) in
            let cold = obs_of (parse eng (Session.text session)) in
            if not (obs_equal warm cold) then
              QCheck.Test.fail_reportf
                "%s: session %s, cold %s (buffer %S)" tag (obs_print warm)
                (obs_print cold) (Session.text session)
          in
          check "initial";
          let text = ref input in
          List.iteri
            (fun i batch ->
              List.iter
                (fun e ->
                  text := splice !text e;
                  Session.apply_edit session ~start:e.start ~old_len:e.old_len
                    ~replacement:e.replacement)
                batch;
              (* The session's own splice must agree with the spec. *)
              if not (String.equal !text (Session.text session)) then
                QCheck.Test.fail_reportf "buffer mismatch: %S vs %S" !text
                  (Session.text session);
              check (Printf.sprintf "batch %d" i))
            script;
          true)

let session_props =
  List.map (fun c -> session_equiv_prop c 150) configs

(* Error rendering is deterministic: the same failing parse renders the
   same message on repeated runs and on both back ends (expected sets
   are sorted before display, so trace-discovery order cannot leak). *)
let determinism_props =
  [
    QCheck.Test.make
      ~name:"error messages are byte-identical across runs and backends"
      ~count:300 arb_case
      (fun (g, input, _) ->
        match
          ( Engine.prepare ~config:Config.packrat g,
            Engine.prepare
              ~config:(Config.with_backend Config.Bytecode Config.packrat) g )
        with
        | Ok closure, Ok vm -> (
            match (parse closure input, parse vm input) with
            | Ok _, Ok _ -> true
            | Error e1, Error e2 -> (
                match parse closure input with
                | Ok _ -> false
                | Error e1' ->
                    String.equal (Parse_error.to_string e1)
                      (Parse_error.to_string e1')
                    && String.equal (Parse_error.to_string e1)
                         (Parse_error.to_string e2))
            | _ -> false)
        | Error _, Error _ -> true
        | _ -> false);
  ]

(* Stats bookkeeping: reuse counters are per-reparse (reset each time),
   and an unedited reparse reuses without relocating. *)
let unit_tests =
  let calc () =
    Engine.prepare_exn ~config:Config.optimized
      (Pipeline.optimize (Grammars.Calc.grammar ()))
  in
  [
    Alcotest.test_case "unedited reparse reuses, never relocates" `Quick
      (fun () ->
        let s = Session.create (calc ()) "1+2*(3-4)" in
        (match Session.reparse s with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "parse failed: %s" (Parse_error.message e));
        Session.apply_edit s ~start:0 ~old_len:0 ~replacement:"";
        ignore (Session.reparse s);
        let st = Session.stats s in
        Alcotest.(check bool) "reused > 0" true (st.Stats.memo_reused > 0);
        Alcotest.(check int) "relocated = 0" 0 st.Stats.memo_relocated);
    Alcotest.test_case "out-of-bounds edits are rejected" `Quick (fun () ->
        let s = Session.create (calc ()) "1+2" in
        let bad f =
          match f () with
          | () -> Alcotest.fail "expected Invalid_argument"
          | exception Invalid_argument _ -> ()
        in
        bad (fun () ->
            Session.apply_edit s ~start:(-1) ~old_len:0 ~replacement:"");
        bad (fun () ->
            Session.apply_edit s ~start:0 ~old_len:4 ~replacement:"");
        bad (fun () ->
            Session.apply_edit s ~start:4 ~old_len:0 ~replacement:""));
    Alcotest.test_case "edit at buffer end appends" `Quick (fun () ->
        let s = Session.create (calc ()) "1+2" in
        ignore (Session.reparse s);
        Session.apply_edit s ~start:3 ~old_len:0 ~replacement:"*3";
        Alcotest.(check string) "buffer" "1+2*3" (Session.text s);
        match Session.reparse s with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "parse failed: %s" (Parse_error.message e));
  ]

(* Arena-recycling equivalence: the memo arena and pooled scratch
   introduced for the allocation-free hot path must be invisible.

   Two angles, both over closure and VM back ends, governed and
   ungoverned:

   - Twin sessions driven through the identical edit script must agree
     on every observation AND on every [Stats] counter at every step —
     one twin runs on an engine whose scratch pool is already warm from
     unrelated parses, so a stale pooled arena, value slot or bucket
     table would surface as a divergence.

   - After the full script (arena grown, chunks freed and recycled),
     the session's reparse must match a fresh session over the same
     final buffer — cold store, never-used arena — on value, farthest
     position, expected set and rendered message. When nothing survived
     the edits ([memo_reused = 0]) the recycled store is semantically
     cold too, and the full counter set must match the fresh store's. *)

let governed_limits = Limits.v ~fuel:200_000 ~max_depth:200 ()

let recycle_configs =
  [
    ("closure", Config.optimized);
    ("vm", Config.vm);
    ("closure-governed", Config.with_limits governed_limits Config.optimized);
    ("vm-governed", Config.with_limits governed_limits Config.vm);
  ]

let stats_fields s = Stats.fields s

let check_stats_equal tag a b =
  let fa = stats_fields a and fb = stats_fields b in
  if fa <> fb then
    QCheck.Test.fail_reportf "%s: stats diverge:\n  %s\n  %s" tag
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fa))
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fb))

let twin_stats_prop (label, cfg) count =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "twin sessions: identical stats at every step (%s)"
         label)
    ~count arb_case
    (fun (g, input, script) ->
      match Engine.prepare ~config:cfg g with
      | Error _ -> true
      | Ok eng ->
          (* Warm one twin's scratch pool with unrelated inputs first;
             recycled state must not leak into the session runs. *)
          ignore (parse eng "abab");
          ignore (parse eng "");
          let sa = Session.create eng input in
          let sb = Session.create eng input in
          let step tag =
            let ra = obs_of (Session.reparse sa) in
            let rb = obs_of (Session.reparse sb) in
            if not (obs_equal ra rb) then
              QCheck.Test.fail_reportf "%s: %s vs %s" tag (obs_print ra)
                (obs_print rb);
            check_stats_equal tag (Session.stats sa) (Session.stats sb)
          in
          step "initial";
          List.iteri
            (fun i batch ->
              List.iter
                (fun e ->
                  Session.apply_edit sa ~start:e.start ~old_len:e.old_len
                    ~replacement:e.replacement;
                  Session.apply_edit sb ~start:e.start ~old_len:e.old_len
                    ~replacement:e.replacement)
                batch;
              step (Printf.sprintf "batch %d" i))
            script;
          true)

let recycled_vs_fresh_prop (label, cfg) count =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "recycled store = fresh cold store (%s)" label)
    ~count arb_case
    (fun (g, input, script) ->
      match Engine.prepare ~config:cfg g with
      | Error _ -> true
      | Ok eng ->
          let s = Session.create eng input in
          ignore (Session.reparse s);
          List.iter
            (fun batch ->
              List.iter
                (fun e ->
                  Session.apply_edit s ~start:e.start ~old_len:e.old_len
                    ~replacement:e.replacement)
                batch;
              ignore (Session.reparse s))
            script;
          (* One more edit cycle over the now well-recycled arena,
             compared against a never-used store on the same buffer. *)
          let tail = if String.length (Session.text s) = 0 then "ab" else "" in
          Session.apply_edit s ~start:0 ~old_len:0 ~replacement:tail;
          let recycled = obs_of (Session.reparse s) in
          let fresh_session = Session.create eng (Session.text s) in
          let fresh = obs_of (Session.reparse fresh_session) in
          if not (obs_equal recycled fresh) then
            QCheck.Test.fail_reportf "recycled %s, fresh %s (buffer %S)"
              (obs_print recycled) (obs_print fresh) (Session.text s);
          let st = Session.stats s in
          if st.Stats.memo_reused = 0 then
            check_stats_equal "no-survivor reparse" st
              (Session.stats fresh_session);
          true)

let recycle_props =
  List.map (fun c -> twin_stats_prop c 60) recycle_configs
  @ List.map (fun c -> recycled_vs_fresh_prop c 60) recycle_configs

let () =
  let to_alco = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "session"
    [
      ("session-equivalence", to_alco session_props);
      ("arena-recycling", to_alco recycle_props);
      ("error-determinism", to_alco determinism_props);
      ("session-unit", unit_tests);
    ]
