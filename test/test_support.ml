(* Unit tests for the support substrate: spans, sources, diagnostics and
   the deterministic PRNG. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* Substring test, used by a few message assertions. *)
let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- Span ------------------------------------------------------------------ *)

let span_tests =
  [
    test "v and accessors" (fun () ->
        let s = Span.v ~start_:3 ~stop:7 in
        check Alcotest.int "start" 3 (Span.start s);
        check Alcotest.int "stop" 7 (Span.stop s);
        check Alcotest.int "length" 4 (Span.length s));
    test "rejects negative start" (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Span.v: negative start") (fun () ->
            ignore (Span.v ~start_:(-1) ~stop:0)));
    test "rejects stop before start" (fun () ->
        Alcotest.check_raises "inverted"
          (Invalid_argument "Span.v: stop before start") (fun () ->
            ignore (Span.v ~start_:5 ~stop:4)));
    test "point is empty" (fun () ->
        check Alcotest.int "len" 0 (Span.length (Span.point 9)));
    test "dummy detection" (fun () ->
        check Alcotest.bool "dummy" true (Span.is_dummy Span.dummy);
        check Alcotest.bool "not dummy" false
          (Span.is_dummy (Span.v ~start_:0 ~stop:1)));
    test "union covers both" (fun () ->
        let u = Span.union (Span.v ~start_:2 ~stop:4) (Span.v ~start_:7 ~stop:9) in
        check Alcotest.int "start" 2 (Span.start u);
        check Alcotest.int "stop" 9 (Span.stop u));
    test "union absorbs dummy" (fun () ->
        let s = Span.v ~start_:2 ~stop:4 in
        check Alcotest.bool "left" true (Span.equal s (Span.union Span.dummy s));
        check Alcotest.bool "right" true (Span.equal s (Span.union s Span.dummy)));
    test "contains is half-open" (fun () ->
        let s = Span.v ~start_:2 ~stop:4 in
        check Alcotest.bool "below" false (Span.contains s 1);
        check Alcotest.bool "start" true (Span.contains s 2);
        check Alcotest.bool "last" true (Span.contains s 3);
        check Alcotest.bool "stop" false (Span.contains s 4));
    test "compare orders by start then stop" (fun () ->
        let a = Span.v ~start_:1 ~stop:5 and b = Span.v ~start_:1 ~stop:6 in
        check Alcotest.bool "lt" true (Span.compare a b < 0);
        check Alcotest.bool "eq" true
          (Span.compare a (Span.v ~start_:1 ~stop:5) = 0));
  ]

(* --- Source ------------------------------------------------------------------ *)

let source_tests =
  let src = Source.of_string ~name:"t.rats" "line one\nline two\r\nline three" in
  [
    test "name and length" (fun () ->
        check Alcotest.string "name" "t.rats" (Source.name src);
        check Alcotest.int "len" 29 (Source.length src));
    test "location at offset 0" (fun () ->
        let { Source.line; col } = Source.location src 0 in
        check Alcotest.int "line" 1 line;
        check Alcotest.int "col" 1 col);
    test "location mid second line" (fun () ->
        (* offset 9 is 'l' of "line two" *)
        let { Source.line; col } = Source.location src 9 in
        check Alcotest.int "line" 2 line;
        check Alcotest.int "col" 1 col);
    test "location clamps past end" (fun () ->
        let { Source.line; _ } = Source.location src 10_000 in
        check Alcotest.int "line" 3 line);
    test "line_text strips newline and CR" (fun () ->
        check Alcotest.string "l1" "line one" (Source.line_text src 1);
        check Alcotest.string "l2" "line two" (Source.line_text src 2);
        check Alcotest.string "l3" "line three" (Source.line_text src 3));
    test "line_text out of range" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Source.line_text")
          (fun () -> ignore (Source.line_text src 0)));
    test "line_count" (fun () ->
        check Alcotest.int "count" 3 (Source.line_count src));
    test "slice clamps" (fun () ->
        check Alcotest.string "inside" "one"
          (Source.slice src (Span.v ~start_:5 ~stop:8));
        check Alcotest.string "overhang" "three"
          (Source.slice src (Span.v ~start_:24 ~stop:99)));
    test "excerpt carries a caret" (fun () ->
        let s = Format.asprintf "%a" (Source.pp_excerpt src) (Span.v ~start_:5 ~stop:8) in
        check Alcotest.bool "caret" true (String.contains s '^');
        check Alcotest.bool "quotes line" true
          (String.length s >= String.length "line one"));
    test "read_file missing" (fun () ->
        match Source.read_file "/nonexistent/xyz" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "empty source has one line" (fun () ->
        let e = Source.of_string "" in
        check Alcotest.int "lines" 1 (Source.line_count e);
        let { Source.line; col } = Source.location e 0 in
        check Alcotest.int "line" 1 line;
        check Alcotest.int "col" 1 col);
    test "excerpt caret on empty source" (fun () ->
        let e = Source.of_string "" in
        let s = Format.asprintf "%a" (Source.pp_excerpt e) (Span.point 0) in
        check Alcotest.bool "caret" true (String.contains s '^'));
    test "location at end of CRLF file without trailing newline" (fun () ->
        let e = Source.of_string "ab\r\ncd" in
        let { Source.line; col } = Source.location e 6 in
        check Alcotest.int "line" 2 line;
        check Alcotest.int "col" 3 col;
        check Alcotest.string "last line" "cd" (Source.line_text e 2));
    test "excerpt caret clamps to the stripped line on CRLF" (fun () ->
        (* Offset 3 is the \n of the CRLF pair: column 4 of a line whose
           displayed text is 2 chars. The caret must sit at the line's
           end (one past the text), not drift into the terminator. *)
        let e = Source.of_string "ab\r\ncd\r\n" in
        let caret_col sp =
          let s = Format.asprintf "%a" (Source.pp_excerpt e) sp in
          match String.split_on_char '\n' s with
          | [ _; carets ] -> String.index carets '^' + 1
          | _ -> Alcotest.fail "expected two excerpt lines"
        in
        check Alcotest.int "on CR" 3 (caret_col (Span.point 2));
        check Alcotest.int "on LF clamped" 3 (caret_col (Span.point 3)));
    test "excerpt caret at EOF without trailing newline" (fun () ->
        let e = Source.of_string "ab" in
        let s = Format.asprintf "%a" (Source.pp_excerpt e) (Span.point 2) in
        check Alcotest.string "caret one past text" "ab\n  ^" s);
    test "pp_location renders line:col across line shapes" (fun () ->
        let e = Source.of_string ~name:"f" "a\r\nbb\nccc" in
        let at off = Format.asprintf "%a" (Source.pp_location e) off in
        check Alcotest.string "line1" "f:1:1" (at 0);
        check Alcotest.string "line2" "f:2:1" (at 3);
        check Alcotest.string "line3 end (no final newline)" "f:3:4" (at 9));
  ]

(* --- Diagnostic ----------------------------------------------------------------- *)

let diagnostic_tests =
  [
    test "errorf formats" (fun () ->
        let d = Diagnostic.errorf "bad %s %d" "thing" 3 in
        check Alcotest.string "msg" "bad thing 3" d.Diagnostic.message;
        check Alcotest.bool "is_error" true (Diagnostic.is_error d));
    test "warning is not error" (fun () ->
        check Alcotest.bool "warn" false
          (Diagnostic.is_error (Diagnostic.warning "w")));
    test "to_string without source" (fun () ->
        let s = Diagnostic.to_string (Diagnostic.error "boom") in
        check Alcotest.string "rendered" "error: boom" s);
    test "to_string with notes" (fun () ->
        let s =
          Diagnostic.to_string (Diagnostic.error ~notes:[ "hint" ] "boom")
        in
        check Alcotest.bool "note shown" true
          (contains s "note: hint"));
    test "to_string with source location" (fun () ->
        let src = Source.of_string ~name:"f" "abc\ndef" in
        let d = Diagnostic.error ~span:(Span.v ~start_:4 ~stop:5) "nope" in
        let s = Diagnostic.to_string ~source:src d in
        check Alcotest.bool "loc" true (contains s "f:2:1"));
    test "fail raises" (fun () ->
        match Diagnostic.fail "x" with
        | exception Diagnostic.Fail d ->
            check Alcotest.string "msg" "x" d.Diagnostic.message
        | _ -> Alcotest.fail "expected Fail");
  ]

(* --- Rng -------------------------------------------------------------------------- *)

let rng_tests =
  [
    test "same seed, same stream" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 50 do
          check Alcotest.int "step" (Rng.int a 1000) (Rng.int b 1000)
        done);
    test "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let va = List.init 20 (fun _ -> Rng.int a 1_000_000) in
        let vb = List.init 20 (fun _ -> Rng.int b 1_000_000) in
        check Alcotest.bool "differ" true (va <> vb));
    test "int stays in bounds" (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
        done);
    test "int rejects non-positive bound" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Rng.int (Rng.create 0) 0)));
    test "in_range inclusive" (fun () ->
        let r = Rng.create 4 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.in_range r 2 4 in
          if v = 2 then seen_lo := true;
          if v = 4 then seen_hi := true;
          if v < 2 || v > 4 then Alcotest.fail "out of range"
        done;
        check Alcotest.bool "lo" true !seen_lo;
        check Alcotest.bool "hi" true !seen_hi);
    test "copy forks the stream" (fun () ->
        let a = Rng.create 9 in
        ignore (Rng.int a 10);
        let b = Rng.copy a in
        check Alcotest.int "same next" (Rng.int a 1000) (Rng.int b 1000));
    test "pick_weighted respects zero weight" (fun () ->
        let r = Rng.create 5 in
        for _ = 1 to 200 do
          match Rng.pick_weighted r [ (0, `A); (5, `B) ] with
          | `A -> Alcotest.fail "picked zero-weight item"
          | `B -> ()
        done);
    test "pick_weighted rejects empty" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Rng.pick_weighted: non-positive total") (fun () ->
            ignore (Rng.pick_weighted (Rng.create 0) [])));
    test "bool produces both values" (fun () ->
        let r = Rng.create 11 in
        let t = ref false and f = ref false in
        for _ = 1 to 100 do
          if Rng.bool r then t := true else f := true
        done;
        check Alcotest.bool "both" true (!t && !f));
  ]

let () =
  Alcotest.run "support"
    [
      ("span", span_tests);
      ("source", source_tests);
      ("diagnostic", diagnostic_tests);
      ("rng", rng_tests);
    ]
