(* Unit tests for the support substrate: spans, sources, diagnostics and
   the deterministic PRNG. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* Substring test, used by a few message assertions. *)
let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- Span ------------------------------------------------------------------ *)

let span_tests =
  [
    test "v and accessors" (fun () ->
        let s = Span.v ~start_:3 ~stop:7 in
        check Alcotest.int "start" 3 (Span.start s);
        check Alcotest.int "stop" 7 (Span.stop s);
        check Alcotest.int "length" 4 (Span.length s));
    test "rejects negative start" (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Span.v: negative start") (fun () ->
            ignore (Span.v ~start_:(-1) ~stop:0)));
    test "rejects stop before start" (fun () ->
        Alcotest.check_raises "inverted"
          (Invalid_argument "Span.v: stop before start") (fun () ->
            ignore (Span.v ~start_:5 ~stop:4)));
    test "point is empty" (fun () ->
        check Alcotest.int "len" 0 (Span.length (Span.point 9)));
    test "dummy detection" (fun () ->
        check Alcotest.bool "dummy" true (Span.is_dummy Span.dummy);
        check Alcotest.bool "not dummy" false
          (Span.is_dummy (Span.v ~start_:0 ~stop:1)));
    test "union covers both" (fun () ->
        let u = Span.union (Span.v ~start_:2 ~stop:4) (Span.v ~start_:7 ~stop:9) in
        check Alcotest.int "start" 2 (Span.start u);
        check Alcotest.int "stop" 9 (Span.stop u));
    test "union absorbs dummy" (fun () ->
        let s = Span.v ~start_:2 ~stop:4 in
        check Alcotest.bool "left" true (Span.equal s (Span.union Span.dummy s));
        check Alcotest.bool "right" true (Span.equal s (Span.union s Span.dummy)));
    test "contains is half-open" (fun () ->
        let s = Span.v ~start_:2 ~stop:4 in
        check Alcotest.bool "below" false (Span.contains s 1);
        check Alcotest.bool "start" true (Span.contains s 2);
        check Alcotest.bool "last" true (Span.contains s 3);
        check Alcotest.bool "stop" false (Span.contains s 4));
    test "compare orders by start then stop" (fun () ->
        let a = Span.v ~start_:1 ~stop:5 and b = Span.v ~start_:1 ~stop:6 in
        check Alcotest.bool "lt" true (Span.compare a b < 0);
        check Alcotest.bool "eq" true
          (Span.compare a (Span.v ~start_:1 ~stop:5) = 0));
  ]

(* --- Source ------------------------------------------------------------------ *)

let source_tests =
  let src = Source.of_string ~name:"t.rats" "line one\nline two\r\nline three" in
  [
    test "name and length" (fun () ->
        check Alcotest.string "name" "t.rats" (Source.name src);
        check Alcotest.int "len" 29 (Source.length src));
    test "location at offset 0" (fun () ->
        let { Source.line; col } = Source.location src 0 in
        check Alcotest.int "line" 1 line;
        check Alcotest.int "col" 1 col);
    test "location mid second line" (fun () ->
        (* offset 9 is 'l' of "line two" *)
        let { Source.line; col } = Source.location src 9 in
        check Alcotest.int "line" 2 line;
        check Alcotest.int "col" 1 col);
    test "location clamps past end" (fun () ->
        let { Source.line; _ } = Source.location src 10_000 in
        check Alcotest.int "line" 3 line);
    test "line_text strips newline and CR" (fun () ->
        check Alcotest.string "l1" "line one" (Source.line_text src 1);
        check Alcotest.string "l2" "line two" (Source.line_text src 2);
        check Alcotest.string "l3" "line three" (Source.line_text src 3));
    test "line_text out of range" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Source.line_text")
          (fun () -> ignore (Source.line_text src 0)));
    test "line_count" (fun () ->
        check Alcotest.int "count" 3 (Source.line_count src));
    test "slice clamps" (fun () ->
        check Alcotest.string "inside" "one"
          (Source.slice src (Span.v ~start_:5 ~stop:8));
        check Alcotest.string "overhang" "three"
          (Source.slice src (Span.v ~start_:24 ~stop:99)));
    test "excerpt carries a caret" (fun () ->
        let s = Format.asprintf "%a" (Source.pp_excerpt src) (Span.v ~start_:5 ~stop:8) in
        check Alcotest.bool "caret" true (String.contains s '^');
        check Alcotest.bool "quotes line" true
          (String.length s >= String.length "line one"));
    test "read_file missing" (fun () ->
        match Source.read_file "/nonexistent/xyz" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "empty source has one line" (fun () ->
        let e = Source.of_string "" in
        check Alcotest.int "lines" 1 (Source.line_count e);
        let { Source.line; col } = Source.location e 0 in
        check Alcotest.int "line" 1 line;
        check Alcotest.int "col" 1 col);
    test "excerpt caret on empty source" (fun () ->
        let e = Source.of_string "" in
        let s = Format.asprintf "%a" (Source.pp_excerpt e) (Span.point 0) in
        check Alcotest.bool "caret" true (String.contains s '^'));
    test "location at end of CRLF file without trailing newline" (fun () ->
        let e = Source.of_string "ab\r\ncd" in
        let { Source.line; col } = Source.location e 6 in
        check Alcotest.int "line" 2 line;
        check Alcotest.int "col" 3 col;
        check Alcotest.string "last line" "cd" (Source.line_text e 2));
    test "excerpt caret clamps to the stripped line on CRLF" (fun () ->
        (* Offset 3 is the \n of the CRLF pair: column 4 of a line whose
           displayed text is 2 chars. The caret must sit at the line's
           end (one past the text), not drift into the terminator. *)
        let e = Source.of_string "ab\r\ncd\r\n" in
        let caret_col sp =
          let s = Format.asprintf "%a" (Source.pp_excerpt e) sp in
          match String.split_on_char '\n' s with
          | [ _; carets ] -> String.index carets '^' + 1
          | _ -> Alcotest.fail "expected two excerpt lines"
        in
        check Alcotest.int "on CR" 3 (caret_col (Span.point 2));
        check Alcotest.int "on LF clamped" 3 (caret_col (Span.point 3)));
    test "excerpt caret at EOF without trailing newline" (fun () ->
        let e = Source.of_string "ab" in
        let s = Format.asprintf "%a" (Source.pp_excerpt e) (Span.point 2) in
        check Alcotest.string "caret one past text" "ab\n  ^" s);
    test "pp_location renders line:col across line shapes" (fun () ->
        let e = Source.of_string ~name:"f" "a\r\nbb\nccc" in
        let at off = Format.asprintf "%a" (Source.pp_location e) off in
        check Alcotest.string "line1" "f:1:1" (at 0);
        check Alcotest.string "line2" "f:2:1" (at 3);
        check Alcotest.string "line3 end (no final newline)" "f:3:4" (at 9));
  ]

(* --- Input ----------------------------------------------------------------------- *)

(* Unit coverage for the two-representation input layer; the end-to-end
   string-vs-Bigarray parse equivalence properties live in
   test_props.ml. *)

let big_of_string s =
  let b =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout (String.length s)
  in
  String.iteri (Bigarray.Array1.set b) s;
  b

let write_temp contents =
  let path = Filename.temp_file "rats_input" ".txt" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents);
  path

let input_tests =
  [
    test "accessors agree across representations" (fun () ->
        let s = "hello\nworld" in
        let str = Input.of_string s in
        let big = Input.of_bigstring (big_of_string s) in
        check Alcotest.int "length" (String.length s) (Input.length big);
        check Alcotest.bool "str not bigarray" false (Input.is_bigarray str);
        check Alcotest.bool "big is bigarray" true (Input.is_bigarray big);
        check Alcotest.string "to_string" s (Input.to_string big);
        check Alcotest.string "sub_string" "lo\nwo" (Input.sub_string big 3 5);
        for i = 0 to String.length s - 1 do
          check Alcotest.char "get" (Input.get str i) (Input.get big i)
        done);
    test "get is bounds-checked on both representations" (fun () ->
        Alcotest.check_raises "big past end" (Invalid_argument "Input.get")
          (fun () ->
            ignore (Input.get (Input.of_bigstring (big_of_string "ab")) 2));
        Alcotest.check_raises "str negative" (Invalid_argument "Input.get")
          (fun () -> ignore (Input.get (Input.of_string "ab") (-1))));
    test "blit_to_bytes copies out of a bigarray" (fun () ->
        let big = Input.of_bigstring (big_of_string "abcdef") in
        let dst = Bytes.make 4 '.' in
        Input.blit_to_bytes big 2 dst 1 3;
        check Alcotest.string "blit" ".cde" (Bytes.to_string dst);
        Alcotest.check_raises "overrun"
          (Invalid_argument "Input.blit_to_bytes") (fun () ->
            Input.blit_to_bytes big 4 dst 0 3));
    test "equal is byte-wise across representations" (fun () ->
        let big = Input.of_bigstring (big_of_string "abc") in
        check Alcotest.bool "eq" true (Input.equal (Input.of_string "abc") big);
        check Alcotest.bool "neq" false
          (Input.equal (Input.of_string "abd") big);
        check Alcotest.bool "shorter" false
          (Input.equal (Input.of_string "ab") big));
    test "map_file round-trips file bytes as a bigarray" (fun () ->
        let path = write_temp "line one\nline two\n" in
        (match Input.map_file path with
        | Error msg -> Alcotest.fail msg
        | Ok i ->
            check Alcotest.bool "mapped" true (Input.is_bigarray i);
            check Alcotest.string "bytes" "line one\nline two\n"
              (Input.to_string i));
        Sys.remove path);
    test "map_file of an empty file" (fun () ->
        let path = write_temp "" in
        (match Input.map_file path with
        | Error msg -> Alcotest.fail msg
        | Ok i ->
            check Alcotest.bool "still a bigarray" true (Input.is_bigarray i);
            check Alcotest.int "empty" 0 (Input.length i));
        Sys.remove path);
    test "map_file of a missing file is an error, not a raise" (fun () ->
        match Input.map_file "/nonexistent/rats-input" with
        | Error msg ->
            check Alcotest.bool "names the path" true
              (contains msg "/nonexistent/rats-input")
        | Ok _ -> Alcotest.fail "expected error");
  ]

(* --- mapped sources ---------------------------------------------------------------- *)

let mapped_source_tests =
  [
    test "map_file source resolves locations like a string one" (fun () ->
        let path = write_temp "line one\nline two" in
        (match Source.map_file path with
        | Error msg -> Alcotest.fail msg
        | Ok src ->
            check Alcotest.bool "mapped" true (Source.is_mapped src);
            check Alcotest.string "name" path (Source.name src);
            check Alcotest.string "text" "line one\nline two"
              (Source.text src);
            check Alcotest.int "lines" 2 (Source.line_count src);
            let { Source.line; col } = Source.location src 9 in
            check Alcotest.int "line" 2 line;
            check Alcotest.int "col" 1 col;
            check Alcotest.string "line_text" "line two"
              (Source.line_text src 2));
        Sys.remove path);
    test "editing a mapped source copies on write" (fun () ->
        let path = write_temp "1 + 2 * (3 - 4)" in
        (match Source.map_file path with
        | Error msg -> Alcotest.fail msg
        | Ok src ->
            ignore (Source.line_count src) (* force the index *);
            let p =
              Source.apply_edit src ~start:4 ~old_len:1 ~replacement:"42"
            in
            check Alcotest.bool "original still mapped" true
              (Source.is_mapped src);
            check Alcotest.bool "patched is string-backed" false
              (Source.is_mapped p);
            check Alcotest.string "patched text" "1 + 42 * (3 - 4)"
              (Source.text p));
        Sys.remove path);
    test "map_file of a missing file is an error" (fun () ->
        match Source.map_file "/nonexistent/rats-src" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "of_input shares the buffer and default name" (fun () ->
        let i = Input.of_bigstring (big_of_string "abc") in
        let src = Source.of_input i in
        check Alcotest.string "name" "<input>" (Source.name src);
        check Alcotest.bool "same buffer" true (Source.input src == i));
  ]

(* --- Diagnostic ----------------------------------------------------------------- *)

let diagnostic_tests =
  [
    test "errorf formats" (fun () ->
        let d = Diagnostic.errorf "bad %s %d" "thing" 3 in
        check Alcotest.string "msg" "bad thing 3" d.Diagnostic.message;
        check Alcotest.bool "is_error" true (Diagnostic.is_error d));
    test "warning is not error" (fun () ->
        check Alcotest.bool "warn" false
          (Diagnostic.is_error (Diagnostic.warning "w")));
    test "to_string without source" (fun () ->
        let s = Diagnostic.to_string (Diagnostic.error "boom") in
        check Alcotest.string "rendered" "error: boom" s);
    test "to_string with notes" (fun () ->
        let s =
          Diagnostic.to_string (Diagnostic.error ~notes:[ "hint" ] "boom")
        in
        check Alcotest.bool "note shown" true
          (contains s "note: hint"));
    test "to_string with source location" (fun () ->
        let src = Source.of_string ~name:"f" "abc\ndef" in
        let d = Diagnostic.error ~span:(Span.v ~start_:4 ~stop:5) "nope" in
        let s = Diagnostic.to_string ~source:src d in
        check Alcotest.bool "loc" true (contains s "f:2:1"));
    test "fail raises" (fun () ->
        match Diagnostic.fail "x" with
        | exception Diagnostic.Fail d ->
            check Alcotest.string "msg" "x" d.Diagnostic.message
        | _ -> Alcotest.fail "expected Fail");
  ]

(* --- Rng -------------------------------------------------------------------------- *)

let rng_tests =
  [
    test "same seed, same stream" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 50 do
          check Alcotest.int "step" (Rng.int a 1000) (Rng.int b 1000)
        done);
    test "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let va = List.init 20 (fun _ -> Rng.int a 1_000_000) in
        let vb = List.init 20 (fun _ -> Rng.int b 1_000_000) in
        check Alcotest.bool "differ" true (va <> vb));
    test "int stays in bounds" (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
        done);
    test "int rejects non-positive bound" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Rng.int (Rng.create 0) 0)));
    test "in_range inclusive" (fun () ->
        let r = Rng.create 4 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.in_range r 2 4 in
          if v = 2 then seen_lo := true;
          if v = 4 then seen_hi := true;
          if v < 2 || v > 4 then Alcotest.fail "out of range"
        done;
        check Alcotest.bool "lo" true !seen_lo;
        check Alcotest.bool "hi" true !seen_hi);
    test "copy forks the stream" (fun () ->
        let a = Rng.create 9 in
        ignore (Rng.int a 10);
        let b = Rng.copy a in
        check Alcotest.int "same next" (Rng.int a 1000) (Rng.int b 1000));
    test "pick_weighted respects zero weight" (fun () ->
        let r = Rng.create 5 in
        for _ = 1 to 200 do
          match Rng.pick_weighted r [ (0, `A); (5, `B) ] with
          | `A -> Alcotest.fail "picked zero-weight item"
          | `B -> ()
        done);
    test "pick_weighted rejects empty" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Rng.pick_weighted: non-positive total") (fun () ->
            ignore (Rng.pick_weighted (Rng.create 0) [])));
    test "bool produces both values" (fun () ->
        let r = Rng.create 11 in
        let t = ref false and f = ref false in
        for _ = 1 to 100 do
          if Rng.bool r then t := true else f := true
        done;
        check Alcotest.bool "both" true (!t && !f));
  ]

(* --- Source.apply_edit ------------------------------------------------------ *)

(* The patched line-start table must be indistinguishable from one
   rebuilt from the spliced text: same starts, same locations at every
   offset. The property drives random edits over random newline-heavy
   texts, forcing the index before the edit so the patch path (not the
   lazy rebuild) is what's exercised. *)

let splice text start old_len replacement =
  String.sub text 0 start
  ^ replacement
  ^ String.sub text (start + old_len) (String.length text - start - old_len)

let check_patched_equals_rebuilt text start old_len replacement =
  let src = Source.of_string text in
  ignore (Source.line_count src) (* force the index *);
  let patched = Source.apply_edit src ~start ~old_len ~replacement in
  let expect = Source.of_string (splice text start old_len replacement) in
  if not (String.equal (Source.text patched) (Source.text expect)) then
    QCheck.Test.fail_reportf "text mismatch: %S vs %S" (Source.text patched)
      (Source.text expect);
  if Source.line_count patched <> Source.line_count expect then
    QCheck.Test.fail_reportf "line_count %d vs %d (text %S)"
      (Source.line_count patched) (Source.line_count expect)
      (Source.text expect);
  for off = 0 to Source.length expect do
    let a = Source.location patched off and b = Source.location expect off in
    if a <> b then
      QCheck.Test.fail_reportf "location@%d: %d:%d vs %d:%d (text %S)" off
        a.Source.line a.Source.col b.Source.line b.Source.col
        (Source.text expect)
  done;
  true

let gen_edit_case =
  QCheck.Gen.(
    let text_gen =
      string_size ~gen:(oneofl [ 'a'; 'b'; '\n'; '\n' ]) (int_bound 40)
    in
    text_gen >>= fun text ->
    int_bound (String.length text) >>= fun start ->
    int_bound (String.length text - start) >>= fun old_len ->
    text_gen >>= fun replacement -> return (text, start, old_len, replacement))

let print_edit_case (text, start, old_len, replacement) =
  Printf.sprintf "%S @%d -%d +%S" text start old_len replacement

let source_edit_props =
  [
    QCheck.Test.make ~name:"patched line starts = rebuilt line starts"
      ~count:500
      (QCheck.make ~print:print_edit_case gen_edit_case)
      (fun (text, start, old_len, replacement) ->
        check_patched_equals_rebuilt text start old_len replacement);
  ]

let source_edit_tests =
  [
    test "edit before a lazy index stays lazy-correct" (fun () ->
        let src = Source.of_string "a\nb\nc" in
        let p = Source.apply_edit src ~start:2 ~old_len:1 ~replacement:"xx\ny" in
        check Alcotest.string "text" "a\nxx\ny\nc" (Source.text p);
        check Alcotest.int "lines" 4 (Source.line_count p));
    test "pure insertion shifts the suffix" (fun () ->
        ignore (check_patched_equals_rebuilt "one\ntwo\nthree" 4 0 "ins\n"));
    test "pure deletion drops starts in the window" (fun () ->
        ignore (check_patched_equals_rebuilt "one\ntwo\nthree" 3 5 ""));
    test "newline at the replacement boundary" (fun () ->
        ignore (check_patched_equals_rebuilt "ab\ncd" 2 1 "\n");
        ignore (check_patched_equals_rebuilt "ab\ncd" 3 0 "x\n"));
    test "whole-buffer replacement" (fun () ->
        ignore (check_patched_equals_rebuilt "a\nb" 0 3 "x\ny\nz"));
    test "out of bounds rejected" (fun () ->
        let src = Source.of_string "abc" in
        Alcotest.check_raises "past end" (Invalid_argument "Source.apply_edit")
          (fun () ->
            ignore (Source.apply_edit src ~start:2 ~old_len:2 ~replacement:"")));
  ]

(* --- Memo_arena ------------------------------------------------------------- *)

(* Low-level checks of the flat chunk store both engines sit on; the
   end-to-end invariants (identical parses across recycling) live in
   test_session.ml. *)

let memo_arena_tests =
  let open Memo_arena in
  let make () =
    (* two memo slots, slot 0 carries a value, slot 1 is lean *)
    create ~nslots:2 ~vmap:[| 0; -1 |]
  in
  [
    test "create starts cold" (fun () ->
        let a = make () in
        check Alcotest.int "idx_len" (-1) a.idx_len;
        check Alcotest.int "used" 0 a.used);
    test "alloc assigns and indexes chunks" (fun () ->
        let a = make () in
        reset a ~len:10;
        let c0 = alloc a 3 and c1 = alloc a 7 in
        check Alcotest.bool "distinct" true (c0 <> c1);
        check Alcotest.int "idx 3" c0 a.idx.(3);
        check Alcotest.int "idx 7" c1 a.idx.(7);
        check Alcotest.int "unset res" 0 a.res.((c0 * 2) + 1));
    test "growth preserves rows" (fun () ->
        let a = make () in
        reset a ~len:1000;
        let c0 = alloc a 0 in
        a.res.(c0 * 2) <- 5;
        a.vals.(c0) <- Value.Chr 'x';
        for p = 1 to 200 do
          ignore (alloc a p)
        done;
        check Alcotest.int "res kept" 5 a.res.(c0 * 2);
        check Alcotest.bool "val kept" true
          (Value.equal a.vals.(c0) (Value.Chr 'x')));
    test "free_chunk recycles ids and clears values" (fun () ->
        let a = make () in
        reset a ~len:10;
        let c = alloc a 2 in
        a.vals.(c) <- Value.Chr 'y';
        free_chunk a c;
        check Alcotest.bool "value cleared" true
          (Value.equal a.vals.(c) Value.Unit);
        let c' = alloc a 4 in
        check Alcotest.int "id reused" c c');
    test "release_values empties and marks cold" (fun () ->
        let a = make () in
        reset a ~len:10;
        let c = alloc a 1 in
        a.vals.(c) <- Value.Chr 'z';
        release_values a;
        check Alcotest.int "cold" (-1) a.idx_len;
        check Alcotest.int "used" 0 a.used;
        check Alcotest.bool "vals cleared" true
          (Value.equal a.vals.(c) Value.Unit));
    test "edit keeps, relocates and drops by extent" (fun () ->
        let a = make () in
        reset a ~len:20;
        (* chunk at 0 examined 2 bytes: safely before the splice *)
        let c0 = alloc a 0 in
        a.res.(c0 * 2) <- 1;
        a.exts.(c0 * 2) <- 2;
        a.cmax.(c0) <- 2;
        (* chunk at 6: inside the replaced window, must die *)
        ignore (alloc a 6);
        (* chunk at 12: past the window, relocates by the delta *)
        let c2 = alloc a 12 in
        a.res.(c2 * 2) <- 3;
        a.cmax.(c2) <- 1;
        (* replace 4 bytes at 5 with 2 bytes: delta -2 *)
        let reused, relocated = edit a ~start:5 ~old_len:4 ~new_len:2 in
        check Alcotest.int "reused" 2 reused;
        check Alcotest.int "relocated" 1 relocated;
        check Alcotest.int "kept at 0" c0 a.idx.(0);
        check Alcotest.int "moved to 10" c2 a.idx.(10);
        check Alcotest.int "old home cleared" (-1) a.idx.(12);
        check Alcotest.int "window cleared" (-1) a.idx.(6);
        check Alcotest.int "new len" 19 a.idx_len);
    test "edit drops straddling entries slot by slot" (fun () ->
        let a = make () in
        reset a ~len:20;
        (* chunk at 2 whose slot-0 entry examined far past the splice
           and whose slot-1 entry stopped short of it *)
        let c = alloc a 2 in
        a.res.(c * 2) <- 1;
        a.exts.(c * 2) <- 10;
        a.res.((c * 2) + 1) <- -1;
        a.exts.((c * 2) + 1) <- 1;
        a.cmax.(c) <- 10;
        let reused, _ = edit a ~start:4 ~old_len:2 ~new_len:2 in
        check Alcotest.int "chunk survives" 1 reused;
        check Alcotest.int "far entry dropped" 0 a.res.(c * 2);
        check Alcotest.int "near entry kept" (-1) a.res.((c * 2) + 1);
        check Alcotest.int "cmax tightened" 1 a.cmax.(c));
  ]

let () =
  let to_alco = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "support"
    [
      ("span", span_tests);
      ("source", source_tests);
      ("input", input_tests);
      ("source-mapped", mapped_source_tests);
      ("source-edit", source_edit_tests @ to_alco source_edit_props);
      ("memo-arena", memo_arena_tests);
      ("diagnostic", diagnostic_tests);
      ("rng", rng_tests);
    ]
