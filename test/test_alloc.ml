(* The lean-path allocation contract (DESIGN.md, "Memory
   architecture"): in recognizer mode no construct allocates, so
   steady-state bytes/parse is independent of input size. The probe's
   ladder isolates one construct per rung — a leak reintroduced in
   either backend fails here naming the construct, without waiting for
   the E9 bench gate. The measurements are [Gc.allocated_bytes] deltas
   over deterministic parses with warmed pools, so the numbers are
   exact, not sampled: this suite is noise-free by construction. *)

open Rats
module Probe = Rats_probe.Alloc_probe

let sizes = [ 4_000; 16_000; 64_000 ]

let pp_rows rows =
  String.concat ", "
    (List.map (fun (b, a) -> Printf.sprintf "%d:%.0f" b a) rows)

let configs = [ ("closure", Config.optimized); ("vm", Config.vm) ]

let ladder_tests =
  List.concat_map
    (fun (backend, config) ->
      List.map
        (fun (rung : Probe.rung) ->
          Alcotest.test_case
            (Printf.sprintf "%s is allocation-free (%s)" rung.Probe.r_name
               backend)
            `Quick
            (fun () ->
              let rows = Probe.measure_rung ~config ~sizes rung in
              if not (Probe.flat rows) then
                Alcotest.failf
                  "%s/%s: lean-path allocation grows with input (%s)"
                  rung.Probe.r_name backend (pp_rows rows)))
        (Probe.ladder ()))
    configs

(* The composed claim on real grammars: kind-erased calc and MiniJava
   (what [--recognize] and the degradation ladder run) parse seeded
   corpora grown 16x at constant bytes/parse on both backends. *)
let voidified_tests =
  List.concat_map
    (fun (backend, config) ->
      List.map
        (fun (gname, grammar, corpus_at) ->
          Alcotest.test_case
            (Printf.sprintf "voidified %s is size-independent (%s)" gname
               backend)
            `Quick
            (fun () ->
              let g = Pipeline.optimize (Probe.voidify grammar) in
              let eng = Engine.prepare_exn ~config g in
              let rows =
                List.map
                  (fun scale ->
                    let corpus = corpus_at scale in
                    ( String.length corpus,
                      Probe.bytes_per_parse eng (Input.of_string corpus) ))
                  [ 1; 4; 16 ]
              in
              if not (Probe.flat rows) then
                Alcotest.failf
                  "voidified %s/%s: allocation grows with input (%s)" gname
                  backend (pp_rows rows)))
        [
          ( "calc",
            Grammars.Calc.grammar (),
            fun scale ->
              Grammars.Corpus.arith (Rng.create 7) ~size:(2_000 * scale) );
          ( "minijava",
            Grammars.Minijava.grammar (),
            fun scale ->
              Grammars.Corpus.minijava (Rng.create 7) ~classes:(3 * scale) );
        ])
    configs

let () =
  Alcotest.run "alloc"
    [ ("lean-ladder", ladder_tests); ("voidified", voidified_tests) ]
