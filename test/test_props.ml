(* Property-based tests (qcheck, registered as alcotest cases).

   The central property of the whole system: every engine configuration
   and every optimization pass is observationally equivalent on random
   well-formed grammars and random inputs. Grammars are generated
   stratified (production i only references productions j > i) so they
   are never recursive; recursion is covered by handcrafted tests — what
   randomness buys here is coverage of operator interaction, which is
   where the subtle value-shape bugs live. *)

open Rats
module Gen = QCheck.Gen

let alphabet = [ 'a'; 'b'; 'c'; 'd' ]

(* --- generators ---------------------------------------------------------------- *)

let gen_char = Gen.oneofl alphabet

let gen_charset st =
  let s = ref Charset.empty in
  List.iter (fun c -> if Gen.bool st then s := Charset.add c !s) alphabet;
  if Charset.is_empty !s then Charset.singleton 'a' else !s

let gen_short_string st =
  let n = 1 + Gen.int_bound 2 st in
  String.init n (fun _ -> gen_char st)

(* A generated expression, together with whether it is guaranteed to
   consume input on success (needed for repetition bodies). *)
let rec gen_expr ~refs ~depth st : Expr.t =
  if depth <= 0 then gen_leaf ~refs st
  else
    match Gen.int_bound 13 st with
    | 0 | 1 ->
        Expr.seq
          (List.init (2 + Gen.int_bound 1 st) (fun _ ->
               gen_expr ~refs ~depth:(depth - 1) st))
    | 2 | 3 ->
        let label i =
          if Gen.bool st then Some (Printf.sprintf "L%d" i) else None
        in
        Expr.alt_labeled
          (List.mapi
             (fun i body -> { Expr.label = label i; body })
             (List.init (2 + Gen.int_bound 1 st) (fun _ ->
                  gen_expr ~refs ~depth:(depth - 1) st)))
    | 4 -> Expr.star (gen_consuming ~refs ~depth:(depth - 1) st)
    | 5 -> Expr.plus (gen_consuming ~refs ~depth:(depth - 1) st)
    | 6 -> Expr.opt (gen_expr ~refs ~depth:(depth - 1) st)
    | 7 -> Expr.and_ (gen_expr ~refs ~depth:(depth - 1) st)
    | 8 -> Expr.not_ (gen_expr ~refs ~depth:(depth - 1) st)
    | 9 -> Expr.bind "x" (gen_expr ~refs ~depth:(depth - 1) st)
    | 10 -> Expr.token (gen_expr ~refs ~depth:(depth - 1) st)
    | 11 -> Expr.node "N" (gen_expr ~refs ~depth:(depth - 1) st)
    | 12 -> Expr.drop (gen_expr ~refs ~depth:(depth - 1) st)
    | _ ->
        if Gen.bool st then
          Expr.record "T" (gen_consuming ~refs ~depth:(depth - 1) st)
        else Expr.member "T" (Gen.bool st) (gen_consuming ~refs ~depth:(depth - 1) st)

and gen_leaf ~refs st =
  match Gen.int_bound 5 st with
  | 0 -> Expr.chr (gen_char st)
  | 1 -> Expr.str (gen_short_string st)
  | 2 -> Expr.cls (gen_charset st)
  | 3 -> Expr.empty
  | 4 -> (
      match refs with
      | [] -> Expr.chr (gen_char st)
      | _ -> Expr.ref_ (List.nth refs (Gen.int_bound (List.length refs - 1) st)))
  | _ -> Expr.any ()

and gen_consuming ~refs ~depth st =
  (* Guaranteed to consume at least one byte on success: a consuming
     leaf, optionally followed by anything. *)
  let leaf =
    match Gen.int_bound 2 st with
    | 0 -> Expr.chr (gen_char st)
    | 1 -> Expr.cls (gen_charset st)
    | _ -> Expr.str (gen_short_string st)
  in
  if depth > 0 && Gen.bool st then
    Expr.seq [ leaf; gen_expr ~refs ~depth:(depth - 1) st ]
  else leaf

let gen_grammar st : Grammar.t =
  let n = 2 + Gen.int_bound 2 st in
  let name i = Printf.sprintf "P%d" i in
  let prods =
    List.init n (fun i ->
        let refs = List.init (n - i - 1) (fun j -> name (i + j + 1)) in
        let kind =
          match Gen.int_bound 6 st with
          | 0 -> Attr.Generic
          | 1 -> Attr.Text
          | 2 -> Attr.Void
          | _ -> Attr.Plain
        in
        Production.v
          ~attrs:(Attr.v ~kind ~visibility:Attr.Private ())
          (name i)
          (gen_expr ~refs ~depth:3 st))
  in
  Grammar.make_exn ~start:"P0" prods

(* Directed input: walk the grammar, producing a string that has a fair
   chance of matching (predicates and state make it inexact, which is
   good — failures exercise backtracking). *)
let gen_input g st =
  let buf = Buffer.create 32 in
  let rec walk budget (e : Expr.t) =
    if !budget <= 0 then ()
    else
      match e.Expr.it with
      | Expr.Empty | Expr.Fail _ -> ()
      | Expr.Any -> Buffer.add_char buf (gen_char st)
      | Expr.Chr c -> Buffer.add_char buf c
      | Expr.Str s -> Buffer.add_string buf s
      | Expr.Cls set -> (
          match Charset.choose set with
          | Some c -> Buffer.add_char buf c
          | None -> ())
      | Expr.Ref n -> (
          decr budget;
          match Grammar.find g n with
          | Some p -> walk budget p.Production.expr
          | None -> ())
      | Expr.Seq es -> List.iter (walk budget) es
      | Expr.Alt alts ->
          let i = Gen.int_bound (List.length alts - 1) st in
          walk budget (List.nth alts i).Expr.body
      | Expr.Star x ->
          for _ = 1 to Gen.int_bound 2 st do
            walk budget x
          done
      | Expr.Plus x ->
          for _ = 1 to 1 + Gen.int_bound 1 st do
            walk budget x
          done
      | Expr.Opt x -> if Gen.bool st then walk budget x
      | Expr.And _ | Expr.Not _ -> ()
      | Expr.Bind (_, x) | Expr.Token x | Expr.Node (_, x) | Expr.Drop x
      | Expr.Splice x | Expr.Record (_, x) | Expr.Member (_, _, x) ->
          walk budget x
  in
  (match Grammar.find g (Grammar.start g) with
  | Some p -> walk (ref 40) p.Production.expr
  | None -> ());
  (* Random mutation keeps rejecting inputs in the mix. *)
  let s = Buffer.contents buf in
  if Gen.bool st || String.length s = 0 then s
  else
    let i = Gen.int_bound (String.length s - 1) st in
    String.mapi (fun j c -> if j = i then gen_char st else c) s

(* A well-formed grammar plus a batch of inputs. *)
let gen_case st =
  let rec retry k =
    let g = gen_grammar st in
    if Analysis.check (Analysis.analyze g) = [] then g
    else if k > 50 then Grammar.make_exn [ Production.v "P0" (Expr.chr 'a') ]
    else retry (k + 1)
  in
  let g = retry 0 in
  let inputs = List.init 8 (fun _ -> gen_input g st) in
  (g, inputs)

let print_case (g, inputs) =
  Printf.sprintf "grammar:\n%s\ninputs: %s"
    (Pretty.grammar_to_string g)
    (String.concat ", " (List.map (Printf.sprintf "%S") inputs))

let arb_case = QCheck.make ~print:print_case gen_case

(* --- equivalence properties ------------------------------------------------------ *)

type observation = Accept of Value.t | Reject of int

let observe eng input =
  match Engine.parse eng input with
  | Ok v -> Accept v
  | Error e -> Reject e.Parse_error.position

let obs_equal a b =
  match (a, b) with
  | Accept va, Accept vb -> Value.equal va vb
  | Reject pa, Reject pb -> pa = pb
  | Accept _, Reject _ | Reject _, Accept _ -> false

let equivalent ?(observe_errors = true) name count make_reference make_other =
  QCheck.Test.make ~name ~count arb_case (fun (g, inputs) ->
      match (make_reference g, make_other g) with
      | Ok e1, Ok e2 ->
          List.for_all
            (fun input ->
              let a = observe e1 input and b = observe e2 input in
              if observe_errors then obs_equal a b
              else
                match (a, b) with
                | Accept _, Accept _ | Reject _, Reject _ -> true
                | _ -> false)
            inputs
      | Error _, Error _ -> true (* both reject the grammar: fine *)
      | _ -> false)

let prepare_with cfg g = Engine.prepare ~config:cfg g

let engine_props =
  [
    equivalent "naive = packrat (values and error positions)" 300
      (prepare_with Config.naive)
      (prepare_with Config.packrat);
    equivalent "packrat = chunked+transient" 300
      (prepare_with Config.packrat)
      (prepare_with (Config.v ~memo:Config.Chunked ~honor_transient:true ()));
    (* Dispatch may drop doomed alternatives' expected-entries but must
       never change acceptance or values; error positions are preserved
       (see the FIRST-set argument in the engine). *)
    equivalent "packrat = fully optimized" 300
      (prepare_with Config.naive)
      (prepare_with Config.optimized);
    equivalent "dispatch alone changes nothing observable" 200
      (prepare_with Config.packrat)
      (prepare_with (Config.v ~dispatch:true ()));
    equivalent "lean values alone change nothing observable" 200
      (prepare_with Config.packrat)
      (prepare_with (Config.v ~lean_values:true ()));
    equivalent "parsing is deterministic" 100
      (prepare_with Config.optimized)
      (prepare_with Config.optimized);
  ]

let pass_props =
  [
    equivalent "optimize pipeline preserves values" 200
      (prepare_with Config.naive)
      (fun g -> Engine.prepare ~config:Config.optimized (Pipeline.optimize g));
    equivalent "factoring preserves values" 200
      (prepare_with Config.naive)
      (fun g ->
        Engine.prepare ~config:Config.packrat (Passes.factor_prefixes g));
    equivalent "inlining preserves values" 200
      (prepare_with Config.naive)
      (fun g -> Engine.prepare ~config:Config.packrat (Passes.inline_pass g));
    equivalent "folding preserves values" 200
      (prepare_with Config.naive)
      (fun g ->
        Engine.prepare ~config:Config.packrat (Passes.fold_duplicates g));
    equivalent ~observe_errors:false
      "repetition desugaring preserves acceptance" 200
      (prepare_with Config.packrat)
      (fun g ->
        Engine.prepare ~config:Config.packrat (Desugar.expand_repetitions g));
  ]

(* --- registry passes, one suite per registered name ---------------------------------- *)

(* Generated from the canonical registry, so a pass added there is
   property-tested here with no further wiring. The observation is
   stronger than [obs_equal] above: the expected set at the farthest
   failure must survive each pass too. Leaf-matcher descriptions ('x',
   "ab", [a-c], any character) are compared verbatim; predicate
   descriptions ("not ..." and "&...") quote their operand's syntax,
   which structural passes rewrite by design, so those are compared
   only by their presence.
   Reference and subject run under the same engine configuration so only
   the pass itself is under test; the bytecode variant then re-checks
   the transformed grammar through the VM. *)

type full_obs = FAccept of Value.t | FReject of int * string list

let normalize_expected descs =
  List.sort_uniq compare
    (List.map
       (fun d ->
         if String.length d >= 4 && String.equal (String.sub d 0 4) "not " then
           "not <predicate>"
         else if String.length d >= 1 && d.[0] = '&' then "&<predicate>"
         else d)
       descs)

let observe_full eng input =
  match Engine.parse eng input with
  | Ok v -> FAccept v
  | Error e ->
      FReject (e.Parse_error.position, normalize_expected e.Parse_error.expected)

let full_equal a b =
  match (a, b) with
  | FAccept va, FAccept vb -> Value.equal va vb
  | FReject (pa, ea), FReject (pb, eb) -> pa = pb && ea = eb
  | FAccept _, FReject _ | FReject _, FAccept _ -> false

let apply_pass (p : Pass.t) g =
  (Driver.run_exn ~gate:false [ p ] g).Driver.grammar

let registry_pass_props =
  List.concat_map
    (fun (p : Pass.t) ->
      let prop backend cfg =
        QCheck.Test.make
          ~name:
            (Printf.sprintf "%s preserves values, positions, expected (%s)"
               p.Pass.name backend)
          ~count:120 arb_case
          (fun (g, inputs) ->
            match
              (prepare_with Config.packrat g, prepare_with cfg (apply_pass p g))
            with
            | Ok e1, Ok e2 ->
                List.for_all
                  (fun input ->
                    full_equal (observe_full e1 input) (observe_full e2 input))
                  inputs
            | Error _, Error _ -> true
            | _ -> false)
      in
      [
        prop "closure" Config.packrat;
        prop "vm" (Config.with_backend Config.Bytecode Config.packrat);
      ])
    (Pipeline.all_passes ())

(* --- bytecode back end -------------------------------------------------------------------- *)

(* The closure engine is the executable specification for the bytecode
   VM: same values, same success offsets, same farthest-failure
   positions, across every memo strategy. [Engine.prepare] dispatches on
   [Config.backend], so the same facade drives both. *)

let vm_of cfg = Config.with_backend Config.Bytecode cfg

let vm_props =
  let both name count cfg =
    equivalent name count (prepare_with cfg) (prepare_with (vm_of cfg))
  in
  [
    both "closure = bytecode (no memo)" 250 Config.naive;
    both "closure = bytecode (packrat hashtable)" 250 Config.packrat;
    both "closure = bytecode (chunked+transient)" 250
      (Config.v ~memo:Config.Chunked ~honor_transient:true ());
    both "closure = bytecode (fully optimized)" 250 Config.optimized;
    QCheck.Test.make ~name:"closure = bytecode on prefixes (consumed offsets)"
      ~count:250 arb_case (fun (g, inputs) ->
        match (prepare_with Config.optimized g, prepare_with Config.vm g) with
        | Ok e1, Ok e2 ->
            List.for_all
              (fun input ->
                let o1 = Engine.run e1 ~require_eof:false input in
                let o2 = Engine.run e2 ~require_eof:false input in
                o1.Engine.consumed = o2.Engine.consumed
                && Result.is_ok o1.Engine.result
                   = Result.is_ok o2.Engine.result)
              inputs
        | Error _, Error _ -> true
        | _ -> false);
  ]

(* --- printer round-trip -------------------------------------------------------------- *)

let gen_printable_expr st = gen_expr ~refs:[ "Other" ] ~depth:3 st

let arb_expr =
  QCheck.make ~print:Pretty.expr_to_string gen_printable_expr

let printer_props =
  [
    QCheck.Test.make ~name:"pretty output reparses to an equal expression"
      ~count:500 arb_expr (fun e ->
        match Meta_parser.parse_expr (Pretty.expr_to_string e) with
        | Ok e' -> Expr.equal e e'
        | Error _ -> false);
  ]

(* --- module print/parse round-trip ------------------------------------------------------- *)

let gen_attrs st =
  Attr.v
    ~kind:(Gen.oneofl [ Attr.Plain; Attr.Generic; Attr.Text; Attr.Void ] st)
    ~visibility:(Gen.oneofl [ Attr.Public; Attr.Private ] st)
    ~memo:(Gen.oneofl [ Attr.Memo_auto; Attr.Memo_always; Attr.Memo_never ] st)
    ~inline:(Gen.oneofl [ Attr.Inline_auto; Attr.Inline_always; Attr.Inline_never ] st)
    ~with_location:(Gen.bool st) ()

let gen_module st =
  (* A base module plus a modifying module, exercising every item kind
     and dependency form the printer can emit. *)
  let base_items =
    List.init
      (1 + Gen.int_bound 3 st)
      (fun i ->
        Module_ast.define ~attrs:(gen_attrs st)
          (Printf.sprintf "P%d" i)
          (Expr.alt_labeled
             [
               { Expr.label = Some "A"; body = gen_expr ~refs:[ "P0" ] ~depth:2 st };
               { Expr.label = Some "B"; body = gen_expr ~refs:[] ~depth:2 st };
             ]))
  in
  let base = Module_ast.v ~params:[ "S" ] "gen.Base" base_items in
  let ext_items =
    [
      Module_ast.override "P0" (gen_expr ~refs:[] ~depth:2 st);
      Module_ast.add ~placement:(Gen.oneofl
        [ Module_ast.Append; Module_ast.Prepend;
          Module_ast.Before "A"; Module_ast.After "B" ] st)
        "P0"
        [ { Expr.label = Some "C"; body = gen_expr ~refs:[] ~depth:2 st } ];
      Module_ast.remove "P0" [ "A" ];
      Module_ast.define ~attrs:(gen_attrs st) "Q" (gen_expr ~refs:[] ~depth:2 st);
    ]
  in
  let ext =
    Module_ast.v
      ~deps:
        [
          Module_ast.modify ~alias:"Base" ~args:[ "X" ] "gen.Base";
          Module_ast.import ~args:[] "gen.Other";
        ]
      ~params:[ "X" ] "gen.Ext" ext_items
  in
  [ base; ext ]

let arb_modules =
  QCheck.make
    ~print:(fun ms ->
      String.concat "\n" (List.map Meta_print.module_to_string ms))
    gen_module

let module_props =
  [
    QCheck.Test.make ~name:"module printer output reparses stably" ~count:300
      arb_modules (fun ms ->
        let printed =
          String.concat "\n" (List.map Meta_print.module_to_string ms)
        in
        match Meta_parser.parse_modules_string printed with
        | Error _ -> false
        | Ok ms' ->
            String.equal printed
              (String.concat "\n" (List.map Meta_print.module_to_string ms')));
  ]

(* --- meta-parser robustness --------------------------------------------------------------- *)

let fuzz_props =
  [
    QCheck.Test.make ~name:"meta parser never raises on random bytes"
      ~count:1000
      QCheck.(string_of_size (Gen.int_bound 60))
      (fun junk ->
        match Meta_parser.parse_modules_string junk with
        | Ok _ | Error _ -> true);
    QCheck.Test.make ~name:"meta parser never raises on mangled grammars"
      ~count:300
      QCheck.(pair (int_bound 200) (int_bound 255))
      (fun (pos, byte) ->
        (* Take a real grammar and corrupt one byte. *)
        let text = List.hd Grammars.Calc.texts in
        let pos = pos mod String.length text in
        let mangled =
          String.mapi
            (fun i c -> if i = pos then Char.chr byte else c)
            text
        in
        match Meta_parser.parse_modules_string mangled with
        | Ok _ | Error _ -> true);
  ]

(* --- engine robustness ---------------------------------------------------------------- *)

let engine_fuzz_props =
  let minic = lazy (Engine.prepare_exn (Pipeline.optimize (Grammars.Minic.grammar ()))) in
  [
    QCheck.Test.make ~name:"minic engine never raises on random bytes"
      ~count:500
      QCheck.(string_of_size (Gen.int_bound 120))
      (fun junk ->
        match Engine.parse (Lazy.force minic) junk with
        | Ok _ | Error _ -> true);
    QCheck.Test.make
      ~name:"minic engine never raises on corrupted real programs" ~count:200
      QCheck.(pair (int_bound 5000) (int_bound 255))
      (fun (pos, byte) ->
        let src = Grammars.Corpus.minic (Rng.create 17) ~functions:3 in
        let pos = pos mod String.length src in
        let bad =
          String.mapi (fun i c -> if i = pos then Char.chr byte else c) src
        in
        match Engine.parse (Lazy.force minic) bad with
        | Ok _ | Error _ -> true);
  ]

(* --- resource governor -------------------------------------------------------------- *)

(* The governor's contract, in property form: under finite limits both
   back ends (a) always return a result — no exception escapes — and
   (b) produce the *same* result, including which budget tripped when
   one did. Fuel and depth are counted identically by construction, so
   full observation equality is the right assertion, not just
   same-outcome. *)

type gov_obs =
  | GAccept
  | GReject of int
  | GTrip of Limits.which * int  (* which budget, farthest position *)

let gov_observe eng input =
  match Engine.parse eng input with
  | Ok _ -> GAccept
  | Error e -> (
      match Parse_error.exhausted_which e with
      | Some w -> GTrip (w, e.Parse_error.position)
      | None -> GReject e.Parse_error.position)

let gov_print = function
  | GAccept -> "accept"
  | GReject p -> Printf.sprintf "reject@%d" p
  | GTrip (w, p) -> Printf.sprintf "trip %s@%d" (Limits.which_name w) p

let governor_props =
  let calc = lazy (Pipeline.optimize (Grammars.Calc.grammar ())) in
  let calc_eng cfg limits =
    lazy
      (Engine.prepare_exn
         ~config:(Config.with_limits limits cfg)
         (Lazy.force calc))
  in
  let closure_h = calc_eng Config.optimized Limits.hardened in
  let vm_h = calc_eng Config.vm Limits.hardened in
  let gen_adversarial st =
    let scale = 1 + Gen.int_bound 4000 st in
    let shapes = Grammars.Corpus.adversarial ~scale in
    List.nth shapes (Gen.int_bound (List.length shapes - 1) st)
  in
  let arb_adversarial =
    QCheck.make
      ~print:(fun (name, input) ->
        Printf.sprintf "%s (%d bytes)" name (String.length input))
      gen_adversarial
  in
  [
    (* (a)+(b) on the designed hostile inputs: a raise fails the test. *)
    QCheck.Test.make
      ~name:"hardened calc: backends agree and never raise (adversarial)"
      ~count:600 arb_adversarial (fun (_, input) ->
        let a = gov_observe (Lazy.force closure_h) input in
        let b = gov_observe (Lazy.force vm_h) input in
        if a <> b then
          QCheck.Test.fail_reportf "closure: %s, vm: %s" (gov_print a)
            (gov_print b)
        else true);
    (* Same, on random grammars with budgets small enough that most runs
       trip: the two back ends must run out of the same budget. *)
    QCheck.Test.make
      ~name:"random tiny budgets trip the same limit on both backends"
      ~count:400
      (QCheck.pair arb_case
         (QCheck.make
            ~print:(fun (f, d) -> Printf.sprintf "fuel=%d depth=%d" f d)
            (Gen.pair (Gen.map (( + ) 1) (Gen.int_bound 300))
               (Gen.map (( + ) 1) (Gen.int_bound 24)))))
      (fun ((g, inputs), (fuel, max_depth)) ->
        let limits = Limits.v ~fuel ~max_depth () in
        match
          ( Engine.prepare ~config:(Config.with_limits limits Config.optimized) g,
            Engine.prepare ~config:(Config.with_limits limits Config.vm) g )
        with
        | Ok e1, Ok e2 ->
            List.for_all
              (fun input ->
                gov_observe e1 input = gov_observe e2 input)
              inputs
        | Error _, Error _ -> true
        | _ -> false);
    (* Memo-budget exhaustion degrades instead of failing: a tiny memo
       budget must not change any observable outcome, on either back
       end. *)
    QCheck.Test.make ~name:"memo degradation changes nothing observable"
      ~count:300
      (QCheck.pair arb_case (QCheck.make (Gen.int_bound 2048)))
      (fun ((g, inputs), budget) ->
        let limits = Limits.v ~max_memo_bytes:budget () in
        let degraded cfg = Config.with_limits limits cfg in
        List.for_all
          (fun cfg ->
            match
              (Engine.prepare ~config:cfg g,
               Engine.prepare ~config:(degraded cfg) g)
            with
            | Ok full, Ok capped ->
                List.for_all
                  (fun input ->
                    full_equal (observe_full full input)
                      (observe_full capped input))
                  inputs
            | Error _, Error _ -> true
            | _ -> false)
          [ Config.optimized; Config.packrat; Config.vm ]);
    (* The unlimited default really is governance-free at the API level:
       same observations as a finite-but-huge budget. *)
    QCheck.Test.make ~name:"huge finite budgets behave like unlimited"
      ~count:200 arb_case (fun (g, inputs) ->
        let roomy =
          Limits.v ~fuel:100_000_000 ~max_depth:100_000
            ~max_memo_bytes:(1 lsl 40) ~max_input_bytes:(1 lsl 30) ()
        in
        List.for_all
          (fun cfg ->
            match
              (Engine.prepare ~config:cfg g,
               Engine.prepare ~config:(Config.with_limits roomy cfg) g)
            with
            | Ok free, Ok governed ->
                List.for_all
                  (fun input ->
                    full_equal (observe_full free input)
                      (observe_full governed input))
                  inputs
            | Error _, Error _ -> true
            | _ -> false)
          [ Config.optimized; Config.vm ]);
  ]

(* --- input representations ------------------------------------------------------------ *)

(* The zero-copy input layer: the same document parsed through a
   string-backed and a Bigarray-backed [Input.t] must be byte-identical
   in every observable — value, consumed offset, error position,
   expected set, error kind and every [Stats] counter — on both back
   ends, governed and ungoverned. This is the invariant that lets
   [Source.map_file]/[rml parse --mmap] claim "same parse, no copy". *)

let big_of_string s =
  let b =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout (String.length s)
  in
  String.iteri (Bigarray.Array1.set b) s;
  Input.of_bigstring b

let rep_observe eng input =
  let o = Engine.run_input eng input in
  let result =
    match o.Engine.result with
    | Ok v -> Ok v
    | Error e ->
        Error
          ( e.Parse_error.position,
            e.Parse_error.expected,
            e.Parse_error.consumed,
            e.Parse_error.kind )
  in
  (result, o.Engine.consumed, Stats.fields o.Engine.stats)

let rep_equal (ra, ca, sa) (rb, cb, sb) =
  ca = cb && sa = sb
  &&
  match (ra, rb) with
  | Ok va, Ok vb -> Value.equal va vb
  | Error ea, Error eb -> ea = eb
  | Ok _, Error _ | Error _, Ok _ -> false

let input_rep_props =
  let governed cfg =
    Config.with_limits (Limits.v ~fuel:200_000 ~max_depth:10_000 ()) cfg
  in
  List.map
    (fun (tag, cfg) ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "string = bigarray: values, errors, stats (%s)" tag)
        ~count:200 arb_case
        (fun (g, inputs) ->
          match prepare_with cfg g with
          | Error _ -> true
          | Ok eng ->
              List.for_all
                (fun text ->
                  rep_equal
                    (rep_observe eng (Input.of_string text))
                    (rep_observe eng (big_of_string text)))
                inputs))
    [
      ("closure", Config.optimized);
      ("vm", Config.vm);
      ("closure packrat", Config.packrat);
      ("closure governed", governed Config.optimized);
      ("vm governed", governed Config.vm);
    ]
  @ [
      QCheck.Test.make
        ~name:"string = bigarray on prefixes (require_eof:false)" ~count:150
        arb_case
        (fun (g, inputs) ->
          match (prepare_with Config.optimized g, prepare_with Config.vm g) with
          | Ok cl, Ok vm ->
              List.for_all
                (fun text ->
                  List.for_all
                    (fun eng ->
                      let a =
                        Engine.run_input eng ~require_eof:false
                          (Input.of_string text)
                      in
                      let b =
                        Engine.run_input eng ~require_eof:false
                          (big_of_string text)
                      in
                      a.Engine.consumed = b.Engine.consumed
                      && Result.is_ok a.Engine.result
                         = Result.is_ok b.Engine.result
                      && Stats.fields a.Engine.stats
                         = Stats.fields b.Engine.stats)
                    [ cl; vm ])
                inputs
          | Error _, Error _ -> true
          | _ -> false);
    ]

(* --- recognizer (voidified) equivalence ----------------------------------------------- *)

(* The contract behind [rml parse --recognize] and the batch ladder's
   recognizer rung, in property form: erasing every production kind to
   Void changes no verdict, no consumed-byte count, no error position
   and no expected set — kinds only shape semantic values. On the memo
   side, the per-chunk [Limits.chunk_cost] can only shrink (no value
   slots survive erasure) while chunk coverage can only grow: lean
   calls to value-carrying slots read the table without filling it,
   but every voidified slot is value-free and gets the whole protocol.
   So the total charge is compared as cheaper-per-chunk over a
   superset of positions — and whenever coverage does not grow, the
   total must shrink outright. Checked on both back ends, governed and
   ungoverned: 4 configurations x 150 cases = 600 random grammars. *)

let voidify g =
  match Batch.recognizer_erase g with
  | Some g' -> g'
  | None -> QCheck.Test.fail_report "erasure broke a well-formed grammar"

let recognizer_props =
  let chunk_charge eng (st : Stats.t) =
    st.Stats.chunks_allocated
    * Limits.chunk_cost
        ~value_slots:(Engine.memo_value_slots eng)
        (Engine.memo_slots eng)
  in
  let obs (o : Engine.outcome) =
    match o.Engine.result with
    | Ok _ -> (true, o.Engine.consumed, 0, [])
    | Error e ->
        ( false,
          o.Engine.consumed,
          e.Parse_error.position,
          List.sort_uniq compare e.Parse_error.expected )
  in
  let governed cfg =
    Config.with_limits (Limits.v ~fuel:200_000 ~max_depth:10_000 ()) cfg
  in
  List.map
    (fun (tag, cfg) ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf
             "voidified = original: verdicts, consumed, expected; memo \
              charge <= (%s)"
             tag)
        ~count:150 arb_case
        (fun (g, inputs) ->
          match (prepare_with cfg g, prepare_with cfg (voidify g)) with
          | Ok orig, Ok recog ->
              Engine.memo_value_slots recog = 0
              && Limits.chunk_cost
                   ~value_slots:(Engine.memo_value_slots recog)
                   (Engine.memo_slots recog)
                 <= Limits.chunk_cost
                      ~value_slots:(Engine.memo_value_slots orig)
                      (Engine.memo_slots orig)
              && List.for_all
                   (fun input ->
                     let a = Engine.run orig input
                     and b = Engine.run recog input in
                     let ca = a.Engine.stats.Stats.chunks_allocated
                     and cb = b.Engine.stats.Stats.chunks_allocated in
                     if obs a <> obs b then
                       QCheck.Test.fail_reportf "observation differs on %S"
                         input
                     else if cb < ca then
                       QCheck.Test.fail_reportf
                         "voidified chunk coverage shrank on %S: %d < %d"
                         input cb ca
                     else if
                       cb = ca
                       && chunk_charge recog b.Engine.stats
                          > chunk_charge orig a.Engine.stats
                     then
                       QCheck.Test.fail_reportf
                         "memo charge grew at equal coverage on %S: %d > %d"
                         input
                         (chunk_charge recog b.Engine.stats)
                         (chunk_charge orig a.Engine.stats)
                     else true)
                   inputs
          | Error _, Error _ -> true
          | _ -> false))
    [
      ("closure", Config.optimized);
      ("vm", Config.vm);
      ("closure governed", governed Config.optimized);
      ("vm governed", governed Config.vm);
    ]

(* --- charset algebra -------------------------------------------------------------------- *)

let arb_charset =
  QCheck.make
    ~print:(fun s -> Charset.to_string s)
    (fun st ->
      let s = ref Charset.empty in
      for _ = 0 to Gen.int_bound 6 st do
        let a = Gen.char st and b = Gen.char st in
        s := Charset.union !s (Charset.range (min a b) (max a b))
      done;
      !s)

let charset_props =
  [
    QCheck.Test.make ~name:"to_ranges/of_ranges round-trip" ~count:500
      arb_charset (fun s -> Charset.equal s (Charset.of_ranges (Charset.to_ranges s)));
    QCheck.Test.make ~name:"printer output is lossless via meta parser"
      ~count:300 arb_charset (fun s ->
        match Meta_parser.parse_expr (Charset.to_string s) with
        | Ok { Expr.it = Expr.Cls s'; _ } -> Charset.equal s s'
        | Ok { Expr.it = Expr.Any; _ } -> Charset.equal s Charset.full
        | Ok { Expr.it = Expr.Chr c; _ } -> Charset.equal s (Charset.singleton c)
        | _ -> false);
    QCheck.Test.make ~name:"de morgan" ~count:300
      (QCheck.pair arb_charset arb_charset) (fun (a, b) ->
        Charset.equal
          (Charset.complement (Charset.union a b))
          (Charset.inter (Charset.complement a) (Charset.complement b)));
    QCheck.Test.make ~name:"cardinal of disjoint union adds" ~count:300
      (QCheck.pair arb_charset arb_charset) (fun (a, b) ->
        let b = Charset.diff b a in
        Charset.cardinal (Charset.union a b)
        = Charset.cardinal a + Charset.cardinal b);
  ]

(* --- observability ---------------------------------------------------------- *)

(* Governed configurations only: without a fuel budget the VM emits no
   govern brackets for inlined productions and counts fewer invocations
   than the closure engine, so the cross-backend accounting below only
   holds when both engines run governed (see DESIGN.md). The budget is
   far above what any generated case needs, so nothing trips. *)
let observed base =
  Config.with_limits
    (Limits.v ~fuel:200_000 ())
    (Config.with_observe (Observe.all ~ring_bytes:(1 lsl 20) ()) base)

let observe_props =
  [
    QCheck.Test.make
      ~name:"profiler invocation sum equals Stats.invocations" ~count:200
      arb_case
      (fun (g, inputs) ->
        List.for_all
          (fun base ->
            match Engine.prepare ~config:(observed base) g with
            | Error _ -> true
            | Ok eng -> (
                let total =
                  List.fold_left
                    (fun acc input ->
                      acc
                      + (Engine.run eng input).Engine.stats.Stats.invocations)
                    0 inputs
                in
                match Engine.observation eng with
                | None -> false
                | Some o -> (
                    match Observe.profile o with
                    | None -> false
                    | Some p -> Profile.invocation_sum p = total)))
          [ Config.optimized; Config.vm ]);
    QCheck.Test.make
      ~name:"closure and vm emit identical events and coverage" ~count:150
      arb_case
      (fun (g, inputs) ->
        List.for_all
          (fun base ->
            let cl =
              Engine.prepare
                ~config:(observed (Config.with_backend Config.Closure base))
                g
            in
            let vm =
              Engine.prepare
                ~config:(observed (Config.with_backend Config.Bytecode base))
                g
            in
            match (cl, vm) with
            | Ok cl, Ok vm -> (
                List.iter
                  (fun input ->
                    ignore (Engine.run cl input);
                    ignore (Engine.run vm input))
                  inputs;
                match (Engine.observation cl, Engine.observation vm) with
                | Some oc, Some ov ->
                    Observe.events oc = Observe.events ov
                    && Observe.coverage_summary oc
                       = Observe.coverage_summary ov
                    && Observe.unexercised oc = Observe.unexercised ov
                | _ -> false)
            | Error _, Error _ -> true
            | _ -> false)
          [ Config.optimized; Config.packrat ]);
  ]

let () =
  let to_alco = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "props"
    [
      ("engine-equivalence", to_alco engine_props);
      ("vm-equivalence", to_alco vm_props);
      ("input-representation", to_alco input_rep_props);
      ("pass-equivalence", to_alco pass_props);
      ("registry-pass-equivalence", to_alco registry_pass_props);
      ("printer", to_alco printer_props);
      ("module-printer", to_alco module_props);
      ("fuzz", to_alco fuzz_props);
      ("engine-fuzz", to_alco engine_fuzz_props);
      ("governor", to_alco governor_props);
      ("recognizer-equivalence", to_alco recognizer_props);
      ("observability", to_alco observe_props);
      ("charset", to_alco charset_props);
    ]
