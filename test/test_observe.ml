(* The observability layer: profiler, trace ring, coverage, and the
   zero-cost-when-off contract. Cross-backend event/coverage parity on
   random grammars lives in test_props.ml; these are the directed cases,
   each run on both back ends.

   Configurations here are governed (finite fuel): without a budget the
   VM emits no govern brackets for inlined productions and counts fewer
   invocations than the closure engine, so cross-checks against
   Stats.invocations only hold governed (see DESIGN.md). *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let b = Grammar.make_exn
let backends = [ ("closure", Config.optimized); ("vm", Config.vm) ]
let governed config = Config.with_limits (Limits.v ~fuel:100_000 ()) config

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let obs_of eng =
  match Engine.observation eng with
  | Some o -> o
  | None -> Alcotest.fail "observed engine reports no sink"

(* S = A+ ; A = 'a' / 'b' / 'z' — test corpora never contain 'z', so its
   arm is deliberately dead. *)
let dead_arm_grammar () =
  let open Builder in
  b [ prod "S" (plus (e "A")); prod "A" (alt [ c 'a'; c 'b'; c 'z' ]) ]

(* S = '(' S ')' / 'x' — drives depth and fuel on nested input. *)
let nest_grammar () =
  let open Builder in
  b [ prod "S" (seq [ c '('; e "S"; c ')' ] <|> c 'x') ]

let nest_input depth = String.make depth '(' ^ "x" ^ String.make depth ')'

(* --- Stats schema ------------------------------------------------------------ *)

(* The record literal is the point: adding a counter to Stats.t without
   visiting this test is a compile error, which is exactly when the
   add/fields/pp audit below must be re-run. *)
let all_ones () : Stats.t =
  {
    Stats.invocations = 1;
    memo_hits = 1;
    memo_misses = 1;
    memo_stores = 1;
    chunks_allocated = 1;
    chunk_slots = 1;
    backtracks = 1;
    state_snapshots = 1;
    vm_instructions = 1;
    vm_stack_peak = 1;
    memo_degraded = 1;
    fuel_used = 1;
    memo_reused = 1;
    memo_relocated = 1;
  }

let stats_tests =
  [
    test "add doubles every counter; vm-stack-peak max-merges" (fun () ->
        let acc = Stats.create () in
        Stats.add acc (all_ones ());
        Stats.add acc (all_ones ());
        List.iter
          (fun (name, v) ->
            let expected = if name = "vm-stack-peak" then 1 else 2 in
            check Alcotest.int name expected v)
          (Stats.fields acc));
    test "fields schema is stable, in order, zero-inclusive" (fun () ->
        check
          Alcotest.(list string)
          "names"
          [
            "invocations"; "hits"; "misses"; "stores"; "chunks"; "slots";
            "backtracks"; "snapshots"; "vm-instructions"; "vm-stack-peak";
            "fuel-used"; "memo-degraded"; "memo-reused"; "memo-relocated";
          ]
          (List.map fst (Stats.fields (Stats.create ()))));
    test "pp renders every field even at zero" (fun () ->
        let rendered = Format.asprintf "%a" Stats.pp (Stats.create ()) in
        List.iter
          (fun (name, _) ->
            if not (contains rendered (name ^ "=")) then
              Alcotest.failf "pp output misses %s" name)
          (Stats.fields (Stats.create ())));
  ]

(* --- zero cost when off ------------------------------------------------------ *)

let off_tests =
  [
    test "observation is None when every capability is off" (fun () ->
        List.iter
          (fun (label, config) ->
            let eng = Engine.prepare_exn ~config (dead_arm_grammar ()) in
            if Engine.observation eng <> None then
              Alcotest.failf "[%s] unobserved engine has a sink" label)
          backends);
    test "unobserved bytecode contains no obs instructions" (fun () ->
        let g = dead_arm_grammar () in
        let plain = Vm.prepare_exn ~config:Config.vm g in
        if contains (Vm.disassemble plain) "obs-" then
          Alcotest.fail "observe-off program contains obs-* instructions";
        let seen =
          Vm.prepare_exn
            ~config:(Config.with_observe (Observe.all ()) Config.vm)
            g
        in
        if not (contains (Vm.disassemble seen) "obs-") then
          Alcotest.fail "observed program contains no obs-* instructions");
  ]

(* --- profiler ---------------------------------------------------------------- *)

let profile_tests =
  [
    test "counts, table, and flamegraph exports" (fun () ->
        List.iter
          (fun (label, config) ->
            let config =
              Config.with_observe (Observe.all ()) (governed config)
            in
            let eng = Engine.prepare_exn ~config (dead_arm_grammar ()) in
            let out = Engine.run eng "abab" in
            (match out.Engine.result with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "[%s] %s" label (Parse_error.message e));
            let o = obs_of eng in
            let p =
              match Observe.profile o with
              | Some p -> p
              | None -> Alcotest.fail "no profile"
            in
            check Alcotest.int
              (label ^ ": invocation sum")
              out.Engine.stats.Stats.invocations
              (Profile.invocation_sum p);
            let rows = Profile.rows p in
            if rows = [] then Alcotest.failf "[%s] empty profile" label;
            List.iter
              (fun (r : Profile.row) ->
                if r.Profile.row_self_ns > r.Profile.row_total_ns then
                  Alcotest.failf "[%s] %s: self > total" label
                    r.Profile.row_name)
              rows;
            let table = Format.asprintf "%a" (Profile.pp_table ~top:5) p in
            if not (contains table "S") then
              Alcotest.failf "[%s] table misses the start production" label;
            let sp = Profile.to_speedscope p in
            List.iter
              (fun needle ->
                if not (contains sp needle) then
                  Alcotest.failf "[%s] speedscope misses %s" label needle)
              [
                "https://www.speedscope.app/file-format-schema.json";
                "\"frames\"";
                "\"type\":\"evented\"";
              ];
            let ch = Profile.to_chrome p in
            if
              not
                (String.length ch >= 2
                && ch.[0] = '['
                && ch.[String.length ch - 1] = ']'
                && contains ch "\"ph\"")
            then Alcotest.failf "[%s] chrome export malformed" label)
          backends);
    test "finalize closes frames abandoned by a fuel trip" (fun () ->
        List.iter
          (fun (label, config) ->
            let config =
              Config.with_observe (Observe.all ())
                (Config.with_limits (Limits.v ~fuel:40 ()) config)
            in
            let eng = Engine.prepare_exn ~config (nest_grammar ()) in
            let out = Engine.run eng (nest_input 100) in
            (match out.Engine.result with
            | Error e when Parse_error.exhausted_which e = Some Limits.Fuel ->
                ()
            | _ -> Alcotest.failf "[%s] expected a fuel trip" label);
            let p =
              match Observe.profile (obs_of eng) with
              | Some p -> p
              | None -> Alcotest.fail "no profile"
            in
            (* A balanced event log is what keeps flamegraphs well-formed
               after aborted runs: every open event got a close. *)
            if Profile.events_logged p mod 2 <> 0 then
              Alcotest.failf "[%s] unbalanced flame event log" label)
          backends);
  ]

(* --- coverage ---------------------------------------------------------------- *)

let coverage_tests =
  [
    test "a deliberately dead alternative is flagged" (fun () ->
        List.iter
          (fun (label, config) ->
            let config =
              Config.with_observe (Observe.all ()) (governed config)
            in
            let eng = Engine.prepare_exn ~config (dead_arm_grammar ()) in
            List.iter
              (fun s -> ignore (Engine.run eng s))
              [ "ab"; "ba"; "bb" ];
            let o = obs_of eng in
            let ph, np, am, na = Observe.coverage_summary o in
            check Alcotest.int (label ^ ": all prods hit") np ph;
            if not (am < na) then
              Alcotest.failf "[%s] every arm matched?" label;
            let dead_prods, dead_arms = Observe.unexercised o in
            check Alcotest.(list int) (label ^ ": no dead prods") [] dead_prods;
            if dead_arms = [] then Alcotest.failf "[%s] no dead arms" label;
            (* The 'z' arm of A is the dead one. *)
            let described =
              List.exists
                (fun a ->
                  let arm = Provenance.arm (Observe.provenance o) a in
                  contains arm.Provenance.arm_desc "z")
                dead_arms
            in
            if not described then
              Alcotest.failf "[%s] dead arm is not the 'z' arm" label;
            let report = Format.asprintf "%a" Observe.pp_coverage o in
            if not (contains report "unexercised alternative") then
              Alcotest.failf "[%s] report misses the dead alternative" label)
          backends);
    test "coverage accumulates across runs of one sink" (fun () ->
        List.iter
          (fun (label, config) ->
            let config =
              Config.with_observe (Observe.all ()) (governed config)
            in
            let eng = Engine.prepare_exn ~config (dead_arm_grammar ()) in
            ignore (Engine.run eng "aa");
            let _, _, am1, _ = Observe.coverage_summary (obs_of eng) in
            ignore (Engine.run eng "bb");
            let _, _, am2, _ = Observe.coverage_summary (obs_of eng) in
            if not (am2 > am1) then
              Alcotest.failf "[%s] second corpus file added no coverage" label)
          backends);
  ]

(* --- trace ring -------------------------------------------------------------- *)

let ring_only n base =
  Config.with_observe
    {
      Observe.off with
      Observe.events = true;
      ring_bytes = n * Observe.event_bytes;
    }
    base

let ring_tests =
  [
    test "events bracket a successful parse" (fun () ->
        List.iter
          (fun (label, config) ->
            let eng =
              Engine.prepare_exn
                ~config:(ring_only 4096 (governed config))
                (dead_arm_grammar ())
            in
            ignore (Engine.run eng "ab");
            let o = obs_of eng in
            let evs = Observe.events o in
            check Alcotest.int
              (label ^ ": nothing overwritten")
              (Observe.events_seen o) (List.length evs);
            (match evs with
            | first :: _ ->
                if
                  not
                    (first.Observe.kind = Observe.Enter
                    && first.Observe.pos = 0)
                then Alcotest.failf "[%s] first event is not enter@0" label
            | [] -> Alcotest.failf "[%s] empty ring" label);
            match List.rev evs with
            | last :: _ ->
                if last.Observe.kind <> Observe.Exit_ok then
                  Alcotest.failf "[%s] last event is not exit-ok" label
            | [] -> ())
          backends);
    test "the ring is bounded: old events are overwritten in place" (fun () ->
        List.iter
          (fun (label, config) ->
            let eng =
              Engine.prepare_exn
                ~config:(ring_only 16 (governed config))
                (nest_grammar ())
            in
            ignore (Engine.run eng (nest_input 50));
            let o = obs_of eng in
            check Alcotest.int (label ^ ": capacity") 16
              (Observe.ring_capacity o);
            if List.length (Observe.events o) > 16 then
              Alcotest.failf "[%s] ring exceeded its capacity" label;
            if Observe.events_seen o <= 16 then
              Alcotest.failf "[%s] expected overwritten events" label)
          backends);
    test "tracing charges no fuel and no memo budget" (fun () ->
        (* Satellite regression: the ring dump on Resource_exhausted must
           not change what the parse consumed — byte-identical governor
           accounting with and without observation. *)
        let g = nest_grammar () in
        let input = nest_input 200 in
        List.iter
          (fun (label, config) ->
            let base =
              Config.with_limits
                (Limits.v ~fuel:150 ~max_memo_bytes:2048 ())
                config
            in
            let plain = Engine.prepare_exn ~config:base g in
            let traced = Engine.prepare_exn ~config:(ring_only 64 base) g in
            let a = Engine.run plain input in
            let t = Engine.run traced input in
            check Alcotest.int (label ^ ": consumed") a.Engine.consumed
              t.Engine.consumed;
            check Alcotest.int (label ^ ": fuel")
              a.Engine.stats.Stats.fuel_used t.Engine.stats.Stats.fuel_used;
            check Alcotest.int
              (label ^ ": memo-degraded")
              a.Engine.stats.Stats.memo_degraded
              t.Engine.stats.Stats.memo_degraded;
            (match (a.Engine.result, t.Engine.result) with
            | Error ea, Error et ->
                check Alcotest.bool (label ^ ": both fuel trips") true
                  (Parse_error.exhausted_which ea = Some Limits.Fuel
                  && Parse_error.exhausted_which et = Some Limits.Fuel)
            | _ -> Alcotest.failf "[%s] expected both runs to trip" label);
            let evs = Observe.events (obs_of traced) in
            match List.rev evs with
            | last :: _ ->
                if last.Observe.kind <> Observe.Govern_trip then
                  Alcotest.failf "[%s] last ring event is not the trip" label
            | [] -> Alcotest.failf "[%s] empty ring after trip" label)
          backends);
    test "pp_events renders positions and source excerpts" (fun () ->
        let eng =
          Engine.prepare_exn
            ~config:(ring_only 4096 (governed Config.optimized))
            (dead_arm_grammar ())
        in
        ignore (Engine.run eng "ab");
        let dump =
          Format.asprintf "%a"
            (Observe.pp_events ~input:"ab" ?last:None)
            (obs_of eng)
        in
        List.iter
          (fun needle ->
            if not (contains dump needle) then
              Alcotest.failf "dump misses %s" needle)
          [ "enter"; "exit-ok"; "(1:1)" ]);
  ]

(* --- sessions ---------------------------------------------------------------- *)

let session_tests =
  [
    test "reparse pushes a memo-reuse ring event" (fun () ->
        let open Builder in
        let g =
          b
            [
              prod "S" (e "N" @: star (c '+' @: e "N"));
              prod "N" (plus (r '0' '9'));
            ]
        in
        List.iter
          (fun (label, config) ->
            let eng =
              Engine.prepare_exn ~config:(ring_only 4096 (governed config)) g
            in
            let sess = Session.create eng "12+34+56" in
            (match Session.reparse sess with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "[%s] cold: %s" label (Parse_error.message e));
            let is_reuse ev = ev.Observe.kind = Observe.Memo_reuse in
            if List.exists is_reuse (Observe.events (obs_of eng)) then
              Alcotest.failf "[%s] cold parse claimed reuse" label;
            Session.apply_edit sess ~start:7 ~old_len:1 ~replacement:"9";
            (match Session.reparse sess with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "[%s] warm: %s" label (Parse_error.message e));
            match
              List.find_opt is_reuse (Observe.events (obs_of eng))
            with
            | Some ev ->
                (* pos carries the reused count, aux the relocated one. *)
                if ev.Observe.pos <= 0 then
                  Alcotest.failf "[%s] reuse event counts nothing" label
            | None -> Alcotest.failf "[%s] no memo-reuse event" label)
          backends);
  ]

(* --- provenance -------------------------------------------------------------- *)

let provenance_tests =
  [
    test "identity assignment is deterministic" (fun () ->
        let g = Pipeline.optimize (Grammars.Minijava.grammar ()) in
        let p1 = Provenance.of_grammar g in
        let p2 = Provenance.of_grammar g in
        check Alcotest.int "nprods" (Provenance.nprods p1)
          (Provenance.nprods p2);
        check Alcotest.int "narms" (Provenance.narms p1) (Provenance.narms p2);
        for i = 0 to Provenance.nprods p1 - 1 do
          check Alcotest.string "name" (Provenance.prod_name p1 i)
            (Provenance.prod_name p2 i)
        done);
    test "arms_of recovers ids by physical identity" (fun () ->
        let g = dead_arm_grammar () in
        let prov = Provenance.of_grammar g in
        let alts =
          match (Grammar.find_exn g "A").Production.expr.Expr.it with
          | Expr.Alt alts -> alts
          | _ -> Alcotest.fail "A is not a choice"
        in
        let base = Provenance.arms_of prov alts in
        if base < 0 then Alcotest.fail "arms not found";
        let a = Provenance.arm prov base in
        check Alcotest.int "arm index" 0 a.Provenance.arm_index;
        (* A structurally equal but physically distinct list is unknown. *)
        let copy =
          List.map (fun (x : Expr.alt) -> { x with Expr.label = x.Expr.label })
            alts
        in
        check Alcotest.int "foreign list" (-1) (Provenance.arms_of prov copy));
  ]

let () =
  Alcotest.run "observe"
    [
      ("stats", stats_tests);
      ("zero-cost-off", off_tests);
      ("profiler", profile_tests);
      ("coverage", coverage_tests);
      ("trace-ring", ring_tests);
      ("sessions", session_tests);
      ("provenance", provenance_tests);
    ]
