(* Engine tests. Most behaviours are checked under all three standard
   configurations (naive, packrat, optimized) — any divergence between
   them is itself a bug, since the optimizations must be observationally
   transparent. *)

open Rats

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let value_eq = Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal

let configs =
  [ ("naive", Config.naive); ("packrat", Config.packrat);
    ("optimized", Config.optimized) ]

(* Run [f] under every configuration, labelling failures. *)
let each_config g f =
  List.iter
    (fun (label, cfg) ->
      match Engine.prepare ~config:cfg g with
      | Ok eng -> f label eng
      | Error (d :: _) ->
          Alcotest.failf "[%s] prepare: %s" label (Diagnostic.to_string d)
      | Error [] -> assert false)
    configs

let parse_ok label eng input =
  match Engine.parse eng input with
  | Ok v -> v
  | Error e ->
      Alcotest.failf "[%s] %S: %s" label input (Parse_error.message e)

let expect_value g input expected =
  each_config g (fun label eng ->
      check value_eq
        (Printf.sprintf "[%s] %S" label input)
        expected (parse_ok label eng input))

let expect_accepts g input yes =
  each_config g (fun label eng ->
      check Alcotest.bool
        (Printf.sprintf "[%s] %S" label input)
        yes (Engine.accepts eng input))

let b = Grammar.make_exn

(* --- matching and values ------------------------------------------------------ *)

let matching_tests =
  let open Builder in
  [
    test "literals match and yield no value" (fun () ->
        let g = b [ prod "S" (s "ab" @: c 'c') ] in
        expect_value g "abc" Value.Unit;
        expect_accepts g "abd" false;
        expect_accepts g "ab" false);
    test "classes yield the byte" (fun () ->
        let g = b [ prod "S" (r '0' '9') ] in
        expect_value g "7" (Value.Chr '7'));
    test "any yields the byte and respects eof" (fun () ->
        let g = b [ prod "S" any ] in
        expect_value g "x" (Value.Chr 'x');
        expect_accepts g "" false);
    test "empty matches the empty input" (fun () ->
        let g = b [ prod "S" eps ] in
        expect_value g "" Value.Unit);
    test "fail never matches" (fun () ->
        let g = b [ prod "S" (fail "boom" <|> c 'a') ] in
        expect_accepts g "a" true;
        expect_accepts g "b" false);
    test "sequence packs labeled components" (fun () ->
        let g = b [ prod "S" (("x" |: r 'a' 'z') @: c '-' @: ("y" |: r 'a' 'z')) ] in
        expect_value g "p-q"
          (Value.seq [ (Some "x", Value.Chr 'p'); (Some "y", Value.Chr 'q') ]));
    test "choice is ordered" (fun () ->
        let g = b [ prod "S" ((tok (s "aa") <|> tok (c 'a')) @: star any) ] in
        each_config g (fun label eng ->
            match parse_ok label eng "aa" with
            | Value.Node { children = (_, Value.Str first) :: _; _ } ->
                check Alcotest.string label "aa" first
            | Value.Str first -> check Alcotest.string label "aa" first
            | v -> Alcotest.failf "[%s] unexpected %s" label (Value.to_string v)));
    test "star collects values" (fun () ->
        let g = b [ prod "S" (star (r '0' '9')) ] in
        expect_value g "12" (Value.List [ Value.Chr '1'; Value.Chr '2' ]);
        expect_value g "" (Value.List []));
    test "plus needs one" (fun () ->
        let g = b [ prod "S" (plus (r '0' '9')) ] in
        expect_accepts g "" false;
        expect_value g "4" (Value.List [ Value.Chr '4' ]));
    test "opt yields unit when absent" (fun () ->
        let g = b [ prod "S" (opt (c 'x') @: c 'y') ] in
        expect_value g "y" Value.Unit;
        expect_value g "xy" Value.Unit);
    test "and-predicate consumes nothing" (fun () ->
        let g = b [ prod "S" (amp (c 'a') @: tok (star any)) ] in
        expect_value g "ab" (Value.Str "ab");
        expect_accepts g "ba" false);
    test "not-predicate consumes nothing" (fun () ->
        let g = b [ prod "S" (bang (c 'q') @: any) ] in
        expect_accepts g "x" true;
        expect_accepts g "q" false);
    test "token captures matched text" (fun () ->
        let g = b [ prod "S" (tok (plus (r 'a' 'z')) @: c '!') ] in
        expect_value g "hey!" (Value.Str "hey"));
    test "node wraps components" (fun () ->
        let g =
          b [ prod "S" (node "Pair" (("l" |: any) @: c ',' @: ("r" |: any))) ]
        in
        expect_value g "a,b"
          (Value.node "Pair" [ (Some "l", Value.Chr 'a'); (Some "r", Value.Chr 'b') ]));
    test "node records its span" (fun () ->
        let g = b [ prod "S" (c ' ' @: node "N" (s "ab")) ] in
        let eng = Engine.prepare_exn g in
        (match Engine.parse eng " ab" with
        | Ok (Value.Node { span; _ }) ->
            check Alcotest.int "start" 1 (Span.start span);
            check Alcotest.int "stop" 3 (Span.stop span)
        | Ok v -> Alcotest.failf "unexpected %s" (Value.to_string v)
        | Error _ -> Alcotest.fail "parse failed"));
    test "drop discards the value" (fun () ->
        let g = b [ prod "S" (void (r '0' '9') @: r 'a' 'z') ] in
        expect_value g "1x" (Value.Chr 'x'));
    test "standalone bind labels the value" (fun () ->
        let g = b [ prod "S" ("n" |: r '0' '9') ] in
        expect_value g "3" (Value.seq [ (Some "n", Value.Chr '3') ]));
    test "production kinds shape the value" (fun () ->
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S"
                (e "G" @: e "T" @: e "V");
              prod ~kind:Attr.Generic "G" (r 'a' 'z');
              prod ~kind:Attr.Text "T" (plus (r '0' '9'));
              prod ~kind:Attr.Void "V" (r 'a' 'z');
            ]
        in
        expect_value g "x42z"
          (Value.seq
             [
               (None, Value.node "G" [ (None, Value.Chr 'x') ]);
               (None, Value.Str "42");
             ]));
    test "grammar recursion" (fun () ->
        let g =
          b [ prod "S" (c '(' @: opt (e "S") @: c ')') ]
        in
        expect_accepts g "((()))" true;
        expect_accepts g "(()" false);
  ]

(* --- entry points and errors ---------------------------------------------------- *)

let entry_tests =
  let open Builder in
  [
    test "require_eof off allows trailing input" (fun () ->
        let g = b [ prod "S" (c 'a') ] in
        let eng = Engine.prepare_exn g in
        check Alcotest.bool "prefix ok" true
          (Result.is_ok (Engine.run eng ~require_eof:false "abc").Engine.result);
        check Alcotest.bool "eof enforced" false
          (Result.is_ok (Engine.run eng "abc").Engine.result));
    test "consumed reports the prefix length" (fun () ->
        let g = b [ prod "S" (plus (r 'a' 'z')) ] in
        let eng = Engine.prepare_exn g in
        let out = Engine.run eng ~require_eof:false "abc123" in
        check Alcotest.int "consumed" 3 out.Engine.consumed;
        check Alcotest.bool "ok" true (Result.is_ok out.Engine.result);
        let out = Engine.run eng "123" in
        check Alcotest.int "failed" (-1) out.Engine.consumed);
    test "start override" (fun () ->
        let g =
          Grammar.make_exn ~start:"A" [ prod "A" (c 'a'); prod "B" (c 'b') ]
        in
        let eng = Engine.prepare_exn g in
        check Alcotest.bool "default" true (Engine.accepts eng "a");
        check Alcotest.bool "override" true (Engine.accepts eng ~start:"B" "b"));
    test "unknown start raises" (fun () ->
        let g = b [ prod "S" (c 'a') ] in
        let eng = Engine.prepare_exn g in
        match Engine.parse eng ~start:"Zed" "a" with
        | exception Diagnostic.Fail _ -> ()
        | _ -> Alcotest.fail "expected failure");
    test "farthest failure position" (fun () ->
        let g = b [ prod "S" (s "ab" @: s "cd" <|> s "abce") ] in
        each_config g (fun label eng ->
            match Engine.parse eng "abcx" with
            | Error e ->
                check Alcotest.int label 3 e.Parse_error.position
            | Ok _ -> Alcotest.failf "[%s] unexpected success" label));
    test "expected set mentions candidates" (fun () ->
        let g = b [ prod "S" (c 'a' <|> c 'b') ] in
        let eng = Engine.prepare_exn ~config:Config.packrat g in
        match Engine.parse eng "z" with
        | Error e ->
            let msg = Parse_error.message e in
            check Alcotest.bool "a" true
              (String.length msg > 0 && e.Parse_error.expected <> [])
        | Ok _ -> Alcotest.fail "expected failure");
    test "error on trailing input mentions end of input" (fun () ->
        let g = b [ prod "S" (c 'a') ] in
        let eng = Engine.prepare_exn g in
        match Engine.parse eng "ab" with
        | Error e ->
            check Alcotest.bool "eof" true
              (List.mem "end of input" e.Parse_error.expected)
        | Ok _ -> Alcotest.fail "expected failure");
    test "left recursion rejected at prepare" (fun () ->
        let g = b [ prod "E" (e "E" @: c '+' <|> c 'n') ] in
        match Engine.prepare g with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    test "dangling reference rejected at prepare" (fun () ->
        let g = b [ prod "S" (e "Ghost") ] in
        match Engine.prepare g with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    test "vacuous repetition rejected at prepare" (fun () ->
        let g = b [ prod "S" (star (star (c 'x'))) ] in
        match Engine.prepare g with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
  ]

(* --- memoization ----------------------------------------------------------------- *)

(* A grammar designed to re-invoke [Tail] at the same position through
   backtracking: S = Tail 'x' / Tail 'y' / Tail. *)
let memo_grammar =
  let open Builder in
  Grammar.make_exn ~start:"S"
    [
      prod "S" (e "Tail" @: c 'x' <|> e "Tail" @: c 'y' <|> e "Tail");
      prod "Tail" (plus (r 'a' 'z'));
    ]

let memo_tests =
  [
    test "packrat hits where naive re-parses" (fun () ->
        let run cfg =
          let eng = Engine.prepare_exn ~config:cfg memo_grammar in
          (Engine.run eng "abcdef").Engine.stats
        in
        let naive = run Config.naive in
        let packrat = run Config.packrat in
        check Alcotest.int "no hits when naive" 0 naive.Stats.memo_hits;
        check Alcotest.bool "packrat hits" true (packrat.Stats.memo_hits >= 2);
        (* Tail is evaluated three times at position 0 by the naive
           engine but only once under packrat (plus two hits). *)
        check Alcotest.bool "fewer misses than naive evaluations" true
          (packrat.Stats.memo_misses < naive.Stats.invocations));
    test "chunked and hashtable agree on hits" (fun () ->
        let run memo =
          let eng =
            Engine.prepare_exn ~config:(Config.v ~memo ()) memo_grammar
          in
          (Engine.run eng "abcdef").Engine.stats
        in
        let h = run Config.Hashtable and c = run Config.Chunked in
        check Alcotest.int "hits" h.Stats.memo_hits c.Stats.memo_hits;
        check Alcotest.bool "chunks allocated" true (c.Stats.chunks_allocated > 0));
    test "memo slots shrink when transients are honored" (fun () ->
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "A" @: e "B");
              prod ~memo:Attr.Memo_never "A" (c 'a');
              prod "B" (c 'b');
            ]
        in
        let plain = Engine.prepare_exn ~config:(Config.v ~memo:Config.Chunked ()) g in
        let lean =
          Engine.prepare_exn
            ~config:(Config.v ~memo:Config.Chunked ~honor_transient:true ())
            g
        in
        check Alcotest.int "all slots" 3 (Engine.memo_slots plain);
        check Alcotest.int "fewer slots" 2 (Engine.memo_slots lean));
    test "failures are memoized too" (fun () ->
        let eng = Engine.prepare_exn ~config:Config.packrat memo_grammar in
        let stats = (Engine.run eng "abc!").Engine.stats in
        (* Tail fails at '!' once; S's alternatives each hit the memo. *)
        check Alcotest.bool "hits" true (stats.Stats.memo_hits >= 1));
    test "value-free memo hits restore Unit, never the vals row" (fun () ->
        (* The vmap contract, pinned end to end: a full-mode memo hit on
           a production whose slot is value-free (vslot = -1) must
           restore [Value.Unit] without touching the arena's vals row.
           T (Text, vslot 0) poisons the shared chunk at position 0 with
           its captured string before B (Void, vslot -1) stores and is
           then hit there — a hit that wrongly indexed the vals row
           would resurface T's "12" instead of Unit and change the
           parse value. Two inputs through the same engine cover both
           arena paths: the first run builds fresh scratch, the second
           reuses the parked pool (recycled chunks, values released). *)
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S"
                (("a" |: e "T") @: c 'x'
                <|> ("b" |: e "B") @: c 'y'
                <|> ("c" |: e "B") @: c ';');
              prod ~kind:Attr.Text ~memo:Attr.Memo_always "T"
                (plus (r '0' '9'));
              prod ~kind:Attr.Void ~memo:Attr.Memo_always "B"
                (plus (r '0' '9'));
            ]
        in
        let oracle = Engine.prepare_exn ~config:Config.naive g in
        List.iter
          (fun (label, cfg) ->
            let eng = Engine.prepare_exn ~config:cfg g in
            List.iter
              (fun input ->
                let expected = parse_ok "naive" oracle input in
                let out = Engine.run eng input in
                (match out.Engine.result with
                | Ok v ->
                    check value_eq
                      (Printf.sprintf "[%s] %S" label input)
                      expected v
                | Error e ->
                    Alcotest.failf "[%s] %S: %s" label input
                      (Parse_error.message e));
                check Alcotest.bool
                  (Printf.sprintf "[%s] %S hit the memo" label input)
                  true
                  (out.Engine.stats.Stats.memo_hits >= 1))
              [ "12;"; "345;" ])
          [
            ("optimized", Config.optimized);
            ("vm", Config.vm);
            ("chunked full", Config.v ~memo:Config.Chunked ());
          ]);
    test "dispatch prunes doomed alternatives" (fun () ->
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [ prod "S" (s "ax" <|> s "bx" <|> s "cx") ]
        in
        let no_dispatch = Engine.prepare_exn ~config:Config.packrat g in
        let dispatch =
          Engine.prepare_exn ~config:(Config.v ~dispatch:true ()) g
        in
        let b1 = (Engine.run no_dispatch "cx").Engine.stats.Stats.backtracks in
        let b2 = (Engine.run dispatch "cx").Engine.stats.Stats.backtracks in
        check Alcotest.int "no dispatch backtracks" 2 b1;
        check Alcotest.int "dispatch skips" 0 b2);
  ]

(* --- stateful parsing ---------------------------------------------------------------- *)

let typedef_grammar =
  (* A miniature of the C typedef problem:
     S    = Def Use
     Def  = "def " %record(T, Word) ";"
     Use  = %member(T, Word) ";"   (only defined words can be used)  *)
  let open Builder in
  Grammar.make_exn ~start:"S"
    [
      prod "S" (e "Def" @: e "Use");
      prod "Def" (s "def " @: record "T" (e "Word") @: c ';');
      prod "Use" (member "T" (e "Word") @: c ';');
      prod ~kind:Attr.Text "Word" (plus (r 'a' 'z'));
    ]

let state_tests =
  [
    test "recorded names become usable" (fun () ->
        expect_accepts typedef_grammar "def foo;foo;" true;
        expect_accepts typedef_grammar "def foo;bar;" false);
    test "absent requires non-membership" (fun () ->
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "Def" @: absent "T" (e "Word") @: c ';');
              prod "Def" (s "def " @: record "T" (e "Word") @: c ';');
              prod ~kind:Attr.Text "Word" (plus (r 'a' 'z'));
            ]
        in
        expect_accepts g "def foo;bar;" true;
        expect_accepts g "def foo;foo;" false);
    test "state rolls back on backtracking" (fun () ->
        (* First alternative records then fails; the record must not leak
           into the second alternative. *)
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S"
                (record "T" (e "Word") @: c '!'
                <|> e "Word" @: c ';' @: bang (member "T" (e "Word'")) @: e "Word'" @: c ';');
              prod ~kind:Attr.Text "Word" (plus (r 'a' 'z'));
              prod ~kind:Attr.Text "Word'" (plus (r 'a' 'z'));
            ]
        in
        (* "ab;ab;" — alternative 1 records "ab" then fails on '!'. If the
           rollback failed, !member would reject the second branch. *)
        expect_accepts g "ab;ab;" true);
    test "memoized stateful production replays after state change" (fun () ->
        (* S = A 'x' / A Use;  A = %record(T,'a').
           A runs at position 0 twice: once before the table rollback,
           once after. A stale memo hit would skip the re-record and Use
           would fail. *)
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (e "A" @: c 'x' <|> e "A" @: e "Use");
              prod "A" (record "T" (c 'a'));
              prod "Use" (member "T" (c 'a'));
            ]
        in
        expect_accepts g "aa" true);
    test "state snapshots are counted" (fun () ->
        (* Backtracking over a committed record restores the tables. *)
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (record "T" (c 'a') @: c '!' <|> c 'a' @: c 'b');
            ]
        in
        let eng = Engine.prepare_exn ~config:Config.packrat g in
        let stats = (Engine.run eng "ab").Engine.stats in
        check Alcotest.bool "snapshots" true (stats.Stats.state_snapshots >= 1));
    test "typedef behaviour survives every configuration" (fun () ->
        expect_accepts typedef_grammar "def abc;abc;" true);
  ]

(* --- tracing ---------------------------------------------------------------------------- *)

let trace_tests =
  let open Builder in
  let g =
    Grammar.make_exn ~start:"S"
      [ prod "S" (e "A" @: e "A"); prod "A" (plus (r 'a' 'z')) ]
  in
  let collect ?(config = Config.packrat) input =
    let events = ref [] in
    match
      Engine.trace ~config ~on_event:(fun ev -> events := ev :: !events) g input
    with
    | Ok out -> (out, List.rev !events)
    | Error _ -> Alcotest.fail "trace prepare failed"
  in
  [
    test "enter and exit events balance" (fun () ->
        let _, events = collect "ab" in
        let enters =
          List.length (List.filter (fun (e : Engine.trace_event) -> e.outcome = None) events)
        in
        let exits =
          List.length (List.filter (fun (e : Engine.trace_event) -> e.outcome <> None) events)
        in
        check Alcotest.int "balanced" enters exits;
        check Alcotest.bool "some events" true (enters > 0));
    test "event count equals invocation count times two" (fun () ->
        let out, events = collect "ab" in
        check Alcotest.int "2x invocations"
          (2 * out.Engine.stats.Stats.invocations)
          (List.length events));
    test "exits carry outcomes, failures are negative" (fun () ->
        let _, events = collect "a1" in
        check Alcotest.bool "has failure exit" true
          (List.exists
             (fun (e : Engine.trace_event) -> e.outcome = Some (-1))
             events));
    test "depth nests properly" (fun () ->
        let _, events = collect "ab" in
        let ok = ref true in
        let depth = ref 0 in
        List.iter
          (fun (e : Engine.trace_event) ->
            match e.outcome with
            | None ->
                if e.depth <> !depth then ok := false;
                incr depth
            | Some _ ->
                decr depth;
                if e.depth <> !depth then ok := false)
          events;
        check Alcotest.bool "nesting" true !ok;
        check Alcotest.int "returns to zero" 0 !depth);
    test "memo hits still appear as invocations" (fun () ->
        (* S invokes A twice at different positions; with the memo_grammar
           from above, hits show up as enter/exit pairs too. *)
        let events = ref 0 in
        (match
           Engine.trace ~config:Config.packrat
             ~on_event:(fun _ -> incr events)
             memo_grammar "abc"
         with
        | Ok out ->
            check Alcotest.int "2x invocations"
              (2 * out.Engine.stats.Stats.invocations)
              !events
        | Error _ -> Alcotest.fail "trace failed"));
  ]

(* --- pathological input --------------------------------------------------------------- *)

let path_tests =
  [
    test "packrat is immune to exponential backtracking" (fun () ->
        let g = Grammars.Path.grammar () in
        let eng = Engine.prepare_exn ~config:Config.packrat g in
        let input = Grammars.Corpus.pathological ~depth:60 in
        (* Would take astronomically long without memoization. *)
        check Alcotest.bool "accepts" true (Engine.accepts eng input));
    test "naive invocation count explodes, packrat's stays linear" (fun () ->
        let g = Grammars.Path.grammar () in
        let input = Grammars.Corpus.pathological ~depth:14 in
        let invs cfg =
          let eng = Engine.prepare_exn ~config:cfg g in
          (Engine.run eng input).Engine.stats.Stats.invocations
        in
        let naive = invs Config.naive and packrat = invs Config.packrat in
        check Alcotest.bool "exponential vs linear" true (naive > 20 * packrat));
  ]

(* --- resource limits ------------------------------------------------------------ *)

let calc_gram = lazy (Pipeline.optimize (Grammars.Calc.grammar ()))

let calc_eng cfg limits =
  Engine.prepare_exn ~config:(Config.with_limits limits cfg) (Lazy.force calc_gram)

let both_backends = [ ("closure", Config.optimized); ("vm", Config.vm) ]

let expect_trip label eng input which =
  match Engine.parse eng input with
  | Ok _ -> Alcotest.failf "[%s] unexpectedly accepted" label
  | Error e -> (
      match Parse_error.exhausted_which e with
      | Some w ->
          check Alcotest.string label (Limits.which_name which)
            (Limits.which_name w)
      | None ->
          Alcotest.failf "[%s] plain parse failure, expected %s trip: %s" label
            (Limits.which_name which) (Parse_error.message e))

let limits_tests =
  [
    test "fuel exhaustion is a structured error on both backends" (fun () ->
        let input = "1+1+1+1+1+1+1+1+1+1" in
        List.iter
          (fun (label, cfg) ->
            expect_trip label (calc_eng cfg (Limits.v ~fuel:20 ())) input
              Limits.Fuel)
          both_backends);
    test "depth exhaustion is a structured error on both backends" (fun () ->
        let input = Grammars.Corpus.pathological ~depth:64 in
        List.iter
          (fun (label, cfg) ->
            expect_trip label (calc_eng cfg (Limits.v ~max_depth:16 ())) input
              Limits.Depth)
          both_backends);
    test "oversized input is rejected before parsing" (fun () ->
        List.iter
          (fun (label, cfg) ->
            let eng = calc_eng cfg (Limits.v ~max_input_bytes:4 ()) in
            expect_trip label eng "1+1+1" Limits.Input;
            check Alcotest.bool (label ^ " small ok") true
              (Engine.accepts eng "1+1"))
          both_backends);
    test "trip reports the farthest position and renders a message"
      (fun () ->
        let eng = calc_eng Config.optimized (Limits.v ~fuel:30 ()) in
        match Engine.parse eng "1+1+1+1+1+1+1+1+1+1" with
        | Ok _ -> Alcotest.fail "expected a trip"
        | Error e ->
            check Alcotest.bool "position advanced" true
              (e.Parse_error.position > 0);
            check Alcotest.bool "message mentions fuel" true
              (String.length (Parse_error.message e) > 0
              && Parse_error.exhausted_which e = Some Limits.Fuel));
    test "hardened preset changes nothing on well-behaved input" (fun () ->
        let input = "(1+2)*3 - 4/2" in
        List.iter
          (fun (_, cfg) ->
            let free = calc_eng cfg Limits.unlimited in
            let gov = calc_eng cfg Limits.hardened in
            check value_eq "same value"
              (Result.get_ok (Engine.parse free input))
              (Result.get_ok (Engine.parse gov input)))
          both_backends);
    test "fuel accounting agrees across backends" (fun () ->
        let input = "(1+2)*(3+4)**2" in
        let used cfg =
          (Engine.run (calc_eng cfg Limits.hardened) input).Engine.stats
            .Stats.fuel_used
        in
        let closure = used Config.optimized and vm = used Config.vm in
        check Alcotest.bool "some fuel burned" true (closure > 0);
        check Alcotest.int "identical burn" closure vm);
    test "memo budget degrades instead of failing (all memo modes)"
      (fun () ->
        let input = "abcdef" in
        List.iter
          (fun (label, cfg) ->
            let full = Engine.prepare_exn ~config:cfg memo_grammar in
            let capped =
              Engine.prepare_exn
                ~config:(Config.with_limits (Limits.v ~max_memo_bytes:1 ()) cfg)
                memo_grammar
            in
            let of_run eng = Engine.run eng input in
            let a = of_run full and b = of_run capped in
            check Alcotest.bool (label ^ " same result") true
              (Result.is_ok a.Engine.result = Result.is_ok b.Engine.result);
            check Alcotest.int (label ^ " no stores under cap") 0
              b.Engine.stats.Stats.memo_stores;
            check Alcotest.bool (label ^ " degradations counted") true
              (b.Engine.stats.Stats.memo_degraded > 0))
          [
            ("hashtable", Config.packrat);
            ("chunked", Config.v ~memo:Config.Chunked ());
            ("vm-hashtable", Config.with_backend Config.Bytecode Config.packrat);
            ("vm-chunked",
             Config.with_backend Config.Bytecode (Config.v ~memo:Config.Chunked ()));
          ]);
    test "degraded run still memo-hits within the budget" (fun () ->
        (* Re-invokes T at every input position; a budget of two chunks
           leaves early positions memoized (serving hits) while later
           ones degrade. *)
        let open Builder in
        let g =
          Grammar.make_exn ~start:"S"
            [
              prod "S" (star (e "I"));
              prod "I" (e "T" @: c 'x' <|> e "T");
              prod "T" (r 'a' 'z');
            ]
        in
        let chunked = Config.v ~memo:Config.Chunked () in
        let budget =
          2 * Limits.chunk_cost
                (Engine.memo_slots (Engine.prepare_exn ~config:chunked g))
        in
        let eng =
          Engine.prepare_exn
            ~config:(Config.with_limits (Limits.v ~max_memo_bytes:budget ()) chunked)
            g
        in
        let stats = (Engine.run eng "ababab").Engine.stats in
        check Alcotest.bool "hits" true (stats.Stats.memo_hits >= 1);
        check Alcotest.bool "degraded" true (stats.Stats.memo_degraded >= 1));
    test "parsing twice yields identical stats (state resets per parse)"
      (fun () ->
        (* Mutable per-parse accounting (memo bytes in particular) must
           start fresh on every run: under a tight budget, a leak from
           the first parse would degrade memoization — and so change the
           counters — on the second. *)
        let input = "(1+2)*(3+4)-5" in
        List.iter
          (fun (label, cfg) ->
            let eng =
              calc_eng cfg (Limits.v ~fuel:100_000 ~max_memo_bytes:512 ())
            in
            let snapshot () =
              let o = Engine.run eng input in
              let st = o.Engine.stats in
              ( Result.is_ok o.Engine.result,
                st.Stats.invocations,
                st.Stats.memo_hits,
                st.Stats.memo_misses,
                st.Stats.memo_stores,
                st.Stats.memo_degraded,
                st.Stats.fuel_used )
            in
            let a = snapshot () and b = snapshot () in
            if a <> b then Alcotest.failf "%s: second parse drifted" label)
          [
            ("closure", Config.optimized);
            ("closure-hashtable", Config.packrat);
            ("vm", Config.vm);
            ( "vm-hashtable",
              Config.with_backend Config.Bytecode Config.packrat );
          ]);
  ]

(* --- the expected tracker's 32-entry cap ----------------------------------- *)

let expected_tests =
  [
    test "overflow keeps the 32 smallest labels, in any arrival order"
      (fun () ->
        (* The tracker holds at most [Expected.max_entries] distinct
           descriptions per position. Feed 48 distinct labels in two
           opposite orders: the retained set must be the same — the
           lexicographically smallest 32 — or the two back ends (which
           visit alternatives in different orders) would report
           different errors past the cap. *)
        let labels = List.init 48 (Printf.sprintf "lbl%02d") in
        let run order =
          let t = Expected.create () in
          List.iter (fun l -> Expected.record t 5 l) order;
          (* duplicates never displace anything *)
          List.iter (fun l -> Expected.record t 5 l) order;
          List.sort String.compare (Expected.descriptions t)
        in
        let fwd = run labels and rev = run (List.rev labels) in
        check Alcotest.int "cap" Expected.max_entries (List.length fwd);
        check (Alcotest.list Alcotest.string) "order-independent" fwd rev;
        check (Alcotest.list Alcotest.string) "the 32 smallest"
          (List.filteri (fun i _ -> i < Expected.max_entries)
             (List.sort String.compare labels))
          fwd);
    test "a new farthest position resets an overflowed list" (fun () ->
        let t = Expected.create () in
        List.iter
          (fun l -> Expected.record t 2 l)
          (List.init 40 (Printf.sprintf "old%02d"));
        Expected.record t 7 "fresh";
        check Alcotest.int "farthest" 7 (Expected.farthest t);
        check
          (Alcotest.list Alcotest.string)
          "reset" [ "fresh" ] (Expected.descriptions t));
    test "both engines report the same expected set past the cap" (fun () ->
        (* 40 distinct literal alternatives, all sharing the "kw" prefix
           so FIRST-byte dispatch cannot prune them, all failing at
           offset 2 on "kw~~" — more than the cap, so the deterministic
           overflow rule is what keeps closure and VM reports
           identical. *)
        let open Builder in
        let g =
          b
            [
              prod "S"
                (alt (List.init 40 (fun i -> s (Printf.sprintf "kw%02d!" i))));
            ]
        in
        let report cfg =
          match Engine.prepare ~config:cfg g with
          | Error _ -> Alcotest.fail "prepare"
          | Ok eng -> (
              match Engine.parse eng "kw~~" with
              | Ok _ -> Alcotest.fail "unexpected success"
              | Error e ->
                  check Alcotest.int "cap respected" Expected.max_entries
                    (List.length e.Parse_error.expected);
                  (e.Parse_error.position, e.Parse_error.expected))
        in
        let closure = report Config.optimized and vm = report Config.vm in
        check Alcotest.int "same position" (fst closure) (fst vm);
        check
          (Alcotest.list Alcotest.string)
          "same expected set" (snd closure) (snd vm));
  ]

let () =
  Alcotest.run "runtime"
    [
      ("matching", matching_tests);
      ("entry", entry_tests);
      ("memo", memo_tests);
      ("state", state_tests);
      ("trace", trace_tests);
      ("pathological", path_tests);
      ("limits", limits_tests);
      ("expected", expected_tests);
    ]
