(* rml — the rats-ml command-line driver.

   Subcommands: modules, compose, analyze, parse, generate. Grammars come
   from .rats files or from the built-in collection (--builtin).

   Exit codes are part of the interface (scripts sort failures by them):
   0 success, 2 usage, 3 grammar/parse failure, 4 resource exhaustion,
   5 internal error. No code path may escape with an uncaught exception
   — every subcommand body runs under [guarded]. *)

open Cmdliner

let exit_parse = 3
let exit_resource = 4
let exit_internal = 5

exception Input_over_cap of int

let guarded f =
  try f () with
  | Input_over_cap cap ->
      Fmt.epr "rml: %s (%d-byte cap)@."
        (Rats.Limits.which_message Rats.Limits.Input)
        cap;
      exit_resource
  | Rats.Diagnostic.Fail d ->
      Fmt.epr "%s@." (Rats.Diagnostic.to_string d);
      exit_parse
  | Sys_error msg ->
      Fmt.epr "rml: %s@." msg;
      exit_parse
  | Stack_overflow ->
      Fmt.epr "rml: stack overflow@.";
      exit_resource
  | Out_of_memory ->
      Fmt.epr "rml: out of memory@.";
      exit_resource
  | e ->
      Fmt.epr "rml: internal error: %s@." (Printexc.to_string e);
      exit_internal

let builtin_texts = function
  | "calc" -> Some Rats.Grammars.Calc.texts
  | "json" -> Some Rats.Grammars.Json.texts
  | "minic" -> Some Rats.Grammars.Minic.texts
  | "minic-ext" ->
      Some (Rats.Grammars.Minic.texts @ Rats.Grammars.Minic.extension_texts)
  | "minijava" -> Some Rats.Grammars.Minijava.texts
  | "rats" -> Some Rats.Grammars.Metagrammar.texts
  | "path" -> Some Rats.Grammars.Path.texts
  | _ -> None

let builtin_root = function
  | "calc" -> Some "calc.Main"
  | "json" -> Some "json.Main"
  | "minic" -> Some "c.Program"
  | "minic-ext" -> Some "cx.Program"
  | "minijava" -> Some "j.Program"
  | "rats" -> Some "rats.Syntax"
  | "path" -> Some "path.Main"
  | _ -> None

let print_errors ds =
  List.iter
    (fun d -> Fmt.epr "%s@." (Rats.Diagnostic.to_string d))
    ds;
  exit_parse

(* --- shared arguments ------------------------------------------------------ *)

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"GRAMMAR" ~doc:"Grammar module files (.rats).")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "builtin" ] ~docv:"NAME"
        ~doc:
          "Use a built-in grammar collection instead of files: calc, json, \
           minic, minic-ext, minijava, rats (the module language itself) or path.")

let root_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "r"; "root" ] ~docv:"MODULE"
        ~doc:"Root module to compose (defaults to the built-in's root).")

let start_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "start" ] ~docv:"PROD" ~doc:"Start production.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the grammar optimization pipeline before use.")

let config_arg =
  let conv_config = function
    | "naive" -> Ok Rats.Config.naive
    | "packrat" -> Ok Rats.Config.packrat
    | "optimized" -> Ok Rats.Config.optimized
    | "vm" -> Ok Rats.Config.vm
    | s -> Error (`Msg (Printf.sprintf "unknown configuration %S" s))
  in
  Arg.(
    value
    & opt
        (conv ((fun s -> conv_config s), fun ppf c -> Fmt.string ppf (Rats.Config.describe c)))
        Rats.Config.optimized
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"Engine configuration: naive, packrat, optimized or vm.")

let engine_arg =
  let conv_engine = function
    | "closure" -> Ok Rats.Config.Closure
    | "vm" | "bytecode" -> Ok Rats.Config.Bytecode
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  Arg.(
    value
    & opt
        (some
           (conv
              ( (fun s -> conv_engine s),
                fun ppf b -> Fmt.string ppf (Rats.Config.backend_name b) )))
        None
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution back end: closure (a network of OCaml closures) or vm \
           (flat bytecode with an explicit backtrack stack). Overrides the \
           configuration's choice.")

let load_modules files builtin =
  match (files, builtin) with
  | [], None ->
      Error [ Rats.Diagnostic.error "no grammar files and no --builtin given" ]
  | files, builtin -> (
      let texts =
        match builtin with
        | Some name -> (
            match builtin_texts name with
            | Some ts -> Ok ts
            | None ->
                Error
                  [ Rats.Diagnostic.errorf "unknown built-in grammar %S" name ])
        | None -> Ok []
      in
      match texts with
      | Error ds -> Error ds
      | Ok texts -> (
          let from_texts =
            List.concat_map
              (fun t ->
                match Rats.modules_of_string t with
                | Ok ms -> ms
                | Error (d :: _) -> raise (Rats.Diagnostic.Fail d)
                | Error [] ->
                    raise
                      (Rats.Diagnostic.Fail
                         (Rats.Diagnostic.error "built-in grammar failed to parse")))
              texts
          in
          match
            List.fold_left
              (fun acc f ->
                match acc with
                | Error _ as e -> e
                | Ok ms -> (
                    match Rats.modules_of_file f with
                    | Ok more -> Ok (ms @ more)
                    | Error ds -> Error ds))
              (Ok from_texts) files
          with
          | exception Rats.Diagnostic.Fail d -> Error [ d ]
          | r -> r))

let read_input input =
  if input = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_bin input In_channel.input_all

let apply_engine engine config =
  match engine with
  | None -> config
  | Some b -> Rats.Config.with_backend b config

let compose_from files builtin root start =
  match load_modules files builtin with
  | Error ds -> Error ds
  | Ok modules -> (
      let root =
        match (root, builtin) with
        | Some r, _ -> Some r
        | None, Some b -> builtin_root b
        | None, None -> None
      in
      match root with
      | None -> Error [ Rats.Diagnostic.error "no --root given" ]
      | Some root -> Rats.compose ?start ~root modules)

(* --- subcommands ------------------------------------------------------------ *)

let modules_cmd =
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:"Emit the module dependency graph in graphviz format.")
  in
  let run files builtin dot =
    guarded @@ fun () ->
    match load_modules files builtin with
    | Error ds -> print_errors ds
    | Ok modules ->
        if dot then (
          Fmt.pr "digraph modules {@.";
          Fmt.pr "  rankdir=LR; node [shape=box, fontname=monospace];@.";
          List.iter
            (fun (m : Rats.Module_ast.t) ->
              Fmt.pr "  %S;@." m.name;
              List.iter
                (fun (d : Rats.Module_ast.dependency) ->
                  let style =
                    match d.dep_kind with
                    | Rats.Module_ast.Import -> ""
                    | Rats.Module_ast.Modify ->
                        " [style=bold, color=red, label=\"modify\"]"
                  in
                  (* Parameter targets are drawn as dashed placeholders. *)
                  if List.mem d.target m.params then
                    Fmt.pr "  %S -> %S [style=dashed, label=%S];@." m.name
                      (m.name ^ "." ^ d.target)
                      (match d.dep_kind with
                      | Rats.Module_ast.Modify -> "modify param"
                      | Rats.Module_ast.Import -> "import param")
                  else Fmt.pr "  %S -> %S%s;@." m.name d.target style)
                m.deps)
            modules;
          Fmt.pr "}@.";
          0)
        else (
          List.iter
            (fun (m : Rats.Module_ast.t) ->
              Fmt.pr "module %s(%s)@." m.name (String.concat ", " m.params);
              List.iter
                (fun (d : Rats.Module_ast.dependency) ->
                  Fmt.pr "  %s %s(%s) as %s@."
                    (match d.dep_kind with
                    | Rats.Module_ast.Import -> "import"
                    | Rats.Module_ast.Modify -> "modify")
                    d.target
                    (String.concat ", " d.args)
                    (Rats.Module_ast.dep_alias d))
                m.deps;
              Fmt.pr "  %d items@." (List.length m.items))
            modules;
          0)
  in
  Cmd.v (Cmd.info "modules" ~doc:"List the modules in the given grammars.")
    Term.(const run $ files_arg $ builtin_arg $ dot_arg)

let leftrec_arg =
  Arg.(
    value & flag
    & info [ "L"; "eliminate-left-recursion" ]
        ~doc:
          "Enable the opt-in \"leftrec\" registry pass: rewrite direct left \
           recursion into iteration before use.")

(* The one place the -L flag maps to the optimizer: the registered
   repair pass, run through the driver like every other pass. *)
let apply_leftrec g =
  match Rats.Pipeline.find_pass "leftrec" with
  | None -> g
  | Some p -> (Rats.Driver.run_exn ~gate:false [ p ] g).Rats.Driver.grammar

let compose_cmd =
  let run files builtin root start optimize leftrec =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g ->
        let g = if leftrec then apply_leftrec g else g in
        let g = if optimize then Rats.Pipeline.optimize g else g in
        Fmt.pr "%s" (Rats.Pretty.grammar_to_string g);
        0
  in
  Cmd.v
    (Cmd.info "compose"
       ~doc:"Compose grammar modules and print the flat grammar.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg
      $ optimize_arg $ leftrec_arg)

(* --- the pass manager on the command line --------------------------------- *)

let optimize_cmd =
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Print one row per executed pass: wall time, production count \
             and IR-node count before/after.")
  in
  let print_arg =
    Arg.(
      value & flag
      & info [ "p"; "print" ] ~doc:"Print the optimized grammar when done.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-run the well-formedness check after every pass and abort if \
             a pass broke the grammar.")
  in
  let dump_after_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-after" ] ~docv:"PASS"
          ~doc:"Print the intermediate grammar right after the named pass.")
  in
  let passes_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "passes" ] ~docv:"LIST"
          ~doc:
            "Comma-separated registry pass names to run instead of the \
             default pipeline (see $(b,rml passes)).")
  in
  let run files builtin root start leftrec passes trace print_grammar verify
      dump_after =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g -> (
        let named =
          match passes with
          | None -> Ok (Rats.Pipeline.passes ())
          | Some list ->
              List.fold_left
                (fun acc name ->
                  match (acc, Rats.Pipeline.find_pass name) with
                  | (Error _ as e), _ -> e
                  | Ok ps, Some p -> Ok (ps @ [ p ])
                  | Ok _, None ->
                      Error
                        [
                          Rats.Diagnostic.errorf
                            "unknown pass %S (try: rml passes)" name;
                        ])
                (Ok [])
                (String.split_on_char ',' (String.trim list))
        in
        match named with
        | Error ds -> print_errors ds
        | Ok selected -> (
            let selected =
              if not leftrec then selected
              else
                match Rats.Pipeline.find_pass "leftrec" with
                | Some p -> p :: selected
                | None -> selected
            in
            let dump_after =
              Option.map
                (fun name (p : Rats.Pass.t) g' ->
                  if String.equal p.Rats.Pass.name name then
                    Fmt.pr "; after %s@.%s@." name
                      (Rats.Pretty.grammar_to_string g'))
                dump_after
            in
            match Rats.Driver.run ?dump_after ~verify selected g with
            | Error ds -> print_errors ds
            | Ok o ->
                List.iter
                  (fun d -> Fmt.epr "%s@." (Rats.Diagnostic.to_string d))
                  o.Rats.Driver.warnings;
                if trace then
                  Fmt.pr "%a" Rats.Stats.pp_pass_table o.Rats.Driver.rows;
                if print_grammar then
                  Fmt.pr "%s" (Rats.Pretty.grammar_to_string o.Rats.Driver.grammar);
                if (not trace) && not print_grammar then
                  Fmt.pr
                    "%d passes, %d -> %d productions, %d -> %d nodes, %.2f \
                     ms (use --trace for the per-pass table)@."
                    (List.length o.Rats.Driver.rows)
                    (Rats.Grammar.length g)
                    (Rats.Grammar.length o.Rats.Driver.grammar)
                    (Rats.Grammar.size g)
                    (Rats.Grammar.size o.Rats.Driver.grammar)
                    (1000. *. Rats.Driver.total_time o);
                0))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Run the optimizer pass pipeline over a composed grammar, with \
          per-pass instrumentation.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg $ leftrec_arg
      $ passes_opt_arg $ trace_arg $ print_arg $ verify_arg $ dump_after_arg)

let passes_cmd =
  let run () =
    guarded @@ fun () ->
    let show (p : Rats.Pass.t) =
      Fmt.pr "  %-12s %-10s %-12s %s@." p.Rats.Pass.name
        (match p.Rats.Pass.stage with
        | Rats.Pass.Repair -> "repair"
        | Rats.Pass.Optimize -> "optimize")
        (match p.Rats.Pass.invalidates with
        | Rats.Analysis_ctx.Nothing -> "keeps-cache"
        | Rats.Analysis_ctx.Analyses -> "structural")
        p.Rats.Pass.doc
    in
    Fmt.pr "default pipeline (in order):@.";
    List.iter show (Rats.Pipeline.passes ());
    Fmt.pr "@.opt-in (enable with --passes or -L):@.";
    List.iter show Rats.Pipeline.optional_passes;
    Fmt.pr "@.E3 ladder steps (cumulative; passes in brackets):@.";
    List.iter
      (fun (s : Rats.Pipeline.step) ->
        Fmt.pr "  %-14s %-22s %s@." s.Rats.Pipeline.label
          (match s.Rats.Pipeline.passes with
          | [] -> "[engine/config only]"
          | ps ->
              Printf.sprintf "[%s]"
                (String.concat ", "
                   (List.map (fun (p : Rats.Pass.t) -> p.Rats.Pass.name) ps)))
          s.Rats.Pipeline.detail)
      (Rats.Pipeline.registry ());
    0
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"List the registered optimizer passes and the E3 ladder steps.")
    Term.(const run $ const ())

let fmt_cmd =
  let run files builtin =
    guarded @@ fun () ->
    match load_modules files builtin with
    | Error ds -> print_errors ds
    | Ok modules ->
        List.iter
          (fun m -> Fmt.pr "%s@." (Rats.Meta_print.module_to_string m))
          modules;
        0
  in
  Cmd.v
    (Cmd.info "fmt"
       ~doc:"Parse grammar modules and print them back formatted.")
    Term.(const run $ files_arg $ builtin_arg)

let analyze_cmd =
  let run files builtin root start =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g ->
        let a = Rats.Analysis.analyze g in
        let issues = Rats.Analysis.check a in
        Fmt.pr "productions:      %d@." (Rats.Grammar.length g);
        Fmt.pr "grammar size:     %d IR nodes@." (Rats.Grammar.size g);
        Fmt.pr "start symbol:     %s@." (Rats.Grammar.start g);
        let reach = Rats.Analysis.reachable a in
        Fmt.pr "reachable:        %d@."
          (Rats.Analysis.StringSet.cardinal reach);
        let terminals = Rats.Passes.terminal_set g in
        Fmt.pr "terminal-level:   %d@."
          (Rats.Analysis.StringSet.cardinal terminals);
        let stateful =
          List.length
            (List.filter
               (fun (p : Rats.Production.t) -> Rats.Analysis.stateful a p.name)
               (Rats.Grammar.productions g))
        in
        Fmt.pr "stateful:         %d@." stateful;
        let lints = Rats.Lint.check g in
        Fmt.pr "lint warnings:    %d@." (List.length lints);
        List.iter (fun d -> Fmt.pr "%s@." (Rats.Diagnostic.to_string d)) lints;
        if issues = [] then (
          Fmt.pr "well-formed:      yes@.";
          0)
        else (
          List.iter (fun d -> Fmt.pr "%s@." (Rats.Diagnostic.to_string d)) issues;
          1)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Compose and report static analysis and well-formedness.")
    Term.(const run $ files_arg $ builtin_arg $ root_arg $ start_arg)

(* Edit scripts for [parse --edits]: one edit per line, [START OLD_LEN
   TEXT] — replace OLD_LEN bytes at byte offset START with TEXT, which
   is the rest of the line after the second space (absent for pure
   deletions). Blank lines and lines starting with '#' are skipped. *)

let unescape_edit_text s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then (
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | '\\' -> Buffer.add_char b '\\'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       incr i)
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let parse_edit_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
      let start = int_of_string_opt (String.sub line 0 i) in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      let old_len, text =
        match String.index_opt rest ' ' with
        | None -> (int_of_string_opt rest, "")
        | Some j ->
            ( int_of_string_opt (String.sub rest 0 j),
              String.sub rest (j + 1) (String.length rest - j - 1) )
      in
      match (start, old_len) with
      | Some s, Some o when s >= 0 && o >= 0 ->
          Some (s, o, unescape_edit_text text)
      | _ -> None)

let parse_cmd =
  let input_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input file to parse ('-' for stdin).")
  in
  let stdin_arg =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Read the input document from standard input (same as -i -), so \
             batch pipelines can stream documents without temp files.")
  in
  let mmap_arg =
    Arg.(
      value & flag
      & info [ "mmap" ]
          ~doc:
            "Memory-map the input file and parse it in place (zero-copy): \
             the document bytes never enter the OCaml heap. Results, stats \
             and error reports are identical to a normal read. Incompatible \
             with stdin (pipes cannot be mapped); with --edits the first \
             edit falls back to copy-on-write, materializing the patched \
             buffer on the heap — the mapping itself is never written.")
  in
  let recognize_arg =
    Arg.(
      value & flag
      & info [ "recognize" ]
          ~doc:
            "Parse in recognizer mode: erase every production kind to Void \
             before preparing the engine, so the run builds no semantic \
             values and (under the optimized configurations) allocates a \
             constant number of bytes regardless of input size. Verdicts, \
             consumed bytes, error reports, exit codes and the memo/fuel \
             --stats counters are identical to a normal parse (only the \
             VM's instruction counter shrinks: the voidified program \
             compiles fewer value instructions); the tree printed on \
             success is (). Incompatible with --edits, whose reparses \
             exist to rebuild values.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print parse statistics.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Do not print the tree.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print production enter/exit events (capped at 500 lines).")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Abort after N production invocations (exit 4). Deterministic: \
             the same input always trips at the same point, on either \
             engine.")
  in
  let max_depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Cap invocation nesting at N levels (exit 4 when exceeded).")
  in
  let max_memo_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-memo" ] ~docv:"BYTES"
          ~doc:
            "Approximate memo-table budget. Exhausting it never fails the \
             parse: further productions run un-memoized (see memo-degraded \
             under --stats).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Give up after roughly SECONDS of wall clock (exit 4). \
             Implemented signal-free by running with a bounded fuel slice \
             and doubling it while time remains, so the engines stay \
             deterministic.")
  in
  let max_input_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-input" ] ~docv:"BYTES"
          ~doc:
            "Reject inputs longer than BYTES (exit 4). Streamed inputs \
             (--stdin, --batch) are read in bounded chunks that stop at the \
             cap, so an unbounded stream never exhausts memory.")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "batch" ] ~docv:"MANIFEST|-"
          ~doc:
            "Parse a whole corpus under per-document fault isolation: \
             compile the grammar once, then parse every document named by \
             MANIFEST (one path per line, '#' comments) or streamed on \
             standard input ('-', documents separated by --batch-sep). Each \
             document gets its own resource budgets and --doc-timeout \
             deadline; every failure — malformed input, budget trip, \
             unreadable file, even an engine bug — becomes a JSON-lines \
             record on stdout instead of ending the run. Documents that \
             trip the fuel, depth or memory budget are retried once in \
             recognizer mode (the degradation ladder); the record says \
             which rung answered. The final line is an aggregate summary; \
             the exit code is the worst class seen (5 internal, else 4 \
             resource, else 3 syntax/io, else 0).")
  in
  let batch_sep_arg =
    Arg.(
      value
      & opt (enum [ ("nul", '\000'); ("line", '\n') ]) '\000'
      & info [ "batch-sep" ] ~docv:"SEP"
          ~doc:
            "Document separator for '--batch -' streams: nul (default; \
             documents may contain newlines) or line.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject deterministic faults into a --batch run (testing): a \
             comma-separated plan of seed=N, rate=F (fraction of documents \
             hit, seeded per-document coin), trunc\\@K (truncate reads at K \
             bytes), io\\@K (fail reads after K bytes), fuel\\@N / memo\\@N \
             (cap those budgets so the governor trips), skew\\@NS (step the \
             deadline clock by NS nanoseconds after arming). Example: \
             'seed=7,rate=0.5,trunc\\@64,fuel\\@10000'.")
  in
  let doc_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "doc-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-document deadline for --batch runs, measured on the \
             monotonic clock with the same signal-free fuel-slice \
             discipline as --timeout. An expired document is recorded as a \
             resource failure ('deadline') and the batch moves on.")
  in
  let edits_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "edits" ] ~docv:"FILE"
          ~doc:
            "Replay an edit script through an incremental parse session. \
             Each non-blank line is 'START OLD_LEN TEXT': replace OLD_LEN \
             bytes at byte offset START with TEXT (the rest of the line; \
             escapes \\\\n \\\\t \\\\r \\\\\\\\ are decoded; omit TEXT to \
             delete). '#' lines are comments. The buffer is re-parsed \
             after every edit, reporting reused/relocated memo entries; \
             the exit code reflects the final parse.")
  in
  let profile_flag_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Profile per-production cost during the parse and print the \
             sorted table when done (see also $(b,rml profile)).")
  in
  let trace_ring_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:
            "Keep a bounded ring of the last N structured parse events and \
             dump it to stderr when the parse fails or a resource budget \
             trips. Recording charges no fuel and none of the memo budget, \
             so governed runs consume exactly what unobserved ones do.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export pipeline metrics from a --batch run: per-document \
             latency/fuel/memo-byte histograms (with p50/p90/p99), \
             rung/fail-class counters and GC + memo-arena gauges. The \
             format follows the extension: .prom (Prometheus text \
             exposition) or .json. Without this flag the metrics record \
             path is never entered and batch output is byte-identical.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a batch-level Chrome trace (chrome://tracing JSON) of \
             the --batch run: grammar compiles, per-document parses, \
             ladder-rung attempts and injected-fault markers on one \
             timeline.")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print a heartbeat to stderr while a --batch run progresses: \
             documents done (of total, when known), docs/sec, p50/p99 \
             latency so far, and the worst failure class seen. JSONL \
             output on stdout is unchanged.")
  in
  let stats_json_arg =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:
            "Print parse statistics as one JSON object (the machine-readable \
             twin of --stats: same 14 counters, same order). Incompatible \
             with --batch, whose JSONL records carry their own counters.")
  in
  let run files builtin root start optimize config engine fuel max_depth
      max_memo max_input timeout input use_stdin mmap batch batch_sep
      faults_spec doc_timeout recognize stats quiet trace edits profile ring
      metrics_out trace_out progress stats_json =
    guarded @@ fun () ->
    (* Resolve where the document comes from before any heavy work, so
       usage mistakes exit 2 without compiling a grammar. *)
    let from_stdin = use_stdin || input = Some "-" in
    let input_err msg =
      Fmt.epr "rml: %s@." msg;
      Some 2
    in
    let faults_plan =
      match faults_spec with
      | None -> Ok Rats.Faults.none
      | Some s -> Rats.Faults.of_spec s
    in
    let usage_error =
      match batch with
      | Some _ -> (
          if
            input <> None || use_stdin || mmap || edits <> None || trace
            || profile || ring <> None || timeout <> None
          then
            input_err
              "--batch is incompatible with \
               --input/--stdin/--mmap/--edits/--trace/--profile/--trace-ring/--timeout \
               (use --doc-timeout for per-document deadlines)"
          else if stats_json then
            input_err
              "--stats-json requires a single-document parse (batch records \
               carry their own counters)"
          else
            match metrics_out with
            | Some f
              when not
                     (Filename.check_suffix f ".prom"
                     || Filename.check_suffix f ".json") ->
                input_err "--metrics FILE must end in .prom or .json"
            | _ -> (
                match faults_plan with Error m -> input_err m | Ok _ -> None))
      | None ->
          if faults_spec <> None then input_err "--faults requires --batch"
          else if doc_timeout <> None then
            input_err "--doc-timeout requires --batch"
          else if metrics_out <> None then
            input_err "--metrics requires --batch"
          else if trace_out <> None then
            input_err "--trace-out requires --batch"
          else if progress then input_err "--progress requires --batch"
          else if recognize && edits <> None then
            input_err
              "--recognize is incompatible with --edits (recognizer runs \
               build no values to reparse incrementally)"
          else (
            match (input, use_stdin) with
            | None, false ->
                input_err "no input (use -i FILE, -i - or --stdin)"
            | Some f, true when f <> "-" ->
                input_err "both --input and --stdin given"
            | _ when mmap && from_stdin ->
                input_err "--mmap cannot map standard input (pipes have no length)"
            | _ -> None)
    in
    match usage_error with
    | Some code -> code
    | None -> (
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g -> (
        let config = apply_engine engine config in
        let config =
          match (fuel, max_depth, max_memo, max_input) with
          | None, None, None, None -> config
          | _ ->
              Rats.Config.with_limits
                (Rats.Limits.v ?fuel ?max_depth ?max_memo_bytes:max_memo
                   ?max_input_bytes:max_input ())
                config
        in
        let observe =
          let w = Rats.Observe.off in
          let w =
            if profile then { w with Rats.Observe.profile = true } else w
          in
          match ring with
          | None -> w
          | Some n ->
              {
                w with
                Rats.Observe.events = true;
                ring_bytes = max 1 n * Rats.Observe.event_bytes;
              }
        in
        let config =
          if Rats.Observe.enabled observe then
            Rats.Config.with_observe observe config
          else config
        in
        let dump_ring eng text =
          match ring with
          | None -> ()
          | Some _ -> (
              match Rats.Engine.observation eng with
              | Some o ->
                  Fmt.epr "%a" (Rats.Observe.pp_events ~input:text ?last:None) o
              | None -> ())
        in
        let print_profile eng =
          if profile then
            match Rats.Engine.observation eng with
            | Some o -> (
                match Rats.Observe.profile o with
                | Some p -> Fmt.pr "%a" (Rats.Profile.pp_table ?top:None) p
                | None -> ())
            | None -> ()
        in
        if trace && config.Rats.Config.backend = Rats.Config.Bytecode then
          Fmt.epr "note: tracing runs on the closure engine@.";
        if trace && (profile || ring <> None) then
          Fmt.epr "note: --profile/--trace-ring are ignored with --trace@.";
        let g = if optimize then Rats.Pipeline.optimize g else g in
        (* Whole-grammar kind erasure, up front: everything downstream —
           engine preparation, --stats, exit codes — sees an ordinary
           grammar that happens to be all-Void. *)
        let g =
          if not recognize then g
          else
            match Rats.Batch.recognizer_erase g with
            | Some g -> g
            | None ->
                raise
                  (Rats.Diagnostic.Fail
                     (Rats.Diagnostic.error
                        "recognizer erasure produced an ill-formed grammar"))
        in
        match batch with
        | Some spec -> (
            let faults =
              match faults_plan with Ok p -> p | Error _ -> Rats.Faults.none
            in
            let deadline_ns =
              Option.map (fun s -> int_of_float (s *. 1e9)) doc_timeout
            in
            let source =
              if spec = "-" then
                Rats.Batch.Channel { ic = stdin; sep = batch_sep }
              else Rats.Batch.Manifest spec
            in
            (* One registry serves both consumers: the --metrics export
               and the --progress heartbeat (which reads the latency
               histogram back out of it). Either flag turns it on;
               neither means Batch.run never enters the record path. *)
            let reg =
              if metrics_out <> None || progress then
                Some (Rats.Metrics.create ())
              else None
            in
            let spans =
              Option.map (fun _ -> Rats.Profile.Spans.create ()) trace_out
            in
            let base_record r =
              print_endline (Rats.Batch.jsonl_of_record r)
            in
            let on_record, progress_done =
              if not progress then (base_record, fun () -> ())
              else begin
                let reg = Option.get reg in
                (* same (name, labels) => same instrument Batch.run
                   records into; lazy so Batch registers it first (with
                   its help text) *)
                let lat =
                  lazy (Rats.Metrics.histogram reg "rml_batch_doc_latency_us")
                in
                let total =
                  (* best-effort count for the N/total display; the
                     stream source has no total until it ends *)
                  if spec = "-" then None
                  else
                    match In_channel.with_open_bin spec In_channel.input_all with
                    | all ->
                        Some
                          (List.length
                             (List.filter
                                (fun l ->
                                  let l = String.trim l in
                                  l <> "" && l.[0] <> '#')
                                (String.split_on_char '\n' all)))
                    | exception Sys_error _ -> None
                in
                let t0 = Rats.Profile.now_ns () in
                let done_ = ref 0 in
                let last_emit = ref t0 in
                let worst = ref 0 in
                let worst_name =
                  [| "none"; "syntax"; "io"; "resource"; "internal" |]
                in
                let rank (r : Rats.Batch.record) =
                  match r.Rats.Batch.r_fail with
                  | None -> 0
                  | Some Rats.Batch.Syntax -> 1
                  | Some Rats.Batch.Io -> 2
                  | Some (Rats.Batch.Resource _) -> 3
                  | Some Rats.Batch.Internal -> 4
                in
                let emit () =
                  let now = Rats.Profile.now_ns () in
                  let dt = float_of_int (now - t0) /. 1e9 in
                  let rate =
                    if dt <= 0. then 0. else float_of_int !done_ /. dt
                  in
                  let h = Lazy.force lat in
                  Printf.eprintf
                    "progress: %d%s docs, %.1f docs/s, p50 %.3fms p99 \
                     %.3fms, worst %s\n\
                     %!"
                    !done_
                    (match total with
                    | Some t -> Printf.sprintf "/%d" t
                    | None -> "")
                    rate
                    (Rats.Metrics.quantile h 0.5 /. 1000.)
                    (Rats.Metrics.quantile h 0.99 /. 1000.)
                    worst_name.(!worst);
                  last_emit := now
                in
                let on r =
                  base_record r;
                  incr done_;
                  let k = rank r in
                  if k > !worst then worst := k;
                  let now = Rats.Profile.now_ns () in
                  if !done_ mod 64 = 0 || now - !last_emit >= 1_000_000_000
                  then emit ()
                in
                (on, emit)
              end
            in
            match
              Rats.Batch.run ~config ?deadline_ns ~faults ?metrics:reg ?spans
                ~on_record g source
            with
            | Error ds -> print_errors ds
            | Ok report ->
                progress_done ();
                (match (metrics_out, reg) with
                | Some path, Some reg ->
                    let body =
                      if Filename.check_suffix path ".prom" then
                        Rats.Metrics.to_prometheus reg
                      else Rats.Metrics.to_json reg
                    in
                    Out_channel.with_open_bin path (fun oc ->
                        Out_channel.output_string oc body)
                | _ -> ());
                (match (trace_out, spans) with
                | Some path, Some sp ->
                    Out_channel.with_open_bin path (fun oc ->
                        Out_channel.output_string oc
                          (Rats.Profile.Spans.to_chrome sp))
                | _ -> ());
                print_endline
                  (Rats.Batch.jsonl_of_summary report.Rats.Batch.summary);
                Fmt.epr "batch: %a@." Rats.Batch.pp_summary
                  report.Rats.Batch.summary;
                Rats.Batch.exit_code report)
        | None -> (
        match Rats.Engine.prepare ~config g with
        | Error ds -> print_errors ds
        | Ok eng -> (
            let source =
              if from_stdin then
                (* Bounded, chunked: stops as soon as the stream exceeds
                   the input-byte cap (exit 4) instead of slurping an
                   arbitrarily large stream before checking. *)
                Rats.Source.of_string ~name:"<stdin>"
                  (match
                     Rats.Faults.read_channel
                       ~cap:
                         config.Rats.Config.limits.Rats.Limits.max_input_bytes
                       In_channel.stdin
                   with
                  | Ok text -> text
                  | Error (Rats.Faults.Too_large cap) ->
                      raise (Input_over_cap cap)
                  | Error (Rats.Faults.Io_fault m) -> raise (Sys_error m))
              else
                let path = Option.get input in
                if mmap then
                  match Rats.Source.map_file path with
                  | Ok s -> s
                  | Error msg -> raise (Sys_error msg)
                else
                  Rats.Source.of_string ~name:path
                    (In_channel.with_open_bin path In_channel.input_all)
            in
            match edits with
            | Some script ->
                if trace then Fmt.epr "note: --trace is ignored with --edits@.";
                (* Same buffer, session-conventional name. Zero-copy for
                   a mapped source until the first edit (CoW). *)
                let session =
                  Rats.Session.create_source eng
                    (Rats.Source.of_input ~name:"<buffer>"
                       (Rats.Source.input source))
                in
                let show label result =
                  let st = Rats.Session.stats session in
                  match result with
                  | Ok _ ->
                      Fmt.pr "%s: ok (%d bytes, reused=%d relocated=%d)@." label
                        (Rats.Session.length session)
                        st.Rats.Stats.memo_reused st.Rats.Stats.memo_relocated
                  | Error e ->
                      Fmt.pr "%s: %s@." label (Rats.Parse_error.message e)
                in
                let last = ref (Rats.Session.reparse session) in
                show "initial" !last;
                let lines =
                  String.split_on_char '\n'
                    (In_channel.with_open_bin script In_channel.input_all)
                in
                let bad = ref None in
                let n = ref 0 in
                List.iter
                  (fun raw ->
                    let line =
                      (* tolerate CRLF edit scripts *)
                      if
                        String.length raw > 0
                        && raw.[String.length raw - 1] = '\r'
                      then String.sub raw 0 (String.length raw - 1)
                      else raw
                    in
                    if !bad <> None || String.trim line = "" || line.[0] = '#'
                    then ()
                    else
                      match parse_edit_line line with
                      | None -> bad := Some line
                      | Some (start, old_len, replacement) -> (
                          incr n;
                          match
                            Rats.Session.apply_edit session ~start ~old_len
                              ~replacement
                          with
                          | () ->
                              last := Rats.Session.reparse session;
                              show (Printf.sprintf "edit %d" !n) !last
                          | exception Invalid_argument _ -> bad := Some line))
                  lines;
                (match !bad with
                | Some line ->
                    Fmt.epr "rml: bad edit: %s@." line;
                    2
                | None -> (
                    (if stats then
                       Fmt.pr "stats: %a@." Rats.Stats.pp
                         (Rats.Session.stats session));
                    if stats_json then
                      print_endline
                        (Rats.Stats.to_json (Rats.Session.stats session));
                    print_profile eng;
                    match !last with
                    | Ok v ->
                        if not quiet then
                          Fmt.pr "%s@." (Rats.Value.to_string v);
                        0
                    | Error e ->
                        (* the session's source: line starts patched
                           across the edit script, not rebuilt *)
                        let source = Rats.Session.source session in
                        Fmt.epr "%s@." (Rats.Parse_error.to_string ~source e);
                        dump_ring eng (Rats.Session.text session);
                        if Rats.Parse_error.exhausted_which e <> None then
                          exit_resource
                        else exit_parse))
            | None -> (
            let run_governed () =
              match timeout with
              | None ->
                  Ok (eng, Rats.Engine.run_input eng (Rats.Source.input source))
              | Some seconds ->
                  (* Fuel-slice polling: parse under a small fuel budget,
                     and while the deadline has not passed, double the
                     slice and retry. Runs are deterministic, so retries
                     cost only time. The slice never exceeds an explicit
                     --fuel budget, so combining --fuel with --timeout
                     honors whichever budget is smaller: a fuel trip at
                     the full budget is reported as fuel exhaustion, not
                     retried. *)
                  (* Monotonic clock (Profile's CLOCK_MONOTONIC source):
                     wall-clock steps — NTP jumps, suspend/resume —
                     can neither hang the loop nor spuriously trip it. *)
                  let deadline =
                    Rats.Profile.now_ns () + int_of_float (seconds *. 1e9)
                  in
                  let budget = config.Rats.Config.limits.Rats.Limits.fuel in
                  let rec go slice =
                    let capped =
                      { config.Rats.Config.limits with Rats.Limits.fuel = slice }
                    in
                    match
                      Rats.Engine.prepare
                        ~config:(Rats.Config.with_limits capped config) g
                    with
                    | Error ds -> Error ds
                    | Ok eng' -> (
                        let out =
                          Rats.Engine.run_input eng' (Rats.Source.input source)
                        in
                        match out.Rats.Engine.result with
                        | Error e
                          when Rats.Parse_error.exhausted_which e
                               = Some Rats.Limits.Fuel
                               && slice < budget ->
                            if Rats.Profile.now_ns () >= deadline then (
                              Fmt.epr "rml: timeout of %gs exceeded@." seconds;
                              Ok (eng', out))
                            else
                              go
                                (if slice > budget / 2 then budget
                                 else slice * 2)
                        | _ -> Ok (eng', out))
                  in
                  go (min budget 65536)
            in
            let outcome =
              if trace then (
                let shown = ref 0 in
                let on_event (e : Rats.Engine.trace_event) =
                  incr shown;
                  if !shown <= 500 then
                    Fmt.pr "%s%s %s @%d%s@."
                      (String.make (min e.depth 40) ' ')
                      (match e.outcome with
                      | None -> ">"
                      | Some p when p >= 0 -> "<"
                      | Some _ -> "x")
                      e.prod e.at
                      (match e.outcome with
                      | Some p when p >= 0 -> Printf.sprintf " -> %d" p
                      | _ -> "")
                  else if !shown = 501 then Fmt.pr "... (trace truncated)@."
                in
                Result.map (fun out -> (eng, out))
                  (Rats.Engine.trace ~config ~on_event g
                     (Rats.Source.text source)))
              else run_governed ()
            in
            match outcome with
            | Error ds -> print_errors ds
            | Ok (eng_used, out) -> (
                (if stats then
                   Fmt.pr "stats: %a@." Rats.Stats.pp out.Rats.Engine.stats);
                if stats_json then
                  print_endline (Rats.Stats.to_json out.Rats.Engine.stats);
                print_profile eng_used;
                match out.Rats.Engine.result with
                | Ok v ->
                    if not quiet then Fmt.pr "%s@." (Rats.Value.to_string v);
                    0
                | Error e ->
                    Fmt.epr "%s@." (Rats.Parse_error.to_string ~source e);
                    dump_ring eng_used (Rats.Source.text source);
                    if Rats.Parse_error.exhausted_which e <> None then
                      exit_resource
                    else exit_parse))))))
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse an input file with a composed grammar.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg
      $ optimize_arg $ config_arg $ engine_arg $ fuel_arg $ max_depth_arg
      $ max_memo_arg $ max_input_arg $ timeout_arg $ input_arg $ stdin_arg
      $ mmap_arg $ batch_arg $ batch_sep_arg $ faults_arg $ doc_timeout_arg
      $ recognize_arg $ stats_arg $ quiet_arg $ trace_arg $ edits_arg
      $ profile_flag_arg $ trace_ring_arg $ metrics_arg $ trace_out_arg
      $ progress_arg $ stats_json_arg)

(* --- observability subcommands --------------------------------------------- *)

let obs_input_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE"
        ~doc:"Input file to parse ('-' for stdin).")

let profile_cmd =
  let top_arg =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N"
          ~doc:"Show the N most expensive productions (0 shows all).")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:"Write a flamegraph JSON document of the parse here.")
  in
  let flame_format_arg =
    Arg.(
      value
      & opt
          (enum [ ("speedscope", `Speedscope); ("chrome", `Chrome) ])
          `Speedscope
      & info [ "flame-format" ] ~docv:"FORMAT"
          ~doc:
            "Flamegraph flavor: speedscope (load at \
             https://www.speedscope.app) or chrome (chrome://tracing and \
             Perfetto).")
  in
  let run files builtin root start optimize config engine input top flame
      flame_format =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g -> (
        let config = apply_engine engine config in
        let config =
          Rats.Config.with_observe
            { Rats.Observe.off with Rats.Observe.profile = true }
            config
        in
        let g = if optimize then Rats.Pipeline.optimize g else g in
        match Rats.Engine.prepare ~config g with
        | Error ds -> print_errors ds
        | Ok eng -> (
            let text = read_input input in
            let out = Rats.Engine.run eng text in
            let prof =
              match Rats.Engine.observation eng with
              | Some o -> Rats.Observe.profile o
              | None -> None
            in
            match prof with
            | None ->
                Fmt.epr "rml: internal error: no profile was recorded@.";
                exit_internal
            | Some p ->
                (match out.Rats.Engine.result with
                | Ok _ -> ()
                | Error e ->
                    let source =
                      Rats.Source.of_string
                        ~name:(if input = "-" then "<stdin>" else input)
                        text
                    in
                    Fmt.epr "%s@." (Rats.Parse_error.to_string ~source e));
                (if top <= 0 then
                   Fmt.pr "%a" (Rats.Profile.pp_table ?top:None) p
                 else Fmt.pr "%a" (Rats.Profile.pp_table ~top) p);
                (match flame with
                | None -> ()
                | Some path ->
                    let doc =
                      match flame_format with
                      | `Speedscope ->
                          Rats.Profile.to_speedscope
                            ~name:(if input = "-" then "stdin" else input)
                            p
                      | `Chrome -> Rats.Profile.to_chrome p
                    in
                    Out_channel.with_open_bin path (fun oc ->
                        Out_channel.output_string oc doc);
                    Fmt.epr "rml: wrote %s@." path);
                if Rats.Profile.truncated p then
                  Fmt.epr
                    "note: flame event log truncated; the table stays exact@.";
                (match out.Rats.Engine.result with
                | Ok _ -> 0
                | Error e ->
                    if Rats.Parse_error.exhausted_which e <> None then
                      exit_resource
                    else exit_parse)))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Parse an input under the per-production profiler and print the \
          sorted cost table; optionally export a flamegraph.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg
      $ optimize_arg $ config_arg $ engine_arg $ obs_input_arg $ top_arg
      $ flame_arg $ flame_format_arg)

let trace_cmd =
  let ring_arg =
    Arg.(
      value & opt int 512
      & info [ "ring" ] ~docv:"N"
          ~doc:
            "Retain the last N events; older ones are overwritten in \
             place, so memory stays bounded on any input.")
  in
  let last_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N"
          ~doc:"Print only the last N retained events.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Abort after N production invocations (exit 4); the trip \
             lands as the final ring event.")
  in
  let run files builtin root start optimize config engine fuel input ring last
      =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g -> (
        let config = apply_engine engine config in
        let config =
          match fuel with
          | None -> config
          | Some _ ->
              Rats.Config.with_limits (Rats.Limits.v ?fuel ()) config
        in
        let config =
          Rats.Config.with_observe
            {
              Rats.Observe.off with
              Rats.Observe.events = true;
              ring_bytes = max 1 ring * Rats.Observe.event_bytes;
            }
            config
        in
        let g = if optimize then Rats.Pipeline.optimize g else g in
        match Rats.Engine.prepare ~config g with
        | Error ds -> print_errors ds
        | Ok eng -> (
            let text = read_input input in
            let out = Rats.Engine.run eng text in
            (match Rats.Engine.observation eng with
            | Some o ->
                Fmt.pr "%a" (Rats.Observe.pp_events ~input:text ?last) o
            | None -> ());
            match out.Rats.Engine.result with
            | Ok _ -> 0
            | Error e ->
                let source =
                  Rats.Source.of_string
                    ~name:(if input = "-" then "<stdin>" else input)
                    text
                in
                Fmt.epr "%s@." (Rats.Parse_error.to_string ~source e);
                if Rats.Parse_error.exhausted_which e <> None then
                  exit_resource
                else exit_parse))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Parse an input recording structured events (enter, exit, memo \
          hit, backtrack, budget trip) into a bounded ring and dump it \
          with source excerpts.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg
      $ optimize_arg $ config_arg $ engine_arg $ fuel_arg $ obs_input_arg
      $ ring_arg $ last_arg)

let coverage_cmd =
  let corpus_arg =
    Arg.(
      value & opt_all string []
      & info [ "i"; "corpus" ] ~docv:"PATH"
          ~doc:
            "Corpus file or directory (repeatable). Every regular file in \
             a directory is parsed; the union of all runs feeds one \
             coverage report.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit 1 when any production or alternative stays unexercised.")
  in
  let run files builtin root start optimize config engine corpus strict =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g -> (
        let config = apply_engine engine config in
        let config =
          Rats.Config.with_observe
            { Rats.Observe.off with Rats.Observe.coverage = true }
            config
        in
        let g = if optimize then Rats.Pipeline.optimize g else g in
        match Rats.Engine.prepare ~config g with
        | Error ds -> print_errors ds
        | Ok eng -> (
            let paths =
              List.concat_map
                (fun p ->
                  if Sys.is_directory p then
                    Sys.readdir p |> Array.to_list
                    |> List.sort String.compare
                    |> List.filter_map (fun f ->
                           let full = Filename.concat p f in
                           if Sys.is_directory full then None else Some full)
                  else [ p ])
                corpus
            in
            match paths with
            | [] ->
                Fmt.epr "rml: no corpus inputs (use --corpus FILE-or-DIR)@.";
                2
            | paths -> (
                let ok = ref 0 and failed = ref 0 in
                List.iter
                  (fun path ->
                    let text =
                      In_channel.with_open_bin path In_channel.input_all
                    in
                    match (Rats.Engine.run eng text).Rats.Engine.result with
                    | Ok _ -> incr ok
                    | Error _ -> incr failed)
                  paths;
                Fmt.pr "corpus: %d inputs (%d ok, %d failed)@."
                  (List.length paths) !ok !failed;
                match Rats.Engine.observation eng with
                | Some o ->
                    Fmt.pr "%a" Rats.Observe.pp_coverage o;
                    let dead_prods, dead_arms = Rats.Observe.unexercised o in
                    if strict && (dead_prods <> [] || dead_arms <> []) then 1
                    else 0
                | None ->
                    Fmt.epr "rml: internal error: no coverage was recorded@.";
                    exit_internal)))
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:
         "Run a corpus through one observed engine and report grammar \
          coverage: productions and choice alternatives never exercised, \
          each with its defining module.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg
      $ optimize_arg $ config_arg $ engine_arg $ corpus_arg $ strict_arg)

let bytecode_cmd =
  let run files builtin root start optimize config =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g -> (
        let g = if optimize then Rats.Pipeline.optimize g else g in
        match Rats.Vm.prepare ~config g with
        | Error ds -> print_errors ds
        | Ok vm ->
            Fmt.pr "; %d instructions, %d memo slots, %s@.%s"
              (Rats.Vm.instruction_count vm)
              (Rats.Vm.memo_slots vm)
              (Rats.Config.describe (Rats.Vm.config vm))
              (Rats.Vm.disassemble vm);
            0)
  in
  Cmd.v
    (Cmd.info "bytecode"
       ~doc:"Compile the grammar to bytecode and print the disassembly.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg
      $ optimize_arg $ config_arg)

let generate_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the generated parser here (stdout by default).")
  in
  let mli_arg =
    Arg.(
      value & flag
      & info [ "mli" ]
          ~doc:"Also write the matching .mli next to the output file.")
  in
  let run files builtin root start optimize config out mli =
    guarded @@ fun () ->
    match compose_from files builtin root start with
    | Error ds -> print_errors ds
    | Ok g -> (
        let g = if optimize then Rats.Pipeline.optimize g else g in
        match Rats.Emit.grammar_module ~config g with
        | Error ds -> print_errors ds
        | Ok code ->
            (match out with
            | None -> print_string code
            | Some path ->
                Out_channel.with_open_bin path (fun oc ->
                    Out_channel.output_string oc code);
                if mli && Filename.check_suffix path ".ml" then
                  Out_channel.with_open_bin (path ^ "i") (fun oc ->
                      Out_channel.output_string oc (Rats.Emit.interface ())));
            0)
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a self-contained OCaml parser module for the grammar.")
    Term.(
      const run $ files_arg $ builtin_arg $ root_arg $ start_arg
      $ optimize_arg $ config_arg $ out_arg $ mli_arg)

let () =
  let doc = "modular syntax for extensible parsers (after Rats!, PLDI 2006)" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 on success.";
      `P "2 on command-line usage errors.";
      `P "3 when grammar loading, composition or parsing fails.";
      `P
        "4 when a resource budget is exhausted (--fuel, --max-depth, \
         --timeout, input size) or the process runs out of stack or \
         memory.";
      `P "5 on internal errors.";
    ]
  in
  let info = Cmd.info "rml" ~version:Rats.version ~doc ~man in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           modules_cmd; compose_cmd; optimize_cmd; passes_cmd; analyze_cmd;
           parse_cmd; profile_cmd; trace_cmd; coverage_cmd; bytecode_cmd;
           generate_cmd; fmt_cmd;
         ])
  in
  (* cmdliner reports CLI misuse as 124 and its own internal errors as
     125; fold them into the documented code space. *)
  exit (match code with 124 -> 2 | 125 -> exit_internal | c -> c)
