(* Median-regression gate over two bench JSON files.

   Usage:
     check_regression BASELINE.json CURRENT.json
       [--time-threshold PCT] [--alloc-threshold PCT]

   Compares the E2, E3, E5, E8, E9 and E10 records of CURRENT against
   BASELINE (normally the committed BENCH_pr8.json trajectory point)
   and exits nonzero if any tracked metric regressed past its
   threshold. Improvements never fail. Every block iterates the
   BASELINE rows, so a baseline predating an experiment simply
   contributes no checks for it (e.g. pre-E10 baselines make the E10
   block a no-op). The methodology follows E8: each
   bench row is already the median of interleaved timed runs, and raw
   wall-clock medians are not compared across machines — E2 times are
   normalized by the same series' hand-written baseline row, E5 warm
   times by the same row's cold parse, E3 rung times by the naive rung
   (the "ratio" column), E8 observed times by the same backend's
   observe-off run, and E9 mapped times by the same grammar's copying
   run — so only a relative slowdown of the code under test trips the
   gate.

   Allocation columns are bytes per parse and machine-independent, so
   they get the tight default threshold — except the deep-recursion
   closure rows (naive/packrat interpreters), where OCaml 5's
   fiber-stack segment allocation adds megabyte-level run-to-run noise;
   those rows are exempt. A small absolute slack keeps kilobyte-sized
   rows from tripping on jitter. *)

(* --- minimal JSON reader (flat records of strings and numbers) --------- *)

type json =
  | Str of string
  | Num of float
  | Bool of bool
  | Null
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?';
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- record access ------------------------------------------------------ *)

let load path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  match parse_json text with
  | Arr rows ->
      List.filter_map (function Obj fields -> Some fields | _ -> None) rows
  | _ ->
      Printf.eprintf "%s: expected a JSON array of records\n" path;
      exit 2
  | exception Bad msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2

let str fields k =
  match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None

let num fields k =
  match List.assoc_opt k fields with Some (Num f) -> Some f | _ -> None

let experiment fields = Option.value ~default:"" (str fields "experiment")

(* --- the gate ----------------------------------------------------------- *)

let failures = ref 0
let checks = ref 0

let report ~label ~metric ~base ~cur ~threshold ~slack_ok =
  incr checks;
  let pct = (cur -. base) /. base *. 100.0 in
  if base > 0.0 && pct > threshold && not slack_ok then (
    incr failures;
    Printf.printf "FAIL %-46s %-18s %12.3f -> %12.3f  (%+.1f%% > %.0f%%)\n"
      label metric base cur pct threshold)

let () =
  let time_threshold = ref 10.0 in
  let alloc_threshold = ref 10.0 in
  let args = ref [] in
  let rec parse_args = function
    | "--time-threshold" :: v :: rest ->
        time_threshold := float_of_string v;
        parse_args rest
    | "--alloc-threshold" :: v :: rest ->
        alloc_threshold := float_of_string v;
        parse_args rest
    | a :: rest ->
        args := a :: !args;
        parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !args with
    | [ b; c ] -> (b, c)
    | _ ->
        prerr_endline
          "usage: check_regression BASELINE.json CURRENT.json \
           [--time-threshold PCT] [--alloc-threshold PCT]";
        exit 2
  in
  let baseline = load baseline_path and current = load current_path in

  (* E2: match by (series, parser). *)
  let e2_key fields =
    match (str fields "series", str fields "parser") with
    | Some s, Some p when experiment fields = "e2" -> Some (s, p)
    | _ -> None
  in
  let e2_rows rows = List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e2_key f)) rows in
  let base_e2 = e2_rows baseline and cur_e2 = e2_rows current in
  let handwritten rows series =
    List.assoc_opt (series, "hand-written") rows
  in
  (* Deterministic-allocation rows; the deep-recursion closure rows are
     exempt (fiber-stack segment noise). *)
  let alloc_tracked = function
    | "optimized interpreter" | "bytecode interpreter" | "generated parser"
    | "hand-written" ->
        true
    | _ -> false
  in
  List.iter
    (fun ((series, parser), bf) ->
      match List.assoc_opt (series, parser) cur_e2 with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e2 %s/%s: row missing from %s\n" series parser
            current_path
      | Some cf -> (
          let label = Printf.sprintf "e2 %s/%s" series parser in
          incr checks;
          (match (num bf "bytes", num cf "bytes") with
          | Some a, Some b when a <> b ->
              incr failures;
              Printf.printf "FAIL %s: corpus changed (%d -> %d bytes)\n" label
                (int_of_float a) (int_of_float b)
          | _ -> ());
          (match
             ( num bf "median_ms",
               num cf "median_ms",
               handwritten base_e2 series,
               handwritten cur_e2 series )
           with
          | Some bm, Some cm, Some bh, Some ch
            when parser <> "hand-written" -> (
              match (num bh "median_ms", num ch "median_ms") with
              | Some bhm, Some chm when bhm > 0.0 && chm > 0.0 ->
                  report ~label ~metric:"median_ms (norm)" ~base:(bm /. bhm)
                    ~cur:(cm /. chm) ~threshold:!time_threshold ~slack_ok:false
              | _ ->
                  report ~label ~metric:"median_ms" ~base:bm ~cur:cm
                    ~threshold:!time_threshold ~slack_ok:false)
          | Some bm, Some cm, _, _ when parser <> "hand-written" ->
              report ~label ~metric:"median_ms" ~base:bm ~cur:cm
                ~threshold:!time_threshold ~slack_ok:false
          | _ -> ());
          match (num bf "allocated_bytes_per_parse", num cf "allocated_bytes_per_parse") with
          | Some ba, Some ca when alloc_tracked parser ->
              report ~label ~metric:"alloc_bytes" ~base:ba ~cur:ca
                ~threshold:!alloc_threshold
                ~slack_ok:(ca -. ba < 8192.0)
          | _ -> ()))
    base_e2;

  (* E5: match by (grammar, backend); warm medians are normalized by the
     same row's cold median so machine speed cancels. *)
  let e5_key fields =
    match (str fields "grammar", str fields "backend") with
    | Some g, Some b when experiment fields = "e5" -> Some (g, b)
    | _ -> None
  in
  let e5_rows rows = List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e5_key f)) rows in
  let base_e5 = e5_rows baseline and cur_e5 = e5_rows current in
  List.iter
    (fun ((grammar, backend), bf) ->
      match List.assoc_opt (grammar, backend) cur_e5 with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e5 %s/%s: row missing from %s\n" grammar backend
            current_path
      | Some cf -> (
          let label = Printf.sprintf "e5 %s/%s" grammar backend in
          incr checks;
          (match (num bf "bytes", num cf "bytes") with
          | Some a, Some b when a <> b ->
              incr failures;
              Printf.printf "FAIL %s: corpus changed (%d -> %d bytes)\n" label
                (int_of_float a) (int_of_float b)
          | _ -> ());
          (match
             ( num bf "median_warm_ms",
               num bf "median_cold_ms",
               num cf "median_warm_ms",
               num cf "median_cold_ms" )
           with
          | Some bw, Some bc, Some cw, Some cc when bc > 0.0 && cc > 0.0 ->
              report ~label ~metric:"warm/cold (norm)" ~base:(bw /. bc)
                ~cur:(cw /. cc) ~threshold:!time_threshold ~slack_ok:false
          | _ -> ());
          match
            ( num bf "allocated_bytes_per_reparse",
              num cf "allocated_bytes_per_reparse" )
          with
          | Some ba, Some ca ->
              report ~label ~metric:"alloc_bytes" ~base:ba ~cur:ca
                ~threshold:!alloc_threshold
                ~slack_ok:(ca -. ba < 8192.0)
          | _ -> ()))
    base_e5;

  (* E3: match by rung. The "ratio" column is each rung's time over the
     naive rung of the same run, so machine speed cancels; the memo
     counters are deterministic for the fixed corpus. *)
  let e3_key fields =
    match str fields "rung" with
    | Some r
      when experiment fields = "e3" && str fields "series" = Some "minic-ladder"
      ->
        Some r
    | _ -> None
  in
  let e3_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e3_key f)) rows
  in
  let base_e3 = e3_rows baseline and cur_e3 = e3_rows current in
  List.iter
    (fun (rung, bf) ->
      match List.assoc_opt rung cur_e3 with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e3 %s: row missing from %s\n" rung current_path
      | Some cf -> (
          let label = Printf.sprintf "e3 %s" rung in
          incr checks;
          (match (num bf "ratio", num cf "ratio") with
          | Some br, Some cr when br > 0.0 ->
              report ~label ~metric:"ratio vs naive" ~base:br ~cur:cr
                ~threshold:!time_threshold ~slack_ok:false
          | _ -> ());
          match (num bf "memo_entries", num cf "memo_entries") with
          | Some be, Some ce ->
              report ~label ~metric:"memo_entries" ~base:be ~cur:ce
                ~threshold:!alloc_threshold ~slack_ok:(ce -. be < 64.0)
          | _ -> ()))
    base_e3;

  (* E8: match by backend. Structural gate first — the bench itself
     computes off_gate by comparing the observe-off run against a
     build with no observability code at all; "fail" there means
     dormant instrumentation leaked into the hot path. Then the
     observe-on cost, normalized by the same backend's off run. *)
  let e8_key fields =
    match str fields "backend" with
    | Some b
      when experiment fields = "e8" && str fields "series" = Some "overhead" ->
        Some b
    | _ -> None
  in
  let e8_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e8_key f)) rows
  in
  let base_e8 = e8_rows baseline and cur_e8 = e8_rows current in
  List.iter
    (fun (backend, bf) ->
      match List.assoc_opt backend cur_e8 with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e8 %s: row missing from %s\n" backend current_path
      | Some cf -> (
          let label = Printf.sprintf "e8 %s" backend in
          incr checks;
          (match str cf "off_gate" with
          | Some "fail" ->
              incr failures;
              Printf.printf
                "FAIL %s: off_gate = fail (dormant observability costs time)\n"
                label
          | _ -> ());
          match
            ( num bf "on_ms",
              num bf "off_ms",
              num cf "on_ms",
              num cf "off_ms" )
          with
          | Some bon, Some boff, Some con, Some coff
            when boff > 0.0 && coff > 0.0 ->
              report ~label ~metric:"on/off (norm)" ~base:(bon /. boff)
                ~cur:(con /. coff) ~threshold:!time_threshold ~slack_ok:false
          | _ -> ()))
    base_e8;

  (* E9 mmap-vs-copy: match by (grammar, mode). Structural gate: a
     mapped parse must not allocate more than the copying parse of the
     same grammar (the file-sized heap copy is the whole point). Mapped
     time is normalized by the same grammar's copy row. *)
  let e9mc_key fields =
    match (str fields "grammar", str fields "mode") with
    | Some g, Some m
      when experiment fields = "e9" && str fields "series" = Some "mmap-vs-copy"
      ->
        Some (g, m)
    | _ -> None
  in
  let e9mc_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e9mc_key f)) rows
  in
  let base_e9mc = e9mc_rows baseline and cur_e9mc = e9mc_rows current in
  List.iter
    (fun ((grammar, mode), bf) ->
      match List.assoc_opt (grammar, mode) cur_e9mc with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e9 %s/%s: row missing from %s\n" grammar mode
            current_path
      | Some cf -> (
          let label = Printf.sprintf "e9 %s/%s" grammar mode in
          incr checks;
          (match
             ( num bf "allocated_bytes_per_parse",
               num cf "allocated_bytes_per_parse" )
           with
          | Some ba, Some ca ->
              report ~label ~metric:"alloc_bytes" ~base:ba ~cur:ca
                ~threshold:!alloc_threshold ~slack_ok:(ca -. ba < 8192.0)
          | _ -> ());
          if mode = "mmap" then (
            (match
               ( List.assoc_opt (grammar, "copy") cur_e9mc,
                 num cf "allocated_bytes_per_parse" )
             with
            | Some copy_cf, Some ca -> (
                match num copy_cf "allocated_bytes_per_parse" with
                | Some copy_a when ca > copy_a +. 8192.0 ->
                    incr failures;
                    Printf.printf
                      "FAIL %s: mapped parse allocates more than copy \
                       (%.0f > %.0f bytes)\n"
                      label ca copy_a
                | _ -> ())
            | _ -> ());
            match
              ( num bf "median_ms",
                num cf "median_ms",
                List.assoc_opt (grammar, "copy") base_e9mc,
                List.assoc_opt (grammar, "copy") cur_e9mc )
            with
            | Some bm, Some cm, Some bcopy, Some ccopy -> (
                match (num bcopy "median_ms", num ccopy "median_ms") with
                | Some bcm, Some ccm when bcm > 0.0 && ccm > 0.0 ->
                    report ~label ~metric:"mmap/copy (norm)" ~base:(bm /. bcm)
                      ~cur:(cm /. ccm) ~threshold:!time_threshold
                      ~slack_ok:false
                | _ -> ())
            | _ -> ())))
    base_e9mc;

  (* E9 recognizer-alloc: the in-file claim is size-independence — per
     grammar, bytes/parse at the largest input must stay within a
     whisker of the smallest. Cross-file, each row is also compared
     against the baseline's. *)
  let e9ra_key fields =
    match (str fields "grammar", num fields "bytes") with
    | Some g, Some b
      when experiment fields = "e9"
           && str fields "series" = Some "recognizer-alloc" ->
        Some (g, b)
    | _ -> None
  in
  let e9ra_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e9ra_key f)) rows
  in
  let base_e9ra = e9ra_rows baseline and cur_e9ra = e9ra_rows current in
  let grammars =
    List.sort_uniq compare (List.map (fun ((g, _), _) -> g) cur_e9ra)
  in
  List.iter
    (fun g ->
      let allocs =
        List.filter_map
          (fun ((g', _), f) ->
            if g' = g then num f "allocated_bytes_per_parse" else None)
          cur_e9ra
      in
      match allocs with
      | [] -> ()
      | a :: rest ->
          incr checks;
          let mn = List.fold_left min a rest
          and mx = List.fold_left max a rest in
          if mx > (mn *. 1.25) +. 16384.0 then (
            incr failures;
            Printf.printf
              "FAIL e9 %s: recognizer allocation grows with input \
               (%.0f .. %.0f bytes/parse)\n"
              g mn mx))
    grammars;
  List.iter
    (fun ((g, bytes), bf) ->
      match List.assoc_opt (g, bytes) cur_e9ra with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e9 %s@%d: row missing from %s\n" g
            (int_of_float bytes) current_path
      | Some cf -> (
          match
            ( num bf "allocated_bytes_per_parse",
              num cf "allocated_bytes_per_parse" )
          with
          | Some ba, Some ca ->
              report
                ~label:(Printf.sprintf "e9 %s@%d" g (int_of_float bytes))
                ~metric:"alloc_bytes" ~base:ba ~cur:ca
                ~threshold:!alloc_threshold ~slack_ok:(ca -. ba < 8192.0)
          | _ -> ()))
    base_e9ra;

  (* E9 voidified-recognizer-alloc: the real calc and MiniJava grammars
     with every kind erased (what [--recognize] and the degradation
     ladder run). Same size-independence claim as above, but held per
     (grammar, backend) since both engines report their own constant;
     the in-file flatness gate runs on CURRENT alone, so a pre-PR9
     baseline contributes no rows yet cannot mask a fresh leak.
     Cross-file, each row's bytes/parse is compared against the
     baseline's when the baseline has it. *)
  let e9va_key fields =
    match
      (str fields "grammar", str fields "backend", num fields "bytes")
    with
    | Some g, Some b, Some n
      when experiment fields = "e9"
           && str fields "series" = Some "voidified-recognizer-alloc" ->
        Some (g, b, n)
    | _ -> None
  in
  let e9va_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e9va_key f)) rows
  in
  let base_e9va = e9va_rows baseline and cur_e9va = e9va_rows current in
  let series =
    List.sort_uniq compare (List.map (fun ((g, b, _), _) -> (g, b)) cur_e9va)
  in
  List.iter
    (fun (g, b) ->
      let allocs =
        List.filter_map
          (fun ((g', b', _), f) ->
            if g' = g && b' = b then num f "allocated_bytes_per_parse"
            else None)
          cur_e9va
      in
      match allocs with
      | [] -> ()
      | a :: rest ->
          incr checks;
          let mn = List.fold_left min a rest
          and mx = List.fold_left max a rest in
          if mx > (mn *. 1.25) +. 16384.0 then (
            incr failures;
            Printf.printf
              "FAIL e9 voidified %s/%s: recognizer allocation grows with \
               input (%.0f .. %.0f bytes/parse)\n"
              g b mn mx))
    series;
  List.iter
    (fun ((g, b, bytes), bf) ->
      match List.assoc_opt (g, b, bytes) cur_e9va with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e9 voidified %s/%s@%d: row missing from %s\n" g b
            (int_of_float bytes) current_path
      | Some cf -> (
          match
            ( num bf "allocated_bytes_per_parse",
              num cf "allocated_bytes_per_parse" )
          with
          | Some ba, Some ca ->
              report
                ~label:
                  (Printf.sprintf "e9 voidified %s/%s@%d" g b
                     (int_of_float bytes))
                ~metric:"alloc_bytes" ~base:ba ~cur:ca
                ~threshold:!alloc_threshold ~slack_ok:(ca -. ba < 8192.0)
          | _ -> ()))
    base_e9va;

  (* E10 ladder: match by (backend, mode). Raw batch throughput is
     machine-bound, so the timed gate is the in-run "vs_cold" ratio —
     the degraded run's median over the same backend's cold median,
     i.e. the price of descending the ladder. The counters are
     deterministic for the fixed corpus: every degraded document must
     still be rescued on the recognizer rung, and the summed
     memo-degradation count must not drift. *)
  let e10l_key fields =
    match (str fields "backend", str fields "mode") with
    | Some b, Some m
      when experiment fields = "e10" && str fields "series" = Some "ladder" ->
        Some (b, m)
    | _ -> None
  in
  let e10l_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e10l_key f)) rows
  in
  let base_e10l = e10l_rows baseline and cur_e10l = e10l_rows current in
  List.iter
    (fun ((backend, mode), bf) ->
      match List.assoc_opt (backend, mode) cur_e10l with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e10 %s/%s: row missing from %s\n" backend mode
            current_path
      | Some cf ->
          let label = Printf.sprintf "e10 %s/%s" backend mode in
          incr checks;
          (match (num cf "docs", num cf "rung_recognizer") with
          | Some d, Some r when mode = "degraded" && r <> d ->
              incr failures;
              Printf.printf
                "FAIL %s: only %d of %d documents rescued on the recognizer \
                 rung\n"
                label (int_of_float r) (int_of_float d)
          | _ -> ());
          (if mode = "degraded" then
             match (num bf "vs_cold", num cf "vs_cold") with
             | Some br, Some cr when br > 0.0 ->
                 report ~label ~metric:"degraded/cold (norm)" ~base:br ~cur:cr
                   ~threshold:!time_threshold ~slack_ok:false
             | _ -> ());
          (match (num bf "memo_degraded", num cf "memo_degraded") with
          | Some bm, Some cm ->
              report ~label ~metric:"memo_degraded" ~base:bm ~cur:cm
                ~threshold:!alloc_threshold ~slack_ok:(cm -. bm < 64.0)
          | _ -> ()))
    base_e10l;

  (* E10 throughput: structural only — the batch corpus must stay
     all-ok (one failed document means per-document isolation or the
     grammar changed underfoot), and the corpus itself must not drift. *)
  let e10t_key fields =
    match str fields "backend" with
    | Some b
      when experiment fields = "e10" && str fields "series" = Some "throughput"
      ->
        Some b
    | _ -> None
  in
  let e10t_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e10t_key f)) rows
  in
  let base_e10t = e10t_rows baseline and cur_e10t = e10t_rows current in
  List.iter
    (fun (backend, bf) ->
      match List.assoc_opt backend cur_e10t with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e10 %s: row missing from %s\n" backend
            current_path
      | Some cf ->
          let label = Printf.sprintf "e10 %s/throughput" backend in
          incr checks;
          (match (num bf "bytes", num cf "bytes") with
          | Some a, Some b when a <> b ->
              incr failures;
              Printf.printf "FAIL %s: corpus changed (%d -> %d bytes)\n" label
                (int_of_float a) (int_of_float b)
          | _ -> ());
          (match num cf "failed" with
          | Some f when f > 0.0 ->
              incr failures;
              Printf.printf "FAIL %s: %d documents failed in a clean corpus\n"
                label (int_of_float f)
          | _ -> ()))
    base_e10t;

  (* E11: match by backend. Structural gate first — the bench computes
     off_gate from the median of ABBA-paired metrics-on vs metrics-off
     batch runs; "fail" means pipeline telemetry costs more than 3%
     even when derived purely from finished records. Then the
     cross-file check: the on/off ratio against the baseline's, so
     machine speed cancels. A baseline predating E11 contributes no
     rows and the block is a no-op. *)
  let e11_key fields =
    match str fields "backend" with
    | Some b
      when experiment fields = "e11" && str fields "series" = Some "overhead" ->
        Some b
    | _ -> None
  in
  let e11_rows rows =
    List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e11_key f)) rows
  in
  let base_e11 = e11_rows baseline and cur_e11 = e11_rows current in
  List.iter
    (fun (backend, bf) ->
      match List.assoc_opt backend cur_e11 with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e11 %s: row missing from %s\n" backend
            current_path
      | Some cf -> (
          let label = Printf.sprintf "e11 %s" backend in
          incr checks;
          (match str cf "off_gate" with
          | Some "fail" ->
              incr failures;
              Printf.printf
                "FAIL %s: off_gate = fail (pipeline telemetry costs more \
                 than 3%%)\n"
                label
          | _ -> ());
          match
            (num bf "on_ms", num bf "off_ms", num cf "on_ms", num cf "off_ms")
          with
          | Some bon, Some boff, Some con, Some coff
            when boff > 0.0 && coff > 0.0 ->
              report ~label ~metric:"on/off (norm)" ~base:(bon /. boff)
                ~cur:(con /. coff) ~threshold:!time_threshold ~slack_ok:false
          | _ -> ()))
    base_e11;

  if !failures = 0 then (
    Printf.printf "ok: %d checks against %s, no regression beyond %.0f%% \
                   (time) / %.0f%% (alloc)\n"
      !checks baseline_path !time_threshold !alloc_threshold;
    exit 0)
  else (
    Printf.printf "%d of %d checks regressed\n" !failures !checks;
    exit 1)
