(* Median-regression gate over two bench JSON files.

   Usage:
     check_regression BASELINE.json CURRENT.json
       [--time-threshold PCT] [--alloc-threshold PCT]

   Compares the E2 and E5 records of CURRENT against BASELINE (normally
   the committed BENCH_pr6.json trajectory point) and exits nonzero if
   any tracked metric regressed past its threshold. Improvements never
   fail. The methodology follows E8: each bench row is already the
   median of interleaved timed runs, and raw wall-clock medians are not
   compared across machines — E2 times are normalized by the same
   series' hand-written baseline row and E5 warm times by the same
   row's cold parse, so only a relative slowdown of the code under test
   trips the gate.

   Allocation columns are bytes per parse and machine-independent, so
   they get the tight default threshold — except the deep-recursion
   closure rows (naive/packrat interpreters), where OCaml 5's
   fiber-stack segment allocation adds megabyte-level run-to-run noise;
   those rows are exempt. A small absolute slack keeps kilobyte-sized
   rows from tripping on jitter. *)

(* --- minimal JSON reader (flat records of strings and numbers) --------- *)

type json =
  | Str of string
  | Num of float
  | Bool of bool
  | Null
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              if code < 128 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?';
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- record access ------------------------------------------------------ *)

let load path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  match parse_json text with
  | Arr rows ->
      List.filter_map (function Obj fields -> Some fields | _ -> None) rows
  | _ ->
      Printf.eprintf "%s: expected a JSON array of records\n" path;
      exit 2
  | exception Bad msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2

let str fields k =
  match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None

let num fields k =
  match List.assoc_opt k fields with Some (Num f) -> Some f | _ -> None

let experiment fields = Option.value ~default:"" (str fields "experiment")

(* --- the gate ----------------------------------------------------------- *)

let failures = ref 0
let checks = ref 0

let report ~label ~metric ~base ~cur ~threshold ~slack_ok =
  incr checks;
  let pct = (cur -. base) /. base *. 100.0 in
  if base > 0.0 && pct > threshold && not slack_ok then (
    incr failures;
    Printf.printf "FAIL %-46s %-18s %12.3f -> %12.3f  (%+.1f%% > %.0f%%)\n"
      label metric base cur pct threshold)

let () =
  let time_threshold = ref 10.0 in
  let alloc_threshold = ref 10.0 in
  let args = ref [] in
  let rec parse_args = function
    | "--time-threshold" :: v :: rest ->
        time_threshold := float_of_string v;
        parse_args rest
    | "--alloc-threshold" :: v :: rest ->
        alloc_threshold := float_of_string v;
        parse_args rest
    | a :: rest ->
        args := a :: !args;
        parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !args with
    | [ b; c ] -> (b, c)
    | _ ->
        prerr_endline
          "usage: check_regression BASELINE.json CURRENT.json \
           [--time-threshold PCT] [--alloc-threshold PCT]";
        exit 2
  in
  let baseline = load baseline_path and current = load current_path in

  (* E2: match by (series, parser). *)
  let e2_key fields =
    match (str fields "series", str fields "parser") with
    | Some s, Some p when experiment fields = "e2" -> Some (s, p)
    | _ -> None
  in
  let e2_rows rows = List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e2_key f)) rows in
  let base_e2 = e2_rows baseline and cur_e2 = e2_rows current in
  let handwritten rows series =
    List.assoc_opt (series, "hand-written") rows
  in
  (* Deterministic-allocation rows; the deep-recursion closure rows are
     exempt (fiber-stack segment noise). *)
  let alloc_tracked = function
    | "optimized interpreter" | "bytecode interpreter" | "generated parser"
    | "hand-written" ->
        true
    | _ -> false
  in
  List.iter
    (fun ((series, parser), bf) ->
      match List.assoc_opt (series, parser) cur_e2 with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e2 %s/%s: row missing from %s\n" series parser
            current_path
      | Some cf -> (
          let label = Printf.sprintf "e2 %s/%s" series parser in
          incr checks;
          (match (num bf "bytes", num cf "bytes") with
          | Some a, Some b when a <> b ->
              incr failures;
              Printf.printf "FAIL %s: corpus changed (%d -> %d bytes)\n" label
                (int_of_float a) (int_of_float b)
          | _ -> ());
          (match
             ( num bf "median_ms",
               num cf "median_ms",
               handwritten base_e2 series,
               handwritten cur_e2 series )
           with
          | Some bm, Some cm, Some bh, Some ch
            when parser <> "hand-written" -> (
              match (num bh "median_ms", num ch "median_ms") with
              | Some bhm, Some chm when bhm > 0.0 && chm > 0.0 ->
                  report ~label ~metric:"median_ms (norm)" ~base:(bm /. bhm)
                    ~cur:(cm /. chm) ~threshold:!time_threshold ~slack_ok:false
              | _ ->
                  report ~label ~metric:"median_ms" ~base:bm ~cur:cm
                    ~threshold:!time_threshold ~slack_ok:false)
          | Some bm, Some cm, _, _ when parser <> "hand-written" ->
              report ~label ~metric:"median_ms" ~base:bm ~cur:cm
                ~threshold:!time_threshold ~slack_ok:false
          | _ -> ());
          match (num bf "allocated_bytes_per_parse", num cf "allocated_bytes_per_parse") with
          | Some ba, Some ca when alloc_tracked parser ->
              report ~label ~metric:"alloc_bytes" ~base:ba ~cur:ca
                ~threshold:!alloc_threshold
                ~slack_ok:(ca -. ba < 8192.0)
          | _ -> ()))
    base_e2;

  (* E5: match by (grammar, backend); warm medians are normalized by the
     same row's cold median so machine speed cancels. *)
  let e5_key fields =
    match (str fields "grammar", str fields "backend") with
    | Some g, Some b when experiment fields = "e5" -> Some (g, b)
    | _ -> None
  in
  let e5_rows rows = List.filter_map (fun f -> Option.map (fun k -> (k, f)) (e5_key f)) rows in
  let base_e5 = e5_rows baseline and cur_e5 = e5_rows current in
  List.iter
    (fun ((grammar, backend), bf) ->
      match List.assoc_opt (grammar, backend) cur_e5 with
      | None ->
          incr checks;
          incr failures;
          Printf.printf "FAIL e5 %s/%s: row missing from %s\n" grammar backend
            current_path
      | Some cf -> (
          let label = Printf.sprintf "e5 %s/%s" grammar backend in
          incr checks;
          (match (num bf "bytes", num cf "bytes") with
          | Some a, Some b when a <> b ->
              incr failures;
              Printf.printf "FAIL %s: corpus changed (%d -> %d bytes)\n" label
                (int_of_float a) (int_of_float b)
          | _ -> ());
          (match
             ( num bf "median_warm_ms",
               num bf "median_cold_ms",
               num cf "median_warm_ms",
               num cf "median_cold_ms" )
           with
          | Some bw, Some bc, Some cw, Some cc when bc > 0.0 && cc > 0.0 ->
              report ~label ~metric:"warm/cold (norm)" ~base:(bw /. bc)
                ~cur:(cw /. cc) ~threshold:!time_threshold ~slack_ok:false
          | _ -> ());
          match
            ( num bf "allocated_bytes_per_reparse",
              num cf "allocated_bytes_per_reparse" )
          with
          | Some ba, Some ca ->
              report ~label ~metric:"alloc_bytes" ~base:ba ~cur:ca
                ~threshold:!alloc_threshold
                ~slack_ok:(ca -. ba < 8192.0)
          | _ -> ()))
    base_e5;

  if !failures = 0 then (
    Printf.printf "ok: %d checks against %s, no regression beyond %.0f%% \
                   (time) / %.0f%% (alloc)\n"
      !checks baseline_path !time_threshold !alloc_threshold;
    exit 0)
  else (
    Printf.printf "%d of %d checks regressed\n" !failures !checks;
    exit 1)
