(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (shape, not absolute numbers — see DESIGN.md and
   EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe              run every experiment
     dune exec bench/main.exe e2 e3        run selected experiments
     dune exec bench/main.exe -- --quick   smaller corpora
     dune exec bench/main.exe -- --micro   add a bechamel micro-benchmark
     dune exec bench/main.exe -- --json F  also write results to F as JSON

   Experiments:
     e1  grammar / module composition statistics     (Table 1 analogue)
     e2  parser performance across implementations   (Table 2 analogue)
     e3  cumulative impact of the optimizations      (Table 3 analogue)
     e4  scalability, adversarial inputs, governor    (Figure analogue)
     e5  heap utilization: memo entries and values   (Figure analogue)
     e6  modular extension experiment                (motivating §2)
     e7  farthest-failure error quality              (supplementary)
     e8  observability overhead and profile          (supplementary)
     e9  zero-copy input: mmap vs copy               (supplementary)
     e10 batch pipeline and degradation ladder       (supplementary) *)

open Rats

let quick = ref false
let micro = ref false
let json_path : string option ref = ref None

(* --- machine-readable results -------------------------------------------- *)

(* Rows accumulate as preformatted JSON objects and are written in one
   array at exit when --json FILE was given. Values are either numbers
   or strings; nothing here needs a JSON library. *)
let json_rows : string list ref = ref []

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jint i = string_of_int i
let jfloat f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let record ~experiment ~series fields =
  if !json_path <> None then (
    let fields =
      ("experiment", jstr experiment) :: ("series", jstr series) :: fields
    in
    json_rows :=
      Printf.sprintf "{%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (jstr k) v) fields))
      :: !json_rows)

let write_json () =
  match !json_path with
  | None -> ()
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          output_string oc "[\n  ";
          output_string oc (String.concat ",\n  " (List.rev !json_rows));
          output_string oc "\n]\n");
      Printf.printf "\nwrote %d records to %s\n" (List.length !json_rows) path

(* --- timing -------------------------------------------------------------- *)

(* Size the minor heap to the working set of one parse (a few MW): each
   iteration's value tree then dies young instead of being promoted and
   collected by the major GC. With the 256 KW default, every contender
   pays ~2x its parse time in promotion work for values it immediately
   drops, which measures the allocator more than the parser. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 }

let now () = Unix.gettimeofday ()

(* Best-of-N wall time, with one warmup run. The compaction gives every
   contender a clean heap: without it, later rows pay major-GC slices
   for garbage the earlier rows left behind. *)
let time_best ?(repeats = 5) f =
  ignore (f ());
  Gc.compact ();
  let best = ref infinity in
  for _ = 1 to repeats do
    Gc.minor ();
    let t0 = now () in
    ignore (f ());
    let dt = now () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* Full measurement of one workload: best and median wall time over N
   runs plus the GC-level allocation profile of a single steady-state
   run. The trajectory gate (bench/check_regression.ml) compares the
   medians, reusing E8's reasoning: a median over interleaved runs
   shrugs off the one iteration that ran under a sibling process, where
   a best-of flickers. Allocation is measured once, after the warmup
   run: parsing is deterministic, so [Gc.allocated_bytes] deltas are
   exact and need no repetition to be stable — they are the
   machine-independent half of every BENCH_*.json row. *)
type meas = {
  m_best : float;  (* seconds *)
  m_median : float;  (* seconds *)
  m_minor_words : float;  (* words, one run *)
  m_promoted_words : float;
  m_alloc_bytes : float;  (* bytes, one run *)
}

let median_of times =
  let a = Array.copy times in
  Array.sort Float.compare a;
  let n = Array.length a in
  (a.((n - 1) / 2) +. a.(n / 2)) /. 2.

let measure ?(repeats = 7) f =
  ignore (f ());
  Gc.compact ();
  let times = Array.make repeats 0. in
  for i = 0 to repeats - 1 do
    Gc.minor ();
    let t0 = now () in
    ignore (f ());
    times.(i) <- now () -. t0
  done;
  let s0 = Gc.quick_stat () in
  let a0 = Gc.allocated_bytes () in
  ignore (f ());
  let a1 = Gc.allocated_bytes () in
  let s1 = Gc.quick_stat () in
  {
    m_best = Array.fold_left min infinity times;
    m_median = median_of times;
    m_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
    m_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
    m_alloc_bytes = a1 -. a0;
  }

let ms t = t *. 1000.
let mbs bytes t = float_of_int bytes /. 1_048_576. /. t

let header title =
  Printf.printf "\n=== %s ===\n" title

let row fmt = Printf.printf fmt

(* --- shared corpora --------------------------------------------------------- *)

let scale n = if !quick then max 1 (n / 4) else n

let minic_corpus =
  lazy (Grammars.Corpus.minic (Rng.create 2024) ~functions:(scale 60))

let java_corpus =
  lazy (Grammars.Corpus.minijava (Rng.create 2024) ~classes:(scale 25))

let calc_corpus = lazy (Grammars.Corpus.arith (Rng.create 2024) ~size:(scale 2500))
let json_corpus = lazy (Grammars.Corpus.json (Rng.create 2024) ~size:(scale 2500))

let prepare ?(config = Config.optimized) g = Engine.prepare_exn ~config g

let assert_ok name = function
  | Ok _ -> ()
  | Error (e : Parse_error.t) ->
      failwith (Printf.sprintf "%s: unexpected parse error: %s" name (Parse_error.message e))

(* ========================================================================== *)
(* E1: composition statistics                                                 *)
(* ========================================================================== *)

let loc_of_texts texts =
  List.fold_left
    (fun acc text ->
      acc
      + List.length
          (List.filter
             (fun l ->
               let l = String.trim l in
               String.length l > 0
               && not (String.length l >= 2 && String.sub l 0 2 = "//"))
             (String.split_on_char '\n' text)))
    0 texts

let e1 () =
  header "E1: grammar module statistics (Table 1 analogue)";
  row "%-12s %8s %10s %12s %8s %6s\n" "grammar" "modules" "instances"
    "productions" "modific." "LoC";
  List.iter
    (fun (name, texts, root) ->
      let lib = Grammars.Loader.library_of_texts texts in
      let modules = List.length (Resolve.modules lib) in
      let g, stats = Grammars.Loader.load ~root texts in
      let mods =
        List.fold_left
          (fun acc (s : Resolve.instance_stat) ->
            acc + s.overridden + s.alternatives_added + s.alternatives_removed)
          0 stats.instances
      in
      row "%-12s %8d %10d %12d %8d %6d\n" name modules
        (List.length stats.instances)
        (Grammar.length g) mods (loc_of_texts texts))
    [
      ("calc", Grammars.Calc.texts, "calc.Main");
      ("json", Grammars.Json.texts, "json.Main");
      ("minic", Grammars.Minic.texts, "c.Program");
      ("minijava", Grammars.Minijava.texts, "j.Program");
      ("rats", Grammars.Metagrammar.texts, "rats.Syntax");
      ( "minic-ext",
        Grammars.Minic.texts @ Grammars.Minic.extension_texts,
        "cx.Program" );
    ];
  row "\nper-instance contributions for minic-ext:\n";
  let _, stats =
    Grammars.Loader.load ~root:"cx.Program"
      (Grammars.Minic.texts @ Grammars.Minic.extension_texts)
  in
  row "%-44s %9s %8s %6s %6s %6s\n" "instance" "inherited" "defined" "over"
    "+alts" "-alts";
  List.iter
    (fun (s : Resolve.instance_stat) ->
      let label =
        if String.length s.instance <= 44 then s.instance
        else String.sub s.instance 0 41 ^ "..."
      in
      row "%-44s %9d %8d %6d %6d %6d\n" label s.inherited s.defined
        s.overridden s.alternatives_added s.alternatives_removed)
    stats.instances

(* ========================================================================== *)
(* E2: parser performance                                                     *)
(* ========================================================================== *)

type contender = {
  c_name : string;
  parse : string -> bool;  (* returns acceptance; must build values *)
}

let engine_contender name g config =
  let eng = prepare ~config g in
  { c_name = name; parse = (fun s -> Result.is_ok (Engine.parse eng s)) }

let e2_language lang corpus contenders =
  let bytes = String.length corpus in
  row "\n%s corpus: %d bytes\n" lang bytes;
  row "  %-22s %10s %10s %10s %10s %8s\n" "parser" "time ms" "median" "MB/s"
    "KB/parse" "rel";
  let base = ref None in
  List.iter
    (fun c ->
      if not (c.parse corpus) then
        failwith (Printf.sprintf "%s/%s rejected its corpus" lang c.c_name);
      let m = measure (fun () -> c.parse corpus) in
      let t = m.m_best in
      let rel =
        match !base with
        | None ->
            base := Some t;
            1.0
        | Some b -> t /. b
      in
      record ~experiment:"e2" ~series:lang
        [
          ("parser", jstr c.c_name);
          ("bytes", jint bytes);
          ("time_ms", jfloat (ms t));
          ("median_ms", jfloat (ms m.m_median));
          ("mb_per_s", jfloat (mbs bytes t));
          ("minor_words", jfloat m.m_minor_words);
          ("promoted_words", jfloat m.m_promoted_words);
          ("allocated_bytes_per_parse", jfloat m.m_alloc_bytes);
          ("rel", jfloat rel);
        ];
      row "  %-22s %10.2f %10.2f %10.2f %10.1f %7.2fx\n" c.c_name (ms t)
        (ms m.m_median) (mbs bytes t)
        (m.m_alloc_bytes /. 1024.)
        rel)
    contenders

let e2 () =
  header "E2: parser performance (Table 2 analogue)";
  row "(rel = time relative to the first row: the naive-backtracking baseline)\n";
  let calc = Grammars.Calc.grammar () in
  let calc_opt = Pipeline.optimize calc in
  e2_language "calc" (Lazy.force calc_corpus)
    [
      engine_contender "naive interpreter" calc Config.naive;
      engine_contender "packrat interpreter" calc Config.packrat;
      engine_contender "optimized interpreter" calc_opt Config.optimized;
      engine_contender "bytecode interpreter" calc_opt Config.vm;
      { c_name = "generated parser"; parse = (fun s -> Result.is_ok (Bench_gen_calc.parse s)) };
      { c_name = "hand-written"; parse = (fun s -> Result.is_ok (Grammars.Calc.parse_hand s)) };
    ];
  let json = Grammars.Json.grammar () in
  let json_opt = Pipeline.optimize json in
  e2_language "json" (Lazy.force json_corpus)
    [
      engine_contender "naive interpreter" json Config.naive;
      engine_contender "packrat interpreter" json Config.packrat;
      engine_contender "optimized interpreter" json_opt Config.optimized;
      engine_contender "bytecode interpreter" json_opt Config.vm;
      { c_name = "generated parser"; parse = (fun s -> Result.is_ok (Bench_gen_json.parse s)) };
      { c_name = "hand-written"; parse = (fun s -> Result.is_ok (Grammars.Json.parse_hand s)) };
    ];
  let minic = Grammars.Minic.grammar () in
  let minic_opt = Pipeline.optimize minic in
  e2_language "minic" (Lazy.force minic_corpus)
    [
      engine_contender "naive interpreter" minic Config.naive;
      engine_contender "packrat interpreter" minic Config.packrat;
      engine_contender "optimized interpreter" minic_opt Config.optimized;
      engine_contender "bytecode interpreter" minic_opt Config.vm;
      { c_name = "hand-written"; parse = (fun s -> Result.is_ok (Grammars.Minic.parse_hand s)) };
    ];
  let java = Grammars.Minijava.grammar () in
  let java_opt = Pipeline.optimize java in
  e2_language "minijava" (Lazy.force java_corpus)
    [
      engine_contender "naive interpreter" java Config.naive;
      engine_contender "packrat interpreter" java Config.packrat;
      engine_contender "optimized interpreter" java_opt Config.optimized;
      engine_contender "bytecode interpreter" java_opt Config.vm;
      { c_name = "generated parser"; parse = (fun s -> Result.is_ok (Bench_gen_java.parse s)) };
      { c_name = "hand-written"; parse = (fun s -> Result.is_ok (Grammars.Minijava.parse_hand s)) };
    ]

(* Optional bechamel micro-benchmark of the same E2 kernels. *)
let e2_micro () =
  header "E2 (micro): bechamel estimates, calc corpus";
  let open Bechamel in
  let corpus = Grammars.Corpus.arith (Rng.create 9) ~size:200 in
  let calc = Grammars.Calc.grammar () in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"calc"
      [
        (let eng = prepare ~config:Config.packrat calc in
         mk "packrat" (fun () -> Engine.parse eng corpus));
        (let eng = prepare ~config:Config.optimized (Pipeline.optimize calc) in
         mk "optimized" (fun () -> Engine.parse eng corpus));
        mk "generated" (fun () -> Bench_gen_calc.parse corpus);
        mk "hand-written" (fun () -> Grammars.Calc.parse_hand corpus);
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> row "  %-24s %12.1f ns/run\n" name est
      | _ -> row "  %-24s (no estimate)\n" name)
    results

(* ========================================================================== *)
(* E3: cumulative optimization impact                                         *)
(* ========================================================================== *)

let e3 () =
  header "E3: impact of the optimizations, cumulative (Table 3 analogue)";
  let g = Grammars.Minic.grammar () in
  let corpus = Lazy.force minic_corpus in
  let bytes = String.length corpus in
  row "minic corpus: %d bytes; each rung adds one optimization\n" bytes;
  row "  %-14s %9s %7s %9s %9s %8s %7s\n" "rung" "time ms" "ratio" "entries"
    "hits" "invoc." "prods";
  let baseline = ref nan in
  List.iter
    (fun (rung : Pipeline.rung) ->
      let eng = prepare ~config:rung.config rung.grammar in
      let out = Engine.run eng corpus in
      assert_ok rung.name out.Engine.result;
      let t = time_best (fun () -> Engine.run eng corpus) in
      if Float.is_nan !baseline then baseline := t;
      record ~experiment:"e3" ~series:"minic-ladder"
        [
          ("rung", jstr rung.name);
          ("time_ms", jfloat (ms t));
          ("ratio", jfloat (t /. !baseline));
          ("memo_entries", jint (Stats.memo_entries out.stats));
          ("memo_hits", jint out.stats.Stats.memo_hits);
          ("invocations", jint out.stats.Stats.invocations);
          ("productions", jint (Grammar.length rung.grammar));
        ];
      row "  %-14s %9.2f %6.2fx %9d %9d %8d %7d\n" rung.name (ms t)
        (t /. !baseline)
        (Stats.memo_entries out.stats)
        out.stats.Stats.memo_hits out.stats.Stats.invocations
        (Grammar.length rung.grammar))
    (Pipeline.ladder g);
  row "  (%s)\n"
    "time ratio is vs. the desugared, memoize-everything baseline";
  (* Where the optimizer itself spends its time: the driver's per-pass
     instrumentation over the default pipeline. *)
  row "\nper-pass driver trace (default pipeline, minic, sugared source):\n";
  (match Driver.run ~gate:false (Pipeline.passes ()) g with
  | Error _ -> row "  (driver failed)\n"
  | Ok o ->
      List.iter
        (fun (r : Stats.pass_row) ->
          record ~experiment:"e3" ~series:"passes"
            [
              ("pass", jstr r.Stats.pass_name);
              ("time_ms", jfloat (ms r.Stats.pass_time));
              ("prods_after", jint r.Stats.prods_after);
              ("nodes_after", jint r.Stats.nodes_after);
              ("changed", if r.Stats.pass_changed then "true" else "false");
            ])
        o.Driver.rows;
      row "%s" (Format.asprintf "%a" Stats.pp_pass_table o.Driver.rows));
  (* Ablation for the one cost-based heuristic: the inlining threshold. *)
  row "\ninlining-threshold ablation (DESIGN.md: cost-based inlining):\n";
  row "  %-10s %9s %8s\n" "threshold" "time ms" "prods";
  let pre = Passes.mark_terminals (Passes.mark_transients g) in
  List.iter
    (fun threshold ->
      let g' = Passes.prune (Passes.inline_pass ~threshold pre) in
      let eng =
        prepare
          ~config:(Config.v ~memo:Config.Chunked ~honor_transient:true ())
          g'
      in
      let t = time_best (fun () -> Engine.run eng corpus) in
      row "  %-10d %9.2f %8d\n" threshold (ms t) (Grammar.length g'))
    [ 0; 4; 8; 12; 24; 48 ]

(* ========================================================================== *)
(* E4: scalability                                                            *)
(* ========================================================================== *)

let e4 () =
  header "E4: parse time scales linearly with input (Figure analogue)";
  let g = Pipeline.optimize (Grammars.Minic.grammar ()) in
  let eng = prepare g in
  let vm = prepare ~config:Config.vm g in
  row "  %-10s %10s %12s %8s %12s\n" "functions" "bytes" "closure ms"
    "vm ms" "vm KB/ms";
  List.iter
    (fun functions ->
      let src = Grammars.Corpus.minic (Rng.create 1) ~functions in
      let t = time_best (fun () -> Engine.parse eng src) in
      let tv = time_best (fun () -> Engine.parse vm src) in
      record ~experiment:"e4" ~series:"minic-scaling"
        [
          ("functions", jint functions);
          ("bytes", jint (String.length src));
          ("closure_ms", jfloat (ms t));
          ("vm_ms", jfloat (ms tv));
        ];
      row "  %-10d %10d %12.2f %8.2f %12.1f\n" functions (String.length src)
        (ms t) (ms tv)
        (float_of_int (String.length src) /. 1024. /. ms tv))
    (List.map scale [ 10; 20; 40; 80; 160 ]);
  row "\npathological input '((((...1...))))' (backtracking blow-up):\n";
  row "  %-7s %16s %16s %18s\n" "depth" "naive ms" "packrat ms"
    "naive invocations";
  let path = Grammars.Path.grammar () in
  let naive = prepare ~config:Config.naive path in
  let packrat = prepare ~config:Config.packrat path in
  List.iter
    (fun depth ->
      let input = Grammars.Corpus.pathological ~depth in
      let tn = time_best ~repeats:3 (fun () -> Engine.parse naive input) in
      let tp = time_best ~repeats:3 (fun () -> Engine.parse packrat input) in
      let invs = (Engine.run naive input).Engine.stats.Stats.invocations in
      record ~experiment:"e4" ~series:"pathological"
        [
          ("depth", jint depth);
          ("naive_ms", jfloat (ms tn));
          ("packrat_ms", jfloat (ms tp));
          ("naive_invocations", jint invs);
        ];
      row "  %-7d %16.3f %16.3f %18d\n" depth (ms tn) (ms tp) invs)
    [ 8; 10; 12; 14; 16; 18 ];
  let deep = Grammars.Corpus.pathological ~depth:3000 in
  let tp = time_best (fun () -> Engine.parse packrat deep) in
  row "  %-7d %16s %16.3f   (naive would not finish)\n" 3000 "-" (ms tp);
  (* Adversarial calc inputs under the hardened governor: every case
     must come back as a structured result — never a crash — and the
     closure and bytecode backends must agree on the outcome. *)
  let sc = scale 40_000 in
  row "\nadversarial calc inputs under Limits.hardened (scale %d):\n" sc;
  row "  %-16s %10s %22s %10s\n" "input" "bytes" "outcome (both)" "vm ms";
  let calc = Pipeline.optimize (Grammars.Calc.grammar ()) in
  let closure =
    prepare ~config:(Config.with_limits Limits.hardened Config.optimized) calc
  in
  let vm = prepare ~config:(Config.with_limits Limits.hardened Config.vm) calc in
  let outcome = function
    | Ok _ -> "ok"
    | Error (e : Parse_error.t) -> (
        match Parse_error.exhausted_which e with
        | Some w -> "exhausted:" ^ Limits.which_name w
        | None -> "syntax-error")
  in
  List.iter
    (fun (label, input) ->
      let oc = outcome (Engine.parse closure input) in
      let ov = outcome (Engine.parse vm input) in
      if oc <> ov then
        failwith
          (Printf.sprintf "e4/%s: backends disagree (%s vs %s)" label oc ov);
      let tv = time_best ~repeats:3 (fun () -> Engine.parse vm input) in
      record ~experiment:"e4" ~series:"adversarial"
        [
          ("input", jstr label);
          ("bytes", jint (String.length input));
          ("outcome", jstr ov);
          ("vm_ms", jfloat (ms tv));
        ];
      row "  %-16s %10d %22s %10.2f\n" label (String.length input) ov (ms tv))
    (Grammars.Corpus.adversarial ~scale:sc);
  (* Governor overhead: the same well-behaved corpus, unlimited budgets
     vs huge-but-finite ones. Finite budgets keep every check live (the
     VM even emits its govern/leave brackets) while tripping nothing, so
     the delta is the full price of governance. Target: < 5%. *)
  row "\ngovernor overhead on well-behaved corpora (finite budgets, target <5%%):\n";
  row "  %-10s %-10s %14s %14s %10s\n" "corpus" "backend" "unlimited ms"
    "governed ms" "overhead";
  let huge =
    Limits.v ~fuel:(max_int / 2) ~max_depth:(max_int / 2)
      ~max_memo_bytes:(max_int / 2) ~max_input_bytes:(max_int / 2) ()
  in
  List.iter
    (fun (lang, grammar, corpus) ->
      let gopt = Pipeline.optimize grammar in
      List.iter
        (fun (backend, config) ->
          let plain = prepare ~config gopt in
          let governed = prepare ~config:(Config.with_limits huge config) gopt in
          assert_ok (lang ^ "/" ^ backend) (Engine.parse governed corpus);
          (* Interleave the two contenders and take best-of-many: the
             deltas here are a few percent, well inside the noise of two
             independent best-of-5 runs on a shared machine. *)
          let t0 = ref infinity and t1 = ref infinity in
          for _ = 1 to 12 do
            let a = time_best ~repeats:3 (fun () -> Engine.parse plain corpus) in
            let b =
              time_best ~repeats:3 (fun () -> Engine.parse governed corpus)
            in
            if a < !t0 then t0 := a;
            if b < !t1 then t1 := b
          done;
          let t0 = !t0 and t1 = !t1 in
          let pct = 100. *. (t1 -. t0) /. t0 in
          record ~experiment:"e4" ~series:"governor-overhead"
            [
              ("corpus", jstr lang);
              ("backend", jstr backend);
              ("unlimited_ms", jfloat (ms t0));
              ("governed_ms", jfloat (ms t1));
              ("overhead_pct", jfloat pct);
            ];
          row "  %-10s %-10s %14.2f %14.2f %9.1f%%\n" lang backend (ms t0)
            (ms t1) pct)
        [ ("closure", Config.optimized); ("vm", Config.vm) ])
    [
      ("calc", Grammars.Calc.grammar (), Lazy.force calc_corpus);
      ("minic", Grammars.Minic.grammar (), Lazy.force minic_corpus);
    ]

(* ========================================================================== *)
(* E5: heap utilization                                                       *)
(* ========================================================================== *)

let e5 () =
  header "E5: heap utilization (Figure analogue)";
  let corpus = Lazy.force minic_corpus in
  let bytes = String.length corpus in
  let g = Grammars.Minic.grammar () in
  let gopt = Pipeline.optimize g in
  row "minic corpus: %d bytes\n" bytes;
  row "  %-26s %7s %10s %12s %14s %11s\n" "configuration" "slots" "chunks"
    "memo entries" "entries/byte" "MB alloc";
  List.iter
    (fun (name, grammar, config) ->
      let eng = prepare ~config grammar in
      let out = Engine.run eng corpus in
      assert_ok name out.Engine.result;
      let entries = Stats.memo_entries out.stats in
      (* GC-level allocation during one parse, as a cross-check on the
         entry counts. *)
      let before = Gc.allocated_bytes () in
      ignore (Engine.run eng corpus);
      let mb = (Gc.allocated_bytes () -. before) /. 1_048_576. in
      row "  %-26s %7d %10d %12d %14.2f %11.1f\n" name
        (Engine.memo_slots eng) out.stats.Stats.chunks_allocated entries
        (float_of_int entries /. float_of_int bytes)
        mb)
    [
      ("packrat hashtable", g, Config.packrat);
      ("chunked, no transients", g, Config.v ~memo:Config.Chunked ());
      ( "chunked + transients",
        Passes.mark_transients g,
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ( "chunked + terminals",
        Passes.mark_terminals (Passes.mark_transients g),
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ("fully optimized", gopt, Config.optimized);
    ];
  (* Value allocation: syntax-tree size per input byte. *)
  let eng = prepare gopt in
  (match Engine.parse eng corpus with
  | Ok v ->
      row "\n  syntax-tree nodes: %d (%.2f per input byte)\n"
        (Value.count_nodes v)
        (float_of_int (Value.count_nodes v) /. float_of_int bytes)
  | Error _ -> ());
  (* Edit replay: incremental sessions against from-scratch parses.
     Before every warm reparse one digit near the middle of the corpus
     is rewritten (same length, so the buffer stays valid), which
     damages the memo entries covering that region and leaves the rest
     reusable — the editor-loop workload sessions exist for. MiniJava
     is the largest corpus and stateless, so nearly everything carries;
     MiniC's typedef table makes most of its productions stateful,
     whose entries sessions conservatively refuse to reuse (version
     invalidation) — the honest lower bound of the scheme. *)
  row "\n  edit replay (1-byte edit mid-corpus, warm session vs cold parse):\n";
  row "  %-9s %-8s %8s %11s %11s %9s %8s\n" "grammar" "backend" "bytes"
    "cold (ms)" "warm (ms)" "speedup" "reused";
  List.iter
    (fun (gname, grammar, corpus) ->
      let bytes = String.length corpus in
      let gopt = Pipeline.optimize grammar in
      let site =
        let rec find i =
          if i >= bytes then bytes / 2
          else match corpus.[i] with '0' .. '9' -> i | _ -> find (i + 1)
        in
        find (bytes / 2)
      in
      List.iter
        (fun (label, config) ->
          let eng = prepare ~config gopt in
          let mcold = measure (fun () -> Engine.parse eng corpus) in
          let cold = mcold.m_best in
          let session = Session.create eng corpus in
          assert_ok gname (Session.reparse session);
          let flip = ref false in
          let edit () =
            flip := not !flip;
            Session.apply_edit session ~start:site ~old_len:1
              ~replacement:(if !flip then "7" else "3");
            Session.reparse session
          in
          let mwarm = measure (fun () -> assert_ok gname (edit ())) in
          let warm = mwarm.m_best in
          let st = Session.stats session in
          let speedup = cold /. warm in
          row "  %-9s %-8s %8d %11.2f %11.2f %8.1fx %8d\n" gname label bytes
            (ms cold) (ms warm) speedup st.Stats.memo_reused;
          record ~experiment:"e5" ~series:"edit-replay"
            [
              ("grammar", jstr gname);
              ("backend", jstr label);
              ("bytes", jint bytes);
              ("cold_ms", jfloat (ms cold));
              ("median_cold_ms", jfloat (ms mcold.m_median));
              ("warm_ms", jfloat (ms warm));
              ("median_warm_ms", jfloat (ms mwarm.m_median));
              ("speedup", jfloat speedup);
              ("minor_words", jfloat mwarm.m_minor_words);
              ("promoted_words", jfloat mwarm.m_promoted_words);
              ("allocated_bytes_per_reparse", jfloat mwarm.m_alloc_bytes);
              ("reused", jint st.Stats.memo_reused);
              ("relocated", jint st.Stats.memo_relocated);
              (* robustness counters, PR 8: sessions falling back to a
                 cold parse and memo-budget denials during the warm
                 reparse — both zero on this workload, recorded so the
                 trajectory notices if either starts moving *)
              ("memo_degraded", jint st.Stats.memo_degraded);
              ("cold_fallbacks", jint (Session.cold_fallbacks session));
            ])
        [ ("closure", Config.optimized); ("vm", Config.vm) ])
    [
      ( "minijava",
        Grammars.Minijava.grammar (),
        Grammars.Corpus.minijava (Rng.create 2024) ~classes:(scale 66) );
      ("minic", Grammars.Minic.grammar (), corpus);
      ( "json",
        Grammars.Json.grammar (),
        Lazy.force json_corpus );
    ]

(* ========================================================================== *)
(* E6: modular extension                                                      *)
(* ========================================================================== *)

let e6 () =
  header "E6: extending MiniC by composition (the paper's motivation)";
  let base_texts = Grammars.Minic.texts in
  let ext_texts = Grammars.Minic.extension_texts in
  row "base grammar: %d modules, %d LoC\n" (List.length base_texts)
    (loc_of_texts base_texts);
  row "extensions:   %d modules, %d LoC (pow %d, until %d, query %d, wiring %d)\n"
    (List.length ext_texts) (loc_of_texts ext_texts)
    (loc_of_texts [ List.nth ext_texts 0 ])
    (loc_of_texts [ List.nth ext_texts 1 ])
    (loc_of_texts [ List.nth ext_texts 2 ])
    (loc_of_texts [ List.nth ext_texts 3 ]);
  let t_compose_base =
    time_best (fun () -> Grammars.Loader.load ~root:"c.Program" base_texts)
  in
  let t_compose_ext =
    time_best (fun () ->
        Grammars.Loader.load ~root:"cx.Program" (base_texts @ ext_texts))
  in
  let gb = Grammars.Minic.grammar () in
  let gx = Grammars.Minic.extended_grammar () in
  let t_pipeline =
    time_best (fun () -> prepare (Pipeline.optimize gx))
  in
  row "compose base:                 %8.2f ms (%d productions)\n"
    (ms t_compose_base) (Grammar.length gb);
  row "compose base+extensions:      %8.2f ms (%d productions)\n"
    (ms t_compose_ext) (Grammar.length gx);
  row "optimize + prepare extended:  %8.2f ms\n" (ms t_pipeline);
  let ext_corpus =
    Grammars.Corpus.minic_extended (Rng.create 4) ~functions:(scale 30)
  in
  let engb = prepare (Pipeline.optimize gb) in
  let engx = prepare (Pipeline.optimize gx) in
  (match Engine.parse engx ext_corpus with
  | Ok v ->
      row "extended corpus (%d bytes): parsed, %d nodes\n"
        (String.length ext_corpus) (Value.count_nodes v)
  | Error e ->
      failwith ("extended corpus rejected: " ^ Parse_error.message e));
  row "base grammar rejects it:      %b\n"
    (not (Engine.accepts engb ext_corpus));
  let base_corpus = Lazy.force minic_corpus in
  let tb = time_best (fun () -> Engine.parse engb base_corpus) in
  let tx = time_best (fun () -> Engine.parse engx base_corpus) in
  row "extension cost on base programs: %.2f ms -> %.2f ms (%.2fx)\n" (ms tb)
    (ms tx) (tx /. tb);
  (* Composition scaling: a chain of N modules, each modifying the
     previous one, timed end to end (parse + resolve + flatten). *)
  row "\ncomposition scaling (chain of modifying modules):\n";
  row "  %-8s %12s %14s\n" "depth" "resolve ms" "alternatives";
  List.iter
    (fun depth ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        "module Chain0; public X = <A0> 'a' ![0-9a-z];\n";
      for i = 1 to depth do
        Buffer.add_string buf
          (Printf.sprintf
             "module Chain%d; modify Chain%d as Prev; X += <A%d> 'a' \
              \"%d\" ![0-9a-z];\n"
             i (i - 1) i i)
      done;
      let text = Buffer.contents buf in
      let root = Printf.sprintf "Chain%d" depth in
      let t =
        time_best ~repeats:3 (fun () ->
            Grammars.Loader.load ~root [ text ])
      in
      let g, _ = Grammars.Loader.load ~root [ text ] in
      let alts =
        match (Grammar.find_exn g "X").Production.expr.Expr.it with
        | Expr.Alt alts -> List.length alts
        | _ -> 1
      in
      (* Sanity: the deepest alternative actually parses. *)
      let eng = prepare g in
      if not (Engine.accepts eng (Printf.sprintf "a%d" depth)) then
        failwith "chain composition broken";
      row "  %-8d %12.2f %14d\n" depth (ms t) alts)
    (List.map scale [ 8; 16; 32; 64; 128 ])

(* ========================================================================== *)
(* E7: error-report quality (supplementary)                                   *)
(* ========================================================================== *)

let e7 () =
  header "E7: farthest-failure error quality (supplementary)";
  row
    "corrupt one byte of a valid program; how far is the reported error\n\
     from the corruption site? (300 corruptions per language)\n";
  row "  %-10s %10s %10s %12s %12s\n" "language" "median" "mean" "within 10B"
    "within 40B";
  let measure name eng corpus_of =
    let rng = Rng.create 4242 in
    let deviations = ref [] in
    let n = ref 0 in
    while !n < 300 do
      let src = corpus_of rng in
      let pos = Rng.int rng (String.length src) in
      (* Replace with a byte that cannot start anything: '@'. *)
      let bad = String.mapi (fun i c -> if i = pos then '@' else c) src in
      match Engine.parse eng bad with
      | Ok _ -> () (* corruption landed in a comment/string: not an error *)
      | Error e ->
          incr n;
          deviations := abs (e.Parse_error.position - pos) :: !deviations
    done;
    let ds = List.sort compare !deviations in
    let len = List.length ds in
    let median = List.nth ds (len / 2) in
    let mean =
      float_of_int (List.fold_left ( + ) 0 ds) /. float_of_int len
    in
    let within k =
      100. *. float_of_int (List.length (List.filter (fun d -> d <= k) ds))
      /. float_of_int len
    in
    row "  %-10s %9dB %9.1fB %11.1f%% %11.1f%%\n" name median mean (within 10)
      (within 40)
  in
  measure "minic"
    (prepare (Pipeline.optimize (Grammars.Minic.grammar ())))
    (fun rng -> Grammars.Corpus.minic rng ~functions:3);
  measure "minijava"
    (prepare (Pipeline.optimize (Grammars.Minijava.grammar ())))
    (fun rng -> Grammars.Corpus.minijava rng ~classes:2);
  measure "json"
    (prepare (Pipeline.optimize (Grammars.Json.grammar ())))
    (fun rng -> Grammars.Corpus.json rng ~size:60)

(* ========================================================================== *)
(* E8: observability (supplementary)                                          *)
(* ========================================================================== *)

(* Two claims, one structural and one measured. Structural: an engine
   whose observe capabilities are all off compiles a program with no
   observation code in it at all — checked literally, by grepping the
   bytecode disassembly for obs-* instructions. Measured: because the
   programs are identical, off-vs-off timing differs only by noise (the
   CI gate allows 3%); the instrumented engine's cost is then reported
   honestly against that baseline. *)

let e8 () =
  header "E8: observability: zero-cost-when-off, instrumented overhead";
  let g = Pipeline.optimize (Grammars.Minijava.grammar ()) in
  (* The off-gate is a noise bound, so the corpus size is NOT scaled by
     --quick — and is deliberately large: on millisecond parses,
     cache-layout jitter and scheduler ticks alone exceed the 3% budget
     the gate enforces, while a ~100 KB parse integrates over them. *)
  let corpus = Grammars.Corpus.minijava (Rng.create 2024) ~classes:100 in
  let bytes = String.length corpus in
  let contains_obs dis =
    let n = String.length dis in
    let rec find i =
      if i + 4 > n then false
      else if String.sub dis i 4 = "obs-" then true
      else find (i + 1)
    in
    find 0
  in
  let dis_default = Vm.disassemble (Vm.prepare_exn ~config:Config.vm g) in
  let dis_off =
    Vm.disassemble
      (Vm.prepare_exn ~config:(Config.with_observe Observe.off Config.vm) g)
  in
  if contains_obs dis_default then
    failwith "e8: unobserved bytecode contains obs-* instructions";
  if dis_default <> dis_off then
    failwith "e8: observe-off bytecode differs from the default program";
  if
    not
      (contains_obs
         (Vm.disassemble
            (Vm.prepare_exn
               ~config:(Config.with_observe (Observe.all ()) Config.vm)
               g)))
  then failwith "e8: observed bytecode contains no obs-* instructions";
  row
    "bytecode structure: observe-off program is byte-identical to the \
     default (zero obs-* instructions)\n";
  record ~experiment:"e8" ~series:"structure"
    [
      ("off_has_obs_instructions", "false");
      ("off_matches_default_program", "true");
    ];
  row "\nminijava corpus: %d bytes (interleaved best-of-many)\n" bytes;
  row "  %-10s %10s %10s %10s %10s %9s %9s\n" "backend" "off ms" "off' ms"
    "on ms" "off ovh" "off gate" "on ovh";
  List.iter
    (fun (label, config) ->
      let on =
        prepare ~config:(Config.with_observe (Observe.all ()) config) g
      in
      assert_ok ("e8/" ^ label) (Engine.parse on corpus);
      (* Interleave the contenders as in E4's governor-overhead table:
         the deltas are percent-level, inside the noise of independent
         best-of-5 runs. The off/off' engines are re-prepared every round —
         in alternating order — because a pair prepared once keeps one
         fixed closure/heap layout for the whole comparison, and
         whichever engine happened to land better reads as a
         systematic percent-level delta that best-of cannot cancel.
         Every asymmetry here is load-bearing; see the [timed] comment
         for the one that cost 20%. *)
      let t_off = ref infinity and t_off' = ref infinity
      and t_on = ref infinity in
      let deltas = ref [] in
      for round = 1 to 12 do
        let flip = round land 1 = 0 in
        let off, off' =
          if flip then
            let o = prepare ~config g in
            let o' =
              prepare ~config:(Config.with_observe Observe.off config) g
            in
            (o, o')
          else
            let o' =
              prepare ~config:(Config.with_observe Observe.off config) g
            in
            let o = prepare ~config g in
            (o, o')
        in
        (* One warmup each and a compacted heap, then single timed runs
           in a balanced ABBA pattern. Balance matters: the engines share
           the corpus, so whichever runs second in a pair reads it
           cache-warm — an unbalanced order hands one engine more warm
           slots and shows up as a persistent percent-level delta. ABBA
           gives each engine two first and two second slots per round. *)
        if flip then (
          ignore (Engine.parse off corpus);
          ignore (Engine.parse off' corpus))
        else (
          ignore (Engine.parse off' corpus);
          ignore (Engine.parse off corpus));
        Gc.compact ();
        let a = ref infinity and b = ref infinity in
        let timed eng best =
          (* A full collection before every timed run, not just the first:
             each parse drops megabytes of garbage (the VM's chunk array
             alone), and a run on a clean heap pays no major slices — if
             only the first run after [Gc.compact] gets that, whichever
             engine owns that slot reads ~20% faster. *)
          Gc.full_major ();
          let t0 = now () in
          ignore (Engine.parse eng corpus);
          let dt = now () -. t0 in
          if dt < !best then best := dt
        in
        List.iter
          (fun off_first ->
            if off_first then (
              timed off a;
              timed off' b)
            else (
              timed off' b;
              timed off a))
          [ true; false; false; true ];
        let c = time_best ~repeats:3 (fun () -> Engine.parse on corpus) in
        if !a < !t_off then t_off := !a;
        if !b < !t_off' then t_off' := !b;
        if c < !t_on then t_on := c;
        deltas := (100. *. (!b -. !a) /. !a) :: !deltas
      done;
      (* Gate on the median of the paired per-round deltas: pairing
         cancels drift within a round, the fresh layouts and the
         alternating preparation and measurement order decorrelate the
         rounds, and the median shrugs off the one round that ran
         under a sibling process. A min-vs-min comparison has none of
         those properties and flickers past the gate a few runs in a
         hundred. *)
      let off_pct =
        let d = List.sort Float.compare !deltas in
        let n = List.length d in
        (List.nth d ((n - 1) / 2) +. List.nth d (n / 2)) /. 2.
      in
      let gate = if Float.abs off_pct > 3.0 then "fail" else "ok" in
      let on_pct = 100. *. (!t_on -. !t_off) /. !t_off in
      record ~experiment:"e8" ~series:"overhead"
        [
          ("backend", jstr label);
          ("bytes", jint bytes);
          ("off_ms", jfloat (ms !t_off));
          ("off_observe_ms", jfloat (ms !t_off'));
          ("on_ms", jfloat (ms !t_on));
          ("off_overhead_pct", jfloat off_pct);
          ("off_gate", jstr gate);
          ("on_overhead_pct", jfloat on_pct);
        ];
      row "  %-10s %10.2f %10.2f %10.2f %9.1f%% %9s %8.1f%%\n" label
        (ms !t_off) (ms !t_off') (ms !t_on) off_pct gate on_pct)
    [ ("closure", Config.optimized); ("vm", Config.vm) ];
  (* One observed parse: where the time goes, and what the corpus
     exercises. *)
  let eng =
    prepare ~config:(Config.with_observe (Observe.all ()) Config.optimized) g
  in
  assert_ok "e8/profile" (Engine.parse eng corpus);
  match Engine.observation eng with
  | None -> failwith "e8: observed engine reports no sink"
  | Some o ->
      (match Observe.profile o with
      | None -> ()
      | Some p ->
          row "\ntop productions by self time (one observed minijava parse):\n";
          row "%s" (Format.asprintf "%a" (Profile.pp_table ~top:8) p);
          List.iteri
            (fun i (r : Profile.row) ->
              if i < 8 then
                record ~experiment:"e8" ~series:"top-productions"
                  [
                    ("rank", jint (i + 1));
                    ("production", jstr r.Profile.row_name);
                    ("calls", jint r.Profile.row_calls);
                    ("hits", jint r.Profile.row_hits);
                    ("self_ns", jint r.Profile.row_self_ns);
                    ("total_ns", jint r.Profile.row_total_ns);
                  ])
            (Profile.rows p));
      let ph, np, am, na = Observe.coverage_summary o in
      row "coverage on the corpus: %d/%d productions, %d/%d alternatives\n" ph
        np am na;
      record ~experiment:"e8" ~series:"coverage"
        [
          ("prods_hit", jint ph);
          ("prods", jint np);
          ("arms_matched", jint am);
          ("arms", jint na);
        ];
      row "trace ring: %d events seen, capacity %d\n" (Observe.events_seen o)
        (Observe.ring_capacity o)

(* ========================================================================== *)
(* E9: zero-copy input (supplementary)                                        *)
(* ========================================================================== *)

(* Two claims about the Bigarray input layer. First, on value-building
   parses of on-disk files, mapping the file (Source.map_file +
   Engine.run_input) is observationally identical to reading it into a
   string — same tree, same Stats — while allocating strictly less,
   because the file-sized heap copy never happens; checked literally
   before timing. Second, on a pure recognizer (every production Void) a
   steady-state mapped parse's allocation is independent of input size:
   the memo arena and scratch pools are engine-owned and reused across
   runs, no values are built, and the mapping lives outside the OCaml
   heap — so the only per-run allocation is fixed-size bookkeeping. *)

let e9 () =
  header "E9: zero-copy input: mmap vs copy (Bigarray-backed sources)";
  let with_temp_file contents f =
    let path = Filename.temp_file "rats_bench" ".txt" in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc contents);
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)
  in
  let map_input path =
    match Source.map_file path with
    | Ok src -> Source.input src
    | Error msg -> failwith ("e9: " ^ msg)
  in
  row "mmap vs copy (values built; both modes pay the file I/O):\n";
  row "  %-9s %-5s %10s %11s %9s %11s\n" "grammar" "mode" "bytes" "median ms"
    "MB/s" "KB/parse";
  List.iter
    (fun (gname, grammar, corpus) ->
      let eng = prepare (Pipeline.optimize grammar) in
      with_temp_file corpus (fun path ->
          (* Equivalence before timing: the mapped parse must be
             byte-identical, value and every counter. *)
          let out_copy = Engine.run_input eng (Input.of_string corpus) in
          let out_map = Engine.run_input eng (map_input path) in
          assert_ok (gname ^ "/copy") out_copy.Engine.result;
          assert_ok (gname ^ "/mmap") out_map.Engine.result;
          (match (out_copy.Engine.result, out_map.Engine.result) with
          | Ok a, Ok b when Value.equal a b -> ()
          | _ -> failwith (gname ^ ": mmap parse differs from copy parse"));
          if
            Stats.fields out_copy.Engine.stats
            <> Stats.fields out_map.Engine.stats
          then failwith (gname ^ ": mmap stats differ from copy stats");
          let bytes = String.length corpus in
          List.iter
            (fun (mode, parse) ->
              let m = measure parse in
              record ~experiment:"e9" ~series:"mmap-vs-copy"
                [
                  ("grammar", jstr gname);
                  ("mode", jstr mode);
                  ("bytes", jint bytes);
                  ("time_ms", jfloat (ms m.m_best));
                  ("median_ms", jfloat (ms m.m_median));
                  ("mb_per_s", jfloat (mbs bytes m.m_best));
                  ("allocated_bytes_per_parse", jfloat m.m_alloc_bytes);
                ];
              row "  %-9s %-5s %10d %11.2f %9.2f %11.1f\n" gname mode bytes
                (ms m.m_median) (mbs bytes m.m_best)
                (m.m_alloc_bytes /. 1024.))
            [
              ( "copy",
                fun () ->
                  let text =
                    In_channel.with_open_bin path In_channel.input_all
                  in
                  Engine.run_input eng (Input.of_string text) );
              ("mmap", fun () -> Engine.run_input eng (map_input path));
            ]))
    [
      ("json", Grammars.Json.grammar (), Lazy.force json_corpus);
      ("minijava", Grammars.Minijava.grammar (), Lazy.force java_corpus);
    ];
  (* Recognizer: hand-built all-Void grammars (no value is constructed
     anywhere in the body), then grow the input; the bytes/parse column
     must stay flat. Under the bytecode backend these run entirely on
     pooled scratch plus the engine-owned memo arena, so steady-state
     allocation is fixed-size bookkeeping regardless of input length. *)
  let digits = Charset.range '0' '9' in
  let expr_recog =
    let open Builder in
    grammar ~start:"S"
      [
        prod ~kind:Attr.Void "S" (star (e "Expr" @: c ';'));
        prod ~kind:Attr.Void ~memo:Attr.Memo_always "Expr"
          (e "Term" @: star (one_of "+-" @: e "Term"));
        prod ~kind:Attr.Void "Term"
          (e "Atom" @: star (one_of "*/" @: e "Atom"));
        prod ~kind:Attr.Void "Atom"
          (plus (cls digits) <|> c '(' @: e "Expr" @: c ')');
      ]
  in
  let list_recog =
    let open Builder in
    grammar ~start:"S"
      [
        prod ~kind:Attr.Void "S" (star (e "Val" @: c ';'));
        prod ~kind:Attr.Void ~memo:Attr.Memo_always "Val"
          (plus (cls digits)
          <|> c '[' @: opt (e "Val" @: star (c ',' @: e "Val")) @: c ']');
      ]
  in
  let tile unit target =
    let b = Buffer.create (target + String.length unit) in
    while Buffer.length b < target do
      Buffer.add_string b unit
    done;
    Buffer.contents b
  in
  List.iter
    (fun (gname, grammar, unit) ->
      let recog = prepare ~config:Config.vm (Pipeline.optimize grammar) in
      row "\nrecognizer (%s, all-Void), mapped input — alloc vs size:\n" gname;
      row "  %-10s %11s %14s\n" "bytes" "median ms" "bytes/parse";
      List.iter
        (fun target ->
          let corpus = tile unit (scale target) in
          with_temp_file corpus (fun path ->
              let m =
                measure (fun () ->
                    let out = Engine.run_input recog (map_input path) in
                    assert_ok ("e9/" ^ gname) out.Engine.result)
              in
              record ~experiment:"e9" ~series:"recognizer-alloc"
                [
                  ("grammar", jstr gname);
                  ("mode", jstr "mmap");
                  ("bytes", jint (String.length corpus));
                  ("median_ms", jfloat (ms m.m_median));
                  ("allocated_bytes_per_parse", jfloat m.m_alloc_bytes);
                ];
              row "  %-10d %11.2f %14.0f\n" (String.length corpus)
                (ms m.m_median) m.m_alloc_bytes))
        [ 10_000; 40_000; 160_000 ])
    [
      ("expr-recog", expr_recog, "12+34*(56-7)/8;");
      ("list-recog", list_recog, "[12,[3,[45,6],[]],789];");
    ];
  (* Voidified real grammars: the calc and MiniJava grammars the rest
     of the suite measures, with every production kind erased by
     [Batch.recognizer_erase] — exactly what [rml parse --recognize]
     and the degradation ladder run. Every lean-path construct is
     allocation-free, so bytes/parse is a small constant independent of
     input size on both backends; check_regression gates the flatness
     (max <= 1.25*min + 16 KB per grammar x backend). *)
  let voidify g =
    match Batch.recognizer_erase g with
    | Some g' -> g'
    | None -> failwith "e9: recognizer erasure produced an ill-formed grammar"
  in
  row "\nvoidified real grammars — alloc vs size (lean recognizer mode):\n";
  row "  %-9s %-8s %10s %11s %14s\n" "grammar" "backend" "bytes" "median ms"
    "bytes/parse";
  List.iter
    (fun (gname, grammar, corpora) ->
      let g = Pipeline.optimize (voidify grammar) in
      List.iter
        (fun (backend, config) ->
          let eng = prepare ~config g in
          List.iter
            (fun corpus ->
              let m =
                measure (fun () ->
                    assert_ok
                      ("e9/voidified-" ^ gname)
                      (Engine.parse eng corpus))
              in
              record ~experiment:"e9" ~series:"voidified-recognizer-alloc"
                [
                  ("grammar", jstr gname);
                  ("backend", jstr backend);
                  ("bytes", jint (String.length corpus));
                  ("median_ms", jfloat (ms m.m_median));
                  ("allocated_bytes_per_parse", jfloat m.m_alloc_bytes);
                ];
              row "  %-9s %-8s %10d %11.2f %14.0f\n" gname backend
                (String.length corpus) (ms m.m_median) m.m_alloc_bytes)
            corpora)
        [ ("closure", Config.optimized); ("vm", Config.vm) ])
    [
      ( "calc",
        Grammars.Calc.grammar (),
        List.map
          (fun size -> Grammars.Corpus.arith (Rng.create 2024) ~size)
          [ scale 2_500; scale 10_000; scale 40_000 ] );
      ( "minijava",
        Grammars.Minijava.grammar (),
        List.map
          (fun classes -> Grammars.Corpus.minijava (Rng.create 2024) ~classes)
          [ scale 4; scale 16; scale 64 ] );
    ]

(* ========================================================================== *)
(* E10: fault-isolated batch throughput and the degradation ladder            *)
(* ========================================================================== *)

let e10 () =
  header "E10: batch pipeline: docs/sec, isolation and ladder cost";
  let run_batch ?limits config g docs =
    match Batch.run ~config ?limits g (Batch.Docs docs) with
    | Ok rep -> rep
    | Error _ -> failwith "e10: grammar failed to compile"
  in
  let backends = [ ("closure", Config.optimized); ("vm", Config.vm) ] in
  (* Throughput: many small calc documents through [Batch.run], each
     parsed cold under its own limits snapshot and exception backstop —
     the docs/sec here is raw engine speed plus the full per-document
     isolation overhead. *)
  let ndocs = scale 150 in
  let docs =
    List.init ndocs (fun i ->
        ( Printf.sprintf "doc%d" i,
          Grammars.Corpus.arith
            (Rng.create (i + 1))
            ~size:(60 + (i mod 7 * 40)) ))
  in
  let bytes = List.fold_left (fun a (_, d) -> a + String.length d) 0 docs in
  let calc = Pipeline.optimize (Grammars.Calc.grammar ()) in
  row "throughput: %d calc docs, %d bytes total\n" ndocs bytes;
  row "  %-8s %10s %11s %9s %9s\n" "backend" "docs/s" "median ms" "p50 ms"
    "p99 ms";
  List.iter
    (fun (label, config) ->
      let rep = run_batch config calc docs in
      let s = rep.Batch.summary in
      if s.Batch.s_ok <> ndocs then
        failwith ("e10: throughput corpus should be all-ok on " ^ label);
      let m = measure (fun () -> run_batch config calc docs) in
      let dps = float_of_int ndocs /. m.m_median in
      record ~experiment:"e10" ~series:"throughput"
        [
          ("backend", jstr label);
          ("docs", jint ndocs);
          ("bytes", jint bytes);
          ("docs_per_s", jfloat dps);
          ("median_ms", jfloat (ms m.m_median));
          ("p50_ms", jfloat s.Batch.s_p50_ms);
          ("p99_ms", jfloat s.Batch.s_p99_ms);
          ("ok", jint s.Batch.s_ok);
          ("failed", jint s.Batch.s_failed);
          ("allocated_bytes_per_run", jfloat m.m_alloc_bytes);
        ];
      row "  %-8s %10.0f %11.2f %9.3f %9.3f\n" label dps (ms m.m_median)
        s.Batch.s_p50_ms s.Batch.s_p99_ms)
    backends;
  (* Ladder cost: a memoized chain whose parse is exponential without
     memo and linear with it. Cold runs under roomy limits stay on the
     full rung; the degraded series caps the memo budget below what
     value-carrying chunks need, so every document trips its fuel on
     the full rung and is rescued by the recognizer retry — the
     recorded ratio is the price of descending the ladder, and the
     counters pin that the rescue really happened. *)
  let chain =
    let open Builder in
    let link i next =
      prod ~kind:Attr.Generic ~memo:Attr.Memo_always
        (Printf.sprintf "C%d" i)
        (e next @: c 'b' <|> e next)
    in
    grammar ~start:"S"
      (prod ~kind:Attr.Generic "S" (plus (e "C0"))
      :: List.init 7 (fun i -> link i (Printf.sprintf "C%d" (i + 1)))
      @ [ prod ~kind:Attr.Generic ~memo:Attr.Memo_always "C7" (c 'a') ])
  in
  let ldocs = scale 60 in
  let ladder_docs =
    List.init ldocs (fun i -> (Printf.sprintf "doc%d" i, String.make 200 'a'))
  in
  row "\nladder: %d chain docs of 200 bytes, cold vs degraded:\n" ldocs;
  row "  %-8s %-9s %10s %11s %11s %9s\n" "backend" "mode" "docs/s" "median ms"
    "recognizer" "degraded";
  List.iter
    (fun (label, config) ->
      let cold_median = ref 0. in
      List.iter
        (fun (mode, limits) ->
          let rep = run_batch ?limits config chain ladder_docs in
          let s = rep.Batch.summary in
          if s.Batch.s_ok <> ldocs then
            failwith
              (Printf.sprintf "e10: %s/%s should parse every doc" label mode);
          (match mode with
          | "cold" when s.Batch.s_rung_recognizer <> 0 ->
              failwith "e10: cold run descended the ladder"
          | "degraded" when s.Batch.s_rung_recognizer <> ldocs ->
              failwith "e10: degraded run should rescue every doc"
          | _ -> ());
          let m =
            measure (fun () -> run_batch ?limits config chain ladder_docs)
          in
          if mode = "cold" then cold_median := m.m_median;
          let dps = float_of_int ldocs /. m.m_median in
          record ~experiment:"e10" ~series:"ladder"
            [
              ("backend", jstr label);
              ("mode", jstr mode);
              ("docs", jint ldocs);
              ("docs_per_s", jfloat dps);
              ("median_ms", jfloat (ms m.m_median));
              ( "vs_cold",
                jfloat
                  (if !cold_median > 0. then m.m_median /. !cold_median
                   else 1.) );
              ("p50_ms", jfloat s.Batch.s_p50_ms);
              ("p99_ms", jfloat s.Batch.s_p99_ms);
              ("rung_recognizer", jint s.Batch.s_rung_recognizer);
              ("retried", jint s.Batch.s_degraded);
              ("memo_degraded", jint s.Batch.s_memo_degraded);
              ("cold_fallbacks", jint s.Batch.s_cold_fallbacks);
            ];
          row "  %-8s %-9s %10.0f %11.2f %11d %9d\n" label mode dps
            (ms m.m_median) s.Batch.s_rung_recognizer s.Batch.s_memo_degraded)
        [
          ("cold", None);
          ("degraded", Some (Limits.v ~max_memo_bytes:55_000 ~fuel:6_000 ()));
        ])
    backends

(* ========================================================================== *)
(* E11: pipeline telemetry: metrics-on vs metrics-off batch overhead          *)
(* ========================================================================== *)

(* The PR 5 zero-cost-when-off contract, extended to the pipeline by
   PR 10: a batch run given no registry never enters the metrics
   module, and a run WITH one must stay within noise of it — the
   record path is a handful of int stores and one shift loop per
   document. Methodology is E8's observe-off gate verbatim: per-round
   paired deltas, single timed runs on a freshly-collected heap in a
   balanced ABBA pattern, gated on the median of the paired deltas
   (<= 3%, reported through the same off_gate field CI greps). A
   structural pass first pins that the registry reconciles with the
   run it measured: the status counters must cover every record and
   the latency histogram must have observed each one. *)

let e11 () =
  header "E11: pipeline telemetry: metrics-on vs metrics-off batch overhead";
  let ndocs = scale 150 in
  let docs =
    List.init ndocs (fun i ->
        ( Printf.sprintf "doc%d" i,
          Grammars.Corpus.arith
            (Rng.create (i + 1))
            ~size:(60 + (i mod 7 * 40)) ))
  in
  let bytes = List.fold_left (fun a (_, d) -> a + String.length d) 0 docs in
  let calc = Pipeline.optimize (Grammars.Calc.grammar ()) in
  let run_batch ?metrics config =
    match Batch.run ?metrics ~config calc (Batch.Docs docs) with
    | Ok rep -> rep
    | Error _ -> failwith "e11: grammar failed to compile"
  in
  row "corpus: %d calc docs, %d bytes (interleaved ABBA rounds)\n" ndocs bytes;
  row "  %-8s %10s %10s %9s %9s\n" "backend" "off ms" "on ms" "on ovh" "gate";
  List.iter
    (fun (label, config) ->
      (* Structural: the registry is a faithful second view of the run. *)
      let reg = Metrics.create () in
      let rep = run_batch ~metrics:reg config in
      let s = rep.Batch.summary in
      let cval l =
        Metrics.counter_value (Metrics.counter reg ~labels:l "rml_batch_docs_total")
      in
      if cval [ ("status", "ok") ] <> s.Batch.s_ok then
        failwith ("e11: ok counter disagrees with the summary on " ^ label);
      if cval [ ("status", "ok") ] + cval [ ("status", "fail") ] <> s.Batch.s_docs
      then failwith ("e11: docs_total misses records on " ^ label);
      let h = Metrics.histogram reg "rml_batch_doc_latency_us" in
      if Metrics.hist_count h <> s.Batch.s_docs then
        failwith ("e11: latency histogram misses records on " ^ label);
      record ~experiment:"e11" ~series:"reconcile"
        [
          ("backend", jstr label);
          ("docs", jint s.Batch.s_docs);
          ("ok", jint s.Batch.s_ok);
          ("hist_count", jint (Metrics.hist_count h));
          ("hist_p50_us", jfloat (Metrics.quantile h 0.5));
          ("hist_p99_us", jfloat (Metrics.quantile h 0.99));
          ("summary_p50_ms", jfloat s.Batch.s_p50_ms);
          ("summary_p99_ms", jfloat s.Batch.s_p99_ms);
        ];
      (* Overhead: E8's paired-delta discipline. A fresh registry per
         timed run — registration cost is part of the price measured. *)
      let t_off = ref infinity and t_on = ref infinity in
      let deltas = ref [] in
      for _round = 1 to 10 do
        ignore (run_batch config);
        ignore (run_batch ~metrics:(Metrics.create ()) config);
        Gc.compact ();
        let a = ref infinity and b = ref infinity in
        let timed f best =
          Gc.full_major ();
          let t0 = now () in
          ignore (f ());
          let dt = now () -. t0 in
          if dt < !best then best := dt
        in
        List.iter
          (fun off_first ->
            if off_first then (
              timed (fun () -> run_batch config) a;
              timed (fun () -> run_batch ~metrics:(Metrics.create ()) config) b)
            else (
              timed (fun () -> run_batch ~metrics:(Metrics.create ()) config) b;
              timed (fun () -> run_batch config) a))
          [ true; false; false; true ];
        if !a < !t_off then t_off := !a;
        if !b < !t_on then t_on := !b;
        deltas := (100. *. (!b -. !a) /. !a) :: !deltas
      done;
      let on_pct =
        let d = List.sort Float.compare !deltas in
        let n = List.length d in
        (List.nth d ((n - 1) / 2) +. List.nth d (n / 2)) /. 2.
      in
      (* One-sided: telemetry being (noise-)faster than bare is fine. *)
      let gate = if on_pct > 3.0 then "fail" else "ok" in
      record ~experiment:"e11" ~series:"overhead"
        [
          ("backend", jstr label);
          ("docs", jint ndocs);
          ("bytes", jint bytes);
          ("off_ms", jfloat (ms !t_off));
          ("on_ms", jfloat (ms !t_on));
          ("on_overhead_pct", jfloat on_pct);
          ("off_gate", jstr gate);
        ];
      row "  %-8s %10.2f %10.2f %8.1f%% %9s\n" label (ms !t_off) (ms !t_on)
        on_pct gate)
    [ ("closure", Config.optimized); ("vm", Config.vm) ]

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec scan = function
    | [] -> []
    | "--quick" :: rest ->
        quick := true;
        scan rest
    | "--micro" :: rest ->
        micro := true;
        scan rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        scan rest
    | "--json" :: [] ->
        prerr_endline "--json needs a file argument";
        exit 2
    | a :: rest -> a :: scan rest
  in
  let args = scan args in
  let selected =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S (have: %s)\n" n
                  (String.concat ", " (List.map fst experiments));
                exit 2)
          names
  in
  Printf.printf "rats-ml benchmark harness (quick=%b)\n" !quick;
  List.iter (fun (_, f) -> f ()) selected;
  if !micro then e2_micro ();
  write_json ()
