open Rats_support
open Rats_peg
open Rats_runtime

type source =
  | Manifest of string
  | Channel of { ic : in_channel; sep : char }
  | Docs of (string * string) list

type rung = Full | Recognizer

let rung_name = function Full -> "full" | Recognizer -> "recognizer"

type fail_class = Syntax | Resource of string | Io | Internal

type record = {
  r_index : int;
  r_name : string;
  r_bytes : int;
  r_ok : bool;
  r_rung : rung;
  r_retried : bool;
  r_fail : fail_class option;
  r_which : string option;
  r_position : int;
  r_message : string;
  r_ms : float;
  r_memo_degraded : int;
  r_fuel_used : int;
}

type summary = {
  s_docs : int;
  s_ok : int;
  s_failed : int;
  s_degraded : int;
  s_rung_full : int;
  s_rung_recognizer : int;
  s_syntax : int;
  s_resource : int;
  s_io : int;
  s_internal : int;
  s_p50_ms : float;
  s_p99_ms : float;
  s_total_ms : float;
  s_memo_degraded : int;
  s_cold_fallbacks : int;
}

type report = { records : record list; summary : summary }

exception Prep_failed of string

(* ------------------------------------------------------------------ *)
(* The recognizer rung: the same grammar with every production's kind
   erased to [Void]. Kinds only shape semantic values — what matches,
   and where failures point, is untouched — so the erased grammar gives
   the same verdict on every document. What changes is the memo table:
   value-free productions get no arena value slot (the vmap), and the
   value-aware {!Limits.chunk_cost} then charges each position markedly
   less, so the same memo budget memoizes roughly twice the input
   before degrading. A document whose degradation re-runs burned
   through the fuel budget on the full rung gets a genuine second
   chance here. Values are turned off at the grammar level rather than
   through [Config.lean_values] deliberately: the lean entry points
   read the memo but never fill it, and the rung needs the storing
   matchers — just with nothing to store. *)

let recognizer_erase g =
  let prods =
    List.map
      (fun (p : Production.t) ->
        Production.with_attrs p { p.Production.attrs with Attr.kind = Attr.Void })
      (Grammar.productions g)
  in
  match Grammar.make ~start:(Grammar.start g) prods with
  | Ok g -> Some g
  | Error _ -> None

(* ------------------------------------------------------------------ *)
(* Document acquisition *)

let read_doc_file ~cap ~faults path =
  match open_in_bin path with
  | exception Sys_error m -> Error (Faults.Io_fault m)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Faults.read_channel ~cap ~faults ic)

let manifest_paths path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match In_channel.input_line ic with
            | None -> Ok (List.rev acc)
            | Some line ->
                let line = String.trim line in
                if line = "" || line.[0] = '#' then go acc else go (line :: acc)
            | exception Sys_error m -> Error m
          in
          go [])

(* Stream a delimited channel, yielding one buffered document per
   separator. Per-document buffering is bounded by [cap + 1] bytes —
   every verdict the read path can reach (truncation point, injected
   I/O offset, cap trip) lies at or below that prefix, so the byte
   count past it only needs counting, not keeping. *)
let iter_channel ~sep ~cap ic yield =
  let keep = if cap >= max_int - 1 then max_int else cap + 1 in
  let chunk = Bytes.create 65536 in
  let buf = Buffer.create 4096 in
  let idx = ref 0 in
  let count = ref 0 in
  let flush () =
    yield !idx (Ok (Buffer.contents buf));
    incr idx;
    Buffer.clear buf;
    count := 0
  in
  let rec go () =
    match In_channel.input ic chunk 0 (Bytes.length chunk) with
    | 0 -> if !count > 0 then flush ()
    | n ->
        for i = 0 to n - 1 do
          let c = Bytes.unsafe_get chunk i in
          if c = sep then flush ()
          else begin
            if Buffer.length buf < keep then Buffer.add_char buf c;
            incr count
          end
        done;
        go ()
    | exception Sys_error m ->
        (* the stream itself died mid-document: contain it as that
           document's record and stop *)
        yield !idx (Error (Faults.Io_fault m));
        incr idx
  in
  go ()

(* ------------------------------------------------------------------ *)
(* JSON rendering *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fail_name = function
  | Syntax -> "syntax"
  | Resource _ -> "resource"
  | Io -> "io"
  | Internal -> "internal"

let jsonl_of_record r =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"doc\":%d,\"name\":\"%s\",\"bytes\":%d,\"status\":\"%s\",\"rung\":\"%s\",\"retried\":%b"
       r.r_index (json_escape r.r_name) r.r_bytes
       (if r.r_ok then "ok" else "fail")
       (rung_name r.r_rung) r.r_retried);
  (match r.r_fail with
  | None -> ()
  | Some f ->
      Buffer.add_string b (Printf.sprintf ",\"kind\":\"%s\"" (fail_name f));
      (match r.r_which with
      | Some w -> Buffer.add_string b (Printf.sprintf ",\"which\":\"%s\"" w)
      | None -> ());
      if r.r_position >= 0 then
        Buffer.add_string b (Printf.sprintf ",\"position\":%d" r.r_position);
      Buffer.add_string b
        (Printf.sprintf ",\"message\":\"%s\"" (json_escape r.r_message)));
  Buffer.add_string b
    (Printf.sprintf ",\"ms\":%.3f,\"memo_degraded\":%d,\"fuel_used\":%d}" r.r_ms
       r.r_memo_degraded r.r_fuel_used);
  Buffer.contents b

let jsonl_of_summary s =
  Printf.sprintf
    "{\"summary\":true,\"docs\":%d,\"ok\":%d,\"failed\":%d,\"degraded\":%d,\"rung_full\":%d,\"rung_recognizer\":%d,\"syntax\":%d,\"resource\":%d,\"io\":%d,\"internal\":%d,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"total_ms\":%.3f,\"memo_degraded\":%d,\"cold_fallbacks\":%d}"
    s.s_docs s.s_ok s.s_failed s.s_degraded s.s_rung_full s.s_rung_recognizer
    s.s_syntax s.s_resource s.s_io s.s_internal s.s_p50_ms s.s_p99_ms
    s.s_total_ms s.s_memo_degraded s.s_cold_fallbacks

let pp_summary ppf s =
  Format.fprintf ppf
    "%d docs: %d ok, %d failed (%d syntax, %d resource, %d io, %d internal), \
     %d degraded (%d answered on recognizer rung); p50 %.3fms p99 %.3fms \
     total %.1fms; memo_degraded %d, cold_fallbacks %d"
    s.s_docs s.s_ok s.s_failed s.s_syntax s.s_resource s.s_io s.s_internal
    s.s_degraded s.s_rung_recognizer s.s_p50_ms s.s_p99_ms s.s_total_ms
    s.s_memo_degraded s.s_cold_fallbacks

let exit_code r =
  let s = r.summary in
  if s.s_internal > 0 then 5
  else if s.s_resource > 0 then 4
  else if s.s_syntax > 0 || s.s_io > 0 then 3
  else 0

(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let summarize records total_ms =
  let records = Array.of_list records in
  let n = Array.length records in
  let count f = Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 records in
  let lat = Array.map (fun r -> r.r_ms) records in
  Array.sort compare lat;
  {
    s_docs = n;
    s_ok = count (fun r -> r.r_ok);
    s_failed = count (fun r -> not r.r_ok);
    s_degraded = count (fun r -> r.r_retried);
    s_rung_full = count (fun r -> r.r_rung = Full);
    s_rung_recognizer = count (fun r -> r.r_rung = Recognizer);
    s_syntax = count (fun r -> r.r_fail = Some Syntax);
    s_resource =
      count (fun r -> match r.r_fail with Some (Resource _) -> true | _ -> false);
    s_io = count (fun r -> r.r_fail = Some Io);
    s_internal = count (fun r -> r.r_fail = Some Internal);
    s_p50_ms = percentile lat 0.5;
    s_p99_ms = percentile lat 0.99;
    s_total_ms = total_ms;
    s_memo_degraded =
      Array.fold_left (fun acc r -> acc + r.r_memo_degraded) 0 records;
    s_cold_fallbacks = 0;
  }

(* ------------------------------------------------------------------ *)
(* Telemetry instruments. Registered once per run when (and only when)
   a registry is passed in; the run body guards every record call on
   the [instruments option], so a run without [?metrics] never enters
   the metrics module at all — the PR 5 zero-cost-when-off contract at
   pipeline level. *)

type instruments = {
  i_docs_ok : Metrics.counter;
  i_docs_fail : Metrics.counter;
  i_fail_syntax : Metrics.counter;
  i_fail_resource : Metrics.counter;
  i_fail_io : Metrics.counter;
  i_fail_internal : Metrics.counter;
  i_rung_full : Metrics.counter;
  i_rung_recognizer : Metrics.counter;
  i_retries : Metrics.counter;
  i_latency_us : Metrics.histogram;
  i_fuel : Metrics.histogram;
  i_doc_bytes : Metrics.histogram;
  i_memo_bytes : Metrics.histogram;
  i_gc_minor_words : Metrics.gauge;
  i_gc_major_words : Metrics.gauge;
  i_gc_heap_words : Metrics.gauge;
  i_arena_chunk_cap : Metrics.gauge;
  i_memo_chunks_peak : Metrics.gauge;
}

(* Sequenced lets, not a record literal: record fields evaluate
   right-to-left, which would reverse registration — and the exposition
   order — in the registry, and strand the HELP text away from the
   first series of each family. *)
let instruments_of reg =
  let dc = "Documents processed, by final status." in
  let i_docs_ok =
    Metrics.counter reg ~labels:[ ("status", "ok") ] ~help:dc
      "rml_batch_docs_total"
  in
  let i_docs_fail =
    Metrics.counter reg ~labels:[ ("status", "fail") ] "rml_batch_docs_total"
  in
  let i_fail_syntax =
    Metrics.counter reg ~labels:[ ("class", "syntax") ]
      ~help:"Failed documents, by failure class." "rml_batch_fail_total"
  in
  let i_fail_resource =
    Metrics.counter reg ~labels:[ ("class", "resource") ] "rml_batch_fail_total"
  in
  let i_fail_io =
    Metrics.counter reg ~labels:[ ("class", "io") ] "rml_batch_fail_total"
  in
  let i_fail_internal =
    Metrics.counter reg ~labels:[ ("class", "internal") ] "rml_batch_fail_total"
  in
  let i_rung_full =
    Metrics.counter reg ~labels:[ ("rung", "full") ]
      ~help:"Documents answered, by degradation-ladder rung."
      "rml_batch_rung_total"
  in
  let i_rung_recognizer =
    Metrics.counter reg ~labels:[ ("rung", "recognizer") ]
      "rml_batch_rung_total"
  in
  let i_retries =
    Metrics.counter reg
      ~help:"Documents the degradation ladder descended for."
      "rml_batch_retries_total"
  in
  let i_latency_us =
    Metrics.histogram reg
      ~help:"Per-document wall time, microseconds (retries included)."
      "rml_batch_doc_latency_us"
  in
  let i_fuel =
    Metrics.histogram reg
      ~help:"Fuel charged per document, summed across reruns."
      "rml_batch_doc_fuel"
  in
  let i_doc_bytes =
    Metrics.histogram reg
      ~help:"Document size in bytes, as delivered to the parser."
      "rml_batch_doc_bytes"
  in
  let i_memo_bytes =
    Metrics.histogram reg
      ~help:"Estimated memo bytes charged per document (chunks x chunk_cost)."
      "rml_batch_doc_memo_bytes"
  in
  let i_gc_minor_words =
    Metrics.gauge reg ~help:"GC minor words at the last record (live counter)."
      "rml_gc_minor_words"
  in
  let i_gc_major_words =
    Metrics.gauge reg
      ~help:"GC major words as of the last minor collection."
      "rml_gc_major_words"
  in
  let i_gc_heap_words =
    Metrics.gauge reg
      ~help:"GC major-heap words as of the last minor collection."
      "rml_gc_heap_words"
  in
  let i_arena_chunk_cap =
    Metrics.gauge reg ~help:"Pooled memo-arena backing chunks (high water)."
      "rml_arena_chunk_cap"
  in
  let i_memo_chunks_peak =
    Metrics.gauge reg ~help:"Most memo chunks claimed by a single document."
      "rml_batch_memo_chunks_peak"
  in
  {
    i_docs_ok;
    i_docs_fail;
    i_fail_syntax;
    i_fail_resource;
    i_fail_io;
    i_fail_internal;
    i_rung_full;
    i_rung_recognizer;
    i_retries;
    i_latency_us;
    i_fuel;
    i_doc_bytes;
    i_memo_bytes;
    i_gc_minor_words;
    i_gc_major_words;
    i_gc_heap_words;
    i_arena_chunk_cap;
    i_memo_chunks_peak;
  }

let gauge_max g v = if v > Metrics.gauge_value g then Metrics.set g v

(* Everything here is derived from the already-built record (plus the
   run-scoped accumulators), so recording adds no clock reads: the
   JSONL stream is unchanged even under a synthetic test clock. *)
let record_metrics i ~memo_bytes ~memo_chunks ~arena_cap r =
  if r.r_ok then Metrics.inc i.i_docs_ok else Metrics.inc i.i_docs_fail;
  (match r.r_fail with
  | None -> ()
  | Some Syntax -> Metrics.inc i.i_fail_syntax
  | Some (Resource _) -> Metrics.inc i.i_fail_resource
  | Some Io -> Metrics.inc i.i_fail_io
  | Some Internal -> Metrics.inc i.i_fail_internal);
  (match r.r_rung with
  | Full -> Metrics.inc i.i_rung_full
  | Recognizer -> Metrics.inc i.i_rung_recognizer);
  if r.r_retried then Metrics.inc i.i_retries;
  Metrics.observe i.i_latency_us (int_of_float (r.r_ms *. 1e3));
  Metrics.observe i.i_fuel r.r_fuel_used;
  if r.r_bytes >= 0 then Metrics.observe i.i_doc_bytes r.r_bytes;
  Metrics.observe i.i_memo_bytes memo_bytes;
  gauge_max i.i_memo_chunks_peak memo_chunks;
  gauge_max i.i_arena_chunk_cap arena_cap;
  (* [Gc.minor_words ()] reads the live per-domain counter; the other
     two come from [quick_stat], which OCaml 5 only refreshes at minor
     collections — fine for gauges (a run short enough never to have
     minor-collected has nothing interesting to report there), and it
     means the record path never forces a collection. *)
  Metrics.set i.i_gc_minor_words (int_of_float (Gc.minor_words ()));
  let g = Gc.quick_stat () in
  Metrics.set i.i_gc_major_words (int_of_float g.Gc.major_words);
  Metrics.set i.i_gc_heap_words g.Gc.heap_words

let fault_label = function
  | Faults.Truncate k -> Printf.sprintf "trunc@%d" k
  | Faults.Io_error k -> Printf.sprintf "io@%d" k
  | Faults.Fuel_cap k -> Printf.sprintf "fuel@%d" k
  | Faults.Memo_cap k -> Printf.sprintf "memo@%d" k
  | Faults.Clock_skew k -> Printf.sprintf "skew@%d" k

let backstopped f =
  try f () with
  | Stack_overflow ->
      {
        Engine.result =
          Error
            (Parse_error.resource_exhausted ~which:Limits.Depth ~at:0
               ~consumed:0 ());
        stats = Stats.create ();
        consumed = -1;
      }
  | Out_of_memory ->
      {
        Engine.result =
          Error
            (Parse_error.resource_exhausted ~which:Limits.Memory ~at:0
               ~consumed:0 ());
        stats = Stats.create ();
        consumed = -1;
      }

let run ?(config = Config.optimized) ?limits ?start ?deadline_ns
    ?(faults = Faults.none) ?now_ns ?metrics ?spans
    ?(on_record = fun _ -> ()) g src =
  let base_config =
    match limits with Some l -> Config.with_limits l config | None -> config
  in
  let base_limits = base_config.Config.limits in
  let cap = base_limits.Limits.max_input_bytes in
  let raw_now = match now_ns with Some f -> f | None -> Profile.now_ns in
  let inst = Option.map instruments_of metrics in
  (* Spans take their own clock readings; everything is guarded so a
     run without [?spans] reads the clock exactly as often as before
     (synthetic-clock tests depend on the call sequence). *)
  let span_now () = match spans with Some _ -> raw_now () | None -> 0 in
  (* Compile once, up front: a grammar that doesn't build is the run's
     only error — after this point every failure is a record. *)
  let t_compile = span_now () in
  let prepared = Engine.prepare ~config:base_config g in
  (match spans with
  | None -> ()
  | Some sp ->
      Profile.Spans.span sp ~name:"compile" ~ts_ns:t_compile
        ~dur_ns:(raw_now () - t_compile));
  match prepared with
  | Error ds -> Error ds
  | Ok first_engine ->
      let rec_grammar = recognizer_erase g in
      let cache : (rung * Limits.t, Engine.t) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.add cache (Full, base_limits) first_engine;
      let engine_for rung lim =
        match Hashtbl.find_opt cache (rung, lim) with
        | Some e -> e
        | None ->
            let g, cfg =
              match rung with
              | Full -> (g, Config.with_limits lim base_config)
              | Recognizer -> (
                  match rec_grammar with
                  | None -> raise (Prep_failed "recognizer rung unavailable")
                  | Some rg ->
                      ( rg,
                        {
                          (Config.with_limits lim base_config) with
                          Config.lean_values = false;
                        } ))
            in
            let t0 = span_now () in
            (match Engine.prepare ~config:cfg g with
            | Ok e ->
                (match spans with
                | None -> ()
                | Some sp ->
                    Profile.Spans.span sp ~name:"compile-rung"
                      ~args:[ ("rung", rung_name rung) ]
                      ~ts_ns:t0 ~dur_ns:(raw_now () - t0));
                Hashtbl.add cache (rung, lim) e;
                e
            | Error ds ->
                raise
                  (Prep_failed
                     (String.concat "; " (List.map Diagnostic.to_string ds))))
      in
      let records_rev = ref [] in
      let t_run0 = raw_now () in
      let process idx name payload =
        let t0 = raw_now () in
        let dfaults = Faults.active_for faults idx in
        let eff =
          {
            base_limits with
            Limits.fuel =
              (match Faults.fuel_cap dfaults with
              | Some f -> min base_limits.Limits.fuel f
              | None -> base_limits.Limits.fuel);
            max_memo_bytes =
              (match Faults.memo_cap dfaults with
              | Some m -> min base_limits.Limits.max_memo_bytes m
              | None -> base_limits.Limits.max_memo_bytes);
          }
        in
        (match spans with
        | Some sp when dfaults <> [] ->
            Profile.Spans.instant sp ~name:"fault"
              ~args:
                [
                  ("doc", string_of_int idx);
                  ("faults", String.concat "," (List.map fault_label dfaults));
                ]
              ~ts_ns:t0
        | _ -> ());
        let degraded = ref 0 and fuel = ref 0 in
        let mbytes = ref 0 and mchunks = ref 0 in
        let note eng (o : Engine.outcome) =
          degraded := !degraded + o.Engine.stats.Stats.memo_degraded;
          fuel := !fuel + o.Engine.stats.Stats.fuel_used;
          match inst with
          | None -> ()
          | Some _ ->
              let chunks = o.Engine.stats.Stats.chunks_allocated in
              if chunks > 0 then begin
                let cost =
                  Limits.chunk_cost
                    ~value_slots:(Engine.memo_value_slots eng)
                    (Engine.memo_slots eng)
                in
                mbytes := !mbytes + (chunks * cost);
                mchunks := !mchunks + chunks
              end
        in
        let mk ?(rung = Full) ?(retried = false) ?(bytes = -1) ?fail ?which
            ?(position = -1) ?(message = "") () =
          let ms = float_of_int (raw_now () - t0) /. 1e6 in
          {
            r_index = idx;
            r_name = name;
            r_bytes = bytes;
            r_ok = (fail = None);
            r_rung = rung;
            r_retried = retried;
            r_fail = fail;
            r_which = which;
            r_position = position;
            r_message = message;
            r_ms = ms;
            r_memo_degraded = !degraded;
            r_fuel_used = !fuel;
          }
        in
        let r =
          try
            match payload with
            | Error (Faults.Too_large _ as re) ->
                mk
                  ~fail:(Resource "input")
                  ~which:"input"
                  ~message:(Faults.read_error_message re)
                  ()
            | Error (Faults.Io_fault m) -> mk ~fail:Io ~message:m ()
            | Ok contents ->
                let bytes = String.length contents in
                let input = Input.of_string contents in
                let skew = Faults.clock_skew_ns dfaults in
                (* first reading arms the deadline unskewed; every poll
                   after it sees the injected clock step *)
                let armed = ref false in
                let clock () =
                  let t = raw_now () in
                  if skew = 0 then t
                  else if !armed then t + skew
                  else begin
                    armed := true;
                    t
                  end
                in
                let deadline = Option.map (fun d -> clock () + d) deadline_ns in
                let run_once rung lim =
                  (* the erased grammar keeps every production name, so
                     the start override applies to both rungs *)
                  let eng = engine_for rung lim in
                  let ta = span_now () in
                  let o =
                    backstopped (fun () -> Engine.run_input eng ?start input)
                  in
                  (match spans with
                  | None -> ()
                  | Some sp ->
                      Profile.Spans.span sp ~cat:"attempt" ~name:"attempt"
                        ~args:
                          [
                            ("doc", string_of_int idx);
                            ("rung", rung_name rung);
                          ]
                        ~ts_ns:ta ~dur_ns:(raw_now () - ta));
                  note eng o;
                  o
                in
                (* the --timeout discipline, monotonic: parse under a
                   doubling fuel slice until the answer is not a
                   fuel trip, the budget is reached, or the clock is. *)
                let attempt rung =
                  match deadline with
                  | None -> (run_once rung eff, false)
                  | Some dl ->
                      let budget = eff.Limits.fuel in
                      let rec go slice =
                        let o = run_once rung { eff with Limits.fuel = slice } in
                        let fuel_trip =
                          match o.Engine.result with
                          | Error e ->
                              Parse_error.exhausted_which e = Some Limits.Fuel
                          | Ok _ -> false
                        in
                        if (not fuel_trip) || slice >= budget then (o, false)
                        else if clock () >= dl then (o, true)
                        else
                          go
                            (if slice > max_int / 2 then budget
                             else min budget (slice * 2))
                      in
                      go (min budget 65536)
                in
                let finish ~rung ~retried (o : Engine.outcome) expired =
                  match o.Engine.result with
                  | Ok _ -> mk ~rung ~retried ~bytes ()
                  | Error e ->
                      let fail, which =
                        if expired then (Resource "deadline", Some "deadline")
                        else
                          match Parse_error.exhausted_which e with
                          | Some w ->
                              let n = Limits.which_name w in
                              (Resource n, Some n)
                          | None -> (Syntax, None)
                      in
                      mk ~rung ~retried ~bytes ~fail ?which
                        ~position:e.Parse_error.position
                        ~message:(Parse_error.message e) ()
                in
                let o1, expired1 = attempt Full in
                let retryable =
                  (not expired1)
                  && rec_grammar <> None
                  && (match o1.Engine.result with
                     | Error e -> (
                         match Parse_error.exhausted_which e with
                         | Some (Limits.Fuel | Limits.Depth | Limits.Memory) ->
                             true
                         | _ -> false)
                     | Ok _ -> false)
                in
                if not retryable then finish ~rung:Full ~retried:false o1 expired1
                else
                  let o2, expired2 = attempt Recognizer in
                  finish ~rung:Recognizer ~retried:true o2 expired2
          with
          | Stack_overflow ->
              mk ~fail:(Resource "depth") ~which:"depth"
                ~message:(Limits.which_message Limits.Depth) ()
          | Out_of_memory ->
              mk ~fail:(Resource "memory") ~which:"memory"
                ~message:(Limits.which_message Limits.Memory) ()
          | Prep_failed m -> mk ~fail:Internal ~message:m ()
          | e -> mk ~fail:Internal ~message:(Printexc.to_string e) ()
        in
        records_rev := r :: !records_rev;
        (* Metrics are derived from the finished record plus the
           run-scoped accumulators — no clock reads of their own, so a
           metrics-only run leaves the JSONL stream byte-identical even
           under a synthetic clock. *)
        (match inst with
        | None -> ()
        | Some i ->
            record_metrics i ~memo_bytes:!mbytes ~memo_chunks:!mchunks
              ~arena_cap:(Engine.arena_cap first_engine) r);
        (match spans with
        | None -> ()
        | Some sp ->
            Profile.Spans.span sp ~cat:"doc" ~name:r.r_name
              ~args:
                [
                  ("doc", string_of_int idx);
                  ("status", if r.r_ok then "ok" else "fail");
                  ("rung", rung_name r.r_rung);
                ]
              ~ts_ns:t0
              ~dur_ns:(int_of_float (r.r_ms *. 1e6)));
        on_record r
      in
      let run_docs () =
        match src with
        | Docs docs ->
            List.iteri
              (fun i (name, raw) ->
                process i name
                  (Faults.apply_to_string ~cap
                     ~faults:(Faults.active_for faults i) raw))
              docs;
            Ok ()
        | Manifest path -> (
            match manifest_paths path with
            | Error m ->
                Error
                  [ Diagnostic.error (Printf.sprintf "cannot read manifest %s: %s" path m) ]
            | Ok paths ->
                List.iteri
                  (fun i p ->
                    process i p
                      (read_doc_file ~cap
                         ~faults:(Faults.active_for faults i) p))
                  paths;
                Ok ())
        | Channel { ic; sep } ->
            iter_channel ~sep ~cap ic (fun i payload ->
                let name = Printf.sprintf "<stream:%d>" i in
                match payload with
                | Error _ as e -> process i name e
                | Ok raw ->
                    process i name
                      (Faults.apply_to_string ~cap
                         ~faults:(Faults.active_for faults i) raw));
            Ok ()
      in
      (match run_docs () with
      | Error ds -> Error ds
      | Ok () ->
          let total_ms = float_of_int (raw_now () - t_run0) /. 1e6 in
          let records = List.rev !records_rev in
          Ok { records; summary = summarize records total_ms })
