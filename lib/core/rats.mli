(** rats-ml: modular syntax for extensible parsers.

    One-stop facade over the library stack. The typical flow (each stage
    reports failures as values — none of them raise):

    {[
      let ( let* ) = Result.bind in
      let* modules = Rats.modules_of_string my_grammar_text in
      let* grammar = Rats.compose modules ~root:"my.Main" in
      let* parser = Rats.parser_of ~limits:Rats.Limits.hardened grammar in
      match Rats.parse parser input with
      | Ok tree -> ...
      | Error e -> print_endline (Rats.Parse_error.message e)
    ]}

    Every underlying component is re-exported for direct use. *)

(** {1 Re-exports} *)

module Span = Rats_support.Span
module Input = Rats_support.Input
module Source = Rats_support.Source
module Diagnostic = Rats_support.Diagnostic
module Rng = Rats_support.Rng
module Faults = Rats_support.Faults
module Charset = Rats_peg.Charset
module Value = Rats_peg.Value
module Attr = Rats_peg.Attr
module Expr = Rats_peg.Expr
module Production = Rats_peg.Production
module Grammar = Rats_peg.Grammar
module Analysis = Rats_peg.Analysis
module Analysis_ctx = Rats_peg.Analysis_ctx
module Pretty = Rats_peg.Pretty
module Builder = Rats_peg.Builder
module Lint = Rats_peg.Lint
module Module_ast = Rats_modules.Ast
module Resolve = Rats_modules.Resolve
module Meta_parser = Rats_meta.Parser
module Meta_print = Rats_meta.Print
module Config = Rats_runtime.Config
module Limits = Rats_runtime.Limits
module Stats = Rats_runtime.Stats
module Parse_error = Rats_runtime.Parse_error
module Engine = Rats_runtime.Engine
module Vm = Rats_runtime.Vm
module Expected = Rats_runtime.Expected
module Memo_arena = Rats_runtime.Memo_arena
module Observe = Rats_runtime.Observe
module Profile = Rats_runtime.Profile
module Metrics = Rats_runtime.Metrics
module Provenance = Rats_peg.Provenance
module Desugar = Rats_optimize.Desugar
module Passes = Rats_optimize.Passes
module Pass = Rats_optimize.Pass
module Driver = Rats_optimize.Driver
module Pipeline = Rats_optimize.Pipeline
module Emit = Rats_codegen.Emit

module Batch = Batch
(** Fault-isolated batch parsing — [rml parse --batch]. See {!Batch}. *)

module Grammars : sig
  module Calc = Rats_grammars.Calc
  module Json = Rats_grammars.Json
  module Minic = Rats_grammars.Minic
  module Minijava = Rats_grammars.Minijava
  module Metagrammar = Rats_grammars.Metagrammar
  module Path = Rats_grammars.Path
  module Corpus = Rats_grammars.Corpus
  module Loader = Rats_grammars.Loader
end

(** {1 Convenience pipeline} *)

type 'a or_errors = ('a, Diagnostic.t list) result

val modules_of_string : ?name:string -> string -> Module_ast.t list or_errors
(** Parse grammar-module source text. *)

val modules_of_file : string -> Module_ast.t list or_errors

val compose :
  ?start:string ->
  ?args:string list ->
  root:string ->
  Module_ast.t list ->
  Grammar.t or_errors
(** Build a library from the modules and flatten it at [root]. *)

val parser_of :
  ?optimize:bool ->
  ?passes:Pass.t list ->
  ?config:Config.t ->
  ?limits:Limits.t ->
  Grammar.t ->
  Engine.t or_errors
(** Prepare an engine. The grammar first goes through the gated
    optimizer {!Driver} — ill-formed grammars (left recursion, dangling
    references) fail fast here, before any optimization — running
    [passes] when given, else the full registry pipeline when [optimize]
    (default [true]), else no passes at all. The default [config] is
    {!Config.optimized}; [limits] (default: the config's own, normally
    {!Limits.unlimited}) overrides its resource budget — pass
    {!Limits.hardened} when the input is untrusted. *)

val parse :
  Engine.t -> ?start:string -> string -> (Value.t, Parse_error.t) result
(** Parse with the engine's configured {!Limits.t}. Never raises on any
    input: budget exhaustion comes back as a {!Parse_error.t} whose
    [kind] is {!Parse_error.kind.Resource_exhausted}, and an uncaught
    [Stack_overflow]/[Out_of_memory] from an {e unlimited} engine is
    converted to the same shape as a last resort. *)

val parse_input :
  Engine.t -> ?start:string -> Input.t -> (Value.t, Parse_error.t) result
(** {!parse} over an {!Input.t} buffer — zero-copy for Bigarray-backed
    inputs such as {!Input.map_file}; {!parse} wraps the string case.
    Results and error reports are byte-identical across the two
    representations. *)

(** {1 Incremental parse sessions}

    A session owns a compiled parser, the current input buffer and a
    persistent memo store, so that re-parsing after a small edit reuses
    the memo entries whose computations never examined the changed
    bytes (entries strictly before the damage are kept; entries past it
    are relocated by the length delta; see DESIGN.md for the
    invariants). For any grammar, input and edit script, {!Session.reparse}
    returns exactly what a cold {!parse} of the final buffer returns —
    same value under {!Value.equal}, same farthest-failure position,
    same expected set. *)

module Session : sig
  type t

  val create : ?name:string -> ?start:string -> Engine.t -> string -> t
  (** [create eng text] starts a session over the initial buffer [text].
      [name] names the buffer in locations (default ["<session>"]);
      [start] overrides the start production, as in {!Engine.run}. The
      first {!reparse} is a cold parse that populates the store. *)

  val create_source : ?start:string -> Engine.t -> Source.t -> t
  (** {!create} over an existing {!Source.t} — e.g. a memory-mapped file
      from {!Source.map_file}. A mapped buffer is parsed zero-copy until
      the first {!apply_edit}, which materializes the patched document as
      a string-backed source (copy on write; the mapping itself is never
      written through). *)

  val source : t -> Source.t
  (** The current buffer as a {!Source.t}. Its line-start index is
      patched across {!apply_edit} ({!Source.apply_edit}) rather than
      rebuilt, so location lookups stay cheap under edit scripts. *)

  val text : t -> string
  (** The current buffer. *)

  val length : t -> int

  val apply_edit : t -> start:int -> old_len:int -> replacement:string -> unit
  (** Splice [replacement] over the [old_len] bytes at [start] and
      adjust the memo store. Edits compose: several may be applied
      between reparses. Raises [Invalid_argument] when
      [start < 0], [old_len < 0] or [start + old_len] exceeds the
      buffer length. *)

  val reparse : t -> (Value.t, Parse_error.t) result
  (** Parse the current buffer, reusing surviving memo entries and
      refilling the store for the next round. Never raises (same
      backstop as {!parse}). On failure the error is computed by an
      internal cold re-parse, so reports match a from-scratch parse
      byte for byte. When the engine is observed ({!Engine.observation}),
      a reparse that inherited store entries pushes a [memo-reuse] event
      into the trace ring before its parse events. *)

  val stats : t -> Stats.t
  (** Counters of the last {!reparse}; [memo_reused] is the number of
      store entries that survived the edits preceding it and
      [memo_relocated] the subset that was shifted to new positions. *)

  val cold_fallbacks : t -> int
  (** How many reparses fell back to a cold parse for error reporting. *)
end

val generate :
  ?optimize:bool -> ?config:Config.t -> Grammar.t -> string or_errors
(** Emit a self-contained OCaml parser module for the grammar. *)

val version : string
