module Span = Rats_support.Span
module Source = Rats_support.Source
module Diagnostic = Rats_support.Diagnostic
module Rng = Rats_support.Rng
module Charset = Rats_peg.Charset
module Value = Rats_peg.Value
module Attr = Rats_peg.Attr
module Expr = Rats_peg.Expr
module Production = Rats_peg.Production
module Grammar = Rats_peg.Grammar
module Analysis = Rats_peg.Analysis
module Analysis_ctx = Rats_peg.Analysis_ctx
module Pretty = Rats_peg.Pretty
module Builder = Rats_peg.Builder
module Lint = Rats_peg.Lint
module Module_ast = Rats_modules.Ast
module Resolve = Rats_modules.Resolve
module Meta_parser = Rats_meta.Parser
module Meta_print = Rats_meta.Print
module Config = Rats_runtime.Config
module Limits = Rats_runtime.Limits
module Stats = Rats_runtime.Stats
module Parse_error = Rats_runtime.Parse_error
module Engine = Rats_runtime.Engine
module Vm = Rats_runtime.Vm
module Expected = Rats_runtime.Expected
module Desugar = Rats_optimize.Desugar
module Passes = Rats_optimize.Passes
module Pass = Rats_optimize.Pass
module Driver = Rats_optimize.Driver
module Pipeline = Rats_optimize.Pipeline
module Emit = Rats_codegen.Emit

module Grammars = struct
  module Calc = Rats_grammars.Calc
  module Json = Rats_grammars.Json
  module Minic = Rats_grammars.Minic
  module Minijava = Rats_grammars.Minijava
  module Metagrammar = Rats_grammars.Metagrammar
  module Path = Rats_grammars.Path
  module Corpus = Rats_grammars.Corpus
  module Loader = Rats_grammars.Loader
end

type 'a or_errors = ('a, Diagnostic.t list) result

let modules_of_string ?name text =
  match Meta_parser.parse_modules_string ?name text with
  | Ok ms -> Ok ms
  | Error d -> Error [ d ]

let modules_of_file path =
  match Source.read_file path with
  | Error msg -> Error [ Diagnostic.error msg ]
  | Ok src -> (
      match Meta_parser.parse_modules src with
      | Ok ms -> Ok ms
      | Error d -> Error [ d ])

let compose ?start ?args ~root modules =
  match Resolve.library modules with
  | Error ds -> Error ds
  | Ok lib -> (
      match Resolve.resolve lib ~root ?args ?start () with
      | Ok (g, _) -> Ok g
      | Error ds -> Error ds)

let parser_of ?(optimize = true) ?passes ?(config = Config.optimized) ?limits g
    =
  let config =
    match limits with Some l -> Config.with_limits l config | None -> config
  in
  let passes =
    match passes with
    | Some ps -> ps
    | None -> if optimize then Pipeline.passes () else []
  in
  match Driver.run passes g with
  | Error ds -> Error ds
  | Ok o -> Engine.prepare ~config o.Driver.grammar

(* The engines convert runaway recursion and allocation into structured
   errors themselves; this is the last-resort backstop for anything that
   slips past them (e.g. unlimited configs on hostile input). *)
let parse eng ?start input =
  try Engine.parse eng ?start input with
  | Stack_overflow ->
      Error
        (Parse_error.resource_exhausted ~which:Limits.Depth ~at:0 ~consumed:0
           ())
  | Out_of_memory ->
      Error
        (Parse_error.resource_exhausted ~which:Limits.Memory ~at:0 ~consumed:0
           ())

let generate ?(optimize = true) ?config g =
  let g = if optimize then Pipeline.optimize g else g in
  Emit.grammar_module ?config g

let version = "0.9.0"
