module Span = Rats_support.Span
module Input = Rats_support.Input
module Source = Rats_support.Source
module Diagnostic = Rats_support.Diagnostic
module Rng = Rats_support.Rng
module Faults = Rats_support.Faults
module Charset = Rats_peg.Charset
module Value = Rats_peg.Value
module Attr = Rats_peg.Attr
module Expr = Rats_peg.Expr
module Production = Rats_peg.Production
module Grammar = Rats_peg.Grammar
module Analysis = Rats_peg.Analysis
module Analysis_ctx = Rats_peg.Analysis_ctx
module Pretty = Rats_peg.Pretty
module Builder = Rats_peg.Builder
module Lint = Rats_peg.Lint
module Module_ast = Rats_modules.Ast
module Resolve = Rats_modules.Resolve
module Meta_parser = Rats_meta.Parser
module Meta_print = Rats_meta.Print
module Config = Rats_runtime.Config
module Limits = Rats_runtime.Limits
module Stats = Rats_runtime.Stats
module Parse_error = Rats_runtime.Parse_error
module Engine = Rats_runtime.Engine
module Vm = Rats_runtime.Vm
module Expected = Rats_runtime.Expected
module Memo_arena = Rats_runtime.Memo_arena
module Observe = Rats_runtime.Observe
module Profile = Rats_runtime.Profile
module Metrics = Rats_runtime.Metrics
module Provenance = Rats_peg.Provenance
module Desugar = Rats_optimize.Desugar
module Passes = Rats_optimize.Passes
module Pass = Rats_optimize.Pass
module Driver = Rats_optimize.Driver
module Pipeline = Rats_optimize.Pipeline
module Emit = Rats_codegen.Emit
module Batch = Batch

module Grammars = struct
  module Calc = Rats_grammars.Calc
  module Json = Rats_grammars.Json
  module Minic = Rats_grammars.Minic
  module Minijava = Rats_grammars.Minijava
  module Metagrammar = Rats_grammars.Metagrammar
  module Path = Rats_grammars.Path
  module Corpus = Rats_grammars.Corpus
  module Loader = Rats_grammars.Loader
end

type 'a or_errors = ('a, Diagnostic.t list) result

let modules_of_string ?name text =
  match Meta_parser.parse_modules_string ?name text with
  | Ok ms -> Ok ms
  | Error d -> Error [ d ]

let modules_of_file path =
  match Source.read_file path with
  | Error msg -> Error [ Diagnostic.error msg ]
  | Ok src -> (
      match Meta_parser.parse_modules src with
      | Ok ms -> Ok ms
      | Error d -> Error [ d ])

let compose ?start ?args ~root modules =
  match Resolve.library modules with
  | Error ds -> Error ds
  | Ok lib -> (
      match Resolve.resolve lib ~root ?args ?start () with
      | Ok (g, _) -> Ok g
      | Error ds -> Error ds)

let parser_of ?(optimize = true) ?passes ?(config = Config.optimized) ?limits g
    =
  let config =
    match limits with Some l -> Config.with_limits l config | None -> config
  in
  let passes =
    match passes with
    | Some ps -> ps
    | None -> if optimize then Pipeline.passes () else []
  in
  match Driver.run passes g with
  | Error ds -> Error ds
  | Ok o -> Engine.prepare ~config o.Driver.grammar

(* The engines convert runaway recursion and allocation into structured
   errors themselves; this is the last-resort backstop for anything that
   slips past them (e.g. unlimited configs on hostile input). *)
let parse_input eng ?start input =
  try (Engine.run_input eng ?start input).Engine.result with
  | Stack_overflow ->
      Error
        (Parse_error.resource_exhausted ~which:Limits.Depth ~at:0 ~consumed:0
           ())
  | Out_of_memory ->
      Error
        (Parse_error.resource_exhausted ~which:Limits.Memory ~at:0 ~consumed:0
           ())

let parse eng ?start input = parse_input eng ?start (Input.of_string input)

module Session = struct
  type t = {
    eng : Engine.t;
    start : string option;
    mutable source : Source.t;  (* buffer + patched line-start index *)
    store : Engine.store;
    mutable relocated : int;  (* accumulated across edits since reparse *)
    mutable survivors : int;  (* entries alive after the latest edit *)
    stats : Stats.t;  (* counters of the last reparse *)
    mutable cold_fallbacks : int;
  }

  let create_source ?start eng source =
    {
      eng;
      start;
      source;
      store = Engine.new_store eng;
      relocated = 0;
      survivors = 0;
      stats = Stats.create ();
      cold_fallbacks = 0;
    }

  let create ?(name = "<session>") ?start eng text =
    create_source ?start eng (Source.of_string ~name text)

  let source t = t.source
  let text t = Source.text t.source
  let length t = Source.length t.source

  let apply_edit t ~start ~old_len ~replacement =
    (match Source.apply_edit t.source ~start ~old_len ~replacement with
    | s -> t.source <- s
    | exception Invalid_argument _ ->
        invalid_arg "Rats.Session.apply_edit: edit out of bounds");
    let survivors, relocated =
      Engine.edit_store t.eng t.store ~start ~old_len
        ~new_len:(String.length replacement)
    in
    t.survivors <- survivors;
    t.relocated <- t.relocated + relocated

  (* Incremental pass first; any failure falls back to a cold parse so
     error reports (farthest position, expected set) are identical to a
     from-scratch parse by construction — memo hits in the incremental
     pass hide part of the expected-set trace, exactly as the VM's
     speculative first pass does. *)
  let reparse t =
    let backstopped f =
      try f () with
      | Stack_overflow ->
          {
            Engine.result =
              Error
                (Parse_error.resource_exhausted ~which:Limits.Depth ~at:0
                   ~consumed:0 ());
            stats = Stats.create ();
            consumed = -1;
          }
      | Out_of_memory ->
          {
            Engine.result =
              Error
                (Parse_error.resource_exhausted ~which:Limits.Memory ~at:0
                   ~consumed:0 ());
            stats = Stats.create ();
            consumed = -1;
          }
    in
    (* An observed engine sees the session machinery too: the ring
       shows what the store contributed before the run's own events. *)
    (match Engine.observation t.eng with
    | Some o when t.survivors > 0 || t.relocated > 0 ->
        Observe.session_reuse o ~reused:t.survivors ~relocated:t.relocated
    | _ -> ());
    let o =
      backstopped (fun () ->
          Engine.run_store_input t.eng t.store ?start:t.start
            (Source.input t.source))
    in
    let reused = t.survivors and relocated = t.relocated in
    t.relocated <- 0;
    t.survivors <- 0;
    let o =
      match o.Engine.result with
      | Ok _ -> o
      | Error _ ->
          t.cold_fallbacks <- t.cold_fallbacks + 1;
          backstopped (fun () ->
              Engine.run_input t.eng ?start:t.start (Source.input t.source))
    in
    Stats.reset t.stats;
    Stats.add t.stats o.Engine.stats;
    t.stats.Stats.memo_reused <- reused;
    t.stats.Stats.memo_relocated <- relocated;
    o.Engine.result

  let stats t = t.stats
  let cold_fallbacks t = t.cold_fallbacks
end

let generate ?(optimize = true) ?config g =
  let g = if optimize then Pipeline.optimize g else g in
  Emit.grammar_module ?config g

let version = "0.9.0"
