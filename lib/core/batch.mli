(** Fault-isolated batch parsing.

    The single-process stepping stone toward [rml serve]: compile a
    grammar once, stream any number of documents through it, and turn
    {e every} per-document failure — syntax errors, resource trips,
    truncated or failing reads, even engine bugs — into a structured
    result record instead of a process death. One document can never
    take the batch down: the worst a hostile document gets is its own
    [internal] record from the last-resort backstop.

    Two robustness mechanisms frame each document:

    {b Budgets and deadlines.} Every document runs under its own
    {!Rats_runtime.Limits.t} snapshot plus an optional monotonic
    deadline. Deadlines reuse the [--timeout] fuel-slice discipline:
    the parse runs under a bounded fuel slice that doubles while the
    clock allows, so a stuck parse is abandoned at a deterministic
    grammar-level point, signal-free.

    {b The degradation ladder.} A document that trips the fuel, depth
    or memory budget is retried one rung down: {e recognizer mode},
    the same grammar with every production kind erased to [Void].
    Kinds only shape semantic values, so the verdict on any document is
    unchanged — but every memo slot becomes value-free (PR 6's [vmap]),
    and the value-aware {!Rats_runtime.Limits.chunk_cost} then charges
    each memoized position markedly less. The same memo budget covers
    roughly twice the input before degrading, which attacks the
    canonical reason a budgeted parse ran out of fuel in the first
    place: memo degradation re-runs invocations. The record says which
    rung answered; only when the bottom rung also trips does the
    document hard-fail. Syntax errors and input-cap trips never
    descend: they are deterministic, a cheaper rerun cannot change
    them. *)

open Rats_support
open Rats_peg
open Rats_runtime

(** Where documents come from. *)
type source =
  | Manifest of string
      (** a file listing one document path per line; blank lines and
          [#] comments are skipped *)
  | Channel of { ic : in_channel; sep : char }
      (** delimited documents streamed from a channel (NUL or newline
          separated); never slurped — per-document buffering is bounded
          by the input-byte cap *)
  | Docs of (string * string) list  (** in-memory [(name, contents)] *)

type rung = Full | Recognizer

val rung_name : rung -> string

val recognizer_erase : Grammar.t -> Grammar.t option
(** The same grammar with every production's kind erased to [Void] —
    the recognizer rung of the degradation ladder, also what [rml
    parse --recognize] runs. Kinds only shape semantic values, so
    verdicts, consumed bytes and expected sets are unchanged; every
    memo slot becomes value-free and, under [Config.lean_values], the
    whole parse runs on the allocation-free lean matchers. [None] only
    if the rebuilt grammar fails well-formedness, which a composed
    grammar cannot. *)

type fail_class =
  | Syntax  (** the document does not match the grammar *)
  | Resource of string
      (** a budget ran out; carries the budget name ([fuel], [depth],
          [memory], [input]) or ["deadline"] *)
  | Io  (** the document could not be read (missing file, injected or
            real I/O failure) *)
  | Internal
      (** the backstop: an exception escaped the engine — a bug, but a
          contained one *)

type record = {
  r_index : int;
  r_name : string;
  r_bytes : int;  (** bytes delivered to the parser; [-1] when unread *)
  r_ok : bool;
  r_rung : rung;  (** the rung that answered *)
  r_retried : bool;  (** the ladder descended at least once *)
  r_fail : fail_class option;  (** [None] iff [r_ok] *)
  r_which : string option;  (** budget name for [Resource] failures *)
  r_position : int;  (** farthest-failure offset; [-1] when n/a *)
  r_message : string;  (** rendered error; [""] when ok *)
  r_ms : float;  (** wall time for the document, retries included *)
  r_memo_degraded : int;
      (** summed {!Stats.t.memo_degraded} across every engine run this
          document triggered (slice reruns and ladder retries included) *)
  r_fuel_used : int;  (** summed {!Stats.t.fuel_used}, same scope *)
}

type summary = {
  s_docs : int;
  s_ok : int;
  s_failed : int;
  s_degraded : int;  (** documents the ladder descended for *)
  s_rung_full : int;  (** documents answered on the full rung *)
  s_rung_recognizer : int;
  s_syntax : int;
  s_resource : int;
  s_io : int;
  s_internal : int;
  s_p50_ms : float;
  s_p99_ms : float;
  s_total_ms : float;
  s_memo_degraded : int;  (** summed over all records *)
  s_cold_fallbacks : int;
      (** {!Rats.Session} cold-parse fallbacks. The one-shot runner
          parses each document cold, so this is [0] today; the field
          keeps the summary schema aligned with session-backed serving
          so the trajectory can watch it. *)
}

type report = { records : record list; summary : summary }

val run :
  ?config:Config.t ->
  ?limits:Limits.t ->
  ?start:string ->
  ?deadline_ns:int ->
  ?faults:Faults.t ->
  ?now_ns:(unit -> int) ->
  ?metrics:Metrics.t ->
  ?spans:Profile.Spans.t ->
  ?on_record:(record -> unit) ->
  Grammar.t ->
  source ->
  (report, Diagnostic.t list) result
(** [run g src] compiles [g] once (default config
    {!Config.optimized}; [limits] overrides its budgets, as in
    {!Rats.parser_of}) and parses every document of [src] under
    per-document isolation.

    [deadline_ns] arms a monotonic per-document deadline; [now_ns]
    overrides the clock (default {!Profile.now_ns}) — tests inject a
    synthetic clock to make records, including [r_ms], fully
    deterministic. [faults] applies a {!Faults.t} plan: read faults in
    the document read path, fuel/memo caps folded into that document's
    limits (so the ordinary govern brackets trip them), clock skew
    added to every deadline reading after the one that armed it.

    [metrics] opts the run into pipeline telemetry: per-document
    latency (µs), fuel, document-byte and estimated memo-byte
    histograms, rung / fail-class / retry counters
    ([rml_batch_docs_total] by status, [rml_batch_fail_total] by
    class, [rml_batch_rung_total], [rml_batch_retries_total]), and
    GC + memo-arena occupancy gauges, all registered in the given
    {!Rats_runtime.Metrics.t}. Recording is derived entirely from the
    finished record and run-scoped accumulators — it adds {e no} clock
    reads, so the JSONL stream is unchanged (byte-identical under a
    synthetic [now_ns]). When absent, the record path is never
    entered: the PR 5 zero-cost-when-off contract at pipeline level.

    [spans] opts the run into a batch-level chrome trace
    ({!Rats_runtime.Profile.Spans}): one span per grammar compile
    (including ladder-rung recompiles), per engine attempt and per
    document, plus an instant marker per injected-fault plan. Spans
    take their own clock readings, so under a synthetic [now_ns] they
    shift subsequent [r_ms] values; with the real monotonic clock
    behavior is unchanged.

    [on_record] fires as each record is produced, before the next
    document is read — the JSONL streaming hook.

    The only error is a grammar that fails to compile; after that
    point every failure is a record. Never raises. *)

val exit_code : report -> int
(** Extends the PR 3 contract to aggregates, worst class wins:
    [5] if any document hit the internal backstop, else [4] if any
    tripped a resource budget (deadline and input cap included), else
    [3] if any failed to parse or read, else [0]. *)

(** {1 JSON rendering} *)

val jsonl_of_record : record -> string
(** One JSON object, no trailing newline. *)

val jsonl_of_summary : summary -> string
(** The final line: same shape, tagged ["summary":true]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable one-liner for stderr. *)
