open Rats_peg
open Rats_runtime

let voidify g =
  Grammar.map
    (fun (p : Production.t) ->
      Production.with_attrs p { p.Production.attrs with Attr.kind = Attr.Void })
    g

let tile unit target =
  let b = Buffer.create (target + String.length unit) in
  while Buffer.length b < target do
    Buffer.add_string b unit
  done;
  Buffer.contents b

let bytes_per_parse ?(warmups = 2) ?(runs = 8) eng input =
  for _ = 1 to warmups do
    match (Engine.run_input eng input).Engine.result with
    | Ok _ -> ()
    | Error e ->
        failwith ("Alloc_probe: probe parse failed: " ^ Parse_error.message e)
  done;
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to runs do
    ignore (Engine.run_input eng input)
  done;
  let a1 = Gc.allocated_bytes () in
  (a1 -. a0) /. float_of_int runs

type rung = { r_name : string; r_grammar : Grammar.t; r_unit : string }

(* One construct per rung, in the position real grammars use it. Every
   grammar accepts any tiling of [r_unit]; kinds are what the un-erased
   grammar would use (Text for captures, Generic for nodes), so
   voidification exercises the same erasure the batch ladder performs. *)
let ladder () =
  let open Builder in
  let digits = Charset.range '0' '9' in
  let g ?start prods = grammar ?start prods in
  let top body = prod ~public:true "S" (star body) in
  [
    { r_name = "charclass"; r_unit = "7;";
      r_grammar = g [ top (cls digits @: c ';') ] };
    { r_name = "range-byte"; r_unit = "7;";
      (* a Plain production whose body yields the matched byte: the
         range's Chr value is live pre-erasure *)
      r_grammar =
        g ~start:"S"
          [ top (e "Digit" @: c ';'); prod "Digit" (cls digits) ] };
    { r_name = "literal"; r_unit = "ab;";
      r_grammar = g [ top (s "ab" @: c ';') ] };
    { r_name = "token-capture"; r_unit = "123;";
      r_grammar =
        g ~start:"S"
          [ top (e "Num" @: c ';');
            prod ~kind:Attr.Text "Num" (tok (plus (cls digits))) ] };
    { r_name = "binding"; r_unit = "1;";
      r_grammar = g [ top (("d" |: cls digits) @: c ';') ] };
    { r_name = "binding-under-predicate"; r_unit = "1;";
      r_grammar =
        g [ top (amp ("d" |: cls digits) @: cls digits @: c ';') ] };
    { r_name = "not-predicate"; r_unit = "1;";
      r_grammar = g [ top (bang (c 'x') @: cls digits @: c ';') ] };
    { r_name = "seq-alt-star"; r_unit = "12+3;";
      r_grammar =
        g ~start:"S"
          [ top (e "Expr" @: c ';');
            prod "Expr"
              (plus (cls digits) @: star (one_of "+-" @: plus (cls digits)))
          ] };
    { r_name = "optional"; r_unit = "1.5;";
      r_grammar =
        g [ top (plus (cls digits) @: opt (c '.' @: plus (cls digits)) @: c ';') ] };
    { r_name = "node"; r_unit = "1;";
      r_grammar =
        g ~start:"S"
          [ top (e "Num" @: c ';');
            prod ~kind:Attr.Generic "Num" (node "Num" (plus (cls digits))) ]
    };
    { r_name = "memoized-ref"; r_unit = "1;";
      r_grammar =
        g ~start:"S"
          [ top (e "Val" @: c ';');
            prod ~memo:Attr.Memo_always "Val" (plus (cls digits)) ] };
    { r_name = "drop"; r_unit = "1;";
      r_grammar = g [ top (void (plus (cls digits)) @: c ';') ] };
  ]

let flat rows =
  match List.map snd rows with
  | [] -> true
  | b :: bs ->
      let mn = List.fold_left min b bs and mx = List.fold_left max b bs in
      mx <= (1.25 *. mn) +. 16384.

let measure_rung ?(config = Config.optimized) ?(optimize = fun g -> g)
    ?(sizes = [ 10_000; 40_000; 160_000 ]) rung =
  let g = optimize (voidify rung.r_grammar) in
  let eng = Engine.prepare_exn ~config g in
  List.map
    (fun size ->
      let corpus = tile rung.r_unit size in
      let bytes = bytes_per_parse eng (Rats_support.Input.of_string corpus) in
      (String.length corpus, bytes))
    sizes
