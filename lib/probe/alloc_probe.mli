(** Per-construct allocation bisection for lean (recognizer) mode.

    PR 7 proved both engines' core loops allocation-free on hand-built
    all-Void grammars; this probe closes the loop on {e voidified} real
    grammars by measuring steady-state [Gc.allocated_bytes] deltas —
    with warmed scratch pools — for a ladder of one-construct-at-a-time
    grammars. Each rung isolates one [Expr] form in the position real
    grammars use it (token captures, ranges yielding bytes, bindings
    under predicates, …), so a linear-in-input allocation pins the
    leaking construct directly.

    The test suite ([test/test_alloc.ml]) holds every rung — and the
    voidified real grammars — to the flatness bound on both backends;
    the E9 bench rows measure the same claim on the real grammars
    through [Batch.recognizer_erase] with timing attached. *)

open Rats_peg
open Rats_runtime

val voidify : Grammar.t -> Grammar.t
(** Erase every production's kind to [Attr.Void] — the batch runner's
    recognizer-rung kind-erasure. Kinds only shape semantic values, so
    verdicts, consumed bytes and expected sets are unchanged. *)

val tile : string -> int -> string
(** [tile unit target] repeats [unit] until at least [target] bytes. *)

val bytes_per_parse :
  ?warmups:int -> ?runs:int -> Engine.t -> Rats_support.Input.t -> float
(** Steady-state allocation of one parse: run [warmups] times to warm
    the engine-owned scratch pools (and fault on a parse error), then
    average the [Gc.allocated_bytes] delta over [runs] further parses.
    Parsing is deterministic, so the delta is exact, not sampled. *)

type rung = {
  r_name : string;  (** construct under test, e.g. ["token-capture"] *)
  r_grammar : Grammar.t;  (** minimal grammar exercising it *)
  r_unit : string;  (** input tile accepted by the grammar *)
}

val ladder : unit -> rung list
(** The construct ladder: charclasses, ranges yielding bytes, literals,
    token captures, seq/alt/star, bindings (plain and under
    predicates), node construction, optionals, memoized references.
    Every rung's grammar accepts [tile r_unit n] for any [n]. *)

val flat : (int * float) list -> bool
(** [flat rows] holds when allocation is size-independent across the
    [(input_bytes, bytes_per_parse)] rows: max <= 1.25 * min + 16 KiB —
    the E9 recognizer-alloc bound. *)

val measure_rung :
  ?config:Config.t ->
  ?optimize:(Grammar.t -> Grammar.t) ->
  ?sizes:int list ->
  rung ->
  (int * float) list
(** Voidify the rung's grammar, optionally optimize it, prepare it
    under [config] (default {!Config.optimized}) and measure
    steady-state bytes/parse at each input size (default
    [10_000; 40_000; 160_000]). *)
