(** Recursive-descent parser for the module language.

    The concrete syntax (flavoured after Rats!; see the README for the
    full reference):

    {v
    module lang.Calc(Space);
    import lang.Digits as D;
    modify lang.Base(Space);

    public generic Sum = <Plus> Prod void:'+' Sum / <Single> Prod;
    Factor += before <Number> <Paren> '(' Sum ')';
    Factor -= <Obsolete>;
    Number := $( [0-9]+ );
    v}

    A file may hold several modules. Reserved words ([module], [import],
    [modify], [instantiate], [as], attribute keywords, [before], [after],
    [first]) cannot name productions.

    The parser never raises on any input: errors — including expression
    nesting beyond 512 levels, which would otherwise exhaust the OCaml
    stack on hostile input — come back as [Error diagnostic]. *)

open Rats_support
open Rats_peg

val parse_modules : Source.t -> (Rats_modules.Ast.t list, Diagnostic.t) result
(** Parse a whole source; requires at least one module. *)

val parse_module : Source.t -> (Rats_modules.Ast.t, Diagnostic.t) result
(** Requires exactly one module. *)

val parse_modules_string :
  ?name:string -> string -> (Rats_modules.Ast.t list, Diagnostic.t) result

val parse_expr : string -> (Expr.t, Diagnostic.t) result
(** Parse a standalone parsing expression (for tests and the REPL-ish
    bits of the CLI). *)

val reserved : string list
(** Words that cannot be used as production names. *)
