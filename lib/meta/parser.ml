open Rats_support
open Rats_peg
module Ast = Rats_modules.Ast

let reserved =
  [
    "module"; "import"; "modify"; "instantiate"; "as"; "public"; "private";
    "transient"; "memoized"; "inline"; "noinline"; "withLocation"; "void";
    "String"; "generic"; "Value"; "before"; "after"; "first";
  ]

let attr_words =
  [
    "public"; "private"; "transient"; "memoized"; "inline"; "noinline";
    "withLocation"; "void"; "String"; "generic"; "Value";
  ]

type p = {
  toks : Token.t array;
  mutable pos : int;
  mutable depth : int;  (* expression-nesting level, see [max_nesting] *)
  src : Source.t;
}

(* Nesting cap for expressions. The parser is recursive descent, so a
   pathological input like 100k open parens would otherwise convert
   directly into OCaml stack depth and a [Stack_overflow] crash; at 512
   we return a diagnostic instead, long before any realistic grammar is
   affected. *)
let max_nesting = 512

exception Parse_fail of Diagnostic.t

let fail p fmt =
  let tok = p.toks.(p.pos) in
  Format.kasprintf
    (fun m -> raise (Parse_fail (Diagnostic.error ~span:tok.Token.span m)))
    fmt

let peek p = p.toks.(p.pos).Token.kind
let peek2 p =
  if p.pos + 1 < Array.length p.toks then p.toks.(p.pos + 1).Token.kind
  else Token.Eof

let here p = p.toks.(p.pos).Token.span
let advance p = p.pos <- min (p.pos + 1) (Array.length p.toks - 1)

let expect p kind =
  if peek p = kind then advance p
  else fail p "expected %s, found %s" (Token.describe kind)
      (Token.describe (peek p))

let ident p =
  match peek p with
  | Token.Ident s ->
      advance p;
      s
  | k -> fail p "expected identifier, found %s" (Token.describe k)

let ident_is p word = match peek p with Token.Ident s -> s = word | _ -> false

let eat_ident p word =
  if ident_is p word then (advance p; true) else false

let production_name p =
  let loc = here p in
  let n = ident p in
  if List.mem n reserved then
    raise
      (Parse_fail
         (Diagnostic.errorf ~span:loc "%S is a reserved word" n))
  else n

(* --- expressions --------------------------------------------------------- *)

let starts_item = function
  | Token.Ident _ | Token.String_lit _ | Token.Char_lit _ | Token.Class_lit _
  | Token.Dot | Token.Lparen | Token.Amp | Token.Bang | Token.Dollar
  | Token.At | Token.Percent _ ->
      true
  | _ -> false

let rec parse_choice p =
  if p.depth >= max_nesting then
    fail p "expression nesting exceeds %d levels" max_nesting;
  p.depth <- p.depth + 1;
  let e = parse_choice_body p in
  p.depth <- p.depth - 1;
  e

and parse_choice_body p =
  let loc = here p in
  let alt () =
    let label =
      if peek p = Token.Langle then (
        advance p;
        let l = ident p in
        expect p Token.Rangle;
        Some l)
      else None
    in
    { Expr.label; body = parse_sequence p }
  in
  let first = alt () in
  let rec more acc =
    if peek p = Token.Slash then (
      advance p;
      more (alt () :: acc))
    else List.rev acc
  in
  Expr.alt_labeled ~loc (more [ first ])

and parse_sequence p =
  let loc = here p in
  let rec go acc =
    if starts_item (peek p) then go (parse_item p :: acc) else List.rev acc
  in
  Expr.seq ~loc (go [])

and parse_item p =
  let loc = here p in
  match peek p with
  | Token.Amp ->
      advance p;
      Expr.and_ ~loc (parse_suffix p)
  | Token.Bang ->
      advance p;
      Expr.not_ ~loc (parse_suffix p)
  | Token.Ident name
    when peek2 p = Token.Colon && not (String.contains name '.') ->
      (* Bind labels are field names: simple identifiers only. A dotted
         name followed by ':' is a malformed reference, caught below. *)
      advance p;
      advance p;
      let body = parse_suffix p in
      if name = "void" then Expr.drop ~loc body else Expr.bind ~loc name body
  | _ -> parse_suffix p

and parse_suffix p =
  let e = parse_primary p in
  let rec go e =
    match peek p with
    | Token.Star ->
        advance p;
        go (Expr.star ~loc:e.Expr.loc e)
    | Token.Plus ->
        advance p;
        go (Expr.plus ~loc:e.Expr.loc e)
    | Token.Question ->
        advance p;
        go (Expr.opt ~loc:e.Expr.loc e)
    | _ -> e
  in
  go e

and parse_primary p =
  let loc = here p in
  match peek p with
  | Token.Lparen ->
      advance p;
      if peek p = Token.Rparen then (
        advance p;
        Expr.mk ~loc Expr.Empty)
      else
        let e = parse_choice p in
        expect p Token.Rparen;
        e
  | Token.String_lit s ->
      advance p;
      Expr.str ~loc s
  | Token.Char_lit c ->
      advance p;
      Expr.chr ~loc c
  | Token.Class_lit set ->
      advance p;
      Expr.cls ~loc set
  | Token.Dot ->
      advance p;
      Expr.any ~loc ()
  | Token.Dollar ->
      advance p;
      expect p Token.Lparen;
      let e = parse_choice p in
      expect p Token.Rparen;
      Expr.token ~loc e
  | Token.At ->
      advance p;
      let name = ident p in
      expect p Token.Lparen;
      let e = parse_choice p in
      expect p Token.Rparen;
      Expr.node ~loc name e
  | Token.Percent op -> (
      advance p;
      expect p Token.Lparen;
      match op with
      | "fail" -> (
          match peek p with
          | Token.String_lit msg ->
              advance p;
              expect p Token.Rparen;
              Expr.fail ~loc msg
          | k -> fail p "expected string in %%fail, found %s" (Token.describe k))
      | "splice" ->
          let e = parse_choice p in
          expect p Token.Rparen;
          Expr.splice ~loc e
      | "record" | "member" | "absent" ->
          let table = ident p in
          expect p Token.Comma;
          let e = parse_choice p in
          expect p Token.Rparen;
          if op = "record" then Expr.record ~loc table e
          else Expr.member ~loc table (op = "member") e
      | op -> fail p "unknown operator %%%s" op)
  | Token.Ident name ->
      advance p;
      Expr.ref_ ~loc name
  | k -> fail p "expected an expression, found %s" (Token.describe k)

(* --- attributes ----------------------------------------------------------- *)

let parse_attrs p =
  let any = ref false in
  let attrs = ref Attr.default in
  let set f = attrs := f !attrs; any := true in
  let defines_next p =
    match peek2 p with
    | Token.Eq | Token.Colon_eq | Token.Plus_eq | Token.Minus_eq -> true
    | _ -> false
  in
  let rec go () =
    match peek p with
    | Token.Ident w when List.mem w attr_words && not (defines_next p) ->
        (* An attribute word directly followed by a definition operator is
           someone trying to name a production after a keyword; leave it
           for production_name to reject with a clear message. *)
        advance p;
        (match w with
        | "public" -> set (fun a -> { a with Attr.visibility = Attr.Public })
        | "private" -> set (fun a -> { a with Attr.visibility = Attr.Private })
        | "transient" -> set (fun a -> { a with Attr.memo = Attr.Memo_never })
        | "memoized" -> set (fun a -> { a with Attr.memo = Attr.Memo_always })
        | "inline" -> set (fun a -> { a with Attr.inline = Attr.Inline_always })
        | "noinline" -> set (fun a -> { a with Attr.inline = Attr.Inline_never })
        | "withLocation" -> set (fun a -> { a with Attr.with_location = true })
        | "void" -> set (fun a -> { a with Attr.kind = Attr.Void })
        | "String" -> set (fun a -> { a with Attr.kind = Attr.Text })
        | "generic" -> set (fun a -> { a with Attr.kind = Attr.Generic })
        | "Value" -> set (fun a -> { a with Attr.kind = Attr.Plain })
        | _ -> assert false);
        go ()
    | _ -> ()
  in
  go ();
  (!attrs, !any)

(* --- items ---------------------------------------------------------------- *)

let parse_label p =
  expect p Token.Langle;
  let l = ident p in
  expect p Token.Rangle;
  l

let parse_placement p =
  if ident_is p "before" then (
    advance p;
    Ast.Before (parse_label p))
  else if ident_is p "after" then (
    advance p;
    Ast.After (parse_label p))
  else if ident_is p "first" then (
    advance p;
    Ast.Prepend)
  else Ast.Append

let parse_item_decl p =
  let loc = here p in
  let attrs, has_attrs = parse_attrs p in
  let name = production_name p in
  match peek p with
  | Token.Eq ->
      advance p;
      let body = parse_choice p in
      expect p Token.Semi;
      Ast.define ~attrs ~loc name body
  | Token.Colon_eq ->
      advance p;
      let body = parse_choice p in
      expect p Token.Semi;
      Ast.override ?attrs:(if has_attrs then Some attrs else None) ~loc name body
  | Token.Plus_eq ->
      if has_attrs then fail p "attributes are not allowed on '+='";
      advance p;
      let placement = parse_placement p in
      let body = parse_choice p in
      let alts =
        match body.Expr.it with
        | Expr.Alt alts -> alts
        | _ -> [ { Expr.label = None; body } ]
      in
      expect p Token.Semi;
      Ast.add ~placement ~loc name alts
  | Token.Minus_eq ->
      if has_attrs then fail p "attributes are not allowed on '-='";
      advance p;
      let rec labels acc =
        let l = parse_label p in
        if peek p = Token.Comma then (
          advance p;
          labels (l :: acc))
        else List.rev (l :: acc)
      in
      let ls = labels [] in
      expect p Token.Semi;
      Ast.remove ~loc name ls
  | k ->
      fail p "expected '=', ':=', '+=' or '-=' after production name, found %s"
        (Token.describe k)

(* --- modules --------------------------------------------------------------- *)

let parse_dep p =
  let loc = here p in
  let kind =
    if eat_ident p "import" || eat_ident p "instantiate" then Ast.Import
    else if eat_ident p "modify" then Ast.Modify
    else assert false
  in
  let target = ident p in
  let args =
    if peek p = Token.Lparen then (
      advance p;
      let rec go acc =
        let a = ident p in
        if peek p = Token.Comma then (
          advance p;
          go (a :: acc))
        else List.rev (a :: acc)
      in
      let args = go [] in
      expect p Token.Rparen;
      args)
    else []
  in
  let alias = if eat_ident p "as" then Some (ident p) else None in
  expect p Token.Semi;
  match kind with
  | Ast.Import -> Ast.import ?alias ~args ~loc target
  | Ast.Modify -> Ast.modify ?alias ~args ~loc target

let parse_one_module p =
  let loc = here p in
  if not (eat_ident p "module") then
    fail p "expected 'module', found %s" (Token.describe (peek p));
  let name = ident p in
  let params =
    if peek p = Token.Lparen then (
      advance p;
      let rec go acc =
        let a = ident p in
        if peek p = Token.Comma then (
          advance p;
          go (a :: acc))
        else List.rev (a :: acc)
      in
      let ps = go [] in
      expect p Token.Rparen;
      ps)
    else []
  in
  expect p Token.Semi;
  let rec deps acc =
    if ident_is p "import" || ident_is p "modify" || ident_is p "instantiate"
    then deps (parse_dep p :: acc)
    else List.rev acc
  in
  let deps = deps [] in
  let rec items acc =
    if peek p = Token.Eof || ident_is p "module" then List.rev acc
    else items (parse_item_decl p :: acc)
  in
  let items = items [] in
  Ast.v ~params ~deps ~loc ~source:p.src name items

let with_tokens src f =
  match Lexer.tokenize src with
  | Error d -> Error d
  | Ok toks -> (
      let p = { toks; pos = 0; depth = 0; src } in
      match f p with v -> Ok v | exception Parse_fail d -> Error d)

let parse_modules src =
  with_tokens src (fun p ->
      let rec go acc =
        if peek p = Token.Eof then List.rev acc
        else go (parse_one_module p :: acc)
      in
      match go [] with
      | [] -> fail p "expected at least one module"
      | ms -> ms)

let parse_module src =
  match parse_modules src with
  | Error d -> Error d
  | Ok [ m ] -> Ok m
  | Ok ms ->
      Error
        (Diagnostic.errorf "expected exactly one module, found %d"
           (List.length ms))

let parse_modules_string ?name text =
  parse_modules (Source.of_string ?name text)

let parse_expr text =
  with_tokens (Source.of_string ~name:"<expr>" text) (fun p ->
      let e = parse_choice p in
      if peek p <> Token.Eof then
        fail p "trailing input after expression: %s"
          (Token.describe (peek p));
      e)
