open Rats_peg
module Config = Rats_runtime.Config

let function_name i name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf (Printf.sprintf "p_%d_" i);
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* --- code templates ----------------------------------------------------- *)

type ctx = {
  analysis : Analysis.t;
  cfg : Config.t;
  fname : string -> string;  (* production name -> OCaml function name *)
  fresh : int ref;
  nslots : int;
}

let fresh ctx base =
  incr ctx.fresh;
  Printf.sprintf "__%s%d" base !(ctx.fresh)

let class_pattern set =
  let ranges = Charset.to_ranges set in
  if ranges = [] then "'\\000' when false"
  else
    String.concat " | "
      (List.map
         (fun (lo, hi) ->
           if lo = hi then Printf.sprintf "%C" lo
           else Printf.sprintf "%C .. %C" lo hi)
         ranges)

let truncate_desc s =
  if String.length s > 40 then String.sub s 0 37 ^ "..." else s

(* Expected-set description of a predicate body; the same formula as the
   interpretive engines so reports agree matcher for matcher. *)
let pred_body_desc (x : Expr.t) =
  match x.it with
  | Expr.Chr c -> Pretty.quote_char c
  | Expr.Cls set -> Charset.to_string set
  | Expr.Any -> "any character"
  | _ -> truncate_desc (Pretty.expr_to_string x)

let label_code = function
  | None -> "None"
  | Some l -> Printf.sprintf "(Some %S)" l

(* [gen ctx e pos] is an OCaml expression (as text) of type [int]; free
   variables [st] and the position variable [pos]. On success it leaves
   the semantic value in [st.value]. *)
let rec gen ctx (e : Expr.t) pos =
  match e.it with
  | Expr.Empty -> Printf.sprintf "(st.value <- Value.Unit; %s)" pos
  | Expr.Fail msg -> Printf.sprintf "(__fail st %s %S)" pos msg
  | Expr.Any ->
      Printf.sprintf
        "(if %s < st.len then (st.value <- Value.Chr (String.unsafe_get \
         st.input %s); %s + 1) else __fail st %s \"any character\")"
        pos pos pos pos
  | Expr.Chr c ->
      Printf.sprintf
        "(if %s < st.len && String.unsafe_get st.input %s = %C then (st.value \
         <- Value.Unit; %s + 1) else __fail st %s %S)"
        pos pos c pos pos (Pretty.quote_char c)
  | Expr.Str s ->
      Printf.sprintf "(__lit st %s %S %S)" pos s (Pretty.quote_string s)
  | Expr.Cls set ->
      Printf.sprintf
        "(if %s < st.len && (match String.unsafe_get st.input %s with %s -> \
         true | _ -> false) then (st.value <- Value.Chr (String.unsafe_get \
         st.input %s); %s + 1) else __fail st %s %S)"
        pos pos (class_pattern set) pos pos pos (Charset.to_string set)
  | Expr.Ref n -> Printf.sprintf "(%s st %s)" (ctx.fname n) pos
  | Expr.Seq es -> gen_seq ctx ~tail:false es pos
  | Expr.Alt alts -> gen_alt ctx ~tail:false alts pos
  | Expr.Star x -> gen_star ctx x pos
  | Expr.Plus x when Analysis.expr_yields_unit ctx.analysis x ->
      let p = fresh ctx "p" in
      let p2 = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else let %s = %s in (st.value <- \
         Value.Unit; %s))"
        p (gen ctx x pos) p p2 (gen_star ctx x p) p2
  | Expr.Plus x ->
      let p = fresh ctx "p" in
      let first = fresh ctx "first" in
      let p2 = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else let %s = st.value in let %s = \
         %s in ((match st.value with Value.List rest -> st.value <- \
         Value.List (%s :: rest) | _ -> ()); %s))"
        p (gen ctx x pos) p first p2
        (gen_star ctx x p)
        first p2
  | Expr.Opt x ->
      let t = fresh ctx "t" in
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = st.tables in let %s = %s in if %s >= 0 then %s else \
         (__restore st %s; st.value <- Value.Unit; %s))"
        t p (gen ctx x pos) p p t pos
  | Expr.And x ->
      let t = fresh ctx "t" in
      let p = fresh ctx "p" in
      let desc = "&" ^ pred_body_desc x in
      Printf.sprintf
        "(let %s = st.tables in st.quiet <- st.quiet + 1; let %s = %s in \
         st.quiet <- st.quiet - 1; __restore st %s; if %s < 0 then __fail st \
         %s %S else (st.value <- Value.Unit; %s))"
        t p (gen ctx x pos) t p pos desc pos
  | Expr.Not x ->
      let t = fresh ctx "t" in
      let p = fresh ctx "p" in
      let desc = "not " ^ truncate_desc (Pretty.expr_to_string x) in
      Printf.sprintf
        "(let %s = st.tables in st.quiet <- st.quiet + 1; let %s = %s in \
         st.quiet <- st.quiet - 1; __restore st %s; if %s >= 0 then __fail st \
         %s %S else (st.value <- Value.Unit; %s))"
        t p (gen ctx x pos) t p pos desc pos
  | Expr.Bind (l, x) ->
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else (st.value <- Value.seq [ \
         (Some %S, st.value) ]; %s))"
        p (gen ctx x pos) p l p
  | Expr.Token x ->
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else (st.value <- Value.Str \
         (String.sub st.input %s (%s - %s)); %s))"
        p (gen ctx x pos) p pos p pos p
  | Expr.Node (name, x) ->
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else (st.value <- Value.node \
         ~span:(Span.v ~start_:%s ~stop:%s) %S (Value.components st.value); \
         %s))"
        p (gen ctx x pos) p pos p name p
  | Expr.Drop x ->
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else (st.value <- Value.Unit; %s))"
        p (gen ctx x pos) p p
  | Expr.Splice x ->
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else (st.value <- Value.seq \
         (__tail_parts st.value); %s))"
        p (gen_tail ctx x pos) p p
  | Expr.Record (table, x) ->
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else (__record st %S %s %s; %s))"
        p (gen ctx x pos) p table pos p p
  | Expr.Member (table, positive, x) ->
      let p = fresh ctx "p" in
      let desc =
        if positive then "a name recorded in " ^ table
        else "a name not recorded in " ^ table
      in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else if __member st %S %s %s = %b \
         then %s else __fail st %s %S)"
        p (gen ctx x pos) p table pos p positive p pos desc

and gen_seq ctx ~tail es pos =
  let buf = Buffer.create 256 in
  let acc = fresh ctx "a" in
  Buffer.add_string buf (Printf.sprintf "(let %s = [] in " acc);
  let final_pos =
    List.fold_left
      (fun cur (e : Expr.t) ->
        let splice, label, inner =
          match e.it with
          | Expr.Splice inner -> (true, None, inner)
          | Expr.Bind (l, inner) -> (false, Some l, inner)
          | _ -> (false, None, e)
        in
        let p = fresh ctx "p" in
        let code =
          if splice then gen_tail ctx inner cur else gen ctx inner cur
        in
        Buffer.add_string buf
          (Printf.sprintf "let %s = %s in if %s < 0 then -1 else " p code p);
        if splice then
          Buffer.add_string buf
            (Printf.sprintf
               "let %s = List.rev_append (__tail_parts st.value) %s in " acc
               acc)
        else
          Buffer.add_string buf
            (Printf.sprintf "let %s = __keep %s st.value %s in " acc
               (label_code label) acc);
        p)
      pos es
  in
  let builder = if tail then "__tailv" else "__seqv" in
  Buffer.add_string buf
    (Printf.sprintf "(st.value <- %s %s %s %s; %s))" builder pos final_pos acc
       final_pos);
  Buffer.contents buf

and gen_alt ctx ~tail alts pos =
  let t = fresh ctx "t" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "(let %s = st.tables in " t);
  let n = List.length alts in
  List.iteri
    (fun i (a : Expr.alt) ->
      let body_code =
        if tail then gen_tail ctx a.body pos else gen ctx a.body pos
      in
      let guarded =
        if not ctx.cfg.Config.dispatch then body_code
        else
          let first, eps = Analysis.expr_first ctx.analysis a.body in
          if eps then body_code
          else
            Printf.sprintf
              "(if %s < st.len && (match String.unsafe_get st.input %s with \
               %s -> true | _ -> false) then %s else __fail st %s %S)"
              pos pos (class_pattern first) body_code pos
              (Charset.to_string first)
      in
      let r = fresh ctx "r" in
      Buffer.add_string buf
        (Printf.sprintf
           "let %s = %s in if %s >= 0 then %s else (__restore st %s; " r
           guarded r r t);
      if i = n - 1 then Buffer.add_string buf "-1"
      else Buffer.add_string buf "st.stats_backtracks <- st.stats_backtracks + 1; ")
    alts;
  Buffer.add_string buf (String.concat "" (List.init n (fun _ -> ")")));
  Buffer.add_string buf ")";
  Buffer.contents buf

and gen_star ctx x pos =
  let loop = fresh ctx "loop" in
  let t = fresh ctx "t" in
  let p = fresh ctx "p" in
  if Analysis.expr_yields_unit ctx.analysis x then
    (* Void body: no value collection, the repetition yields Unit. *)
    Printf.sprintf
      "(let rec %s pos = let %s = st.tables in let %s = %s in if %s < 0 then \
       (__restore st %s; st.value <- Value.Unit; pos) else if %s = pos then \
       (st.value <- Value.Unit; pos) else %s %s in %s %s)"
      loop t p (gen ctx x "pos") p t p loop p loop pos
  else
    Printf.sprintf
      "(let rec %s pos acc = let %s = st.tables in let %s = %s in if %s < 0 \
       then (__restore st %s; st.value <- Value.List (List.rev acc); pos) else \
       if %s = pos then (st.value <- Value.List (List.rev acc); pos) else %s \
       %s (st.value :: acc) in %s %s [])"
      loop t p (gen ctx x "pos") p t p loop p loop pos

and gen_tail ctx (e : Expr.t) pos =
  match e.it with
  | Expr.Alt alts -> gen_alt ctx ~tail:true alts pos
  | Expr.Seq es -> gen_seq ctx ~tail:true es pos
  | Expr.Empty -> Printf.sprintf "(st.value <- __tailv %s %s []; %s)" pos pos pos
  | _ ->
      let label, inner =
        match e.it with
        | Expr.Bind (l, inner) -> (Some l, inner)
        | _ -> (None, e)
      in
      let p = fresh ctx "p" in
      Printf.sprintf
        "(let %s = %s in if %s < 0 then -1 else (st.value <- __tailv %s %s \
         (__keep %s st.value []); %s))"
        p (gen ctx inner pos) p pos p (label_code label) p

(* --- production wrappers -------------------------------------------------- *)

let shape_code (p : Production.t) ~pos0 ~pos1 =
  match p.attrs.Attr.kind with
  | Attr.Plain -> ""
  | Attr.Generic ->
      Printf.sprintf
        "st.value <- Value.node ~span:(Span.v ~start_:%s ~stop:%s) %S \
         (Value.components st.value); "
        pos0 pos1 p.name
  | Attr.Text ->
      Printf.sprintf
        "st.value <- Value.Str (String.sub st.input %s (%s - %s)); " pos0 pos1
        pos0
  | Attr.Void -> "st.value <- Value.Unit; "

let gen_production ctx ~stateful slot (p : Production.t) =
  ctx.fresh := 0;
  let body = gen ctx p.expr "pos" in
  let run =
    Printf.sprintf
      "(let __b = %s in if __b < 0 then __b else (%s__b))" body
      (shape_code p ~pos0:"pos" ~pos1:"__b")
  in
  let header = Printf.sprintf "%s st pos =" (ctx.fname p.name) in
  (* Entries of stateful productions are stamped with the state version
     they were computed at; see the engine for the soundness argument. *)
  let fresh_guard var =
    if stateful then Printf.sprintf "%s = st.version" var else "true"
  in
  match (ctx.cfg.Config.memo, slot) with
  | Config.No_memo, _ | _, -1 -> Printf.sprintf "%s\n  %s\n" header run
  | Config.Hashtable, slot ->
      Printf.sprintf
        "%s\n\
        \  let key = (pos * %d) + %d in\n\
        \  (match Hashtbl.find_opt st.table_memo key with\n\
        \   | Some (p', v, __ver) when %s -> (if p' >= 0 then st.value <- \
         v); p'\n\
        \   | _ ->\n\
        \     let __ver0 = st.version in\n\
        \     let p' = %s in\n\
        \     Hashtbl.replace st.table_memo key (p', (if p' >= 0 then \
         st.value else Value.Unit), __ver0);\n\
        \     p')\n"
        header ctx.nslots slot (fresh_guard "__ver") run
  | Config.Chunked, slot ->
      Printf.sprintf
        "%s\n\
        \  let chunk =\n\
        \    match st.chunks.(pos) with\n\
        \    | Some c -> c\n\
        \    | None ->\n\
        \      let c = { res = Array.make %d 0; vals = Array.make %d \
         Value.Unit; vers = Array.make %d 0 } in\n\
        \      st.chunks.(pos) <- Some c; c\n\
        \  in\n\
        \  let r = chunk.res.(%d) in\n\
        \  if r <> 0 && %s then\n\
        \    (if r > 0 then (st.value <- chunk.vals.(%d); r - 1) else -1)\n\
        \  else begin\n\
        \    let __ver0 = st.version in\n\
        \    let p' = %s in\n\
        \    (if p' >= 0 then (chunk.res.(%d) <- p' + 1; chunk.vals.(%d) <- \
         st.value) else chunk.res.(%d) <- (-1));\n\
        \    chunk.vers.(%d) <- __ver0;\n\
        \    p'\n\
        \  end\n"
        header ctx.nslots ctx.nslots ctx.nslots slot
        (fresh_guard (Printf.sprintf "chunk.vers.(%d)" slot))
        slot run slot slot slot slot

(* --- whole module --------------------------------------------------------- *)

let prelude =
  {|open Rats_peg
open Rats_support
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type chunk = { res : int array; vals : Value.t array; vers : int array }

type st = {
  input : string;
  len : int;
  mutable value : Value.t;
  mutable farthest : int;
  mutable expected : string list;
  mutable quiet : int;
  mutable tables : SSet.t SMap.t;
  mutable version : int;
  mutable stats_backtracks : int;
  table_memo : (int, int * Value.t * int) Hashtbl.t;
  chunks : chunk option array;
}

let __restore st saved =
  if st.tables != saved then begin
    st.tables <- saved;
    st.version <- st.version + 1
  end

(* Predicate bodies run with [st.quiet > 0]: their internal failures
   never reach the farthest-failure trace, mirroring the interpretive
   engines. The predicate itself records at its entry position. *)
let __fail st pos desc =
  (if st.quiet = 0 then
     if pos > st.farthest then begin st.farthest <- pos; st.expected <- [ desc ] end
     else if pos = st.farthest then st.expected <- desc :: st.expected);
  -1

let __lit st pos s desc =
  let n = String.length s in
  let rec go i =
    if i >= n then begin st.value <- Value.Unit; pos + n end
    else if pos + i < st.len
            && String.unsafe_get st.input (pos + i) = String.unsafe_get s i
    then go (i + 1)
    else __fail st (pos + i) desc
  in
  go 0

let __keep lbl v acc =
  match (lbl, v) with None, Value.Unit -> acc | _ -> (lbl, v) :: acc

let __seqv p0 p1 acc = Value.seq ~span:(Span.v ~start_:p0 ~stop:p1) (List.rev acc)
let __tailv p0 p1 acc = Value.node ~span:(Span.v ~start_:p0 ~stop:p1) "#tail" (List.rev acc)

let __tail_parts = function
  | Value.Node n when String.equal n.Value.name "#tail" -> n.Value.children
  | _ -> []

let __record st table pos p =
  let text = String.sub st.input pos (p - pos) in
  let set = match SMap.find_opt table st.tables with Some s -> s | None -> SSet.empty in
  st.tables <- SMap.add table (SSet.add text set) st.tables;
  st.version <- st.version + 1

let __member st table pos p =
  let text = String.sub st.input pos (p - pos) in
  match SMap.find_opt table st.tables with
  | Some s -> SSet.mem text s
  | None -> false
|}

let interface () =
  {|(* Generated by rats-ml; do not edit. *)

val start_production : string
(** The grammar's start symbol. *)

val parse :
  ?require_eof:bool -> string -> (Rats_peg.Value.t, string) result
(** Parse from the start production. With [require_eof] (default true)
    the whole input must be consumed. *)

val parse_from :
  string -> ?require_eof:bool -> string -> (Rats_peg.Value.t, string) result
(** Parse from a named production. *)
|}

let grammar_module ?(config = Config.optimized) ?header g =
  let analysis = Analysis.analyze g in
  match Analysis.check analysis with
  | _ :: _ as ds -> Error ds
  | [] ->
      let prods = Array.of_list (Grammar.productions g) in
      let names = Hashtbl.create 64 in
      Array.iteri
        (fun i (p : Production.t) ->
          Hashtbl.replace names p.name (function_name i p.name))
        prods;
      let fname n =
        match Hashtbl.find_opt names n with
        | Some f -> f
        | None ->
            raise
              (Rats_support.Diagnostic.Fail
                 (Rats_support.Diagnostic.errorf
                    "codegen: undefined production %S" n))
      in
      (* Slot assignment mirrors the engine. *)
      let next = ref 0 in
      let slots =
        Array.map
          (fun (p : Production.t) ->
            let memoizable =
              match config.Config.memo with
              | Config.No_memo -> false
              | Config.Hashtable | Config.Chunked -> (
                  match p.attrs.Attr.memo with
                  | Attr.Memo_always -> true
                  | Attr.Memo_never -> not config.Config.honor_transient
                  | Attr.Memo_auto -> true)
            in
            if memoizable then (
              let s = !next in
              incr next;
              s)
            else -1)
          prods
      in
      let ctx = { analysis; cfg = config; fname; fresh = ref 0; nslots = !next } in
      let buf = Buffer.create 8192 in
      (match header with
      | Some h -> Buffer.add_string buf (Printf.sprintf "(* %s *)\n" h)
      | None -> ());
      Buffer.add_string buf
        "(* Generated by rats-ml; do not edit. *)\n\
         [@@@warning \"-26-27-32-33-39\"]\n\n";
      Buffer.add_string buf prelude;
      Buffer.add_string buf "\nlet rec ";
      (try
         Array.iteri
           (fun i (p : Production.t) ->
             if i > 0 then Buffer.add_string buf "\nand ";
             let stateful = Analysis.stateful analysis p.name in
             Buffer.add_string buf (gen_production ctx ~stateful slots.(i) p))
           prods;
         let assoc =
           Array.to_list
             (Array.map
                (fun (p : Production.t) ->
                  Printf.sprintf "(%S, %s)" p.name (fname p.name))
                prods)
         in
         Buffer.add_string buf
           (Printf.sprintf
              "\nlet __prods : (string * (st -> int -> int)) list = [ %s ]\n"
              (String.concat "; " assoc));
         Buffer.add_string buf
           (Printf.sprintf "\nlet start_production = %S\n" (Grammar.start g));
         let chunks_init =
           match config.Config.memo with
           | Config.Chunked -> "Array.make (String.length input + 1) None"
           | _ -> "[||]"
         in
         Buffer.add_string buf
           (Printf.sprintf
              {|
let __dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x -> if Hashtbl.mem seen x then false else (Hashtbl.add seen x (); true))
    xs

let __error st =
  Printf.sprintf "parse error at offset %%d: expected %%s" (max st.farthest 0)
    (String.concat " or " (__dedup (List.rev st.expected)))

let parse_from name ?(require_eof = true) input =
  match List.assoc_opt name __prods with
  | None -> Error (Printf.sprintf "no production named %%S" name)
  | Some f ->
    let st =
      { input; len = String.length input; value = Value.Unit; farthest = -1;
        expected = []; quiet = 0; tables = SMap.empty; version = 0;
        stats_backtracks = 0;
        table_memo = Hashtbl.create 1024; chunks = %s }
    in
    let p = f st 0 in
    if p < 0 then Error (__error st)
    else if require_eof && p < st.len then
      (if st.farthest > p then Error (__error st)
       else Error (Printf.sprintf "parse error at offset %%d: expected end of input" p))
    else Ok st.value

let parse ?require_eof input = parse_from start_production ?require_eof input
|}
              chunks_init);
         Ok (Buffer.contents buf)
       with Rats_support.Diagnostic.Fail d -> Error [ d ])
