(** Resource budgets for a parse run.

    The packrat trade-off is linear time for memo-table memory, and both
    of our back ends additionally recurse (closures) or grow explicit
    stacks (bytecode) with input nesting. Parsing untrusted input
    therefore needs hard budgets: a governed run either finishes or
    returns a structured {!Parse_error} whose kind is
    [Resource_exhausted] — it never crashes the process.

    Budgets are deterministic counts, not wall-clock or GC samples, so a
    given (grammar, input, limits) triple always trips the same limit at
    the same point on both back ends — the property suite asserts this. *)

type t = {
  fuel : int;
      (** step budget: one unit per production invocation (memo hits
          included), counted identically by the closure engine and the
          VM — including productions the VM inlines at call sites.
          [max_int] = unlimited. *)
  max_depth : int;
      (** invocation-nesting cap, checked when a production's body is
          about to run (memo hits don't nest). The closure engine maps
          this to OCaml stack depth, the VM to call-stack height plus
          live inlined bodies; both count the same grammar-level depth. *)
  max_memo_bytes : int;
      (** approximate memo-table budget. Exceeding it never fails the
          parse: new chunks/entries simply stop being written and the
          affected invocations run un-memoized, counted in
          {!Stats.t.memo_degraded} — the run degrades from linear-time
          packrat towards plain recursive descent. *)
  max_input_bytes : int;
      (** inputs longer than this are rejected before parsing starts. *)
}

val unlimited : t
(** Every field [max_int] — the default; no governance overhead beyond
    a counter decrement per invocation. *)

val hardened : t
(** A preset for untrusted input: 5M invocations of fuel, nesting depth
    1024 (fires long before an 8 MiB OS stack), 64 MiB of memo, 8 MiB
    of input. *)

val v :
  ?fuel:int ->
  ?max_depth:int ->
  ?max_memo_bytes:int ->
  ?max_input_bytes:int ->
  unit ->
  t
(** Unspecified fields are unlimited. *)

val is_unlimited : t -> bool

(** Which budget a parse ran out of. [Memory] is only produced by the
    last-resort [Out_of_memory] backstop — the memo budget itself never
    errors, it degrades. *)
type which = Fuel | Depth | Memory | Input

val which_name : which -> string
val which_message : which -> string
val pp_which : Format.formatter -> which -> unit

val chunk_cost : ?value_slots:int -> int -> int
(** [chunk_cost ~value_slots nslots]: approximate bytes charged against
    [max_memo_bytes] when a memo chunk is allocated — per-slot
    result/extent/version bookkeeping plus a boxed word per {e value}
    slot ([value_slots], default [0]; the arena's vmap). Shared by both
    back ends so degradation points coincide. A value-free engine —
    the batch recognizer rung — allocates cheaper chunks, so the same
    budget memoizes roughly twice the positions. *)

val table_entry_cost : int
(** Approximate bytes charged per hash-table memo entry. *)

val pp : Format.formatter -> t -> unit
val describe : t -> string
