type t = {
  mutable farthest : int;
  entries : string array;  (* insertion order; only [0, n) is live *)
  mutable n : int;
}

let max_entries = 32

let create () = { farthest = -1; entries = Array.make max_entries ""; n = 0 }

let reset t =
  Array.fill t.entries 0 t.n "";
  t.farthest <- -1;
  t.n <- 0

(* Recording is on the hot path — every farthest-failure advance during
   backtracking lands here — so it must not allocate. The fixed array
   replaces a cons per advance; [descriptions] pays the list cost only
   when an error is actually built.

   Overflow is deterministic: once [max_entries] distinct descriptions
   are held, a new one evicts the lexicographically largest retained
   entry iff it is smaller, so the retained set is always the
   [max_entries] smallest distinct descriptions seen at the farthest
   position — independent of arrival order, hence identical across
   back ends (which record the same set in different orders). *)
let record t pos desc =
  if pos > t.farthest then (
    t.farthest <- pos;
    t.entries.(0) <- desc;
    t.n <- 1)
  else if pos = t.farthest then (
    let dup = ref false in
    for i = 0 to t.n - 1 do
      if String.equal desc (Array.unsafe_get t.entries i) then dup := true
    done;
    if not !dup then
      if t.n < max_entries then (
        t.entries.(t.n) <- desc;
        t.n <- t.n + 1)
      else (
        let worst = ref 0 in
        for i = 1 to t.n - 1 do
          if
            String.compare
              (Array.unsafe_get t.entries i)
              (Array.unsafe_get t.entries !worst)
            > 0
          then worst := i
        done;
        if String.compare desc t.entries.(!worst) < 0 then
          t.entries.(!worst) <- desc))

let farthest t = t.farthest

let descriptions t =
  let rec take i acc =
    if i < 0 then acc else take (i - 1) (t.entries.(i) :: acc)
  in
  take (t.n - 1) []

let error t =
  Parse_error.v ~position:(max t.farthest 0) ~expected:(descriptions t) ()

let exhausted t ~which ~at =
  Parse_error.resource_exhausted ~which ~at
    ~position:(if t.farthest >= 0 then t.farthest else at)
    ~expected:(descriptions t) ()

let result t ~len ~require_eof ~stop value =
  if stop < 0 then Error (error t)
  else if require_eof && stop < len then
    if t.farthest > stop then
      Error
        (Parse_error.v ~position:t.farthest ~expected:(descriptions t)
           ~consumed:stop ())
    else
      Error
        (Parse_error.v ~position:stop ~expected:[ "end of input" ]
           ~consumed:stop ())
  else Ok value
