type t = {
  mutable farthest : int;
  mutable entries : string list;  (* newest first *)
  mutable n : int;
}

let max_entries = 32

let create () = { farthest = -1; entries = []; n = 0 }

let reset t =
  t.farthest <- -1;
  t.entries <- [];
  t.n <- 0

let record t pos desc =
  if pos > t.farthest then (
    t.farthest <- pos;
    t.entries <- [ desc ];
    t.n <- 1)
  else if
    pos = t.farthest && t.n < max_entries
    && not (List.exists (String.equal desc) t.entries)
  then (
    t.entries <- desc :: t.entries;
    t.n <- t.n + 1)

let farthest t = t.farthest
let descriptions t = List.rev t.entries

let error t =
  Parse_error.v ~position:(max t.farthest 0) ~expected:(descriptions t) ()

let exhausted t ~which ~at =
  Parse_error.resource_exhausted ~which ~at
    ~position:(if t.farthest >= 0 then t.farthest else at)
    ~expected:(descriptions t) ()

let result t ~len ~require_eof ~stop value =
  if stop < 0 then Error (error t)
  else if require_eof && stop < len then
    if t.farthest > stop then
      Error
        (Parse_error.v ~position:t.farthest ~expected:(descriptions t)
           ~consumed:stop ())
    else
      Error
        (Parse_error.v ~position:stop ~expected:[ "end of input" ]
           ~consumed:stop ())
  else Ok value
