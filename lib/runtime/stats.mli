(** Parse-run counters.

    These feed experiments E2/E3/E5: throughput is wall-clock (measured
    by the bench harness), while memory behaviour is reported here as
    exact counts rather than GC samples, so ablations are deterministic. *)

type t = {
  mutable invocations : int;  (** nonterminal invocations, memoized or not *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable memo_stores : int;  (** memo-table entries written *)
  mutable chunks_allocated : int;  (** chunk records (chunked memo only) *)
  mutable chunk_slots : int;  (** total slots across allocated chunks *)
  mutable backtracks : int;  (** failed choice alternatives *)
  mutable state_snapshots : int;  (** stateful-parsing table restores *)
  mutable vm_instructions : int;
      (** bytecode instructions dispatched (VM back end only) *)
  mutable vm_stack_peak : int;
      (** backtrack-stack high-water mark (VM back end only) *)
  mutable memo_degraded : int;
      (** memo stores skipped because {!Limits.t.max_memo_bytes} was
          exhausted — the invocations ran un-memoized instead *)
  mutable fuel_used : int;
      (** production invocations charged against {!Limits.t.fuel};
          identical on both back ends for the same (grammar, input,
          config) *)
  mutable memo_reused : int;
      (** memo entries that survived the last edit and were available at
          reparse start (incremental sessions only; counted per chunk
          for chunked memo, per entry for table memo) *)
  mutable memo_relocated : int;
      (** the subset of [memo_reused] that was shifted by the edit's
          length delta, in the same units *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc t] accumulates [t] into [acc]. *)

val memo_entries : t -> int
(** Entries materialized: stores for table memo, slots for chunks. *)

val fields : t -> (string * int) list
(** Every counter under its stable display name, zero-valued fields
    included, in declaration order — the one schema all printers render
    from. Adding a counter to [t] without extending this list is a
    compile error. *)

val pp : Format.formatter -> t -> unit
(** Renders every field of {!fields}, zeroes included, so the output
    schema is stable across configurations. *)

val to_json : t -> string
(** One JSON object rendering exactly {!fields} — same names, same
    order, zero-valued fields included — so [rml parse --stats-json]
    and any future machine consumer share one stable schema. No
    trailing newline. *)

(** {1 Per-pass optimizer instrumentation}

    Rows produced by the optimizer driver ({!Rats_optimize.Driver}): one
    per executed grammar pass, reporting wall time and the pass's effect
    on grammar size — the per-pass half of the E3 story. They live here
    so every layer (CLI, bench harness, tests) renders them the same
    way parse-run counters are rendered. *)

type pass_row = {
  pass_name : string;
  pass_time : float;  (** wall-clock seconds for this pass alone *)
  prods_before : int;
  prods_after : int;
  nodes_before : int;  (** {!Rats_peg.Grammar.size} before the pass *)
  nodes_after : int;
  pass_changed : bool;
      (** false when the pass returned a structurally identical grammar *)
}

val pp_pass_row : Format.formatter -> pass_row -> unit
val pp_pass_table : Format.formatter -> pass_row list -> unit
(** Aligned table with a Δ column per metric and a total-time footer. *)
