(** Parse-run counters.

    These feed experiments E2/E3/E5: throughput is wall-clock (measured
    by the bench harness), while memory behaviour is reported here as
    exact counts rather than GC samples, so ablations are deterministic. *)

type t = {
  mutable invocations : int;  (** nonterminal invocations, memoized or not *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable memo_stores : int;  (** memo-table entries written *)
  mutable chunks_allocated : int;  (** chunk records (chunked memo only) *)
  mutable chunk_slots : int;  (** total slots across allocated chunks *)
  mutable backtracks : int;  (** failed choice alternatives *)
  mutable state_snapshots : int;  (** stateful-parsing table restores *)
  mutable vm_instructions : int;
      (** bytecode instructions dispatched (VM back end only) *)
  mutable vm_stack_peak : int;
      (** backtrack-stack high-water mark (VM back end only) *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc t] accumulates [t] into [acc]. *)

val memo_entries : t -> int
(** Entries materialized: stores for table memo, slots for chunks. *)

val pp : Format.formatter -> t -> unit
