type t = {
  mutable invocations : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable memo_stores : int;
  mutable chunks_allocated : int;
  mutable chunk_slots : int;
  mutable backtracks : int;
  mutable state_snapshots : int;
  mutable vm_instructions : int;
  mutable vm_stack_peak : int;
  mutable memo_degraded : int;
  mutable fuel_used : int;
  mutable memo_reused : int;
  mutable memo_relocated : int;
}

let create () =
  {
    invocations = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_stores = 0;
    chunks_allocated = 0;
    chunk_slots = 0;
    backtracks = 0;
    state_snapshots = 0;
    vm_instructions = 0;
    vm_stack_peak = 0;
    memo_degraded = 0;
    fuel_used = 0;
    memo_reused = 0;
    memo_relocated = 0;
  }

let reset t =
  t.invocations <- 0;
  t.memo_hits <- 0;
  t.memo_misses <- 0;
  t.memo_stores <- 0;
  t.chunks_allocated <- 0;
  t.chunk_slots <- 0;
  t.backtracks <- 0;
  t.state_snapshots <- 0;
  t.vm_instructions <- 0;
  t.vm_stack_peak <- 0;
  t.memo_degraded <- 0;
  t.fuel_used <- 0;
  t.memo_reused <- 0;
  t.memo_relocated <- 0

let add acc t =
  acc.invocations <- acc.invocations + t.invocations;
  acc.memo_hits <- acc.memo_hits + t.memo_hits;
  acc.memo_misses <- acc.memo_misses + t.memo_misses;
  acc.memo_stores <- acc.memo_stores + t.memo_stores;
  acc.chunks_allocated <- acc.chunks_allocated + t.chunks_allocated;
  acc.chunk_slots <- acc.chunk_slots + t.chunk_slots;
  acc.backtracks <- acc.backtracks + t.backtracks;
  acc.state_snapshots <- acc.state_snapshots + t.state_snapshots;
  acc.vm_instructions <- acc.vm_instructions + t.vm_instructions;
  acc.vm_stack_peak <- max acc.vm_stack_peak t.vm_stack_peak;
  acc.memo_degraded <- acc.memo_degraded + t.memo_degraded;
  acc.fuel_used <- acc.fuel_used + t.fuel_used;
  acc.memo_reused <- acc.memo_reused + t.memo_reused;
  acc.memo_relocated <- acc.memo_relocated + t.memo_relocated

let memo_entries t = if t.chunk_slots > 0 then t.chunk_slots else t.memo_stores

type pass_row = {
  pass_name : string;
  pass_time : float;
  prods_before : int;
  prods_after : int;
  nodes_before : int;
  nodes_after : int;
  pass_changed : bool;
}

let pp_pass_row ppf r =
  Format.fprintf ppf "%-14s %8.2fms  productions %4d -> %-4d  nodes %5d -> %-5d%s"
    r.pass_name (r.pass_time *. 1000.) r.prods_before r.prods_after
    r.nodes_before r.nodes_after
    (if r.pass_changed then "" else "  (no change)")

let pp_pass_table ppf rows =
  Format.fprintf ppf "  %-14s %9s %7s %7s %8s %8s@." "pass" "time ms"
    "prods" "Δprods" "nodes" "Δnodes";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s %9.3f %7d %+7d %8d %+8d%s@." r.pass_name
        (r.pass_time *. 1000.) r.prods_after
        (r.prods_after - r.prods_before)
        r.nodes_after
        (r.nodes_after - r.nodes_before)
        (if r.pass_changed then "" else "   (no change)"))
    rows;
  let total = List.fold_left (fun acc r -> acc +. r.pass_time) 0. rows in
  Format.fprintf ppf "  %-14s %9.3f@." "total" (total *. 1000.)

(* Every counter, in declaration order, under its stable display name.
   This is the single schema every printer (and any JSON emitter) renders
   from: zero-valued fields are included, so consumers that key on field
   names never see the schema shift between runs or releases. The record
   pattern below is exhaustiveness insurance — adding a field to [t]
   without extending it is a compile error (warning 9 is fatal here). *)
let fields
    {
      invocations;
      memo_hits;
      memo_misses;
      memo_stores;
      chunks_allocated;
      chunk_slots;
      backtracks;
      state_snapshots;
      vm_instructions;
      vm_stack_peak;
      memo_degraded;
      fuel_used;
      memo_reused;
      memo_relocated;
    } =
  [
    ("invocations", invocations);
    ("hits", memo_hits);
    ("misses", memo_misses);
    ("stores", memo_stores);
    ("chunks", chunks_allocated);
    ("slots", chunk_slots);
    ("backtracks", backtracks);
    ("snapshots", state_snapshots);
    ("vm-instructions", vm_instructions);
    ("vm-stack-peak", vm_stack_peak);
    ("fuel-used", fuel_used);
    ("memo-degraded", memo_degraded);
    ("memo-reused", memo_reused);
    ("memo-relocated", memo_relocated);
  ]

(* Renders [fields] verbatim: the JSON schema is the [fields] schema,
   and the schema-stability CLI test pins it. *)
let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
    (fields t);
  Buffer.add_char b '}';
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf
    "@[invocations=%d hits=%d misses=%d stores=%d chunks=%d slots=%d \
     backtracks=%d snapshots=%d@]"
    t.invocations t.memo_hits t.memo_misses t.memo_stores t.chunks_allocated
    t.chunk_slots t.backtracks t.state_snapshots;
  Format.fprintf ppf "@ @[vm-instructions=%d vm-stack-peak=%d@]"
    t.vm_instructions t.vm_stack_peak;
  Format.fprintf ppf "@ @[fuel-used=%d memo-degraded=%d@]" t.fuel_used
    t.memo_degraded;
  Format.fprintf ppf "@ @[memo-reused=%d memo-relocated=%d@]" t.memo_reused
    t.memo_relocated
