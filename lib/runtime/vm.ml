open Rats_support
open Rats_peg
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* The bytecode back end. The compiler below flattens the optimized PEG
   IR into one instruction array per grammar; the interpreter runs it
   with an explicit, unified backtrack/call stack instead of OCaml
   closures and [-1] returns. Both back ends must stay observationally
   equivalent — values, success offsets, farthest-failure positions and
   expected sets — which the property suite enforces; when in doubt,
   [Engine] is the executable specification. *)

(* --- instruction set ----------------------------------------------------- *)

type instr =
  (* matching; the string is the expected-set description *)
  | IChar of char * string * bool  (* set value register to Unit? *)
  | IStr of string * string * bool
  | ISet of Bytes.t * string * bool  (* 256-byte bitmap; set Chr value? *)
  | IAny of string * bool
  | ITestSet of Bytes.t * int * string
      (* FIRST-set dispatch: record + jump when the next byte cannot
         start the alternative; falls through otherwise *)
  (* fused lexical forms: a charset star without a backtrack entry and
     predicates over one-byte lookahead. [Chr]/[Any] bodies reuse these
     with singleton / full bitmaps. *)
  | ISpan of Bytes.t * string
  | ITestNot of Bytes.t * string  (* "not ..." desc *)
  | ITestAnd of Bytes.t * string
  | IDispatch of Bytes.t * int array * int
      (* one-lookup choice dispatch: the byte indexes an alternative
         (255 = none viable), the int array maps indices to entry
         addresses past the per-alternative tests, the last int is the
         end-of-input entry. The trace replay falls through to the
         [ITestSet] chain instead so skipped alternatives record their
         expected sets exactly like the closure engine. *)
  (* control flow *)
  | IJump of int
  | IChoice of int * bool  (* handler address; count failures as backtracks? *)
  | ICommit of int
  | IStarStep of int * bool  (* loop head; append value to the top frame? *)
  | IBackCommit of int  (* and-predicate success: rewind, jump *)
  | IFailTwice of string  (* not-predicate success: rewind, record, fail *)
  | IFail of string option  (* record (when described) and fail *)
  | IOptSet of Bytes.t * string * int
      (* fused optional one-byte matcher; the int is the value mode:
         0 lean, 1 set Unit on a match, 2 set the matched Chr *)
  (* calls, specialized at compile time by the memo strategy so the
     interpreter never re-examines the configuration. The bool is true
     for a call from a lean context: the callee's value is dead, so
     neither a memo hit nor the return writes the value register (the
     return entry's tag carries the flag to the matching return) *)
  | ICall of int * bool  (* production id, lean *)
  | ICallChunk of int * int * int * bool * bool
      (* prod, slot, vslot, stateful, lean; vslot is the arena value
         slot (-1 = value-free production: a hit restores Unit) *)
  | ICallTbl of int * int * bool * bool  (* prod, slot, stateful, lean *)
  | IRet  (* shape the value, return; no memo entry *)
  | IRetChunk of int * int  (* slot, vslot *)
  | IRetTbl of int  (* slot *)
  | IHalt
  (* resource governor brackets around inlined production bodies, so
     fuel and depth count the inlined invocation exactly as the closure
     engine (which always calls) does. Emitted only under finite
     limits — ungoverned programs pay nothing for inlined calls. *)
  | IGovern
  | ILeave
  (* observed twins, emitted instead of the plain forms when the
     configuration enables observation — so an unobserved program is
     byte-identical to what it always was. Call/ret twins bracket the
     invocation with profiler frames and ring events; [IObsEnter]/
     [IObsLeave] bracket an inlined production body the same way (its
     stack entry lets the failure path close the frame exactly where an
     un-inlined call would have), charging the work to the origin
     production; [IObsAlt] marks per-alternative coverage. *)
  | IObsCall of int * bool  (* production id, lean *)
  | IObsCallChunk of int * int * int * bool * bool
      (* prod, slot, vslot, stateful, lean *)
  | IObsCallTbl of int * int * bool * bool
  | IObsRet
  | IObsRetChunk of int * int  (* slot, vslot *)
  | IObsRetTbl of int
  | IObsEnter of int  (* production id of the inlined body *)
  | IObsLeave
  | IObsAlt of int * bool  (* global arm id; matched? (tried otherwise) *)
  (* predicate-body bracket: recording inside a body never reaches the
     farthest-failure trace (the predicate records at its entry point
     instead), matching the closure engine — see [record] there. The
     failure path out of a body lands on the bracket's choice handler,
     which re-opens recording with [IQuiet false]. *)
  | IQuiet of bool
  (* value construction *)
  | ISetUnit
  | IPushMark  (* open a frame remembering the current offset *)
  | IAppend of string option  (* labeled sequence part into the top frame *)
  | IAppendSplice  (* splice a #tail node's parts into the top frame *)
  | IAppendList  (* repetition element into the top frame *)
  | IPopSeq
  | IPopTail
  | IPopTail1 of string option
  | IPopList
  | IPopToken
  | IPopNode of string
  | IWrapBind of string
  | ISpliceCollapse
  (* stateful parsing *)
  | IRecord of string
  | IMember of string * bool * string

type shape = Shape_plain | Shape_generic of string | Shape_text | Shape_void

type scratch = {
  sc_arena : Memo_arena.t;
  sc_table : (int, int * Value.t * int * int) Hashtbl.t;
  mutable sc_code : int array;
  mutable sc_pos : int array;
  mutable sc_aux0 : int array;
  mutable sc_aux1 : int array;
  mutable sc_depth : int array;
  mutable sc_tables : SSet.t SMap.t array;
  mutable sc_fstart : int array;
  mutable sc_fbase : int array;
  mutable sc_plabel : string option array;
  mutable sc_pvalue : Value.t array;
}
(* Everything a run needs besides the input: the unified stack, the
   value-frame and parts stacks, and (for store-less runs) memo
   storage. Parked on the program between runs so back-to-back parses
   reuse one set of buffers instead of allocating ~20 arrays per parse.
   A parked scratch holds no value references — release clears them. *)

type t = {
  cfg : Config.t;
  gram : Grammar.t;
  code : instr array;
  ids : (string, int) Hashtbl.t;
  names : string array;
  stubs : int array;  (* per-production [ICall; IHalt] entry point *)
  entries : int array;  (* per-production body address *)
  slots : int array;  (* memo slot per production; -1 = not memoized *)
  stateful : bool array;
  shapes : shape array;
  nslots : int;
  vmap : int array;  (* memo slot -> arena value slot; -1 = value-free *)
  nvslots : int;
  mutable pool : scratch option;
  obs : Observe.t option;
      (* observation sink, [Config.observe] enabled only; accumulates
         across every run of this program *)
}

(* Sequence tails carry their parts in a node with this reserved name;
   must match the closure engine's convention exactly. *)
let tail_name = "#tail"

let tail_parts = function
  | Value.Node n when String.equal n.Value.name tail_name -> n.Value.children
  | _ -> assert false

let bitmap_of_charset set =
  let bm = Bytes.make 256 '\000' in
  Charset.iter (fun c -> Bytes.set bm (Char.code c) '\001') set;
  bm

let bitmap_mem bm c = Bytes.unsafe_get bm (Char.code c) <> '\000'

(* --- compilation --------------------------------------------------------- *)

type buf = { mutable code : instr array; mutable n : int }

let buf_create () = { code = Array.make 256 IHalt; n = 0 }

let emit_instr b i =
  if b.n = Array.length b.code then (
    let bigger = Array.make (2 * b.n) IHalt in
    Array.blit b.code 0 bigger 0 b.n;
    b.code <- bigger);
  b.code.(b.n) <- i;
  b.n <- b.n + 1

let here b = b.n

(* Reserve a slot for a forward jump; patch once the target is known. *)
let reserve b =
  let at = here b in
  emit_instr b IHalt;
  at

let patch b at i = b.code.(at) <- i

type ctx = {
  buf : buf;
  analysis : Analysis.t;
  config : Config.t;
  prod_ids : (string, int) Hashtbl.t;
  prods : Production.t array;
  slots : int array;
  vmap : int array;  (* memo slot -> value slot, -1 = value-free *)
  stateful : bool array;
  inlinable : bool array;
      (* non-memoized, non-recursive, small: emitted at the call site
         instead of through ICall/IRet — the closure engine cannot do
         this without duplicating closures, the bytecode can *)
  mutable inline_depth : int;
  governed : bool;  (* finite limits: bracket inlined bodies *)
  obs : Observe.t option;
      (* when set, calls and returns emit their observed twins, inlined
         bodies get [IObsEnter]/[IObsLeave] brackets, and (under
         coverage) choices get per-alternative [IObsAlt] marks *)
}

let truncate_desc s =
  if String.length s <= 40 then s else String.sub s 0 37 ^ "..."

let peel_bind (e : Expr.t) =
  match e.it with Expr.Bind (l, inner) -> (Some l, inner) | _ -> (None, e)

(* One-byte matchers that the fused forms above can stand in for, as a
   bitmap plus the expected-set description their failure records. *)
let fused_bitmap (e : Expr.t) =
  match e.it with
  | Expr.Chr c ->
      let bm = Bytes.make 256 '\000' in
      Bytes.set bm (Char.code c) '\001';
      Some (bm, Pretty.quote_char c, false)
  | Expr.Cls set -> Some (bitmap_of_charset set, Charset.to_string set, true)
  | Expr.Any -> Some (Bytes.make 256 '\001', "any character", true)
  | _ -> None

let rec emit ctx ~lean (e : Expr.t) =
  let b = ctx.buf in
  match e.it with
  | Expr.Empty -> if not lean then emit_instr b ISetUnit
  | Expr.Fail msg -> emit_instr b (IFail (Some msg))
  | Expr.Any -> emit_instr b (IAny ("any character", not lean))
  | Expr.Chr c -> emit_instr b (IChar (c, Pretty.quote_char c, not lean))
  | Expr.Str s -> emit_instr b (IStr (s, Pretty.quote_string s, not lean))
  | Expr.Cls set ->
      emit_instr b
        (ISet (bitmap_of_charset set, Charset.to_string set, not lean))
  | Expr.Ref name -> (
      match Hashtbl.find_opt ctx.prod_ids name with
      | Some id ->
          if ctx.inlinable.(id) && ctx.inline_depth < 3 then
            emit_inline ctx ~lean id
          else emit_call ctx ~lean id
      | None -> Diagnostic.failf "vm: undefined production %S" name)
  | Expr.Seq es -> emit_seq ctx ~lean ~tail:false es
  | Expr.Alt alts -> emit_alt ctx ~lean ~tail:false alts
  | Expr.Star x -> (
      let lean' = lean || Analysis.expr_yields_unit ctx.analysis x in
      match if lean' then fused_bitmap x else None with
      | Some (bm, desc, _) ->
          emit_instr b (ISpan (bm, desc));
          if not lean then emit_instr b ISetUnit
      | None ->
          if lean' then (
            emit_star_loop ctx ~collect:false x;
            if not lean then emit_instr b ISetUnit)
          else (
            emit_instr b IPushMark;
            emit_star_loop ctx ~collect:true x;
            emit_instr b IPopList))
  | Expr.Plus x -> (
      let lean' = lean || Analysis.expr_yields_unit ctx.analysis x in
      match if lean' then fused_bitmap x else None with
      | Some (bm, desc, _) ->
          emit ctx ~lean:true x;
          emit_instr b (ISpan (bm, desc));
          if not lean then emit_instr b ISetUnit
      | None ->
          if lean' then (
            emit ctx ~lean:true x;
            emit_star_loop ctx ~collect:false x;
            if not lean then emit_instr b ISetUnit)
          else (
            emit_instr b IPushMark;
            emit ctx ~lean:false x;
            emit_instr b IAppendList;
            emit_star_loop ctx ~collect:true x;
            emit_instr b IPopList))
  | Expr.Opt x -> (
      match fused_bitmap x with
      | Some (bm, desc, chr_valued) ->
          let mode = if lean then 0 else if chr_valued then 2 else 1 in
          emit_instr b (IOptSet (bm, desc, mode))
      | None ->
          let choice = reserve b in
          emit ctx ~lean x;
          let commit = reserve b in
          patch b choice (IChoice (here b, false));
          if not lean then emit_instr b ISetUnit;
          patch b commit (ICommit (here b)))
  | Expr.And x -> (
      match fused_bitmap x with
      | Some (bm, desc, _) ->
          emit_instr b (ITestAnd (bm, "&" ^ desc));
          if not lean then emit_instr b ISetUnit
      | None ->
          (* choice L1; quiet+; <x>; quiet-; backcommit L2;
             L1: quiet-; fail "&x"; L2: *)
          let desc = "&" ^ truncate_desc (Pretty.expr_to_string x) in
          let choice = reserve b in
          emit_instr b (IQuiet true);
          emit ctx ~lean:(lean || ctx.config.Config.lean_values) x;
          emit_instr b (IQuiet false);
          let back = reserve b in
          patch b choice (IChoice (here b, false));
          emit_instr b (IQuiet false);
          emit_instr b (IFail (Some desc));
          patch b back (IBackCommit (here b));
          if not lean then emit_instr b ISetUnit)
  | Expr.Not x -> (
      let desc = "not " ^ truncate_desc (Pretty.expr_to_string x) in
      match fused_bitmap x with
      | Some (bm, _, _) ->
          emit_instr b (ITestNot (bm, desc));
          if not lean then emit_instr b ISetUnit
      | None ->
          (* choice L1; quiet+; <x>; quiet-; failtwice "not x"; L1: quiet- *)
          let choice = reserve b in
          emit_instr b (IQuiet true);
          emit ctx ~lean:(lean || ctx.config.Config.lean_values) x;
          emit_instr b (IQuiet false);
          emit_instr b (IFailTwice desc);
          patch b choice (IChoice (here b, false));
          emit_instr b (IQuiet false);
          if not lean then emit_instr b ISetUnit)
  | Expr.Bind (label, x) ->
      emit ctx ~lean x;
      if not lean then emit_instr b (IWrapBind label)
  | Expr.Token x ->
      if lean then emit ctx ~lean:true x
      else (
        emit_instr b IPushMark;
        emit ctx ~lean:ctx.config.Config.lean_values x;
        emit_instr b IPopToken)
  | Expr.Node (name, x) ->
      if lean then emit ctx ~lean:true x
      else (
        emit_instr b IPushMark;
        emit ctx ~lean:false x;
        emit_instr b (IPopNode name))
  | Expr.Drop x ->
      emit ctx ~lean:(lean || ctx.config.Config.lean_values) x;
      if not lean then emit_instr b ISetUnit
  | Expr.Splice x ->
      if lean then emit ctx ~lean:true x
      else (
        emit_tail ctx x;
        emit_instr b ISpliceCollapse)
  | Expr.Record (table, x) ->
      emit_instr b IPushMark;
      emit ctx ~lean x;
      emit_instr b (IRecord table)
  | Expr.Member (table, positive, x) ->
      let desc =
        if positive then Printf.sprintf "a name recorded in %s" table
        else Printf.sprintf "a name not recorded in %s" table
      in
      emit_instr b IPushMark;
      emit ctx ~lean x;
      emit_instr b (IMember (table, positive, desc))

(* A call specialized by what [ICall] would have to look up anyway:
   the memo slot and strategy are fixed per (production, config). *)
and emit_call ctx ~lean id =
  let b = ctx.buf in
  let slot = ctx.slots.(id) in
  let observed = ctx.obs <> None in
  if slot < 0 then
    emit_instr b (if observed then IObsCall (id, lean) else ICall (id, lean))
  else
    match ctx.config.Config.memo with
    | Config.No_memo ->
        emit_instr b (if observed then IObsCall (id, lean) else ICall (id, lean))
    | Config.Chunked ->
        emit_instr b
          (if observed then
             IObsCallChunk (id, slot, ctx.vmap.(slot), ctx.stateful.(id), lean)
           else ICallChunk (id, slot, ctx.vmap.(slot), ctx.stateful.(id), lean))
    | Config.Hashtable ->
        emit_instr b
          (if observed then IObsCallTbl (id, slot, ctx.stateful.(id), lean)
           else ICallTbl (id, slot, ctx.stateful.(id), lean))

(* An inlined production body: reproduce exactly what [ICall]+[IRet]
   would do to the value register, minus the call frame and the memo
   traffic (inlinable productions have no memo slot). In a lean context
   the shape is dead, so the body runs lean whatever the kind. *)
and emit_inline ctx ~lean id =
  let b = ctx.buf in
  let p = ctx.prods.(id) in
  ctx.inline_depth <- ctx.inline_depth + 1;
  (* observation brackets outside the governor brackets: the enter event
     precedes the fuel charge, exactly like an observed call *)
  if ctx.obs <> None then emit_instr b (IObsEnter id);
  if ctx.governed then emit_instr b IGovern;
  (if lean then emit ctx ~lean:true p.Production.expr
   else
     match p.Production.attrs.Attr.kind with
     | Attr.Plain -> emit ctx ~lean:false p.Production.expr
     | Attr.Generic ->
         emit_instr b IPushMark;
         emit ctx ~lean:false p.Production.expr;
         emit_instr b (IPopNode p.Production.name)
     | Attr.Text ->
         emit_instr b IPushMark;
         emit ctx ~lean:true p.Production.expr;
         emit_instr b IPopToken
     | Attr.Void ->
         emit ctx ~lean:true p.Production.expr;
         emit_instr b ISetUnit);
  if ctx.governed then emit_instr b ILeave;
  if ctx.obs <> None then emit_instr b IObsLeave;
  ctx.inline_depth <- ctx.inline_depth - 1

(* The iteration of [Star]/[Plus]: choice over the body with a partial
   commit that re-arms the handler at each consumed iteration. The frame
   (when collecting) is managed by the caller. *)
and emit_star_loop ctx ~collect x =
  let b = ctx.buf in
  let choice = reserve b in
  let body = here b in
  emit ctx ~lean:(not collect) x;
  (* jumps back to the body: the step re-arms the handler in place *)
  emit_instr b (IStarStep (body, collect));
  (* both the handler and the no-progress exit land here *)
  patch b choice (IChoice (here b, false))

and emit_seq ctx ~lean ~tail es =
  let b = ctx.buf in
  let general () =
    emit_instr b IPushMark;
    List.iter
      (fun (e : Expr.t) ->
        match e.it with
        | Expr.Splice inner ->
            emit_tail ctx inner;
            emit_instr b IAppendSplice
        | _ ->
            let label, inner = peel_bind e in
            emit ctx ~lean:false inner;
            emit_instr b (IAppend label))
      es;
    emit_instr b (if tail then IPopTail else IPopSeq)
  in
  if lean then List.iter (emit ctx ~lean:true) es
  else if
    tail
    || (not ctx.config.Config.lean_values)
    || List.exists
         (fun (e : Expr.t) ->
           match e.it with Expr.Splice _ -> true | _ -> false)
         es
  then general ()
  else
    (* [Value.seq] drops unlabeled unit parts and collapses a singleton
       to the part itself (lib/peg/value.ml), so a sequence with at most
       one value-bearing part needs no collection frame: the value
       register already carries the result — provided the parts after
       the value-bearing one leave the register alone. *)
    let parts =
      List.map
        (fun e ->
          let label, inner = peel_bind e in
          ( label,
            inner,
            label <> None || not (Analysis.expr_yields_unit ctx.analysis inner)
          ))
        es
    in
    let rec after_value = function
      | [] -> []
      | (_, _, true) :: rest -> List.map (fun (_, i, _) -> i) rest
      | _ :: rest -> after_value rest
    in
    match List.filter (fun (_, _, bearing) -> bearing) parts with
    | [] ->
        List.iter (fun (_, inner, _) -> emit ctx ~lean:true inner) parts;
        emit_instr b ISetUnit
    | [ (label, _, _) ]
      when List.for_all Analysis.preserves_value (after_value parts) ->
        List.iter
          (fun (_, inner, bearing) -> emit ctx ~lean:(not bearing) inner)
          parts;
        (match label with
        | None -> ()
        | Some l -> emit_instr b (IWrapBind l))
    | _ -> general ()

and emit_tail ctx (e : Expr.t) =
  let b = ctx.buf in
  match e.it with
  | Expr.Alt alts -> emit_alt ctx ~lean:false ~tail:true alts
  | Expr.Seq es -> emit_seq ctx ~lean:false ~tail:true es
  | Expr.Empty ->
      emit_instr b IPushMark;
      emit_instr b IPopTail
  | _ ->
      let label, inner = peel_bind e in
      emit_instr b IPushMark;
      emit ctx ~lean:false inner;
      emit_instr b (IPopTail1 label)

and emit_alt ctx ~lean ~tail alts =
  let b = ctx.buf in
  let emit_branch body =
    if tail then emit_tail ctx body else emit ctx ~lean body
  in
  let dispatch = ctx.config.Config.dispatch in
  let n = List.length alts in
  (* Per-alternative coverage marks, identified by the physical [alts]
     node so every compilation of this choice agrees on ids; -1 (a node
     outside the registered grammar) suppresses the marks. The tried
     mark sits at the alternative's entry — past its dispatch test, so
     a skipped alternative is never marked. *)
  let obs_arm =
    match ctx.obs with
    | Some o when (Observe.want o).Observe.coverage ->
        let base = Provenance.arms_of (Observe.provenance o) alts in
        if base < 0 then None else Some base
    | _ -> None
  in
  let table = if dispatch && n > 1 then Some (reserve b) else None in
  (* per-alternative dispatch info: entry past the test, FIRST set,
     nullability — collected to build the one-lookup table *)
  let entries_info = ref [] in
  (* reserved slots to patch once the exit address is known: commits
     (successful non-last alternatives pop their choice entry) and plain
     jumps (the last alternative has none) *)
  let commits = ref [] and jumps = ref [] in
  let fail_at = ref (-1) in
  (match alts with
  | [] -> emit_instr b (IFail (Some "empty choice"))
  | alts ->
      List.iteri
        (fun i (a : Expr.alt) ->
          let last = i = n - 1 in
          let first, eps = Analysis.expr_first ctx.analysis a.body in
          let test =
            if dispatch then
              if eps then None
              else
                Some (reserve b, bitmap_of_charset first, Charset.to_string first)
            else None
          in
          entries_info := (here b, first, eps) :: !entries_info;
          (match obs_arm with
          | Some base -> emit_instr b (IObsAlt (base + i, false))
          | None -> ());
          let choice = if last then -1 else reserve b in
          emit_branch a.body;
          (match obs_arm with
          | Some base -> emit_instr b (IObsAlt (base + i, true))
          | None -> ());
          if not last then (
            commits := reserve b :: !commits;
            (* a failed alternative resumes at the next one *)
            patch b choice (IChoice (here b, true)))
          else if test <> None then (
            (* a dispatch skip on the last alternative fails outright;
               jump over the fail on body success *)
            jumps := reserve b :: !jumps;
            fail_at := here b;
            emit_instr b (IFail None));
          match test with
          | None -> ()
          | Some (at, bm, desc) ->
              (* skip target: the next alternative, or the trailing fail *)
              let target = if last then here b - 1 else here b in
              patch b at (ITestSet (bm, target, desc)))
        alts);
  let after = here b in
  List.iter (fun at -> patch b at (ICommit after)) !commits;
  List.iter (fun at -> patch b at (IJump after)) !jumps;
  match table with
  | None -> ()
  | Some at ->
      let infos = Array.of_list (List.rev !entries_info) in
      (* an alternative viable for no byte can only be reached by the
         chain; 255 = no viable alternative, entered at the trailing
         fail (present whenever the last alternative is tested) *)
      let none = if !fail_at >= 0 then !fail_at else after in
      let targets =
        Array.append (Array.map (fun (e, _, _) -> e) infos) [| none |]
      in
      let none_idx = Array.length infos in
      let tbl = Bytes.make 256 (Char.chr none_idx) in
      for byte = 255 downto 0 do
        Array.iteri
          (fun i (_, first, eps) ->
            if
              Char.code (Bytes.get tbl byte) = none_idx
              && (eps || Charset.mem (Char.chr byte) first)
            then Bytes.set tbl byte (Char.chr i))
          infos
      done;
      let eof =
        match Array.find_opt (fun (_, _, eps) -> eps) infos with
        | Some (e, _, _) -> e
        | None -> none
      in
      patch b at (IDispatch (tbl, targets, eof))

(* Memo-slot assignment, mirroring the closure engine exactly so both
   back ends agree on what is memoized under every configuration. *)
let assign_slots cfg prods =
  let next = ref 0 in
  let slots =
    Array.map
      (fun (p : Production.t) ->
        let memoizable =
          match cfg.Config.memo with
          | Config.No_memo -> false
          | Config.Hashtable | Config.Chunked -> (
              match p.attrs.Attr.memo with
              | Attr.Memo_always -> true
              | Attr.Memo_never -> not cfg.Config.honor_transient
              | Attr.Memo_auto -> true)
        in
        if memoizable then (
          let s = !next in
          incr next;
          s)
        else -1)
      prods
  in
  (slots, !next)

let prepare ?(config = Config.vm) gram =
  let analysis = Analysis.analyze gram in
  match Analysis.check analysis with
  | _ :: _ as ds -> Error ds
  | [] -> (
      let prods = Array.of_list (Grammar.productions gram) in
      let nprods = Array.length prods in
      let ids = Hashtbl.create (nprods * 2) in
      Array.iteri
        (fun i (p : Production.t) -> Hashtbl.replace ids p.name i)
        prods;
      let slots, nslots = assign_slots config prods in
      let inlinable =
        Array.mapi
          (fun i (p : Production.t) ->
            slots.(i) < 0
            && Expr.size p.expr <= 32
            && not
                 (Analysis.StringSet.mem p.name
                    (Analysis.reachable_from analysis (Expr.refs p.expr))))
          prods
      in
      let stateful =
        Array.map
          (fun (p : Production.t) -> Analysis.stateful analysis p.name)
          prods
      in
      (* Value-slot map: must mirror the closure engine's assignment
         exactly (same analysis, same production order), so stores made
         by one back end could in principle be replayed by the other. *)
      let vmap = Array.make nslots (-1) in
      let nvslots = ref 0 in
      Array.iteri
        (fun i (p : Production.t) ->
          let s = slots.(i) in
          if s >= 0 && not (Analysis.stores_no_value analysis p) then (
            vmap.(s) <- !nvslots;
            incr nvslots))
        prods;
      let buf = buf_create () in
      let obs =
        if Observe.enabled config.Config.observe then
          Some
            (Observe.create config.Config.observe (Provenance.of_grammar gram))
        else None
      in
      let ctx =
        { buf; analysis; config; prod_ids = ids; prods; slots; vmap;
          stateful; inlinable; inline_depth = 0;
          governed = not (Limits.is_unlimited config.Config.limits); obs }
      in
      let stubs = Array.make nprods 0 in
      let entries = Array.make nprods 0 in
      try
        Array.iteri
          (fun i (_ : Production.t) ->
            stubs.(i) <- here buf;
            emit_call ctx ~lean:false i;
            emit_instr buf IHalt)
          prods;
        Array.iteri
          (fun i (p : Production.t) ->
            entries.(i) <- here buf;
            let lean_body =
              config.Config.lean_values
              && (p.attrs.Attr.kind = Attr.Text
                 || p.attrs.Attr.kind = Attr.Void)
            in
            emit ctx ~lean:lean_body p.expr;
            let observed = obs <> None in
            emit_instr buf
              (if slots.(i) < 0 then if observed then IObsRet else IRet
               else
                 match config.Config.memo with
                 | Config.No_memo -> if observed then IObsRet else IRet
                 | Config.Chunked ->
                     if observed then
                       IObsRetChunk (slots.(i), vmap.(slots.(i)))
                     else IRetChunk (slots.(i), vmap.(slots.(i)))
                 | Config.Hashtable ->
                     if observed then IObsRetTbl slots.(i)
                     else IRetTbl slots.(i)))
          prods;
        Ok
          {
            cfg = config;
            gram;
            code = Array.sub buf.code 0 buf.n;
            ids;
            names = Array.map (fun (p : Production.t) -> p.name) prods;
            stubs;
            entries;
            slots;
            stateful;
            shapes =
              Array.map
                (fun (p : Production.t) ->
                  match p.attrs.Attr.kind with
                  | Attr.Plain -> Shape_plain
                  | Attr.Generic -> Shape_generic p.name
                  | Attr.Text -> Shape_text
                  | Attr.Void -> Shape_void)
                prods;
            nslots;
            vmap;
            nvslots = !nvslots;
            pool = None;
            obs;
          }
      with Diagnostic.Fail d -> Error [ d ])

let prepare_exn ?config gram =
  match prepare ?config gram with
  | Ok t -> t
  | Error (d :: _) -> raise (Diagnostic.Fail d)
  | Error [] -> assert false

let config t = t.cfg
let grammar t = t.gram
let memo_slots t = t.nslots
let memo_value_slots t = t.nvslots
let instruction_count (t : t) = Array.length t.code
let observation (t : t) = t.obs

let arena_cap (t : t) =
  match t.pool with
  | Some sc -> sc.sc_arena.Memo_arena.cap
  | None -> 0

(* --- run-time state ------------------------------------------------------ *)

(* Memo chunks live in a [Memo_arena.t] shared in layout and encoding
   with the closure engine: res 0 unset, -1 memoized failure,
   consumed+1 memoized success — relative to the chunk's position —
   with examined-extent rows ([exts], [cmax] caching their max) that
   decide which entries survive an edit in an incremental session. *)

(* Unified stack entry tags. Backtrack entries hold a resume address and
   the machine state to rewind to; return entries hold the call's return
   address and the memoization context of the production being run. *)
let tag_bt = 0
let tag_bt_alt = 1 (* like tag_bt, but a pop-on-failure counts as a backtrack *)
let tag_ret = 2
let tag_ret_lean = 3 (* return entry of a lean call: no value write *)

(* Observed twins of the return tags, pushed by the [IObs*] call
   instructions so the failure path knows to close the profiler frame
   and push the exit event; and the marker entry of an observed inlined
   body, which exists only to be unwound — [IObsLeave] pops it on
   success, [fail] closes its frame on the way past. *)
let tag_ret_obs = 4
let tag_ret_lean_obs = 5
let tag_obs_inline = 6

type st = {
  input : Input.t;
  len : int;
  trace : bool;
      (* expected-set recording. The first, speculative pass runs with
         recording off; a failing parse is re-run with it on to
         reconstruct the trace (parsing is deterministic, so the replay
         is exact — including the point where a budget trips). The
         success path never pays for error bookkeeping. *)
  mutable pos : int;
  mutable value : Value.t;
  fail_trace : Expected.t;
  mutable tables : SSet.t SMap.t;
  mutable version : int;
  stats : Stats.t;
  table_memo : (int, int * Value.t * int * int) Hashtbl.t;
  (* key = pos * nslots + slot; value = (consumed or -1, value, version,
     examined extent), offsets relative to pos — the closure engine's
     encoding exactly *)
  arena : Memo_arena.t;  (* chunk storage; a cold dummy when unused *)
  mutable examined : int;
  (* farthest input position the current memoized invocation has looked
     at; saved in the return entry (s_depth slot) and max-merged back *)
  (* resource governor; counted at the same points as the closure
     engine so both back ends trip the same limit on the same input *)
  mutable fuel : int;  (* remaining invocation budget, counts down *)
  mutable depth : int;  (* live invocation nesting, inlined included *)
  max_depth : int;
  memo_limit : int;
  mutable memo_bytes : int;
  mutable tripped : (Limits.which * int) option;
  mutable quiet : int;  (* predicate-body nesting; suppresses recording *)
  (* the unified backtrack/call stack, as parallel arrays. Tag and
     address are packed into one unboxed int per entry —
     [(addr lsl 3) lor tag] — so the hottest push/pop paths touch one
     array fewer; the arrays live in a pooled [scratch], preallocated
     and reused across runs. *)
  mutable s_code : int array;  (* packed tag + resume/return address *)
  mutable s_pos : int array;  (* saved offset / call-site offset *)
  mutable s_aux0 : int array;  (* frame height / state version at entry *)
  mutable s_aux1 : int array;  (* top-frame part count / production id *)
  mutable s_depth : int array;  (* governor depth at entry (backtrack) *)
  mutable s_tables : SSet.t SMap.t array;
  mutable sp : int;
  (* the value-frame stack: open sequences, repetitions and marks.
     Collected parts live on one flat stack ([p_label]/[p_value]); a
     frame only remembers its input offset and the parts height at
     entry, so discarding a frame on backtrack is O(1). *)
  mutable f_start : int array;
  mutable f_base : int array;
  mutable fp : int;
  mutable p_label : string option array;
  mutable p_value : Value.t array;
  mutable p_top : int;
}

(* Raised when a budget runs out; [st.tripped] carries which and where.
   Aborts the whole run — backtracking would keep spending a budget
   that is already gone. *)
exception Exhausted

let grow_int a = let b = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 b 0 (Array.length a); b

let grow_any dummy a = let b = Array.make (2 * Array.length a) dummy in
  Array.blit a 0 b 0 (Array.length a); b

let ensure_stack st =
  if st.sp = Array.length st.s_code then (
    st.s_code <- grow_int st.s_code;
    st.s_pos <- grow_int st.s_pos;
    st.s_aux0 <- grow_int st.s_aux0;
    st.s_aux1 <- grow_int st.s_aux1;
    st.s_depth <- grow_int st.s_depth;
    st.s_tables <- grow_any SMap.empty st.s_tables)

let ensure_frames st =
  if st.fp = Array.length st.f_start then (
    st.f_start <- grow_int st.f_start;
    st.f_base <- grow_int st.f_base)

let ensure_parts st =
  if st.p_top = Array.length st.p_value then (
    st.p_label <- grow_any None st.p_label;
    st.p_value <- grow_any Value.Unit st.p_value)

let push_part st label v =
  ensure_parts st;
  let top = st.p_top in
  Array.unsafe_set st.p_label top label;
  Array.unsafe_set st.p_value top v;
  st.p_top <- top + 1

(* The parts collected on top of [base], oldest first, as the list the
   [Value] constructors consume. *)
let parts_above st base =
  let rec build i acc =
    if i < base then acc
    else build (i - 1) ((Array.unsafe_get st.p_label i, Array.unsafe_get st.p_value i) :: acc)
  in
  let parts = build (st.p_top - 1) [] in
  (* release the stack slots so the values don't outlive the frame *)
  Array.fill st.p_value base (st.p_top - base) Value.Unit;
  st.p_top <- base;
  parts

let push_bt st tag addr =
  ensure_stack st;
  let sp = st.sp in
  Array.unsafe_set st.s_code sp ((addr lsl 3) lor tag);
  Array.unsafe_set st.s_pos sp st.pos;
  Array.unsafe_set st.s_aux0 sp st.fp;
  Array.unsafe_set st.s_aux1 sp st.p_top;
  Array.unsafe_set st.s_depth sp st.depth;
  Array.unsafe_set st.s_tables sp st.tables;
  st.sp <- sp + 1;
  if st.sp > st.stats.Stats.vm_stack_peak then
    st.stats.Stats.vm_stack_peak <- st.sp

(* Return entries never restore the state tables (the backtrack entry
   below them does), so they skip the snapshot write entirely. A body is
   about to run, so the depth budget is checked here — the exact point
   the closure engine checks before descending into a body. The caller's
   examined extent is parked in the otherwise-unused [s_depth] slot and
   the register reset, so the callee measures its own extent; the
   matching return (or the failure path) max-merges it back. *)
let push_ret st ~tag ~ret ~prod =
  if st.depth >= st.max_depth then (
    st.tripped <- Some (Limits.Depth, st.pos);
    raise Exhausted);
  st.depth <- st.depth + 1;
  ensure_stack st;
  let sp = st.sp in
  Array.unsafe_set st.s_code sp ((ret lsl 3) lor tag);
  Array.unsafe_set st.s_pos sp st.pos;
  Array.unsafe_set st.s_aux0 sp st.version;
  Array.unsafe_set st.s_aux1 sp prod;
  Array.unsafe_set st.s_depth sp st.examined;
  st.examined <- st.pos - 1;
  st.sp <- sp + 1;
  if st.sp > st.stats.Stats.vm_stack_peak then
    st.stats.Stats.vm_stack_peak <- st.sp

(* The marker entry of an observed inlined body: carries only the
   production id and entry position the exit event needs. It restores
   nothing — the governor brackets and the enclosing backtrack entry
   own that — so the unused slots are cleared, not snapshotted. *)
let push_obs st prod =
  ensure_stack st;
  let sp = st.sp in
  Array.unsafe_set st.s_code sp tag_obs_inline;
  Array.unsafe_set st.s_pos sp st.pos;
  Array.unsafe_set st.s_aux0 sp 0;
  Array.unsafe_set st.s_aux1 sp prod;
  Array.unsafe_set st.s_depth sp 0;
  Array.unsafe_set st.s_tables sp SMap.empty;
  st.sp <- sp + 1;
  if st.sp > st.stats.Stats.vm_stack_peak then
    st.stats.Stats.vm_stack_peak <- st.sp

let push_frame st =
  ensure_frames st;
  let fp = st.fp in
  Array.unsafe_set st.f_start fp st.pos;
  Array.unsafe_set st.f_base fp st.p_top;
  st.fp <- fp + 1

(* Restore the state tables to a snapshot; a physical change bumps the
   version so that memo entries of stateful productions stop matching. *)
let restore_tables st saved =
  if st.tables != saved then (
    st.tables <- saved;
    st.version <- st.version + 1;
    st.stats.Stats.state_snapshots <- st.stats.Stats.state_snapshots + 1)

(* Rewind the frame stack to a backtrack entry's snapshot: discard
   frames opened since and the parts they collected. *)
let rewind_frames st fh ptop =
  if st.p_top > ptop then (
    Array.fill st.p_value ptop (st.p_top - ptop) Value.Unit
    (* release values eagerly *);
    st.p_top <- ptop);
  st.fp <- fh

(* --- the interpreter ------------------------------------------------------ *)

let exec (t : t) (st : st) start_ip =
  let code = t.code in
  let stats = st.stats in
  let inp = st.input in
  let len = st.len in
  let entries = t.entries in
  let nslots = t.nslots in
  let shapes = t.shapes in
  let shaped_value prod pos0 =
    match Array.unsafe_get shapes prod with
    | Shape_plain -> st.value
    | Shape_generic name ->
        Value.node
          ~span:(Span.v ~start_:pos0 ~stop:st.pos)
          name
          (Value.components st.value)
    | Shape_text -> Value.Str (Input.sub_string inp pos0 (st.pos - pos0))
    | Shape_void -> Value.Unit
  in
  let apply_shape prod pos0 =
    match Array.unsafe_get shapes prod with
    | Shape_plain -> ()
    | _ -> st.value <- shaped_value prod pos0
  in
  let trace = st.trace in
  (* The observation sink; [Observe.null] only stands in for the
     typechecker — the [IObs*] instructions that reach for it are never
     emitted without a real sink, and the unobserved hot path never
     touches it. *)
  let observed = t.obs <> None in
  let o = match t.obs with Some o -> o | None -> Observe.null in
  let record pos desc =
    if trace && st.quiet = 0 then Expected.record st.fail_trace pos desc
  in
  (* Note that position [p] was examined (end-of-input checks count, so
     [p] may equal [len]). Never suppressed by [quiet], never rewound on
     backtracking — the closure engine's [look] exactly. *)
  let look p = if p > st.examined then st.examined <- p in
  let charge_fuel () =
    st.fuel <- st.fuel - 1;
    if st.fuel < 0 then (
      st.tripped <- Some (Limits.Fuel, st.pos);
      raise Exhausted)
  in
  (* Store a memoized failure for a production whose body just failed;
     [pos0]/[ver0] come from its return entry. Subject to the memo
     budget exactly like the success-path stores. *)
  let store_failure prod pos0 ver0 ext =
    let slot = t.slots.(prod) in
    if slot >= 0 then
      match t.cfg.Config.memo with
      | Config.No_memo -> ()
      | Config.Hashtable ->
          if st.memo_bytes + Limits.table_entry_cost > st.memo_limit then
            stats.Stats.memo_degraded <- stats.Stats.memo_degraded + 1
          else (
            st.memo_bytes <- st.memo_bytes + Limits.table_entry_cost;
            Hashtbl.replace st.table_memo
              ((pos0 * t.nslots) + slot)
              (-1, Value.Unit, ver0, ext);
            stats.Stats.memo_stores <- stats.Stats.memo_stores + 1)
      | Config.Chunked ->
          let a = st.arena in
          let c = a.Memo_arena.idx.(pos0) in
          if c >= 0 then (
            let base = (c * nslots) + slot in
            a.Memo_arena.res.(base) <- -1;
            a.Memo_arena.vers.(base) <- ver0;
            a.Memo_arena.exts.(base) <- ext;
            if ext > a.Memo_arena.cmax.(c) then a.Memo_arena.cmax.(c) <- ext;
            stats.Stats.memo_stores <- stats.Stats.memo_stores + 1)
          else
            (* the memo budget denied this position a chunk *)
            stats.Stats.memo_degraded <- stats.Stats.memo_degraded + 1
  in
  let chunk_cost = Limits.chunk_cost ~value_slots:t.nvslots t.nslots in
  (* Returns the chunk id for [pos], claiming one from the arena on
     first visit — budget charges and stats exactly as when chunks were
     boxed records; -1 when the memo budget denies the claim. *)
  let chunk_at pos =
    let a = st.arena in
    let c = a.Memo_arena.idx.(pos) in
    if c >= 0 then c
    else if st.memo_bytes + chunk_cost > st.memo_limit then -1
    else (
      let c = Memo_arena.alloc a pos in
      st.memo_bytes <- st.memo_bytes + chunk_cost;
      stats.Stats.chunks_allocated <- stats.Stats.chunks_allocated + 1;
      stats.Stats.chunk_slots <- stats.Stats.chunk_slots + t.nslots;
      c)
  in
  (* Failure: pop the unified stack to the nearest backtrack entry,
     memoizing the failure of every production frame crossed, then
     resume at the entry's handler. Returns -1 when the stack drains —
     the start production itself failed. *)
  let rec fail () =
    if st.sp = 0 then -1
    else (
      st.sp <- st.sp - 1;
      let sp = st.sp in
      let sc = Array.unsafe_get st.s_code sp in
      let tag = sc land 7 in
      if tag = tag_obs_inline then (
        (* an observed inlined body is failing: close its frame exactly
           where the un-inlined call's return entry would have *)
        Observe.exit o
          (Array.unsafe_get st.s_aux1 sp)
          (Array.unsafe_get st.s_pos sp)
          ~stop:(-1);
        fail ())
      else if tag >= tag_ret then (
        (* lean calls to value-carrying slots never store — the closure
           engine's recognizers don't either, and the memo tables must
           evolve identically for the budgets to trip at the same
           point. Lean calls to value-free slots pushed [tag_ret] and
           so store their failures here like any full call. *)
        let pos0 = Array.unsafe_get st.s_pos sp in
        if tag = tag_ret || tag = tag_ret_obs then
          store_failure
            (Array.unsafe_get st.s_aux1 sp)
            pos0
            (Array.unsafe_get st.s_aux0 sp)
            (st.examined - pos0 + 1);
        look (Array.unsafe_get st.s_depth sp);
        if tag >= tag_ret_obs then
          Observe.exit o (Array.unsafe_get st.s_aux1 sp) pos0 ~stop:(-1);
        fail ())
      else (
        let snapshot = Array.unsafe_get st.s_tables sp in
        Array.unsafe_set st.s_tables sp SMap.empty
        (* drop the retained reference *);
        if tag = tag_bt_alt then (
          stats.Stats.backtracks <- stats.Stats.backtracks + 1;
          if observed then
            Observe.backtrack o (Array.unsafe_get st.s_pos sp));
        st.pos <- Array.unsafe_get st.s_pos sp;
        st.depth <- Array.unsafe_get st.s_depth sp;
        restore_tables st snapshot;
        rewind_frames st
          (Array.unsafe_get st.s_aux0 sp)
          (Array.unsafe_get st.s_aux1 sp);
        dispatch (sc asr 3)))
  and dispatch ip =
    stats.Stats.vm_instructions <- stats.Stats.vm_instructions + 1;
    match Array.unsafe_get code ip with
    | IChar (c, desc, set_unit) ->
        look st.pos;
        if st.pos < len && Input.unsafe_get inp st.pos = c then (
          if set_unit then st.value <- Value.Unit;
          st.pos <- st.pos + 1;
          dispatch (ip + 1))
        else (
          record st.pos desc;
          fail ())
    | IStr (s, desc, set_unit) ->
        (* Representation match hoisted out of the per-byte loop so each
           iteration stays a monomorphic compare, as before Input.t.
           Iterative (not a local [let rec]) on purpose: a recursive
           closure capturing the input would be allocated on every
           execution — the one lean-path allocation the VM had. The
           counter ref stays unboxed, as in ISpan. *)
        let n = String.length s in
        let pos0 = st.pos in
        let i = ref 0 in
        (match inp with
        | Input.Str text ->
            while
              !i < n
              && (look (pos0 + !i);
                  pos0 + !i < len
                  && String.unsafe_get text (pos0 + !i)
                     = String.unsafe_get s !i)
            do
              incr i
            done
        | Input.Big b ->
            while
              !i < n
              && (look (pos0 + !i);
                  pos0 + !i < len
                  && Bigarray.Array1.unsafe_get b (pos0 + !i)
                     = String.unsafe_get s !i)
            do
              incr i
            done);
        let matched = !i in
        if matched >= n then (
          if set_unit then st.value <- Value.Unit;
          st.pos <- st.pos + n;
          dispatch (ip + 1))
        else (
          (* Record failures at the first mismatching byte, so the
             farthest position reflects how much of the literal
             matched. *)
          record (st.pos + matched) desc;
          fail ())
    | ISet (bm, desc, set_value) ->
        look st.pos;
        if st.pos < len then (
          let c = Input.unsafe_get inp st.pos in
          if bitmap_mem bm c then (
            if set_value then st.value <- Value.Chr c;
            st.pos <- st.pos + 1;
            dispatch (ip + 1))
          else (
            record st.pos desc;
            fail ()))
        else (
          record st.pos desc;
          fail ())
    | IAny (desc, set_value) ->
        look st.pos;
        if st.pos < len then (
          if set_value then
            st.value <- Value.Chr (Input.unsafe_get inp st.pos);
          st.pos <- st.pos + 1;
          dispatch (ip + 1))
        else (
          record st.pos desc;
          fail ())
    | ITestSet (bm, target, desc) ->
        look st.pos;
        if st.pos < len && bitmap_mem bm (Input.unsafe_get inp st.pos)
        then dispatch (ip + 1)
        else (
          record st.pos desc;
          dispatch target)
    | ISpan (bm, desc) ->
        let i = ref st.pos in
        (match inp with
        | Input.Str text ->
            while !i < len && bitmap_mem bm (String.unsafe_get text !i) do
              incr i
            done
        | Input.Big b ->
            while !i < len && bitmap_mem bm (Bigarray.Array1.unsafe_get b !i) do
              incr i
            done);
        look !i;
        st.pos <- !i;
        (* the iteration that stops the loop fails like the unfused
           body would: it records its expected set where it stopped *)
        record !i desc;
        dispatch (ip + 1)
    | ITestNot (bm, not_desc) ->
        look st.pos;
        if st.pos < len && bitmap_mem bm (Input.unsafe_get inp st.pos)
        then (
          record st.pos not_desc;
          fail ())
        else
          (* the body's failure is what makes the predicate succeed;
             like any predicate-body failure it records nothing *)
          dispatch (ip + 1)
    | ITestAnd (bm, desc) ->
        look st.pos;
        if st.pos < len && bitmap_mem bm (Input.unsafe_get inp st.pos)
        then dispatch (ip + 1)
        else (
          record st.pos desc;
          fail ())
    | IQuiet on ->
        st.quiet <- (st.quiet + if on then 1 else -1);
        dispatch (ip + 1)
    | IDispatch (tbl, targets, eof) ->
        if trace then dispatch (ip + 1)
          (* replay through the test chain to record expected sets *)
        else if (look st.pos; st.pos < len) then
          dispatch
            (Array.unsafe_get targets
               (Char.code
                  (Bytes.unsafe_get tbl
                     (Char.code (Input.unsafe_get inp st.pos)))))
        else dispatch eof
    | IJump target -> dispatch target
    | IChoice (handler, is_alt) ->
        push_bt st (if is_alt then tag_bt_alt else tag_bt) handler;
        dispatch (ip + 1)
    | ICommit target ->
        st.sp <- st.sp - 1;
        Array.unsafe_set st.s_tables st.sp SMap.empty;
        dispatch target
    | IStarStep (loop, append) ->
        let sp = st.sp - 1 in
        if st.pos = Array.unsafe_get st.s_pos sp then (
          (* no progress: stop iterating, keep the state as committed *)
          st.sp <- sp;
          Array.unsafe_set st.s_tables sp SMap.empty;
          dispatch (ip + 1))
        else (
          if append then push_part st None st.value;
          Array.unsafe_set st.s_pos sp st.pos;
          Array.unsafe_set st.s_tables sp st.tables;
          Array.unsafe_set st.s_aux1 sp st.p_top;
          dispatch loop)
    | IBackCommit target ->
        st.sp <- st.sp - 1;
        let sp = st.sp in
        st.pos <- st.s_pos.(sp);
        st.depth <- st.s_depth.(sp);
        restore_tables st st.s_tables.(sp);
        st.s_tables.(sp) <- SMap.empty;
        rewind_frames st st.s_aux0.(sp) st.s_aux1.(sp);
        dispatch target
    | IFailTwice desc ->
        st.sp <- st.sp - 1;
        let sp = st.sp in
        st.pos <- st.s_pos.(sp);
        st.depth <- st.s_depth.(sp);
        restore_tables st st.s_tables.(sp);
        st.s_tables.(sp) <- SMap.empty;
        rewind_frames st st.s_aux0.(sp) st.s_aux1.(sp);
        record st.pos desc;
        fail ()
    | IFail desc ->
        (match desc with Some d -> record st.pos d | None -> ());
        fail ()
    | ICall (prod, lean) ->
        stats.Stats.invocations <- stats.Stats.invocations + 1;
        charge_fuel ();
        push_ret st ~tag:(if lean then tag_ret_lean else tag_ret) ~ret:(ip + 1)
          ~prod;
        dispatch (Array.unsafe_get entries prod)
    | ICallChunk (prod, slot, vslot, stateful, lean) ->
        stats.Stats.invocations <- stats.Stats.invocations + 1;
        charge_fuel ();
        (* Lean calls to a production whose slot carries a value read
           existing memo entries but never allocate a chunk (nor store
           on return) — a recognizer result has no value to store.
           Value-free slots ([vslot < 0]) have nothing to lose: lean
           calls to those run the whole memo protocol, allocation and
           stores included. The closure engine's recognizer entries
           make the identical decision off the same vmap, so the memo
           tables — and with them the budgets — keep evolving in
           lockstep. *)
        let lean = lean && vslot >= 0 in
        let a = st.arena in
        let c =
          if lean then Array.unsafe_get a.Memo_arena.idx st.pos
          else chunk_at st.pos
        in
        let base = if c >= 0 then (c * nslots) + slot else 0 in
        let hit =
          if c >= 0 then (
            let r = Array.unsafe_get a.Memo_arena.res base in
            if
              r <> 0
              && ((not stateful)
                 || Array.unsafe_get a.Memo_arena.vers base = st.version)
            then r
            else 0)
          else 0
        in
        if hit <> 0 then (
          stats.Stats.memo_hits <- stats.Stats.memo_hits + 1;
          look (st.pos + Array.unsafe_get a.Memo_arena.exts base - 1);
          if hit > 0 then (
            if not lean then
              st.value <-
                (if vslot >= 0 then
                   Array.unsafe_get a.Memo_arena.vals
                     ((c * t.nvslots) + vslot)
                 else Value.Unit);
            st.pos <- st.pos + hit - 1;
            dispatch (ip + 1))
          else fail ())
        else (
          stats.Stats.memo_misses <- stats.Stats.memo_misses + 1;
          push_ret st ~tag:(if lean then tag_ret_lean else tag_ret)
            ~ret:(ip + 1) ~prod;
          dispatch (Array.unsafe_get entries prod))
    | ICallTbl (prod, slot, stateful, lean) -> (
        stats.Stats.invocations <- stats.Stats.invocations + 1;
        charge_fuel ();
        let key = (st.pos * nslots) + slot in
        match Hashtbl.find_opt st.table_memo key with
        | Some (r, v, ver, ext) when (not stateful) || ver = st.version ->
            stats.Stats.memo_hits <- stats.Stats.memo_hits + 1;
            look (st.pos + ext - 1);
            if r >= 0 then (
              if not lean then st.value <- v;
              st.pos <- st.pos + r;
              dispatch (ip + 1))
            else fail ()
        | _ ->
            stats.Stats.memo_misses <- stats.Stats.memo_misses + 1;
            push_ret st ~tag:(if lean then tag_ret_lean else tag_ret)
              ~ret:(ip + 1) ~prod;
            dispatch (Array.unsafe_get entries prod))
    | IRet ->
        st.sp <- st.sp - 1;
        st.depth <- st.depth - 1;
        let sp = st.sp in
        let sc = Array.unsafe_get st.s_code sp in
        if sc land 7 = tag_ret then
          apply_shape (Array.unsafe_get st.s_aux1 sp)
            (Array.unsafe_get st.s_pos sp);
        look (Array.unsafe_get st.s_depth sp);
        dispatch (sc asr 3)
    | IRetChunk (slot, vslot) ->
        st.sp <- st.sp - 1;
        st.depth <- st.depth - 1;
        let sp = st.sp in
        let sc = Array.unsafe_get st.s_code sp in
        (if sc land 7 = tag_ret then (
           let pos0 = Array.unsafe_get st.s_pos sp in
           let v = shaped_value (Array.unsafe_get st.s_aux1 sp) pos0 in
           let a = st.arena in
           let c = Array.unsafe_get a.Memo_arena.idx pos0 in
           (if c >= 0 then (
              let base = (c * nslots) + slot in
              Array.unsafe_set a.Memo_arena.res base (st.pos - pos0 + 1);
              if vslot >= 0 then
                Array.unsafe_set a.Memo_arena.vals
                  ((c * t.nvslots) + vslot)
                  v;
              Array.unsafe_set a.Memo_arena.vers base
                (Array.unsafe_get st.s_aux0 sp);
              let ext = st.examined - pos0 + 1 in
              Array.unsafe_set a.Memo_arena.exts base ext;
              if ext > Array.unsafe_get a.Memo_arena.cmax c then
                Array.unsafe_set a.Memo_arena.cmax c ext;
              stats.Stats.memo_stores <- stats.Stats.memo_stores + 1)
            else
              (* the memo budget denied this position a chunk *)
              stats.Stats.memo_degraded <- stats.Stats.memo_degraded + 1);
           st.value <- v));
        look (Array.unsafe_get st.s_depth sp);
        dispatch (sc asr 3)
    | IRetTbl slot ->
        st.sp <- st.sp - 1;
        st.depth <- st.depth - 1;
        let sp = st.sp in
        let sc = Array.unsafe_get st.s_code sp in
        (if sc land 7 = tag_ret then (
           let pos0 = Array.unsafe_get st.s_pos sp in
           let v = shaped_value (Array.unsafe_get st.s_aux1 sp) pos0 in
           (if st.memo_bytes + Limits.table_entry_cost > st.memo_limit then
              stats.Stats.memo_degraded <- stats.Stats.memo_degraded + 1
            else (
              st.memo_bytes <- st.memo_bytes + Limits.table_entry_cost;
              Hashtbl.replace st.table_memo
                ((pos0 * nslots) + slot)
                ( st.pos - pos0,
                  v,
                  Array.unsafe_get st.s_aux0 sp,
                  st.examined - pos0 + 1 );
              stats.Stats.memo_stores <- stats.Stats.memo_stores + 1));
           st.value <- v));
        look (Array.unsafe_get st.s_depth sp);
        dispatch (sc asr 3)
    (* Observed twins. Each mirrors its plain form exactly — the same
       counter bumps, fuel charges, memo traffic and value writes, in
       the same order — with the profiler frame opened before the fuel
       charge (so a trip leaves the doomed invocation in the ring) and
       the exit or memo-hit event pushed where the plain form returns.
       The closure engine's per-production wrappers bracket at the same
       points, which is what makes event streams comparable. *)
    | IObsCall (prod, lean) ->
        Observe.enter o prod st.pos;
        stats.Stats.invocations <- stats.Stats.invocations + 1;
        charge_fuel ();
        push_ret st
          ~tag:(if lean then tag_ret_lean_obs else tag_ret_obs)
          ~ret:(ip + 1) ~prod;
        dispatch (Array.unsafe_get entries prod)
    | IObsCallChunk (prod, slot, vslot, stateful, lean) ->
        let pos0 = st.pos in
        Observe.enter o prod pos0;
        stats.Stats.invocations <- stats.Stats.invocations + 1;
        charge_fuel ();
        (* value-free slots take the storing path even when called
           lean — see [ICallChunk] *)
        let lean = lean && vslot >= 0 in
        let a = st.arena in
        let c =
          if lean then Array.unsafe_get a.Memo_arena.idx pos0
          else chunk_at pos0
        in
        let base = if c >= 0 then (c * nslots) + slot else 0 in
        let hit =
          if c >= 0 then (
            let r = Array.unsafe_get a.Memo_arena.res base in
            if
              r <> 0
              && ((not stateful)
                 || Array.unsafe_get a.Memo_arena.vers base = st.version)
            then r
            else 0)
          else 0
        in
        if hit <> 0 then (
          stats.Stats.memo_hits <- stats.Stats.memo_hits + 1;
          look (pos0 + Array.unsafe_get a.Memo_arena.exts base - 1);
          if hit > 0 then (
            (if not lean then
               st.value <-
                 (if vslot >= 0 then
                    Array.unsafe_get a.Memo_arena.vals
                      ((c * t.nvslots) + vslot)
                  else Value.Unit));
            st.pos <- pos0 + hit - 1;
            Observe.memo_hit o prod pos0 ~stop:st.pos;
            dispatch (ip + 1))
          else (
            Observe.memo_hit o prod pos0 ~stop:(-1);
            fail ()))
        else (
          stats.Stats.memo_misses <- stats.Stats.memo_misses + 1;
          push_ret st
            ~tag:(if lean then tag_ret_lean_obs else tag_ret_obs)
            ~ret:(ip + 1) ~prod;
          dispatch (Array.unsafe_get entries prod))
    | IObsCallTbl (prod, slot, stateful, lean) -> (
        let pos0 = st.pos in
        Observe.enter o prod pos0;
        stats.Stats.invocations <- stats.Stats.invocations + 1;
        charge_fuel ();
        let key = (pos0 * nslots) + slot in
        match Hashtbl.find_opt st.table_memo key with
        | Some (r, v, ver, ext) when (not stateful) || ver = st.version ->
            stats.Stats.memo_hits <- stats.Stats.memo_hits + 1;
            look (pos0 + ext - 1);
            if r >= 0 then (
              if not lean then st.value <- v;
              st.pos <- pos0 + r;
              Observe.memo_hit o prod pos0 ~stop:st.pos;
              dispatch (ip + 1))
            else (
              Observe.memo_hit o prod pos0 ~stop:(-1);
              fail ())
        | _ ->
            stats.Stats.memo_misses <- stats.Stats.memo_misses + 1;
            push_ret st
              ~tag:(if lean then tag_ret_lean_obs else tag_ret_obs)
              ~ret:(ip + 1) ~prod;
            dispatch (Array.unsafe_get entries prod))
    | IObsRet ->
        st.sp <- st.sp - 1;
        st.depth <- st.depth - 1;
        let sp = st.sp in
        let sc = Array.unsafe_get st.s_code sp in
        let prod = Array.unsafe_get st.s_aux1 sp in
        let pos0 = Array.unsafe_get st.s_pos sp in
        if sc land 7 = tag_ret_obs then apply_shape prod pos0;
        look (Array.unsafe_get st.s_depth sp);
        Observe.exit o prod pos0 ~stop:st.pos;
        dispatch (sc asr 3)
    | IObsRetChunk (slot, vslot) ->
        st.sp <- st.sp - 1;
        st.depth <- st.depth - 1;
        let sp = st.sp in
        let sc = Array.unsafe_get st.s_code sp in
        let prod = Array.unsafe_get st.s_aux1 sp in
        let pos0 = Array.unsafe_get st.s_pos sp in
        (if sc land 7 = tag_ret_obs then (
           let v = shaped_value prod pos0 in
           let a = st.arena in
           let c = Array.unsafe_get a.Memo_arena.idx pos0 in
           (if c >= 0 then (
              let base = (c * nslots) + slot in
              Array.unsafe_set a.Memo_arena.res base (st.pos - pos0 + 1);
              if vslot >= 0 then
                Array.unsafe_set a.Memo_arena.vals
                  ((c * t.nvslots) + vslot)
                  v;
              Array.unsafe_set a.Memo_arena.vers base
                (Array.unsafe_get st.s_aux0 sp);
              let ext = st.examined - pos0 + 1 in
              Array.unsafe_set a.Memo_arena.exts base ext;
              if ext > Array.unsafe_get a.Memo_arena.cmax c then
                Array.unsafe_set a.Memo_arena.cmax c ext;
              stats.Stats.memo_stores <- stats.Stats.memo_stores + 1)
            else stats.Stats.memo_degraded <- stats.Stats.memo_degraded + 1);
           st.value <- v));
        look (Array.unsafe_get st.s_depth sp);
        Observe.exit o prod pos0 ~stop:st.pos;
        dispatch (sc asr 3)
    | IObsRetTbl slot ->
        st.sp <- st.sp - 1;
        st.depth <- st.depth - 1;
        let sp = st.sp in
        let sc = Array.unsafe_get st.s_code sp in
        let prod = Array.unsafe_get st.s_aux1 sp in
        let pos0 = Array.unsafe_get st.s_pos sp in
        (if sc land 7 = tag_ret_obs then (
           let v = shaped_value prod pos0 in
           (if st.memo_bytes + Limits.table_entry_cost > st.memo_limit then
              stats.Stats.memo_degraded <- stats.Stats.memo_degraded + 1
            else (
              st.memo_bytes <- st.memo_bytes + Limits.table_entry_cost;
              Hashtbl.replace st.table_memo
                ((pos0 * nslots) + slot)
                ( st.pos - pos0,
                  v,
                  Array.unsafe_get st.s_aux0 sp,
                  st.examined - pos0 + 1 );
              stats.Stats.memo_stores <- stats.Stats.memo_stores + 1));
           st.value <- v));
        look (Array.unsafe_get st.s_depth sp);
        Observe.exit o prod pos0 ~stop:st.pos;
        dispatch (sc asr 3)
    | IObsEnter prod ->
        Observe.enter o prod st.pos;
        push_obs st prod;
        dispatch (ip + 1)
    | IObsLeave ->
        st.sp <- st.sp - 1;
        let sp = st.sp in
        Observe.exit o
          (Array.unsafe_get st.s_aux1 sp)
          (Array.unsafe_get st.s_pos sp)
          ~stop:st.pos;
        dispatch (ip + 1)
    | IObsAlt (arm, matched) ->
        if matched then Observe.alt_matched o arm else Observe.alt_tried o arm;
        dispatch (ip + 1)
    | IOptSet (bm, desc, mode) ->
        look st.pos;
        if st.pos < len && bitmap_mem bm (Input.unsafe_get inp st.pos) then (
          (match mode with
          | 0 -> ()
          | 1 -> st.value <- Value.Unit
          | _ -> st.value <- Value.Chr (Input.unsafe_get inp st.pos));
          st.pos <- st.pos + 1;
          dispatch (ip + 1))
        else (
          record st.pos desc;
          if mode <> 0 then st.value <- Value.Unit;
          dispatch (ip + 1))
    | IHalt -> st.pos
    | IGovern ->
        (* Inlined production body: charge exactly what an ICall to the
           un-inlined production would have charged, so fuel and depth
           accounting agree with the closure engine instruction for
           instruction. *)
        stats.Stats.invocations <- stats.Stats.invocations + 1;
        charge_fuel ();
        if st.depth >= st.max_depth then (
          st.tripped <- Some (Limits.Depth, st.pos);
          raise Exhausted);
        st.depth <- st.depth + 1;
        dispatch (ip + 1)
    | ILeave ->
        st.depth <- st.depth - 1;
        dispatch (ip + 1)
    | ISetUnit ->
        st.value <- Value.Unit;
        dispatch (ip + 1)
    | IPushMark ->
        push_frame st;
        dispatch (ip + 1)
    | IAppend label ->
        (match (label, st.value) with
        | None, Value.Unit -> ()
        | _ -> push_part st label st.value);
        dispatch (ip + 1)
    | IAppendSplice ->
        List.iter (fun (l, v) -> push_part st l v) (tail_parts st.value);
        dispatch (ip + 1)
    | IAppendList ->
        push_part st None st.value;
        dispatch (ip + 1)
    | IPopSeq ->
        st.fp <- st.fp - 1;
        let fp = st.fp in
        st.value <-
          Value.seq
            ~span:(Span.v ~start_:st.f_start.(fp) ~stop:st.pos)
            (parts_above st st.f_base.(fp));
        dispatch (ip + 1)
    | IPopTail ->
        st.fp <- st.fp - 1;
        let fp = st.fp in
        st.value <-
          Value.node
            ~span:(Span.v ~start_:st.f_start.(fp) ~stop:st.pos)
            tail_name
            (parts_above st st.f_base.(fp));
        dispatch (ip + 1)
    | IPopTail1 label ->
        st.fp <- st.fp - 1;
        let fp = st.fp in
        st.value <-
          Value.node
            ~span:(Span.v ~start_:st.f_start.(fp) ~stop:st.pos)
            tail_name
            (match (label, st.value) with
            | None, Value.Unit -> []
            | _ -> [ (label, st.value) ]);
        dispatch (ip + 1)
    | IPopList ->
        st.fp <- st.fp - 1;
        let fp = st.fp in
        st.value <- Value.List (List.map snd (parts_above st st.f_base.(fp)));
        dispatch (ip + 1)
    | IPopToken ->
        st.fp <- st.fp - 1;
        let fp = st.fp in
        st.value <-
          Value.Str (Input.sub_string inp st.f_start.(fp) (st.pos - st.f_start.(fp)));
        dispatch (ip + 1)
    | IPopNode name ->
        st.fp <- st.fp - 1;
        let fp = st.fp in
        st.value <-
          Value.node
            ~span:(Span.v ~start_:st.f_start.(fp) ~stop:st.pos)
            name
            (Value.components st.value);
        dispatch (ip + 1)
    | IWrapBind label ->
        st.value <- Value.seq [ (Some label, st.value) ];
        dispatch (ip + 1)
    | ISpliceCollapse ->
        st.value <- Value.seq (tail_parts st.value);
        dispatch (ip + 1)
    | IRecord table ->
        st.fp <- st.fp - 1;
        let start = st.f_start.(st.fp) in
        let text = Input.sub_string inp start (st.pos - start) in
        let set =
          Option.value (SMap.find_opt table st.tables) ~default:SSet.empty
        in
        st.tables <- SMap.add table (SSet.add text set) st.tables;
        st.version <- st.version + 1;
        dispatch (ip + 1)
    | IMember (table, positive, desc) ->
        st.fp <- st.fp - 1;
        let start = st.f_start.(st.fp) in
        let text = Input.sub_string inp start (st.pos - start) in
        let set =
          Option.value (SMap.find_opt table st.tables) ~default:SSet.empty
        in
        if SSet.mem text set = positive then dispatch (ip + 1)
        else (
          record start desc;
          fail ())
  in
  dispatch start_ip

(* --- running -------------------------------------------------------------- *)

type outcome = {
  result : (Value.t, Parse_error.t) result;
  stats : Stats.t;
  consumed : int;
}

(* A persistent memo store for incremental sessions; mirrors the
   closure engine's [cstore] field for field. *)
type store = {
  v_arena : Memo_arena.t;  (* owned chunk storage, recycled across reparses *)
  v_table : (int, int * Value.t * int * int) Hashtbl.t;
  mutable v_bytes : int;
  mutable v_len : int;  (* input length of the entries; -1 = empty *)
  mutable v_version : int;  (* version counter at the end of the last run *)
}

let new_store (t : t) =
  {
    v_arena = Memo_arena.create ~nslots:t.nslots ~vmap:t.vmap;
    v_table = Hashtbl.create 256;
    v_bytes = 0;
    v_len = -1;
    v_version = 0;
  }

(* Apply an edit to the store — the exact algorithm of the closure
   engine's [edit_cstore]: entries that only examined bytes strictly
   before the damage are kept, entries at or past its end are relocated
   by the length delta (a pointer move, thanks to relative offsets),
   everything else is dropped. Returns (surviving, relocated) counts. *)
let edit_store t (s : store) ~start ~old_len ~new_len =
  let reused = ref 0 and relocated = ref 0 in
  if s.v_len >= 0 then (
    if start < 0 || old_len < 0 || new_len < 0 || start + old_len > s.v_len
    then invalid_arg "Vm.edit_store: edit out of bounds";
    let delta = new_len - old_len in
    (match t.cfg.Config.memo with
    | Config.No_memo -> ()
    | Config.Chunked ->
        let r, l = Memo_arena.edit s.v_arena ~start ~old_len ~new_len in
        reused := r;
        relocated := l;
        s.v_bytes <- r * Limits.chunk_cost ~value_slots:t.nvslots t.nslots
    | Config.Hashtable ->
        if t.nslots > 0 then (
          let entries =
            Hashtbl.fold (fun k e acc -> (k, e) :: acc) s.v_table []
          in
          Hashtbl.reset s.v_table;
          let dmg = start + old_len in
          List.iter
            (fun (key, ((_, _, _, ext) as e)) ->
              let pos = key / t.nslots in
              if pos < start && pos + ext <= start then (
                Hashtbl.replace s.v_table key e;
                incr reused)
              else if pos >= dmg then (
                Hashtbl.replace s.v_table (key + (delta * t.nslots)) e;
                incr reused;
                if delta <> 0 then incr relocated))
            entries;
          s.v_bytes <- Hashtbl.length s.v_table * Limits.table_entry_cost));
    s.v_len <- s.v_len + delta);
  (!reused, !relocated)

(* One preallocated set of run buffers, parked on the program between
   runs ([t.pool]); taking it empties the pool so a reentrant run
   simply allocates a fresh set. *)
let fresh_scratch (t : t) =
  {
    sc_arena = Memo_arena.create ~nslots:t.nslots ~vmap:t.vmap;
    sc_table = Hashtbl.create 1024;
    sc_code = Array.make 256 0;
    sc_pos = Array.make 256 0;
    sc_aux0 = Array.make 256 0;
    sc_aux1 = Array.make 256 0;
    sc_depth = Array.make 256 0;
    sc_tables = Array.make 256 SMap.empty;
    sc_fstart = Array.make 64 0;
    sc_fbase = Array.make 64 0;
    sc_plabel = Array.make 256 None;
    sc_pvalue = Array.make 256 Value.Unit;
  }

let take_scratch (t : t) =
  match t.pool with
  | Some sc ->
      t.pool <- None;
      sc
  | None -> fresh_scratch t

(* The stack arrays are replaced when they grow; write the current
   (largest) ones back so the next run keeps the growth. *)
let stash_stacks (st : st) sc =
  sc.sc_code <- st.s_code;
  sc.sc_pos <- st.s_pos;
  sc.sc_aux0 <- st.s_aux0;
  sc.sc_aux1 <- st.s_aux1;
  sc.sc_depth <- st.s_depth;
  sc.sc_tables <- st.s_tables;
  sc.sc_fstart <- st.f_start;
  sc.sc_fbase <- st.f_base;
  sc.sc_plabel <- st.p_label;
  sc.sc_pvalue <- st.p_value

(* Park the scratch for the next run, dropping every value reference it
   accumulated so pooled buffers never keep parse results alive.
   [own_memo] says the run used the scratch's own memo storage (no
   persistent store): its arena and table must be released too. *)
let release_scratch (t : t) (st : st) sc ~own_memo =
  stash_stacks st sc;
  Array.fill sc.sc_tables 0 (Array.length sc.sc_tables) SMap.empty;
  Array.fill sc.sc_plabel 0 (Array.length sc.sc_plabel) None;
  Array.fill sc.sc_pvalue 0 (Array.length sc.sc_pvalue) Value.Unit;
  if own_memo then (
    Memo_arena.release_values sc.sc_arena;
    (* clear, not reset: keep the grown bucket array *)
    Hashtbl.clear sc.sc_table);
  t.pool <- Some sc

let make_st t ~trace ?store ~scratch:sc input =
  let limits = t.cfg.Config.limits in
  let len = Input.length input in
  (* Sync a persistent store to this input: entries only carry over when
     the store was edited to exactly this length; any mismatch resets
     it rather than risking stale hits. *)
  (match store with
  | None -> ()
  | Some s ->
      let usable =
        s.v_len = len
        &&
        match t.cfg.Config.memo with
        | Config.Chunked -> s.v_arena.Memo_arena.idx_len = len + 1
        | _ -> true
      in
      if not usable then (
        Hashtbl.reset s.v_table;
        (match t.cfg.Config.memo with
        | Config.Chunked -> Memo_arena.reset s.v_arena ~len
        | _ -> ());
        s.v_bytes <- 0;
        s.v_len <- len));
  {
    input;
    len;
    trace;
    pos = 0;
    value = Value.Unit;
    fail_trace = Expected.create ();
    tables = SMap.empty;
    version = (match store with Some s -> s.v_version + 1 | None -> 0);
    stats = Stats.create ();
    fuel = limits.Limits.fuel;
    depth = 0;
    max_depth = limits.Limits.max_depth;
    memo_limit = limits.Limits.max_memo_bytes;
    memo_bytes = (match store with Some s -> s.v_bytes | None -> 0);
    tripped = None;
    quiet = 0;
    table_memo =
      (match store with
      | Some s -> s.v_table
      | None ->
          (* cleared here, not at release, so the traced replay pass
             (which reuses the scratch) also starts cold *)
          if t.cfg.Config.memo = Config.Hashtable then
            Hashtbl.clear sc.sc_table;
          sc.sc_table);
    arena =
      (match store with
      | Some s -> s.v_arena
      | None ->
          if t.cfg.Config.memo = Config.Chunked then
            Memo_arena.reset sc.sc_arena ~len;
          sc.sc_arena);
    examined = -1;
    s_code = sc.sc_code;
    s_pos = sc.sc_pos;
    s_aux0 = sc.sc_aux0;
    s_aux1 = sc.sc_aux1;
    s_depth = sc.sc_depth;
    s_tables = sc.sc_tables;
    sp = 0;
    f_start = sc.sc_fstart;
    f_base = sc.sc_fbase;
    fp = 0;
    p_label = sc.sc_plabel;
    p_value = sc.sc_pvalue;
    p_top = 0;
  }

let resolve_start t start =
  match start with
  | None -> Hashtbl.find t.ids (Grammar.start t.gram)
  | Some name -> (
      match Hashtbl.find_opt t.ids name with
      | Some id -> id
      | None ->
          raise
            (Diagnostic.Fail (Diagnostic.errorf "no production named %S" name)))

(* Run epilogue for an observed program: the govern-trip event (pushed
   here rather than at the raise so [st.tripped]'s clamped position is
   what the ring reports) and profiler-frame cleanup. Off every budget
   by construction — the ring is preallocated. *)
let observe_epilogue (t : t) (st : st) =
  match t.obs with
  | None -> ()
  | Some o ->
      (match st.tripped with
      | Some (which, at) -> Observe.trip o which at
      | None -> ());
      Observe.finalize o

let run_input t ?start ?(require_eof = true) input =
  let start_id = resolve_start t start in
  let limits = t.cfg.Config.limits in
  let observing = t.obs <> None in
  if Input.length input > limits.Limits.max_input_bytes then (
    (match t.obs with
    | Some o -> Observe.trip o Limits.Input limits.Limits.max_input_bytes
    | None -> ());
    {
      result =
        Error
          (Parse_error.resource_exhausted ~which:Limits.Input
             ~at:limits.Limits.max_input_bytes ~consumed:0 ());
      stats = Stats.create ();
      consumed = -1;
    })
  else
    (* Resource trips abort the whole run: backtracking into an
       alternative would keep spending budget already known to be
       exhausted. [Stack_overflow]/[Out_of_memory] are last-resort
       backstops for unlimited configs. *)
    let exec_guarded st =
      try exec t st t.stubs.(start_id) with
      | Exhausted -> -1
      | Stack_overflow ->
          st.tripped <-
            Some (Limits.Depth, max (Expected.farthest st.fail_trace) 0);
          -1
      | Out_of_memory ->
          st.tripped <-
            Some (Limits.Memory, max (Expected.farthest st.fail_trace) 0);
          -1
    in
    (* Speculative first pass with no expected-set recording; replay with
       recording on only when the outcome needs a trace to report. Trips
       are deterministic, so a tripped run re-trips identically on the
       replay pass (which starts from a fresh budget). An observed run
       instead records in a single pass — a replay would push every
       event twice into the ring and double the profile. *)
    let sc = take_scratch t in
    let st = make_st t ~trace:observing ~scratch:sc input in
    let p = exec_guarded st in
    let st, p =
      if (not observing) && (p < 0 || (require_eof && p < st.len)) then (
        (* the replay shares the scratch: carry any stack growth over,
           and [make_st] re-colds the memo so the rerun is exact *)
        stash_stacks st sc;
        let st = make_st t ~trace:true ~scratch:sc input in
        let p = exec_guarded st in
        (st, p))
      else (st, p)
    in
    release_scratch t st sc ~own_memo:true;
    observe_epilogue t st;
    (* clamp: a fuel trip leaves st.fuel at -1; report the budget, not
       budget + 1 *)
    st.stats.Stats.fuel_used <- limits.Limits.fuel - max st.fuel 0;
    let result =
      match st.tripped with
      | Some (which, at) -> Error (Expected.exhausted st.fail_trace ~which ~at)
      | None ->
          Expected.result st.fail_trace ~len:st.len ~require_eof ~stop:p
            st.value
    in
    { result; stats = st.stats; consumed = p }

(* Run against a persistent store: one untraced pass that reads and
   refills the store's memo structures. Expected sets are not
   reconstructed here — an incremental failure's trace would be missing
   the entries hidden behind memo hits, so [Rats.Session] re-parses cold
   for exact error parity instead of replaying through the store. *)
let run_store_input t (s : store) ?start ?(require_eof = true) input =
  let start_id = resolve_start t start in
  let limits = t.cfg.Config.limits in
  if Input.length input > limits.Limits.max_input_bytes then (
    (match t.obs with
    | Some o -> Observe.trip o Limits.Input limits.Limits.max_input_bytes
    | None -> ());
    {
      result =
        Error
          (Parse_error.resource_exhausted ~which:Limits.Input
             ~at:limits.Limits.max_input_bytes ~consumed:0 ());
      stats = Stats.create ();
      consumed = -1;
    })
  else (
    let sc = take_scratch t in
    let st = make_st t ~trace:(t.obs <> None) ~store:s ~scratch:sc input in
    let p =
      try exec t st t.stubs.(start_id) with
      | Exhausted -> -1
      | Stack_overflow ->
          st.tripped <-
            Some (Limits.Depth, max (Expected.farthest st.fail_trace) 0);
          -1
      | Out_of_memory ->
          st.tripped <-
            Some (Limits.Memory, max (Expected.farthest st.fail_trace) 0);
          -1
    in
    release_scratch t st sc ~own_memo:false;
    observe_epilogue t st;
    st.stats.Stats.fuel_used <- limits.Limits.fuel - max st.fuel 0;
    s.v_bytes <- st.memo_bytes;
    s.v_version <- st.version;
    let result =
      match st.tripped with
      | Some (which, at) -> Error (Expected.exhausted st.fail_trace ~which ~at)
      | None ->
          Expected.result st.fail_trace ~len:st.len ~require_eof ~stop:p
            st.value
    in
    { result; stats = st.stats; consumed = p })

let run t ?start ?require_eof input =
  run_input t ?start ?require_eof (Input.of_string input)

let run_store t s ?start ?require_eof input =
  run_store_input t s ?start ?require_eof (Input.of_string input)

let parse t ?start input = (run t ?start input).result
let accepts t ?start input = Result.is_ok (parse t ?start input)

(* --- disassembly ----------------------------------------------------------- *)

let disassemble t =
  let buf = Buffer.create 4096 in
  let entry_names = Hashtbl.create 16 in
  Array.iteri
    (fun i addr -> Hashtbl.replace entry_names addr t.names.(i))
    t.entries;
  let stub_names = Hashtbl.create 16 in
  Array.iteri
    (fun i addr -> Hashtbl.replace stub_names addr t.names.(i))
    t.stubs;
  let bm_desc bm =
    let n = ref 0 in
    Bytes.iter (fun c -> if c <> '\000' then incr n) bm;
    Printf.sprintf "<%d bytes>" !n
  in
  Array.iteri
    (fun ip instr ->
      (match Hashtbl.find_opt stub_names ip with
      | Some name -> Buffer.add_string buf (Printf.sprintf "; start %s\n" name)
      | None -> ());
      (match Hashtbl.find_opt entry_names ip with
      | Some name -> Buffer.add_string buf (Printf.sprintf "%s:\n" name)
      | None -> ());
      let line =
        match instr with
        | IChar (c, _, u) ->
            Printf.sprintf "char %s%s" (Pretty.quote_char c)
              (if u then "" else " (lean)")
        | IStr (s, _, u) ->
            Printf.sprintf "str %s%s" (Pretty.quote_string s)
              (if u then "" else " (lean)")
        | ISet (bm, desc, v) ->
            Printf.sprintf "set %s %s%s" desc (bm_desc bm)
              (if v then "" else " (lean)")
        | IAny (_, v) -> if v then "any" else "any (lean)"
        | ITestSet (_, tgt, desc) -> Printf.sprintf "test %s else %d" desc tgt
        | IDispatch (_, targets, eof) ->
            Printf.sprintf "dispatch [%s] eof %d"
              (String.concat " "
                 (Array.to_list (Array.map string_of_int targets)))
              eof
        | ISpan (bm, desc) -> Printf.sprintf "span %s %s" desc (bm_desc bm)
        | ITestNot (_, desc) -> Printf.sprintf "test-not %s" desc
        | ITestAnd (_, desc) -> Printf.sprintf "test-and %s" desc
        | IQuiet on -> if on then "quiet+" else "quiet-"
        | IJump tgt -> Printf.sprintf "jump %d" tgt
        | IChoice (h, alt) ->
            Printf.sprintf "choice %d%s" h (if alt then " (alt)" else "")
        | ICommit tgt -> Printf.sprintf "commit %d" tgt
        | IStarStep (l, ap) ->
            Printf.sprintf "star-step %d%s" l (if ap then " (collect)" else "")
        | IBackCommit tgt -> Printf.sprintf "back-commit %d" tgt
        | IFailTwice _ -> "fail-twice"
        | IFail (Some d) -> Printf.sprintf "fail %S" d
        | IFail None -> "fail"
        | ICall (p, _) -> Printf.sprintf "call %s" t.names.(p)
        | ICallChunk (p, slot, _, _, _) | ICallTbl (p, slot, _, _) ->
            Printf.sprintf "call %s [slot %d]" t.names.(p) slot
        | IRet -> "ret"
        | IRetChunk (slot, _) | IRetTbl slot ->
            Printf.sprintf "ret [slot %d]" slot
        | IObsCall (p, _) -> Printf.sprintf "obs-call %s" t.names.(p)
        | IObsCallChunk (p, slot, _, _, _) | IObsCallTbl (p, slot, _, _) ->
            Printf.sprintf "obs-call %s [slot %d]" t.names.(p) slot
        | IObsRet -> "obs-ret"
        | IObsRetChunk (slot, _) | IObsRetTbl slot ->
            Printf.sprintf "obs-ret [slot %d]" slot
        | IObsEnter p -> Printf.sprintf "obs-enter %s" t.names.(p)
        | IObsLeave -> "obs-leave"
        | IObsAlt (a, m) ->
            Printf.sprintf "obs-alt %d %s" a (if m then "matched" else "tried")
        | IOptSet (_, desc, _) -> Printf.sprintf "opt %s" desc
        | IHalt -> "halt"
        | IGovern -> "govern"
        | ILeave -> "leave"
        | ISetUnit -> "set-unit"
        | IPushMark -> "push-mark"
        | IAppend None -> "append"
        | IAppend (Some l) -> Printf.sprintf "append %s:" l
        | IAppendSplice -> "append-splice"
        | IAppendList -> "append-list"
        | IPopSeq -> "pop-seq"
        | IPopTail -> "pop-tail"
        | IPopTail1 None -> "pop-tail1"
        | IPopTail1 (Some l) -> Printf.sprintf "pop-tail1 %s:" l
        | IPopList -> "pop-list"
        | IPopToken -> "pop-token"
        | IPopNode n -> Printf.sprintf "pop-node %s" n
        | IWrapBind l -> Printf.sprintf "wrap-bind %s" l
        | ISpliceCollapse -> "splice-collapse"
        | IRecord tbl -> Printf.sprintf "record %s" tbl
        | IMember (tbl, pos, _) ->
            Printf.sprintf "member %s%s" (if pos then "" else "!") tbl
      in
      Buffer.add_string buf (Printf.sprintf "%5d  %s\n" ip line))
    t.code;
  Buffer.contents buf
