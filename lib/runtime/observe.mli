(** The parse observability layer: profiler, trace ring, coverage.

    {!want} is the capability record carried by {!Config.t} — pure data,
    so configurations stay structurally comparable. When every
    capability is off (the default), preparation compiles exactly the
    code it compiled before this layer existed: the closure engine wraps
    nothing and the VM program is byte-identical — the zero-cost-when-off
    contract the bench suite verifies.

    When something is on, preparation creates one {!t} sink per engine
    and compiles direct calls to it: the closure engine wraps each
    production's matcher and recognizer, the VM emits instrumented
    instruction variants. The sink accumulates across runs (coverage
    over a corpus, profiles over repeated parses); it is observation
    only — nothing here touches fuel, depth, or the memo byte budget.

    Event streams are deterministic: for the same (grammar, input,
    flags) both back ends emit the same event sequence — enter and
    memo-hit positions, exits, backtracks, trips — which the property
    suite asserts (on governed configurations, where the VM counts
    inlined invocations exactly like the closure engine; see
    DESIGN.md). *)

open Rats_peg

(** {1 The capability record} *)

type want = {
  profile : bool;  (** per-production counters + timing + flame events *)
  coverage : bool;  (** production and choice-arm hit counters *)
  events : bool;  (** the bounded trace ring *)
  ring_bytes : int;  (** ring byte budget; one event costs {!event_bytes} *)
}

val off : want
val all : ?ring_bytes:int -> unit -> want
val enabled : want -> bool

val event_bytes : int
(** Bytes one ring slot occupies (flat int fields, no per-event
    allocation). *)

(** {1 The sink} *)

type kind =
  | Enter  (** production invocation began; [aux] = -1 *)
  | Exit_ok  (** body succeeded; [aux] = stop offset *)
  | Exit_fail  (** body failed *)
  | Memo_hit  (** answered from the memo table; [aux] = stop or -1 *)
  | Memo_reuse
      (** session reparse started with surviving entries; [pos] =
          reused count, [aux] = relocated count *)
  | Backtrack  (** a choice arm failed; [pos] = the choice's offset *)
  | Govern_trip  (** a budget ran out; [id] = {!Limits.which} ordinal *)

type event = { kind : kind; id : int; pos : int; aux : int }
(** [id] is a production id (or -1 where not applicable). *)

type t

val create : want -> Provenance.t -> t
val null : t
(** An inert sink (everything off) — never written, never read. *)

val want : t -> want
val provenance : t -> Provenance.t
val profile : t -> Profile.t option

(** {1 Hooks — called by the back ends} *)

val enter : t -> int -> int -> unit
(** [enter t prod pos]: invocation begins (before fuel is charged, so an
    exhausted invocation still appears in the trace). *)

val exit : t -> int -> int -> stop:int -> unit
(** [exit t prod pos ~stop]: the invocation ran its body and returned
    [stop] ([-1] = failure). *)

val memo_hit : t -> int -> int -> stop:int -> unit
(** The invocation was answered from the memo table instead. *)

val alt_tried : t -> int -> unit
(** [alt_tried t arm]: the arm's body began executing (arm id from
    {!Provenance.arms_of}; -1 ids are ignored). *)

val alt_matched : t -> int -> unit

val backtrack : t -> int -> unit
(** A choice arm failed at the given choice offset; the next arm (or the
    choice's failure) is up. *)

val session_reuse : t -> reused:int -> relocated:int -> unit
val trip : t -> Limits.which -> int -> unit

val finalize : t -> unit
(** Sweep profiler frames left open by an aborted run; call at every
    run epilogue. *)

(** {1 Reading the sink} *)

val events : t -> event list
(** Retained ring contents, oldest first (at most the ring capacity;
    earlier events were overwritten). *)

val events_seen : t -> int
(** Total events ever pushed, including overwritten ones. *)

val ring_capacity : t -> int
val kind_name : kind -> string

val pp_events : ?input:string -> ?last:int -> Format.formatter -> t -> unit
(** Human-readable event dump, newest last, with [line:col] positions
    and a source excerpt each time the position changes — the renderer
    behind [rml trace]. *)

(** {1 Coverage} *)

val prod_covered : t -> int -> bool
val arm_tried : t -> int -> bool
val arm_matched : t -> int -> bool

val coverage_summary : t -> int * int * int * int
(** [(prods_hit, nprods, arms_matched, narms)]. *)

val unexercised : t -> int list * int list
(** [(productions never invoked, arms never matched)] — dead rungs of
    the composed grammar on the observed corpus. *)

val pp_coverage : Format.formatter -> t -> unit
(** The [rml coverage] report: summary plus one line per unexercised
    alternative with its defining module. *)
