(* The observation sink shared by both back ends. Everything is
   preallocated at [create]: pushing a ring event is four int writes
   into a flat array, coverage marks are single array increments, and
   profiling delegates to [Profile]. Nothing here charges fuel or the
   memo byte budget — the trace ring must be able to describe a
   resource trip without changing where the trip happens. *)

open Rats_peg

type want = {
  profile : bool;
  coverage : bool;
  events : bool;
  ring_bytes : int;
}

let off = { profile = false; coverage = false; events = false; ring_bytes = 0 }

let default_ring_bytes = 64 * 1024

let all ?(ring_bytes = default_ring_bytes) () =
  { profile = true; coverage = true; events = true; ring_bytes }

let enabled w = w.profile || w.coverage || w.events

(* One ring slot: kind + id + pos + aux, flat ints. *)
let event_ints = 4
let event_bytes = event_ints * 8

type kind =
  | Enter
  | Exit_ok
  | Exit_fail
  | Memo_hit
  | Memo_reuse
  | Backtrack
  | Govern_trip

let kind_code = function
  | Enter -> 0
  | Exit_ok -> 1
  | Exit_fail -> 2
  | Memo_hit -> 3
  | Memo_reuse -> 4
  | Backtrack -> 5
  | Govern_trip -> 6

let kind_of_code = function
  | 0 -> Enter
  | 1 -> Exit_ok
  | 2 -> Exit_fail
  | 3 -> Memo_hit
  | 4 -> Memo_reuse
  | 5 -> Backtrack
  | _ -> Govern_trip

let kind_name = function
  | Enter -> "enter"
  | Exit_ok -> "exit-ok"
  | Exit_fail -> "exit-fail"
  | Memo_hit -> "memo-hit"
  | Memo_reuse -> "memo-reuse"
  | Backtrack -> "backtrack"
  | Govern_trip -> "govern-trip"

type event = { kind : kind; id : int; pos : int; aux : int }

type t = {
  want : want;
  prov : Provenance.t;
  profile : Profile.t option;
  (* coverage counters; empty arrays when coverage is off *)
  prod_hits : int array;
  alts_tried : int array;
  alts_matched : int array;
  (* the ring: [cap] slots of [event_ints] ints; [seen] counts every
     push, so [seen mod cap] is the next slot and [seen - cap] events
     have been overwritten *)
  ring : int array;
  cap : int;
  mutable seen : int;
}

let create w prov =
  let cap = if w.events then max 16 (w.ring_bytes / event_bytes) else 0 in
  {
    want = w;
    prov;
    profile =
      (if w.profile then
         Some
           (Profile.create
              ~names:
                (Array.init (Provenance.nprods prov) (Provenance.prod_name prov)))
       else None);
    prod_hits =
      (if w.coverage then Array.make (max 1 (Provenance.nprods prov)) 0
       else [||]);
    alts_tried =
      (if w.coverage then Array.make (max 1 (Provenance.narms prov)) 0
       else [||]);
    alts_matched =
      (if w.coverage then Array.make (max 1 (Provenance.narms prov)) 0
       else [||]);
    ring = Array.make (cap * event_ints) 0;
    cap;
    seen = 0;
  }

let null = create off Provenance.empty
let want t = t.want
let provenance t = t.prov
let profile t = t.profile

let push t kind id pos aux =
  if t.cap > 0 then (
    let base = t.seen mod t.cap * event_ints in
    Array.unsafe_set t.ring base (kind_code kind);
    Array.unsafe_set t.ring (base + 1) id;
    Array.unsafe_set t.ring (base + 2) pos;
    Array.unsafe_set t.ring (base + 3) aux;
    t.seen <- t.seen + 1)

let enter t prod pos =
  if t.want.coverage then t.prod_hits.(prod) <- t.prod_hits.(prod) + 1;
  (match t.profile with Some p -> Profile.enter p prod | None -> ());
  push t Enter prod pos (-1)

let exit t prod pos ~stop =
  (match t.profile with
  | Some p -> Profile.exit p prod ~ok:(stop >= 0) ~hit:false
  | None -> ());
  push t (if stop >= 0 then Exit_ok else Exit_fail) prod pos stop

let memo_hit t prod pos ~stop =
  (match t.profile with
  | Some p -> Profile.exit p prod ~ok:(stop >= 0) ~hit:true
  | None -> ());
  push t Memo_hit prod pos stop

let alt_tried t arm =
  if arm >= 0 && t.want.coverage then
    t.alts_tried.(arm) <- t.alts_tried.(arm) + 1

let alt_matched t arm =
  if arm >= 0 && t.want.coverage then
    t.alts_matched.(arm) <- t.alts_matched.(arm) + 1

let backtrack t pos = push t Backtrack (-1) pos (-1)

let session_reuse t ~reused ~relocated =
  push t Memo_reuse (-1) reused relocated

let which_ord = function
  | Limits.Fuel -> 0
  | Limits.Depth -> 1
  | Limits.Memory -> 2
  | Limits.Input -> 3

let which_of_ord = function
  | 0 -> Limits.Fuel
  | 1 -> Limits.Depth
  | 2 -> Limits.Memory
  | _ -> Limits.Input

let trip t which at = push t Govern_trip (which_ord which) at (-1)

let finalize t =
  match t.profile with Some p -> Profile.finalize p | None -> ()

(* --- reading the ring ---------------------------------------------------- *)

let events_seen t = t.seen
let ring_capacity t = t.cap

let events t =
  let n = min t.seen t.cap in
  List.init n (fun i ->
      let idx = t.seen - n + i in
      let base = idx mod t.cap * event_ints in
      {
        kind = kind_of_code t.ring.(base);
        id = t.ring.(base + 1);
        pos = t.ring.(base + 2);
        aux = t.ring.(base + 3);
      })

let pp_events ?input ?last ppf t =
  let evs = events t in
  let evs =
    match last with
    | Some n when List.length evs > n ->
        List.filteri (fun i _ -> i >= List.length evs - n) evs
    | _ -> evs
  in
  let dropped = t.seen - List.length evs in
  if dropped > 0 then
    Format.fprintf ppf "... %d earlier event%s not retained@." dropped
      (if dropped = 1 then "" else "s");
  let src = Option.map (fun s -> Rats_support.Source.of_string s) input in
  let last_pos = ref (-2) in
  List.iteri
    (fun i ev ->
      let seq = t.seen - List.length evs + i in
      let name =
        if ev.id >= 0 && ev.id < Provenance.nprods t.prov then
          Provenance.prod_name t.prov ev.id
        else ""
      in
      (match ev.kind with
      | Enter ->
          Format.fprintf ppf "%6d  %-11s %-24s @@ %d" seq "enter" name ev.pos
      | Exit_ok ->
          Format.fprintf ppf "%6d  %-11s %-24s @@ %d -> %d" seq "exit-ok" name
            ev.pos ev.aux
      | Exit_fail ->
          Format.fprintf ppf "%6d  %-11s %-24s @@ %d" seq "exit-fail" name
            ev.pos
      | Memo_hit ->
          Format.fprintf ppf "%6d  %-11s %-24s @@ %d %s" seq "memo-hit" name
            ev.pos
            (if ev.aux >= 0 then Printf.sprintf "-> %d" ev.aux else "(failure)")
      | Memo_reuse ->
          Format.fprintf ppf "%6d  %-11s reused %d entries (%d relocated)" seq
            "memo-reuse" ev.pos ev.aux
      | Backtrack ->
          Format.fprintf ppf "%6d  %-11s %-24s @@ %d" seq "backtrack" "" ev.pos
      | Govern_trip ->
          Format.fprintf ppf "%6d  %-11s %s budget exhausted @@ %d" seq
            "govern-trip"
            (Limits.which_name (which_of_ord ev.id))
            ev.pos);
      (match src with
      | Some src when ev.kind <> Memo_reuse ->
          let loc = Rats_support.Source.location src ev.pos in
          Format.fprintf ppf "  (%d:%d)" loc.Rats_support.Source.line
            loc.Rats_support.Source.col
      | _ -> ());
      Format.fprintf ppf "@.";
      match src with
      | Some src
        when ev.pos <> !last_pos && ev.kind <> Memo_reuse
             && ev.pos <= Rats_support.Source.length src ->
          last_pos := ev.pos;
          Format.fprintf ppf "        %a@."
            (Rats_support.Source.pp_excerpt src)
            (Rats_support.Span.v ~start_:ev.pos ~stop:ev.pos)
      | _ -> ())
    evs

(* --- coverage ------------------------------------------------------------ *)

let prod_covered t i = t.want.coverage && t.prod_hits.(i) > 0
let arm_tried t i = t.want.coverage && t.alts_tried.(i) > 0
let arm_matched t i = t.want.coverage && t.alts_matched.(i) > 0

let coverage_summary t =
  let nprods = Provenance.nprods t.prov in
  let narms = Provenance.narms t.prov in
  let ph = ref 0 and am = ref 0 in
  for i = 0 to nprods - 1 do
    if t.prod_hits.(i) > 0 then incr ph
  done;
  for i = 0 to narms - 1 do
    if t.alts_matched.(i) > 0 then incr am
  done;
  (!ph, nprods, !am, narms)

let unexercised t =
  let prods = ref [] and arms = ref [] in
  for i = Provenance.nprods t.prov - 1 downto 0 do
    if t.prod_hits.(i) = 0 then prods := i :: !prods
  done;
  for i = Provenance.narms t.prov - 1 downto 0 do
    if t.alts_matched.(i) = 0 then arms := i :: !arms
  done;
  (!prods, !arms)

let pp_coverage ppf t =
  let ph, np, am, na = coverage_summary t in
  Format.fprintf ppf "productions exercised: %d/%d@." ph np;
  Format.fprintf ppf "alternatives matched:  %d/%d@." am na;
  let dead_prods, dead_arms = unexercised t in
  List.iter
    (fun i ->
      let origin = Provenance.prod_origin t.prov i in
      Format.fprintf ppf "unexercised production: %s%s@."
        (Provenance.prod_name t.prov i)
        (if origin = "" then "" else "  [module " ^ origin ^ "]"))
    dead_prods;
  List.iter
    (fun i ->
      let a = Provenance.arm t.prov i in
      let origin = Provenance.prod_origin t.prov a.Provenance.arm_prod in
      Format.fprintf ppf "unexercised alternative: %a = %s%s%s@."
        (Provenance.pp_arm t.prov) i a.Provenance.arm_desc
        (if arm_tried t i then "" else "  (never tried)")
        (if origin = "" then "" else "  [module " ^ origin ^ "]"))
    dead_arms
