type memo_strategy = No_memo | Hashtable | Chunked
type backend = Closure | Bytecode

type t = {
  memo : memo_strategy;
  honor_transient : bool;
  dispatch : bool;
  lean_values : bool;
  backend : backend;
  limits : Limits.t;
  observe : Observe.want;
}

let naive =
  { memo = No_memo; honor_transient = false; dispatch = false;
    lean_values = false; backend = Closure; limits = Limits.unlimited;
    observe = Observe.off }

let packrat =
  { memo = Hashtable; honor_transient = false; dispatch = false;
    lean_values = false; backend = Closure; limits = Limits.unlimited;
    observe = Observe.off }

let optimized =
  { memo = Chunked; honor_transient = true; dispatch = true;
    lean_values = true; backend = Closure; limits = Limits.unlimited;
    observe = Observe.off }

let vm = { optimized with backend = Bytecode }

let v ?(memo = Hashtable) ?(honor_transient = false) ?(dispatch = false)
    ?(lean_values = false) ?(backend = Closure) ?(limits = Limits.unlimited)
    ?(observe = Observe.off) () =
  { memo; honor_transient; dispatch; lean_values; backend; limits; observe }

let with_backend backend c = { c with backend }
let with_limits limits c = { c with limits }
let with_observe observe c = { c with observe }

let memo_name = function
  | No_memo -> "none"
  | Hashtable -> "hashtable"
  | Chunked -> "chunked"

let backend_name = function Closure -> "closure" | Bytecode -> "vm"

let describe c =
  let flags =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [
        (c.honor_transient, "transient");
        (c.dispatch, "dispatch");
        (c.lean_values, "lean-values");
        (c.backend = Bytecode, "bytecode");
        (Observe.enabled c.observe, "observed");
      ]
  in
  Printf.sprintf "memo=%s%s%s" (memo_name c.memo)
    (match flags with [] -> "" | fs -> " " ^ String.concat " " fs)
    (if Limits.is_unlimited c.limits then ""
     else " [" ^ Limits.describe c.limits ^ "]")

let pp ppf c = Format.pp_print_string ppf (describe c)
