type memo_strategy = No_memo | Hashtable | Chunked
type backend = Closure | Bytecode

type t = {
  memo : memo_strategy;
  honor_transient : bool;
  dispatch : bool;
  lean_values : bool;
  backend : backend;
  limits : Limits.t;
}

let naive =
  { memo = No_memo; honor_transient = false; dispatch = false;
    lean_values = false; backend = Closure; limits = Limits.unlimited }

let packrat =
  { memo = Hashtable; honor_transient = false; dispatch = false;
    lean_values = false; backend = Closure; limits = Limits.unlimited }

let optimized =
  { memo = Chunked; honor_transient = true; dispatch = true;
    lean_values = true; backend = Closure; limits = Limits.unlimited }

let vm = { optimized with backend = Bytecode }

let v ?(memo = Hashtable) ?(honor_transient = false) ?(dispatch = false)
    ?(lean_values = false) ?(backend = Closure) ?(limits = Limits.unlimited)
    () =
  { memo; honor_transient; dispatch; lean_values; backend; limits }

let with_backend backend c = { c with backend }
let with_limits limits c = { c with limits }

let memo_name = function
  | No_memo -> "none"
  | Hashtable -> "hashtable"
  | Chunked -> "chunked"

let backend_name = function Closure -> "closure" | Bytecode -> "vm"

let describe c =
  let flags =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [
        (c.honor_transient, "transient");
        (c.dispatch, "dispatch");
        (c.lean_values, "lean-values");
        (c.backend = Bytecode, "bytecode");
      ]
  in
  Printf.sprintf "memo=%s%s%s" (memo_name c.memo)
    (match flags with [] -> "" | fs -> " " ^ String.concat " " fs)
    (if Limits.is_unlimited c.limits then ""
     else " [" ^ Limits.describe c.limits ^ "]")

let pp ppf c = Format.pp_print_string ppf (describe c)
