(* The pipeline metrics registry. Everything on the record path is an
   int field bump or an int-array cell bump; floats, closures and
   allocation are confined to registration and export. See the .mli for
   the bucket geometry contract. *)

(* --- bucket scheme ------------------------------------------------------ *)

(* Identity buckets for 0..15, then 8 sub-buckets per power-of-two
   octave. Octaves run from msb 4 (values 16..31) to msb 61 (the top of
   the 63-bit int range), so every nonnegative int has a bucket. *)

let first_octave = 4
let last_octave = 61
let nbuckets = 16 + ((last_octave - first_octave + 1) * 8)

(* msb position of [v], for [v >= 16]: a shift loop, not a float log —
   [observe] must not allocate or round. *)
let rec msb_from v m = if v <= 1 then m else msb_from (v lsr 1) (m + 1)

let bucket_of v =
  if v < 16 then if v < 0 then 0 else v
  else
    let m = msb_from (v lsr first_octave) first_octave in
    let sub = (v lsr (m - 3)) land 7 in
    16 + ((m - first_octave) * 8) + sub

let bucket_bounds i =
  if i < 16 then (i, i + 1)
  else
    let oct = first_octave + ((i - 16) / 8) in
    let sub = (i - 16) mod 8 in
    let lo = (8 + sub) lsl (oct - 3) in
    let hi = (9 + sub) lsl (oct - 3) in
    (* the very top bucket's upper bound overflows 2^62; clamp *)
    (lo, if hi <= 0 then max_int else hi)

(* The value a bucket stands for when estimating quantiles: exact below
   16, midpoint above (error ≤ half the ≤12.5% bucket width). *)
let bucket_value i =
  if i < 16 then float_of_int i
  else
    let lo, hi = bucket_bounds i in
    (float_of_int lo +. float_of_int hi) /. 2.

(* --- instruments -------------------------------------------------------- *)

type kind = Counter | Gauge | Histogram

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_help : string;
  m_kind : kind;
  mutable m_value : int;  (* counter total / gauge reading *)
  m_buckets : int array;  (* [||] unless histogram *)
  mutable m_sum : int;  (* histogram sum of observations *)
  mutable m_count : int;  (* histogram observation count *)
}

type counter = metric
type gauge = metric
type histogram = metric

type t = {
  mutable rev : metric list;  (* reverse registration order *)
  index : (string * (string * string) list, metric) Hashtbl.t;
}

let create () = { rev = []; index = Hashtbl.create 32 }

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let register t ~labels ~help ~kind name =
  match Hashtbl.find_opt t.index (name, labels) with
  | Some m ->
      if m.m_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s registered as %s, requested as %s" name
             (kind_name m.m_kind) (kind_name kind));
      m
  | None ->
      let m =
        {
          m_name = name;
          m_labels = labels;
          m_help = help;
          m_kind = kind;
          m_value = 0;
          m_buckets = (if kind = Histogram then Array.make nbuckets 0 else [||]);
          m_sum = 0;
          m_count = 0;
        }
      in
      t.rev <- m :: t.rev;
      Hashtbl.add t.index (name, labels) m;
      m

let counter t ?(labels = []) ?(help = "") name =
  register t ~labels ~help ~kind:Counter name

let gauge t ?(labels = []) ?(help = "") name =
  register t ~labels ~help ~kind:Gauge name

let histogram t ?(labels = []) ?(help = "") name =
  register t ~labels ~help ~kind:Histogram name

(* --- recording (allocation-free) ---------------------------------------- *)

let inc (m : counter) = m.m_value <- m.m_value + 1

let add (m : counter) d =
  if d < 0 then invalid_arg "Metrics.add: counters are monotone";
  m.m_value <- m.m_value + d

let set (m : gauge) v = m.m_value <- v

let observe (m : histogram) v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  Array.unsafe_set m.m_buckets i (Array.unsafe_get m.m_buckets i + 1);
  m.m_sum <- m.m_sum + v;
  m.m_count <- m.m_count + 1

(* --- reading ------------------------------------------------------------ *)

let counter_value (m : counter) = m.m_value
let gauge_value (m : gauge) = m.m_value
let hist_count (m : histogram) = m.m_count
let hist_sum (m : histogram) = m.m_sum

let quantile (m : histogram) q =
  if m.m_count = 0 then 0.
  else
    let rank =
      let r = int_of_float (ceil (q *. float_of_int m.m_count)) in
      max 1 (min m.m_count r)
    in
    let rec go i cum =
      let cum = cum + m.m_buckets.(i) in
      if cum >= rank || i = nbuckets - 1 then bucket_value i else go (i + 1) cum
    in
    go 0 0

(* --- merge -------------------------------------------------------------- *)

let merge ~into src =
  List.iter
    (fun (s : metric) ->
      let d =
        register into ~labels:s.m_labels ~help:s.m_help ~kind:s.m_kind s.m_name
      in
      match s.m_kind with
      | Counter -> d.m_value <- d.m_value + s.m_value
      | Gauge -> d.m_value <- max d.m_value s.m_value
      | Histogram ->
          for i = 0 to nbuckets - 1 do
            d.m_buckets.(i) <- d.m_buckets.(i) + s.m_buckets.(i)
          done;
          d.m_sum <- d.m_sum + s.m_sum;
          d.m_count <- d.m_count + s.m_count)
    (List.rev src.rev)

(* --- export ------------------------------------------------------------- *)

let escape_label b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

(* [name{k="v",...}] with [extra] appended to the label set (the
   histogram [le]); families with no labels render bare. *)
let add_series b name labels extra =
  Buffer.add_string b name;
  if labels <> [] || extra <> [] then begin
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        escape_label b v;
        Buffer.add_char b '"')
      (labels @ extra);
    Buffer.add_char b '}'
  end

(* Families in first-registration order, each family's series grouped —
   the exposition format requires one HELP/TYPE block per family. *)
let families t =
  let order = ref [] in
  let byname = Hashtbl.create 16 in
  List.iter
    (fun m ->
      match Hashtbl.find_opt byname m.m_name with
      | Some l -> Hashtbl.replace byname m.m_name (m :: l)
      | None ->
          order := m.m_name :: !order;
          Hashtbl.add byname m.m_name [ m ])
    (List.rev t.rev);
  List.rev_map (fun name -> (name, List.rev (Hashtbl.find byname name))) !order

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, members) ->
      let repr = List.hd members in
      if repr.m_help <> "" then begin
        Buffer.add_string b "# HELP ";
        Buffer.add_string b name;
        Buffer.add_char b ' ';
        Buffer.add_string b repr.m_help;
        Buffer.add_char b '\n'
      end;
      Buffer.add_string b "# TYPE ";
      Buffer.add_string b name;
      Buffer.add_char b ' ';
      Buffer.add_string b (kind_name repr.m_kind);
      Buffer.add_char b '\n';
      List.iter
        (fun m ->
          match m.m_kind with
          | Counter | Gauge ->
              add_series b name m.m_labels [];
              Buffer.add_string b (Printf.sprintf " %d\n" m.m_value)
          | Histogram ->
              let cum = ref 0 in
              for i = 0 to nbuckets - 1 do
                if m.m_buckets.(i) > 0 then begin
                  cum := !cum + m.m_buckets.(i);
                  let _, hi = bucket_bounds i in
                  add_series b (name ^ "_bucket") m.m_labels
                    [ ("le", string_of_int (hi - 1)) ];
                  Buffer.add_string b (Printf.sprintf " %d\n" !cum)
                end
              done;
              add_series b (name ^ "_bucket") m.m_labels [ ("le", "+Inf") ];
              Buffer.add_string b (Printf.sprintf " %d\n" m.m_count);
              add_series b (name ^ "_sum") m.m_labels [];
              Buffer.add_string b (Printf.sprintf " %d\n" m.m_sum);
              add_series b (name ^ "_count") m.m_labels [];
              Buffer.add_string b (Printf.sprintf " %d\n" m.m_count))
        members)
    (families t);
  Buffer.contents b

let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      json_string b m.m_name;
      if m.m_labels <> [] then begin
        Buffer.add_string b ",\"labels\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            json_string b k;
            Buffer.add_char b ':';
            json_string b v)
          m.m_labels;
        Buffer.add_char b '}'
      end;
      Buffer.add_string b ",\"kind\":";
      json_string b (kind_name m.m_kind);
      (match m.m_kind with
      | Counter | Gauge ->
          Buffer.add_string b (Printf.sprintf ",\"value\":%d" m.m_value)
      | Histogram ->
          Buffer.add_string b
            (Printf.sprintf ",\"count\":%d,\"sum\":%d" m.m_count m.m_sum);
          Buffer.add_string b
            (Printf.sprintf ",\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f"
               (quantile m 0.5) (quantile m 0.9) (quantile m 0.99));
          Buffer.add_string b ",\"buckets\":[";
          let first = ref true in
          for i = 0 to nbuckets - 1 do
            if m.m_buckets.(i) > 0 then begin
              if not !first then Buffer.add_char b ',';
              first := false;
              let _, hi = bucket_bounds i in
              Buffer.add_string b
                (Printf.sprintf "[%d,%d]" (hi - 1) m.m_buckets.(i))
            end
          done;
          Buffer.add_char b ']');
      Buffer.add_char b '}')
    (List.rev t.rev);
  Buffer.add_char b ']';
  Buffer.contents b
