(** Engine-side optimization switches.

    Together with the grammar-to-grammar passes in [Rats_optimize], these
    switches reconstruct the optimization ladder of the paper's
    evaluation; every rung of experiment E3 is a [Config.t] plus a
    transformed grammar. *)

type memo_strategy =
  | No_memo  (** plain recursive descent with backtracking — the naive
                 baseline, exponential in the worst case *)
  | Hashtable  (** memoize into a [(position × production)] hash table —
                   the textbook packrat baseline *)
  | Chunked  (** Rats!-style chunks: one lazily allocated record per
                 input position with a slot per memoized production *)

type backend =
  | Closure  (** compile the IR to a network of OCaml closures — one
                 indirect call per IR node *)
  | Bytecode  (** compile the IR to a flat instruction array interpreted
                  by {!Vm} with an explicit backtrack stack *)

type t = {
  memo : memo_strategy;
  honor_transient : bool;
      (** when set, productions whose attributes say [Memo_never] get no
          memo slot at all — Rats!'s {e transient productions} *)
  dispatch : bool;
      (** filter choice alternatives by the next input byte against
          precomputed FIRST sets — Rats!'s choice specialization *)
  lean_values : bool;
      (** run predicates, [Token] bodies and void/text productions in
          recognizer mode that builds no semantic values — Rats!'s
          "avoid unnecessary semantic values" *)
  backend : backend;
      (** execution strategy; both back ends are observationally
          equivalent, the bytecode VM trades compile-time flattening for
          a faster hot loop *)
  limits : Limits.t;
      (** resource budgets for every run of the prepared engine —
          {!Limits.unlimited} by default; see {!Limits.hardened} for
          parsing untrusted input *)
  observe : Observe.want;
      (** observability capabilities (profiler, trace ring, coverage) —
          {!Observe.off} by default, in which case preparation compiles
          exactly the uninstrumented code it always did *)
}

val naive : t
(** No memoization, no engine optimizations. *)

val packrat : t
(** [Hashtable] memoization of every production, nothing else — Ford's
    baseline packrat parser. *)

val optimized : t
(** Everything on: chunks, transients honored, dispatch, lean values —
    on the closure back end. *)

val vm : t
(** {!optimized} on the {!Bytecode} back end. *)

val v :
  ?memo:memo_strategy ->
  ?honor_transient:bool ->
  ?dispatch:bool ->
  ?lean_values:bool ->
  ?backend:backend ->
  ?limits:Limits.t ->
  ?observe:Observe.want ->
  unit ->
  t

val with_backend : backend -> t -> t
val with_limits : Limits.t -> t -> t
val with_observe : Observe.want -> t -> t

val backend_name : backend -> string
val pp : Format.formatter -> t -> unit
val describe : t -> string
