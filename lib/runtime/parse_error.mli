(** Parse failures with farthest-failure diagnosis.

    Packrat parsers report the deepest input position any expression
    failed at, together with the set of things that were expected there —
    the standard PEG error heuristic (Ford), which Rats! also uses.

    A failure is either a [Syntax] error (the input doesn't match) or
    [Resource_exhausted] (a {!Limits.t} budget ran out first). Both
    carry the farthest-failure fields, so error rendering and recovery
    code handle them uniformly; [kind] distinguishes them when the
    caller cares — a resource error says nothing about whether the
    input is well-formed. *)

open Rats_support

type kind =
  | Syntax
  | Resource_exhausted of { which : Limits.which; at : int; consumed : int }
      (** [which] is the budget that ran out, [at] the input offset the
          parse had reached when it tripped, [consumed] equals [at]. *)

type t = {
  position : int;
      (** byte offset of the farthest failure — for
          [Resource_exhausted], the farthest failure reached {e before}
          the budget ran out (or [at] when none was recorded) *)
  expected : string list;  (** deduplicated descriptions, source order *)
  consumed : int;
      (** how far the start production matched when the failure is
          "expected end of input" — equals [position] otherwise *)
  kind : kind;
}

val v : position:int -> expected:string list -> ?consumed:int -> unit -> t
(** A [Syntax] error. *)

val resource_exhausted :
  which:Limits.which ->
  at:int ->
  ?position:int ->
  ?expected:string list ->
  ?consumed:int ->
  unit ->
  t
(** A [Resource_exhausted] error; [position] defaults to [at]. *)

val exhausted_which : t -> Limits.which option
(** [Some which] for a resource error, [None] for a syntax error. *)

val message : t -> string
(** ["expected 'x', '[0-9]' or identifier"] — no location prefix. *)

val to_diagnostic : t -> Diagnostic.t
val pp : ?source:Source.t -> Format.formatter -> t -> unit
val to_string : ?source:Source.t -> t -> string
