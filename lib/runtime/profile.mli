(** Per-production wall-clock and invocation profiling.

    A [Profile.t] accumulates, per production id: invocation, memo-hit
    and failure counts, and exact self/total time measured with the
    monotonic clock (nanoseconds; the same [CLOCK_MONOTONIC] source the
    bench harness uses). Self time excludes callees; total time is
    wall-clock per outermost activation, so recursive productions are
    not double-counted. Enter/exit pairs are also logged (up to a cap)
    as flamegraph events exportable as speedscope or Chrome-trace JSON.

    The module is a passive sink: {!Observe} drives it from the hooks
    both back ends compile in when profiling is requested. Cost when
    profiling: two clock reads and a few array writes per invocation.
    When profiling is off the engine never calls in, so the cost is
    zero — see DESIGN.md's zero-overhead-when-off argument. *)

type t

val now_ns : unit -> int
(** The raw monotonic clock ([CLOCK_MONOTONIC], nanoseconds) every
    timing in this module is measured with. Exposed so deadline logic —
    the CLI's [--timeout] fuel-slice loop and the batch runner's
    per-document deadlines — uses the same step-immune source instead
    of wall-clock time. *)

val create : names:string array -> t
(** One slot per production; [names] feeds reports and flamegraphs. *)

val enter : t -> int -> unit
(** [enter t prod] opens an activation: counts the invocation, pushes a
    frame, logs an open event. Every [enter] must be closed by {!exit}
    or swept by {!finalize}. *)

val exit : t -> int -> ok:bool -> hit:bool -> unit
(** Close the innermost activation (which must be [prod]'s): attributes
    elapsed time to self/total, counts memo hits and failures, logs a
    close event. *)

val finalize : t -> unit
(** Close every activation still open — the run was aborted by a
    resource trip or an exception. Keeps the event log balanced so
    flamegraph exports stay well-formed. *)

(** {1 Reporting} *)

type row = {
  row_prod : int;
  row_name : string;
  row_calls : int;
  row_hits : int;
  row_fails : int;
  row_self_ns : int;
  row_total_ns : int;
}

val rows : t -> row list
(** Productions with at least one invocation, sorted by self time,
    largest first. *)

val invocation_sum : t -> int
(** Total calls across all productions — equals
    [Stats.t.invocations] for the runs observed (the property suite
    checks this on governed configurations, where the VM counts inlined
    invocations exactly like the closure engine). *)

val pp_table : ?top:int -> Format.formatter -> t -> unit
(** The sorted per-production table [rml profile] prints. *)

val events_logged : t -> int

val truncated : t -> bool
(** True when the event log hit its cap; counters keep accumulating but
    flamegraphs only cover the logged prefix. *)

val to_speedscope : ?name:string -> t -> string
(** The evented speedscope JSON document
    (https://www.speedscope.app/file-format-schema.json). *)

val to_chrome : t -> string
(** Chrome [chrome://tracing] / Perfetto JSON array of B/E duration
    events, timestamps in microseconds. *)

(** {1 Batch-level spans}

    A second, coarser trace collector: where {!t} logs one event pair
    per production invocation, a [Spans.t] logs one complete span per
    {e pipeline step} — grammar compile, per-document parse, ladder
    retry — plus instant markers for injected faults, so a whole batch
    run opens in [chrome://tracing] as one timeline. Spans are recorded
    with absolute {!now_ns} timestamps and normalized to the earliest
    event at export. The collector allocates per span (a handful of
    words), which is fine at document granularity; it is opt-in the
    same way metrics are — the batch runner never touches it unless
    one was passed in. *)
module Spans : sig
  type t

  val create : unit -> t

  val span :
    ?cat:string ->
    ?args:(string * string) list ->
    t ->
    name:string ->
    ts_ns:int ->
    dur_ns:int ->
    unit
  (** A complete ("X") event: [ts_ns] is an absolute {!now_ns} reading,
      [dur_ns] the span's length. [args] become the event's [args]
      object (values rendered as JSON strings). *)

  val instant :
    ?cat:string ->
    ?args:(string * string) list ->
    t ->
    name:string ->
    ts_ns:int ->
    unit
  (** A zero-duration ("i", thread-scoped) marker — fault injections,
      heartbeats. *)

  val count : t -> int

  val to_chrome : t -> string
  (** Chrome trace JSON array: "X" events with [dur], "i" instants,
      timestamps in microseconds relative to the earliest event. *)
end
